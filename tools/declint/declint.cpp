// declint — DeCloud's repo-specific static checker.
//
// The mechanism's provable properties (DSIC, strong budget balance,
// individual rationality) and the ledger's collective verification both
// hinge on every miner re-deriving byte-identical allocations.  That makes
// determinism a *repo invariant*, not a style preference — and most ways to
// break it (hash-order iteration, ambient clocks, platform RNGs, data races
// hidden behind naked ownership) compile silently.  This tool is a
// token-level scan over src/, tests/ and bench/ that rejects those
// constructs before they reach review.
//
// Design constraints:
//   * self-contained: one translation unit, standard library only, builds
//     with the project toolchain — no LLVM/libclang dependency;
//   * token-level, not AST-level: comments, strings and raw strings are
//     stripped, so the rules cannot be fooled by literals, but deliberately
//     clever code can evade them — declint is a tripwire, not a prover;
//   * every rule is declared in kRules below and can be suppressed locally
//     with `// declint:allow(<rule>)` (same line or the line below) or for
//     a whole file with `// declint:allow-file(<rule>)`.
//
// Exit status: 0 when clean, 1 when findings exist (2 on usage/IO errors).
// `--fix-dry-run` prints the suggested remediation for every finding and
// always exits 0 — it is a report, not a gate.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Rule table.
// ---------------------------------------------------------------------------

struct Rule {
  std::string_view id;
  std::string_view summary;
  std::string_view fix_hint;
};

constexpr Rule kRules[] = {
    {"wallclock",
     "wall-clock reads (time(), std::chrono::system_clock, ...) are forbidden outside bench "
     "timing: block evidence, not the host clock, drives the mechanism",
     "thread simulated `Time now` through the call chain, or move the timing into bench/"},
    {"wallclock-outside-obs",
     "std::chrono::steady_clock outside src/obs/: obs::SteadyClock (src/obs/clock.hpp) is the "
     "single sanctioned wall-clock read, injected as obs::Clock so tests can fake time — this "
     "covers bench/ too; no blanket exemptions",
     "take an obs::Clock* (SteadyClock in production, FakeClock in tests) instead of reading "
     "std::chrono::steady_clock directly"},
    {"ambient-rng",
     "ambient randomness (rand, srand, std::random_device, ...) is forbidden outside "
     "common/rng: miners must re-derive identical streams from block evidence",
     "seed a decloud::Rng from the block evidence (common/rng.hpp) instead"},
    {"unordered-iter",
     "iterating an unordered container in a deterministic module (src/auction, src/engine, "
     "src/ledger, src/stream, src/journal, src/wal): hash order is not stable across platforms "
     "or runs",
     "iterate a sorted key vector, or switch the container to std::map/std::vector"},
    {"float-reduce",
     "std::reduce / std::transform_reduce over money or welfare in economics code: "
     "unspecified operand grouping makes floating-point sums non-reproducible",
     "use an ordered loop or std::accumulate (left fold) so the sum order is fixed"},
    {"naked-new",
     "naked new/delete: ownership must be expressed with containers or smart pointers "
     "(make_unique) so sanitizer runs stay leak-free",
     "replace with std::make_unique / std::vector; `= delete` of special members is fine"},
    {"omp-pragma",
     "#pragma omp: OpenMP scheduling is nondeterministic; all parallelism goes through "
     "common/thread_pool's deterministic static chunking",
     "use decloud::ThreadPool / run_chunked (common/thread_pool.hpp)"},
    {"raw-sync-primitive",
     "raw std sync primitive (std::mutex, std::condition_variable, std::atomic, std::thread, "
     "std::this_thread, ...) outside src/dsched/: concurrency must go through the dsched "
     "wrappers so the systematic interleaving explorer can drive every schedule",
     "use dsched::mutex / dsched::condition_variable / dsched::atomic<T> / dsched::thread "
     "(src/dsched/sync.hpp) — zero-overhead std aliases unless DECLOUD_DSCHED=ON"},
    {"entry-ensure",
     "public mechanism entry point lacks an ENSURE-style check (DECLOUD_EXPECTS / "
     "DECLOUD_ENSURES / validate / audit): preconditions must fail loudly at the boundary",
     "add a DECLOUD_EXPECTS(...) precondition (common/ensure.hpp) at the top of the function"},
};

const Rule* find_rule(std::string_view id) {
  for (const Rule& r : kRules) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

// Public mechanism entry points that must carry an ENSURE-style check.
// Matched by path *suffix* so the table works from any checkout root (and
// so the seeded fixture tree can exercise the rule).  A listed function
// that cannot be found in its file is itself a finding — the table must
// not rot.
struct EntryPoint {
  std::string_view file_suffix;
  std::string_view qualified_name;
};

constexpr EntryPoint kEntryPoints[] = {
    {"src/auction/mechanism.cpp", "DeCloudAuction::run"},
    {"src/auction/mechanism.cpp", "best_offers_from_row"},
    {"src/auction/score_matrix.cpp", "ScoreMatrix::score_row"},
    {"src/auction/candidate_index.cpp", "CandidateIndex::CandidateIndex"},
    {"src/auction/candidate_index.cpp", "CandidateIndex::best_offers"},
    {"src/auction/candidate_index.cpp", "CandidateIndexCache::prepare"},
    {"src/auction/candidate_index.cpp", "CandidateIndexCache::best_offers"},
    {"src/auction/pricing.cpp", "price_cluster"},
    {"src/auction/trade_reduction.cpp", "determine_price"},
    {"src/auction/miniauction.cpp", "select_roots"},
    {"src/auction/miniauction.cpp", "create_mini_auctions"},
    {"src/auction/economics.cpp", "compute_economics"},
    {"src/auction/mcafee.cpp", "mcafee_auction"},
    {"src/auction/mcafee.cpp", "sbba_auction"},
    {"src/auction/verify.cpp", "verify_invariants"},
    {"src/auction/verify.cpp", "verify_replay"},
    {"src/engine/engine.cpp", "MarketEngine::submit_bid"},
    {"src/engine/engine.cpp", "MarketEngine::run_shard_epoch"},
    {"src/engine/engine.cpp", "MarketEngine::report"},
    {"src/engine/epoch_scheduler.cpp", "EpochScheduler::run"},
    {"src/engine/shard_router.cpp", "ShardRouter::route"},
    {"src/ledger/market.cpp", "MarketOrchestrator::run_round"},
    {"src/ledger/market.cpp", "MarketOrchestrator::deny_agreement"},
    {"src/ledger/protocol.cpp", "LedgerProtocol::run_round"},
    {"src/fault/fault.cpp", "FaultPlan::parse"},
    {"src/fault/injector.cpp", "FaultInjector::fires"},
    {"src/stream/streaming_market.cpp", "StreamingMarket::submit"},
    {"src/stream/streaming_market.cpp", "StreamingMarket::close_micro_epoch"},
    {"src/stream/stream_driver.cpp", "drive_trace_stream"},
    {"src/journal/journal.cpp", "Journal::append"},
    {"src/journal/journal.cpp", "Journal::export_jsonl"},
    {"src/wal/wal.cpp", "read_segment"},
    {"src/wal/wal.cpp", "load_wal"},
    {"src/wal/wal.cpp", "WalWriter::append_bid"},
    {"src/wal/wal.cpp", "WalWriter::append_block"},
    {"src/wal/snapshot.cpp", "write_snapshot"},
    {"src/wal/snapshot.cpp", "read_snapshot"},
    {"src/wal/durable/durable.cpp", "drive_trace_durable"},
    {"src/wal/durable/durable.cpp", "drive_trace_stream_durable"},
    {"tools/journal_query/journal_query.cpp", "main"},
};

// ---------------------------------------------------------------------------
// Lexer: comments/strings stripped, pragmas kept, suppressions recorded.
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind { kIdent, kPunct, kNumber, kPragma };
  Kind kind = Kind::kPunct;
  std::string text;
  int line = 1;
};

struct FileScan {
  std::string path;  // forward-slash, relative to the scan root
  std::vector<Token> tokens;
  std::map<int, std::set<std::string>> allow;  // line -> suppressed rule ids
  std::set<std::string> allow_file;
};

// Parses "declint:allow(a, b)" / "declint:allow-file(a)" out of a comment.
void record_directives(FileScan& scan, const std::string& comment, int line) {
  static constexpr std::string_view kAllow = "declint:allow(";
  static constexpr std::string_view kAllowFile = "declint:allow-file(";
  for (const auto& [needle, file_wide] :
       {std::pair{kAllowFile, true}, std::pair{kAllow, false}}) {
    std::size_t pos = 0;
    while ((pos = comment.find(needle, pos)) != std::string::npos) {
      // "declint:allow-file(" also contains "declint:allow" as a prefix of a
      // different directive; the exact-match find above keeps them apart
      // because the shorter needle requires '(' right after "allow".
      pos += needle.size();
      const std::size_t close = comment.find(')', pos);
      if (close == std::string::npos) break;
      std::stringstream ids(comment.substr(pos, close - pos));
      std::string id;
      while (std::getline(ids, id, ',')) {
        const auto b = id.find_first_not_of(" \t");
        const auto e = id.find_last_not_of(" \t");
        if (b == std::string::npos) continue;
        id = id.substr(b, e - b + 1);
        if (file_wide) {
          scan.allow_file.insert(id);
        } else {
          // A directive covers its own line and the next one, so it can sit
          // at the end of the offending line or alone on the line above.
          scan.allow[line].insert(id);
          scan.allow[line + 1].insert(id);
        }
      }
      pos = close;
    }
  }
}

bool is_ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool is_ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

FileScan lex_file(const fs::path& file, const std::string& rel_path) {
  FileScan scan;
  scan.path = rel_path;
  std::ifstream in(file, std::ios::binary);
  std::string src((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  bool at_line_start = true;  // only whitespace seen so far on this line

  auto advance_newline = [&](char c) {
    if (c == '\n') {
      ++line;
      at_line_start = true;
    }
  };

  while (i < n) {
    const char c = src[i];
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t end = src.find('\n', i);
      if (end == std::string::npos) end = n;
      record_directives(scan, src.substr(i, end - i), line);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t end = src.find("*/", i + 2);
      const std::size_t stop = end == std::string::npos ? n : end + 2;
      record_directives(scan, src.substr(i, stop - i), line);
      for (std::size_t j = i; j < stop; ++j) advance_newline(src[j]);
      i = stop;
      continue;
    }
    // Raw string literal.
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t d = i + 2;
      while (d < n && src[d] != '(') ++d;
      // Built by append (not operator+) to sidestep a GCC 12 -Wrestrict
      // false positive on the temporary-chaining form.
      std::string close = ")";
      close.append(src, i + 2, d - (i + 2));
      close += '"';
      std::size_t end = src.find(close, d);
      end = end == std::string::npos ? n : end + close.size();
      for (std::size_t j = i; j < end; ++j) advance_newline(src[j]);
      i = end;
      at_line_start = false;
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\') ++j;
        ++j;
      }
      i = j < n ? j + 1 : n;
      at_line_start = false;
      continue;
    }
    // Preprocessor directive (only at line start).
    if (c == '#' && at_line_start) {
      std::string directive;
      while (i < n) {
        std::size_t end = src.find('\n', i);
        if (end == std::string::npos) end = n;
        directive.append(src, i, end - i);
        const bool continued = !directive.empty() && directive.back() == '\\';
        i = end < n ? end + 1 : n;
        ++line;
        if (!continued) break;
        directive.pop_back();
      }
      at_line_start = true;
      if (directive.find("pragma") != std::string::npos) {
        scan.tokens.push_back({Token::Kind::kPragma, directive, line - 1});
      }
      continue;
    }
    if (c == '\n') {
      advance_newline(c);
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    at_line_start = false;
    // Identifier.
    if (is_ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && is_ident_char(src[j])) ++j;
      scan.tokens.push_back({Token::Kind::kIdent, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Number (loose: good enough for token matching).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i + 1;
      while (j < n && (is_ident_char(src[j]) || src[j] == '.' || src[j] == '\'')) ++j;
      scan.tokens.push_back({Token::Kind::kNumber, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation; '::' and '->' matter for the rules, keep them fused.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      scan.tokens.push_back({Token::Kind::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      scan.tokens.push_back({Token::Kind::kPunct, "->", line});
      i += 2;
      continue;
    }
    scan.tokens.push_back({Token::Kind::kPunct, std::string(1, c), line});
    ++i;
  }
  return scan;
}

// ---------------------------------------------------------------------------
// Findings and helpers.
// ---------------------------------------------------------------------------

struct Finding {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;
};

bool path_contains(const std::string& path, std::string_view needle) {
  return path.find(needle) != std::string::npos;
}

bool in_deterministic_module(const std::string& path) {
  return path_contains(path, "src/auction/") || path_contains(path, "src/engine/") ||
         path_contains(path, "src/ledger/") || path_contains(path, "src/fault/") ||
         path_contains(path, "src/stream/") || path_contains(path, "src/journal/") ||
         path_contains(path, "src/wal/");
}

bool in_economics_code(const std::string& path) {
  return in_deterministic_module(path) || path_contains(path, "src/stats/");
}

/// Index of the matching closer for the opener at `open`, or tokens.size().
std::size_t match_balanced(const std::vector<Token>& toks, std::size_t open,
                           std::string_view open_text, std::string_view close_text) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kPunct) continue;
    if (toks[i].text == open_text) ++depth;
    if (toks[i].text == close_text && --depth == 0) return i;
  }
  return toks.size();
}

class Linter {
 public:
  void scan(const FileScan& f) {
    check_wallclock(f);
    check_wallclock_outside_obs(f);
    check_ambient_rng(f);
    check_unordered_iteration(f);
    check_float_reduce(f);
    check_naked_new(f);
    check_omp(f);
    check_raw_sync(f);
    check_entry_points(f);
  }

  /// Unordered-container identifiers a header contributes to its sibling
  /// .cpp (e.g. economics.hpp's index-map members, iterated — or not — in
  /// economics.cpp).
  static std::set<std::string> unordered_idents(const FileScan& f) {
    std::set<std::string> idents;
    const auto& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Token::Kind::kIdent) continue;
      if (t[i].text != "unordered_map" && t[i].text != "unordered_set" &&
          t[i].text != "unordered_multimap" && t[i].text != "unordered_multiset") {
        continue;
      }
      // Skip the template argument list, then take the declared name.
      std::size_t j = i + 1;
      if (j < t.size() && t[j].text == "<") {
        int depth = 0;
        for (; j < t.size(); ++j) {
          if (t[j].text == "<") ++depth;
          if (t[j].text == ">" && --depth == 0) {
            ++j;
            break;
          }
        }
      }
      while (j < t.size() && (t[j].text == "&" || t[j].text == "*" || t[j].text == "const")) ++j;
      if (j < t.size() && t[j].kind == Token::Kind::kIdent) idents.insert(t[j].text);
    }
    return idents;
  }

  void set_sibling_idents(std::set<std::string> idents) { sibling_idents_ = std::move(idents); }

  std::vector<Finding> take_findings() { return std::move(findings_); }

 private:
  void report(const FileScan& f, int line, std::string_view rule, std::string message) {
    if (f.allow_file.count(std::string(rule))) return;
    const auto it = f.allow.find(line);
    if (it != f.allow.end() && it->second.count(std::string(rule))) return;
    findings_.push_back({f.path, line, std::string(rule), std::move(message)});
  }

  void check_wallclock(const FileScan& f) {
    if (path_contains(f.path, "bench/")) return;  // bench timing is the allowlist
    // steady_clock is NOT here: it has its own stricter rule
    // (wallclock-outside-obs) with no bench exemption.
    static const std::set<std::string> kClocks = {
        "system_clock", "high_resolution_clock", "gettimeofday",
        "clock_gettime", "localtime", "gmtime", "mktime"};
    const auto& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Token::Kind::kIdent) continue;
      if (kClocks.count(t[i].text)) {
        report(f, t[i].line, "wallclock", "wall-clock source '" + t[i].text + "'");
        continue;
      }
      // `time(...)` as a free call — but not `.time(`, `->time(`, or a
      // declaration `Time time(...)`.
      if (t[i].text == "time" && i + 1 < t.size() && t[i + 1].text == "(") {
        const bool member_or_decl =
            i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->" ||
                      t[i - 1].kind == Token::Kind::kIdent);
        if (!member_or_decl) report(f, t[i].line, "wallclock", "call to time()");
      }
    }
  }

  void check_wallclock_outside_obs(const FileScan& f) {
    // Unlike check_wallclock there is no bench/ exemption: bench timing
    // goes through obs::SteadyClock too, so the allowlist is one directory.
    if (path_contains(f.path, "src/obs/")) return;
    for (const Token& tok : f.tokens) {
      if (tok.kind == Token::Kind::kIdent && tok.text == "steady_clock") {
        report(f, tok.line, "wallclock-outside-obs",
               "steady_clock read outside src/obs/ (use an injected obs::Clock)");
      }
    }
  }

  void check_ambient_rng(const FileScan& f) {
    if (path_contains(f.path, "common/rng")) return;  // the one sanctioned wrapper
    static const std::set<std::string> kAmbient = {"rand", "srand", "random_device", "drand48",
                                                   "lrand48", "random_shuffle"};
    for (const Token& tok : f.tokens) {
      if (tok.kind == Token::Kind::kIdent && kAmbient.count(tok.text)) {
        report(f, tok.line, "ambient-rng", "ambient randomness '" + tok.text + "'");
      }
    }
  }

  void check_unordered_iteration(const FileScan& f) {
    if (!in_deterministic_module(f.path)) return;
    std::set<std::string> idents = unordered_idents(f);
    idents.insert(sibling_idents_.begin(), sibling_idents_.end());

    const auto& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Token::Kind::kIdent) continue;
      // Range-for whose range expression names an unordered container.
      if (t[i].text == "for" && i + 1 < t.size() && t[i + 1].text == "(") {
        const std::size_t close = match_balanced(t, i + 1, "(", ")");
        // Find the top-level ':' separating declaration from range.
        std::size_t colon = 0;
        int depth = 0;
        for (std::size_t j = i + 1; j < close; ++j) {
          if (t[j].text == "(" || t[j].text == "<" || t[j].text == "[") ++depth;
          if (t[j].text == ")" || t[j].text == ">" || t[j].text == "]") --depth;
          if (t[j].text == ":" && depth == 1) {
            colon = j;
            break;
          }
        }
        if (colon == 0) continue;  // classic for loop
        for (std::size_t j = colon + 1; j < close; ++j) {
          if (t[j].kind == Token::Kind::kIdent &&
              (idents.count(t[j].text) || t[j].text.rfind("unordered_", 0) == 0)) {
            report(f, t[j].line, "unordered-iter",
                   "range-for over unordered container '" + t[j].text + "'");
            break;
          }
        }
      }
      // Explicit iteration start on a tracked container.  (`.end()` alone
      // is fine — `it != m.end()` lookups do not observe hash order.)
      if ((t[i].text == "begin" || t[i].text == "cbegin") && i >= 2 && i + 1 < t.size() &&
          t[i + 1].text == "(" && (t[i - 1].text == "." || t[i - 1].text == "->") &&
          t[i - 2].kind == Token::Kind::kIdent && idents.count(t[i - 2].text)) {
        report(f, t[i].line, "unordered-iter",
               "iterator walk of unordered container '" + t[i - 2].text + "'");
      }
    }
  }

  void check_float_reduce(const FileScan& f) {
    if (!in_economics_code(f.path)) return;
    const auto& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Token::Kind::kIdent) continue;
      if (t[i].text != "reduce" && t[i].text != "transform_reduce") continue;
      const bool is_std_call = i >= 2 && t[i - 1].text == "::" && t[i - 2].text == "std";
      if (is_std_call) {
        report(f, t[i].line, "float-reduce", "std::" + t[i].text + " in economics code");
      }
    }
  }

  void check_naked_new(const FileScan& f) {
    const auto& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Token::Kind::kIdent) continue;
      if (t[i].text == "new") {
        report(f, t[i].line, "naked-new", "naked 'new'");
      } else if (t[i].text == "delete") {
        // `= delete` (deleted special member) is idiomatic and allowed.
        if (i > 0 && t[i - 1].text == "=") continue;
        report(f, t[i].line, "naked-new", "naked 'delete'");
      }
    }
  }

  void check_omp(const FileScan& f) {
    for (const Token& tok : f.tokens) {
      if (tok.kind == Token::Kind::kPragma && tok.text.find("omp") != std::string::npos) {
        report(f, tok.line, "omp-pragma", "OpenMP pragma");
      }
    }
  }

  void check_raw_sync(const FileScan& f) {
    // src/dsched/ is the one sanctioned home for raw primitives: the
    // wrappers live there, and the scheduler itself must not be a model.
    if (path_contains(f.path, "src/dsched/")) return;
    // Lock adapters (lock_guard, unique_lock, scoped_lock) are NOT
    // flagged: they are templated over the mutex type and work on
    // dsched::mutex unchanged.  memory_order constants are fine too.
    static const std::set<std::string> kRawSync = {
        "mutex",        "timed_mutex",          "recursive_mutex",
        "shared_mutex", "recursive_timed_mutex", "shared_timed_mutex",
        "condition_variable", "condition_variable_any",
        "atomic",       "atomic_flag",          "atomic_bool",
        "atomic_ref",   "thread",               "jthread",
        "this_thread",  "counting_semaphore",   "binary_semaphore",
        "latch",        "barrier"};
    const auto& t = f.tokens;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
      if (t[i].kind != Token::Kind::kIdent || t[i].text != "std") continue;
      if (t[i + 1].text != "::") continue;
      if (t[i + 2].kind != Token::Kind::kIdent || !kRawSync.count(t[i + 2].text)) continue;
      report(f, t[i + 2].line, "raw-sync-primitive",
             "raw 'std::" + t[i + 2].text + "' outside src/dsched/");
    }
  }

  void check_entry_points(const FileScan& f) {
    for (const EntryPoint& ep : kEntryPoints) {
      if (f.path.size() < ep.file_suffix.size() ||
          f.path.compare(f.path.size() - ep.file_suffix.size(), ep.file_suffix.size(),
                         ep.file_suffix) != 0) {
        continue;
      }
      check_one_entry(f, ep);
    }
  }

  static bool is_ensure_token(const std::string& text) {
    static const std::set<std::string> kExact = {"expects", "ensures"};
    // "check" covers journal::wire::check, the shared codec's throwing
    // precondition used at every WAL/snapshot decode boundary.
    return kExact.count(text) > 0 || text.rfind("DECLOUD_EXPECTS", 0) == 0 ||
           text.rfind("DECLOUD_ENSURES", 0) == 0 || text.rfind("validate", 0) == 0 ||
           text.rfind("audit", 0) == 0 || text.rfind("check", 0) == 0;
  }

  void check_one_entry(const FileScan& f, const EntryPoint& ep) {
    // Split "Class::name" into parts.
    std::vector<std::string> parts;
    {
      std::string name(ep.qualified_name);
      std::size_t pos = 0, sep = 0;
      while ((sep = name.find("::", pos)) != std::string::npos) {
        parts.push_back(name.substr(pos, sep - pos));
        pos = sep + 2;
      }
      parts.push_back(name.substr(pos));
    }

    const auto& t = f.tokens;
    bool found_definition = false;
    for (std::size_t i = 0; i + 2 * parts.size() - 1 < t.size(); ++i) {
      // Match ident (:: ident)* '('.
      bool match = true;
      std::size_t j = i;
      for (std::size_t p = 0; p < parts.size(); ++p) {
        if (p > 0) {
          if (t[j].text != "::") {
            match = false;
            break;
          }
          ++j;
        }
        if (t[j].kind != Token::Kind::kIdent || t[j].text != parts[p]) {
          match = false;
          break;
        }
        ++j;
      }
      if (!match || j >= t.size() || t[j].text != "(") continue;

      const std::size_t close = match_balanced(t, j, "(", ")");
      // Skip trailing qualifiers up to the body (or bail at a declaration).
      std::size_t k = close + 1;
      std::size_t body_open = 0;
      while (k < t.size()) {
        if (t[k].text == "{") {
          body_open = k;
          break;
        }
        if (t[k].text == ";" || t[k].text == "=") break;  // declaration / deleted
        ++k;
      }
      if (body_open == 0) continue;
      found_definition = true;

      const std::size_t body_close = match_balanced(t, body_open, "{", "}");
      bool has_check = false;
      for (std::size_t b = body_open; b < body_close; ++b) {
        if (t[b].kind == Token::Kind::kIdent && is_ensure_token(t[b].text)) {
          has_check = true;
          break;
        }
      }
      if (!has_check) {
        report(f, t[i].line, "entry-ensure",
               "entry point '" + std::string(ep.qualified_name) + "' has no ENSURE-style check");
      }
      i = body_open;  // keep scanning: overloads must each carry a check
    }
    if (!found_definition) {
      report(f, 1, "entry-ensure",
             "entry point '" + std::string(ep.qualified_name) +
                 "' listed in the declint table was not found in this file");
    }
  }

  std::set<std::string> sibling_idents_;
  std::vector<Finding> findings_;
};

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

bool is_cpp_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

int usage() {
  std::fprintf(stderr,
               "usage: declint [--root DIR] [--fix-dry-run] [--list-rules] [SCAN_DIR...]\n"
               "  Scans SCAN_DIRs (default: src tests bench) under DIR (default: cwd)\n"
               "  and exits non-zero when any rule fires.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<std::string> scan_dirs;
  bool fix_dry_run = false;

  for (int a = 1; a < argc; ++a) {
    const std::string_view arg = argv[a];
    if (arg == "--root") {
      if (++a >= argc) return usage();
      root = argv[a];
    } else if (arg == "--fix-dry-run") {
      fix_dry_run = true;
    } else if (arg == "--list-rules") {
      for (const Rule& r : kRules) {
        std::printf("%-16s %.*s\n", std::string(r.id).c_str(),
                    static_cast<int>(r.summary.size()), r.summary.data());
      }
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else {
      scan_dirs.emplace_back(arg);
    }
  }
  if (scan_dirs.empty()) scan_dirs = {"src", "tests", "bench"};

  // Collect files in sorted order so output (and exit paths) are stable.
  std::vector<fs::path> files;
  for (const std::string& dir : scan_dirs) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) {
      std::fprintf(stderr, "declint: no such directory: %s\n", base.string().c_str());
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (entry.is_regular_file() && is_cpp_source(entry.path())) files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const fs::path& file : files) {
    const std::string rel = fs::relative(file, root).generic_string();
    FileScan scan = lex_file(file, rel);
    Linter linter;
    // A .cpp sees the unordered members its own header declares.
    if (file.extension() == ".cpp") {
      fs::path header = file;
      header.replace_extension(".hpp");
      if (fs::exists(header)) {
        linter.set_sibling_idents(
            Linter::unordered_idents(lex_file(header, header.generic_string())));
      }
    }
    linter.scan(scan);
    for (Finding& fd : linter.take_findings()) findings.push_back(std::move(fd));
  }

  for (const Finding& fd : findings) {
    std::printf("%s:%d: [%s] %s\n", fd.path.c_str(), fd.line, fd.rule.c_str(),
                fd.message.c_str());
    if (fix_dry_run) {
      const Rule* rule = find_rule(fd.rule);
      std::printf("    fix: %.*s\n", static_cast<int>(rule->fix_hint.size()),
                  rule->fix_hint.data());
    }
  }
  if (!findings.empty()) {
    std::printf("declint: %zu finding%s across %zu file%s%s\n", findings.size(),
                findings.size() == 1 ? "" : "s",
                [&] {
                  std::set<std::string> fs_;
                  for (const auto& fd : findings) fs_.insert(fd.path);
                  return fs_.size();
                }(),
                findings.size() == 1 ? "" : "s",
                fix_dry_run ? " (dry run: not failing the build)" : "");
  } else {
    std::printf("declint: clean (%zu files)\n", files.size());
  }
  return findings.empty() || fix_dry_run ? 0 : 1;
}

// Seeded violation fixture for declint over src/fault/ (NOT compiled):
// fault code is a deterministic module, so hash-order iteration, ambient
// randomness, and an unchecked FaultInjector::fires entry point must all
// be findings — they would silently break the chaos replay contract.
#include <cstdlib>
#include <unordered_map>

namespace decloud::fault {

struct FaultSite {
  unsigned long long index = 0;
};

struct FaultInjector {
  bool fires(int kind, const FaultSite& site) const;
};

// entry-ensure: a fault decision entry point with no ENSURE-style check.
bool FaultInjector::fires(int kind, const FaultSite& site) const {
  std::unordered_map<int, double> coins;
  coins[kind] = 0.5;

  double total = 0.0;
  // unordered-iter: hash-order iteration in a deterministic module.
  for (const auto& [rule, p] : coins) {
    total += p;
  }

  // ambient-rng: a stateful global generator instead of the seeded site
  // hash — decisions would depend on query order and thread count.
  return static_cast<double>(std::rand()) / 2147483647.0 <
         total + static_cast<double>(site.index) * 0.0;
}

}  // namespace decloud::fault

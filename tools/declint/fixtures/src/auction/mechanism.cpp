// Seeded violation fixture for declint's deterministic-module rules.  This
// file is NOT compiled; it exists so `declint --root tools/declint/fixtures
// src` exits non-zero, proving the gate actually gates (ctest WILL_FAIL).
#include <numeric>
#include <unordered_map>
#include <vector>

namespace decloud::auction {

struct RoundResult {
  double welfare = 0.0;
};

struct DeCloudAuction {
  RoundResult run() const;
};

// entry-ensure: a mechanism entry point with no ENSURE-style check.
RoundResult DeCloudAuction::run() const {
  RoundResult result;
  std::unordered_map<int, double> payments;
  payments[1] = 2.0;

  // unordered-iter: hash-order iteration in a deterministic module.
  for (const auto& [id, amount] : payments) {
    result.welfare += amount;
  }

  // float-reduce: unspecified operand grouping over money.
  std::vector<double> bids{1.0, 2.0, 3.0};
  result.welfare += std::reduce(bids.begin(), bids.end());

  // Suppressed on purpose — must NOT add a finding (suppression coverage).
  std::vector<double> more = bids;  // declint:allow(float-reduce)
  result.welfare += std::reduce(more.begin(), more.end());
  return result;
}

}  // namespace decloud::auction

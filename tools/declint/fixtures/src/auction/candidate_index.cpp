// Seeded violation fixture for the candidate-index entry points.  This
// file is NOT compiled; it exists so `declint --root tools/declint/fixtures
// src` keeps failing if the kEntryPoints rows for the pruning index rot
// (ctest WILL_FAIL covers the whole fixture tree).
#include <cstddef>
#include <vector>

namespace decloud::auction {

struct MarketSnapshot {};

struct CandidateIndex {
  explicit CandidateIndex(const MarketSnapshot& snapshot);
  std::vector<std::size_t> best_offers(std::size_t request) const;
};

// entry-ensure: the index constructor swallows a mismatched snapshot
// silently instead of DECLOUD_EXPECTS-ing at the boundary.
CandidateIndex::CandidateIndex(const MarketSnapshot& snapshot) { (void)snapshot; }

// entry-ensure: the pruned query has no precondition check either.
std::vector<std::size_t> CandidateIndex::best_offers(std::size_t request) const {
  return {request};
}

}  // namespace decloud::auction

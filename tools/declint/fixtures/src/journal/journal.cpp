// Seeded violation fixture for declint over src/journal/ (NOT compiled):
// the flight recorder is a deterministic module — journal bytes must be
// identical across thread counts — so a wall-clock event stamp, a
// hash-order ring walk in the export, and unchecked Journal::append /
// Journal::export_jsonl entry points must all be findings here
// (declint.journal_fixture, WILL_FAIL).
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>

namespace decloud::journal {

struct Event {
  std::uint64_t seq = 0;
  std::uint64_t stamp = 0;
};

struct Journal {
  void append(std::size_t ring, Event event);
  std::string export_jsonl() const;
  std::unordered_map<std::size_t, Event> latest_;
  std::uint64_t next_seq_ = 0;
};

// entry-ensure: the append boundary with no EXPECTS/validate check.
void Journal::append(std::size_t ring, Event event) {
  // wallclock-outside-obs: stamping events with wall time makes two runs
  // over the same submission sequence journal differently — stamps must
  // be logical clocks (seq + the emitting layer's epoch counter).
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  event.stamp = static_cast<std::uint64_t>(now.count());
  event.seq = next_seq_++;
  latest_[ring] = event;
}

// entry-ensure: the export boundary with no EXPECTS/validate check.
std::string Journal::export_jsonl() const {
  std::string out;
  // unordered-iter: hash-order ring walk — the export must visit rings in
  // fixed index order or the bytes differ across platforms.
  for (const auto& [ring, event] : latest_) {
    out += std::to_string(ring) + ":" + std::to_string(event.seq) + "\n";
  }
  return out;
}

}  // namespace decloud::journal

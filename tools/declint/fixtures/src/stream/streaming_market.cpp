// Seeded violation fixture for declint over src/stream/ (NOT compiled):
// the continuous market is a deterministic module — micro-epoch closes
// must replay byte-identically — so a wall-clock read, hash-order
// iteration, and an unchecked StreamingMarket::submit entry point must
// all be findings here (declint.stream_fixture, WILL_FAIL).
#include <chrono>
#include <cstddef>
#include <unordered_map>

namespace decloud::stream {

struct Request {
  std::size_t shard = 0;
};

struct StreamingMarket {
  bool submit(const Request& request);
  std::unordered_map<std::size_t, std::size_t> pending_;
  std::size_t clock_ = 0;
};

// entry-ensure: the stream ingest boundary with no EXPECTS/validate check.
bool StreamingMarket::submit(const Request& request) {
  pending_[request.shard] += 1;

  // wallclock-outside-obs: closing a micro-epoch on wall time makes the
  // trigger sequence unreplayable — triggers must use the logical clock.
  const auto deadline = std::chrono::steady_clock::now();
  (void)deadline;

  std::size_t total = 0;
  // unordered-iter: hash-order iteration deciding close order.
  for (const auto& [shard, count] : pending_) {
    total += count;
  }
  return total > ++clock_;
}

}  // namespace decloud::stream

// Seeded violation fixture for declint over src/wal/ (NOT compiled): the
// write-ahead log is a deterministic module — replaying a WAL must
// rebuild byte-identical state — so a wall-clock record stamp, a
// hash-order segment walk in the merged load, and unchecked
// read_segment / load_wal / WalWriter::append_bid / WalWriter::append_block
// entry points must all be findings here (declint.wal_fixture, WILL_FAIL).
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace decloud::wal {

struct Record {
  std::uint64_t input_seq = 0;
  std::uint64_t stamp = 0;
};

struct SegmentContents {
  std::vector<Record> records;
};

struct WalContents {
  std::vector<Record> inputs;
};

struct WalWriter {
  std::uint64_t append_bid(std::size_t segment, bool is_offer);
  void append_block(std::size_t shard, std::uint64_t height);
  std::unordered_map<std::size_t, std::vector<Record>> segments_;
  std::uint64_t next_input_seq_ = 0;
};

// entry-ensure: a decode boundary with no check on the frame contents.
SegmentContents read_segment(const std::string& path, std::size_t expected_segment) {
  SegmentContents contents;
  contents.records.push_back({expected_segment + path.size(), 0});
  return contents;
}

// entry-ensure: the merge boundary with no sequence density check.
WalContents load_wal(const std::string& dir, std::size_t num_shards) {
  WalContents contents;
  for (std::size_t s = 0; s <= num_shards; ++s) {
    const SegmentContents seg = read_segment(dir, s);
    contents.inputs.insert(contents.inputs.end(), seg.records.begin(), seg.records.end());
  }
  return contents;
}

// entry-ensure: an append boundary with no segment-range check.
std::uint64_t WalWriter::append_bid(std::size_t segment, bool is_offer) {
  Record record;
  // wallclock-outside-obs: stamping records with wall time makes the
  // replayed byte stream differ from the original — stamps must be the
  // logical input sequence, nothing else.
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  record.stamp = static_cast<std::uint64_t>(now.count()) + (is_offer ? 1 : 0);
  record.input_seq = next_input_seq_++;
  segments_[segment].push_back(record);
  return record.input_seq;
}

// entry-ensure: an append boundary with no shard-range check.
void WalWriter::append_block(std::size_t shard, std::uint64_t height) {
  // unordered-iter: hash-order segment walk — flushing segments in hash
  // order reorders the on-disk frames across platforms.
  for (auto& [segment, records] : segments_) {
    if (segment == shard + 1) records.push_back({height, 0});
  }
}

}  // namespace decloud::wal

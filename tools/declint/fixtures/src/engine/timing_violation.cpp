// FAIL fixture for the wallclock-outside-obs rule, and ONLY that rule:
// the declint.wallclock_outside_obs ctest scans exactly this directory
// (WILL_FAIL), so the finding below must come from the steady_clock read
// — keep this file clean of every other rule's triggers.
#include <chrono>

namespace decloud::engine {

double epoch_wall_ms() {
  // wallclock-outside-obs: engine code must take an obs::Clock* instead.
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace decloud::engine

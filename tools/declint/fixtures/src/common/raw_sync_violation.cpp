// Seeded declint fixture: raw std sync primitives outside src/dsched/.
// Every declaration below must trip the raw-sync-primitive rule — the
// dsched explorer cannot drive schedules through primitives it does not
// wrap, so a raw primitive on an engine path silently shrinks the
// checked interleaving space to one.
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace fixture {

struct RawQueue {
  std::mutex mutex_;                  // finding: raw-sync-primitive
  std::condition_variable cv_;        // finding: raw-sync-primitive
  std::atomic<int> depth_{0};         // finding: raw-sync-primitive
};

inline void raw_worker() {
  std::thread worker([] {});          // finding: raw-sync-primitive
  std::this_thread::yield();          // finding: raw-sync-primitive
  worker.join();
}

}  // namespace fixture

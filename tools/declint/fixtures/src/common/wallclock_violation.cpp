// Seeded violations: ambient clocks and randomness outside the allowlist.
// Not compiled; scanned by the declint.fixture ctest (expected to fail).
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace decloud {

long bad_timestamp() {
  // wallclock: the host clock must never influence mechanism state.
  const auto now = std::chrono::system_clock::now();
  return std::chrono::duration_cast<std::chrono::seconds>(now.time_since_epoch()).count() +
         time(nullptr);
}

long bad_steady_timestamp() {
  // wallclock-outside-obs: even the monotonic clock is off-limits outside
  // src/obs/ — timing flows through an injected obs::Clock.
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(now.time_since_epoch()).count();
}

int bad_random() {
  // ambient-rng: non-reproducible across miners.
  std::random_device rd;
  srand(42);
  return static_cast<int>(rd()) + rand();
}

}  // namespace decloud

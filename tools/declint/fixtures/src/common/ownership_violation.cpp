// Seeded violations: naked ownership and OpenMP scheduling.
// Not compiled; scanned by the declint.fixture ctest (expected to fail).

namespace decloud {

struct Node {
  int value = 0;
};

int bad_ownership() {
  // naked-new: ownership must go through containers / make_unique.
  Node* n = new Node();
  const int v = n->value;
  delete n;

  int sum = 0;
// omp-pragma: OpenMP's schedule is nondeterministic.
#pragma omp parallel for
  for (int i = 0; i < 8; ++i) {
    sum += i;
  }
  return v + sum;
}

}  // namespace decloud

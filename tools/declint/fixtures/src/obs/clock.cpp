// PASS fixture for the wallclock-outside-obs rule: steady_clock reads are
// legal here because the path contains src/obs/ — this models the real
// src/obs/clock.cpp, the one sanctioned wall-clock site.  The
// declint.obs_allow ctest scans exactly this directory and must exit 0;
// if a rule ever fires on this file, the allowlist broke.
#include <chrono>
#include <cstdint>

namespace decloud::obs {

std::uint64_t sanctioned_now_ns() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t).count());
}

}  // namespace decloud::obs

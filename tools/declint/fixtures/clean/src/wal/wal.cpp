// PASS fixture for declint over src/wal/ (NOT compiled): the shape a
// compliant write-ahead-log file takes — checked decode/merge/append
// boundaries, logical-sequence stamps only, segments walked in fixed
// index order.  The declint.wal_clean ctest scans exactly this tree and
// must stay clean; paired with declint.wal_fixture (WILL_FAIL) it pins
// both directions of every rule the wal module is subject to.
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace decloud::wal {

void check(bool ok, const char* what);

struct Record {
  std::uint64_t input_seq = 0;
};

struct SegmentContents {
  std::vector<Record> records;
};

struct WalContents {
  std::vector<Record> inputs;
};

struct WalWriter {
  std::uint64_t append_bid(std::size_t segment, bool is_offer);
  void append_block(std::size_t shard, std::uint64_t height);
  std::vector<std::vector<Record>> segments_;
  std::uint64_t next_input_seq_ = 0;
};

SegmentContents read_segment(const std::string& path, std::size_t expected_segment) {
  check(!path.empty(), "wal segment path must not be empty");  // entry check
  SegmentContents contents;
  contents.records.push_back({expected_segment});
  return contents;
}

WalContents load_wal(const std::string& dir, std::size_t num_shards) {
  WalContents contents;
  for (std::size_t s = 0; s <= num_shards; ++s) {  // fixed segment order
    const SegmentContents seg = read_segment(dir, s);
    contents.inputs.insert(contents.inputs.end(), seg.records.begin(), seg.records.end());
  }
  for (std::size_t i = 0; i < contents.inputs.size(); ++i) {
    check(contents.inputs[i].input_seq <= i, "wal input sequence has a gap");  // entry check
  }
  return contents;
}

std::uint64_t WalWriter::append_bid(std::size_t segment, bool is_offer) {
  check(segment < segments_.size(), "wal segment out of range");  // entry check
  Record record;
  record.input_seq = next_input_seq_++;  // logical clock, never wall time
  if (is_offer) record.input_seq |= 0;
  segments_[segment].push_back(record);
  return record.input_seq;
}

void WalWriter::append_block(std::size_t shard, std::uint64_t height) {
  check(shard + 1 < segments_.size(), "wal shard out of range");  // entry check
  segments_[shard + 1].push_back({height});
}

}  // namespace decloud::wal

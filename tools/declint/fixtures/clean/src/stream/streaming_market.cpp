// PASS fixture for declint over src/stream/ (NOT compiled): the shape a
// compliant continuous-market file takes — validated ingest boundary,
// logical-clock trigger, ordered iteration, no wall time.  The
// declint.stream_clean ctest scans exactly this tree and must stay clean;
// paired with declint.stream_fixture (WILL_FAIL) it pins both directions
// of every rule the stream module is subject to.
#include <cstddef>
#include <map>

namespace decloud::stream {

struct Request {
  std::size_t shard = 0;
};

void validate(const Request& request);

struct StreamingMarket {
  bool submit(const Request& request);
  void close_micro_epoch();
  std::map<std::size_t, std::size_t> pending_;
  std::size_t clock_ = 0;
};

void validate_close(std::size_t clock);

bool StreamingMarket::submit(const Request& request) {
  validate(request);  // entry check: malformed bids fault before counting
  pending_[request.shard] += 1;

  std::size_t total = 0;
  for (const auto& [shard, count] : pending_) {
    total += count;
  }
  return total > ++clock_;  // logical clock, never wall time
}

void StreamingMarket::close_micro_epoch() {
  validate_close(clock_);  // entry check: the trigger state must be sane
  pending_.clear();
}

}  // namespace decloud::stream

// Seeded declint fixture: src/dsched/ is the sanctioned home for raw
// primitives (the wrappers themselves must be built from something), so
// this file — a miniature of sync.hpp's shape — must scan clean even
// though it names every primitive the raw-sync-primitive rule bans
// elsewhere.
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace fixture::dsched {

class mutex {
  std::mutex real_;  // sanctioned: inside src/dsched/
};

class condition_variable {
  std::condition_variable real_;  // sanctioned: inside src/dsched/
};

template <typename T>
class atomic {
  std::atomic<T> value_{};  // sanctioned: inside src/dsched/
};

class thread {
  std::thread real_;  // sanctioned: inside src/dsched/
};

}  // namespace fixture::dsched

// PASS fixture for declint over src/journal/ (NOT compiled): the shape a
// compliant flight-recorder file takes — checked append and export
// boundaries, logical-clock stamps only, rings walked in fixed index
// order.  The declint.journal_clean ctest scans exactly this tree and
// must stay clean; paired with declint.journal_fixture (WILL_FAIL) it
// pins both directions of every rule the journal module is subject to.
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace decloud::journal {

void validate_ring(std::size_t ring, std::size_t num_rings);

struct Event {
  std::uint64_t seq = 0;
  std::uint64_t epoch = 0;
};

struct Journal {
  void append(std::size_t ring, Event event);
  std::string export_jsonl() const;
  std::vector<std::vector<Event>> rings_;
  std::uint64_t next_seq_ = 0;
};

void Journal::append(std::size_t ring, Event event) {
  validate_ring(ring, rings_.size());  // entry check: ring must exist
  event.seq = next_seq_++;             // logical clock, never wall time
  rings_[ring].push_back(event);
}

std::string Journal::export_jsonl() const {
  validate_ring(0, rings_.size());  // entry check: at least one ring
  std::string out;
  for (std::size_t ring = 0; ring < rings_.size(); ++ring) {  // fixed order
    for (const Event& event : rings_[ring]) {
      out += std::to_string(ring) + ":" + std::to_string(event.seq) + "\n";
    }
  }
  return out;
}

}  // namespace decloud::journal

// dsched_explore — runs, replays, and delta-minimizes dsched schedule
// explorations over the named models in src/dsched/models.cpp
// (DESIGN.md §3i).  Only built when the tree is configured with
// -DDECLOUD_DSCHED=ON.
//
//   dsched_explore --list
//   dsched_explore --model queue_admission                 # model defaults
//   dsched_explore --model stream_2shard --mode pct --seed 42 --schedules 10000
//   dsched_explore --model queue_close --replay 'dsched1;...'
//   dsched_explore --model queue_close --replay @cert.txt --minimize
//
// Exit status: 0 when every requested exploration is green, 1 on a model
// failure (certificate printed), 2 on usage errors.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dsched/models.hpp"
#include "dsched/scheduler.hpp"

namespace {

using decloud::dsched::ModelSpec;
using decloud::dsched::Options;
using decloud::dsched::RunResult;

int usage(const std::string& error) {
  if (!error.empty()) std::cerr << "dsched_explore: " << error << "\n";
  std::cerr << "usage: dsched_explore --list\n"
            << "       dsched_explore --model <name> [--mode exhaustive|pct] [--seed N]\n"
            << "                      [--schedules N] [--max-steps N] [--no-sleep-sets]\n"
            << "                      [--replay <certificate|@file>] [--minimize]\n"
            << "                      [--cert-out <file>]\n";
  return 2;
}

std::string load_certificate(const std::string& arg) {
  if (arg.empty() || arg[0] != '@') return arg;
  std::ifstream in(arg.substr(1));
  if (!in) throw std::runtime_error("cannot read certificate file " + arg.substr(1));
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) text.pop_back();
  return text;
}

void print_result(const std::string& name, const Options& options, const RunResult& result) {
  std::cout << "model " << name << ": " << (result.failed ? "FAIL" : "ok") << "\n"
            << "  schedules " << result.schedules << ", pruned " << result.pruned
            << ", last-steps " << result.steps << ", max-threads " << result.max_threads
            << "\n"
            << "  complete " << (result.complete ? "true" : "false") << ", trace-hash 0x"
            << std::hex << result.trace_hash << std::dec << "\n";
  if (options.mode == Options::Mode::kPct) std::cout << "  seed " << options.seed << "\n";
  if (result.failed) {
    std::cout << "  failure: " << result.failure << "\n"
              << "  certificate: " << result.certificate << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  bool list = false;
  bool do_minimize = false;
  std::string model_name;
  std::string replay_arg;
  std::string cert_out;
  Options overrides;
  bool have_mode = false;
  bool have_seed = false;
  bool have_schedules = false;
  bool have_max_steps = false;
  bool no_sleep_sets = false;

  try {
    for (std::size_t i = 0; i < args.size(); ++i) {
      const std::string& a = args[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= args.size()) throw std::runtime_error("missing value for " + a);
        return args[++i];
      };
      if (a == "--list") {
        list = true;
      } else if (a == "--model") {
        model_name = value();
      } else if (a == "--mode") {
        const std::string m = value();
        if (m == "exhaustive") {
          overrides.mode = Options::Mode::kExhaustive;
        } else if (m == "pct") {
          overrides.mode = Options::Mode::kPct;
        } else {
          return usage("unknown mode " + m);
        }
        have_mode = true;
      } else if (a == "--seed") {
        overrides.seed = std::stoull(value());
        have_seed = true;
      } else if (a == "--schedules") {
        overrides.max_schedules = std::stoull(value());
        have_schedules = true;
      } else if (a == "--max-steps") {
        overrides.max_steps = std::stoull(value());
        have_max_steps = true;
      } else if (a == "--no-sleep-sets") {
        no_sleep_sets = true;
      } else if (a == "--replay") {
        replay_arg = value();
      } else if (a == "--minimize") {
        do_minimize = true;
      } else if (a == "--cert-out") {
        cert_out = value();
      } else {
        return usage("unknown argument " + a);
      }
    }
  } catch (const std::exception& e) {
    return usage(e.what());
  }

  if (list) {
    for (const ModelSpec& m : decloud::dsched::models()) {
      std::cout << m.name << " — " << m.description << "\n";
    }
    return 0;
  }
  if (model_name.empty()) return usage("--model (or --list) is required");
  const ModelSpec* spec = decloud::dsched::find_model(model_name);
  if (spec == nullptr) return usage("unknown model " + model_name + " (see --list)");

  Options options = spec->options;
  if (have_mode) options.mode = overrides.mode;
  if (have_seed) options.seed = overrides.seed;
  if (have_schedules) options.max_schedules = overrides.max_schedules;
  if (have_max_steps) options.max_steps = overrides.max_steps;
  if (no_sleep_sets) options.sleep_sets = false;

  const auto body = spec->make_body();
  RunResult result;
  try {
    if (!replay_arg.empty()) {
      const std::string certificate = load_certificate(replay_arg);
      result = decloud::dsched::replay(certificate, body);
      print_result(model_name + " (replay)", options, result);
      if (result.failed && do_minimize) {
        const std::string minimized = decloud::dsched::minimize(certificate, spec->make_body());
        std::cout << "  minimized: " << minimized << "\n";
        result.certificate = minimized;
      }
    } else {
      result = decloud::dsched::explore(options, body);
      print_result(model_name, options, result);
      if (result.failed && do_minimize) {
        const std::string minimized =
            decloud::dsched::minimize(result.certificate, spec->make_body());
        std::cout << "  minimized: " << minimized << "\n";
        result.certificate = minimized;
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "dsched_explore: " << e.what() << "\n";
    return 2;
  }

  if (result.failed && !cert_out.empty()) {
    std::ofstream out(cert_out);
    out << result.certificate << "\n";
  }
  return result.failed ? 1 : 0;
}

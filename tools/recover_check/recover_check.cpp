// recover_check: kill-and-recover byte-identity harness (DESIGN.md §3k).
//
// For each scenario it runs the engine driver four ways:
//
//   1. reference  — uninterrupted, WAL on, no crash plan;
//   2. crash      — same config plus a crash_at_site plan, expected to die
//                   with fault::kCrashExitCode (a plan that never fires is
//                   a scenario bug and fails the check);
//   3. recover    — --recover over the crashed WAL, possibly at a
//                   DIFFERENT thread count, expected to exit 0;
//   4. re-recover — --recover again over the now-complete WAL, proving
//                   recovery is idempotent.
//
// and byte-compares summary, journal, and metrics files of runs 3 and 4
// against run 1.  Any difference, wrong exit status, or driver error is a
// failure; the process exit code is the number of failing scenarios.
//
// usage: recover_check <engine_driver> <workdir> [--quick]
//
// --quick drops the hardware-concurrency thread sweep (CI's -j1/-j2 grid
// covers it) to keep local runs fast.
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

constexpr int kCrashExitCode = 86;  // fault::kCrashExitCode

struct Scenario {
  std::string name;
  std::string flags;        // mode/workload flags shared by every run
  std::string crash_plan;   // crash_at_site spec for run 2
  std::size_t crash_threads = 2;
  std::size_t recover_threads = 1;
};

/// Runs `command`, returns its exit status (-1 when it died on a signal).
int run(const std::string& command) {
  const int status = std::system(command.c_str());
  if (status == -1) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return -1;
}

bool same_bytes(const std::string& a, const std::string& b) {
  std::ifstream fa(a, std::ios::binary);
  std::ifstream fb(b, std::ios::binary);
  if (!fa || !fb) return false;
  std::ostringstream sa;
  std::ostringstream sb;
  sa << fa.rdbuf();
  sb << fb.rdbuf();
  return sa.str() == sb.str();
}

/// Output-file flags plus stdout redirect for one run labelled `tag`.
std::string outputs(const std::string& dir, const std::string& tag) {
  return " --journal-out " + dir + "/" + tag + ".journal --metrics-out " + dir + "/" + tag +
         ".metrics > " + dir + "/" + tag + ".summary";
}

bool compare_outputs(const std::string& dir, const std::string& name, const std::string& want,
                     const std::string& got) {
  bool ok = true;
  for (const char* kind : {"summary", "journal", "metrics"}) {
    const std::string a = dir + "/" + want + "." + kind;
    const std::string b = dir + "/" + got + "." + kind;
    if (!same_bytes(a, b)) {
      std::fprintf(stderr, "recover_check: %s: %s %s differs from %s\n", name.c_str(), got.c_str(),
                   kind, want.c_str());
      ok = false;
    }
  }
  return ok;
}

bool run_scenario(const std::string& driver, const std::string& workdir, const Scenario& s) {
  const std::string dir = workdir + "/" + s.name;
  (void)run("rm -rf " + dir + " && mkdir -p " + dir);
  const std::string wal = dir + "/wal";
  bool ok = true;

  // 1. Uninterrupted reference (its own WAL dir keeps run 2's separate).
  const std::string ref = driver + " " + s.flags + " --threads " +
                          std::to_string(s.crash_threads) + " --wal-dir " + dir + "/walref" +
                          outputs(dir, "ref");
  if (const int rc = run(ref); rc != 0) {
    std::fprintf(stderr, "recover_check: %s: reference run exited %d\n", s.name.c_str(), rc);
    return false;
  }

  // 2. Crash run: must die at the injected site.
  const std::string crash = driver + " " + s.flags + " --threads " +
                            std::to_string(s.crash_threads) + " --wal-dir " + wal +
                            " --crash-plan '" + s.crash_plan + "'" + outputs(dir, "crash") +
                            " 2>/dev/null";
  if (const int rc = run(crash); rc != kCrashExitCode) {
    std::fprintf(stderr,
                 "recover_check: %s: crash run exited %d, want %d (plan '%s' never fired?)\n",
                 s.name.c_str(), rc, kCrashExitCode, s.crash_plan.c_str());
    return false;
  }

  // 3. Recover at a different thread count; outputs must match run 1.
  const std::string recover = driver + " " + s.flags + " --threads " +
                              std::to_string(s.recover_threads) + " --wal-dir " + wal +
                              " --recover" + outputs(dir, "recover");
  if (const int rc = run(recover); rc != 0) {
    std::fprintf(stderr, "recover_check: %s: recover run exited %d\n", s.name.c_str(), rc);
    return false;
  }
  ok = compare_outputs(dir, s.name, "ref", "recover") && ok;

  // 4. Recover AGAIN over the completed WAL: replay-to-end, same bytes.
  const std::string again = driver + " " + s.flags + " --threads " +
                            std::to_string(s.crash_threads) + " --wal-dir " + wal + " --recover" +
                            outputs(dir, "rerecover");
  if (const int rc = run(again); rc != 0) {
    std::fprintf(stderr, "recover_check: %s: double-recover run exited %d\n", s.name.c_str(), rc);
    return false;
  }
  ok = compare_outputs(dir, s.name, "ref", "rerecover") && ok;

  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: recover_check <engine_driver> <workdir> [--quick]\n");
    return 2;
  }
  const std::string driver = argv[1];
  const std::string workdir = argv[2];
  bool quick = false;
  for (int i = 3; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }

  const std::string batch =
      "--shards 4 --requests 240 --bids-per-epoch 60 --seed 7 --snapshot-every 2";
  const std::string stream =
      "--stream --microepoch-bids 50 --shards 4 --requests 240 --bids-per-epoch 60 --seed 7 "
      "--snapshot-every 1";
  const std::string chaos =
      " --fault-plan 'withhold_reveal:p=0.2;dishonest_vote:p=0.25;deny_agreement:p=0.2;"
      "reject_ingest:p=0.1' --fault-seed 42";

  // Site ids: 0 after-bid-append, 1 after-tick-append (batch only: stream
  // ticks are not WAL inputs), 2 mid-epoch, 3 after-block-append,
  // 4 mid-snapshot.
  std::vector<Scenario> scenarios = {
      {"batch_bid", batch, "crash_at_site:attempts=0:index=100", 2, 1},
      {"batch_tick", batch, "crash_at_site:attempts=1:index=3", 2, 4},
      {"batch_midepoch", batch, "crash_at_site:attempts=2:index=2:shards=1", 1, 2},
      {"batch_block", batch, "crash_at_site:attempts=3:index=1", 2, 2},
      {"batch_midsnap", batch, "crash_at_site:attempts=4:index=4", 2, 1},
      {"batch_chaos_bid", batch + chaos, "crash_at_site:attempts=0:index=150", 2, 1},
      {"batch_chaos_midsnap", batch + chaos, "crash_at_site:attempts=4:index=2", 1, 2},
      {"stream_bid", stream, "crash_at_site:attempts=0:index=150", 2, 1},
      {"stream_block", stream, "crash_at_site:attempts=3:index=1", 2, 2},
      {"stream_midsnap", stream, "crash_at_site:attempts=4:index=3", 2, 1},
      {"stream_chaos_bid", stream + chaos, "crash_at_site:attempts=0:index=150", 2, 1},
      {"stream_chaos_midsnap", stream + chaos, "crash_at_site:attempts=4:index=3", 1, 2},
  };
  if (!quick) {
    const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    scenarios.push_back({"batch_hw", batch, "crash_at_site:attempts=0:index=100", hw, 1});
    scenarios.push_back({"stream_hw", stream + chaos, "crash_at_site:attempts=0:index=200", 1, hw});
  }

  int failures = 0;
  for (const Scenario& s : scenarios) {
    const bool ok = run_scenario(driver, workdir, s);
    std::printf("%-22s %s\n", s.name.c_str(), ok ? "ok" : "FAIL");
    if (!ok) ++failures;
  }
  if (failures == 0) {
    std::printf("recover_check: all %zu scenarios byte-identical\n", scenarios.size());
  } else {
    std::printf("recover_check: %d scenario(s) FAILED\n", failures);
  }
  return failures;
}

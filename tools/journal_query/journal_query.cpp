// journal_query — query/diff front end for the market flight recorder.
//
// Reads a binary journal written by `engine_driver --journal-out` (format:
// src/journal/journal.hpp) and either summarizes it, exports it as JSONL,
// or byte-diffs two journals:
//
//   journal_query run.journal                 per-kind counts + economics
//   journal_query run.journal --jsonl         one JSON object per event
//   journal_query run.journal --jsonl --ring 2 --kind trade_struck
//   journal_query run.journal --epoch 17      only events of epoch 17
//   journal_query --diff a.journal b.journal  exit 0 iff byte-identical
//
//   --jsonl        JSONL export instead of the summary
//   --ring N       only ring N (0 = control, s+1 = shard s)
//   --kind NAME    only events of this kind (names from kind_name())
//   --epoch N      only events stamped with logical epoch N
//   --diff A B     byte-compare two journals; exit 0 when identical,
//                  exit 1 with the first differing offset otherwise —
//                  the kill-and-recover oracle ROADMAP item 5's WAL
//                  replay will assert with.
//
// Filters compose (AND).  The summary of a filtered view recomputes the
// aggregates over the surviving events only.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "journal/journal.hpp"

namespace {

using namespace decloud;

/// Whole-file read; returns false (with a message) on I/O failure.
bool read_file(const char* path, std::vector<std::uint8_t>& out) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "journal_query: cannot open %s\n", path);
    return false;
  }
  std::uint8_t buf[65536];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.insert(out.end(), buf, buf + n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "journal_query: read error on %s\n", path);
  return ok;
}

struct Filter {
  std::size_t ring = SIZE_MAX;     ///< SIZE_MAX = any ring
  int kind = -1;                   ///< -1 = any kind
  std::uint64_t epoch = UINT64_MAX;  ///< UINT64_MAX = any epoch

  [[nodiscard]] bool matches(std::size_t event_ring, const journal::Event& e) const {
    if (ring != SIZE_MAX && event_ring != ring) return false;
    if (kind >= 0 && static_cast<int>(e.kind) != kind) return false;
    if (epoch != UINT64_MAX && e.epoch != epoch) return false;
    return true;
  }
};

/// Validates the parsed command line; the entry-point contract the
/// determinism lint pins (`main` is a registered entry).
bool validate_args(const char* journal_path, const char* diff_a, const char* diff_b) {
  if (diff_a != nullptr || diff_b != nullptr) {
    if (diff_a == nullptr || diff_b == nullptr) {
      std::fprintf(stderr, "journal_query: --diff needs two paths\n");
      return false;
    }
    return true;
  }
  if (journal_path == nullptr) {
    std::fprintf(stderr,
                 "usage: journal_query JOURNAL [--jsonl] [--ring N] [--kind NAME] [--epoch N]\n"
                 "       journal_query --diff A B\n");
    return false;
  }
  return true;
}

int diff_journals(const char* path_a, const char* path_b) {
  std::vector<std::uint8_t> a, b;
  if (!read_file(path_a, a) || !read_file(path_b, b)) return 2;
  const std::size_t limit = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < limit; ++i) {
    if (a[i] != b[i]) {
      std::printf("differ at offset %zu (0x%02x vs 0x%02x)\n", i, a[i], b[i]);
      return 1;
    }
  }
  if (a.size() != b.size()) {
    std::printf("differ in length (%zu vs %zu bytes, common prefix identical)\n", a.size(),
                b.size());
    return 1;
  }
  std::printf("identical (%zu bytes)\n", a.size());
  return 0;
}

void print_summary(const journal::Journal& journal, const Filter& filter) {
  std::uint64_t kind_counts[journal::kNumEventKinds] = {};
  std::uint64_t total = 0;
  std::uint64_t trades = 0;
  double welfare = 0.0;
  double payments = 0.0;
  double price_sum = 0.0;
  double price_min = 0.0;
  double price_max = 0.0;
  std::uint64_t carried = 0;
  std::uint64_t abandoned = 0;
  for (std::size_t ring = 0; ring < journal.num_rings(); ++ring) {
    for (const journal::Event& e : journal.events(ring)) {
      if (!filter.matches(ring, e)) continue;
      ++total;
      ++kind_counts[static_cast<std::size_t>(e.kind)];
      switch (e.kind) {
        case journal::EventKind::kTradeStruck:
          payments += e.x;
          price_sum += e.y;
          if (trades == 0 || e.y < price_min) price_min = e.y;
          if (trades == 0 || e.y > price_max) price_max = e.y;
          ++trades;
          break;
        case journal::EventKind::kBlockMined: welfare += e.x; break;
        case journal::EventKind::kResidueCarried: carried += e.a; break;
        case journal::EventKind::kResidueAbandoned: abandoned += e.a + e.b; break;
        default: break;
      }
    }
  }
  std::printf("rings: %zu  capacity: %zu  events: %" PRIu64 "\n", journal.num_rings(),
              journal.capacity(), total);
  std::uint64_t drops = 0;
  for (std::size_t ring = 0; ring < journal.num_rings(); ++ring) drops += journal.dropped(ring);
  if (drops > 0) std::printf("dropped (ring overflow): %" PRIu64 "\n", drops);
  for (std::size_t k = 0; k < journal::kNumEventKinds; ++k) {
    if (kind_counts[k] == 0) continue;
    std::printf("  %-20s %" PRIu64 "\n",
                journal::kind_name(static_cast<journal::EventKind>(k)), kind_counts[k]);
  }
  std::printf("welfare: %.17g  payments: %.17g\n", welfare, payments);
  if (trades > 0) {
    std::printf("clearing price: mean %.17g  min %.17g  max %.17g\n",
                price_sum / static_cast<double>(trades), price_min, price_max);
  }
  std::printf("residue: carried %" PRIu64 "  abandoned %" PRIu64 "\n", carried, abandoned);
}

void print_jsonl(const journal::Journal& journal, const Filter& filter) {
  // Reuse the canonical exporter when nothing filters, so the CLI output
  // is byte-identical to Journal::export_jsonl (tests pin this); filtered
  // views re-emit per event in the same shape minus the ring headers.
  const bool unfiltered =
      filter.ring == SIZE_MAX && filter.kind < 0 && filter.epoch == UINT64_MAX;
  if (unfiltered) {
    const std::string out = journal.export_jsonl();
    std::fwrite(out.data(), 1, out.size(), stdout);
    return;
  }
  for (std::size_t ring = 0; ring < journal.num_rings(); ++ring) {
    for (const journal::Event& e : journal.events(ring)) {
      if (!filter.matches(ring, e)) continue;
      std::printf("{\"ring\":%zu,\"seq\":%" PRIu64 ",\"kind\":\"%s\",\"epoch\":%" PRIu64
                  ",\"a\":%" PRIu64 ",\"b\":%" PRIu64 ",\"c\":%" PRIu64,
                  ring, e.seq, journal::kind_name(e.kind), e.epoch, e.a, e.b, e.c);
      const std::size_t doubles = journal::kind_doubles(e.kind);
      if (doubles >= 1) std::printf(",\"x\":%.17g", e.x);
      if (doubles >= 2) std::printf(",\"y\":%.17g", e.y);
      std::printf("}\n");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* journal_path = nullptr;
  const char* diff_a = nullptr;
  const char* diff_b = nullptr;
  bool jsonl = false;
  Filter filter;

  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "journal_query: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--jsonl") == 0) {
      jsonl = true;
    } else if (std::strcmp(argv[i], "--ring") == 0) {
      filter.ring = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--epoch") == 0) {
      filter.epoch = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--kind") == 0) {
      const char* name = next();
      filter.kind = -1;
      for (std::size_t k = 0; k < journal::kNumEventKinds; ++k) {
        if (std::strcmp(name, journal::kind_name(static_cast<journal::EventKind>(k))) == 0) {
          filter.kind = static_cast<int>(k);
          break;
        }
      }
      if (filter.kind < 0) {
        std::fprintf(stderr, "journal_query: unknown --kind %s\n", name);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--diff") == 0) {
      diff_a = next();
      diff_b = next();
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "journal_query: unknown option %s\n", argv[i]);
      return 2;
    } else if (journal_path == nullptr) {
      journal_path = argv[i];
    } else {
      std::fprintf(stderr, "journal_query: more than one journal given (use --diff A B)\n");
      return 2;
    }
  }

  if (!validate_args(journal_path, diff_a, diff_b)) return 2;
  if (diff_a != nullptr) return diff_journals(diff_a, diff_b);

  std::vector<std::uint8_t> bytes;
  if (!read_file(journal_path, bytes)) return 2;
  try {
    const journal::Journal journal = journal::Journal::decode(bytes);
    if (jsonl) {
      print_jsonl(journal, filter);
    } else {
      print_summary(journal, filter);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "journal_query: malformed journal %s: %s\n", journal_path, e.what());
    return 2;
  }
  return 0;
}

// Figure 5a — welfare of DeCloud vs the non-truthful benchmark as the
// number of requests grows (Google-trace-style demand, EC2 M5 supply).
#include <cstdio>

#include "auction/mechanism.hpp"
#include "bench_util.hpp"
#include "trace/workload.hpp"

namespace {

using namespace decloud;

constexpr std::size_t kRequestCounts[] = {25, 50, 75, 100, 150, 200, 250, 300, 350, 400};
constexpr std::uint64_t kRoundsPerPoint = 5;

}  // namespace

int main() {
  bench::print_header("Fig. 5a", "welfare vs number of requests",
                      "requests    welfare(DeCloud)  welfare(benchmark)");

  const auction::AuctionConfig truthful;
  auction::AuctionConfig benchmark;
  benchmark.truthful = false;

  std::vector<bench::Point> decloud_series;
  std::vector<bench::Point> bench_series;
  for (const std::size_t n : kRequestCounts) {
    for (std::uint64_t round = 0; round < kRoundsPerPoint; ++round) {
      trace::WorkloadConfig wc;
      wc.num_requests = n;
      wc.num_offers = n / 2;
      Rng rng(1000 * n + round);
      const auto snapshot = trace::make_workload(wc, truthful, rng);

      const auto rt = auction::DeCloudAuction(truthful).run(snapshot, round + 1);
      const auto rb = auction::DeCloudAuction(benchmark).run(snapshot, round + 1);
      std::printf("%8zu    %16.4f  %18.4f\n", n, rt.welfare, rb.welfare);
      decloud_series.push_back({static_cast<double>(n), rt.welfare});
      bench_series.push_back({static_cast<double>(n), rb.welfare});
    }
  }
  bench::print_loess("DeCloud", decloud_series);
  bench::print_loess("benchmark", bench_series);
  return 0;
}

// Figure 5c — percentage of reduced trades vs market size.  The paper
// reports below 5 %, dropping to 0.5 % in large systems, thanks to the
// mini-auction grouping of clusters.
#include <cstdio>

#include "auction/mechanism.hpp"
#include "bench_util.hpp"
#include "stats/summary.hpp"
#include "trace/workload.hpp"

namespace {

using namespace decloud;

constexpr std::size_t kRequestCounts[] = {25, 50, 75, 100, 150, 200, 300, 400, 500};
constexpr std::uint64_t kRoundsPerPoint = 5;

}  // namespace

int main() {
  bench::print_header("Fig. 5c", "percentage of reduced trades vs market size",
                      "requests    reduced%   (reduced / tentative)");

  const auction::AuctionConfig cfg;
  std::vector<bench::Point> series;
  for (const std::size_t n : kRequestCounts) {
    stats::Accumulator acc;
    std::size_t reduced_total = 0;
    std::size_t tentative_total = 0;
    for (std::uint64_t round = 0; round < kRoundsPerPoint; ++round) {
      trace::WorkloadConfig wc;
      wc.num_requests = n;
      wc.num_offers = n / 2;
      Rng rng(3000 * n + round);
      const auto snapshot = trace::make_workload(wc, cfg, rng);
      const auto r = auction::DeCloudAuction(cfg).run(snapshot, round + 1);
      acc.add(100.0 * r.reduced_trade_ratio());
      reduced_total += r.reduced_trades;
      tentative_total += r.tentative_trades;
    }
    std::printf("%8zu    %7.3f%%   (%zu / %zu)\n", n, acc.mean(), reduced_total, tentative_total);
    series.push_back({static_cast<double>(n), acc.mean()});
  }
  bench::print_loess("reduced %", series);
  std::printf("-- paper reports: below 5%%, dropping to 0.5%% in large systems\n");
  return 0;
}

// Microbenchmarks of the ledger substrate: hashing, sealing, signatures,
// PoW and a complete protocol round.
#include <benchmark/benchmark.h>

#include "crypto/chacha20.hpp"
#include "crypto/pow.hpp"
#include "crypto/sha256.hpp"
#include "crypto/signature.hpp"
#include "ledger/codec.hpp"
#include "ledger/protocol.hpp"
#include "trace/workload.hpp"

namespace {

using namespace decloud;

void BM_Sha256(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash({data.data(), data.size()}));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_ChaCha20(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0x5a);
  crypto::SymmetricKey key{};
  key[0] = 1;
  crypto::Nonce nonce{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::chacha20_xor(key, nonce, {data.data(), data.size()}));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(1024)->Arg(65536);

void BM_SignAndVerify(benchmark::State& state) {
  Rng rng(1);
  const crypto::KeyPair kp = crypto::generate_keypair(rng);
  const std::vector<std::uint8_t> msg(256, 0x17);
  for (auto _ : state) {
    const auto sig = crypto::sign(kp.priv, {msg.data(), msg.size()});
    benchmark::DoNotOptimize(crypto::verify(kp.pub, {msg.data(), msg.size()}, sig));
  }
}
BENCHMARK(BM_SignAndVerify);

void BM_PowSolve(benchmark::State& state) {
  const std::vector<std::uint8_t> header = {'h', 'd', 'r'};
  const auto bits = static_cast<unsigned>(state.range(0));
  std::uint64_t start = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::solve_pow({header.data(), header.size()}, bits, start));
    start += 1;  // vary the search to avoid a cached first solution
  }
}
BENCHMARK(BM_PowSolve)->Arg(8)->Arg(12)->Arg(16);

void BM_BidSealAndCodec(benchmark::State& state) {
  Rng rng(2);
  ledger::Participant wallet(rng);
  trace::WorkloadConfig wc;
  wc.num_requests = 8;
  wc.num_offers = 4;
  const auto snapshot = trace::make_workload(wc, auction::AuctionConfig{}, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wallet.submit_request(snapshot.requests[i % snapshot.requests.size()], rng));
    ++i;
  }
}
BENCHMARK(BM_BidSealAndCodec);

void BM_FullProtocolRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    ledger::ConsensusParams params{.difficulty_bits = 8};
    ledger::LedgerProtocol protocol(params);
    Rng rng(3);
    ledger::Participant wallet(rng);
    trace::WorkloadConfig wc;
    wc.num_requests = n;
    wc.num_offers = n / 2;
    const auto snapshot = trace::make_workload(wc, params.auction, rng);
    for (const auto& r : snapshot.requests) {
      protocol.mempool().submit(wallet.submit_request(r, rng));
    }
    for (const auto& o : snapshot.offers) {
      protocol.mempool().submit(wallet.submit_offer(o, rng));
    }
    const std::vector<ledger::Miner> verifiers(2, ledger::Miner(params));
    state.ResumeTiming();

    benchmark::DoNotOptimize(protocol.run_round({&wallet}, verifiers, 0));
  }
}
BENCHMARK(BM_FullProtocolRound)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

// Figure 5f — welfare vs similarity, inflexible vs flexible matching.
#include <cstdio>

#include "auction/mechanism.hpp"
#include "bench_util.hpp"
#include "trace/kl_shaper.hpp"

namespace {

using namespace decloud;

constexpr double kLambdas[] = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
constexpr std::uint64_t kRoundsPerPoint = 3;

auction::AuctionConfig study_config(double flexibility) {
  auction::AuctionConfig cfg;
  cfg.best_offer_ratio = 0.2;
  cfg.max_best_offers = 32;
  cfg.flexibility = flexibility;
  return cfg;
}

}  // namespace

int main() {
  bench::print_header("Fig. 5f", "welfare vs similarity, inflexible vs 80% flexible",
                      "similarity   welfare(inflexible)   welfare(flex=0.8)");

  std::vector<bench::Point> inflexible_series;
  std::vector<bench::Point> flexible_series;
  for (const double lambda : kLambdas) {
    for (std::uint64_t round = 0; round < kRoundsPerPoint; ++round) {
      trace::KlShaperConfig kc;
      kc.num_requests = 150;
      kc.num_offers = 150;

      const auto inflexible = study_config(1.0);
      Rng r1(500 * round + 13);
      const auto m1 = trace::make_shaped_market(kc, inflexible, lambda, r1);
      const double w1 = auction::DeCloudAuction(inflexible).run(m1.snapshot, round + 1).welfare;

      const auto flexible = study_config(0.8);
      Rng r2(500 * round + 13);
      const auto m2 = trace::make_shaped_market(kc, flexible, lambda, r2);
      const double w2 = auction::DeCloudAuction(flexible).run(m2.snapshot, round + 1).welfare;

      std::printf("%10.4f   %19.4f   %17.4f\n", m1.similarity, w1, w2);
      inflexible_series.push_back({m1.similarity, w1});
      flexible_series.push_back({m2.similarity, w2});
    }
  }
  bench::print_loess("inflexible", inflexible_series);
  bench::print_loess("flexible 0.8", flexible_series);
  return 0;
}

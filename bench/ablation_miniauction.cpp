// Ablation: what the mini-auction grouping (Algorithm 3) buys.
//
// On homogeneous EC2-class supply every request shares the same best-offer
// set and one cluster forms — grouping is then moot.  The grouping earns
// its keep on *segmented* markets (distinct regions/hardware families whose
// bids cluster separately but whose price ranges overlap): one trade
// reduction then covers a whole tree of clusters instead of one per
// cluster.  This bench builds such a market: S segments, each with its own
// strict "region" resource, segment-specific price levels drawn from
// overlapping ranges.
#include <cstdio>
#include <string>

#include "auction/mechanism.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "stats/summary.hpp"

namespace {

using namespace decloud;

/// Builds a market of `segments` disjoint regions, `req_per_seg` requests
/// and `off_per_seg` offers each.  Region tags are strict resources, so
/// clusters form per segment; price levels per segment overlap pairwise.
auction::MarketSnapshot segmented_market(std::size_t segments, std::size_t req_per_seg,
                                         std::size_t off_per_seg, Rng& rng,
                                         auction::ResourceSchema& schema) {
  auction::MarketSnapshot s;
  std::uint64_t rid = 0;
  std::uint64_t oid = 0;
  for (std::size_t seg = 0; seg < segments; ++seg) {
    const auto region = schema.intern("region" + std::to_string(seg));
    // Segment price level: overlapping bands so clusters are price
    // compatible with their neighbours.
    const double level = 1.0 + 0.25 * static_cast<double>(seg);

    for (std::size_t i = 0; i < off_per_seg; ++i) {
      auction::Offer o;
      o.id = OfferId(oid);
      o.provider = ProviderId(oid);
      o.submitted = static_cast<Time>(oid++);
      o.resources.set(auction::ResourceSchema::kCpu, 8.0);
      o.resources.set(auction::ResourceSchema::kMemory, 32.0);
      o.resources.set(auction::ResourceSchema::kDisk, 200.0);
      o.resources.set(region, 1.0);
      o.window_start = 0;
      o.window_end = 86400;
      o.bid = level * rng.uniform(0.3, 0.8);
      s.offers.push_back(std::move(o));
    }
    for (std::size_t i = 0; i < req_per_seg; ++i) {
      auction::Request r;
      r.id = RequestId(rid);
      r.client = ClientId(rid);
      r.submitted = static_cast<Time>(rid++);
      r.resources.set(auction::ResourceSchema::kCpu, rng.uniform(0.5, 2.0));
      r.resources.set(auction::ResourceSchema::kMemory, rng.uniform(1.0, 8.0));
      r.resources.set(auction::ResourceSchema::kDisk, rng.uniform(2.0, 40.0));
      r.resources.set(region, 1.0);  // strict: only this segment's offers fit
      r.window_start = 0;
      r.window_end = 7200;
      r.duration = 3600;
      r.bid = level * rng.uniform(0.02, 0.2);
      s.requests.push_back(std::move(r));
    }
  }
  return s;
}

}  // namespace

int main() {
  bench::print_header("Ablation — mini-auctions",
                      "grouped (Alg. 3) vs one auction per cluster, segmented markets",
                      "segments   welfare(grouped)  welfare(ungrouped)  matches(g)  matches(u)  "
                      "reduced(g)  reduced(u)");

  auction::AuctionConfig grouped;
  auction::AuctionConfig ungrouped;
  ungrouped.group_mini_auctions = false;

  for (const std::size_t segments : {2UL, 4UL, 8UL, 16UL}) {
    stats::Accumulator wg;
    stats::Accumulator wu;
    std::size_t mg = 0;
    std::size_t mu = 0;
    std::size_t rg = 0;
    std::size_t ru = 0;
    for (std::uint64_t round = 0; round < 5; ++round) {
      auction::ResourceSchema schema;
      Rng rng(10 * segments + round);
      const auto snapshot = segmented_market(segments, 8, 3, rng, schema);
      const auto a = auction::DeCloudAuction(grouped).run(snapshot, round + 1);
      const auto b = auction::DeCloudAuction(ungrouped).run(snapshot, round + 1);
      wg.add(a.welfare);
      wu.add(b.welfare);
      mg += a.matches.size();
      mu += b.matches.size();
      rg += a.reduced_trades;
      ru += b.reduced_trades;
    }
    std::printf("%8zu   %16.4f  %18.4f  %10zu  %10zu  %10zu  %10zu\n", segments, wg.mean(),
                wu.mean(), mg, mu, rg, ru);
  }
  std::printf("-- grouping amortizes one trade reduction across price-compatible clusters\n");
  return 0;
}

// Figure 5b — ratio of DeCloud welfare to the non-truthful benchmark as
// the market grows.  The paper reports 70 % worst case rising above 85 %
// in larger systems.
#include <cstdio>

#include "auction/mechanism.hpp"
#include "bench_util.hpp"
#include "stats/summary.hpp"
#include "trace/workload.hpp"

namespace {

using namespace decloud;

constexpr std::size_t kRequestCounts[] = {25, 50, 75, 100, 150, 200, 250, 300, 350, 400};
constexpr std::uint64_t kRoundsPerPoint = 5;

}  // namespace

int main() {
  bench::print_header("Fig. 5b", "welfare ratio (DeCloud / benchmark) vs number of requests",
                      "requests    ratio");

  const auction::AuctionConfig truthful;
  auction::AuctionConfig benchmark;
  benchmark.truthful = false;

  std::vector<bench::Point> series;
  stats::Accumulator overall;
  for (const std::size_t n : kRequestCounts) {
    for (std::uint64_t round = 0; round < kRoundsPerPoint; ++round) {
      trace::WorkloadConfig wc;
      wc.num_requests = n;
      wc.num_offers = n / 2;
      Rng rng(2000 * n + round);
      const auto snapshot = trace::make_workload(wc, truthful, rng);

      const auto rt = auction::DeCloudAuction(truthful).run(snapshot, round + 1);
      const auto rb = auction::DeCloudAuction(benchmark).run(snapshot, round + 1);
      if (rb.welfare <= 1e-12) continue;
      const double ratio = rt.welfare / rb.welfare;
      std::printf("%8zu    %6.4f\n", n, ratio);
      series.push_back({static_cast<double>(n), ratio});
      overall.add(ratio);
    }
  }
  bench::print_loess("ratio", series);
  std::printf("-- mean ratio %.4f  (min %.4f, max %.4f over %zu rounds)\n", overall.mean(),
              overall.min(), overall.max(), overall.count());
  std::printf("-- paper reports: 0.70 worst case, above 0.85 in larger systems\n");
  return 0;
}

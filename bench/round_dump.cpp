// round_dump — runs one DeCloudAuction round over a generated workload and
// prints the canonical RoundResult JSON (round_result_json, %.17g).
//
// The output is a byte-exact fingerprint of the allocation: two invocations
// agree byte-for-byte iff their RoundResults are bit-identical.  CI uses it
// to enforce the scoring-path contract — the pruned candidate-index path
// must reproduce the dense path's allocation exactly, at every thread
// count:
//
//   round_dump --requests 2000 --offers 1000 --scoring dense  > a.json
//   round_dump --requests 2000 --offers 1000 --scoring pruned > b.json
//   cmp a.json b.json
//
//   --requests N      workload requests (default 512)
//   --offers N        workload offers (default requests / 2)
//   --seed N          workload seed (default 7)
//   --round-seed N    verifiable-randomization seed (default 1)
//   --threads N       scoring fan-out threads; 0 = hardware (default 1)
//   --scoring MODE    auto | dense | pruned (default auto)
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "auction/allocation.hpp"
#include "auction/mechanism.hpp"
#include "trace/workload.hpp"

namespace {

using namespace decloud;

}  // namespace

int main(int argc, char** argv) {
  std::size_t requests = 512;
  std::size_t offers = 0;  // 0 = requests / 2
  std::uint64_t seed = 7;
  std::uint64_t round_seed = 1;
  std::size_t threads = 1;
  auction::ScoringPath scoring = auction::ScoringPath::kAuto;

  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "round_dump: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--requests") == 0) {
      requests = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--offers") == 0) {
      offers = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--round-seed") == 0) {
      round_seed = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      threads = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--scoring") == 0) {
      const char* mode = next();
      if (std::strcmp(mode, "auto") == 0) {
        scoring = auction::ScoringPath::kAuto;
      } else if (std::strcmp(mode, "dense") == 0) {
        scoring = auction::ScoringPath::kDense;
      } else if (std::strcmp(mode, "pruned") == 0) {
        scoring = auction::ScoringPath::kPruned;
      } else {
        std::fprintf(stderr, "round_dump: --scoring must be auto|dense|pruned\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--requests N] [--offers N] [--seed N] [--round-seed N]\n"
                   "          [--threads N] [--scoring auto|dense|pruned]\n",
                   argv[0]);
      return 2;
    }
  }

  trace::WorkloadConfig wc;
  wc.num_requests = requests;
  wc.num_offers = offers == 0 ? requests / 2 : offers;
  Rng rng(seed);
  const auction::MarketSnapshot snapshot = trace::make_workload(wc, auction::AuctionConfig{}, rng);

  auction::AuctionConfig cfg;
  cfg.threads = threads;
  cfg.scoring = scoring;
  const auction::RoundResult result = auction::DeCloudAuction(cfg).run(snapshot, round_seed);

  const std::string json = auction::round_result_json(result);
  std::fwrite(json.data(), 1, json.size(), stdout);
  std::fputc('\n', stdout);
  return 0;
}

// Shared helpers for the figure-reproduction harnesses.
//
// Each fig5*_ binary regenerates one figure of the paper's evaluation
// (Section V): it sweeps the figure's x-axis, runs the DeCloud mechanism
// (and the non-truthful benchmark where the figure compares them), and
// prints the series as aligned text columns plus the LOESS trend the paper
// overlays.  Absolute numbers depend on the synthetic trace; the *shape*
// is the reproduction target (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "stats/loess.hpp"

namespace decloud::bench {

/// One (x, y) observation of a series.
struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// Prints a figure header in a stable, grep-friendly format.
inline void print_header(const std::string& figure, const std::string& title,
                         const std::string& columns) {
  std::printf("\n=== %s — %s ===\n", figure.c_str(), title.c_str());
  std::printf("%s\n", columns.c_str());
}

/// Prints the LOESS trend of a series (the paper's smoothed overlay).
inline void print_loess(const std::string& label, const std::vector<Point>& series,
                        double span = 0.5, std::size_t grid = 10) {
  if (series.size() < 3) return;
  std::vector<double> xs;
  std::vector<double> ys;
  for (const auto& p : series) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  const auto curve = stats::loess(xs, ys, {.span = span, .grid_points = grid});
  std::printf("-- LOESS trend (%s):\n", label.c_str());
  for (const auto& pt : curve) std::printf("   x=%10.4f  y=%10.6f\n", pt.x, pt.y);
}

}  // namespace decloud::bench

// Ablation: the valuation-model interpretations (EXPERIMENTS.md).
//
// "The valuation of each request is calculated as a cost of its best match
// offer multiplied by a random uniform coefficient" leaves the proration
// open; this bench shows why the duration-prorated reading is the one
// consistent with the paper's satisfaction levels.
#include <cstdio>

#include "auction/mechanism.hpp"
#include "bench_util.hpp"
#include "stats/summary.hpp"
#include "trace/workload.hpp"

namespace {

using namespace decloud;

const char* name_of(trace::ValuationBase base) {
  switch (base) {
    case trace::ValuationBase::kFullOfferCost: return "full-offer-cost";
    case trace::ValuationBase::kDurationProrated: return "duration-prorated";
    case trace::ValuationBase::kFractionProrated: return "fraction-prorated";
  }
  return "?";
}

}  // namespace

int main() {
  bench::print_header("Ablation — valuation model",
                      "interpretations of 'cost of the best match offer'",
                      "base                satisfaction   welfare   tentative-trades");

  for (const auto base :
       {trace::ValuationBase::kFullOfferCost, trace::ValuationBase::kDurationProrated,
        trace::ValuationBase::kFractionProrated}) {
    stats::Accumulator satisfaction;
    stats::Accumulator welfare;
    stats::Accumulator tentative;
    for (std::uint64_t round = 0; round < 5; ++round) {
      trace::WorkloadConfig wc;
      wc.num_requests = 150;
      wc.num_offers = 75;
      wc.valuation.base = base;
      auction::AuctionConfig cfg;
      Rng rng(1100 + round);
      const auto snapshot = trace::make_workload(wc, cfg, rng);
      const auto r = auction::DeCloudAuction(cfg).run(snapshot, round + 1);
      satisfaction.add(r.satisfaction(snapshot.requests.size()));
      welfare.add(r.welfare);
      tentative.add(static_cast<double>(r.tentative_trades));
    }
    std::printf("%-18s  %12.4f   %7.3f   %16.1f\n", name_of(base), satisfaction.mean(),
                welfare.mean(), tentative.mean());
  }
  std::printf("-- fraction-prorated valuations leave most v̂ under every ĉ: the market thins\n");
  return 0;
}

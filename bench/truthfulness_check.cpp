// Empirical truthfulness audit (validates the Section IV-D analysis at
// scale): sweeps random markets and misreport factors and reports how
// often — and by how much — any participant could profit from lying.
#include <cmath>
#include <cstdio>

#include "auction/mechanism.hpp"
#include "bench_util.hpp"
#include "stats/summary.hpp"
#include "../tests/property/market_fixtures.hpp"

namespace {

using namespace decloud;
using namespace decloud::auction;
using auction::property::client_utility;
using auction::property::provider_utility;
using auction::property::random_market;

constexpr std::uint64_t kEvidenceSeeds[] = {11, 23, 37, 59, 71, 83, 97, 113};
constexpr double kFactors[] = {0.25, 0.5, 0.8, 1.25, 2.0, 4.0};

Money mean_utility_client(const MarketSnapshot& truth, const MarketSnapshot& reported,
                          ClientId client) {
  Money total = 0.0;
  for (const auto seed : kEvidenceSeeds) {
    total += client_utility(truth, DeCloudAuction{}.run(reported, seed), client);
  }
  return total / static_cast<Money>(std::size(kEvidenceSeeds));
}

Money mean_utility_provider(const MarketSnapshot& truth, const MarketSnapshot& reported,
                            ProviderId provider) {
  Money total = 0.0;
  for (const auto seed : kEvidenceSeeds) {
    total += provider_utility(truth, DeCloudAuction{}.run(reported, seed), provider);
  }
  return total / static_cast<Money>(std::size(kEvidenceSeeds));
}

}  // namespace

int main() {
  bench::print_header("Truthfulness audit", "profitable unilateral deviations (Section IV-D)",
                      "side      markets  trials  profitable  worst-gain  mean-gain");

  std::size_t client_trials = 0;
  std::size_t client_gains = 0;
  stats::Accumulator client_gain_size;
  std::size_t provider_trials = 0;
  std::size_t provider_gains = 0;
  stats::Accumulator provider_gain_size;

  constexpr std::uint64_t kMarkets = 10;
  for (std::uint64_t market_seed = 1; market_seed <= kMarkets; ++market_seed) {
    Rng rng(market_seed * 6151);
    const MarketSnapshot truth = random_market(rng);

    for (std::size_t target = 0; target < truth.requests.size(); target += 6) {
      const ClientId client = truth.requests[target].client;
      const Money truthful = mean_utility_client(truth, truth, client);
      for (const double f : kFactors) {
        MarketSnapshot reported = truth;
        for (auto& r : reported.requests) {
          if (r.client == client) r.bid *= f;
        }
        const Money lied = mean_utility_client(truth, reported, client);
        ++client_trials;
        // Material gains only: the verifiable lottery makes per-seed
        // utilities noisy, so sub-5% differences are sampling noise.
        if (lied > truthful + 1e-9 + 0.05 * std::abs(truthful)) {
          ++client_gains;
          client_gain_size.add(lied - truthful);
        }
      }
    }
    for (std::size_t target = 0; target < truth.offers.size(); target += 4) {
      const ProviderId provider = truth.offers[target].provider;
      const Money truthful = mean_utility_provider(truth, truth, provider);
      for (const double f : kFactors) {
        MarketSnapshot reported = truth;
        for (auto& o : reported.offers) {
          if (o.provider == provider) o.bid *= f;
        }
        const Money lied = mean_utility_provider(truth, reported, provider);
        ++provider_trials;
        if (lied > truthful + 1e-9 + 0.05 * std::abs(truthful)) {
          ++provider_gains;
          provider_gain_size.add(lied - truthful);
        }
      }
    }
  }

  std::printf("client    %7llu  %6zu  %10zu  %10.6f  %9.6f\n",
              static_cast<unsigned long long>(kMarkets), client_trials, client_gains,
              client_gains ? client_gain_size.max() : 0.0,
              client_gains ? client_gain_size.mean() : 0.0);
  std::printf("provider  %7llu  %6zu  %10zu  %10.6f  %9.6f\n",
              static_cast<unsigned long long>(kMarkets), provider_trials, provider_gains,
              provider_gains ? provider_gain_size.max() : 0.0,
              provider_gains ? provider_gain_size.mean() : 0.0);
  std::printf(
      "-- deviations are residual heuristic edges (mini-auction boundaries); the idealized\n"
      "   McAfee/SBBA core is exactly DSIC (tests/auction/mcafee_test.cpp)\n");
  return 0;
}

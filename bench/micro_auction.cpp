// Microbenchmarks of the auction pipeline (google-benchmark): QoM scoring,
// cluster formation, and the full mechanism at several market sizes.
#include <benchmark/benchmark.h>

#include "auction/cluster.hpp"
#include "auction/mechanism.hpp"
#include "auction/qom.hpp"
#include "auction/score_matrix.hpp"
#include "common/thread_pool.hpp"
#include "trace/workload.hpp"

namespace {

using namespace decloud;

auction::MarketSnapshot make_market(std::size_t requests, std::uint64_t seed) {
  trace::WorkloadConfig wc;
  wc.num_requests = requests;
  wc.num_offers = requests / 2;
  Rng rng(seed);
  return trace::make_workload(wc, auction::AuctionConfig{}, rng);
}

void BM_QualityOfMatch(benchmark::State& state) {
  const auto snapshot = make_market(64, 1);
  const auction::BlockScale scale(snapshot.requests, snapshot.offers);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& r = snapshot.requests[i % snapshot.requests.size()];
    const auto& o = snapshot.offers[i % snapshot.offers.size()];
    benchmark::DoNotOptimize(auction::quality_of_match(r, o, scale));
    ++i;
  }
}
BENCHMARK(BM_QualityOfMatch);

void BM_BestOffers(benchmark::State& state) {
  const auto snapshot = make_market(static_cast<std::size_t>(state.range(0)), 2);
  const auction::BlockScale scale(snapshot.requests, snapshot.offers);
  const auction::ScoreMatrix scores(snapshot, scale);
  const auction::AuctionConfig cfg;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        auction::best_offers(i % snapshot.requests.size(), snapshot, scores, cfg));
    ++i;
  }
}
BENCHMARK(BM_BestOffers)->Arg(64)->Arg(256);

// The pre-ScoreMatrix path: per-pair sparse entry-list walks.  Kept as the
// baseline the dense path is measured against.
void BM_BestOffersSparse(benchmark::State& state) {
  const auto snapshot = make_market(static_cast<std::size_t>(state.range(0)), 2);
  const auction::BlockScale scale(snapshot.requests, snapshot.offers);
  const auction::AuctionConfig cfg;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        auction::best_offers(snapshot.requests[i % snapshot.requests.size()], snapshot, scale, cfg));
    ++i;
  }
}
BENCHMARK(BM_BestOffersSparse)->Arg(64)->Arg(256);

// The whole matching stage as DeCloudAuction::run executes it: ScoreMatrix
// precompute plus the best-offer fan-out for every request, at a given
// thread count (range(1)).
void BM_MatchingStage(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const auto snapshot = make_market(n, 2);
  const auction::BlockScale scale(snapshot.requests, snapshot.offers);
  const auction::AuctionConfig cfg;
  ThreadPool pool(threads);
  ThreadPool* p = threads > 1 ? &pool : nullptr;
  std::vector<std::vector<std::size_t>> best(n);
  for (auto _ : state) {
    const auction::ScoreMatrix scores(snapshot, scale);
    run_chunked(p, 0, n, [&](std::size_t r) { best[r] = auction::best_offers(r, snapshot, scores, cfg); });
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MatchingStage)->Args({256, 1})->Args({256, 2})->Args({256, 4});

void BM_ClusterFormation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto snapshot = make_market(n, 3);
  const auction::BlockScale scale(snapshot.requests, snapshot.offers);
  const auction::AuctionConfig cfg;
  // Precompute best sets; the benchmark isolates Algorithm 2 itself.
  std::vector<std::vector<std::size_t>> best(n);
  for (std::size_t r = 0; r < n; ++r) {
    best[r] = auction::best_offers(snapshot.requests[r], snapshot, scale, cfg);
  }
  for (auto _ : state) {
    auction::ClusterSet cs;
    for (std::size_t r = 0; r < n; ++r) {
      if (!best[r].empty()) cs.update(r, best[r]);
    }
    benchmark::DoNotOptimize(cs.size());
  }
}
BENCHMARK(BM_ClusterFormation)->Arg(64)->Arg(256);

void BM_FullMechanism(benchmark::State& state) {
  const auto snapshot = make_market(static_cast<std::size_t>(state.range(0)), 4);
  const auction::DeCloudAuction mechanism;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mechanism.run(snapshot, ++seed));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullMechanism)->Arg(32)->Arg(128)->Arg(512);

// Full mechanism at an explicit thread count (range(1)); the outcome is
// byte-identical across rows — only the wall time moves.
void BM_FullMechanismThreads(benchmark::State& state) {
  const auto snapshot = make_market(static_cast<std::size_t>(state.range(0)), 4);
  auction::AuctionConfig cfg;
  cfg.threads = static_cast<std::size_t>(state.range(1));
  const auction::DeCloudAuction mechanism(cfg);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mechanism.run(snapshot, ++seed));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullMechanismThreads)->Args({512, 1})->Args({512, 2})->Args({512, 4});

void BM_BenchmarkMechanism(benchmark::State& state) {
  const auto snapshot = make_market(static_cast<std::size_t>(state.range(0)), 5);
  auction::AuctionConfig cfg;
  cfg.truthful = false;
  const auction::DeCloudAuction mechanism(cfg);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mechanism.run(snapshot, ++seed));
  }
}
BENCHMARK(BM_BenchmarkMechanism)->Arg(128);

}  // namespace

BENCHMARK_MAIN();

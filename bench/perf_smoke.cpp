// Machine-readable performance smoke test for the matching pipeline.
//
// Unlike the google-benchmark microbenches, this binary emits one JSON
// document so successive PRs can record a benchmark *trajectory* (see
// bench/trajectory/) and compare runs mechanically.  It times:
//
//   * matching_sparse  — the pre-ScoreMatrix hot path: per-pair sparse
//     quality_of_match walks inside best_offers (serial);
//   * matching_dense   — ScoreMatrix precompute + tiled score_row kernel +
//     bounded top-k fan-out at 1..N threads;
//   * matching_pruned  — ScoreMatrix + CandidateIndex build + the pruned
//     shortlist queries at 1..N threads (byte-identical results to dense);
//   * full_mechanism   — DeCloudAuction::run end to end at 1..N threads;
//   * engine_drive     — the sharded engine end to end (trace-driven
//     stream, epoch scheduling) at each (shards, threads) pair, with
//     bids/sec as the headline metric;
//   * mechanism_null_sink / mechanism_live_sink — full_mechanism with the
//     observability hooks off (null MetricsSink*, the default) vs. on, so
//     bench/trajectory/ tracks the instrumentation overhead against the
//     ≤2% live-sink budget of DESIGN.md §3e;
//   * engine_no_injector / engine_null_injector — a 1-shard engine drive
//     with no FaultInjector vs. an active plan whose rules never fire
//     (p=0), pinning the fault-hook overhead (DESIGN.md §3f, same ≤2%
//     budget);
//   * engine_null_journal / engine_live_journal — the same 1-shard drive
//     with no flight recorder (journal hooks pay one pointer test) vs. a
//     live journal recording every event (DESIGN.md §3j, same ≤2%
//     budget);
//   * engine_no_wal / engine_wal_nosync / engine_wal_fsync — the same
//     1-shard drive (candidate-index cache off, the durable-mode
//     contract) with no WAL vs. a write-ahead log without fsync vs. with
//     fsync on every append (DESIGN.md §3k).  The WAL is opt-in, not an
//     ambient hook — with no writer attached the engine pays one pointer
//     test, covered by the existing ≤2% budget — so neither WAL-on delta
//     is budgeted: the nosync delta is the encode+write() logging cost,
//     the fsync-minus-nosync delta is pure storage stall, and both are
//     reported so bench/trajectory/ tracks the price of durability.
//
// Usage: perf_smoke [--rounds N] [--threads a,b,c] [--shards a,b,c]
//                   [--requests N] [--offers N] [--matching-only]
//                   [--journal on|off]
//   --rounds   timing repetitions per entry; the MINIMUM is reported
//              (default 5)
//   --threads  comma-separated thread counts for the parallel entries
//              (default "1,<hardware_concurrency>")
//   --shards   comma-separated shard counts for the engine entries
//              (default "1,4"; pass 0 to skip the engine section)
//   --requests market size of the matching_* section (default 256) — the
//              100k trajectory capture is `--requests 100000 --offers 50000
//              --matching-only`
//   --offers   offers for the matching_* section (default requests / 2)
//   --matching-only  emit only the matching_* entries (skips the mechanism
//              and engine sections, whose sizes stay fixed for trajectory
//              comparability)
//   --journal  include the flight-recorder overhead pair (default "on";
//              "off" skips it — the header records which, so trajectory
//              points stay machine-readably comparable)
//   --wal      include the WAL overhead trio (default "on"; "off" skips
//              it — same header contract as --journal); WAL files land
//              in a scratch directory under the system temp path
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "auction/candidate_index.hpp"
#include "auction/mechanism.hpp"
#include "auction/qom.hpp"
#include "auction/score_matrix.hpp"
#include "common/thread_pool.hpp"
#include "dsched/sync.hpp"
#include "engine/driver.hpp"
#include "engine/engine.hpp"
#include "engine/epoch_scheduler.hpp"
#include "fault/fault.hpp"
#include "obs/clock.hpp"
#include "obs/sink.hpp"
#include "trace/workload.hpp"
#include "wal/durable/durable.hpp"

namespace {

using namespace decloud;

auction::MarketSnapshot make_market(std::size_t requests, std::size_t offers,
                                    std::uint64_t seed) {
  trace::WorkloadConfig wc;
  wc.num_requests = requests;
  wc.num_offers = offers == 0 ? requests / 2 : offers;
  Rng rng(seed);
  return trace::make_workload(wc, auction::AuctionConfig{}, rng);
}

/// Minimum wall time of `rounds` invocations, in milliseconds.  Timing
/// goes through obs::SteadyClock — the repo's one sanctioned wall-clock
/// site (declint rule wallclock-outside-obs covers bench/ too).
template <typename Fn>
double time_min_ms(int rounds, const Fn& fn) {
  obs::SteadyClock clock;
  double best = 1e300;
  for (int i = 0; i < rounds; ++i) {
    const std::uint64_t t0 = clock.now_ns();
    fn();
    const std::uint64_t t1 = clock.now_ns();
    best = std::min(best, static_cast<double>(t1 - t0) / 1e6);
  }
  return best;
}

struct Entry {
  std::string bench;
  std::size_t requests;
  std::size_t offers;
  std::size_t threads;
  double ms;
  /// Engine entries only (shards > 0): shard count and bids/sec.
  std::size_t shards = 0;
  double bids_per_sec = 0.0;
};

void emit(const std::vector<Entry>& entries, int rounds,
          const std::vector<std::size_t>& thread_counts, bool journal, bool wal) {
  std::printf("{\n");
  std::printf("  \"schema\": \"decloud-perf-smoke-v6\",\n");
  std::printf("  \"hardware_concurrency\": %zu,\n", ThreadPool::default_workers());
  // Instrumented (DECLOUD_DSCHED=ON) numbers are not comparable to
  // production numbers; the field lets perf dashboards partition them.
  std::printf("  \"dsched\": \"%s\",\n", dsched::kEnabled ? "on" : "off");
  // Whether the flight-recorder overhead pair ran in this capture.
  std::printf("  \"journal\": \"%s\",\n", journal ? "on" : "off");
  // Whether the WAL overhead trio ran in this capture.
  std::printf("  \"wal\": \"%s\",\n", wal ? "on" : "off");
  // The sweep actually run, so a point captured on a small box is
  // machine-readably distinguishable from one that exercised real cores.
  std::printf("  \"thread_sweep\": [");
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    std::printf("%s%zu", i == 0 ? "" : ", ", thread_counts[i]);
  }
  std::printf("],\n");
  std::printf("  \"rounds\": %d,\n", rounds);
  std::printf("  \"results\": [\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::printf("    {\"bench\": \"%s\", \"requests\": %zu, \"offers\": %zu, "
                "\"threads\": %zu, \"ms_per_round\": %.4f",
                e.bench.c_str(), e.requests, e.offers, e.threads, e.ms);
    if (e.shards > 0) {
      std::printf(", \"shards\": %zu, \"bids_per_sec\": %.1f", e.shards, e.bids_per_sec);
    }
    std::printf("}%s\n", i + 1 == entries.size() ? "" : ",");
  }
  std::printf("  ]\n}\n");
}

std::vector<std::size_t> parse_threads(const char* arg) {
  std::vector<std::size_t> out;
  const std::string s(arg);
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok = s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    out.push_back(static_cast<std::size_t>(std::strtoul(tok.c_str(), nullptr, 10)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int rounds = 5;
  std::vector<std::size_t> thread_counts = {1, ThreadPool::default_workers()};
  std::vector<std::size_t> shard_counts = {1, 4};
  std::size_t matching_requests = 256;
  std::size_t matching_offers = 0;  // 0 = requests / 2
  bool matching_only = false;
  bool journal = true;
  bool wal = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      rounds = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      thread_counts = parse_threads(argv[++i]);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shard_counts = parse_threads(argv[++i]);
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      matching_requests = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--offers") == 0 && i + 1 < argc) {
      matching_offers = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--matching-only") == 0) {
      matching_only = true;
    } else if (std::strcmp(argv[i], "--journal") == 0 && i + 1 < argc) {
      journal = std::strcmp(argv[++i], "off") != 0;
    } else if (std::strcmp(argv[i], "--wal") == 0 && i + 1 < argc) {
      wal = std::strcmp(argv[++i], "off") != 0;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--rounds N] [--threads a,b,c] [--shards a,b,c]\n"
                   "          [--requests N] [--offers N] [--matching-only]\n"
                   "          [--journal on|off] [--wal on|off]\n",
                   argv[0]);
      return 2;
    }
  }
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(std::unique(thread_counts.begin(), thread_counts.end()),
                      thread_counts.end());

  std::vector<Entry> entries;

  // --- matching stage (default: the BM_BestOffers size, 256 requests;
  // --requests/--offers rescale it — the 100k capture in bench/trajectory/
  // uses --requests 100000 --offers 50000 --matching-only).
  {
    const auto s = make_market(matching_requests, matching_offers, 2);
    const auction::AuctionConfig cfg;
    const auction::BlockScale scale(s.requests, s.offers);

    // The sparse walk is O(R·O) entry-list chasing — hours at 100k scale —
    // so it only runs at sizes where a serial sweep finishes in seconds.
    if (s.requests.size() * s.offers.size() <= std::size_t{2048} * 1024) {
      const double sparse_ms = time_min_ms(rounds, [&] {
        for (std::size_t r = 0; r < s.requests.size(); ++r) {
          volatile auto sink = auction::best_offers(s.requests[r], s, scale, cfg).size();
          (void)sink;
        }
      });
      entries.push_back({"matching_sparse", s.requests.size(), s.offers.size(), 1, sparse_ms});
    }

    for (const std::size_t t : thread_counts) {
      ThreadPool pool(t);
      ThreadPool* p = t > 1 ? &pool : nullptr;
      // Dense reference: tiled score_row kernel + bounded top-k.
      const double dense_ms = time_min_ms(rounds, [&] {
        const auction::ScoreMatrix scores(s, scale);
        run_chunked(p, 0, s.requests.size(), [&](std::size_t r) {
          thread_local std::vector<double> row;
          row.resize(scores.offers());
          scores.score_row(r, row);
          volatile auto sink = auction::best_offers_from_row(r, s, row, cfg).size();
          (void)sink;
        });
      });
      entries.push_back({"matching_dense", s.requests.size(), s.offers.size(), t, dense_ms});

      // Pruned path: index build + shortlist queries, timed end to end so
      // the comparison charges the index its construction cost.
      const double pruned_ms = time_min_ms(rounds, [&] {
        const auction::ScoreMatrix scores(s, scale);
        const auction::CandidateIndex index(s, scale, scores);
        run_chunked(p, 0, s.requests.size(), [&](std::size_t r) {
          thread_local auction::CandidateIndex::Scratch scratch;
          volatile auto sink = index.best_offers(r, s, scores, cfg, scratch).size();
          (void)sink;
        });
      });
      entries.push_back({"matching_pruned", s.requests.size(), s.offers.size(), t, pruned_ms});
    }
  }

  if (matching_only) {
    emit(entries, rounds, thread_counts, journal, wal);
    return 0;
  }

  // --- full mechanism at the BM_FullMechanism size (512 requests).
  {
    const auto s = make_market(512, 0, 4);
    for (const std::size_t t : thread_counts) {
      auction::AuctionConfig cfg;
      cfg.threads = t;
      const auction::DeCloudAuction mechanism(cfg);
      std::uint64_t seed = 0;
      const double ms = time_min_ms(rounds, [&] {
        volatile auto sink = mechanism.run(s, ++seed).matches.size();
        (void)sink;
      });
      entries.push_back({"full_mechanism", s.requests.size(), s.offers.size(), t, ms});
    }
  }

  // --- observability overhead: the same single-threaded mechanism with
  // hooks off (null sink — one pointer test per hook) and on (live sink).
  // Compare the pair in bench/trajectory/: live must stay within ~2% of
  // null, and null within noise of full_mechanism@1.
  {
    const auto s = make_market(512, 0, 4);
    auction::AuctionConfig cfg;
    cfg.threads = 1;
    const auction::DeCloudAuction mechanism(cfg);
    std::uint64_t seed = 0;
    const double null_ms = time_min_ms(rounds, [&] {
      volatile auto matches = mechanism.run(s, ++seed, nullptr).matches.size();
      (void)matches;
    });
    entries.push_back({"mechanism_null_sink", s.requests.size(), s.offers.size(), 1, null_ms});

    obs::MetricsSink live("perf_smoke");
    seed = 0;
    const double live_ms = time_min_ms(rounds, [&] {
      volatile auto matches = mechanism.run(s, ++seed, &live).matches.size();
      (void)matches;
    });
    entries.push_back({"mechanism_live_sink", s.requests.size(), s.offers.size(), 1, live_ms});
  }

  // --- fault-hook overhead: the same 1-shard engine drive with no
  // injector (hooks pay one pointer test) vs. a "null" fault plan whose
  // rules never fire (p=0 — every hook pays the window match plus the
  // seeded coin).  Compare the pair in bench/trajectory/: the null plan
  // must stay within ~2% of no-injector, as chaos replays are meant to be
  // cheap enough to leave on in soak runs.
  {
    engine::TraceDriverConfig driver;
    driver.workload.num_requests = 512;
    driver.workload.num_offers = 256;
    driver.located_fraction = 0.9;
    driver.bids_per_epoch = 192;
    driver.seed = 8;

    const auto drive_ms = [&](const char* plan) {
      engine::EngineConfig config;
      config.router.num_shards = 1;
      config.router.x1 = 100.0;
      config.router.y1 = 100.0;
      config.queue_capacity = SIZE_MAX / 2;
      config.queue_watermark = SIZE_MAX / 2;
      config.market.consensus.difficulty_bits = 8;
      config.market.num_verifiers = 1;
      config.market.consensus.auction.threads = 1;
      if (plan != nullptr) config.fault_plan = fault::FaultPlan::parse(plan);
      return time_min_ms(rounds, [&] {
        engine::MarketEngine market_engine(config);
        engine::EpochScheduler scheduler(market_engine, 1);
        volatile auto sink = drive_trace(market_engine, scheduler, driver).bids_generated;
        (void)sink;
      });
    };

    entries.push_back({"engine_no_injector", driver.workload.num_requests,
                       driver.workload.num_offers, 1, drive_ms(nullptr)});
    entries.push_back({"engine_null_injector", driver.workload.num_requests,
                       driver.workload.num_offers, 1,
                       drive_ms("withhold_reveal:p=0;dishonest_vote:p=0;deny_agreement:p=0;"
                                "reject_ingest:p=0;corrupt_sealed_bid:p=0")});
  }

  // --- flight-recorder overhead: the same 1-shard engine drive with no
  // journal (every hook pays one null-pointer test) vs. a live journal
  // recording every event into its bounded rings.  Compare the pair in
  // bench/trajectory/: live must stay within ~2% of null (DESIGN.md §3j)
  // so soak runs can leave the recorder on.
  if (journal) {
    engine::TraceDriverConfig driver;
    driver.workload.num_requests = 512;
    driver.workload.num_offers = 256;
    driver.located_fraction = 0.9;
    driver.bids_per_epoch = 192;
    driver.seed = 8;

    const auto drive_ms = [&](std::size_t journal_capacity) {
      engine::EngineConfig config;
      config.router.num_shards = 1;
      config.router.x1 = 100.0;
      config.router.y1 = 100.0;
      config.queue_capacity = SIZE_MAX / 2;
      config.queue_watermark = SIZE_MAX / 2;
      config.market.consensus.difficulty_bits = 8;
      config.market.num_verifiers = 1;
      config.market.consensus.auction.threads = 1;
      config.journal_capacity = journal_capacity;
      return time_min_ms(rounds, [&] {
        engine::MarketEngine market_engine(config);
        engine::EpochScheduler scheduler(market_engine, 1);
        volatile auto sink = drive_trace(market_engine, scheduler, driver).bids_generated;
        (void)sink;
      });
    };

    entries.push_back({"engine_null_journal", driver.workload.num_requests,
                       driver.workload.num_offers, 1, drive_ms(0)});
    entries.push_back({"engine_live_journal", driver.workload.num_requests,
                       driver.workload.num_offers, 1, drive_ms(65536)});
  }

  // --- durable-market overhead (DESIGN.md §3k): the same 1-shard drive
  // with no WAL, with a WAL but no fsync (pure logging cost, the part the
  // ≤2% in-memory budget covers), and with fsync on every append (the
  // storage-bound price of power-loss durability — exempt from the budget
  // but reported).  All three run with the candidate-index cache off:
  // durable mode requires it, so the baseline must match to isolate the
  // WAL delta.
  if (wal) {
    engine::TraceDriverConfig driver;
    driver.workload.num_requests = 512;
    driver.workload.num_offers = 256;
    driver.located_fraction = 0.9;
    driver.bids_per_epoch = 192;
    driver.seed = 8;

    const auto config = [] {
      engine::EngineConfig c;
      c.router.num_shards = 1;
      c.router.x1 = 100.0;
      c.router.y1 = 100.0;
      c.queue_capacity = SIZE_MAX / 2;
      c.queue_watermark = SIZE_MAX / 2;
      c.market.consensus.difficulty_bits = 8;
      c.market.num_verifiers = 1;
      c.market.consensus.auction.threads = 1;
      c.market.reuse_candidate_index = false;  // the durable-mode contract
      return c;
    };

    const double no_wal_ms = time_min_ms(rounds, [&] {
      engine::MarketEngine market_engine(config());
      engine::EpochScheduler scheduler(market_engine, 1);
      volatile auto sink = drive_trace(market_engine, scheduler, driver).bids_generated;
      (void)sink;
    });

    const std::string wal_dir =
        (std::filesystem::temp_directory_path() / "decloud_perf_smoke_wal").string();
    const auto durable_ms = [&](bool sync) {
      return time_min_ms(rounds, [&] {
        std::filesystem::remove_all(wal_dir);
        std::filesystem::create_directories(wal_dir);
        engine::MarketEngine market_engine(config());
        engine::EpochScheduler scheduler(market_engine, 1);
        wal::DurableOptions opts;
        opts.wal_dir = wal_dir;
        opts.sync = sync;
        opts.fingerprint = 0x9EFC;  // arbitrary: nothing recovers this WAL
        volatile auto sink =
            wal::drive_trace_durable(market_engine, scheduler, driver, opts).bids_generated;
        (void)sink;
      });
    };

    entries.push_back({"engine_no_wal", driver.workload.num_requests,
                       driver.workload.num_offers, 1, no_wal_ms});
    entries.push_back({"engine_wal_nosync", driver.workload.num_requests,
                       driver.workload.num_offers, 1, durable_ms(false)});
    entries.push_back({"engine_wal_fsync", driver.workload.num_requests,
                       driver.workload.num_offers, 1, durable_ms(true)});
    std::filesystem::remove_all(wal_dir);
  }

  // --- sharded engine end to end (cross-shard axis).
  for (const std::size_t shards : shard_counts) {
    if (shards == 0) continue;  // 0 = skip the engine section
    for (const std::size_t t : thread_counts) {
      engine::EngineConfig config;
      config.router.num_shards = shards;
      config.router.x1 = 100.0;
      config.router.y1 = 100.0;
      config.queue_capacity = SIZE_MAX / 2;  // throughput, not admission
      config.queue_watermark = SIZE_MAX / 2;
      config.market.consensus.difficulty_bits = 8;
      config.market.num_verifiers = 1;
      config.market.consensus.auction.threads = 1;

      engine::TraceDriverConfig driver;
      driver.workload.num_requests = 512;
      driver.workload.num_offers = 256;
      driver.located_fraction = 0.9;
      driver.bids_per_epoch = 192;
      driver.seed = 8;

      std::size_t bids = 0;
      const double ms = time_min_ms(rounds, [&] {
        engine::MarketEngine market_engine(config);
        engine::EpochScheduler scheduler(market_engine, t);
        bids = drive_trace(market_engine, scheduler, driver).bids_generated;
      });
      Entry entry{"engine_drive", driver.workload.num_requests, driver.workload.num_offers,
                  t, ms};
      entry.shards = shards;
      entry.bids_per_sec = static_cast<double>(bids) / (ms / 1000.0);
      entries.push_back(entry);
    }
  }

  emit(entries, rounds, thread_counts, journal, wal);
  return 0;
}

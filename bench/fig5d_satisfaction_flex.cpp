// Figure 5d — client satisfaction (fraction of allocated requests) vs
// request/offer similarity (1 − KLD), inflexible market vs 80 % flexible.
// The paper: "80 % flexibility results in stably higher satisfaction".
#include <cstdio>

#include "auction/mechanism.hpp"
#include "bench_util.hpp"
#include "trace/kl_shaper.hpp"

namespace {

using namespace decloud;

constexpr double kLambdas[] = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
constexpr std::uint64_t kRoundsPerPoint = 3;

/// Evaluation config for the flexibility study: wide best-offer sets so
/// clusters span the class spectrum (see EXPERIMENTS.md, E4).
auction::AuctionConfig study_config(double flexibility) {
  auction::AuctionConfig cfg;
  cfg.best_offer_ratio = 0.2;
  cfg.max_best_offers = 32;
  cfg.flexibility = flexibility;
  return cfg;
}

}  // namespace

int main() {
  bench::print_header("Fig. 5d", "satisfaction vs similarity, inflexible vs 80% flexible",
                      "similarity   satisfaction(inflexible)   satisfaction(flex=0.8)");

  std::vector<bench::Point> inflexible_series;
  std::vector<bench::Point> flexible_series;
  for (const double lambda : kLambdas) {
    for (std::uint64_t round = 0; round < kRoundsPerPoint; ++round) {
      trace::KlShaperConfig kc;
      kc.num_requests = 150;
      kc.num_offers = 150;

      const auto inflexible = study_config(1.0);
      Rng r1(100 * round + 7);
      const auto m1 = trace::make_shaped_market(kc, inflexible, lambda, r1);
      const double sat1 = auction::DeCloudAuction(inflexible)
                              .run(m1.snapshot, round + 1)
                              .satisfaction(m1.snapshot.requests.size());

      const auto flexible = study_config(0.8);
      Rng r2(100 * round + 7);
      const auto m2 = trace::make_shaped_market(kc, flexible, lambda, r2);
      const double sat2 = auction::DeCloudAuction(flexible)
                              .run(m2.snapshot, round + 1)
                              .satisfaction(m2.snapshot.requests.size());

      std::printf("%10.4f   %24.4f   %22.4f\n", m1.similarity, sat1, sat2);
      inflexible_series.push_back({m1.similarity, sat1});
      flexible_series.push_back({m2.similarity, sat2});
    }
  }
  bench::print_loess("inflexible", inflexible_series);
  bench::print_loess("flexible 0.8", flexible_series);
  return 0;
}

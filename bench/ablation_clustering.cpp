// Ablation: the clustering knobs θ (best_offer_ratio) and |best_r| cap
// (max_best_offers).  Wider best-offer sets merge more clusters — better
// satisfaction in homogeneous markets, more exposure to a single clearing
// price in heterogeneous ones.
#include <cstdio>

#include "auction/mechanism.hpp"
#include "bench_util.hpp"
#include "stats/summary.hpp"
#include "trace/workload.hpp"

namespace {

using namespace decloud;

struct Knobs {
  double ratio;
  std::size_t max_best;
};
constexpr Knobs kKnobs[] = {
    {0.9, 2}, {0.9, 4}, {0.9, 8}, {0.5, 4}, {0.5, 8}, {0.5, 16}, {0.2, 16}, {0.2, 32},
};
constexpr std::uint64_t kRoundsPerPoint = 5;

}  // namespace

int main() {
  bench::print_header("Ablation — clustering knobs",
                      "quality-of-match admission ratio θ and best-offer cap",
                      "theta  max_best   welfare   satisfaction   clusters-exposure(reduced%)");

  for (const Knobs& k : kKnobs) {
    auction::AuctionConfig cfg;
    cfg.best_offer_ratio = k.ratio;
    cfg.max_best_offers = k.max_best;

    stats::Accumulator welfare;
    stats::Accumulator satisfaction;
    stats::Accumulator reduced;
    for (std::uint64_t round = 0; round < kRoundsPerPoint; ++round) {
      trace::WorkloadConfig wc;
      wc.num_requests = 150;
      wc.num_offers = 75;
      Rng rng(900 + round);
      const auto snapshot = trace::make_workload(wc, cfg, rng);
      const auto r = auction::DeCloudAuction(cfg).run(snapshot, round + 1);
      welfare.add(r.welfare);
      satisfaction.add(r.satisfaction(snapshot.requests.size()));
      reduced.add(100.0 * r.reduced_trade_ratio());
    }
    std::printf("%5.2f  %8zu   %7.3f   %12.4f   %10.3f%%\n", k.ratio, k.max_best, welfare.mean(),
                satisfaction.mean(), reduced.mean());
  }
  std::printf("-- defaults (0.9, 4) favor tight matches; the Fig. 5d study uses (0.2, 32)\n");
  return 0;
}

// Figure 5e — client satisfaction vs similarity across flexibility levels
// (the paper sweeps the degree of flexibility; we print one series per
// level so the stacking of the curves is visible).
#include <cstdio>

#include "auction/mechanism.hpp"
#include "bench_util.hpp"
#include "trace/kl_shaper.hpp"

namespace {

using namespace decloud;

constexpr double kLambdas[] = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
constexpr double kFlexLevels[] = {1.0, 0.9, 0.8, 0.7, 0.6};
constexpr std::uint64_t kRoundsPerPoint = 3;

auction::AuctionConfig study_config(double flexibility) {
  auction::AuctionConfig cfg;
  cfg.best_offer_ratio = 0.2;
  cfg.max_best_offers = 32;
  cfg.flexibility = flexibility;
  return cfg;
}

}  // namespace

int main() {
  bench::print_header("Fig. 5e", "satisfaction vs similarity for flexibility levels",
                      "flexibility  similarity   satisfaction");

  for (const double flex : kFlexLevels) {
    const auto cfg = study_config(flex);
    std::vector<bench::Point> series;
    for (const double lambda : kLambdas) {
      for (std::uint64_t round = 0; round < kRoundsPerPoint; ++round) {
        trace::KlShaperConfig kc;
        kc.num_requests = 150;
        kc.num_offers = 150;
        Rng rng(100 * round + 7);
        const auto m = trace::make_shaped_market(kc, cfg, lambda, rng);
        const double sat = auction::DeCloudAuction(cfg)
                               .run(m.snapshot, round + 1)
                               .satisfaction(m.snapshot.requests.size());
        std::printf("%11.2f  %10.4f   %12.4f\n", flex, m.similarity, sat);
        series.push_back({m.similarity, sat});
      }
    }
    bench::print_loess("flexibility " + std::to_string(flex), series);
  }
  return 0;
}

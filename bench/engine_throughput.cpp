// Machine-readable throughput benchmark for the sharded engine.
//
// Emits one JSON document (schema decloud-engine-bench-v5) timing a full
// trace-driven engine run — submission, epoch scheduling, resubmission
// tail — at each (shard count, thread count) pair, reporting bids/sec so
// bench/trajectory/ can track cross-shard scaling the same way
// perf_smoke tracks the intra-round pipeline.
//
// Usage: engine_throughput [--rounds N] [--shards a,b,c] [--threads a,b,c]
//                          [--requests N] [--mode batch|stream|both]
//                          [--journal on|off] [--wal on|off]
//   --rounds    timing repetitions per entry; the MINIMUM time (max
//               bids/sec) is reported (default 3)
//   --shards    comma-separated shard counts (default "1,4,16")
//   --threads   comma-separated scheduler thread counts
//               (default "1,<hardware_concurrency>")
//   --requests  workload size; offers are requests/2 (default 2048)
//   --mode      "batch" drives epochs in bulk batches, "stream" feeds the
//               continuous market bid-by-bid with the micro-epoch trigger
//               on the same boundary (so the work content is identical and
//               the delta is pure ingest/trigger overhead), "both" times
//               the two side by side (default "batch")
//   --journal   "on" records every run into a live flight recorder
//               (journal_capacity 65536), "off" leaves the hooks at their
//               one-pointer-test cost (default "off"); the header records
//               which, so trajectory points stay comparable
//   --wal       "on" drives every run through the durable path — a
//               write-ahead log with fsync on every append, candidate-
//               index cache off (the durable-mode contract) — "off" runs
//               in-memory only (default "off"); the header records which.
//               WAL files land in a scratch directory under the system
//               temp path
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "engine/driver.hpp"
#include "engine/engine.hpp"
#include "engine/epoch_scheduler.hpp"
#include "obs/clock.hpp"
#include "stream/stream_driver.hpp"
#include "stream/streaming_market.hpp"
#include "wal/durable/durable.hpp"

namespace {

using namespace decloud;

std::vector<std::size_t> parse_counts(const char* arg) {
  std::vector<std::size_t> out;
  const std::string s(arg);
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok = s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    out.push_back(static_cast<std::size_t>(std::strtoul(tok.c_str(), nullptr, 10)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

engine::EngineConfig engine_config(std::size_t shards, std::size_t journal_capacity, bool wal) {
  engine::EngineConfig config;
  config.router.num_shards = shards;
  config.router.x0 = 0.0;
  config.router.x1 = 100.0;
  config.router.y0 = 0.0;
  config.router.y1 = 100.0;
  config.queue_capacity = SIZE_MAX / 2;  // measure throughput, not admission
  config.queue_watermark = SIZE_MAX / 2;
  config.market.consensus.difficulty_bits = 8;  // simulation-scale PoW
  config.market.num_verifiers = 1;
  config.market.consensus.auction.threads = 1;  // parallelism across shards
  config.journal_capacity = journal_capacity;
  if (wal) config.market.reuse_candidate_index = false;  // durable-mode contract
  return config;
}

struct Entry {
  const char* mode;
  std::size_t shards;
  std::size_t threads;
  std::size_t bids;
  std::size_t allocated;
  std::size_t epochs;
  double ms;
  double bids_per_sec;
};

}  // namespace

int main(int argc, char** argv) {
  int rounds = 3;
  std::size_t num_requests = 2048;
  std::string mode = "batch";
  bool journal = false;
  bool wal = false;
  std::vector<std::size_t> shard_counts = {1, 4, 16};
  std::vector<std::size_t> thread_counts = {1, ThreadPool::default_workers()};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      rounds = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shard_counts = parse_counts(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      thread_counts = parse_counts(argv[++i]);
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      num_requests = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--mode") == 0 && i + 1 < argc) {
      mode = argv[++i];
      if (mode != "batch" && mode != "stream" && mode != "both") {
        std::fprintf(stderr, "--mode must be batch, stream, or both\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--journal") == 0 && i + 1 < argc) {
      journal = std::strcmp(argv[++i], "on") == 0;
    } else if (std::strcmp(argv[i], "--wal") == 0 && i + 1 < argc) {
      wal = std::strcmp(argv[++i], "on") == 0;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--rounds N] [--shards a,b,c] [--threads a,b,c] [--requests N] "
                   "[--mode batch|stream|both] [--journal on|off] [--wal on|off]\n",
                   argv[0]);
      return 2;
    }
  }
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(std::unique(thread_counts.begin(), thread_counts.end()),
                      thread_counts.end());

  engine::TraceDriverConfig driver;
  driver.workload.num_requests = num_requests;
  driver.workload.num_offers = num_requests / 2;
  driver.located_fraction = 0.9;
  driver.bids_per_epoch = num_requests / 4;  // streamed in 6 batches
  driver.seed = 2;

  const std::size_t journal_capacity = journal ? std::size_t{65536} : std::size_t{0};
  const std::string wal_dir =
      (std::filesystem::temp_directory_path() / "decloud_engine_throughput_wal").string();
  const auto durable_opts = [&] {
    std::filesystem::remove_all(wal_dir);
    std::filesystem::create_directories(wal_dir);
    wal::DurableOptions opts;
    opts.wal_dir = wal_dir;
    opts.sync = true;  // the durable default: fsync every append
    opts.fingerprint = 0x9EFC;  // arbitrary: nothing recovers this WAL
    return opts;
  };
  std::vector<Entry> entries;
  obs::SteadyClock clock;  // the sanctioned wall-clock source (src/obs)
  for (const std::size_t shards : shard_counts) {
    for (const std::size_t threads : thread_counts) {
      if (mode != "stream") {
        double best_ms = 1e300;
        std::size_t allocated = 0;
        std::size_t epochs = 0;
        std::size_t bids = 0;
        for (int round = 0; round < rounds; ++round) {
          engine::MarketEngine market_engine(engine_config(shards, journal_capacity, wal));
          engine::EpochScheduler scheduler(market_engine, threads);
          // Directory reset is setup, not WAL cost — keep it untimed.
          wal::DurableOptions opts;
          if (wal) opts = durable_opts();
          const std::uint64_t t0 = clock.now_ns();
          const engine::DriveOutcome outcome =
              wal ? wal::drive_trace_durable(market_engine, scheduler, driver, opts)
                  : drive_trace(market_engine, scheduler, driver);
          const std::uint64_t t1 = clock.now_ns();
          best_ms = std::min(best_ms, static_cast<double>(t1 - t0) / 1e6);
          allocated = outcome.report.total.requests_allocated;
          epochs = outcome.report.epochs;
          bids = outcome.bids_generated;
        }
        entries.push_back({"batch", shards, threads, bids, allocated, epochs, best_ms,
                           static_cast<double>(bids) / (best_ms / 1000.0)});
      }
      if (mode != "batch") {
        double best_ms = 1e300;
        std::size_t allocated = 0;
        std::size_t epochs = 0;
        std::size_t bids = 0;
        for (int round = 0; round < rounds; ++round) {
          stream::StreamConfig stream_config;
          stream_config.engine = engine_config(shards, journal_capacity, wal);
          stream_config.triggers.bids = driver.bids_per_epoch;  // batch-aligned
          stream_config.threads = threads;
          stream_config.start_time = driver.start_time;
          stream_config.epoch_interval = driver.epoch_interval;
          stream_config.drain_epochs = driver.drain_epochs;
          stream::StreamingMarket market(std::move(stream_config));
          wal::DurableOptions opts;
          if (wal) opts = durable_opts();
          const std::uint64_t t0 = clock.now_ns();
          const stream::StreamDriveOutcome outcome =
              wal ? wal::drive_trace_stream_durable(market, driver, opts)
                  : drive_trace_stream(market, driver);
          const std::uint64_t t1 = clock.now_ns();
          best_ms = std::min(best_ms, static_cast<double>(t1 - t0) / 1e6);
          allocated = outcome.drive.report.total.requests_allocated;
          epochs = outcome.drive.report.epochs;
          bids = outcome.drive.bids_generated;
        }
        entries.push_back({"stream", shards, threads, bids, allocated, epochs, best_ms,
                           static_cast<double>(bids) / (best_ms / 1000.0)});
      }
    }
  }

  std::filesystem::remove_all(wal_dir);

  std::printf("{\n");
  std::printf("  \"schema\": \"decloud-engine-bench-v5\",\n");
  std::printf("  \"hardware_concurrency\": %zu,\n", ThreadPool::default_workers());
  // Instrumented (DECLOUD_DSCHED=ON) numbers are not comparable to
  // production numbers; the field lets perf dashboards partition them.
  std::printf("  \"dsched\": \"%s\",\n", dsched::kEnabled ? "on" : "off");
  // Whether every timed run recorded into a live flight recorder.
  std::printf("  \"journal\": \"%s\",\n", journal ? "on" : "off");
  // Whether every timed run wrote a fsync'd WAL (durable path, cache off).
  std::printf("  \"wal\": \"%s\",\n", wal ? "on" : "off");
  std::printf("  \"rounds\": %d,\n", rounds);
  std::printf("  \"requests\": %zu,\n", num_requests);
  std::printf("  \"results\": [\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::printf("    {\"bench\": \"engine_drive\", \"mode\": \"%s\", \"shards\": %zu, "
                "\"threads\": %zu, \"bids\": %zu, \"allocated\": %zu, \"epochs\": %zu, "
                "\"ms\": %.4f, \"bids_per_sec\": %.1f}%s\n",
                e.mode, e.shards, e.threads, e.bids, e.allocated, e.epochs, e.ms, e.bids_per_sec,
                i + 1 == entries.size() ? "" : ",");
  }
  std::printf("  ]\n}\n");
  return 0;
}

// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for block hashing, proof-of-work, Merkle trees, key fingerprints and
// the verifiable-randomization seed.  Incremental interface so large block
// bodies can be hashed without copying.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace decloud::crypto {

/// A 256-bit digest.
using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256();

  /// Feeds more input.  May be called any number of times.
  Sha256& update(std::span<const std::uint8_t> data);
  Sha256& update(std::string_view data);

  /// Finalizes and returns the digest.  The hasher must not be reused
  /// afterwards (create a new one instead).
  [[nodiscard]] Digest finish();

  /// One-shot convenience.
  [[nodiscard]] static Digest hash(std::span<const std::uint8_t> data);
  [[nodiscard]] static Digest hash(std::string_view data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::uint64_t total_len_ = 0;
  std::size_t buffer_len_ = 0;
  bool finished_ = false;
};

/// Hex string of a digest (convenience for logs/tests).
[[nodiscard]] std::string digest_hex(const Digest& d);

/// Hash functor so digests can key unordered containers.  Uses the first 8
/// bytes — already uniformly distributed for a cryptographic digest.
struct DigestHash {
  std::size_t operator()(const Digest& d) const noexcept {
    std::size_t h = 0;
    for (int i = 0; i < 8; ++i) h = (h << 8) | d[static_cast<std::size_t>(i)];
    return h;
  }
};

}  // namespace decloud::crypto

#include "crypto/pow.hpp"

#include "common/byte_buffer.hpp"
#include "common/ensure.hpp"

namespace decloud::crypto {

bool meets_difficulty(const Digest& digest, unsigned difficulty_bits) {
  DECLOUD_EXPECTS(difficulty_bits <= 256);
  unsigned remaining = difficulty_bits;
  for (const std::uint8_t byte : digest) {
    if (remaining == 0) return true;
    if (remaining >= 8) {
      if (byte != 0) return false;
      remaining -= 8;
    } else {
      return (byte >> (8 - remaining)) == 0;
    }
  }
  return remaining == 0;
}

Digest pow_digest(std::span<const std::uint8_t> header, std::uint64_t nonce) {
  ByteWriter w;
  w.write_u64(nonce);
  return Sha256().update(header).update({w.bytes().data(), w.bytes().size()}).finish();
}

std::optional<PowSolution> solve_pow(std::span<const std::uint8_t> header,
                                     unsigned difficulty_bits, std::uint64_t start_nonce,
                                     std::uint64_t max_attempts) {
  std::uint64_t nonce = start_nonce;
  for (std::uint64_t attempt = 0; attempt < max_attempts; ++attempt, ++nonce) {
    const Digest d = pow_digest(header, nonce);
    if (meets_difficulty(d, difficulty_bits)) return PowSolution{.nonce = nonce, .digest = d};
  }
  return std::nullopt;
}

bool verify_pow(std::span<const std::uint8_t> header, unsigned difficulty_bits,
                const PowSolution& solution) {
  const Digest d = pow_digest(header, solution.nonce);
  return d == solution.digest && meets_difficulty(d, difficulty_bits);
}

}  // namespace decloud::crypto

#include "crypto/signature.hpp"

#include "common/byte_buffer.hpp"
#include "crypto/hmac.hpp"

namespace decloud::crypto {

namespace {

constexpr std::uint64_t kOrder = kFieldPrime - 1;  // exponents live mod p-1

std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b) {
  return static_cast<std::uint64_t>((static_cast<__uint128_t>(a) * b) % kFieldPrime);
}

std::uint64_t mod_order(std::uint64_t v) { return v % kOrder; }

/// Challenge e = H(r || message) reduced mod (p-1).
std::uint64_t challenge(std::uint64_t r, std::span<const std::uint8_t> message) {
  ByteWriter w;
  w.write_u64(r);
  const Digest d = Sha256().update({w.bytes().data(), w.bytes().size()}).update(message).finish();
  std::uint64_t e = 0;
  for (int i = 0; i < 8; ++i) e = (e << 8) | d[static_cast<std::size_t>(i)];
  return mod_order(e);
}

}  // namespace

std::uint64_t pow_mod(std::uint64_t base, std::uint64_t exp) {
  std::uint64_t result = 1;
  std::uint64_t b = base % kFieldPrime;
  while (exp > 0) {
    if (exp & 1) result = mul_mod(result, b);
    b = mul_mod(b, b);
    exp >>= 1;
  }
  return result;
}

Digest PublicKey::fingerprint() const {
  ByteWriter w;
  w.write_u64(y);
  return Sha256::hash({w.bytes().data(), w.bytes().size()});
}

KeyPair generate_keypair(Rng& rng) {
  // x uniform in [1, p-2]; avoid 0 (degenerate key).
  const std::uint64_t x = 1 + rng.next_below(kOrder - 1);
  return {.priv = {.x = x}, .pub = {.y = pow_mod(kGenerator, x)}};
}

Signature sign(const PrivateKey& key, std::span<const std::uint8_t> message) {
  // Deterministic nonce: k = HMAC(x, message) mod (p-1), never zero.
  ByteWriter kw;
  kw.write_u64(key.x);
  const Digest kd = hmac_sha256({kw.bytes().data(), kw.bytes().size()}, message);
  std::uint64_t k = 0;
  for (int i = 0; i < 8; ++i) k = (k << 8) | kd[static_cast<std::size_t>(i)];
  k = 1 + mod_order(k) % (kOrder - 1);

  const std::uint64_t r = pow_mod(kGenerator, k);
  const std::uint64_t e = challenge(r, message);
  // s = k - x·e mod (p-1)
  const std::uint64_t xe = static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(key.x) * e) % kOrder);
  const std::uint64_t s = (k + kOrder - xe % kOrder) % kOrder;
  return {.r = r, .s = s};
}

bool verify(const PublicKey& key, std::span<const std::uint8_t> message, const Signature& sig) {
  if (sig.r == 0 || sig.r >= kFieldPrime || key.y == 0 || key.y >= kFieldPrime) return false;
  const std::uint64_t e = challenge(sig.r, message);
  // Check g^s · y^e == r.
  const std::uint64_t lhs = mul_mod(pow_mod(kGenerator, sig.s), pow_mod(key.y, e));
  return lhs == sig.r;
}

}  // namespace decloud::crypto

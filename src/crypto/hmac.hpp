// HMAC-SHA256 (RFC 2104) — used to derive per-bid temporary encryption keys
// and as the keystream PRF fallback in tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/sha256.hpp"

namespace decloud::crypto {

/// Computes HMAC-SHA256(key, message).
[[nodiscard]] Digest hmac_sha256(std::span<const std::uint8_t> key,
                                 std::span<const std::uint8_t> message);

/// HKDF-style expansion: derives `n` bytes from a key and an info label.
/// Output is the concatenation of HMAC(key, info || counter) blocks.
[[nodiscard]] std::vector<std::uint8_t> derive_bytes(std::span<const std::uint8_t> key,
                                                     std::span<const std::uint8_t> info,
                                                     std::size_t n);

}  // namespace decloud::crypto

// ChaCha20 stream cipher (RFC 8439), implemented from scratch.
//
// Sealed bids in the two-phase bid-exposure protocol (Section III-A of the
// paper) are "encrypted entirely with temporary keys prior to submission".
// We use ChaCha20 for that symmetric layer: participants pick a random
// 256-bit temporary key, encrypt the canonical bid bytes, and later
// broadcast the key to disclose the bid.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace decloud::crypto {

/// 256-bit symmetric key.
using SymmetricKey = std::array<std::uint8_t, 32>;
/// 96-bit nonce.
using Nonce = std::array<std::uint8_t, 12>;

/// Applies the ChaCha20 keystream (encrypt == decrypt).
/// `initial_counter` follows RFC 8439 (usually 0 or 1).
[[nodiscard]] std::vector<std::uint8_t> chacha20_xor(const SymmetricKey& key, const Nonce& nonce,
                                                     std::span<const std::uint8_t> data,
                                                     std::uint32_t initial_counter = 0);

/// Raw ChaCha20 block function, exposed for the RFC test vectors.
[[nodiscard]] std::array<std::uint8_t, 64> chacha20_block(const SymmetricKey& key,
                                                          const Nonce& nonce,
                                                          std::uint32_t counter);

}  // namespace decloud::crypto

#include "crypto/merkle.hpp"

#include "common/ensure.hpp"

namespace decloud::crypto {

Digest merkle_parent(const Digest& left, const Digest& right) {
  Sha256 h;
  const std::uint8_t tag = 0x01;  // domain separation: internal node
  h.update({&tag, 1});
  h.update({left.data(), left.size()});
  h.update({right.data(), right.size()});
  return h.finish();
}

MerkleTree::MerkleTree(std::vector<Digest> leaves) : leaf_count_(leaves.size()) {
  if (leaves.empty()) return;  // root_ stays all-zero
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    const auto& prev = levels_.back();
    std::vector<Digest> next;
    next.reserve((prev.size() + 1) / 2);
    for (std::size_t i = 0; i < prev.size(); i += 2) {
      const Digest& left = prev[i];
      const Digest& right = (i + 1 < prev.size()) ? prev[i + 1] : prev[i];
      next.push_back(merkle_parent(left, right));
    }
    levels_.push_back(std::move(next));
  }
  root_ = levels_.back().front();
}

MerkleProof MerkleTree::prove(std::size_t index) const {
  DECLOUD_EXPECTS(index < leaf_count_);
  MerkleProof proof;
  std::size_t i = index;
  for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
    const auto& nodes = levels_[level];
    const std::size_t sibling = (i % 2 == 0) ? std::min(i + 1, nodes.size() - 1) : i - 1;
    proof.push_back({nodes[sibling], /*sibling_is_left=*/i % 2 == 1});
    i /= 2;
  }
  return proof;
}

bool MerkleTree::verify(const Digest& leaf, const MerkleProof& proof, const Digest& root) {
  Digest cur = leaf;
  for (const auto& step : proof) {
    cur = step.sibling_is_left ? merkle_parent(step.sibling, cur) : merkle_parent(cur, step.sibling);
  }
  return cur == root;
}

}  // namespace decloud::crypto

// HashCash-style proof-of-work over SHA-256.
//
// Miners seal each block preamble with a PoW solution (Section III-A).  The
// difficulty is expressed as a number of leading zero *bits* in the digest
// of (header bytes || nonce); simulation difficulties stay small (8–20 bits)
// so rounds complete quickly while preserving the protocol shape.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "crypto/sha256.hpp"

namespace decloud::crypto {

/// A solved proof-of-work.
struct PowSolution {
  std::uint64_t nonce = 0;
  Digest digest{};
};

/// Returns true if `digest` has at least `difficulty_bits` leading zero bits.
[[nodiscard]] bool meets_difficulty(const Digest& digest, unsigned difficulty_bits);

/// Digest of (header || nonce) — the quantity PoW constrains.
[[nodiscard]] Digest pow_digest(std::span<const std::uint8_t> header, std::uint64_t nonce);

/// Searches nonces starting from `start_nonce` until the difficulty is met
/// or `max_attempts` nonces have been tried.  Deterministic given the same
/// inputs.  Returns nullopt on exhaustion.
[[nodiscard]] std::optional<PowSolution> solve_pow(std::span<const std::uint8_t> header,
                                                   unsigned difficulty_bits,
                                                   std::uint64_t start_nonce = 0,
                                                   std::uint64_t max_attempts = UINT64_MAX);

/// Verifies a claimed solution against the header and difficulty.
[[nodiscard]] bool verify_pow(std::span<const std::uint8_t> header, unsigned difficulty_bits,
                              const PowSolution& solution);

}  // namespace decloud::crypto

#include "crypto/chacha20.hpp"

#include <bit>

namespace decloud::crypto {

namespace {

constexpr void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                             std::uint32_t& d) {
  a += b; d ^= a; d = std::rotl(d, 16);
  c += d; b ^= c; b = std::rotl(b, 12);
  a += b; d ^= a; d = std::rotl(d, 8);
  c += d; b ^= c; b = std::rotl(b, 7);
}

std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::array<std::uint8_t, 64> chacha20_block(const SymmetricKey& key, const Nonce& nonce,
                                            std::uint32_t counter) {
  // "expand 32-byte k"
  std::array<std::uint32_t, 16> state = {0x61707865, 0x3320646e, 0x79622d32, 0x6b206574};
  for (std::size_t i = 0; i < 8; ++i) state[4 + i] = load_le32(key.data() + 4 * i);
  state[12] = counter;
  for (std::size_t i = 0; i < 3; ++i) state[13 + i] = load_le32(nonce.data() + 4 * i);

  std::array<std::uint32_t, 16> w = state;
  for (int round = 0; round < 10; ++round) {
    quarter_round(w[0], w[4], w[8], w[12]);
    quarter_round(w[1], w[5], w[9], w[13]);
    quarter_round(w[2], w[6], w[10], w[14]);
    quarter_round(w[3], w[7], w[11], w[15]);
    quarter_round(w[0], w[5], w[10], w[15]);
    quarter_round(w[1], w[6], w[11], w[12]);
    quarter_round(w[2], w[7], w[8], w[13]);
    quarter_round(w[3], w[4], w[9], w[14]);
  }

  std::array<std::uint8_t, 64> out{};
  for (std::size_t i = 0; i < 16; ++i) {
    const std::uint32_t v = w[i] + state[i];
    out[4 * i + 0] = static_cast<std::uint8_t>(v);
    out[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
  return out;
}

std::vector<std::uint8_t> chacha20_xor(const SymmetricKey& key, const Nonce& nonce,
                                       std::span<const std::uint8_t> data,
                                       std::uint32_t initial_counter) {
  std::vector<std::uint8_t> out(data.begin(), data.end());
  std::uint32_t counter = initial_counter;
  for (std::size_t offset = 0; offset < out.size(); offset += 64, ++counter) {
    const auto ks = chacha20_block(key, nonce, counter);
    const std::size_t n = std::min<std::size_t>(64, out.size() - offset);
    for (std::size_t i = 0; i < n; ++i) out[offset + i] ^= ks[i];
  }
  return out;
}

}  // namespace decloud::crypto

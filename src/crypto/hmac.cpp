#include "crypto/hmac.hpp"

#include <array>
#include <vector>

namespace decloud::crypto {

Digest hmac_sha256(std::span<const std::uint8_t> key, std::span<const std::uint8_t> message) {
  constexpr std::size_t kBlock = 64;
  std::array<std::uint8_t, kBlock> k{};
  if (key.size() > kBlock) {
    const Digest kd = Sha256::hash(key);
    std::copy(kd.begin(), kd.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }

  std::array<std::uint8_t, kBlock> ipad{};
  std::array<std::uint8_t, kBlock> opad{};
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }

  const Digest inner = Sha256().update({ipad.data(), ipad.size()}).update(message).finish();
  return Sha256().update({opad.data(), opad.size()}).update({inner.data(), inner.size()}).finish();
}

std::vector<std::uint8_t> derive_bytes(std::span<const std::uint8_t> key,
                                       std::span<const std::uint8_t> info, std::size_t n) {
  std::vector<std::uint8_t> out;
  out.reserve(n);
  std::vector<std::uint8_t> msg(info.begin(), info.end());
  msg.resize(info.size() + 4);  // trailing counter bytes, rewritten per block
  std::uint32_t counter = 0;
  while (out.size() < n) {
    for (int i = 0; i < 4; ++i) {
      msg[info.size() + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(counter >> (8 * i));
    }
    const Digest block = hmac_sha256(key, msg);
    const std::size_t take = std::min(block.size(), n - out.size());
    out.insert(out.end(), block.begin(), block.begin() + static_cast<std::ptrdiff_t>(take));
    ++counter;
  }
  return out;
}

}  // namespace decloud::crypto

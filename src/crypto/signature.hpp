// Schnorr-style signatures over a 61-bit prime field — SIMULATION GRADE.
//
// Participants sign their bids with private keys (Section III-A of the
// paper).  A production deployment would use secp256k1/Ed25519; this module
// substitutes a Schnorr identification-based signature over the
// multiplicative group of Z_p with p = 2^61 - 1 (a Mersenne prime), which
// exercises the identical protocol surface — keygen, sign, verify, key
// fingerprints — with portable 64/128-bit arithmetic.  See DESIGN.md §5.
// It is NOT cryptographically strong (a 61-bit discrete log is trivially
// breakable) and must never leave simulation code.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "common/rng.hpp"
#include "crypto/sha256.hpp"

namespace decloud::crypto {

/// Public verification key.
struct PublicKey {
  std::uint64_t y = 0;  // y = g^x mod p

  friend bool operator==(const PublicKey&, const PublicKey&) = default;

  /// SHA-256 fingerprint; used as the participant address on the ledger.
  [[nodiscard]] Digest fingerprint() const;
};

/// Private signing key.  Keep secret (in so far as a simulation has
/// secrets); treat as move-only data in application code.
struct PrivateKey {
  std::uint64_t x = 0;
};

/// A Schnorr signature (r = g^k, s = k - x·e mod (p-1)).
struct Signature {
  std::uint64_t r = 0;
  std::uint64_t s = 0;

  friend bool operator==(const Signature&, const Signature&) = default;
};

/// A keypair bound together for convenience.
struct KeyPair {
  PrivateKey priv;
  PublicKey pub;
};

/// Deterministically generates a keypair from an RNG (tests/simulations
/// seed this; production would use an entropy source).
[[nodiscard]] KeyPair generate_keypair(Rng& rng);

/// Signs a message.  The nonce is derived deterministically from the key
/// and message (RFC 6979 style), so signing is reproducible and never
/// reuses a nonce across messages.
[[nodiscard]] Signature sign(const PrivateKey& key, std::span<const std::uint8_t> message);

/// Verifies a signature.
[[nodiscard]] bool verify(const PublicKey& key, std::span<const std::uint8_t> message,
                          const Signature& sig);

/// Field parameters, exposed for tests.
inline constexpr std::uint64_t kFieldPrime = (1ULL << 61) - 1;  // 2^61 - 1
inline constexpr std::uint64_t kGenerator = 37;                 // group element of large order

/// Modular exponentiation in Z_p (exposed for tests).
[[nodiscard]] std::uint64_t pow_mod(std::uint64_t base, std::uint64_t exp);

}  // namespace decloud::crypto

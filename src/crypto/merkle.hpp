// Merkle tree over block payloads.
//
// The block preamble commits to the set of sealed bids via a Merkle root so
// that miners can later prove inclusion/exclusion of individual bids (the
// "did the miner exclude anyone?" check of Section III-B).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/sha256.hpp"

namespace decloud::crypto {

/// One step of a Merkle inclusion proof: the sibling digest and which side
/// it sits on.
struct MerkleProofStep {
  Digest sibling;
  bool sibling_is_left = false;
};

/// An inclusion proof from a leaf to the root.
using MerkleProof = std::vector<MerkleProofStep>;

/// Immutable Merkle tree built over pre-hashed leaves.  Leaves are digests
/// (hash your payloads first).  Odd levels duplicate the last node, like
/// Bitcoin.  An empty tree has the all-zero root.
class MerkleTree {
 public:
  explicit MerkleTree(std::vector<Digest> leaves);

  [[nodiscard]] const Digest& root() const { return root_; }
  [[nodiscard]] std::size_t leaf_count() const { return leaf_count_; }

  /// Builds an inclusion proof for the leaf at `index`.
  [[nodiscard]] MerkleProof prove(std::size_t index) const;

  /// Verifies an inclusion proof against a root.
  [[nodiscard]] static bool verify(const Digest& leaf, const MerkleProof& proof,
                                   const Digest& root);

 private:
  // levels_[0] is the leaf level; levels_.back() has a single root node.
  std::vector<std::vector<Digest>> levels_;
  Digest root_{};
  std::size_t leaf_count_ = 0;
};

/// Hashes two digests into a parent node (domain-separated from leaves).
[[nodiscard]] Digest merkle_parent(const Digest& left, const Digest& right);

}  // namespace decloud::crypto

#include "journal/journal.hpp"

#include <cinttypes>
#include <cstdio>
#include <mutex>
#include <utility>

#include "common/byte_buffer.hpp"
#include "common/ensure.hpp"
#include "journal/wire.hpp"
#include "stats/histogram.hpp"

namespace decloud::journal {
namespace {

using wire::read_varint;
using wire::write_varint;

// Wire magic: "DCJ1" + a version byte.  The magic pins byte order and
// format family; the version gates incompatible schema changes.  Varint /
// CRC primitives live in journal/wire.hpp, shared with the WAL's "DCW1"
// format.
constexpr std::uint8_t kMagic[4] = {'D', 'C', 'J', '1'};
constexpr std::uint8_t kVersion = 1;

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

const char* kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kIngestAdmitted: return "ingest_admitted";
    case EventKind::kIngestRejected: return "ingest_rejected";
    case EventKind::kIngestDeferred: return "ingest_deferred";
    case EventKind::kRetryAdmitted: return "retry_admitted";
    case EventKind::kRetryDropped: return "retry_dropped";
    case EventKind::kEpochClose: return "epoch_close";
    case EventKind::kTradeStruck: return "trade_struck";
    case EventKind::kTradeReduced: return "trade_reduced";
    case EventKind::kTradeDenied: return "trade_denied";
    case EventKind::kBlockMined: return "block_mined";
    case EventKind::kBlockRejected: return "block_rejected";
    case EventKind::kBlockRemined: return "block_remined";
    case EventKind::kFaultFired: return "fault_fired";
    case EventKind::kReputationPenalty: return "reputation_penalty";
    case EventKind::kResidueCarried: return "residue_carried";
    case EventKind::kResidueAbandoned: return "residue_abandoned";
  }
  DECLOUD_EXPECTS_MSG(false, "unknown journal event kind");
  return "";
}

std::size_t kind_doubles(EventKind kind) {
  switch (kind) {
    case EventKind::kTradeStruck: return 2;  // payment, Eq. 20 unit price
    case EventKind::kBlockMined: return 1;   // round welfare
    default: return 0;
  }
}

Journal::Journal(std::size_t num_rings, std::size_t capacity) : capacity_(capacity) {
  DECLOUD_EXPECTS_MSG(num_rings >= 1, "journal needs at least the control ring");
  DECLOUD_EXPECTS_MSG(capacity > 0, "journal ring capacity must be positive");
  rings_.reserve(num_rings);
  for (std::size_t i = 0; i < num_rings; ++i) rings_.push_back(std::make_unique<Ring>());
}

void Journal::append(std::size_t ring, Event event) {
  DECLOUD_EXPECTS_MSG(ring < rings_.size(), "journal ring index out of range");
  DECLOUD_EXPECTS_MSG(static_cast<std::size_t>(event.kind) < kNumEventKinds,
                      "journal event kind out of range");
  Ring& r = *rings_[ring];
  const std::lock_guard<dsched::mutex> lock(r.mutex);
  event.seq = r.next_seq++;
  if (r.buf.size() < capacity_) {
    r.buf.push_back(event);
    ++r.count;
  } else if (r.count < capacity_) {
    r.buf[(r.head + r.count) % capacity_] = event;
    ++r.count;
  } else {
    // Full: overwrite the oldest slot — the tail is the recent history.
    r.buf[r.head] = event;
    r.head = (r.head + 1) % capacity_;
    ++r.dropped;
  }
  DECLOUD_ENSURES_MSG(r.count <= capacity_, "journal ring overflowed its bound");
}

std::size_t Journal::size(std::size_t ring) const {
  DECLOUD_EXPECTS(ring < rings_.size());
  const Ring& r = *rings_[ring];
  const std::lock_guard<dsched::mutex> lock(r.mutex);
  return r.count;
}

std::uint64_t Journal::dropped(std::size_t ring) const {
  DECLOUD_EXPECTS(ring < rings_.size());
  const Ring& r = *rings_[ring];
  const std::lock_guard<dsched::mutex> lock(r.mutex);
  return r.dropped;
}

std::vector<Event> Journal::events(std::size_t ring) const {
  DECLOUD_EXPECTS(ring < rings_.size());
  const Ring& r = *rings_[ring];
  const std::lock_guard<dsched::mutex> lock(r.mutex);
  std::vector<Event> out;
  out.reserve(r.count);
  for (std::size_t i = 0; i < r.count; ++i) out.push_back(r.buf[(r.head + i) % capacity_]);
  return out;
}

std::size_t Journal::total_events() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < rings_.size(); ++i) total += size(i);
  return total;
}

std::vector<std::uint8_t> Journal::encode() const {
  ByteWriter w;
  for (const std::uint8_t b : kMagic) w.write_u8(b);
  w.write_u8(kVersion);
  write_varint(w, capacity_);
  write_varint(w, rings_.size());
  for (std::size_t ring = 0; ring < rings_.size(); ++ring) {
    const std::vector<Event> events = this->events(ring);
    const std::uint64_t drops = dropped(ring);
    const std::uint64_t first_seq = events.empty() ? 0 : events.front().seq;
    write_varint(w, drops);
    write_varint(w, first_seq);
    write_varint(w, events.size());
    for (const Event& e : events) {
      // seq is implicit (first_seq + position): rings assign dense
      // sequence numbers, so encoding them would only add bytes.
      w.write_u8(static_cast<std::uint8_t>(e.kind));
      write_varint(w, e.epoch);
      write_varint(w, e.a);
      write_varint(w, e.b);
      write_varint(w, e.c);
      const std::size_t doubles = kind_doubles(e.kind);
      if (doubles >= 1) w.write_double(e.x);
      if (doubles >= 2) w.write_double(e.y);
    }
  }
  return std::move(w).take();
}

Journal Journal::decode(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  for (const std::uint8_t expected : kMagic) {
    wire::check(wire::read_u8(r) == expected, "journal magic mismatch");
  }
  wire::check(wire::read_u8(r) == kVersion, "journal version mismatch");
  const std::uint64_t capacity = read_varint(r);
  const std::uint64_t num_rings = read_varint(r);
  wire::check(capacity > 0 && num_rings >= 1, "journal header invalid");
  // A corrupt ring count must not drive a huge up-front allocation: each
  // non-empty ring needs at least 3 header bytes, so bound by remaining().
  wire::check(num_rings <= r.remaining(), "journal ring count exceeds input size");
  Journal journal(static_cast<std::size_t>(num_rings), static_cast<std::size_t>(capacity));
  for (std::size_t ring = 0; ring < num_rings; ++ring) {
    Ring& dst = *journal.rings_[ring];
    dst.dropped = read_varint(r);
    const std::uint64_t first_seq = read_varint(r);
    const std::uint64_t count = read_varint(r);
    wire::check(count <= capacity, "journal ring count exceeds capacity");
    wire::check(count <= r.remaining(), "journal ring count exceeds input size");
    dst.next_seq = first_seq;
    for (std::uint64_t i = 0; i < count; ++i) {
      Event e;
      const std::uint8_t kind = wire::read_u8(r);
      wire::check(kind < kNumEventKinds, "journal event kind out of range");
      e.kind = static_cast<EventKind>(kind);
      e.epoch = read_varint(r);
      e.a = read_varint(r);
      e.b = read_varint(r);
      e.c = read_varint(r);
      const std::size_t doubles = kind_doubles(e.kind);
      if (doubles >= 1) e.x = wire::read_double(r);
      if (doubles >= 2) e.y = wire::read_double(r);
      e.seq = dst.next_seq++;
      dst.buf.push_back(e);
      ++dst.count;
    }
  }
  wire::check(r.exhausted(), "journal has trailing bytes");
  return journal;
}

void Journal::adopt(Journal&& other) {
  capacity_ = other.capacity_;
  rings_ = std::move(other.rings_);
}

std::string Journal::export_jsonl() const {
  DECLOUD_EXPECTS_MSG(!rings_.empty(), "journal has no rings to export");
  std::string out;
  char buf[192];
  for (std::size_t ring = 0; ring < rings_.size(); ++ring) {
    const std::vector<Event> events = this->events(ring);
    const std::uint64_t drops = dropped(ring);
    const std::uint64_t first_seq = events.empty() ? 0 : events.front().seq;
    std::snprintf(buf, sizeof buf,
                  "{\"ring\":%zu,\"kind\":\"ring_header\",\"dropped\":%" PRIu64
                  ",\"first_seq\":%" PRIu64 ",\"events\":%zu}\n",
                  ring, drops, first_seq, events.size());
    out += buf;
    for (const Event& e : events) {
      std::snprintf(buf, sizeof buf,
                    "{\"ring\":%zu,\"seq\":%" PRIu64 ",\"kind\":\"%s\",\"epoch\":%" PRIu64
                    ",\"a\":%" PRIu64 ",\"b\":%" PRIu64 ",\"c\":%" PRIu64,
                    ring, e.seq, kind_name(e.kind), e.epoch, e.a, e.b, e.c);
      out += buf;
      const std::size_t doubles = kind_doubles(e.kind);
      if (doubles >= 1) {
        out += ",\"x\":";
        append_double(out, e.x);
      }
      if (doubles >= 2) {
        out += ",\"y\":";
        append_double(out, e.y);
      }
      out += "}\n";
    }
  }
  return out;
}

obs::MetricsSink telemetry_sink(const Journal& journal) {
  obs::MetricsSink sink("journal");
  obs::MetricsRegistry& m = sink.metrics();

  // Fixed ring order; within a ring events are already oldest-first, so
  // every accumulation below is a deterministic left fold.
  std::uint64_t total = 0;
  std::uint64_t drops = 0;
  std::uint64_t requests_admitted = 0;
  std::uint64_t trades = 0;
  double welfare = 0.0;
  std::size_t trading_shards = 0;
  std::uint64_t max_shard_trades = 0;
  stats::Histogram& price = m.histogram("journal.clearing_price", 0.0, 8.0, 32);
  stats::Histogram& block_welfare = m.histogram("journal.welfare_per_block", 0.0, 64.0, 16);
  stats::Histogram& block_trades = m.histogram("journal.trades_per_block", 0.0, 64.0, 16);

  for (std::size_t ring = 0; ring < journal.num_rings(); ++ring) {
    std::uint64_t shard_trades = 0;
    std::uint64_t shard_carried = 0;
    std::uint64_t shard_abandoned = 0;
    for (const Event& e : journal.events(ring)) {
      ++total;
      switch (e.kind) {
        case EventKind::kIngestAdmitted:
          m.counter("journal.ingest_admitted").add();
          if (e.a == 0) ++requests_admitted;
          break;
        case EventKind::kIngestRejected:
          m.counter("journal.ingest_rejected").add();
          break;
        case EventKind::kIngestDeferred:
          m.counter("journal.ingest_deferred").add();
          break;
        case EventKind::kRetryAdmitted:
          m.counter("journal.retries_admitted").add();
          if (e.a == 0) ++requests_admitted;
          break;
        case EventKind::kRetryDropped:
          m.counter("journal.retries_dropped").add();
          break;
        case EventKind::kEpochClose:
          m.counter("journal.epoch_closes").add();
          break;
        case EventKind::kTradeStruck:
          ++trades;
          ++shard_trades;
          price.add(e.y);
          break;
        case EventKind::kTradeReduced:
          m.counter("journal.trades_reduced").add(e.a);
          break;
        case EventKind::kTradeDenied:
          m.counter("journal.trades_denied").add();
          break;
        case EventKind::kBlockMined:
          m.counter("journal.blocks_mined").add();
          welfare += e.x;
          block_welfare.add(e.x);
          block_trades.add(static_cast<double>(e.b));
          break;
        case EventKind::kBlockRejected:
          m.counter("journal.blocks_rejected").add();
          break;
        case EventKind::kBlockRemined:
          m.counter("journal.blocks_remined").add();
          break;
        case EventKind::kFaultFired:
          m.counter("journal.faults_fired").add();
          break;
        case EventKind::kReputationPenalty:
          m.counter("journal.penalties").add();
          break;
        case EventKind::kResidueCarried:
          shard_carried += e.a;
          break;
        case EventKind::kResidueAbandoned:
          shard_abandoned += e.a + e.b;
          break;
      }
    }
    drops += journal.dropped(ring);
    if (ring != Journal::kControlRing) {
      // Per-shard liquidity-fragmentation counters: where trades happen
      // and where residue piles up (ROADMAP item 3's raw signal).
      char name[64];
      const std::size_t shard = ring - 1;
      std::snprintf(name, sizeof name, "journal.shard%zu.trades", shard);
      m.counter(name).add(shard_trades);
      std::snprintf(name, sizeof name, "journal.shard%zu.residue_carried", shard);
      m.counter(name).add(shard_carried);
      std::snprintf(name, sizeof name, "journal.shard%zu.residue_abandoned", shard);
      m.counter(name).add(shard_abandoned);
      if (shard_trades > 0) ++trading_shards;
      if (shard_trades > max_shard_trades) max_shard_trades = shard_trades;
      m.counter("journal.residue_carried").add(shard_carried);
      m.counter("journal.residue_abandoned").add(shard_abandoned);
    }
  }

  m.counter("journal.events").add(total);
  m.counter("journal.dropped").add(drops);
  m.counter("journal.trades").add(trades);
  m.gauge("journal.welfare").set(welfare);
  m.gauge("journal.allocation_rate")
      .set(requests_admitted == 0
               ? 0.0
               : static_cast<double>(trades) / static_cast<double>(requests_admitted));
  m.gauge("journal.trading_shards").set(static_cast<double>(trading_shards));
  // Share of all trades struck on the busiest shard: 1/num_shards when
  // liquidity spreads evenly, → 1.0 as it concentrates.
  m.gauge("journal.trade_concentration")
      .set(trades == 0 ? 0.0
                       : static_cast<double>(max_shard_trades) / static_cast<double>(trades));
  return sink;
}

}  // namespace decloud::journal

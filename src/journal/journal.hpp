// The market flight recorder (DESIGN.md §3j).
//
// A Journal is a deterministic, append-only record of what the market DID
// — not how fast it ran (that is src/obs/): every ingest verdict, every
// micro-epoch close and its trigger, every trade with its Eq. 20 clearing
// price, every block accepted/rejected/re-mined, every fault that fired
// and every reputation penalty it cost, and the residue the rounds carried
// or abandoned.  PR 4's metrics answer "where did the time go"; the
// journal answers "why did shard 3 leave 212 bids unmatched in epoch 17".
//
// Determinism contract (the whole point):
//
//   * Events are stamped with LOGICAL clocks only — a per-ring sequence
//     number plus the emitting layer's own epoch counter (scheduler epoch
//     for the control ring, shard block height for shard rings).  Never
//     wall time, so two runs over the same submission sequence journal
//     byte-identically no matter how fast the host is.
//   * Events are buffered per shard in bounded rings: ring 0 is the
//     control ring (micro-epoch closes, unroutable rejections — written
//     by the producer/tick thread), ring s+1 belongs to shard s (written
//     by whichever pool worker runs that shard's round).  A shard's
//     events are ordered by its own deterministic execution, and rings
//     never interleave in the encoding, so the scheduler's thread count
//     cannot reorder anything observable.
//   * encode() walks the rings in fixed index order.  Journal bytes are
//     therefore identical at any thread count, in batch vs aligned-
//     trigger stream mode, chaos included — the property the CI byte-diff
//     jobs pin (tests/journal/).
//
// Rings are bounded (drop-oldest) so a soak run cannot grow without
// limit; drops are counted per ring and preserved in the encoding, which
// keeps a truncated journal honestly truncated rather than silently
// complete.  This is the append-only event stream ROADMAP item 5's WAL
// will replay; tools/journal_query is its query/diff front end.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dsched/sync.hpp"
#include "obs/sink.hpp"

namespace decloud::journal {

/// What happened.  Values are the wire encoding — append new kinds at the
/// end, never renumber (journals byte-diff across runs).
enum class EventKind : std::uint8_t {
  kIngestAdmitted = 0,   ///< submit accepted by the shard queue
  kIngestRejected = 1,   ///< submit refused (c: RejectCause)
  kIngestDeferred = 2,   ///< submit parked for deterministic retry
  kRetryAdmitted = 3,    ///< deferred bid re-entered the shard market
  kRetryDropped = 4,     ///< deferred bid exhausted its attempt budget
  kEpochClose = 5,       ///< one scheduler tick (a: CloseReason, b: submissions)
  kTradeStruck = 6,      ///< one accepted match (x: payment, y: Eq. 20 price)
  kTradeReduced = 7,     ///< trade reduction dropped tentative matches
  kTradeDenied = 8,      ///< client denied a proposed agreement
  kBlockMined = 9,       ///< block accepted (x: round welfare)
  kBlockRejected = 10,   ///< quorum refused (or undecodable) block
  kBlockRemined = 11,    ///< bounded re-mine attempt started
  kFaultFired = 12,      ///< an injected fault engaged (a: FaultKind)
  kReputationPenalty = 13,  ///< contract debited a participant (b: PenaltyKind)
  kResidueCarried = 14,  ///< bids re-queued into a later round (b: CarryCause)
  kResidueAbandoned = 15,  ///< retry budgets ran out (a: requests, b: offers)
};

inline constexpr std::size_t kNumEventKinds = 16;

/// Why a micro-epoch closed — shared by the streaming triggers and the
/// batch driver's tick attribution, so aligned runs journal identically
/// (stream/streaming_market.hpp documents the mapping).
enum class CloseReason : std::uint8_t { kBidCount = 0, kWatermark = 1, kFlush = 2, kDrain = 3 };

/// Operand `c` of kIngestRejected.
enum class RejectCause : std::uint8_t { kBackpressure = 0, kUnroutable = 1 };

/// Operand `b` of kReputationPenalty.
enum class PenaltyKind : std::uint8_t { kWithhold = 0, kProducer = 1, kDeny = 2 };

/// Operand `b` of kResidueCarried.
enum class CarryCause : std::uint8_t { kUnmatched = 0, kBlockRejected = 1, kDenialRefund = 2 };

/// Canonical lowercase name ("trade_struck", …) used by the JSONL export
/// and journal_query filters.
[[nodiscard]] const char* kind_name(EventKind kind);
/// Doubles carried by the kind (kTradeStruck: 2, kBlockMined: 1, else 0).
[[nodiscard]] std::size_t kind_doubles(EventKind kind);

/// One journal entry.  `seq` is the ring's logical clock (assigned by
/// append, dense per ring); `epoch` is the emitting layer's epoch counter.
/// a/b/c are kind-dependent integer operands, x/y kind-dependent doubles
/// (see EventKind comments; unused operands are zero).
struct Event {
  EventKind kind = EventKind::kIngestAdmitted;
  std::uint64_t seq = 0;
  std::uint64_t epoch = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  double x = 0.0;
  double y = 0.0;
};

class Journal {
 public:
  /// Ring 0: control events (epoch closes, unroutable rejections).
  static constexpr std::size_t kControlRing = 0;

  /// `num_rings` bounded rings of `capacity` events each.  An engine uses
  /// num_shards + 1 (control + one per shard).
  Journal(std::size_t num_rings, std::size_t capacity);

  /// Appends one event to `ring`, stamping it with the ring's next
  /// sequence number.  When the ring is full the OLDEST event is dropped
  /// and counted — the journal tail is always the most recent history.
  /// Internally synchronized per ring (dsched::mutex), but per-ring byte
  /// determinism still requires the caller discipline the engine already
  /// imposes: one writer per shard ring during a tick, the producer/tick
  /// thread for the control ring.
  void append(std::size_t ring, Event event);

  [[nodiscard]] std::size_t num_rings() const { return rings_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size(std::size_t ring) const;
  [[nodiscard]] std::uint64_t dropped(std::size_t ring) const;
  /// Snapshot copy of one ring, oldest first, seq stamps filled in.
  [[nodiscard]] std::vector<Event> events(std::size_t ring) const;
  /// Total events currently buffered across all rings.
  [[nodiscard]] std::size_t total_events() const;

  /// Compact binary encoding: "DCJ1" magic, version, capacity, then every
  /// ring in FIXED index order (dropped count, first seq, events as
  /// varint-packed operands + bit-cast doubles).  Byte-identical across
  /// thread counts — the string the determinism CI jobs cmp(1).
  [[nodiscard]] std::vector<std::uint8_t> encode() const;

  /// Inverse of encode(); throws journal::wire::decode_error on ANY
  /// malformed buffer — bad magic, truncation (even mid-varint), unknown
  /// kind, impossible counts, trailing bytes — so a corrupt journal file
  /// fails loudly in journal_query instead of misparsing into silent
  /// partial state.
  [[nodiscard]] static Journal decode(std::span<const std::uint8_t> bytes);

  /// Replaces this journal's contents (capacity, rings, drop counts, seq
  /// counters) with `other`'s.  Used by crash recovery to install a
  /// journal restored from a snapshot into the engine's live instance.
  /// Single-threaded use only — the engine must be quiescent.
  void adopt(Journal&& other);

  /// One JSON object per line: a ring_header line per ring (dropped /
  /// first_seq / events) followed by its events, rings in fixed order,
  /// doubles printed %.17g.  The grep-able face of the binary format.
  [[nodiscard]] std::string export_jsonl() const;

 private:
  /// Bounded drop-oldest ring.  Not movable (mutex), hence unique_ptr
  /// storage in the journal.
  struct Ring {
    mutable dsched::mutex mutex;
    std::vector<Event> buf;      ///< circular, capacity_ slots
    std::size_t head = 0;        ///< index of the oldest event
    std::size_t count = 0;
    std::uint64_t next_seq = 0;  ///< seq the next append receives
    std::uint64_t dropped = 0;
  };

  std::size_t capacity_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

/// Per-epoch economic telemetry derived FROM the event stream: welfare,
/// allocation rate, clearing-price dispersion, per-shard residue and
/// liquidity-fragmentation counters (ROADMAP item 3's missing signal).
/// Returns a "journal" MetricsSink for the existing merge order
/// (MarketEngine::export_order extra sinks) — the journal is the source
/// of truth and the metrics are a pure function of its events, so the
/// exported bytes inherit the journal's determinism.
[[nodiscard]] obs::MetricsSink telemetry_sink(const Journal& journal);

}  // namespace decloud::journal

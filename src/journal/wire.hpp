// Shared wire codec for the journal ("DCJ1") and WAL ("DCW1") formats.
//
// Both formats are varint-heavy little-endian streams that must decode
// defensively: a truncated or bit-flipped file is an expected input (torn
// writes, disk corruption), never grounds for UB or silently adopting a
// partial state.  Every decode failure throws `decode_error` with a
// one-line diagnostic; the checked read helpers here are the ONLY way the
// journal and WAL decoders touch a ByteReader, so truncation surfaces as
// decode_error instead of the reader's precondition_error.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>

#include "common/byte_buffer.hpp"

namespace decloud::journal::wire {

/// Thrown for any malformed "DCJ1"/"DCW1" byte stream — truncation,
/// overlong varints, bad magic, CRC mismatch, impossible counts.
class decode_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Throws decode_error(what) when `cond` is false.
inline void check(bool cond, const char* what) {
  if (!cond) throw decode_error(what);
}

/// Unsigned LEB128.  Most operands are small (shard indices, epochs,
/// attempt counts), so varints keep the encoding compact without a schema
/// per record kind.
void write_varint(ByteWriter& w, std::uint64_t v);

/// Reads a canonical unsigned LEB128 value.  Throws decode_error on
/// truncation, on encodings longer than 10 bytes, and on a 10th byte that
/// would overflow 64 bits (the final byte must be <= 1) — overflowing
/// encodings used to be silently truncated to their low bits.
std::uint64_t read_varint(ByteReader& r);

/// Checked ByteReader wrappers: identical semantics, but truncation throws
/// decode_error instead of precondition_error.
std::uint8_t read_u8(ByteReader& r);
std::uint32_t read_u32(ByteReader& r);
std::uint64_t read_u64(ByteReader& r);
std::int64_t read_i64(ByteReader& r);
double read_double(ByteReader& r);
/// Length-prefixed (u32) raw bytes, validated against `r.remaining()`
/// BEFORE allocating, so a corrupt length cannot trigger a huge alloc.
std::vector<std::uint8_t> read_blob(ByteReader& r);

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected) over `bytes`.
/// Frames every WAL record so bit flips are detected, not replayed.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> bytes);

}  // namespace decloud::journal::wire

#include "journal/wire.hpp"

#include <array>

namespace decloud::journal::wire {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

void write_varint(ByteWriter& w, std::uint64_t v) {
  while (v >= 0x80) {
    w.write_u8(static_cast<std::uint8_t>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  w.write_u8(static_cast<std::uint8_t>(v));
}

std::uint64_t read_varint(ByteReader& r) {
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    const std::uint8_t byte = read_u8(r);
    if (shift == 63) {
      // 10th byte: only bit 0 fits — anything larger would overflow (or
      // encode the value non-canonically by smuggling dropped high bits).
      check(byte <= 1, "varint overflows 64 bits");
    }
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
  }
  throw decode_error("varint overruns 64 bits");
}

std::uint8_t read_u8(ByteReader& r) {
  check(r.remaining() >= 1, "truncated input: expected u8");
  return r.read_u8();
}

std::uint32_t read_u32(ByteReader& r) {
  check(r.remaining() >= 4, "truncated input: expected u32");
  return r.read_u32();
}

std::uint64_t read_u64(ByteReader& r) {
  check(r.remaining() >= 8, "truncated input: expected u64");
  return r.read_u64();
}

std::int64_t read_i64(ByteReader& r) { return static_cast<std::int64_t>(read_u64(r)); }

double read_double(ByteReader& r) {
  check(r.remaining() >= 8, "truncated input: expected double");
  return r.read_double();
}

std::vector<std::uint8_t> read_blob(ByteReader& r) {
  const std::uint32_t len = read_u32(r);
  check(r.remaining() >= len, "truncated input: blob length exceeds remaining bytes");
  std::vector<std::uint8_t> out;
  out.reserve(len);
  for (std::uint32_t i = 0; i < len; ++i) out.push_back(r.read_u8());
  return out;
}

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFU;
  for (const std::uint8_t b : bytes) {
    crc = table[(crc ^ b) & 0xFFU] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFU;
}

}  // namespace decloud::journal::wire

#include "engine/shard_router.hpp"

#include <algorithm>
#include <cmath>

#include "common/ensure.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"

namespace decloud::engine {

ShardRouter::ShardRouter(ShardRouterConfig config) : config_(std::move(config)) {
  DECLOUD_EXPECTS(config_.num_shards > 0);
  DECLOUD_EXPECTS(config_.x1 > config_.x0 && config_.y1 > config_.y0);
  for (const Region& region : config_.regions) {
    DECLOUD_EXPECTS(region.shard < config_.num_shards);
    DECLOUD_EXPECTS(region.x1 > region.x0 && region.y1 > region.y0);
  }
  grid_x_ = config_.grid_x;
  grid_y_ = config_.grid_y;
  if (grid_x_ == 0 || grid_y_ == 0) {
    // Near-square grid with at least one cell per shard.
    grid_x_ = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(config_.num_shards))));
    grid_x_ = std::max<std::size_t>(grid_x_, 1);
    grid_y_ = (config_.num_shards + grid_x_ - 1) / grid_x_;
  }
}

std::size_t ShardRouter::grid_shard(const auction::Location& loc) const {
  // Clamp onto the box so the mapping is total; the half-open upper edge
  // maps into the last cell.
  const double fx = std::clamp((loc.x - config_.x0) / (config_.x1 - config_.x0), 0.0, 1.0);
  const double fy = std::clamp((loc.y - config_.y0) / (config_.y1 - config_.y0), 0.0, 1.0);
  const std::size_t cx =
      std::min(static_cast<std::size_t>(fx * static_cast<double>(grid_x_)), grid_x_ - 1);
  const std::size_t cy =
      std::min(static_cast<std::size_t>(fy * static_cast<double>(grid_y_)), grid_y_ - 1);
  return (cy * grid_x_ + cx) % config_.num_shards;
}

Route ShardRouter::route(const std::optional<auction::Location>& location,
                         std::uint64_t id) const {
  if (location.has_value()) {
    DECLOUD_EXPECTS_MSG(std::isfinite(location->x) && std::isfinite(location->y),
                        "bid location must be finite to route deterministically");
    for (const Region& region : config_.regions) {
      if (location->x >= region.x0 && location->x < region.x1 &&
          location->y >= region.y0 && location->y < region.y1) {
        return {RouteKind::kRegion, region.shard};
      }
    }
    return {RouteKind::kGrid, grid_shard(*location)};
  }
  switch (config_.spillover) {
    case SpilloverPolicy::kHashId:
      // SplitMix64 scrambles sequential ids into an even spread.
      return {RouteKind::kSpilled,
              static_cast<std::size_t>(SplitMix64(id).next() % config_.num_shards)};
    case SpilloverPolicy::kShardZero:
      return {RouteKind::kSpilled, 0};
    case SpilloverPolicy::kReject:
      break;
  }
  return {RouteKind::kRejected, 0};
}

void ShardRouter::annotate(obs::MetricsRegistry& metrics) const {
  metrics.gauge("router.num_shards").set(static_cast<double>(config_.num_shards));
  metrics.gauge("router.grid_x").set(static_cast<double>(grid_x_));
  metrics.gauge("router.grid_y").set(static_cast<double>(grid_y_));
  metrics.gauge("router.regions").set(static_cast<double>(config_.regions.size()));
}

}  // namespace decloud::engine

// Location-aware shard routing for the continuous market engine.
//
// A planet-scale DeCloud deployment cannot clear one global auction:
// proximity dominates QoM for edge workloads (Section II), so bids
// naturally partition by the ℓ_r / ℓ_o coordinates the bidding language
// already carries (Eqs. 1–2).  The router maps every bid to exactly one
// shard — an independent regional market — using, in precedence order:
//
//   1. an explicit region table (rectangles claimed by named shards),
//      for deployments with known metro/POP boundaries;
//   2. a uniform grid over a configured bounding box, for everything the
//      table does not claim (coordinates outside the box are clamped onto
//      its edge, so the grid is total);
//   3. a spillover policy for location-less bids: hash the bid id onto a
//      shard (load-spreading, the default), pin to shard 0, or reject.
//
// Routing is a pure function of (config, location, id) — stable across
// calls, threads, and processes — which the engine's determinism contract
// builds on.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "auction/bid.hpp"

namespace decloud::obs {
class MetricsRegistry;
}

namespace decloud::engine {

/// What to do with a bid that carries no location.
enum class SpilloverPolicy : std::uint8_t {
  kHashId,     ///< splitmix64(id) % num_shards — spreads load, stable per id
  kShardZero,  ///< pin every location-less bid to shard 0
  kReject,     ///< refuse admission (engine reports Admission::kRejected)
};

/// One explicit region claim: the half-open rectangle [x0,x1)×[y0,y1)
/// routes to `shard`.  Earlier entries win overlaps.
struct Region {
  double x0 = 0.0, x1 = 0.0;
  double y0 = 0.0, y1 = 0.0;
  std::size_t shard = 0;
};

struct ShardRouterConfig {
  /// Number of independent regional markets.
  std::size_t num_shards = 1;
  /// Bounding box of the grid: [x0,x1)×[y0,y1).
  double x0 = 0.0, x1 = 1.0;
  double y0 = 0.0, y1 = 1.0;
  /// Grid dimensions; 0 = derive a near-square grid with one cell per
  /// shard (grid_x = ceil(sqrt(num_shards))).
  std::size_t grid_x = 0;
  std::size_t grid_y = 0;
  /// Explicit region table consulted before the grid.
  std::vector<Region> regions;
  SpilloverPolicy spillover = SpilloverPolicy::kHashId;
};

/// How a routing decision was reached — the engine surfaces this in its
/// shard counters (`bids_spilled`).
enum class RouteKind : std::uint8_t {
  kRegion,    ///< matched an explicit region-table entry
  kGrid,      ///< located via the grid
  kSpilled,   ///< location-less, placed by the spillover policy
  kRejected,  ///< location-less under SpilloverPolicy::kReject
};

struct Route {
  RouteKind kind = RouteKind::kRejected;
  /// Valid unless kind == kRejected.
  std::size_t shard = 0;

  [[nodiscard]] bool routed() const { return kind != RouteKind::kRejected; }
};

class ShardRouter {
 public:
  explicit ShardRouter(ShardRouterConfig config);

  [[nodiscard]] std::size_t num_shards() const { return config_.num_shards; }
  [[nodiscard]] const ShardRouterConfig& config() const { return config_; }

  /// Routes by (optional) location and bid id — the common core.
  [[nodiscard]] Route route(const std::optional<auction::Location>& location,
                            std::uint64_t id) const;

  [[nodiscard]] Route route(const auction::Request& r) const {
    return route(r.location, r.id.value());
  }
  [[nodiscard]] Route route(const auction::Offer& o) const {
    return route(o.location, o.id.value());
  }

  /// Records the resolved routing topology as gauges (router.num_shards,
  /// router.grid_x/grid_y, router.regions) — static facts a dashboard
  /// needs next to the per-shard counters.
  void annotate(obs::MetricsRegistry& metrics) const;

 private:
  [[nodiscard]] std::size_t grid_shard(const auction::Location& loc) const;

  ShardRouterConfig config_;
  std::size_t grid_x_;  // resolved (non-zero) grid dimensions
  std::size_t grid_y_;
};

}  // namespace decloud::engine

// engine_driver — CLI front-end for the trace-driven sharded engine.
//
// Streams a generated workload through a MarketEngine with observability
// enabled and writes the merged exports:
//
//   engine_driver --shards 4 --threads 2 --requests 200
//                 --metrics-out metrics.json --trace-out trace.json
//
// In the default logical-clock mode both exports are byte-identical for
// any --threads value (the determinism contract CI checks by diffing the
// files across thread counts); --wallclock switches the trace to steady-
// clock timestamps for human profiling, sacrificing that property.
//
//   --shards N          shard count (default 4)
//   --threads N         scheduler threads; 0 = hardware (default 1)
//   --requests N        workload requests; offers default to N/2
//   --offers N          workload offers
//   --bids-per-epoch N  batch size per tick; 0 = everything at once
//   --seed N            workload + location seed (default 7)
//   --metrics-out PATH  merged metrics JSON ("-" = stdout)
//   --prom-out PATH     merged metrics, Prometheus text format
//   --trace-out PATH    Chrome trace_event JSON ("-" = stdout)
//   --wallclock         stamp spans with a steady clock (non-deterministic)
//   --fault-plan SPEC   deterministic fault schedule (src/fault grammar,
//                       e.g. "withhold_reveal:p=0.3;dishonest_vote:p=0.2")
//   --fault-seed N      seed of the fault coin flips (default 1)
//   --retry-attempts N  ingest retry budget for refused submissions
//                       (default 0 = rejections are final)
//   --scoring MODE      matching scoring path: auto | dense | pruned
//                       (default auto; both paths are byte-identical,
//                       DESIGN.md §3g)
//   --stream            continuous-market mode: bids stream in one at a
//                       time and the market closes micro-epochs on its own
//                       deterministic triggers (DESIGN.md §3h) instead of
//                       the batch submit-then-tick loop
//   --microepoch-bids N close a micro-epoch every N submissions (stream
//                       mode; default = --bids-per-epoch, making the
//                       stream close exactly on the batch epoch
//                       boundaries — byte-identical summary to batch)
//   --watermark K       close a micro-epoch when the stream's logical
//                       clock advances K ticks since the last close
//                       (stream mode; 0 = off)
//   --journal-out PATH  record the market flight recorder (DESIGN.md §3j)
//                       and write its binary encoding ("-" = stdout); the
//                       bytes are identical for any --threads value and
//                       for aligned batch/stream runs (inspect with
//                       tools/journal_query).  Also merges the journal's
//                       economic telemetry sink into the metrics exports.
//   --journal-limit N   per-ring journal capacity in events (default
//                       65536); overflowing rings drop their OLDEST
//                       events and count the drops
//   --wal-dir DIR       durable mode (DESIGN.md §3k): append every input
//                       to a per-shard write-ahead log in DIR before
//                       applying it.  Forces the producer's cross-round
//                       index cache off (snapshots do not carry it);
//                       cache-off outcomes are bit-identical by contract.
//   --snapshot-every N  write a deterministic snapshot of the whole
//                       engine after every N epochs (needs --wal-dir;
//                       must be >= 1 when given; default = no snapshots,
//                       recovery then replays the whole WAL)
//   --recover           recover from --wal-dir (latest snapshot + WAL
//                       tail replay), then resume the run to completion.
//                       The recovered run's summary/metrics/journal are
//                       byte-identical to an uninterrupted run's.
//   --crash-plan SPEC   crash chaos: a fault plan whose crash_at_site
//                       rules hard-kill the process (exit 86) at durable
//                       crash sites (fault/crash.hpp).  Driven by a
//                       SEPARATE injector from --fault-plan, so reference
//                       and recovery runs simply omit this flag.
//
// A fault plan does not break determinism: the same plan + seed yields
// byte-identical exports at any --threads value (the CI chaos job diffs
// them).
//
// The engine report summary always goes to stdout (unless "-" routed an
// export there), so existing report-diff tooling keeps working.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "auction/config.hpp"
#include "engine/driver.hpp"
#include "engine/engine.hpp"
#include "engine/epoch_scheduler.hpp"
#include "fault/fault.hpp"
#include "journal/journal.hpp"
#include "fault/injector.hpp"
#include "obs/clock.hpp"
#include "stream/stream_driver.hpp"
#include "stream/streaming_market.hpp"
#include "wal/durable/durable.hpp"

namespace {

using namespace decloud;

bool write_out(const char* path, const std::string& content) {
  if (std::strcmp(path, "-") == 0) {
    std::fwrite(content.data(), 1, content.size(), stdout);
    std::fputc('\n', stdout);
    return true;
  }
  std::FILE* f = std::fopen(path, "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "engine_driver: cannot open %s for writing\n", path);
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

/// Raw bytes, no trailing newline: journal files are byte-compared with
/// cmp(1), so the file must be exactly Journal::encode().
bool write_binary(const char* path, const std::vector<std::uint8_t>& bytes) {
  if (std::strcmp(path, "-") == 0) {
    std::fwrite(bytes.data(), 1, bytes.size(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path, "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "engine_driver: cannot open %s for writing\n", path);
    return false;
  }
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t shards = 4;
  std::size_t threads = 1;
  std::size_t requests = 200;
  std::size_t offers = 0;  // 0 = requests / 2
  std::size_t bids_per_epoch = 0;
  std::uint64_t seed = 7;
  const char* metrics_out = nullptr;
  const char* prom_out = nullptr;
  const char* trace_out = nullptr;
  bool wallclock = false;
  const char* fault_plan = nullptr;
  std::uint64_t fault_seed = 1;
  std::size_t retry_attempts = 0;
  auction::ScoringPath scoring = auction::ScoringPath::kAuto;
  bool stream_mode = false;
  std::size_t microepoch_bids = SIZE_MAX;  // SIZE_MAX = default to bids_per_epoch
  std::size_t watermark = 0;
  const char* journal_out = nullptr;
  std::size_t journal_limit = 65536;
  const char* wal_dir = nullptr;
  std::uint64_t snapshot_every = 0;
  bool snapshot_every_set = false;
  bool recover = false;
  const char* crash_plan = nullptr;

  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "engine_driver: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--shards") == 0) {
      shards = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      threads = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--requests") == 0) {
      requests = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--offers") == 0) {
      offers = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--bids-per-epoch") == 0) {
      bids_per_epoch = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
      metrics_out = next();
    } else if (std::strcmp(argv[i], "--prom-out") == 0) {
      prom_out = next();
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      trace_out = next();
    } else if (std::strcmp(argv[i], "--wallclock") == 0) {
      wallclock = true;
    } else if (std::strcmp(argv[i], "--fault-plan") == 0) {
      fault_plan = next();
    } else if (std::strcmp(argv[i], "--fault-seed") == 0) {
      fault_seed = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--retry-attempts") == 0) {
      retry_attempts = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--stream") == 0) {
      stream_mode = true;
    } else if (std::strcmp(argv[i], "--microepoch-bids") == 0) {
      microepoch_bids = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--watermark") == 0) {
      watermark = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--journal-out") == 0) {
      journal_out = next();
    } else if (std::strcmp(argv[i], "--journal-limit") == 0) {
      journal_limit = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--wal-dir") == 0) {
      wal_dir = next();
    } else if (std::strcmp(argv[i], "--snapshot-every") == 0) {
      snapshot_every = std::strtoull(next(), nullptr, 10);
      snapshot_every_set = true;
    } else if (std::strcmp(argv[i], "--recover") == 0) {
      recover = true;
    } else if (std::strcmp(argv[i], "--crash-plan") == 0) {
      crash_plan = next();
    } else if (std::strcmp(argv[i], "--scoring") == 0) {
      const char* mode = next();
      if (std::strcmp(mode, "auto") == 0) {
        scoring = auction::ScoringPath::kAuto;
      } else if (std::strcmp(mode, "dense") == 0) {
        scoring = auction::ScoringPath::kDense;
      } else if (std::strcmp(mode, "pruned") == 0) {
        scoring = auction::ScoringPath::kPruned;
      } else {
        std::fprintf(stderr, "engine_driver: --scoring must be auto, dense or pruned\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--shards N] [--threads N] [--requests N] [--offers N]\n"
                   "          [--bids-per-epoch N] [--seed N] [--metrics-out PATH]\n"
                   "          [--prom-out PATH] [--trace-out PATH] [--wallclock]\n"
                   "          [--fault-plan SPEC] [--fault-seed N] [--retry-attempts N]\n"
                   "          [--scoring auto|dense|pruned]\n"
                   "          [--stream] [--microepoch-bids N] [--watermark K]\n"
                   "          [--journal-out PATH] [--journal-limit N]\n"
                   "          [--wal-dir DIR] [--snapshot-every N] [--recover]\n"
                   "          [--crash-plan SPEC]\n",
                   argv[0]);
      return 2;
    }
  }
  if (shards == 0) {
    std::fprintf(stderr, "engine_driver: --shards must be >= 1\n");
    return 2;
  }
  // Flag-combination validation: refuse contradictory durable/stream
  // configurations outright with a one-line diagnostic instead of running
  // a subtly meaningless market.
  if (snapshot_every_set && snapshot_every == 0) {
    std::fprintf(stderr, "engine_driver: --snapshot-every must be >= 1\n");
    return 2;
  }
  if (snapshot_every_set && wal_dir == nullptr) {
    std::fprintf(stderr, "engine_driver: --snapshot-every needs --wal-dir\n");
    return 2;
  }
  if (recover && wal_dir == nullptr) {
    std::fprintf(stderr, "engine_driver: --recover needs --wal-dir\n");
    return 2;
  }
  if (crash_plan != nullptr && wal_dir == nullptr) {
    std::fprintf(stderr, "engine_driver: --crash-plan needs --wal-dir (crashing without a WAL "
                         "leaves nothing to recover)\n");
    return 2;
  }
  if (stream_mode) {
    const std::size_t effective_bids =
        microepoch_bids == SIZE_MAX ? bids_per_epoch : microepoch_bids;
    if (effective_bids == 0 && watermark == 0) {
      std::fprintf(stderr,
                   "engine_driver: --stream needs a micro-epoch trigger (--microepoch-bids or "
                   "--watermark >= 1); with neither the market would never clear\n");
      return 2;
    }
  }

  obs::SteadyClock steady;
  engine::EngineConfig config;
  config.router.num_shards = shards;
  config.router.x0 = 0.0;
  config.router.x1 = 100.0;
  config.router.y0 = 0.0;
  config.router.y1 = 100.0;
  config.market.consensus.difficulty_bits = 8;  // simulation-scale PoW
  config.market.num_verifiers = 1;
  config.market.consensus.auction.threads = 1;  // parallelism across shards
  config.market.consensus.auction.scoring = scoring;
  // Byzantine tolerance is on for the driver: a dishonest-vote fault
  // costs one re-mine, not the whole round's bids.
  config.market.consensus.max_remine_attempts = 1;
  config.observability = true;
  config.clock = wallclock ? &steady : nullptr;
  config.retry.max_attempts = retry_attempts;
  config.fault_seed = fault_seed;
  if (journal_out != nullptr) {
    if (journal_limit == 0) {
      std::fprintf(stderr, "engine_driver: --journal-limit must be >= 1\n");
      return 2;
    }
    config.journal_capacity = journal_limit;
  }
  if (fault_plan != nullptr) {
    try {
      config.fault_plan = fault::FaultPlan::parse(fault_plan);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "engine_driver: bad --fault-plan: %s\n", e.what());
      return 2;
    }
  }
  fault::FaultPlan crash_fault_plan;
  if (crash_plan != nullptr) {
    try {
      crash_fault_plan = fault::FaultPlan::parse(crash_plan);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "engine_driver: bad --crash-plan: %s\n", e.what());
      return 2;
    }
  }
  // Durable mode trades the producer's cross-round index cache for
  // snapshot/replay simplicity; cache-off outcomes are bit-identical by
  // contract (wal/durable/durable.hpp).
  if (wal_dir != nullptr) config.market.reuse_candidate_index = false;

  engine::TraceDriverConfig driver;
  driver.workload.num_requests = requests;
  driver.workload.num_offers = offers == 0 ? requests / 2 : offers;
  driver.located_fraction = 0.9;
  driver.bids_per_epoch = bids_per_epoch;
  driver.seed = seed;

  // The crash injector is SEPARATE from the engine's --fault-plan one
  // (fault/crash.hpp); it shares --fault-seed, which is safe because the
  // coin folds in the fault kind.
  const fault::FaultInjector crash_injector(crash_fault_plan, fault_seed);
  wal::DurableOptions durable;
  if (wal_dir != nullptr) {
    durable.wal_dir = wal_dir;
    durable.snapshot_every = snapshot_every;
    durable.recover = recover;
    durable.crash = crash_plan != nullptr ? &crash_injector : nullptr;
    // Everything that shapes results goes into the fingerprint; thread
    // count (legitimately different on recovery), output paths, snapshot
    // cadence, and the crash plan (only the crashed run carries one) stay
    // out.
    const std::size_t effective_bids =
        microepoch_bids == SIZE_MAX ? bids_per_epoch : microepoch_bids;
    const std::string canonical =
        "shards=" + std::to_string(shards) + ";requests=" + std::to_string(requests) +
        ";offers=" + std::to_string(driver.workload.num_offers) +
        ";bids_per_epoch=" + std::to_string(bids_per_epoch) + ";seed=" + std::to_string(seed) +
        ";retry=" + std::to_string(retry_attempts) +
        ";scoring=" + std::to_string(static_cast<int>(scoring)) +
        ";fault_seed=" + std::to_string(fault_seed) +
        ";fault_plan=" + config.fault_plan.canonical() +
        ";journal=" + std::to_string(config.journal_capacity) +
        ";stream=" + std::to_string(stream_mode ? 1 : 0) +
        ";microepoch_bids=" + std::to_string(stream_mode ? effective_bids : 0) +
        ";watermark=" + std::to_string(stream_mode ? watermark : 0);
    durable.fingerprint = wal::config_fingerprint(canonical);
  }

  if (stream_mode) {
    stream::StreamConfig stream_config;
    stream_config.engine = config;
    // Default the bid-count trigger to the batch boundary so a bare
    // `--stream` run is directly byte-comparable against batch mode.
    stream_config.triggers.bids =
        microepoch_bids == SIZE_MAX ? driver.bids_per_epoch : microepoch_bids;
    stream_config.triggers.watermark = watermark;
    stream_config.threads = threads;
    stream_config.start_time = driver.start_time;
    stream_config.epoch_interval = driver.epoch_interval;
    stream_config.drain_epochs = driver.drain_epochs;

    stream::StreamingMarket market(std::move(stream_config));
    stream::StreamDriveOutcome outcome;
    if (wal_dir != nullptr) {
      try {
        outcome = wal::drive_trace_stream_durable(market, driver, durable);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "engine_driver: %s\n", e.what());
        return 1;
      }
    } else {
      outcome = drive_trace_stream(market, driver);
    }

    const journal::Journal* journal = market.market_engine().journal();
    if (journal != nullptr) {
      // The telemetry sink joins the extra-sink merge order AFTER the
      // stream's sink, before the shard sinks — the same slot it has in
      // batch mode, so metrics stay batch/stream byte-comparable.
      const obs::MetricsSink telemetry = journal::telemetry_sink(*journal);
      const obs::MetricsSink* extras[] = {market.scheduler().sink(), market.sink(), &telemetry};
      engine::MarketEngine& eng = market.market_engine();
      if (metrics_out != nullptr && !write_out(metrics_out, eng.metrics_json(extras))) return 1;
      if (prom_out != nullptr && !write_out(prom_out, eng.metrics_prometheus(extras))) return 1;
      if (!write_binary(journal_out, journal->encode())) return 1;
    } else {
      if (metrics_out != nullptr && !write_out(metrics_out, market.metrics_json())) return 1;
      if (prom_out != nullptr && !write_out(prom_out, market.metrics_prometheus())) return 1;
    }
    if (trace_out != nullptr && !write_out(trace_out, market.trace_json())) return 1;

    const std::string summary = outcome.drive.report.summary_json();
    std::fwrite(summary.data(), 1, summary.size(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }

  engine::MarketEngine market_engine(config);
  engine::EpochScheduler scheduler(market_engine, threads);
  engine::DriveOutcome outcome;
  if (wal_dir != nullptr) {
    try {
      outcome = wal::drive_trace_durable(market_engine, scheduler, driver, durable);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "engine_driver: %s\n", e.what());
      return 1;
    }
  } else {
    outcome = drive_trace(market_engine, scheduler, driver);
  }

  const journal::Journal* journal = market_engine.journal();
  if (journal != nullptr) {
    const obs::MetricsSink telemetry = journal::telemetry_sink(*journal);
    const obs::MetricsSink* extras[] = {scheduler.sink(), &telemetry};
    if (metrics_out != nullptr && !write_out(metrics_out, market_engine.metrics_json(extras))) {
      return 1;
    }
    if (prom_out != nullptr &&
        !write_out(prom_out, market_engine.metrics_prometheus(extras))) {
      return 1;
    }
    if (!write_binary(journal_out, journal->encode())) return 1;
  } else {
    if (metrics_out != nullptr && !write_out(metrics_out, scheduler.metrics_json())) return 1;
    if (prom_out != nullptr && !write_out(prom_out, scheduler.metrics_prometheus())) return 1;
  }
  if (trace_out != nullptr && !write_out(trace_out, scheduler.trace_json())) return 1;

  const std::string summary = outcome.report.summary_json();
  std::fwrite(summary.data(), 1, summary.size(), stdout);
  std::fputc('\n', stdout);
  return 0;
}

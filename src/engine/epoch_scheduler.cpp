#include "engine/epoch_scheduler.hpp"

#include "common/audit.hpp"
#include "common/ensure.hpp"
#include "fault/crash.hpp"
#include "wal/wal.hpp"

namespace decloud::engine {

EpochScheduler::EpochScheduler(MarketEngine& engine, std::size_t threads) : engine_(engine) {
  const std::size_t workers = threads == 0 ? ThreadPool::default_workers() : threads;
  if (workers > 1 && engine_.num_shards() > 1) pool_.emplace(workers);
  if (engine_.config().observability) {
    sink_ = std::make_unique<obs::MetricsSink>("scheduler", engine_.config().clock);
  }
}

void EpochScheduler::tick(Time now, journal::CloseReason reason, std::uint64_t submissions) {
  if (wal_ != nullptr) {
    // Log-before-apply: the tick record is durable before any shard work
    // starts, so a crash mid-epoch replays the whole tick.
    (void)wal_->append_tick(now, static_cast<std::uint8_t>(reason), submissions);
    fault::crash_if(engine_.crash_injector(), fault::CrashSite::kAfterTickAppend, epochs_);
  }
  // One chunk per shard: the chunk layout (hence which bodies run) is
  // fixed, and each body touches only its own shard's state.  The "epoch"
  // span lives on the scheduler's own sink, so the workers (which write
  // the per-shard sinks) never race it.
  obs::SpanScope span(sink_.get(), "epoch");
  span.add_work(engine_.num_shards());
  run_chunked(pool_ ? &*pool_ : nullptr, 0, engine_.num_shards(),
              [&](std::size_t shard) { engine_.run_shard_epoch(shard, now); });
  ++epochs_;
  if (sink_ != nullptr) sink_->metrics().counter("engine.epochs").add(1);
  if (journal::Journal* journal = engine_.journal(); journal != nullptr) {
    // Control-ring close event, written by the tick thread AFTER the shard
    // fan-out joined — never concurrent with the shard rings.
    journal->append(journal::Journal::kControlRing,
                    {journal::EventKind::kEpochClose, 0, epochs_,
                     static_cast<std::uint64_t>(reason), submissions, 0});
  }
}

std::size_t EpochScheduler::run(std::size_t max_epochs, Time start_time,
                                Seconds epoch_interval) {
  DECLOUD_EXPECTS_MSG(epoch_interval > 0,
                      "epoch interval must advance simulated time, or retry windows never age");
  const std::size_t before = epochs_;
  Time now = start_time;
  for (std::size_t epoch = 0; epoch < max_epochs && engine_.queued_bids() > 0; ++epoch) {
    tick(now);
    now += epoch_interval;
  }
  return epochs_ - before;
}

void EpochScheduler::encode_state(ByteWriter& w) const {
  w.write_u64(epochs_);
  w.write_u8(sink_ != nullptr ? 1 : 0);
  if (sink_ != nullptr) sink_->metrics().encode(w);
}

void EpochScheduler::restore_state(ByteReader& r) {
  epochs_ = r.read_u64();
  const bool has_sink = r.read_u8() != 0;
  DECLOUD_EXPECTS_MSG(has_sink == (sink_ != nullptr),
                      "scheduler snapshot observability differs from the configured engine");
  if (has_sink) sink_->metrics().decode(r);
}

EngineReport EpochScheduler::report() const {
  EngineReport report = engine_.report();
  report.epochs = epochs_;
  // Batch ticks ARE micro-epochs (degenerate ones: the whole queue drains
  // each tick); streaming closes also run through tick(), so the equality
  // holds in both modes and audit_report checks it.
  report.micro_epochs = epochs_;
  if constexpr (decloud::audit::kEnabled) audit_report(report);
  return report;
}

}  // namespace decloud::engine

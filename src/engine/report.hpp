// Deterministic cross-shard aggregation of engine results.
//
// Each shard is an independent market with its own MarketStats; the
// engine's observable output is their merge.  Merging happens in fixed
// shard order (0, 1, …, N−1) — including the floating-point welfare sums —
// so a report is byte-identical for a given (workload, seed, shard count)
// regardless of how many threads executed the epochs.  `summary_json()`
// serializes with exact round-trippable doubles and is the string the
// determinism tests byte-compare.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ledger/market.hpp"

namespace decloud::engine {

/// Per-shard slice of the engine's lifetime statistics.
struct ShardReport {
  std::size_t shard = 0;
  /// Epochs in which this shard actually ran a market round.
  std::size_t epochs = 0;
  /// Submissions refused by this shard's ingest queue (backpressure).
  std::size_t bids_rejected_backpressure = 0;
  /// Location-less bids the spillover policy placed here.
  std::size_t bids_spilled = 0;
  /// Refused ingests parked for deterministic retry (IngestRetryPolicy);
  /// re-deferrals count again, so scheduled >= succeeded + dropped is NOT
  /// an identity — scheduled == succeeded + dropped + still-parked.
  std::size_t bids_retry_scheduled = 0;
  /// Retries that re-entered the shard market.
  std::size_t bids_retry_succeeded = 0;
  /// Retries dropped after exhausting the attempt budget.
  std::size_t bids_retry_dropped = 0;
  /// The shard market's own lifetime stats.
  ledger::MarketStats stats;

  /// Shard welfare — explicit alias of stats.total_welfare so the
  /// reconciliation invariant (Σ shard welfare == total.total_welfare) is
  /// directly testable.
  [[nodiscard]] Money welfare() const { return stats.total_welfare; }
};

/// The whole engine's aggregate view.
struct EngineReport {
  std::vector<ShardReport> shards;  // indexed by shard, fixed order

  /// MarketStats merged across shards in shard order.
  ledger::MarketStats total;
  /// Engine-level counters (sums of the per-shard ones, plus submissions
  /// the router refused outright).
  std::size_t bids_rejected_backpressure = 0;
  std::size_t bids_rejected_unroutable = 0;
  std::size_t bids_spilled = 0;
  std::size_t bids_retry_scheduled = 0;
  std::size_t bids_retry_succeeded = 0;
  std::size_t bids_retry_dropped = 0;
  std::size_t epochs = 0;  ///< scheduler ticks executed
  /// Micro-epochs closed.  In batch mode every scheduler tick is a
  /// (degenerate) micro-epoch, so this equals `epochs`; streaming mode
  /// counts its deterministic closes (bid-count / watermark / flush /
  /// drain triggers, see stream/streaming_market.hpp) through the same
  /// scheduler ticks.  Keeping the two equal is what lets an aligned
  /// streaming run byte-match a batch run's summary_json.
  std::size_t micro_epochs = 0;

  /// Canonical serialization: every field of every shard plus the totals,
  /// doubles printed with "%.17g" so equal values produce equal bytes.
  [[nodiscard]] std::string summary_json() const;
};

/// Accumulates `shard` into `total` (counts summed, latency histograms
/// added element-wise).  Exposed for tests that reconcile per-shard stats
/// against the aggregate.
void merge_stats(ledger::MarketStats& total, const ledger::MarketStats& shard);

/// DECLOUD_AUDIT invariant: every engine-level counter and every field of
/// `total` (including the floating-point welfare sums, which merge in
/// fixed shard order and therefore compare EXACTLY) must reconcile with an
/// independent re-merge of the per-shard slices.  Always compiled — tests
/// call it directly; MarketEngine::report() / EpochScheduler::report()
/// invoke it only when audits are enabled.  Throws
/// decloud::audit::audit_error on divergence.
void audit_report(const EngineReport& report);

}  // namespace decloud::engine

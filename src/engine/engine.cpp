#include "engine/engine.hpp"

#include <utility>

#include "common/audit.hpp"
#include "common/ensure.hpp"

namespace decloud::engine {

MarketEngine::MarketEngine(EngineConfig config)
    : config_(std::move(config)), router_(config_.router) {
  shards_.reserve(router_.num_shards());
  for (std::size_t s = 0; s < router_.num_shards(); ++s) {
    shards_.push_back(std::make_unique<Shard>(config_));
  }
}

template <typename Bid>
EngineAdmission MarketEngine::submit_bid(const Bid& bid) {
  auction::validate(bid);
  const Route route = router_.route(bid);
  if (!route.routed()) {
    rejected_unroutable_.fetch_add(1, std::memory_order_relaxed);
    return {Admission::kRejected, EngineAdmission::Reason::kUnroutable, 0};
  }
  Shard& shard = *shards_[route.shard];
  const auto result = shard.queue.push(IngestItem{bid});
  if (!result.admitted()) {
    shard.rejected_backpressure.fetch_add(1, std::memory_order_relaxed);
    return {Admission::kRejected, EngineAdmission::Reason::kBackpressure, route.shard};
  }
  if (route.kind == RouteKind::kSpilled) {
    shard.spilled.fetch_add(1, std::memory_order_relaxed);
  }
  return {result.status, EngineAdmission::Reason::kNone, route.shard};
}

EngineAdmission MarketEngine::submit(const auction::Request& request) {
  return submit_bid(request);
}

EngineAdmission MarketEngine::submit(const auction::Offer& offer) { return submit_bid(offer); }

std::size_t MarketEngine::queued_bids() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->queue.size() + shard->market.queued_bids();
  }
  return total;
}

void MarketEngine::run_shard_epoch(std::size_t shard_index, Time now) {
  DECLOUD_EXPECTS(shard_index < shards_.size());
  Shard& shard = *shards_[shard_index];
  for (IngestItem& item : shard.queue.drain()) {
    std::visit([&](const auto& bid) { shard.market.submit(bid); }, item.bid);
  }
  if (shard.market.queued_bids() == 0) return;  // idle shard: no empty blocks
  (void)shard.market.run_round(now);
  ++shard.epochs_run;
}

EngineReport MarketEngine::report() const {
  EngineReport report;
  report.shards.reserve(shards_.size());
  report.bids_rejected_unroutable = rejected_unroutable_.load(std::memory_order_relaxed);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    ShardReport sr;
    sr.shard = s;
    sr.epochs = shard.epochs_run;
    sr.bids_rejected_backpressure = shard.rejected_backpressure.load(std::memory_order_relaxed);
    sr.bids_spilled = shard.spilled.load(std::memory_order_relaxed);
    sr.stats = shard.market.stats();

    merge_stats(report.total, sr.stats);
    report.bids_rejected_backpressure += sr.bids_rejected_backpressure;
    report.bids_spilled += sr.bids_spilled;
    report.shards.push_back(std::move(sr));
  }
  if constexpr (decloud::audit::kEnabled) audit_report(report);
  return report;
}

}  // namespace decloud::engine

#include "engine/engine.hpp"

#include <utility>

#include "common/audit.hpp"
#include "common/ensure.hpp"

namespace decloud::engine {

MarketEngine::MarketEngine(EngineConfig config)
    : config_(std::move(config)), router_(config_.router) {
  shards_.reserve(router_.num_shards());
  for (std::size_t s = 0; s < router_.num_shards(); ++s) {
    auto shard = std::make_unique<Shard>(config_);
    if (config_.observability) {
      shard->sink =
          std::make_unique<obs::MetricsSink>("shard" + std::to_string(s), config_.clock);
      shard->market.set_sink(shard->sink.get());
    }
    shards_.push_back(std::move(shard));
  }
}

template <typename Bid>
EngineAdmission MarketEngine::submit_bid(const Bid& bid) {
  auction::validate(bid);
  const Route route = router_.route(bid);
  if (!route.routed()) {
    rejected_unroutable_.fetch_add(1, std::memory_order_relaxed);
    return {Admission::kRejected, EngineAdmission::Reason::kUnroutable, 0};
  }
  Shard& shard = *shards_[route.shard];
  const auto result = shard.queue.push(IngestItem{bid});
  if (!result.admitted()) {
    shard.rejected_backpressure.fetch_add(1, std::memory_order_relaxed);
    return {Admission::kRejected, EngineAdmission::Reason::kBackpressure, route.shard};
  }
  if (route.kind == RouteKind::kSpilled) {
    shard.spilled.fetch_add(1, std::memory_order_relaxed);
  }
  return {result.status, EngineAdmission::Reason::kNone, route.shard};
}

EngineAdmission MarketEngine::submit(const auction::Request& request) {
  return submit_bid(request);
}

EngineAdmission MarketEngine::submit(const auction::Offer& offer) { return submit_bid(offer); }

std::size_t MarketEngine::queued_bids() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->queue.size() + shard->market.queued_bids();
  }
  return total;
}

void MarketEngine::run_shard_epoch(std::size_t shard_index, Time now) {
  DECLOUD_EXPECTS(shard_index < shards_.size());
  Shard& shard = *shards_[shard_index];
  {
    obs::SpanScope span(shard.sink.get(), "epoch_drain");
    std::size_t drained = 0;
    for (IngestItem& item : shard.queue.drain()) {
      std::visit([&](const auto& bid) { shard.market.submit(bid); }, item.bid);
      ++drained;
    }
    span.add_work(drained);
    if (shard.sink != nullptr) {
      shard.sink->metrics().counter("engine.bids_drained").add(drained);
    }
  }
  if (shard.market.queued_bids() == 0) return;  // idle shard: no empty blocks
  (void)shard.market.run_round(now);
  ++shard.epochs_run;
}

EngineReport MarketEngine::report() const {
  EngineReport report;
  report.shards.reserve(shards_.size());
  report.bids_rejected_unroutable = rejected_unroutable_.load(std::memory_order_relaxed);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    ShardReport sr;
    sr.shard = s;
    sr.epochs = shard.epochs_run;
    sr.bids_rejected_backpressure = shard.rejected_backpressure.load(std::memory_order_relaxed);
    sr.bids_spilled = shard.spilled.load(std::memory_order_relaxed);
    sr.stats = shard.market.stats();

    merge_stats(report.total, sr.stats);
    report.bids_rejected_backpressure += sr.bids_rejected_backpressure;
    report.bids_spilled += sr.bids_spilled;
    report.shards.push_back(std::move(sr));
  }
  if constexpr (decloud::audit::kEnabled) audit_report(report);
  return report;
}

obs::MetricsSink MarketEngine::engine_summary_sink() const {
  obs::MetricsSink sink("engine");
  obs::MetricsRegistry& m = sink.metrics();
  m.counter("engine.bids_rejected_unroutable")
      .add(rejected_unroutable_.load(std::memory_order_relaxed));
  std::size_t backpressure = 0, spilled = 0, epochs = 0;
  for (const auto& shard : shards_) {
    backpressure += shard->rejected_backpressure.load(std::memory_order_relaxed);
    spilled += shard->spilled.load(std::memory_order_relaxed);
    epochs += shard->epochs_run;
  }
  m.counter("engine.bids_rejected_backpressure").add(backpressure);
  m.counter("engine.bids_spilled").add(spilled);
  m.counter("engine.shard_epochs").add(epochs);
  m.gauge("engine.num_shards").set(static_cast<double>(shards_.size()));
  router_.annotate(m);
  return sink;
}

std::vector<const obs::MetricsSink*> MarketEngine::export_order(
    const obs::MetricsSink* engine_sink, const obs::MetricsSink* scheduler_sink) const {
  std::vector<const obs::MetricsSink*> sinks;
  sinks.reserve(shards_.size() + 2);
  sinks.push_back(engine_sink);
  if (scheduler_sink != nullptr) sinks.push_back(scheduler_sink);
  for (const auto& shard : shards_) {
    if (shard->sink != nullptr) sinks.push_back(shard->sink.get());
  }
  return sinks;
}

std::string MarketEngine::metrics_json(const obs::MetricsSink* scheduler_sink) const {
  const obs::MetricsSink engine_sink = engine_summary_sink();
  return obs::merged_metrics_json(export_order(&engine_sink, scheduler_sink));
}

std::string MarketEngine::metrics_prometheus(const obs::MetricsSink* scheduler_sink) const {
  const obs::MetricsSink engine_sink = engine_summary_sink();
  return obs::merged_metrics_prometheus(export_order(&engine_sink, scheduler_sink));
}

std::string MarketEngine::trace_json(const obs::MetricsSink* scheduler_sink) const {
  const obs::MetricsSink engine_sink = engine_summary_sink();
  return obs::merged_chrome_trace(export_order(&engine_sink, scheduler_sink));
}

}  // namespace decloud::engine

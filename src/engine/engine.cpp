#include "engine/engine.hpp"

#include <type_traits>
#include <utility>

#include "common/audit.hpp"
#include "common/ensure.hpp"
#include "fault/crash.hpp"
#include "ledger/codec.hpp"
#include "wal/wal.hpp"

namespace decloud::engine {

MarketEngine::MarketEngine(EngineConfig config)
    : config_(std::move(config)), router_(config_.router) {
  if (!config_.fault_plan.empty()) {
    injector_ =
        std::make_unique<const fault::FaultInjector>(config_.fault_plan, config_.fault_seed);
  }
  if (config_.journal_capacity > 0) {
    journal_ = std::make_unique<journal::Journal>(router_.num_shards() + 1,
                                                  config_.journal_capacity);
  }
  shards_.reserve(router_.num_shards());
  for (std::size_t s = 0; s < router_.num_shards(); ++s) {
    auto shard = std::make_unique<Shard>(config_);
    if (config_.observability) {
      shard->sink =
          std::make_unique<obs::MetricsSink>("shard" + std::to_string(s), config_.clock);
      shard->market.set_sink(shard->sink.get());
    }
    if (injector_ != nullptr) shard->market.set_fault_injector(injector_.get(), s);
    if (journal_ != nullptr) shard->market.set_journal(journal_.get(), s + 1);
    shards_.push_back(std::move(shard));
  }
}

std::uint64_t MarketEngine::retry_backoff(std::size_t attempt) const {
  DECLOUD_EXPECTS(attempt >= 1);
  const std::size_t shift = attempt - 1 > 16 ? 16 : attempt - 1;  // cap the exponent
  const std::uint64_t base = config_.retry.backoff_epochs == 0 ? 1 : config_.retry.backoff_epochs;
  return base << shift;
}

void MarketEngine::defer(Shard& shard, std::size_t shard_index, IngestItem item,
                         std::size_t attempt) {
  (void)shard_index;
  const std::uint64_t due =
      shard.epochs_started.load(std::memory_order_relaxed) + retry_backoff(attempt);
  {
    const std::lock_guard<dsched::mutex> lock(shard.deferred_mutex);
    shard.deferred.push_back({std::move(item), attempt, due});
  }
  shard.retries_scheduled.fetch_add(1, std::memory_order_relaxed);
}

template <typename Bid>
EngineAdmission MarketEngine::submit_bid(const Bid& bid) {
  constexpr std::uint64_t kIsOffer = std::is_same_v<Bid, auction::Offer> ? 1 : 0;
  auction::validate(bid);
  const Route route = router_.route(bid);
  if (wal_ != nullptr) {
    // Log-before-apply: the bid reaches the WAL (unroutable bids go to
    // the control segment) before any engine state changes, so a crash
    // anywhere past this point replays it.
    std::vector<std::uint8_t> payload;
    if constexpr (kIsOffer == 1) {
      payload = ledger::encode_offer(bid);
    } else {
      payload = ledger::encode_request(bid);
    }
    const std::uint64_t wal_seq =
        wal_->append_bid(route.routed() ? route.shard + 1 : 0, kIsOffer == 1, payload);
    fault::crash_if(crash_, fault::CrashSite::kAfterBidAppend, wal_seq,
                    route.routed() ? route.shard : 0);
  }
  if (!route.routed()) {
    const std::size_t prior = rejected_unroutable_.fetch_add(1, std::memory_order_relaxed);
    if (journal_ != nullptr) {
      // Unroutable bids have no shard ring; the control ring records them
      // with the running unroutable count as the operand.
      journal_->append(journal::Journal::kControlRing,
                       {journal::EventKind::kIngestRejected, 0, 0, kIsOffer, prior,
                        static_cast<std::uint64_t>(journal::RejectCause::kUnroutable)});
    }
    return {Admission::kRejected, EngineAdmission::Reason::kUnroutable, 0};
  }
  Shard& shard = *shards_[route.shard];
  // A kRejectIngest fault makes the queue refuse this submission exactly
  // as if it were full — the recovery path (retry or final rejection) is
  // identical to real backpressure.
  const std::uint64_t seq = shard.ingest_seq.fetch_add(1, std::memory_order_relaxed);
  const bool fault_rejected =
      injector_ != nullptr &&
      injector_->fires(fault::FaultKind::kRejectIngest, {0, route.shard, seq, 0});
  const std::uint64_t epoch = shard.epochs_started.load(std::memory_order_relaxed);
  if (journal_ != nullptr && fault_rejected) {
    journal_->append(route.shard + 1,
                     {journal::EventKind::kFaultFired, 0, epoch,
                      static_cast<std::uint64_t>(fault::FaultKind::kRejectIngest), seq, 0});
  }
  BoundedQueue<IngestItem>::Result result{};
  if (fault_rejected) {
    result = {Admission::kRejected, RejectReason::kCapacity};
  } else {
    result = shard.queue.push(IngestItem{bid});
  }
  if (!result.admitted()) {
    if (config_.retry.max_attempts > 0) {
      defer(shard, route.shard, IngestItem{bid}, 1);
      if (journal_ != nullptr) {
        journal_->append(route.shard + 1, {journal::EventKind::kIngestDeferred, 0, epoch,
                                           kIsOffer, seq, 1});
      }
      return {Admission::kQueued, EngineAdmission::Reason::kDeferred, route.shard};
    }
    shard.rejected_backpressure.fetch_add(1, std::memory_order_relaxed);
    if (journal_ != nullptr) {
      journal_->append(route.shard + 1,
                       {journal::EventKind::kIngestRejected, 0, epoch, kIsOffer, seq,
                        static_cast<std::uint64_t>(journal::RejectCause::kBackpressure)});
    }
    return {Admission::kRejected, EngineAdmission::Reason::kBackpressure, route.shard};
  }
  if (route.kind == RouteKind::kSpilled) {
    shard.spilled.fetch_add(1, std::memory_order_relaxed);
  }
  if (journal_ != nullptr) {
    journal_->append(route.shard + 1,
                     {journal::EventKind::kIngestAdmitted, 0, epoch, kIsOffer, seq,
                      result.status == Admission::kQueued ? 1ULL : 0ULL});
  }
  return {result.status, EngineAdmission::Reason::kNone, route.shard};
}

EngineAdmission MarketEngine::submit(const auction::Request& request) {
  return submit_bid(request);
}

EngineAdmission MarketEngine::submit(const auction::Offer& offer) { return submit_bid(offer); }

std::size_t MarketEngine::queued_bids() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->queue.size() + shard->market.queued_bids();
    const std::lock_guard<dsched::mutex> lock(shard->deferred_mutex);
    total += shard->deferred.size();
  }
  return total;
}

void MarketEngine::run_shard_epoch(std::size_t shard_index, Time now) {
  DECLOUD_EXPECTS(shard_index < shards_.size());
  Shard& shard = *shards_[shard_index];
  const std::uint64_t epoch = shard.epochs_started.fetch_add(1, std::memory_order_relaxed) + 1;
  fault::crash_if(crash_, fault::CrashSite::kMidEpoch, epoch, shard_index);
  // Flush due retries ahead of the queue drain: a deferred bid was
  // refused BEFORE anything currently queued was admitted, so it keeps
  // its seniority.  Retried bids enter the shard market directly — the
  // bounded queue already refused them once; bouncing them off it again
  // would make the backoff schedule depend on unrelated queue depth.
  if (config_.retry.max_attempts > 0) {
    obs::SpanScope span(shard.sink.get(), "retry_flush");
    std::vector<Deferred> due;
    {
      const std::lock_guard<dsched::mutex> lock(shard.deferred_mutex);
      std::vector<Deferred> later;
      later.reserve(shard.deferred.size());
      for (Deferred& d : shard.deferred) {
        (d.due_epoch <= epoch ? due : later).push_back(std::move(d));
      }
      shard.deferred = std::move(later);
    }
    for (Deferred& d : due) {
      const std::uint64_t seq = shard.retry_seq++;
      const std::uint64_t is_offer = d.item.bid.index() == 0 ? 0 : 1;
      if (injector_ != nullptr &&
          injector_->fires(fault::FaultKind::kRejectIngest,
                           {epoch, shard_index, seq, d.attempt})) {
        if (journal_ != nullptr) {
          journal_->append(shard_index + 1,
                           {journal::EventKind::kFaultFired, 0, epoch,
                            static_cast<std::uint64_t>(fault::FaultKind::kRejectIngest), seq,
                            d.attempt});
        }
        if (d.attempt < config_.retry.max_attempts) {
          const std::uint64_t next_due = epoch + retry_backoff(d.attempt + 1);
          {
            const std::lock_guard<dsched::mutex> lock(shard.deferred_mutex);
            shard.deferred.push_back({std::move(d.item), d.attempt + 1, next_due});
          }
          shard.retries_scheduled.fetch_add(1, std::memory_order_relaxed);
          if (journal_ != nullptr) {
            journal_->append(shard_index + 1, {journal::EventKind::kIngestDeferred, 0, epoch,
                                               is_offer, seq, d.attempt + 1});
          }
        } else {
          ++shard.retries_dropped;
          if (shard.sink != nullptr) {
            shard.sink->metrics().counter("engine.bids_retry_dropped").add(1);
          }
          if (journal_ != nullptr) {
            journal_->append(shard_index + 1, {journal::EventKind::kRetryDropped, 0, epoch,
                                               is_offer, seq, d.attempt});
          }
        }
        continue;
      }
      std::visit([&](const auto& bid) { shard.market.submit(bid); }, d.item.bid);
      ++shard.retries_succeeded;
      if (shard.sink != nullptr) {
        shard.sink->metrics().counter("engine.bids_retry_succeeded").add(1);
      }
      if (journal_ != nullptr) {
        journal_->append(shard_index + 1, {journal::EventKind::kRetryAdmitted, 0, epoch,
                                           is_offer, seq, d.attempt});
      }
    }
    span.add_work(due.size());
  }
  {
    obs::SpanScope span(shard.sink.get(), "epoch_drain");
    std::size_t drained = 0;
    for (IngestItem& item : shard.queue.drain()) {
      std::visit([&](const auto& bid) { shard.market.submit(bid); }, item.bid);
      ++drained;
    }
    span.add_work(drained);
    if (shard.sink != nullptr) {
      shard.sink->metrics().counter("engine.bids_drained").add(drained);
    }
  }
  if (shard.market.queued_bids() == 0) return;  // idle shard: no empty blocks
  const ledger::RoundOutcome outcome = shard.market.run_round(now);
  ++shard.epochs_run;
  if (outcome.block_accepted && wal_ != nullptr) {
    // Not an input: a fingerprint of the shard chain's growth, so recovery
    // can cross-check its re-executed rounds against what the dead process
    // actually committed.
    const ledger::Blockchain& chain = shard.market.protocol().chain();
    wal_->append_block(shard_index, chain.height(), chain.tip_hash());
    fault::crash_if(crash_, fault::CrashSite::kAfterBlockAppend, chain.height(), shard_index);
  }
}

EngineReport MarketEngine::report() const {
  EngineReport report;
  report.shards.reserve(shards_.size());
  report.bids_rejected_unroutable = rejected_unroutable_.load(std::memory_order_relaxed);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    ShardReport sr;
    sr.shard = s;
    sr.epochs = shard.epochs_run;
    sr.bids_rejected_backpressure = shard.rejected_backpressure.load(std::memory_order_relaxed);
    sr.bids_spilled = shard.spilled.load(std::memory_order_relaxed);
    sr.bids_retry_scheduled = shard.retries_scheduled.load(std::memory_order_relaxed);
    sr.bids_retry_succeeded = shard.retries_succeeded;
    sr.bids_retry_dropped = shard.retries_dropped;
    sr.stats = shard.market.stats();

    merge_stats(report.total, sr.stats);
    report.bids_rejected_backpressure += sr.bids_rejected_backpressure;
    report.bids_spilled += sr.bids_spilled;
    report.bids_retry_scheduled += sr.bids_retry_scheduled;
    report.bids_retry_succeeded += sr.bids_retry_succeeded;
    report.bids_retry_dropped += sr.bids_retry_dropped;
    report.shards.push_back(std::move(sr));
  }
  if constexpr (decloud::audit::kEnabled) audit_report(report);
  return report;
}

obs::MetricsSink MarketEngine::engine_summary_sink() const {
  obs::MetricsSink sink("engine");
  obs::MetricsRegistry& m = sink.metrics();
  m.counter("engine.bids_rejected_unroutable")
      .add(rejected_unroutable_.load(std::memory_order_relaxed));
  std::size_t backpressure = 0, spilled = 0, epochs = 0;
  std::size_t retries = 0, retry_ok = 0, retry_dropped = 0;
  std::size_t carried = 0, offers_gone = 0;
  for (const auto& shard : shards_) {
    backpressure += shard->rejected_backpressure.load(std::memory_order_relaxed);
    spilled += shard->spilled.load(std::memory_order_relaxed);
    epochs += shard->epochs_run;
    retries += shard->retries_scheduled.load(std::memory_order_relaxed);
    retry_ok += shard->retries_succeeded;
    retry_dropped += shard->retries_dropped;
    carried += shard->market.stats().bids_carried;
    offers_gone += shard->market.stats().offers_abandoned;
  }
  m.counter("engine.bids_rejected_backpressure").add(backpressure);
  m.counter("engine.bids_spilled").add(spilled);
  m.counter("engine.shard_epochs").add(epochs);
  m.counter("engine.bids_retry_scheduled").add(retries);
  m.counter("engine.bids_retry_succeeded").add(retry_ok);
  m.counter("engine.bids_retry_dropped").add(retry_dropped);
  m.counter("engine.bids_carried").add(carried);
  m.counter("engine.offers_abandoned").add(offers_gone);
  m.gauge("engine.num_shards").set(static_cast<double>(shards_.size()));
  router_.annotate(m);
  return sink;
}

std::vector<const obs::MetricsSink*> MarketEngine::export_order(
    const obs::MetricsSink* engine_sink,
    std::span<const obs::MetricsSink* const> extra_sinks) const {
  std::vector<const obs::MetricsSink*> sinks;
  sinks.reserve(shards_.size() + 1 + extra_sinks.size());
  sinks.push_back(engine_sink);
  for (const obs::MetricsSink* extra : extra_sinks) {
    if (extra != nullptr) sinks.push_back(extra);
  }
  for (const auto& shard : shards_) {
    if (shard->sink != nullptr) sinks.push_back(shard->sink.get());
  }
  return sinks;
}

std::string MarketEngine::metrics_json(const obs::MetricsSink* scheduler_sink) const {
  return metrics_json(std::span<const obs::MetricsSink* const>(&scheduler_sink, 1));
}

std::string MarketEngine::metrics_prometheus(const obs::MetricsSink* scheduler_sink) const {
  return metrics_prometheus(std::span<const obs::MetricsSink* const>(&scheduler_sink, 1));
}

std::string MarketEngine::trace_json(const obs::MetricsSink* scheduler_sink) const {
  return trace_json(std::span<const obs::MetricsSink* const>(&scheduler_sink, 1));
}

std::string MarketEngine::metrics_json(
    std::span<const obs::MetricsSink* const> extra_sinks) const {
  const obs::MetricsSink engine_sink = engine_summary_sink();
  return obs::merged_metrics_json(export_order(&engine_sink, extra_sinks));
}

std::string MarketEngine::metrics_prometheus(
    std::span<const obs::MetricsSink* const> extra_sinks) const {
  const obs::MetricsSink engine_sink = engine_summary_sink();
  return obs::merged_metrics_prometheus(export_order(&engine_sink, extra_sinks));
}

std::string MarketEngine::trace_json(
    std::span<const obs::MetricsSink* const> extra_sinks) const {
  const obs::MetricsSink engine_sink = engine_summary_sink();
  return obs::merged_chrome_trace(export_order(&engine_sink, extra_sinks));
}

void MarketEngine::encode_state(ByteWriter& w) const {
  w.write_u64(rejected_unroutable_.load(std::memory_order_relaxed));
  w.write_u64(shards_.size());
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    DECLOUD_EXPECTS_MSG(shard.queue.size() == 0,
                        "engine snapshot requires drained ingest queues (quiescent point)");
    w.write_u64(shard.rejected_backpressure.load(std::memory_order_relaxed));
    w.write_u64(shard.spilled.load(std::memory_order_relaxed));
    w.write_u64(shard.ingest_seq.load(std::memory_order_relaxed));
    w.write_u64(shard.epochs_started.load(std::memory_order_relaxed));
    w.write_u64(shard.retries_scheduled.load(std::memory_order_relaxed));
    w.write_u64(shard.epochs_run);
    w.write_u64(shard.retries_succeeded);
    w.write_u64(shard.retries_dropped);
    w.write_u64(shard.retry_seq);
    {
      const std::lock_guard<dsched::mutex> lock(shard.deferred_mutex);
      w.write_u64(shard.deferred.size());
      for (const Deferred& d : shard.deferred) {
        const bool is_offer = d.item.bid.index() == 1;
        w.write_u8(is_offer ? 1 : 0);
        if (is_offer) {
          w.write_bytes(ledger::encode_offer(std::get<auction::Offer>(d.item.bid)));
        } else {
          w.write_bytes(ledger::encode_request(std::get<auction::Request>(d.item.bid)));
        }
        w.write_u64(d.attempt);
        w.write_u64(d.due_epoch);
      }
    }
    shard.market.encode_state(w);
    w.write_u8(shard.sink != nullptr ? 1 : 0);
    if (shard.sink != nullptr) shard.sink->metrics().encode(w);
  }
  w.write_u8(journal_ != nullptr ? 1 : 0);
  if (journal_ != nullptr) w.write_bytes(journal_->encode());
}

void MarketEngine::restore_state(ByteReader& r) {
  rejected_unroutable_.store(r.read_u64(), std::memory_order_relaxed);
  const std::uint64_t num_shards = r.read_u64();
  DECLOUD_EXPECTS_MSG(num_shards == shards_.size(),
                      "engine snapshot shard count differs from the configured engine");
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    shard.rejected_backpressure.store(r.read_u64(), std::memory_order_relaxed);
    shard.spilled.store(r.read_u64(), std::memory_order_relaxed);
    shard.ingest_seq.store(r.read_u64(), std::memory_order_relaxed);
    shard.epochs_started.store(r.read_u64(), std::memory_order_relaxed);
    shard.retries_scheduled.store(r.read_u64(), std::memory_order_relaxed);
    shard.epochs_run = r.read_u64();
    shard.retries_succeeded = r.read_u64();
    shard.retries_dropped = r.read_u64();
    shard.retry_seq = r.read_u64();
    const std::uint64_t num_deferred = r.read_u64();
    DECLOUD_EXPECTS_MSG(num_deferred <= r.remaining(),
                        "engine snapshot deferral count exceeds the payload");
    {
      const std::lock_guard<dsched::mutex> lock(shard.deferred_mutex);
      shard.deferred.clear();
      for (std::uint64_t i = 0; i < num_deferred; ++i) {
        const bool is_offer = r.read_u8() != 0;
        const std::vector<std::uint8_t> payload = r.read_bytes();
        IngestItem item{is_offer
                            ? std::variant<auction::Request, auction::Offer>(
                                  ledger::decode_offer(payload))
                            : std::variant<auction::Request, auction::Offer>(
                                  ledger::decode_request(payload))};
        const std::size_t attempt = r.read_u64();
        const std::uint64_t due_epoch = r.read_u64();
        shard.deferred.push_back({std::move(item), attempt, due_epoch});
      }
    }
    shard.market.restore_state(r);
    const bool has_sink = r.read_u8() != 0;
    DECLOUD_EXPECTS_MSG(has_sink == (shard.sink != nullptr),
                        "engine snapshot observability differs from the configured engine");
    if (has_sink) shard.sink->metrics().decode(r);
  }
  const bool has_journal = r.read_u8() != 0;
  DECLOUD_EXPECTS_MSG(has_journal == (journal_ != nullptr),
                      "engine snapshot journal presence differs from the configured engine");
  if (has_journal) journal_->adopt(journal::Journal::decode(r.read_bytes()));
}

}  // namespace decloud::engine

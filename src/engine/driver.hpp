// Trace-driven workload streaming for the engine.
//
// Bridges trace/workload (the paper's Section V setup: Google-trace
// requests, EC2 offers, best-match valuations) to the sharded engine.
// The generator produces location-less bids — the global single-market
// experiments never needed ℓ — so the driver stamps locations itself:
// each bid independently receives a uniform coordinate in the router's
// bounding box with probability `located_fraction`, and stays
// location-less otherwise (exercising the spillover policy).
//
// Bids are streamed in deterministic order (requests and offers
// interleaved by index) in fixed-size batches, one batch per epoch — the
// "online appearance" of Section VI: the market clears continuously while
// bids keep arriving.  Submissions rejected by backpressure are dropped
// (and counted); a real producer would retry.
#pragma once

#include <cstdint>

#include "engine/epoch_scheduler.hpp"
#include "trace/workload.hpp"

namespace decloud::engine {

struct TraceDriverConfig {
  trace::WorkloadConfig workload;
  /// Probability a bid gets a location stamped (rest exercise spillover).
  double located_fraction = 1.0;
  /// Bids submitted before each tick; 0 = everything before the first.
  std::size_t bids_per_epoch = 0;
  /// RNG seed for workload generation and location stamping.
  std::uint64_t seed = 1;
  /// Epochs allowed after the last submission batch (resubmission tail).
  std::size_t drain_epochs = 32;
  Time start_time = 0;
  Seconds epoch_interval = 600;
};

/// Outcome of one driven run.
struct DriveOutcome {
  EngineReport report;
  std::size_t bids_generated = 0;  ///< requests + offers in the workload
  std::size_t bids_admitted = 0;
  std::size_t bids_rejected = 0;  ///< backpressure + unroutable drops
};

/// A generated, location-stamped workload plus its deterministic
/// submission order (`order[i] < requests.size()` names a request,
/// otherwise offer `order[i] - requests.size()`).  The batch driver and
/// the streaming driver (stream/stream_driver.hpp) both consume this —
/// SAME bytes in, which is what makes batch the streaming mode's
/// reference oracle.
struct TraceStream {
  auction::MarketSnapshot snapshot;
  std::vector<std::size_t> order;
};

/// Generates the workload for `config` exactly as drive_trace does:
/// workload from Rng(seed), locations from Rng(seed ^ "location"),
/// requests and offers interleaved by index.
[[nodiscard]] TraceStream make_trace_stream(const TraceDriverConfig& config,
                                            const EngineConfig& engine_config);

/// Generates the workload, streams it into `engine` batch-by-batch with
/// one scheduler tick per batch, then drains.  Deterministic in
/// (config, engine config, scheduler thread count — by the engine's
/// determinism contract the latter does not affect results).
DriveOutcome drive_trace(MarketEngine& engine, EpochScheduler& scheduler,
                         const TraceDriverConfig& config);

}  // namespace decloud::engine

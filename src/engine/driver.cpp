#include "engine/driver.hpp"

#include <algorithm>

#include "common/ensure.hpp"
#include "common/rng.hpp"

namespace decloud::engine {

namespace {

/// Stamps locations onto the generated bids.  One dedicated Rng draws in
/// a fixed order (all requests, then all offers) so the stamping is
/// independent of how the workload generator consumed its own stream.
void stamp_locations(auction::MarketSnapshot& snapshot, const ShardRouterConfig& box,
                     double located_fraction, Rng& rng) {
  const auto stamp = [&](std::optional<auction::Location>& location) {
    if (!rng.bernoulli(located_fraction)) return;
    location = auction::Location{rng.uniform(box.x0, box.x1), rng.uniform(box.y0, box.y1)};
  };
  for (auto& r : snapshot.requests) stamp(r.location);
  for (auto& o : snapshot.offers) stamp(o.location);
}

}  // namespace

TraceStream make_trace_stream(const TraceDriverConfig& config,
                              const EngineConfig& engine_config) {
  DECLOUD_EXPECTS(config.located_fraction >= 0.0 && config.located_fraction <= 1.0);

  TraceStream stream;
  Rng rng(config.seed);
  stream.snapshot =
      trace::make_workload(config.workload, engine_config.market.consensus.auction, rng);
  Rng location_rng(config.seed ^ 0x6c6f636174696f6eULL);  // "location"
  stamp_locations(stream.snapshot, engine_config.router, config.located_fraction, location_rng);

  // Interleave requests and offers by index so every epoch's batch carries
  // both sides of the market: 0, n_req, 1, n_req+1, … — alternating while
  // both last, computed without randomness so the stream is reproducible.
  const std::size_t n_req = stream.snapshot.requests.size();
  const std::size_t n_off = stream.snapshot.offers.size();
  stream.order.resize(n_req + n_off);
  std::size_t w = 0;
  for (std::size_t i = 0; i < std::max(n_req, n_off); ++i) {
    if (i < n_req) stream.order[w++] = i;
    if (i < n_off) stream.order[w++] = n_req + i;
  }
  return stream;
}

DriveOutcome drive_trace(MarketEngine& engine, EpochScheduler& scheduler,
                         const TraceDriverConfig& config) {
  const TraceStream stream = make_trace_stream(config, engine.config());
  const auction::MarketSnapshot& snapshot = stream.snapshot;
  const std::vector<std::size_t>& order = stream.order;

  DriveOutcome outcome;
  outcome.bids_generated = order.size();

  const auto submit_one = [&](std::size_t i) {
    const std::size_t n_req = snapshot.requests.size();
    const EngineAdmission admission = i < n_req ? engine.submit(snapshot.requests[i])
                                                : engine.submit(snapshot.offers[i - n_req]);
    if (admission.admitted()) {
      ++outcome.bids_admitted;
    } else {
      ++outcome.bids_rejected;
    }
  };

  const std::size_t batch = config.bids_per_epoch == 0 ? order.size() : config.bids_per_epoch;
  Time now = config.start_time;
  for (std::size_t done = 0; done < order.size();) {
    const std::size_t stop = std::min(order.size(), done + batch);
    const std::uint64_t submitted = stop - done;
    for (; done < stop; ++done) submit_one(order[done]);
    // Journal attribution mirroring the streaming triggers: a full batch
    // is what the bid-count trigger would have fired on; a short final
    // batch (or the single whole-trace batch) is a flush.  Keeps aligned
    // batch/stream runs byte-identical in the journal.
    const journal::CloseReason reason = config.bids_per_epoch != 0 && submitted == batch
                                            ? journal::CloseReason::kBidCount
                                            : journal::CloseReason::kFlush;
    scheduler.tick(now, reason, submitted);
    now += config.epoch_interval;
  }
  scheduler.run(config.drain_epochs, now, config.epoch_interval);

  outcome.report = scheduler.report();
  if (obs::MetricsSink* sink = scheduler.sink(); sink != nullptr) {
    obs::MetricsRegistry& m = sink->metrics();
    m.counter("driver.bids_generated").add(outcome.bids_generated);
    m.counter("driver.bids_admitted").add(outcome.bids_admitted);
    m.counter("driver.bids_rejected").add(outcome.bids_rejected);
  }
  return outcome;
}

}  // namespace decloud::engine

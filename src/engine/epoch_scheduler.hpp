// Tick-driven execution of a MarketEngine's shard rounds.
//
// Each tick is one "epoch": every shard drains its ingest queue and runs
// at most one block round.  Shards are independent markets, so the
// scheduler fans them out across a common/thread_pool with no cross-shard
// locking; the per-shard work is serialized by construction (one tick at
// a time, one chunk per shard).  Because shard rounds are individually
// deterministic and aggregation is ordered, the engine's results do not
// depend on the scheduler's thread count — only wall-clock time does.
//
// The pool's nested-use contract (thread_pool.hpp) matters here: a shard
// round may itself fan out (AuctionConfig::threads), and that inner
// parallelism must not deadlock against the outer shard fan-out.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>

#include "common/thread_pool.hpp"
#include "engine/engine.hpp"

namespace decloud::engine {

class EpochScheduler {
 public:
  /// `threads` workers drive the shard fan-out; 0 = one per hardware
  /// thread, 1 = fully serial (no pool spun up).
  EpochScheduler(MarketEngine& engine, std::size_t threads);

  /// Runs one epoch at simulated time `now` across all shards.  Bare
  /// ticks (the drain loop, tests) journal as kDrain closes with zero
  /// attributed submissions.
  void tick(Time now) { tick(now, journal::CloseReason::kDrain, 0); }

  /// Same, attributing the close: `reason` is why this epoch closed and
  /// `submissions` how many bids arrived since the previous close.  The
  /// batch driver and the streaming triggers both call this so aligned
  /// batch/stream runs journal identical kEpochClose events.
  void tick(Time now, journal::CloseReason reason, std::uint64_t submissions);

  /// Ticks until the engine is idle (no queued bids anywhere) or
  /// `max_epochs` elapsed; returns the number of epochs run.
  std::size_t run(std::size_t max_epochs, Time start_time = 0, Seconds epoch_interval = 600);

  [[nodiscard]] std::size_t epochs() const { return epochs_; }
  [[nodiscard]] std::size_t threads() const {
    return pool_ ? pool_->worker_count() : 1;
  }

  /// The engine's report with the scheduler's epoch count filled in.
  [[nodiscard]] EngineReport report() const;

  /// Observability exports with the scheduler's own sink ("scheduler":
  /// one "epoch" span per tick) merged in — null when the engine runs
  /// without observability, in which case these equal the engine's own.
  [[nodiscard]] const obs::MetricsSink* sink() const { return sink_.get(); }
  [[nodiscard]] obs::MetricsSink* sink() { return sink_.get(); }
  [[nodiscard]] std::string metrics_json() const {
    return engine_.metrics_json(sink_.get());
  }
  [[nodiscard]] std::string metrics_prometheus() const {
    return engine_.metrics_prometheus(sink_.get());
  }
  [[nodiscard]] std::string trace_json() const { return engine_.trace_json(sink_.get()); }

  /// Attaches the write-ahead log (not owned, may be null).  BATCH mode
  /// only: every tick then logs a kTick input record before running, so
  /// replay can re-issue the exact tick sequence.  Stream mode must NOT
  /// attach here — its ticks are derived from logged bids/clock/flush
  /// inputs and re-fire during replay (DESIGN.md §3k).
  void set_wal_writer(wal::WalWriter* wal) { wal_ = wal; }

  /// Snapshot/restore of the scheduler's own state: the epoch counter and
  /// its sink's metrics registry.
  void encode_state(ByteWriter& w) const;
  void restore_state(ByteReader& r);

 private:
  MarketEngine& engine_;
  std::optional<ThreadPool> pool_;  // absent on the serial path
  std::size_t epochs_ = 0;
  /// Touched only by the thread calling tick(); workers never see it.
  std::unique_ptr<obs::MetricsSink> sink_;
  /// Batch-mode WAL attachment (null otherwise); see set_wal_writer.
  wal::WalWriter* wal_ = nullptr;
};

}  // namespace decloud::engine

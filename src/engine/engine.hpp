// The sharded continuous market engine.
//
// One MarketEngine holds N independent regional markets (shards), each a
// full MarketOrchestrator behind a bounded ingest queue.  Producers stream
// bids in on any thread: `submit` routes by location (ShardRouter), pushes
// into the shard's queue, and returns an explicit admission result so
// callers experience admission control instead of unbounded growth.  An
// EpochScheduler (epoch_scheduler.hpp) then ticks the engine: each tick
// drains every shard's queue into that shard's market and runs one block
// round per non-idle shard, fanning the independent shard rounds out
// across a thread pool.
//
// Determinism contract: shards never share state, every shard market is
// seeded identically and fed in queue (FIFO) order, and aggregation
// (report()) walks shards in fixed order — so for a single-threaded
// producer the whole engine is byte-deterministic for a given
// (config, submission sequence), independent of the scheduler's thread
// count.  A 1-shard engine is observably identical to driving one
// MarketOrchestrator directly (enforced by tests/engine/).
#pragma once

#include <atomic>  // std::memory_order constants used with dsched::atomic
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <variant>
#include <vector>

#include "common/bounded_queue.hpp"
#include "dsched/sync.hpp"
#include "engine/report.hpp"
#include "engine/shard_router.hpp"
#include "fault/injector.hpp"
#include "journal/journal.hpp"
#include "ledger/market.hpp"
#include "obs/sink.hpp"

namespace decloud::wal {
class WalWriter;
}

namespace decloud::engine {

/// Deterministic retry-with-backoff for refused ingests.  Off by default
/// (max_attempts == 0): a rejection is final, as before.  When on, a
/// refused bid is parked in the shard's deferral buffer and resubmitted at
/// the epoch `backoff_epochs · 2^(attempt-1)` ticks later, up to
/// max_attempts times; what still fails then is dropped and counted in
/// EngineReport::bids_retry_dropped.
struct IngestRetryPolicy {
  std::size_t max_attempts = 0;
  std::size_t backoff_epochs = 1;
};

struct EngineConfig {
  /// Routing (also fixes the shard count via router.num_shards).
  ShardRouterConfig router;
  /// Per-shard ingest queue bound and congestion watermark (see
  /// common/bounded_queue.hpp; watermark >= capacity disables the kQueued
  /// signal).
  std::size_t queue_capacity = 4096;
  std::size_t queue_watermark = 3072;
  /// Per-shard market parameters (consensus, retry budget, …).  Every
  /// shard gets an identical copy; `market.consensus.auction.threads`
  /// should usually stay 1 so parallelism lives across shards, not inside
  /// them.
  ledger::MarketConfig market;
  /// When true every shard owns a MetricsSink ("shard0", "shard1", …)
  /// threaded through its market/protocol/auction; exports come out of
  /// metrics_json()/trace_json().  Off by default: the hot path then pays
  /// one pointer test per hook (DESIGN.md §3e).
  bool observability = false;
  /// Optional wall clock for span timestamps (not owned; may outlive no
  /// engine call).  Null = logical-clock-only mode, whose trace export is
  /// byte-deterministic across thread counts.
  obs::Clock* clock = nullptr;
  /// Retry-with-backoff for refused ingests (see IngestRetryPolicy).
  IngestRetryPolicy retry;
  /// Deterministic fault schedule.  Non-empty: the engine owns a
  /// FaultInjector over (fault_plan, fault_seed) and threads it through
  /// every shard market/protocol plus its own ingest path.  Shards see
  /// independent slices via the FaultSite::shard coordinate.
  fault::FaultPlan fault_plan;
  std::uint64_t fault_seed = 1;
  /// Per-ring capacity of the market flight recorder (journal/journal.hpp).
  /// 0 (default) = no journal: every hook is one pointer test, mirroring
  /// the null-sink contract.  Non-zero: the engine owns a Journal with
  /// num_shards + 1 rings (control + one per shard) recording ingest
  /// verdicts, epoch closes, trades, blocks, faults, and residue.
  std::size_t journal_capacity = 0;
};

/// Producer-visible outcome of one submit().
struct EngineAdmission {
  Admission status = Admission::kRejected;
  /// Why the bid was refused (kRejected) or parked (kDeferred).
  enum class Reason : std::uint8_t {
    kNone,          ///< admitted
    kBackpressure,  ///< the shard's ingest queue is full
    kUnroutable,    ///< no location and SpilloverPolicy::kReject
    kDeferred,      ///< refused now, parked for deterministic retry
                    ///< (status == kQueued: the bid is still in flight)
  };
  Reason reason = Reason::kNone;
  /// Target shard (valid unless reason == kUnroutable).
  std::size_t shard = 0;

  [[nodiscard]] bool admitted() const { return status != Admission::kRejected; }
};

class MarketEngine {
 public:
  explicit MarketEngine(EngineConfig config);

  /// Thread-safe bid ingest (MPSC per shard: any number of producers; the
  /// scheduler is the single consumer).  Bids are validated here so a
  /// malformed bid faults the producer, not the epoch tick.
  EngineAdmission submit(const auction::Request& request);
  EngineAdmission submit(const auction::Offer& offer);

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  [[nodiscard]] const ShardRouter& router() const { return router_; }
  [[nodiscard]] const EngineConfig& config() const { return config_; }

  /// Bids awaiting a round anywhere: ingest queues plus shard markets.
  [[nodiscard]] std::size_t queued_bids() const;

  /// Runs one epoch for one shard: drains its ingest queue into the shard
  /// market (FIFO) and, if the market has anything pending, runs one block
  /// round at `now`.  Called by EpochScheduler, possibly concurrently for
  /// DIFFERENT shards; never call it concurrently for the same shard.
  void run_shard_epoch(std::size_t shard, Time now);

  /// Direct access to a shard's market (read-mostly: tests and the demo
  /// inspect chains/contracts through this).
  [[nodiscard]] const ledger::MarketOrchestrator& shard_market(std::size_t shard) const {
    return shards_[shard]->market;
  }

  /// Snapshot of all statistics, merged in fixed shard order.
  /// `epochs` on the report is filled by the EpochScheduler that drives
  /// this engine (the engine itself counts per-shard rounds only).
  [[nodiscard]] EngineReport report() const;

  /// The shard's sink (null unless config.observability).  Read it only
  /// between epochs: during a tick the shard's round thread owns it.
  [[nodiscard]] const obs::MetricsSink* shard_sink(std::size_t shard) const {
    return shards_[shard]->sink.get();
  }

  /// Merged observability exports.  Merge order is fixed — a synthetic
  /// "engine" sink (ingest counters + router annotation), then
  /// `scheduler_sink` when given, then every shard sink in shard order —
  /// so the bytes do not depend on the scheduler's thread count
  /// (logical-clock mode; a wall clock makes trace timestamps vary).
  /// Call between epochs, never during a tick.
  [[nodiscard]] std::string metrics_json(const obs::MetricsSink* scheduler_sink = nullptr) const;
  [[nodiscard]] std::string metrics_prometheus(
      const obs::MetricsSink* scheduler_sink = nullptr) const;
  [[nodiscard]] std::string trace_json(const obs::MetricsSink* scheduler_sink = nullptr) const;

  /// Same exports with MULTIPLE extra sinks merged between the synthetic
  /// "engine" sink and the shard sinks, in the order given (null entries
  /// skipped).  The streaming layer uses this to interleave its "stream"
  /// sink with the scheduler's without changing merge discipline.
  [[nodiscard]] std::string metrics_json(
      std::span<const obs::MetricsSink* const> extra_sinks) const;
  [[nodiscard]] std::string metrics_prometheus(
      std::span<const obs::MetricsSink* const> extra_sinks) const;
  [[nodiscard]] std::string trace_json(
      std::span<const obs::MetricsSink* const> extra_sinks) const;

  /// The flight recorder (null unless config.journal_capacity > 0).
  /// Ring 0 is the control ring; ring s + 1 records shard s.  Encode or
  /// export it only between epochs, like the sinks.
  [[nodiscard]] journal::Journal* journal() { return journal_.get(); }
  [[nodiscard]] const journal::Journal* journal() const { return journal_.get(); }

  /// Attaches the write-ahead log (not owned, may be null).  Every submit
  /// then appends its bid to the WAL BEFORE applying it (log-before-apply)
  /// and shard rounds fingerprint their chain appends.  Durable mode
  /// requires the engine's single-producer discipline: input_seq order
  /// must equal apply order (DESIGN.md §3k).
  void set_wal_writer(wal::WalWriter* wal) { wal_ = wal; }

  /// Attaches the crash-chaos injector (not owned, may be null) — a
  /// SEPARATE injector from config.fault_plan's, driving only
  /// fault::kCrashAtSite sites (see fault/crash.hpp for why).
  void set_crash_injector(const fault::FaultInjector* injector) { crash_ = injector; }
  [[nodiscard]] const fault::FaultInjector* crash_injector() const { return crash_; }

  /// Snapshot/restore of the whole engine at a quiescent point: every
  /// shard's ingest queue must be drained (encode asserts), so what is
  /// serialized per shard is its counters, the deferral buffer, and the
  /// shard market's state, plus the engine-global counters, the flight
  /// recorder, and every sink's metrics registry.  Restore must run on a
  /// freshly constructed engine with the identical EngineConfig.
  void encode_state(ByteWriter& w) const;
  void restore_state(ByteReader& r);

 private:
  struct IngestItem {
    std::variant<auction::Request, auction::Offer> bid;
  };

  /// A refused ingest parked for retry.  `attempt` counts refusals so far;
  /// the item re-enters the shard market at `due_epoch`.
  struct Deferred {
    IngestItem item;
    std::size_t attempt = 1;
    std::uint64_t due_epoch = 0;
  };

  struct Shard {
    explicit Shard(const EngineConfig& config)
        : queue(config.queue_capacity, config.queue_watermark), market(config.market) {}

    BoundedQueue<IngestItem> queue;
    ledger::MarketOrchestrator market;
    /// Written only by the shard's round thread (same discipline as
    /// `market`); null unless EngineConfig::observability.
    std::unique_ptr<obs::MetricsSink> sink;
    // Producer-side counters (atomic: submit runs on producer threads).
    dsched::atomic<std::size_t> rejected_backpressure{0};
    dsched::atomic<std::size_t> spilled{0};
    /// Per-shard ingest sequence: the FaultSite::index of submit-side
    /// fault decisions (atomic so producers on any thread get distinct
    /// sites).
    dsched::atomic<std::uint64_t> ingest_seq{0};
    /// Epochs started for this shard; read by producers to stamp deferral
    /// due-epochs, written by the (single) consumer at each tick.
    dsched::atomic<std::uint64_t> epochs_started{0};
    /// Deferral buffer (guarded: producers park, the consumer flushes).
    mutable dsched::mutex deferred_mutex;
    std::vector<Deferred> deferred;
    dsched::atomic<std::size_t> retries_scheduled{0};
    // Consumer-side counters (only the scheduler's shard thread touches
    // them).
    std::size_t epochs_run = 0;
    std::size_t retries_succeeded = 0;
    std::size_t retries_dropped = 0;
    std::uint64_t retry_seq = 0;
  };

  template <typename Bid>
  EngineAdmission submit_bid(const Bid& bid);

  /// Parks a refused ingest in the shard's deferral buffer.
  void defer(Shard& shard, std::size_t shard_index, IngestItem item, std::size_t attempt);
  /// Backoff in epochs before retry `attempt` re-enters the market.
  [[nodiscard]] std::uint64_t retry_backoff(std::size_t attempt) const;

  /// Builds the synthetic "engine" sink (producer-side atomics + router
  /// annotation) the exports prepend to the per-shard sinks.
  [[nodiscard]] obs::MetricsSink engine_summary_sink() const;
  [[nodiscard]] std::vector<const obs::MetricsSink*> export_order(
      const obs::MetricsSink* engine_sink,
      std::span<const obs::MetricsSink* const> extra_sinks) const;

  EngineConfig config_;
  ShardRouter router_;
  /// Owned fault injector (null when config.fault_plan is empty).  Const
  /// and stateless, so sharing it across shards and threads is free.
  std::unique_ptr<const fault::FaultInjector> injector_;
  /// Owned flight recorder (null when config.journal_capacity == 0).
  std::unique_ptr<journal::Journal> journal_;
  // unique_ptr: Shard is neither movable nor copyable (queue mutex,
  // orchestrator), and the vector is sized once in the constructor.
  std::vector<std::unique_ptr<Shard>> shards_;
  dsched::atomic<std::size_t> rejected_unroutable_{0};
  /// Durable-market attachments (both null outside durable mode).
  wal::WalWriter* wal_ = nullptr;
  const fault::FaultInjector* crash_ = nullptr;
};

}  // namespace decloud::engine

#include "engine/report.hpp"

#include <cstdio>

#include "common/audit.hpp"

namespace decloud::engine {

namespace {

void append_stats(std::string& out, const ledger::MarketStats& st) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"rounds\":%zu,\"requests_submitted\":%zu,\"requests_allocated\":%zu,"
                "\"requests_abandoned\":%zu,\"offers_submitted\":%zu,"
                "\"offers_abandoned\":%zu,\"bids_carried\":%zu,"
                "\"bids_duplicate_rejected\":%zu,",
                st.rounds, st.requests_submitted, st.requests_allocated,
                st.requests_abandoned, st.offers_submitted, st.offers_abandoned,
                st.bids_carried, st.bids_duplicate_rejected);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "\"agreements_denied\":%zu,\"total_welfare\":%.17g,\"total_settled\":%.17g,"
                "\"allocation_latency\":[",
                st.agreements_denied, st.total_welfare, st.total_settled);
  out += buf;
  for (std::size_t i = 0; i < st.allocation_latency.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%s%zu", i == 0 ? "" : ",", st.allocation_latency[i]);
    out += buf;
  }
  out += "]}";
}

}  // namespace

void merge_stats(ledger::MarketStats& total, const ledger::MarketStats& shard) {
  total.rounds += shard.rounds;
  total.requests_submitted += shard.requests_submitted;
  total.requests_allocated += shard.requests_allocated;
  total.requests_abandoned += shard.requests_abandoned;
  total.offers_submitted += shard.offers_submitted;
  total.offers_abandoned += shard.offers_abandoned;
  total.bids_carried += shard.bids_carried;
  total.bids_duplicate_rejected += shard.bids_duplicate_rejected;
  total.agreements_denied += shard.agreements_denied;
  total.total_welfare += shard.total_welfare;
  total.total_settled += shard.total_settled;
  if (total.allocation_latency.size() < shard.allocation_latency.size()) {
    total.allocation_latency.resize(shard.allocation_latency.size(), 0);
  }
  for (std::size_t i = 0; i < shard.allocation_latency.size(); ++i) {
    total.allocation_latency[i] += shard.allocation_latency[i];
  }
}

void audit_report(const EngineReport& report) {
  using decloud::audit::check;

  ledger::MarketStats remerged;
  std::size_t rejected = 0;
  std::size_t spilled = 0;
  std::size_t retry_scheduled = 0;
  std::size_t retry_succeeded = 0;
  std::size_t retry_dropped = 0;
  for (std::size_t i = 0; i < report.shards.size(); ++i) {
    const ShardReport& s = report.shards[i];
    check(s.shard == i, "shard slices stored in fixed shard order");
    check(s.welfare() == s.stats.total_welfare, "shard welfare alias reconciles");
    check(s.bids_retry_succeeded + s.bids_retry_dropped <= s.bids_retry_scheduled,
          "resolved retries bounded by scheduled retries");
    merge_stats(remerged, s.stats);
    rejected += s.bids_rejected_backpressure;
    spilled += s.bids_spilled;
    retry_scheduled += s.bids_retry_scheduled;
    retry_succeeded += s.bids_retry_succeeded;
    retry_dropped += s.bids_retry_dropped;
  }
  check(report.bids_rejected_backpressure == rejected,
        "backpressure counter equals the per-shard sum");
  check(report.bids_spilled == spilled, "spillover counter equals the per-shard sum");
  check(report.bids_retry_scheduled == retry_scheduled,
        "retry-scheduled counter equals the per-shard sum");
  check(report.bids_retry_succeeded == retry_succeeded,
        "retry-succeeded counter equals the per-shard sum");
  check(report.bids_retry_dropped == retry_dropped,
        "retry-dropped counter equals the per-shard sum");

  // The re-merge above walked shards in the same fixed order report()
  // uses, so every field — welfare doubles included — compares exactly.
  check(remerged.rounds == report.total.rounds, "total rounds reconcile");
  check(remerged.requests_submitted == report.total.requests_submitted,
        "total requests_submitted reconciles");
  check(remerged.requests_allocated == report.total.requests_allocated,
        "total requests_allocated reconciles");
  check(remerged.requests_abandoned == report.total.requests_abandoned,
        "total requests_abandoned reconciles");
  check(remerged.offers_submitted == report.total.offers_submitted,
        "total offers_submitted reconciles");
  check(remerged.offers_abandoned == report.total.offers_abandoned,
        "total offers_abandoned reconciles");
  check(remerged.bids_carried == report.total.bids_carried, "total bids_carried reconciles");
  check(report.micro_epochs == report.epochs,
        "every scheduler tick closes exactly one micro-epoch (batch ticks "
        "are degenerate micro-epochs; streaming closes route through ticks)");
  check(remerged.bids_duplicate_rejected == report.total.bids_duplicate_rejected,
        "total bids_duplicate_rejected reconciles");
  check(remerged.agreements_denied == report.total.agreements_denied,
        "total agreements_denied reconciles");
  check(remerged.total_welfare == report.total.total_welfare,
        "total welfare reconciles bitwise (fixed-order merge)");
  check(remerged.total_settled == report.total.total_settled,
        "total settled money reconciles bitwise (fixed-order merge)");
  check(remerged.allocation_latency == report.total.allocation_latency,
        "latency histogram reconciles element-wise");
  check(report.total.requests_allocated <= report.total.requests_submitted,
        "allocations bounded by submissions");
  std::size_t latency_sum = 0;
  for (const std::size_t n : report.total.allocation_latency) latency_sum += n;
  check(latency_sum == report.total.requests_allocated,
        "Σ allocation_latency == requests_allocated");
}

std::string EngineReport::summary_json() const {
  std::string out;
  out.reserve(256 + shards.size() * 256);
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "{\"epochs\":%zu,\"micro_epochs\":%zu,\"bids_rejected_backpressure\":%zu,"
                "\"bids_rejected_unroutable\":%zu,\"bids_spilled\":%zu,"
                "\"bids_retry_scheduled\":%zu,\"bids_retry_succeeded\":%zu,"
                "\"bids_retry_dropped\":%zu,\"total\":",
                epochs, micro_epochs, bids_rejected_backpressure, bids_rejected_unroutable,
                bids_spilled, bids_retry_scheduled, bids_retry_succeeded, bids_retry_dropped);
  out += buf;
  append_stats(out, total);
  out += ",\"shards\":[";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ShardReport& s = shards[i];
    std::snprintf(buf, sizeof buf,
                  "%s{\"shard\":%zu,\"epochs\":%zu,\"rejected\":%zu,\"spilled\":%zu,"
                  "\"retries\":%zu,\"retry_ok\":%zu,\"retry_dropped\":%zu,\"stats\":",
                  i == 0 ? "" : ",", s.shard, s.epochs, s.bids_rejected_backpressure,
                  s.bids_spilled, s.bids_retry_scheduled, s.bids_retry_succeeded,
                  s.bids_retry_dropped);
    out += buf;
    append_stats(out, s.stats);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace decloud::engine

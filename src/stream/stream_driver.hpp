// Trace-driven streaming ingest — the continuous-market twin of
// engine/driver.hpp.
//
// Feeds the SAME deterministic workload stream (engine::make_trace_stream:
// same generator, same location stamping, same interleaved order) into a
// StreamingMarket one bid at a time, letting the market's own micro-epoch
// triggers decide when to clear, then flushes the tail and drains the
// residue.  With `triggers.bids` equal to the batch driver's
// bids_per_epoch (and the watermark off), every micro-epoch closes exactly
// where a batch tick would — so the two modes' EngineReports must be
// byte-identical, which is the streaming determinism suite's oracle.
#pragma once

#include "engine/driver.hpp"
#include "stream/streaming_market.hpp"

namespace decloud::stream {

/// Outcome of one streamed run; `drive` mirrors engine::DriveOutcome so
/// batch-vs-stream comparisons are field-for-field.
struct StreamDriveOutcome {
  engine::DriveOutcome drive;
  std::size_t micro_epochs = 0;    ///< closes during the stream (incl. flush)
  std::size_t drain_epochs = 0;    ///< residue-clearing ticks after the stream
};

/// Streams the trace for `config` into `market` bid-by-bid, flushes, and
/// drains.  Deterministic in (config, market config); the scheduler thread
/// count never changes the report (engine determinism contract).
StreamDriveOutcome drive_trace_stream(StreamingMarket& market,
                                      const engine::TraceDriverConfig& config);

}  // namespace decloud::stream

// Epoch-less continuous-market front end (DESIGN.md §3h).
//
// A StreamingMarket wraps a MarketEngine + EpochScheduler and replaces the
// batch driver's submit-batch-then-tick rhythm with a continuous ingest
// stream: producers call submit() whenever a bid arrives, and the market
// decides FOR ITSELF when to clear, by closing a "micro-epoch" — one
// scheduler tick over every shard — whenever a deterministic trigger
// fires:
//
//   * bid-count: `triggers.bids` submissions have arrived since the last
//     close (the continuous analogue of the batch driver's
//     bids_per_epoch);
//   * watermark: the stream's logical clock — one tick per submission,
//     the same event-sequence discipline the obs tracer uses in
//     logical-clock-only mode — has advanced `triggers.watermark` ticks
//     since the last close.  With per-submission clocking it is the
//     bid-count trigger under another name; callers with coarser clocks
//     (advance_clock) use it to close on event-time progress instead.
//
// Wall time NEVER closes a micro-epoch: two runs that see the same
// submission sequence close at exactly the same points no matter how fast
// the host is, which is what makes the streaming EngineReport
// byte-reproducible (and declint's wallclock-outside-obs rule enforceable
// over this subsystem).  Simulated round timestamps advance by
// epoch_interval per close, exactly like the batch scheduler's run loop —
// so a stream whose triggers fire on the batch driver's epoch boundaries
// produces a byte-identical EngineReport to batch mode
// (tests/stream/stream_determinism_test).
//
// Unmatched bids are residue: they stay queued inside the shard markets
// and re-enter the next micro-epoch's round automatically, with age
// bounded by MarketConfig::max_resubmissions (EngineReport counts them in
// total.bids_carried).  The producer-side CandidateIndexCache makes those
// slowly-evolving offer books cheap to rescore (candidate_index.hpp).
//
// Threading: submit()/flush()/drain() must come from ONE thread (the
// stream owner); the scheduler fans shard work out underneath exactly as
// in batch mode, and the report is byte-identical for every thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "engine/driver.hpp"
#include "engine/engine.hpp"
#include "engine/epoch_scheduler.hpp"

namespace decloud::stream {

using engine::EngineAdmission;
using engine::EngineReport;

/// Deterministic micro-epoch close triggers.  At least one must be
/// non-zero; both zero means only flush()/drain() ever close (a pure
/// manual market, useful in tests).
struct MicroEpochTriggers {
  /// Close after this many submissions since the last close (0 = off).
  std::size_t bids = 0;
  /// Close once the logical clock advanced this far since the last close
  /// (0 = off).  Checked after the bid-count trigger, so when both would
  /// fire on the same submission the close is attributed to bid-count.
  std::size_t watermark = 0;
};

struct StreamConfig {
  engine::EngineConfig engine;
  MicroEpochTriggers triggers;
  /// Scheduler worker threads for the shard fan-out (0 = hardware).
  std::size_t threads = 1;
  /// Simulated time of the first micro-epoch; subsequent closes advance
  /// by epoch_interval — the batch driver's timestamp sequence.
  Time start_time = 0;
  Seconds epoch_interval = 600;
  /// Ticks drain() may spend clearing residue after the stream ends.
  std::size_t drain_epochs = 32;
};

/// Producer-visible outcome of one streaming submit.
struct StreamAdmission {
  /// The engine's admission verdict (routing, backpressure, deferral).
  EngineAdmission engine;
  /// True when this submission closed a micro-epoch.
  bool closed_micro_epoch = false;
  /// Micro-epochs closed so far (after this submission).
  std::size_t micro_epoch = 0;
};

class StreamingMarket {
 public:
  explicit StreamingMarket(StreamConfig config);

  /// Ingests one bid and closes a micro-epoch if a trigger fired.  Every
  /// submission — admitted, rejected, or deferred — advances the logical
  /// clock and counts toward the bid-count trigger: triggers must depend
  /// only on the submission SEQUENCE, not on admission outcomes, or a
  /// fault plan rejecting an ingest would shift every later close and the
  /// batch alignment (whose ticks also count rejected submissions against
  /// the batch boundary) would break.
  StreamAdmission submit(const auction::Request& request);
  StreamAdmission submit(const auction::Offer& offer);

  /// Advances the logical clock without a submission (event-time progress
  /// from an external source); closes a micro-epoch if the watermark
  /// trigger fires.  Returns true on close.
  bool advance_clock(std::uint64_t ticks = 1);

  /// Closes a final micro-epoch over any submissions still pending since
  /// the last close; a no-op (returns false) when none are — an empty
  /// close would tick the scheduler and break batch alignment.
  bool flush();

  /// Runs up to config.drain_epochs extra micro-epochs clearing carried
  /// residue (the batch driver's drain tail).  Returns epochs run.
  std::size_t drain();

  /// Micro-epochs closed so far (== scheduler ticks; every close is one
  /// tick, and nothing else ticks the scheduler).
  [[nodiscard]] std::size_t micro_epochs() const { return scheduler_.epochs(); }
  [[nodiscard]] std::uint64_t logical_clock() const { return clock_; }
  [[nodiscard]] std::size_t submitted() const { return submitted_; }

  [[nodiscard]] engine::MarketEngine& market_engine() { return engine_; }
  [[nodiscard]] const engine::MarketEngine& market_engine() const { return engine_; }
  [[nodiscard]] engine::EpochScheduler& scheduler() { return scheduler_; }
  [[nodiscard]] const StreamConfig& config() const { return config_; }

  /// The scheduler's report (engine totals + epoch/micro-epoch counters).
  [[nodiscard]] EngineReport report() const { return scheduler_.report(); }

  /// Observability exports with the stream's own sink ("stream":
  /// micro_epoch spans + stream.* counters) merged after the scheduler's,
  /// before the shard sinks.  Null sinks are skipped, so without
  /// observability these equal the engine's own exports.
  [[nodiscard]] std::string metrics_json() const;
  [[nodiscard]] std::string metrics_prometheus() const;
  [[nodiscard]] std::string trace_json() const;

  /// The stream-level sink (null without observability) — exposed so a
  /// driver can compose its own extra-sink merge order (e.g. appending
  /// the journal telemetry sink after the stream's).
  [[nodiscard]] const obs::MetricsSink* sink() const { return sink_.get(); }

  /// Attaches the write-ahead log (not owned, may be null) for the
  /// stream's OWN inputs — clock advances and flushes.  Bids are logged
  /// by the engine (attach there too); micro-epoch closes are NOT logged:
  /// they re-fire deterministically when replay re-feeds the logged
  /// inputs, which is why stream mode never attaches the scheduler
  /// (DESIGN.md §3k).
  void set_wal_writer(wal::WalWriter* wal) { wal_ = wal; }

  /// Snapshot/restore of the stream's own trigger state (logical clock
  /// and submission counters) plus its sink's metrics registry.
  void encode_state(ByteWriter& w) const;
  void restore_state(ByteReader& r);

 private:
  /// Close attribution is the journal's own taxonomy so the kEpochClose
  /// events a stream run journals are byte-comparable with an aligned
  /// batch run's (the batch driver attributes its ticks the same way).
  using CloseReason = journal::CloseReason;

  template <typename Bid>
  StreamAdmission submit_bid(const Bid& bid);
  /// Closes one micro-epoch NOW (one scheduler tick at the next simulated
  /// timestamp) and attributes it to `reason` in the stream counters.
  void close_micro_epoch(CloseReason reason);
  /// Fires at most one close for the current trigger state.
  [[nodiscard]] bool maybe_close();

  StreamConfig config_;
  engine::MarketEngine engine_;
  engine::EpochScheduler scheduler_;
  /// Stream-level sink (null unless config.engine.observability); owned
  /// here, written only by the stream owner thread.
  std::unique_ptr<obs::MetricsSink> sink_;
  std::uint64_t clock_ = 0;       ///< logical clock (event ticks)
  std::size_t submitted_ = 0;     ///< submissions seen (any admission outcome)
  std::uint64_t closed_clock_ = 0;    ///< clock_ at the last close
  std::size_t closed_submitted_ = 0;  ///< submitted_ at the last close
  /// Durable-mode WAL attachment (null otherwise); see set_wal_writer.
  wal::WalWriter* wal_ = nullptr;
};

}  // namespace decloud::stream

#include "stream/streaming_market.hpp"

#include "common/ensure.hpp"
#include "wal/wal.hpp"

namespace decloud::stream {

StreamingMarket::StreamingMarket(StreamConfig config)
    : config_(std::move(config)), engine_(config_.engine), scheduler_(engine_, config_.threads) {
  DECLOUD_EXPECTS_MSG(config_.epoch_interval > 0,
                      "micro-epoch interval must advance simulated time");
  if (config_.engine.observability) {
    sink_ = std::make_unique<obs::MetricsSink>("stream", config_.engine.clock);
  }
}

void StreamingMarket::close_micro_epoch(CloseReason reason) {
  DECLOUD_EXPECTS_MSG(scheduler_.epochs() < static_cast<std::size_t>(INT64_MAX),
                      "micro-epoch count overflows the simulated clock");
  // Simulated timestamps are a pure function of the close COUNT — the
  // batch scheduler's start + n·interval sequence — never of wall time,
  // so every run over the same stream closes at identical timestamps.
  const Time now =
      config_.start_time + static_cast<Time>(scheduler_.epochs()) * config_.epoch_interval;
  {
    obs::SpanScope span(sink_.get(), "micro_epoch");
    span.add_work(submitted_ - closed_submitted_);
    scheduler_.tick(now, reason, submitted_ - closed_submitted_);
  }
  closed_submitted_ = submitted_;
  closed_clock_ = clock_;
  if (sink_ != nullptr) {
    obs::MetricsRegistry& m = sink_->metrics();
    m.counter("stream.micro_epochs").add(1);
    switch (reason) {
      case CloseReason::kBidCount: m.counter("stream.close_bid_count").add(1); break;
      case CloseReason::kWatermark: m.counter("stream.close_watermark").add(1); break;
      case CloseReason::kFlush: m.counter("stream.close_flush").add(1); break;
      case CloseReason::kDrain: m.counter("stream.close_drain").add(1); break;
    }
  }
}

bool StreamingMarket::maybe_close() {
  // Bid-count first: when both triggers arm on the same submission the
  // close is attributed deterministically (and singly) to bid-count.
  if (config_.triggers.bids != 0 && submitted_ - closed_submitted_ >= config_.triggers.bids) {
    close_micro_epoch(CloseReason::kBidCount);
    return true;
  }
  if (config_.triggers.watermark != 0 &&
      clock_ - closed_clock_ >= config_.triggers.watermark) {
    close_micro_epoch(CloseReason::kWatermark);
    return true;
  }
  return false;
}

template <typename Bid>
StreamAdmission StreamingMarket::submit_bid(const Bid& bid) {
  // Count the submission BEFORE asking the engine: the trigger state must
  // be a function of the submission sequence alone (see class comment).
  ++submitted_;
  ++clock_;
  StreamAdmission admission;
  admission.engine = engine_.submit(bid);
  if (sink_ != nullptr) {
    obs::MetricsRegistry& m = sink_->metrics();
    m.counter("stream.bids_submitted").add(1);
    if (!admission.engine.admitted()) m.counter("stream.bids_rejected").add(1);
  }
  admission.closed_micro_epoch = maybe_close();
  admission.micro_epoch = scheduler_.epochs();
  return admission;
}

StreamAdmission StreamingMarket::submit(const auction::Request& request) {
  // Validate at the stream boundary so a malformed bid faults the caller
  // BEFORE it advances the trigger state (the engine validates again on
  // its own boundary; the check is pure, so twice is harmless).
  auction::validate(request);
  return submit_bid(request);
}

StreamAdmission StreamingMarket::submit(const auction::Offer& offer) {
  auction::validate(offer);
  return submit_bid(offer);
}

bool StreamingMarket::advance_clock(std::uint64_t ticks) {
  DECLOUD_EXPECTS_MSG(ticks > 0, "clock advances strictly forward");
  // Log-before-apply: a clock advance is an input like any bid.
  if (wal_ != nullptr) (void)wal_->append_clock_advance(ticks);
  clock_ += ticks;
  if (config_.triggers.watermark != 0 && clock_ - closed_clock_ >= config_.triggers.watermark) {
    close_micro_epoch(CloseReason::kWatermark);
    return true;
  }
  return false;
}

bool StreamingMarket::flush() {
  // Logged even when it no-ops: replay re-runs the same no-op, keeping the
  // input sequence aligned with what the caller actually did.
  if (wal_ != nullptr) (void)wal_->append_flush();
  // Only close over PENDING submissions: an empty flush would still tick
  // the scheduler, desynchronizing the epoch count (hence the timestamp
  // sequence and the report) from an aligned batch run.
  if (submitted_ == closed_submitted_) return false;
  close_micro_epoch(CloseReason::kFlush);
  return true;
}

std::size_t StreamingMarket::drain() {
  // The drain tail reuses the scheduler's own loop — identical stopping
  // rule (idle or budget exhausted) and timestamp sequence to the batch
  // driver's scheduler.run(drain_epochs, …) call.
  const Time now =
      config_.start_time + static_cast<Time>(scheduler_.epochs()) * config_.epoch_interval;
  const std::size_t ran = scheduler_.run(config_.drain_epochs, now, config_.epoch_interval);
  closed_submitted_ = submitted_;
  closed_clock_ = clock_;
  if (sink_ != nullptr && ran > 0) {
    obs::MetricsRegistry& m = sink_->metrics();
    m.counter("stream.micro_epochs").add(ran);
    m.counter("stream.close_drain").add(ran);
  }
  return ran;
}

void StreamingMarket::encode_state(ByteWriter& w) const {
  w.write_u64(clock_);
  w.write_u64(submitted_);
  w.write_u64(closed_clock_);
  w.write_u64(closed_submitted_);
  w.write_u8(sink_ != nullptr ? 1 : 0);
  if (sink_ != nullptr) sink_->metrics().encode(w);
}

void StreamingMarket::restore_state(ByteReader& r) {
  clock_ = r.read_u64();
  submitted_ = r.read_u64();
  closed_clock_ = r.read_u64();
  closed_submitted_ = r.read_u64();
  const bool has_sink = r.read_u8() != 0;
  DECLOUD_EXPECTS_MSG(has_sink == (sink_ != nullptr),
                      "stream snapshot observability differs from the configured market");
  if (has_sink) sink_->metrics().decode(r);
}

std::string StreamingMarket::metrics_json() const {
  const obs::MetricsSink* extras[] = {scheduler_.sink(), sink_.get()};
  return engine_.metrics_json(extras);
}

std::string StreamingMarket::metrics_prometheus() const {
  const obs::MetricsSink* extras[] = {scheduler_.sink(), sink_.get()};
  return engine_.metrics_prometheus(extras);
}

std::string StreamingMarket::trace_json() const {
  const obs::MetricsSink* extras[] = {scheduler_.sink(), sink_.get()};
  return engine_.trace_json(extras);
}

}  // namespace decloud::stream

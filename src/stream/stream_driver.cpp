#include "stream/stream_driver.hpp"

#include "common/ensure.hpp"

namespace decloud::stream {

StreamDriveOutcome drive_trace_stream(StreamingMarket& market,
                                      const engine::TraceDriverConfig& config) {
  // The market's own config governs micro-epoch timing; a driver config
  // that disagrees would silently produce a differently-timestamped run,
  // so refuse it outright.
  DECLOUD_EXPECTS_MSG(config.start_time == market.config().start_time &&
                          config.epoch_interval == market.config().epoch_interval &&
                          config.drain_epochs == market.config().drain_epochs,
                      "driver timing must match the StreamConfig it feeds");

  const engine::TraceStream stream =
      engine::make_trace_stream(config, market.config().engine);
  const auction::MarketSnapshot& snapshot = stream.snapshot;

  StreamDriveOutcome outcome;
  outcome.drive.bids_generated = stream.order.size();
  const std::size_t n_req = snapshot.requests.size();
  for (const std::size_t i : stream.order) {
    const StreamAdmission admission = i < n_req ? market.submit(snapshot.requests[i])
                                                : market.submit(snapshot.offers[i - n_req]);
    if (admission.engine.admitted()) {
      ++outcome.drive.bids_admitted;
    } else {
      ++outcome.drive.bids_rejected;
    }
  }
  (void)market.flush();
  outcome.micro_epochs = market.micro_epochs();
  outcome.drain_epochs = market.drain();

  outcome.drive.report = market.report();
  if (obs::MetricsSink* sink = market.scheduler().sink(); sink != nullptr) {
    obs::MetricsRegistry& m = sink->metrics();
    m.counter("driver.bids_generated").add(outcome.drive.bids_generated);
    m.counter("driver.bids_admitted").add(outcome.drive.bids_admitted);
    m.counter("driver.bids_rejected").add(outcome.drive.bids_rejected);
  }
  return outcome;
}

}  // namespace decloud::stream

// Umbrella header: the full DeCloud public API in one include.
//
//   #include "decloud.hpp"
//
// Fine-grained headers remain the preferred include style inside the
// library itself (SF.10/SF.11); the umbrella exists for application code
// and quick experiments.
#pragma once

// Foundations
#include "common/ensure.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

// The auction mechanism (the paper's contribution)
#include "auction/allocation.hpp"
#include "auction/bid.hpp"
#include "auction/config.hpp"
#include "auction/feasibility.hpp"
#include "auction/mcafee.hpp"
#include "auction/mechanism.hpp"
#include "auction/qom.hpp"
#include "auction/resource.hpp"
#include "auction/verify.hpp"

// Workload generation and trace handling
#include "trace/ec2_catalog.hpp"
#include "trace/google_csv.hpp"
#include "trace/google_trace.hpp"
#include "trace/kl_shaper.hpp"
#include "trace/workload.hpp"

// The distributed ledger and the two-phase bid exposure protocol
#include "ledger/block.hpp"
#include "ledger/challenge.hpp"
#include "ledger/codec.hpp"
#include "ledger/contract.hpp"
#include "ledger/market.hpp"
#include "ledger/miner.hpp"
#include "ledger/participant.hpp"
#include "ledger/protocol.hpp"
#include "ledger/sealed_bid.hpp"

// Network simulation
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "sim/simulation.hpp"

// Deterministic metrics registry: counters, gauges, fixed-bucket
// histograms.
//
// One registry belongs to one owner (a shard, a driver, a scheduler) and
// is written by at most one thread at a time — cross-shard aggregation
// happens by merging registries in FIXED shard order, never by sharing
// one registry across threads.  Because every metric value is a
// deterministic function of the owner's (deterministic) work, and the
// export walks names in sorted order printing doubles with %.17g, an
// exported snapshot is byte-identical across scheduler thread counts.
//
// Metric handles returned by counter()/gauge()/histogram() stay valid for
// the registry's lifetime (std::map node stability), so hot paths resolve
// a name once and increment through the reference.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/byte_buffer.hpp"
#include "stats/histogram.hpp"

namespace decloud::obs {

/// Monotone event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// A point-in-time double.  add() makes it usable as a float accumulator
/// (e.g. welfare); merges sum, which is the right semantics for both uses
/// here (per-shard gauges describe per-shard totals).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Returns the named metric, creating it on first use.  Handles are
  /// stable for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// First use fixes the bucket layout; later calls (and merges) with a
  /// DIFFERENT layout throw precondition_error rather than mixing buckets
  /// with different meanings.
  stats::Histogram& histogram(std::string_view name, double lo, double hi, std::size_t bins);

  /// Folds `other` into this registry: counters/gauges sum, histograms
  /// merge bin-wise (stats::Histogram::merge enforces identical bounds).
  /// Deterministic: call in fixed shard order.
  void merge_from(const MetricsRegistry& other);

  /// One JSON object, keys sorted, doubles %.17g — the byte-compared form.
  [[nodiscard]] std::string to_json() const;

  /// Prometheus text exposition format (counters, gauges, cumulative
  /// histogram buckets with `le` labels).  Metric names have '.' mapped to
  /// '_' to satisfy the Prometheus grammar.
  [[nodiscard]] std::string to_prometheus() const;

  [[nodiscard]] bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Canonical binary form for snapshot/restore: names in sorted map
  /// order, doubles bit-cast — a decoded registry exports byte-identical
  /// JSON/Prometheus text.
  void encode(ByteWriter& w) const;
  /// Inverse of encode() into THIS registry (merging with any existing
  /// entries via the normal creation paths).  Throws precondition_error
  /// on a malformed buffer.
  void decode(ByteReader& r);

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, stats::Histogram, std::less<>> histograms_;
};

}  // namespace decloud::obs

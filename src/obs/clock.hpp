// Injected time sources for the observability layer.
//
// The repo-wide determinism contract (DESIGN.md §3b) bans ambient clocks:
// block evidence, not the host clock, drives the mechanism, and miners on
// different machines must re-derive byte-identical results.  Telemetry
// still wants real durations, so wall time enters through exactly one
// door: an obs::Clock handed to a MetricsSink.  Production passes a
// SteadyClock (the ONLY sanctioned std::chrono::steady_clock site in the
// tree — enforced by declint's `wallclock-outside-obs` rule); tests pass a
// FakeClock or no clock at all, in which case the tracer falls back to the
// always-on deterministic logical clock (tracer.hpp).
#pragma once

#include <cstdint>

namespace decloud::obs {

/// Monotonic nanosecond source.  Implementations need not be thread-safe:
/// a sink — and therefore its clock reads — is owned by one shard/driver
/// and accessed by at most one thread at a time.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Nanoseconds since an arbitrary fixed origin; never decreases.
  [[nodiscard]] virtual std::uint64_t now_ns() = 0;
};

/// Wall time from std::chrono::steady_clock.
class SteadyClock final : public Clock {
 public:
  [[nodiscard]] std::uint64_t now_ns() override;
};

/// Deterministic clock for tests: returns `start_ns` plus `auto_step_ns`
/// per read, plus whatever advance() added — so span durations are exact,
/// predictable values.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(std::uint64_t start_ns = 0, std::uint64_t auto_step_ns = 0)
      : now_(start_ns), step_(auto_step_ns) {}

  [[nodiscard]] std::uint64_t now_ns() override {
    const std::uint64_t t = now_;
    now_ += step_;
    return t;
  }

  void advance(std::uint64_t delta_ns) { now_ += delta_ns; }

 private:
  std::uint64_t now_;
  std::uint64_t step_;
};

}  // namespace decloud::obs

#include "obs/metrics.hpp"

#include <cstdio>
#include <vector>

#include "common/ensure.hpp"

namespace decloud::obs {

namespace {

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_size(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

stats::Histogram& MetricsRegistry::histogram(std::string_view name, double lo, double hi,
                                             std::size_t bins) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    stats::Histogram& h = it->second;
    DECLOUD_EXPECTS_MSG(h.lo() == lo && h.hi() == hi && h.bin_count() == bins,
                        "histogram re-registered with a different bucket layout");
    return h;
  }
  return histograms_.emplace(std::string(name), stats::Histogram(lo, hi, bins)).first->second;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) counter(name).add(c.value());
  for (const auto& [name, g] : other.gauges_) gauge(name).add(g.value());
  for (const auto& [name, h] : other.histograms_) {
    histogram(name, h.lo(), h.hi(), h.bin_count()).merge(h);
  }
}

void MetricsRegistry::encode(ByteWriter& w) const {
  w.write_u64(counters_.size());
  for (const auto& [name, c] : counters_) {
    w.write_string(name);
    w.write_u64(c.value());
  }
  w.write_u64(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    w.write_string(name);
    w.write_double(g.value());
  }
  w.write_u64(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    w.write_string(name);
    w.write_double(h.lo());
    w.write_double(h.hi());
    w.write_u64(h.bin_count());
    for (std::size_t i = 0; i < h.bin_count(); ++i) w.write_double(h.count(i));
    w.write_double(h.total());
    w.write_double(h.sum());
  }
}

void MetricsRegistry::decode(ByteReader& r) {
  const std::uint64_t num_counters = r.read_u64();
  DECLOUD_EXPECTS_MSG(num_counters <= r.remaining(), "metrics counter count exceeds input");
  for (std::uint64_t i = 0; i < num_counters; ++i) {
    const std::string name = r.read_string();
    counter(name).add(r.read_u64());
  }
  const std::uint64_t num_gauges = r.read_u64();
  DECLOUD_EXPECTS_MSG(num_gauges <= r.remaining(), "metrics gauge count exceeds input");
  for (std::uint64_t i = 0; i < num_gauges; ++i) {
    const std::string name = r.read_string();
    gauge(name).add(r.read_double());
  }
  const std::uint64_t num_histograms = r.read_u64();
  DECLOUD_EXPECTS_MSG(num_histograms <= r.remaining(), "metrics histogram count exceeds input");
  for (std::uint64_t i = 0; i < num_histograms; ++i) {
    const std::string name = r.read_string();
    const double lo = r.read_double();
    const double hi = r.read_double();
    const std::uint64_t bins = r.read_u64();
    DECLOUD_EXPECTS_MSG(bins > 0 && bins <= r.remaining(), "metrics histogram bin count invalid");
    std::vector<double> counts(static_cast<std::size_t>(bins));
    for (double& c : counts) c = r.read_double();
    const double total = r.read_double();
    const double sum = r.read_double();
    stats::Histogram decoded(lo, hi, static_cast<std::size_t>(bins));
    decoded.restore(counts, total, sum);
    histogram(name, lo, hi, static_cast<std::size_t>(bins)).merge(decoded);
  }
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\"" : ",\"";
    first = false;
    out += name;
    out += "\":";
    append_size(out, c.value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\"" : ",\"";
    first = false;
    out += name;
    out += "\":";
    append_double(out, g.value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\"" : ",\"";
    first = false;
    out += name;
    out += "\":{\"lo\":";
    append_double(out, h.lo());
    out += ",\"hi\":";
    append_double(out, h.hi());
    out += ",\"total\":";
    append_double(out, h.total());
    out += ",\"sum\":";
    append_double(out, h.sum());
    out += ",\"buckets\":[";
    for (std::size_t b = 0; b < h.bin_count(); ++b) {
      if (b > 0) out += ",";
      append_double(out, h.count(b));
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::to_prometheus() const {
  std::string out;
  for (const auto& [name, c] : counters_) {
    const std::string pn = prometheus_name(name);
    out += "# TYPE " + pn + " counter\n" + pn + " ";
    append_size(out, c.value());
    out += "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string pn = prometheus_name(name);
    out += "# TYPE " + pn + " gauge\n" + pn + " ";
    append_double(out, g.value());
    out += "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string pn = prometheus_name(name);
    out += "# TYPE " + pn + " histogram\n";
    // Cumulative buckets; the boundary bins clamp (histogram.hpp), so the
    // first `le` is the edge of bin 0 and +Inf repeats the grand total.
    double cumulative = 0.0;
    const double width = (h.hi() - h.lo()) / static_cast<double>(h.bin_count());
    for (std::size_t b = 0; b < h.bin_count(); ++b) {
      cumulative += h.count(b);
      out += pn + "_bucket{le=\"";
      append_double(out, h.lo() + width * static_cast<double>(b + 1));
      out += "\"} ";
      append_double(out, cumulative);
      out += "\n";
    }
    out += pn + "_bucket{le=\"+Inf\"} ";
    append_double(out, h.total());
    out += "\n" + pn + "_sum ";
    append_double(out, h.sum());
    out += "\n" + pn + "_count ";
    append_double(out, h.total());
    out += "\n";
  }
  return out;
}

}  // namespace decloud::obs

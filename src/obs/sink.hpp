// MetricsSink — the one handle instrumented code touches.
//
// A sink bundles a MetricsRegistry and a Tracer under a label ("shard3",
// "scheduler", …).  Instrumentation sites across auction/, ledger/,
// engine/ and sim/ take a `MetricsSink*` that defaults to nullptr; every
// hook (SpanScope, the `if (sink)` counter guards) collapses to a single
// pointer test when observability is off, so the hot path pays nothing —
// the null-sink zero-cost contract (DESIGN.md §3e, measured by
// bench/perf_smoke).
//
// Ownership/threading: one sink per shard (or per driver), written only
// by whichever thread is running that shard's round — the same discipline
// as the shard markets themselves, so no synchronization is needed.
// Cross-shard views are produced by merging/exporting sinks in FIXED
// order (merged_metrics_json / merged_chrome_trace), which keeps the
// exported bytes independent of the scheduler's thread count.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace decloud::obs {

class Clock;

class MetricsSink {
 public:
  /// `clock` may be null (logical-clock-only mode) and is not owned.
  explicit MetricsSink(std::string label, Clock* clock = nullptr)
      : label_(std::move(label)), tracer_(clock) {}

  [[nodiscard]] const std::string& label() const { return label_; }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] Tracer& tracer() { return tracer_; }
  [[nodiscard]] const Tracer& tracer() const { return tracer_; }

 private:
  std::string label_;
  MetricsRegistry metrics_;
  Tracer tracer_;
};

/// RAII stage span.  With a null sink every member is a no-op; with a live
/// sink the span opens at construction and closes at scope exit.
class SpanScope {
 public:
  SpanScope(MetricsSink* sink, std::string_view name)
      : tracer_(sink != nullptr ? &sink->tracer() : nullptr),
        index_(tracer_ != nullptr ? tracer_->begin_span(name) : 0) {}

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  ~SpanScope() {
    if (tracer_ != nullptr) tracer_->end_span(index_, work_);
  }

  /// Adds to the span's deterministic work counter.
  void add_work(std::uint64_t n) { work_ += n; }

 private:
  Tracer* tracer_;
  std::size_t index_;
  std::uint64_t work_ = 0;
};

/// Merges every sink's registry in the given (fixed) order into one
/// registry and serializes it (metrics.hpp JSON).  Byte-deterministic as
/// long as the order and each sink's contents are.
[[nodiscard]] std::string merged_metrics_json(const std::vector<const MetricsSink*>& sinks);

/// Same merge, Prometheus text exposition format.
[[nodiscard]] std::string merged_metrics_prometheus(
    const std::vector<const MetricsSink*>& sinks);

/// Chrome trace_event JSON ("traceEvents" array of complete "X" events,
/// loadable in chrome://tracing / Perfetto).  Each sink becomes one pid,
/// named by its label via process_name metadata; timestamps use the
/// sink's wall clock when it has one and the logical sequence otherwise.
[[nodiscard]] std::string merged_chrome_trace(const std::vector<const MetricsSink*>& sinks);

}  // namespace decloud::obs

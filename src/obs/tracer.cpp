#include "obs/tracer.hpp"

#include "common/ensure.hpp"
#include "obs/clock.hpp"

namespace decloud::obs {

std::size_t Tracer::begin_span(std::string_view name) {
  SpanRecord span;
  span.name = std::string(name);
  span.depth = depth_++;
  span.seq_begin = ++seq_;  // pre-increment: 0 is reserved for "still open"
  if (clock_ != nullptr) span.ts_ns = clock_->now_ns();
  spans_.push_back(std::move(span));
  return spans_.size() - 1;
}

void Tracer::end_span(std::size_t index, std::uint64_t work) {
  DECLOUD_EXPECTS(index < spans_.size());
  SpanRecord& span = spans_[index];
  DECLOUD_EXPECTS_MSG(span.open(), "span already ended");
  DECLOUD_EXPECTS_MSG(depth_ == span.depth + 1,
                      "spans must close LIFO (innermost open span first)");
  depth_ = span.depth;
  span.seq_end = ++seq_;
  span.work += work;
  if (clock_ != nullptr) {
    const std::uint64_t now = clock_->now_ns();
    span.dur_ns = now >= span.ts_ns ? now - span.ts_ns : 0;
  }
}

}  // namespace decloud::obs

// Nested stage spans with a deterministic logical clock.
//
// Every span records TWO timelines:
//   * logical — an event sequence number (one tick per span begin/end)
//     plus an optional work counter (items processed).  Always on, costs
//     two integer stores, and is a pure function of the owner's
//     deterministic execution — so logical-mode exports are byte-identical
//     across scheduler thread counts (the property tests/obs pins down);
//   * wall — nanoseconds from the injected obs::Clock, when one is
//     attached.  Absent a clock the wall fields stay zero and the export
//     falls back to logical timestamps.
//
// A tracer is single-owner like the registry (metrics.hpp): one shard or
// driver writes it, and cross-shard views are produced by exporting many
// tracers in fixed order (sink.hpp).  Spans nest by strict LIFO — end the
// innermost open span first — which SpanScope (sink.hpp) guarantees by
// construction.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace decloud::obs {

class Clock;

struct SpanRecord {
  std::string name;
  std::uint32_t depth = 0;      ///< nesting depth at begin (0 = top level)
  std::uint64_t seq_begin = 0;  ///< logical clock at begin
  std::uint64_t seq_end = 0;    ///< logical clock at end
  std::uint64_t work = 0;       ///< deterministic work counter (items)
  std::uint64_t ts_ns = 0;      ///< wall begin (0 without a clock)
  std::uint64_t dur_ns = 0;     ///< wall duration (0 without a clock)

  [[nodiscard]] bool open() const { return seq_end == 0; }
};

class Tracer {
 public:
  /// `clock` may be null: logical-only mode.  The tracer does not own it.
  explicit Tracer(Clock* clock = nullptr) : clock_(clock) {}

  /// Opens a span; returns its index for end_span.  Spans close LIFO.
  std::size_t begin_span(std::string_view name);

  /// Closes the span; `work` is added to its work counter.
  void end_span(std::size_t index, std::uint64_t work = 0);

  [[nodiscard]] const std::vector<SpanRecord>& spans() const { return spans_; }
  [[nodiscard]] std::uint64_t events() const { return seq_; }
  [[nodiscard]] bool has_clock() const { return clock_ != nullptr; }
  [[nodiscard]] std::uint32_t open_depth() const { return depth_; }

 private:
  Clock* clock_;
  std::uint64_t seq_ = 0;
  std::uint32_t depth_ = 0;
  std::vector<SpanRecord> spans_;
};

}  // namespace decloud::obs

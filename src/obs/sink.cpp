#include "obs/sink.hpp"

#include <cstdio>

namespace decloud::obs {

namespace {

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

std::string merged_metrics_json(const std::vector<const MetricsSink*>& sinks) {
  MetricsRegistry merged;
  for (const MetricsSink* sink : sinks) {
    if (sink != nullptr) merged.merge_from(sink->metrics());
  }
  return merged.to_json();
}

std::string merged_metrics_prometheus(const std::vector<const MetricsSink*>& sinks) {
  MetricsRegistry merged;
  for (const MetricsSink* sink : sinks) {
    if (sink != nullptr) merged.merge_from(sink->metrics());
  }
  return merged.to_prometheus();
}

std::string merged_chrome_trace(const std::vector<const MetricsSink*>& sinks) {
  // Wall timestamps are steady-clock offsets from an arbitrary origin;
  // rebase them on the earliest span so the trace starts near t=0.
  std::uint64_t wall_origin = UINT64_MAX;
  for (const MetricsSink* sink : sinks) {
    if (sink == nullptr || !sink->tracer().has_clock()) continue;
    for (const SpanRecord& span : sink->tracer().spans()) {
      if (span.ts_ns < wall_origin) wall_origin = span.ts_ns;
    }
  }
  if (wall_origin == UINT64_MAX) wall_origin = 0;

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[256];
  std::size_t pid = 0;
  for (const MetricsSink* sink : sinks) {
    if (sink == nullptr) continue;
    ++pid;  // 1-based: chrome tooling hides pid 0 rows in some views
    std::snprintf(buf, sizeof buf,
                  "%s{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%zu,\"tid\":0,"
                  "\"args\":{\"name\":\"%s\"}}",
                  first ? "" : ",", pid, sink->label().c_str());
    first = false;
    out += buf;
    const bool wall = sink->tracer().has_clock();
    for (const SpanRecord& span : sink->tracer().spans()) {
      if (span.open()) continue;  // never exported half-finished
      out += ",{\"name\":\"";
      out += span.name;
      std::snprintf(buf, sizeof buf, "\",\"ph\":\"X\",\"pid\":%zu,\"tid\":0,\"ts\":", pid);
      out += buf;
      if (wall) {
        append_double(out, static_cast<double>(span.ts_ns - wall_origin) / 1000.0);
        out += ",\"dur\":";
        append_double(out, static_cast<double>(span.dur_ns) / 1000.0);
      } else {
        // Logical mode: the event sequence is the timeline.  Nested spans
        // still render correctly because a parent's [seq_begin, seq_end]
        // strictly contains its children's.
        append_double(out, static_cast<double>(span.seq_begin));
        out += ",\"dur\":";
        append_double(out, static_cast<double>(span.seq_end - span.seq_begin));
      }
      std::snprintf(buf, sizeof buf,
                    ",\"args\":{\"work\":%llu,\"seq\":%llu,\"depth\":%u}}",
                    static_cast<unsigned long long>(span.work),
                    static_cast<unsigned long long>(span.seq_begin),
                    span.depth);
      out += buf;
    }
  }
  out += "]}";
  return out;
}

}  // namespace decloud::obs

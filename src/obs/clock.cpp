#include "obs/clock.hpp"

#include <chrono>

namespace decloud::obs {

std::uint64_t SteadyClock::now_ns() {
  // The one place in the tree allowed to read a host clock: every other
  // module receives time as data (simulated `Time now`) or via an injected
  // obs::Clock.  declint's `wallclock-outside-obs` rule pins this down.
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t).count());
}

}  // namespace decloud::obs

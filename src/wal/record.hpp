// WAL record vocabulary (DESIGN.md §3k).
//
// The write-ahead log records the engine's externally-visible INPUTS, not
// its outputs: recovery replays the inputs through the normal code paths,
// and the engine's determinism contract (byte-identical results for a
// given submission sequence at any thread count) does the rest.  Four
// record kinds are inputs and carry a dense global `input_seq` assigned at
// append time — replay merges every segment's records by that sequence,
// and a gap is a structured decode error, never a silent skip.  The fifth
// kind, kBlockAppend, is an OUTPUT fingerprint (shard chain grew to
// `height` with tip `digest`): replay ignores it for ordering and uses it
// only as an integrity cross-check against the re-executed rounds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "crypto/sha256.hpp"

namespace decloud::wal {

/// Values are the wire encoding — append new kinds, never renumber.
enum class RecordKind : std::uint8_t {
  kBid = 0,           ///< one submitted bid (payload = ledger codec bytes)
  kTick = 1,          ///< one batch-mode scheduler tick (now, reason, submissions)
  kClockAdvance = 2,  ///< stream-mode advance_clock(ticks)
  kFlush = 3,         ///< stream-mode flush()
  kBlockAppend = 4,   ///< shard chain append fingerprint (no input_seq)
};

inline constexpr std::size_t kNumRecordKinds = 5;

/// True for the kinds replay applies in input_seq order.
[[nodiscard]] constexpr bool is_input(RecordKind kind) {
  return kind != RecordKind::kBlockAppend;
}

/// One decoded WAL record.  Field validity is kind-dependent (see the
/// EventKind-style comments above); unused fields are zero.
struct Record {
  RecordKind kind = RecordKind::kBid;
  std::uint64_t input_seq = 0;        ///< inputs only: global dense sequence
  std::uint64_t segment = 0;          ///< segment the record was read from
  bool is_offer = false;              ///< kBid
  std::vector<std::uint8_t> payload;  ///< kBid: ledger::encode_request/offer bytes
  Time now = 0;                       ///< kTick
  std::uint8_t reason = 0;            ///< kTick: journal::CloseReason
  std::uint64_t submissions = 0;      ///< kTick
  std::uint64_t ticks = 0;            ///< kClockAdvance
  std::uint64_t shard = 0;            ///< kBlockAppend
  std::uint64_t height = 0;           ///< kBlockAppend
  crypto::Digest digest{};            ///< kBlockAppend: chain tip hash
};

}  // namespace decloud::wal

#include "wal/wal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <mutex>
#include <stdexcept>

#include "common/byte_buffer.hpp"
#include "common/ensure.hpp"
#include "journal/wire.hpp"

namespace decloud::wal {
namespace {

namespace wire = journal::wire;

constexpr char kMagic[4] = {'D', 'C', 'W', '1'};

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  throw std::runtime_error("wal: " + what + " " + path + ": " + std::strerror(errno));
}

std::vector<std::uint8_t> encode_header(std::size_t segment, std::uint64_t fingerprint) {
  ByteWriter w;
  for (const char c : kMagic) w.write_u8(static_cast<std::uint8_t>(c));
  w.write_u8(kWalVersion);
  wire::write_varint(w, segment);
  w.write_u64(fingerprint);
  return std::move(w).take();
}

std::vector<std::uint8_t> encode_record(const Record& record) {
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(record.kind));
  switch (record.kind) {
    case RecordKind::kBid:
      wire::write_varint(w, record.input_seq);
      w.write_u8(record.is_offer ? 1 : 0);
      w.write_bytes(record.payload);
      break;
    case RecordKind::kTick:
      wire::write_varint(w, record.input_seq);
      w.write_i64(record.now);
      w.write_u8(record.reason);
      wire::write_varint(w, record.submissions);
      break;
    case RecordKind::kClockAdvance:
      wire::write_varint(w, record.input_seq);
      wire::write_varint(w, record.ticks);
      break;
    case RecordKind::kFlush:
      wire::write_varint(w, record.input_seq);
      break;
    case RecordKind::kBlockAppend:
      wire::write_varint(w, record.shard);
      wire::write_varint(w, record.height);
      for (const std::uint8_t byte : record.digest) w.write_u8(byte);
      break;
  }
  return std::move(w).take();
}

Record decode_record(std::span<const std::uint8_t> payload, std::uint64_t segment) {
  ByteReader r(payload);
  Record record;
  record.segment = segment;
  const std::uint8_t kind = wire::read_u8(r);
  wire::check(kind < kNumRecordKinds, "wal record kind out of range");
  record.kind = static_cast<RecordKind>(kind);
  switch (record.kind) {
    case RecordKind::kBid:
      record.input_seq = wire::read_varint(r);
      record.is_offer = wire::read_u8(r) != 0;
      record.payload = wire::read_blob(r);
      break;
    case RecordKind::kTick:
      record.input_seq = wire::read_varint(r);
      record.now = wire::read_i64(r);
      record.reason = wire::read_u8(r);
      record.submissions = wire::read_varint(r);
      break;
    case RecordKind::kClockAdvance:
      record.input_seq = wire::read_varint(r);
      record.ticks = wire::read_varint(r);
      break;
    case RecordKind::kFlush:
      record.input_seq = wire::read_varint(r);
      break;
    case RecordKind::kBlockAppend:
      record.shard = wire::read_varint(r);
      record.height = wire::read_varint(r);
      for (std::uint8_t& byte : record.digest) byte = wire::read_u8(r);
      break;
  }
  wire::check(r.exhausted(), "wal record has trailing bytes");
  return record;
}

void write_all(int fd, std::span<const std::uint8_t> bytes, const std::string& path) {
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write failed for", path);
    }
    written += static_cast<std::size_t>(n);
  }
}

void append_frame(std::vector<std::uint8_t>& out, std::span<const std::uint8_t> payload) {
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  out.push_back(static_cast<std::uint8_t>(len & 0xff));
  out.push_back(static_cast<std::uint8_t>((len >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((len >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((len >> 24) & 0xff));
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint32_t crc = wire::crc32(payload);
  out.push_back(static_cast<std::uint8_t>(crc & 0xff));
  out.push_back(static_cast<std::uint8_t>((crc >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((crc >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((crc >> 24) & 0xff));
}

std::uint32_t read_u32_le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) throw_errno("open directory failed for", dir);
  (void)::fsync(fd);
  ::close(fd);
}

}  // namespace

std::string segment_file_name(std::size_t segment) {
  if (segment == 0) return "control.dcw";
  return "shard" + std::to_string(segment - 1) + ".dcw";
}

SegmentContents read_segment(const std::string& path, std::size_t expected_segment,
                             std::uint64_t fingerprint) {
  std::ifstream in(path, std::ios::binary);
  wire::check(in.good(), "wal segment file missing or unreadable");
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());

  SegmentContents contents;
  std::size_t pos = 0;
  bool saw_header = false;
  while (true) {
    // A frame needs 4 (len) + payload + 4 (crc) bytes; anything shorter at
    // the tail is a torn write and truncates the segment here.
    if (bytes.size() - pos < 4) break;
    const std::uint32_t len = read_u32_le(bytes.data() + pos);
    if (bytes.size() - pos - 4 < static_cast<std::size_t>(len) + 4) break;
    const std::span<const std::uint8_t> payload(bytes.data() + pos + 4, len);
    const std::uint32_t crc = read_u32_le(bytes.data() + pos + 4 + len);
    if (wire::crc32(payload) != crc) break;  // bit-flipped tail: valid prefix wins
    // From here the frame is intact: parse failures are real corruption.
    if (!saw_header) {
      ByteReader r(payload);
      for (const char c : kMagic) {
        wire::check(wire::read_u8(r) == static_cast<std::uint8_t>(c), "wal segment bad magic");
      }
      wire::check(wire::read_u8(r) == kWalVersion, "wal segment version unsupported");
      wire::check(wire::read_varint(r) == expected_segment, "wal segment index mismatch");
      wire::check(wire::read_u64(r) == fingerprint,
                  "wal config fingerprint mismatch (run configuration differs from the "
                  "one that wrote this WAL)");
      wire::check(r.exhausted(), "wal segment header has trailing bytes");
      saw_header = true;
    } else {
      contents.records.push_back(decode_record(payload, expected_segment));
    }
    pos += 4 + len + 4;
    contents.valid_bytes = pos;
  }
  wire::check(saw_header, "wal segment has no intact header frame");
  return contents;
}

WalContents load_wal(const std::string& dir, std::size_t num_shards, std::uint64_t fingerprint) {
  WalContents contents;
  contents.valid_bytes.resize(num_shards + 1, 0);
  for (std::size_t segment = 0; segment <= num_shards; ++segment) {
    SegmentContents seg =
        read_segment(dir + "/" + segment_file_name(segment), segment, fingerprint);
    contents.valid_bytes[segment] = seg.valid_bytes;
    for (Record& record : seg.records) {
      if (is_input(record.kind)) {
        contents.inputs.push_back(std::move(record));
      } else {
        const auto key = std::make_pair(record.shard, record.height);
        const auto [it, inserted] = contents.blocks.emplace(key, record.digest);
        // A recovered run legitimately re-logs blocks its pre-crash drain
        // already fingerprinted; only a DIFFERENT digest at one height is
        // corruption.
        wire::check(inserted || it->second == record.digest,
                    "wal block fingerprints disagree at one (shard, height)");
      }
    }
  }
  std::stable_sort(contents.inputs.begin(), contents.inputs.end(),
                   [](const Record& a, const Record& b) { return a.input_seq < b.input_seq; });
  for (std::size_t i = 0; i < contents.inputs.size(); ++i) {
    wire::check(contents.inputs[i].input_seq >= i, "wal input sequence has a duplicate");
    wire::check(contents.inputs[i].input_seq <= i, "wal input sequence has a gap");
  }
  contents.next_input_seq = contents.inputs.size();
  return contents;
}

WalWriter::WalWriter(PassKey, const Options& options, bool fresh,
                     std::span<const std::uint64_t> valid_bytes, std::uint64_t next_input_seq)
    : sync_(options.sync), next_input_seq_(next_input_seq) {
  DECLOUD_EXPECTS(options.num_shards >= 1);
  ::mkdir(options.dir.c_str(), 0777);  // EEXIST is fine; open() below reports real failures
  for (std::size_t segment = 0; segment <= options.num_shards; ++segment) {
    auto seg = std::make_unique<Segment>();
    seg->path = options.dir + "/" + segment_file_name(segment);
    const int flags = fresh ? (O_WRONLY | O_CREAT | O_TRUNC) : (O_WRONLY | O_CREAT);
    seg->fd = ::open(seg->path.c_str(), flags, 0644);
    if (seg->fd < 0) throw_errno("open failed for", seg->path);
    if (fresh) {
      std::vector<std::uint8_t> frame;
      append_frame(frame, encode_header(segment, options.fingerprint));
      write_all(seg->fd, frame, seg->path);
      if (sync_) (void)::fsync(seg->fd);
    } else {
      // Drop any torn tail so appended frames follow the last intact one.
      DECLOUD_EXPECTS_MSG(segment < valid_bytes.size(), "wal attach needs per-segment offsets");
      if (::ftruncate(seg->fd, static_cast<off_t>(valid_bytes[segment])) != 0) {
        throw_errno("ftruncate failed for", seg->path);
      }
      if (::lseek(seg->fd, 0, SEEK_END) < 0) throw_errno("lseek failed for", seg->path);
      if (sync_) (void)::fsync(seg->fd);
    }
    segments_.push_back(std::move(seg));
  }
  if (sync_) fsync_dir(options.dir);
}

std::unique_ptr<WalWriter> WalWriter::create(const Options& options) {
  return std::make_unique<WalWriter>(PassKey{}, options, /*fresh=*/true,
                                     std::span<const std::uint64_t>{}, /*next_input_seq=*/0);
}

std::unique_ptr<WalWriter> WalWriter::attach(const Options& options,
                                             std::span<const std::uint64_t> valid_bytes,
                                             std::uint64_t next_input_seq) {
  return std::make_unique<WalWriter>(PassKey{}, options, /*fresh=*/false, valid_bytes,
                                     next_input_seq);
}

WalWriter::~WalWriter() {
  for (auto& seg : segments_) {
    if (seg->fd >= 0) ::close(seg->fd);
  }
}

void WalWriter::write_frame(Segment& segment, std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> frame;
  append_frame(frame, payload);
  const std::lock_guard<dsched::mutex> lock(segment.mutex);
  write_all(segment.fd, frame, segment.path);
  if (sync_) (void)::fsync(segment.fd);
}

std::uint64_t WalWriter::append_bid(std::size_t segment, bool is_offer,
                                    std::span<const std::uint8_t> payload) {
  DECLOUD_EXPECTS(segment < segments_.size());
  Record record;
  record.kind = RecordKind::kBid;
  record.is_offer = is_offer;
  record.payload.assign(payload.begin(), payload.end());
  const std::lock_guard<dsched::mutex> lock(input_mutex_);
  record.input_seq = next_input_seq_++;
  write_frame(*segments_[segment], encode_record(record));
  return record.input_seq;
}

std::uint64_t WalWriter::append_tick(Time now, std::uint8_t reason, std::uint64_t submissions) {
  Record record;
  record.kind = RecordKind::kTick;
  record.now = now;
  record.reason = reason;
  record.submissions = submissions;
  const std::lock_guard<dsched::mutex> lock(input_mutex_);
  record.input_seq = next_input_seq_++;
  write_frame(*segments_[0], encode_record(record));
  return record.input_seq;
}

std::uint64_t WalWriter::append_clock_advance(std::uint64_t ticks) {
  Record record;
  record.kind = RecordKind::kClockAdvance;
  record.ticks = ticks;
  const std::lock_guard<dsched::mutex> lock(input_mutex_);
  record.input_seq = next_input_seq_++;
  write_frame(*segments_[0], encode_record(record));
  return record.input_seq;
}

std::uint64_t WalWriter::append_flush() {
  Record record;
  record.kind = RecordKind::kFlush;
  const std::lock_guard<dsched::mutex> lock(input_mutex_);
  record.input_seq = next_input_seq_++;
  write_frame(*segments_[0], encode_record(record));
  return record.input_seq;
}

void WalWriter::append_block(std::size_t shard, std::uint64_t height,
                             const crypto::Digest& digest) {
  DECLOUD_EXPECTS(shard + 1 < segments_.size());
  Record record;
  record.kind = RecordKind::kBlockAppend;
  record.shard = shard;
  record.height = height;
  record.digest = digest;
  write_frame(*segments_[shard + 1], encode_record(record));
}

std::uint64_t WalWriter::next_input_seq() const {
  const std::lock_guard<dsched::mutex> lock(input_mutex_);
  return next_input_seq_;
}

}  // namespace decloud::wal

// Durable-market composition: snapshot payloads, recovery, and the
// resume drivers (DESIGN.md §3k).
//
// The low-level pieces live one directory up (wal/wal.hpp framing and
// segments, wal/snapshot.hpp atomic snapshot files); this layer knows the
// ENGINE — it composes the snapshot payload out of the engine, scheduler,
// and stream state blobs, replays a WAL tail through the normal submit and
// tick paths, and then continues the trace drive from exactly where the
// dead process stopped.  The byte-identity contract: a crashed-and-
// recovered run's EngineReport, journal bytes, and metrics exports equal
// an uninterrupted run's at any thread count, chaos included.
//
// What recovery does, in order:
//   1. load_wal: every segment's valid prefix, inputs merged by input_seq;
//   2. restore the latest intact snapshot, if any (else start fresh);
//   3. replay the input tail PAST the snapshot's watermark through the
//      normal code paths, with the WAL writer detached (replay must not
//      re-log) and no crash injector (a recovered run must get past the
//      site that killed its predecessor);
//   4. cross-check recovered chain tips against the WAL's block
//      fingerprints;
//   5. re-attach the writer in append mode (truncating torn tails) and
//      resume the drive loop from the recovered position.
//
// Durable mode requires MarketConfig::reuse_candidate_index == false:
// snapshots do not carry the producer's cross-round index cache, and the
// cache-off contract is what guarantees bit-identical outcomes either
// way.  The drivers assert this.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "engine/driver.hpp"
#include "fault/injector.hpp"
#include "stream/stream_driver.hpp"
#include "wal/snapshot.hpp"
#include "wal/wal.hpp"

namespace decloud::wal {

/// Durable-mode parameters shared by both drivers.
struct DurableOptions {
  std::string wal_dir;
  /// Snapshot after every N scheduler epochs (batch: submit ticks;
  /// stream: micro-epoch closes).  0 = never snapshot; recovery then
  /// replays the whole WAL from a fresh engine.
  std::uint64_t snapshot_every = 0;
  /// Recover from wal_dir (snapshot + tail replay) instead of starting a
  /// fresh WAL.
  bool recover = false;
  /// fsync every WAL append (WalWriter::Options::sync).
  bool sync = true;
  /// Hash of the run configuration (config_fingerprint); checked against
  /// every segment header and snapshot on recovery.
  std::uint64_t fingerprint = 0;
  /// The --crash-plan injector (not owned, may be null).  Attached to the
  /// engine only for the LIVE portion of the run, never during replay.
  const fault::FaultInjector* crash = nullptr;
};

/// FNV-1a (64-bit) over a canonical configuration string.  The driver
/// builds the string from every flag that shapes results (workload,
/// shards, seeds, fault plan, mode, triggers — NOT thread count, which
/// may legitimately differ between the crashed and the recovering run,
/// and NOT the crash plan, which only the crashed run carries).
[[nodiscard]] std::uint64_t config_fingerprint(std::string_view canonical);

/// Batch-mode durable drive: engine::drive_trace plus WAL logging,
/// periodic snapshots, and (opts.recover) crash recovery.  Without a
/// wal_dir this is an error — use drive_trace instead.
engine::DriveOutcome drive_trace_durable(engine::MarketEngine& engine,
                                         engine::EpochScheduler& scheduler,
                                         const engine::TraceDriverConfig& config,
                                         const DurableOptions& opts);

/// Stream-mode durable drive: stream::drive_trace_stream plus WAL
/// logging, snapshots at micro-epoch closes, and crash recovery.
stream::StreamDriveOutcome drive_trace_stream_durable(stream::StreamingMarket& market,
                                                      const engine::TraceDriverConfig& config,
                                                      const DurableOptions& opts);

}  // namespace decloud::wal

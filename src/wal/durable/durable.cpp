#include "wal/durable/durable.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/ensure.hpp"
#include "journal/wire.hpp"
#include "ledger/codec.hpp"

namespace decloud::wal {
namespace {

namespace wire = journal::wire;

/// Snapshot payload mode tags.
constexpr std::uint8_t kBatchMode = 0;
constexpr std::uint8_t kStreamMode = 1;

/// Shared driver-side bookkeeping restored from a snapshot / advanced by
/// replay and the live loop.
struct DriveProgress {
  std::size_t done = 0;  ///< workload bids submitted so far
  std::size_t admitted = 0;
  std::size_t rejected = 0;
};

void count_admission(DriveProgress& progress, bool admitted) {
  if (admitted) {
    ++progress.admitted;
  } else {
    ++progress.rejected;
  }
}

/// Recovered chain tips must agree with whatever block fingerprints the
/// dead process managed to log.  A missing entry is fine (the crash beat
/// the block append); a disagreeing digest means replay diverged.
void verify_block_fingerprints(const engine::MarketEngine& engine, const WalContents& contents) {
  for (std::size_t s = 0; s < engine.num_shards(); ++s) {
    const ledger::Blockchain& chain = engine.shard_market(s).protocol().chain();
    const auto it = contents.blocks.find({s, chain.height()});
    wire::check(it == contents.blocks.end() || it->second == chain.tip_hash(),
                "recovered chain tip disagrees with the WAL block fingerprint");
  }
}

journal::CloseReason decode_reason(std::uint8_t reason) {
  wire::check(reason <= static_cast<std::uint8_t>(journal::CloseReason::kDrain),
              "wal tick record has an unknown close reason");
  return static_cast<journal::CloseReason>(reason);
}

/// Feeds one logged bid back through `submit` (any callable taking a
/// Request or an Offer and returning whether it was admitted).
template <typename Submit>
void replay_bid(const Record& record, DriveProgress& progress, Submit&& submit) {
  if (record.is_offer) {
    count_admission(progress, submit(ledger::decode_offer(record.payload)));
  } else {
    count_admission(progress, submit(ledger::decode_request(record.payload)));
  }
  ++progress.done;
}

void write_driver_counters(obs::MetricsSink* sink, std::size_t generated,
                           const DriveProgress& progress) {
  if (sink == nullptr) return;
  obs::MetricsRegistry& m = sink->metrics();
  m.counter("driver.bids_generated").add(generated);
  m.counter("driver.bids_admitted").add(progress.admitted);
  m.counter("driver.bids_rejected").add(progress.rejected);
}

}  // namespace

std::uint64_t config_fingerprint(std::string_view canonical) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : canonical) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

engine::DriveOutcome drive_trace_durable(engine::MarketEngine& engine,
                                         engine::EpochScheduler& scheduler,
                                         const engine::TraceDriverConfig& config,
                                         const DurableOptions& opts) {
  DECLOUD_EXPECTS_MSG(!opts.wal_dir.empty(), "durable drive needs a WAL directory");
  DECLOUD_EXPECTS_MSG(!engine.config().market.reuse_candidate_index,
                      "durable mode requires reuse_candidate_index = false (snapshots do not "
                      "carry the producer's index cache)");

  const engine::TraceStream stream = engine::make_trace_stream(config, engine.config());
  const auction::MarketSnapshot& snapshot = stream.snapshot;
  const std::vector<std::size_t>& order = stream.order;
  const std::size_t n_req = snapshot.requests.size();
  const std::size_t batch = config.bids_per_epoch == 0 ? order.size() : config.bids_per_epoch;

  DriveProgress progress;
  std::uint64_t submit_ticks = 0;  // non-drain ticks run so far
  std::size_t drain_done = 0;      // drain ticks run so far

  const WalWriter::Options wal_options{opts.wal_dir, engine.num_shards(), opts.fingerprint,
                                       opts.sync};
  std::unique_ptr<WalWriter> writer;

  if (!opts.recover) {
    writer = WalWriter::create(wal_options);
  } else {
    const WalContents contents = load_wal(opts.wal_dir, engine.num_shards(), opts.fingerprint);
    std::uint64_t watermark = 0;
    if (const std::optional<std::string> path = find_latest_snapshot(opts.wal_dir)) {
      const SnapshotFile snap = read_snapshot(*path, opts.fingerprint);
      ByteReader r(snap.payload);
      wire::check(wire::read_u8(r) == kBatchMode, "snapshot was written by a stream-mode run");
      watermark = wire::read_u64(r);
      submit_ticks = wire::read_u64(r);
      progress.done = wire::read_u64(r);
      progress.admitted = wire::read_u64(r);
      progress.rejected = wire::read_u64(r);
      wire::check(wire::read_u64(r) == order.size(),
                  "snapshot workload size differs from the configured run");
      engine.restore_state(r);
      scheduler.restore_state(r);
      wire::check(r.exhausted(), "snapshot payload has trailing bytes");
    }
    // Replay the tail through the normal paths, writer detached.
    for (const Record& record : contents.inputs) {
      if (record.input_seq < watermark) continue;
      switch (record.kind) {
        case RecordKind::kBid:
          replay_bid(record, progress, [&](const auto& bid) {
            return engine.submit(bid).admitted();
          });
          break;
        case RecordKind::kTick: {
          const journal::CloseReason reason = decode_reason(record.reason);
          scheduler.tick(record.now, reason, record.submissions);
          if (reason == journal::CloseReason::kDrain) {
            ++drain_done;
          } else {
            ++submit_ticks;
          }
          break;
        }
        default:
          throw wire::decode_error("batch-mode WAL contains stream-mode records");
      }
    }
    verify_block_fingerprints(engine, contents);
    writer = WalWriter::attach(wal_options, contents.valid_bytes, contents.next_input_seq);
  }

  engine.set_wal_writer(writer.get());
  scheduler.set_wal_writer(writer.get());
  engine.set_crash_injector(opts.crash);

  const auto maybe_snapshot = [&] {
    if (opts.snapshot_every == 0 || scheduler.epochs() % opts.snapshot_every != 0) return;
    ByteWriter w;
    w.write_u8(kBatchMode);
    w.write_u64(writer->next_input_seq());
    w.write_u64(submit_ticks);
    w.write_u64(progress.done);
    w.write_u64(progress.admitted);
    w.write_u64(progress.rejected);
    w.write_u64(order.size());
    engine.encode_state(w);
    scheduler.encode_state(w);
    write_snapshot(opts.wal_dir, scheduler.epochs(), w.bytes(), opts.fingerprint, opts.crash);
  };

  const auto submit_one = [&](std::size_t i) {
    const engine::EngineAdmission admission = i < n_req
                                                  ? engine.submit(snapshot.requests[i])
                                                  : engine.submit(snapshot.offers[i - n_req]);
    count_admission(progress, admission.admitted());
  };

  // Resume (or begin) the drive_trace loop.  Batch boundaries are a pure
  // function of the submit-tick count, so a crash mid-batch resumes the
  // partial batch and ticks at exactly the uninterrupted boundary.
  while (progress.done < order.size()) {
    const std::size_t tick_base = submit_ticks * batch;
    const std::size_t stop = std::min(order.size(), tick_base + batch);
    for (; progress.done < stop; ++progress.done) submit_one(order[progress.done]);
    const std::uint64_t submitted = stop - tick_base;
    const journal::CloseReason reason = config.bids_per_epoch != 0 && submitted == batch
                                            ? journal::CloseReason::kBidCount
                                            : journal::CloseReason::kFlush;
    const Time now = config.start_time +
                     static_cast<Time>(scheduler.epochs()) * config.epoch_interval;
    scheduler.tick(now, reason, submitted);
    ++submit_ticks;
    maybe_snapshot();
  }
  if (drain_done < config.drain_epochs) {
    const Time now = config.start_time +
                     static_cast<Time>(scheduler.epochs()) * config.epoch_interval;
    (void)scheduler.run(config.drain_epochs - drain_done, now, config.epoch_interval);
  }

  engine::DriveOutcome outcome;
  outcome.bids_generated = order.size();
  outcome.bids_admitted = progress.admitted;
  outcome.bids_rejected = progress.rejected;
  outcome.report = scheduler.report();
  write_driver_counters(scheduler.sink(), order.size(), progress);

  engine.set_wal_writer(nullptr);
  scheduler.set_wal_writer(nullptr);
  engine.set_crash_injector(nullptr);
  return outcome;
}

stream::StreamDriveOutcome drive_trace_stream_durable(stream::StreamingMarket& market,
                                                      const engine::TraceDriverConfig& config,
                                                      const DurableOptions& opts) {
  DECLOUD_EXPECTS_MSG(!opts.wal_dir.empty(), "durable drive needs a WAL directory");
  DECLOUD_EXPECTS_MSG(config.start_time == market.config().start_time &&
                          config.epoch_interval == market.config().epoch_interval &&
                          config.drain_epochs == market.config().drain_epochs,
                      "driver timing must match the StreamConfig it feeds");
  engine::MarketEngine& engine = market.market_engine();
  DECLOUD_EXPECTS_MSG(!engine.config().market.reuse_candidate_index,
                      "durable mode requires reuse_candidate_index = false (snapshots do not "
                      "carry the producer's index cache)");

  const engine::TraceStream stream = engine::make_trace_stream(config, market.config().engine);
  const auction::MarketSnapshot& snapshot = stream.snapshot;
  const std::vector<std::size_t>& order = stream.order;
  const std::size_t n_req = snapshot.requests.size();

  DriveProgress progress;
  bool flushed = false;

  const WalWriter::Options wal_options{opts.wal_dir, engine.num_shards(), opts.fingerprint,
                                       opts.sync};
  std::unique_ptr<WalWriter> writer;

  if (!opts.recover) {
    writer = WalWriter::create(wal_options);
  } else {
    const WalContents contents = load_wal(opts.wal_dir, engine.num_shards(), opts.fingerprint);
    std::uint64_t watermark = 0;
    if (const std::optional<std::string> path = find_latest_snapshot(opts.wal_dir)) {
      const SnapshotFile snap = read_snapshot(*path, opts.fingerprint);
      ByteReader r(snap.payload);
      wire::check(wire::read_u8(r) == kStreamMode, "snapshot was written by a batch-mode run");
      watermark = wire::read_u64(r);
      progress.done = wire::read_u64(r);
      progress.admitted = wire::read_u64(r);
      progress.rejected = wire::read_u64(r);
      wire::check(wire::read_u64(r) == order.size(),
                  "snapshot workload size differs from the configured run");
      engine.restore_state(r);
      market.scheduler().restore_state(r);
      market.restore_state(r);
      wire::check(r.exhausted(), "snapshot payload has trailing bytes");
    }
    // Replay the tail.  Micro-epoch closes are not logged — they re-fire
    // when the logged bids/clock advances cross the triggers again.  A
    // crash during the post-flush drain discards the partial drain work:
    // replay rebuilds the post-flush state and the resume drain re-runs
    // the whole (deterministic) tail, re-logging identical block
    // fingerprints (load_wal tolerates the equal duplicates).
    for (const Record& record : contents.inputs) {
      if (record.input_seq < watermark) continue;
      switch (record.kind) {
        case RecordKind::kBid:
          replay_bid(record, progress, [&](const auto& bid) {
            return market.submit(bid).engine.admitted();
          });
          break;
        case RecordKind::kClockAdvance:
          (void)market.advance_clock(record.ticks);
          break;
        case RecordKind::kFlush:
          (void)market.flush();
          flushed = true;
          break;
        default:
          throw wire::decode_error("stream-mode WAL contains batch tick records");
      }
    }
    verify_block_fingerprints(engine, contents);
    writer = WalWriter::attach(wal_options, contents.valid_bytes, contents.next_input_seq);
  }

  engine.set_wal_writer(writer.get());
  market.set_wal_writer(writer.get());
  engine.set_crash_injector(opts.crash);

  const auto maybe_snapshot = [&] {
    if (opts.snapshot_every == 0 ||
        static_cast<std::uint64_t>(market.micro_epochs()) % opts.snapshot_every != 0) {
      return;
    }
    ByteWriter w;
    w.write_u8(kStreamMode);
    w.write_u64(writer->next_input_seq());
    w.write_u64(progress.done);
    w.write_u64(progress.admitted);
    w.write_u64(progress.rejected);
    w.write_u64(order.size());
    engine.encode_state(w);
    market.scheduler().encode_state(w);
    market.encode_state(w);
    write_snapshot(opts.wal_dir, market.micro_epochs(), w.bytes(), opts.fingerprint, opts.crash);
  };

  while (progress.done < order.size()) {
    const std::size_t i = order[progress.done];
    const stream::StreamAdmission admission = i < n_req
                                                  ? market.submit(snapshot.requests[i])
                                                  : market.submit(snapshot.offers[i - n_req]);
    count_admission(progress, admission.engine.admitted());
    // done must cover the bid that TRIGGERED the close before the snapshot
    // captures it, or recovery resubmits that bid.
    ++progress.done;
    if (admission.closed_micro_epoch) maybe_snapshot();
  }
  if (!flushed) (void)market.flush();

  stream::StreamDriveOutcome outcome;
  outcome.drive.bids_generated = order.size();
  outcome.micro_epochs = market.micro_epochs();
  outcome.drain_epochs = market.drain();
  outcome.drive.bids_admitted = progress.admitted;
  outcome.drive.bids_rejected = progress.rejected;
  outcome.drive.report = market.report();
  write_driver_counters(market.scheduler().sink(), order.size(), progress);

  engine.set_wal_writer(nullptr);
  market.set_wal_writer(nullptr);
  engine.set_crash_injector(nullptr);
  return outcome;
}

}  // namespace decloud::wal

// Per-shard write-ahead log ("DCW1") for the durable market.
//
// Layout: one directory holds `control.dcw` (segment 0: unroutable bids,
// batch ticks, stream clock advances/flushes) plus `shard<N>.dcw`
// (segment N+1: bids routed to shard N and that shard's block-append
// fingerprints).  Every record is CRC-framed:
//
//   u32 payload_len (LE) | payload | u32 crc32(payload)
//
// and frame 0 of every segment is a header: "DCW1" magic, u8 version,
// varint segment index, u64 config fingerprint.  The fingerprint hashes
// the run configuration, so replaying a WAL under a different config
// fails loudly instead of diverging quietly.
//
// Input records (bid/tick/clock/flush) carry a dense global `input_seq`
// assigned under the writer's input mutex; the log-before-apply ordering
// plus the engine's single-producer discipline make input_seq order equal
// apply order, which is all replay needs.  Block records are written by
// shard round threads to their own segment without the global mutex.
//
// Reading uses valid-prefix-wins semantics per segment: a torn tail (a
// frame cut short or failing its CRC) truncates the segment at the last
// good frame.  A frame whose CRC MATCHES but whose payload does not parse
// is real corruption and throws journal::wire::decode_error — as does a
// gap or duplicate in the merged input sequence, or two block records
// disagreeing about the digest at one (shard, height).  See DESIGN.md §3k.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "dsched/sync.hpp"
#include "wal/record.hpp"

namespace decloud::wal {

inline constexpr std::uint8_t kWalVersion = 1;

/// File name of a segment inside the WAL directory: "control.dcw" for
/// segment 0, "shard<N>.dcw" for segment N+1.
[[nodiscard]] std::string segment_file_name(std::size_t segment);

/// One segment's decoded records plus the byte offset of the end of its
/// last intact frame (what a re-attaching writer truncates to).
struct SegmentContents {
  std::vector<Record> records;
  std::uint64_t valid_bytes = 0;
};

/// Decodes one segment file.  Throws journal::wire::decode_error when the
/// header is malformed, the segment index or fingerprint mismatch, or a
/// CRC-valid frame fails to parse; a torn tail merely truncates.
[[nodiscard]] SegmentContents read_segment(const std::string& path, std::size_t expected_segment,
                                           std::uint64_t fingerprint);

/// A whole WAL directory, merged for replay.
struct WalContents {
  /// Input records from every segment, sorted by input_seq (dense from 0).
  std::vector<Record> inputs;
  /// Block fingerprints: (shard, height) -> chain tip digest.
  std::map<std::pair<std::uint64_t, std::uint64_t>, crypto::Digest> blocks;
  /// Per-segment valid prefix length, indexed by segment (0..num_shards).
  std::vector<std::uint64_t> valid_bytes;
  /// One past the highest input_seq seen (0 for an empty WAL).
  std::uint64_t next_input_seq = 0;
};

/// Reads and merges all `1 + num_shards` segments of `dir`.  Throws
/// journal::wire::decode_error on any per-segment error, a missing
/// segment file, or a gap/duplicate in the merged input sequence.
[[nodiscard]] WalContents load_wal(const std::string& dir, std::size_t num_shards,
                                   std::uint64_t fingerprint);

/// Append-side of the WAL.  Thread safety matches the engine's contract:
/// input appends (bid/tick/clock/flush) serialize on one internal mutex
/// (the caller is the single producer thread anyway; the mutex makes the
/// seq assignment safe even if that ever changes), block appends take
/// only their segment's mutex and may run concurrently from shard
/// threads.
class WalWriter {
 public:
  struct Options {
    std::string dir;
    std::size_t num_shards = 1;
    std::uint64_t fingerprint = 0;
    /// fsync after every append.  Keeps the log durable across power
    /// loss; process-kill chaos survives either way (the page cache
    /// outlives the process).  Off is the bench's no-fsync baseline.
    bool sync = true;
  };

  /// Creates a fresh WAL: truncates/creates every segment and writes the
  /// header frames.  Throws std::runtime_error on filesystem errors.
  [[nodiscard]] static std::unique_ptr<WalWriter> create(const Options& options);

  /// Re-attaches to an existing WAL after recovery: truncates each
  /// segment to `valid_bytes` (dropping any torn tail so the resumed
  /// byte stream stays parseable) and appends; input sequence numbers
  /// continue at `next_input_seq`.
  [[nodiscard]] static std::unique_ptr<WalWriter> attach(
      const Options& options, std::span<const std::uint64_t> valid_bytes,
      std::uint64_t next_input_seq);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Constructor is public only so make_unique can reach it; the PassKey
  /// keeps construction confined to create()/attach(), which name the
  /// fresh-vs-resume intent.
  class PassKey {
    friend class WalWriter;
    PassKey() = default;
  };
  WalWriter(PassKey, const Options& options, bool fresh,
            std::span<const std::uint64_t> valid_bytes, std::uint64_t next_input_seq);

  /// Appends one bid.  `segment` is 0 for unroutable bids, shard+1
  /// otherwise; `payload` is the ledger codec encoding.  Returns the
  /// record's input_seq.
  std::uint64_t append_bid(std::size_t segment, bool is_offer,
                           std::span<const std::uint8_t> payload);
  /// Appends one batch-mode scheduler tick (control segment).
  std::uint64_t append_tick(Time now, std::uint8_t reason, std::uint64_t submissions);
  /// Appends a stream-mode clock advance (control segment).
  std::uint64_t append_clock_advance(std::uint64_t ticks);
  /// Appends a stream-mode flush (control segment).
  std::uint64_t append_flush();
  /// Appends a block fingerprint to shard `shard`'s segment.  No
  /// input_seq; safe to call from that shard's round thread.
  void append_block(std::size_t shard, std::uint64_t height, const crypto::Digest& digest);

  /// The input_seq the next input append will receive.
  [[nodiscard]] std::uint64_t next_input_seq() const;
  [[nodiscard]] std::size_t num_shards() const { return segments_.size() - 1; }

 private:
  struct Segment {
    std::string path;
    int fd = -1;
    dsched::mutex mutex;
  };

  void write_frame(Segment& segment, std::span<const std::uint8_t> payload);

  bool sync_;
  std::vector<std::unique_ptr<Segment>> segments_;
  mutable dsched::mutex input_mutex_;
  std::uint64_t next_input_seq_ = 0;
};

}  // namespace decloud::wal

#include "wal/snapshot.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string_view>

#include "common/byte_buffer.hpp"
#include "common/ensure.hpp"
#include "journal/wire.hpp"

namespace decloud::wal {
namespace {

namespace wire = journal::wire;

constexpr char kMagic[4] = {'D', 'C', 'S', '1'};

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  throw std::runtime_error("snapshot: " + what + " " + path + ": " + std::strerror(errno));
}

std::string snapshot_file_name(std::uint64_t epochs) {
  return "snapshot-" + std::to_string(epochs) + ".dcs";
}

/// Parses "snapshot-<N>.dcs"; nullopt for anything else (temp files,
/// foreign names, non-numeric suffixes).
std::optional<std::uint64_t> parse_snapshot_name(const std::string& name) {
  constexpr std::string_view kPrefix = "snapshot-";
  constexpr std::string_view kSuffix = ".dcs";
  if (name.size() <= kPrefix.size() + kSuffix.size()) return std::nullopt;
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return std::nullopt;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) != 0) {
    return std::nullopt;
  }
  std::uint64_t epochs = 0;
  for (std::size_t i = kPrefix.size(); i < name.size() - kSuffix.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return std::nullopt;
    epochs = epochs * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return epochs;
}

}  // namespace

void write_snapshot(const std::string& dir, std::uint64_t epochs,
                    std::span<const std::uint8_t> payload, std::uint64_t fingerprint,
                    const fault::FaultInjector* crash) {
  DECLOUD_EXPECTS_MSG(!dir.empty(), "snapshot needs a directory");
  ByteWriter w;
  for (const char c : kMagic) w.write_u8(static_cast<std::uint8_t>(c));
  w.write_u8(kSnapshotVersion);
  w.write_u64(fingerprint);
  w.write_u64(epochs);
  w.write_bytes(payload);
  w.write_u32(wire::crc32(payload));
  const std::vector<std::uint8_t>& bytes = w.bytes();

  const std::string final_path = dir + "/" + snapshot_file_name(epochs);
  const std::string tmp_path = final_path + ".tmp";
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("open failed for", tmp_path);
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_errno("write failed for", tmp_path);
    }
    written += static_cast<std::size_t>(n);
  }
  (void)::fsync(fd);
  ::close(fd);

  fault::crash_if(crash, fault::CrashSite::kMidSnapshot, epochs);

  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    throw_errno("rename failed for", tmp_path);
  }
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    (void)::fsync(dir_fd);
    ::close(dir_fd);
  }
}

std::optional<std::string> find_latest_snapshot(const std::string& dir) {
  std::optional<std::uint64_t> best;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::optional<std::uint64_t> epochs = parse_snapshot_name(entry.path().filename());
    if (epochs && (!best || *epochs > *best)) best = epochs;
  }
  if (!best) return std::nullopt;
  return dir + "/" + snapshot_file_name(*best);
}

SnapshotFile read_snapshot(const std::string& path, std::uint64_t fingerprint) {
  std::ifstream in(path, std::ios::binary);
  wire::check(in.good(), "snapshot file missing or unreadable");
  const std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                        std::istreambuf_iterator<char>());
  ByteReader r(bytes);
  for (const char c : kMagic) {
    wire::check(wire::read_u8(r) == static_cast<std::uint8_t>(c), "snapshot bad magic");
  }
  wire::check(wire::read_u8(r) == kSnapshotVersion, "snapshot version unsupported");
  wire::check(wire::read_u64(r) == fingerprint,
              "snapshot config fingerprint mismatch (run configuration differs from the "
              "one that wrote it)");
  SnapshotFile snapshot;
  snapshot.epochs = wire::read_u64(r);
  snapshot.payload = wire::read_blob(r);
  wire::check(wire::read_u32(r) == wire::crc32(snapshot.payload), "snapshot payload CRC mismatch");
  wire::check(r.exhausted(), "snapshot has trailing bytes");
  return snapshot;
}

}  // namespace decloud::wal

// Deterministic engine snapshots ("DCS1") for the durable market.
//
// A snapshot is an opaque payload (composed by wal/durable) captured at a
// quiescent point — after a tick, with every shard queue and mempool
// empty — and written atomically: temp file, fsync, rename to
// `snapshot-<epochs>.dcs`, fsync the directory.  A crash between the temp
// fsync and the rename (CrashSite::kMidSnapshot) leaves only a stray
// `.tmp` file, which find_latest_snapshot ignores; recovery then uses the
// previous snapshot (or none) and a longer WAL tail.  Snapshots are an
// optimization — replay correctness never depends on one existing.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fault/crash.hpp"

namespace decloud::wal {

inline constexpr std::uint8_t kSnapshotVersion = 1;

/// A decoded snapshot file.
struct SnapshotFile {
  std::uint64_t epochs = 0;  ///< scheduler epochs at capture time
  std::vector<std::uint8_t> payload;
};

/// Writes `snapshot-<epochs>.dcs` into `dir` atomically.  `crash` is the
/// --crash-plan injector (may be null); CrashSite::kMidSnapshot fires
/// between the temp-file fsync and the rename, with index = epochs.
void write_snapshot(const std::string& dir, std::uint64_t epochs,
                    std::span<const std::uint8_t> payload, std::uint64_t fingerprint,
                    const fault::FaultInjector* crash);

/// Path of the highest-epoch `snapshot-<N>.dcs` in `dir`, or nullopt when
/// none exists.  Stray temp files and unrelated names are ignored.
[[nodiscard]] std::optional<std::string> find_latest_snapshot(const std::string& dir);

/// Reads and validates one snapshot file.  Throws
/// journal::wire::decode_error on truncation, bad magic/CRC, or a config
/// fingerprint mismatch.
[[nodiscard]] SnapshotFile read_snapshot(const std::string& path, std::uint64_t fingerprint);

}  // namespace decloud::wal

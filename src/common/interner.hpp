// String interner backing the open-ended resource-type space.
//
// The paper's bidding language treats any property — CPU, RAM, disk,
// latency, reputation, SGX presence — as a resource type k ∈ K.  The set is
// open-ended, so types are interned strings: cheap integer handles with a
// registry for names.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace decloud {

/// Bidirectional string ↔ dense-index mapping.  Indices are stable for the
/// lifetime of the interner and start at 0.
class Interner {
  /// Transparent hash so lookups accept string_view without materializing a
  /// std::string (resource types are looked up on every bid validation).
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

 public:
  /// Returns the index for `name`, interning it on first sight.
  std::uint32_t intern(std::string_view name);

  /// Returns the index for `name` if already interned, or npos.
  [[nodiscard]] std::uint32_t find(std::string_view name) const;

  /// Name for a previously returned index.  Precondition: index < size().
  [[nodiscard]] const std::string& name(std::uint32_t index) const;

  [[nodiscard]] std::size_t size() const { return names_.size(); }

  static constexpr std::uint32_t npos = UINT32_MAX;

 private:
  std::unordered_map<std::string, std::uint32_t, StringHash, std::equal_to<>> index_;
  std::vector<std::string> names_;
};

}  // namespace decloud

// Hex encoding/decoding for digests, keys and block ids in logs and tests.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace decloud {

/// Lower-case hex encoding of arbitrary bytes.
[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> bytes);

/// Decodes a hex string (case-insensitive).  Throws precondition_error on
/// odd length or non-hex characters.
[[nodiscard]] std::vector<std::uint8_t> from_hex(std::string_view hex);

}  // namespace decloud

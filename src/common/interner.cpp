#include "common/interner.hpp"

#include "common/ensure.hpp"

namespace decloud {

std::uint32_t Interner::intern(std::string_view name) {
  if (const auto it = index_.find(name); it != index_.end()) return it->second;
  const auto idx = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), idx);
  return idx;
}

std::uint32_t Interner::find(std::string_view name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? npos : it->second;
}

const std::string& Interner::name(std::uint32_t index) const {
  DECLOUD_EXPECTS(index < names_.size());
  return names_[index];
}

}  // namespace decloud

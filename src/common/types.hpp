// Fundamental domain types shared across all DeCloud modules.
#pragma once

#include <cstdint>

#include "common/strong_id.hpp"

namespace decloud {

// ---------------------------------------------------------------------------
// Identifier spaces (Table I of the paper).
// ---------------------------------------------------------------------------

struct ClientTag {};
struct ProviderTag {};
struct RequestTag {};
struct OfferTag {};
struct NodeTag {};
struct BlockTag {};
struct ContractTag {};

/// Identifies a client i ∈ N.
using ClientId = StrongId<ClientTag>;
/// Identifies a provider j ∈ M.
using ProviderId = StrongId<ProviderTag>;
/// Identifies a single request r (one container a client needs to run).
using RequestId = StrongId<RequestTag>;
/// Identifies a single offer o (one computational device).
using OfferId = StrongId<OfferTag>;
/// Identifies a node (miner or participant) in the P2P simulation.
using NodeId = StrongId<NodeTag>;
/// Identifies a block β ∈ B.
using BlockId = StrongId<BlockTag>;
/// Identifies a smart-contract agreement instance.
using ContractId = StrongId<ContractTag>;

// ---------------------------------------------------------------------------
// Time and money.
// ---------------------------------------------------------------------------

/// Simulation time in seconds since epoch.  Plain integer seconds keep the
/// temporal constraints (10)–(11) exact.
using Time = std::int64_t;

/// A span of simulated seconds (e.g. request duration d_r).
using Seconds = std::int64_t;

/// Monetary amounts (valuations v_r, costs c_o, payments, welfare).  The
/// paper allows non-negative rationals; we use double and keep all equality
/// invariants (e.g. strong budget balance) true *by construction* — revenues
/// are defined as sums of payments, never recomputed independently.
using Money = double;

}  // namespace decloud

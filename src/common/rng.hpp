// Deterministic random number generation.
//
// DeCloud's trade-reduction step randomizes the allocation of excess bids
// (Section IV-D of the paper) and requires the randomization to be
// *verifiable*: every miner must reproduce the exact same stream from the
// block evidence.  std::mt19937 distributions are not guaranteed identical
// across standard libraries, so we implement our own generator
// (xoshiro256**) and our own distribution transforms, giving bit-identical
// streams on every platform.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace decloud {

/// SplitMix64 — used to expand small seeds into full xoshiro state.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 by Blackman & Vigna — small, fast, high quality, and
/// fully specified so that miner-side re-verification is exact.
///
/// Satisfies std::uniform_random_bit_generator, so it can also drive
/// standard-library facilities in non-consensus code.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds from a single 64-bit value via SplitMix64 state expansion.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Seeds from arbitrary evidence bytes (e.g. a block hash).  The bytes
  /// are folded into 64 bits with an FNV-1a pass before expansion.
  static Rng from_bytes(std::span<const std::uint8_t> evidence);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (deterministic: no cached spare).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate λ.
  double exponential(double lambda);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Samples an index according to non-negative weights (linear scan;
  /// weights need not be normalized).  Empty or all-zero weights are a
  /// precondition violation.
  std::size_t weighted_index(std::span<const double> weights);

  /// Raw generator state, for snapshot/restore.  A restored Rng continues
  /// the exact stream the snapshotted one would have produced.
  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const { return state_; }
  void set_state(const std::array<std::uint64_t, 4>& state) { state_ = state; }

  /// In-place Fisher–Yates shuffle — deterministic across platforms, unlike
  /// std::shuffle whose result depends on the standard library.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace decloud

// Strong integer-id wrapper.
//
// The market juggles many id spaces (clients, providers, requests, offers,
// network nodes, blocks).  Mixing them up is an easy silent bug, so each id
// space gets its own incompatible type (Core Guidelines I.4: make interfaces
// precisely and strongly typed).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

namespace decloud {

/// A strongly typed 64-bit identifier.  `Tag` is an empty struct that makes
/// each instantiation a distinct type; ids from different spaces do not
/// compare or convert.
template <typename Tag>
class StrongId {
 public:
  using underlying_type = std::uint64_t;

  constexpr StrongId() = default;
  constexpr explicit StrongId(underlying_type v) : value_(v) {}

  [[nodiscard]] constexpr underlying_type value() const { return value_; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) { return os << id.value_; }

 private:
  underlying_type value_ = 0;
};

}  // namespace decloud

// std::hash support so strong ids can key unordered containers.
template <typename Tag>
struct std::hash<decloud::StrongId<Tag>> {
  std::size_t operator()(decloud::StrongId<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};

// Precondition / invariant checking helpers.
//
// Following the C++ Core Guidelines (I.6, E.12), we express preconditions
// explicitly and fail loudly.  Violations throw, so callers can test error
// paths; they are never compiled out because the library is used in
// verification contexts (miners re-checking each other's allocations) where
// silent corruption would be worse than the branch cost.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace decloud {

/// Thrown when a documented precondition of a public API is violated.
class precondition_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an internal invariant fails (a bug in this library).
class invariant_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void throw_precondition(const char* expr, const std::string& msg,
                                            const std::source_location& loc) {
  throw precondition_error(std::string(loc.file_name()) + ":" + std::to_string(loc.line()) +
                           ": precondition failed: " + expr + (msg.empty() ? "" : " — " + msg));
}

[[noreturn]] inline void throw_invariant(const char* expr, const std::string& msg,
                                         const std::source_location& loc) {
  throw invariant_error(std::string(loc.file_name()) + ":" + std::to_string(loc.line()) +
                        ": invariant failed: " + expr + (msg.empty() ? "" : " — " + msg));
}

}  // namespace detail

/// Checks a caller-facing precondition; throws precondition_error on failure.
inline void expects(bool cond, const char* expr, const std::string& msg = {},
                    const std::source_location& loc = std::source_location::current()) {
  if (!cond) detail::throw_precondition(expr, msg, loc);
}

/// Checks an internal invariant; throws invariant_error on failure.
inline void ensures(bool cond, const char* expr, const std::string& msg = {},
                    const std::source_location& loc = std::source_location::current()) {
  if (!cond) detail::throw_invariant(expr, msg, loc);
}

}  // namespace decloud

#define DECLOUD_EXPECTS(cond) ::decloud::expects((cond), #cond)
#define DECLOUD_EXPECTS_MSG(cond, msg) ::decloud::expects((cond), #cond, (msg))
#define DECLOUD_ENSURES(cond) ::decloud::ensures((cond), #cond)
#define DECLOUD_ENSURES_MSG(cond, msg) ::decloud::ensures((cond), #cond, (msg))

// Canonical binary serialization.
//
// Bids, blocks, and allocation suggestions must hash and sign identically on
// every node, so all wire encoding goes through this single little-endian,
// length-prefixed format.  Doubles are encoded via their IEEE-754 bit
// pattern, which is exact and portable on every platform we target.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace decloud {

/// Append-only encoder producing the canonical byte representation.
class ByteWriter {
 public:
  void write_u8(std::uint8_t v) { buf_.push_back(v); }
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v) { write_u64(static_cast<std::uint64_t>(v)); }
  void write_double(double v);
  /// Length-prefixed (u32) raw bytes.
  void write_bytes(std::span<const std::uint8_t> bytes);
  /// Length-prefixed (u32) UTF-8 string.
  void write_string(std::string_view s);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Decoder over a byte span.  Throws precondition_error on truncated input,
/// so a malformed message from a byzantine peer cannot cause UB.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t read_u8();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int64_t read_i64() { return static_cast<std::int64_t>(read_u64()); }
  double read_double();
  std::vector<std::uint8_t> read_bytes();
  std::string read_string();

  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void require(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace decloud

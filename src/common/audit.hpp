// Compiled-in mechanism-invariant audits — the DECLOUD_AUDIT build option.
//
// verify.cpp gives miners a *post-hoc* check of a claimed RoundResult; the
// audit layer is different: it fires *inside* the mechanism while the
// internal state (cluster economics, price quotes, per-auction match
// ranges) is still in scope, so it can check properties the public result
// alone cannot express — e.g. that the clearing price really is
// min(v̂_z, ĉ_{z'+1}) over the live clusters of the mini-auction.
//
// The audit functions are ALWAYS compiled (tests call them directly, and
// dead-code rot is itself a bug class); only the call sites in the hot
// paths are gated, via `if constexpr (audit::kEnabled)`, so a production
// build pays nothing.  Configure with -DDECLOUD_AUDIT=ON to enable.
#pragma once

#include <string>

#include "common/ensure.hpp"

namespace decloud::audit {

#if defined(DECLOUD_AUDIT)
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// Thrown when a compiled-in mechanism audit fails.  Derives from
/// invariant_error: an audit failure IS a library bug, but tests can still
/// distinguish "audit tripped" from an ordinary DECLOUD_ENSURES.
class audit_error : public invariant_error {
 public:
  using invariant_error::invariant_error;
};

/// Throws audit_error with a uniform prefix when `cond` is false.
inline void check(bool cond, const std::string& what) {
  if (!cond) throw audit_error("mechanism audit failed: " + what);
}

}  // namespace decloud::audit

// A small fixed-size thread pool with a statically chunked parallel_for.
//
// DeCloud's matching phase fans independent per-request work out across
// cores (see DESIGN.md "Threading model & determinism").  The pool is
// deliberately minimal: a fixed worker count chosen at construction, no
// work stealing, and *static* chunking — every (range, chunk) pair maps to
// the same chunk boundaries regardless of scheduling, so parallel code
// that writes only to its own chunk produces bit-identical results for any
// worker count.  Exceptions thrown by the body are captured and the first
// one (lowest chunk index) is rethrown on the calling thread.
//
// Nested-use contract: parallel_for may be called from ANY thread,
// including a pool worker executing another parallel_for's body.  The
// calling thread always participates in executing its own chunks (claimed
// from a shared atomic cursor), so forward progress never depends on a
// free worker being available — a nested call on a fully busy (even
// single-worker) pool completes by running every chunk on the caller.
// The engine's epoch fan-out (src/engine/) relies on this: a shard round
// running on a pool worker may itself fan out on the same pool.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <vector>

#include "dsched/sync.hpp"

namespace decloud {

class ThreadPool {
 public:
  /// Spawns `workers` threads.  `workers` = 0 is clamped to 1; a pool of 1
  /// still runs tasks on its single worker (use run_chunked's serial
  /// fast-path to avoid the pool entirely).
  explicit ThreadPool(std::size_t workers);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// hardware_concurrency with a floor of 1 (the standard allows it to
  /// return 0 when undeterminable).
  [[nodiscard]] static std::size_t default_workers();

  /// Applies `body(i)` for every i in [begin, end), split into contiguous
  /// chunks of `chunk` indices handed to the pool.  Blocks until the whole
  /// range is done.  The chunk boundaries depend only on (begin, end,
  /// chunk) — never on the worker count — and `body` runs exactly once per
  /// index.  If any invocation throws, the exception from the lowest chunk
  /// is rethrown here after all chunks finish (deterministic error).
  /// Safe to call from a pool worker: the caller executes chunks itself
  /// alongside the workers, so nested calls cannot deadlock.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t chunk,
                    const std::function<void(std::size_t)>& body);

  /// Convenience: parallel_for with a chunk size that yields roughly four
  /// chunks per worker (bounded below by 1).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();
  void submit(std::function<void()> task);

  std::vector<dsched::thread> workers_;
  std::vector<std::function<void()>> queue_;
  dsched::mutex mutex_;
  dsched::condition_variable cv_;
  bool stop_ = false;
};

/// Runs `body(i)` over [begin, end): serially when `pool` is null or has a
/// single worker, otherwise via pool->parallel_for.  The serial path and
/// the pooled path perform the same per-index work in the same chunk
/// layout, so downstream consumers cannot observe which one ran.
void run_chunked(ThreadPool* pool, std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& body);

}  // namespace decloud

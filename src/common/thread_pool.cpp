#include "common/thread_pool.hpp"

#include <algorithm>
#include <memory>
#include <utility>

namespace decloud {

ThreadPool::ThreadPool(std::size_t workers) {
  const std::size_t n = std::max<std::size_t>(workers, 1);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<dsched::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::default_workers() {
  const unsigned n = dsched::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<dsched::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.back());
      queue_.pop_back();
    }
    task();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<dsched::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end, std::size_t chunk,
                              const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t step = std::max<std::size_t>(chunk, 1);
  const std::size_t chunks = (end - begin + step - 1) / step;
  if (chunks == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  // Per-parallel_for state, heap-shared with the helper tasks: a helper
  // may be dequeued after the caller has already returned (every chunk was
  // claimed by someone else), so it must own the state it inspects.
  // Chunks record exceptions by chunk index so the rethrow below does not
  // depend on scheduling order.
  struct ForState {
    dsched::atomic<std::size_t> cursor{0};  // next unclaimed chunk
    dsched::mutex done_mutex;
    dsched::condition_variable done_cv;
    std::size_t remaining;
    std::vector<std::exception_ptr> errors;
  };
  auto state = std::make_shared<ForState>();
  state->remaining = chunks;
  state->errors.resize(chunks);

  // Claims chunks off the shared cursor until none are left.  `body` is
  // only dereferenced while at least one chunk is unfinished, i.e. while
  // the caller is still blocked below — so capturing it by reference is
  // safe even though helpers may outlive this frame.
  const auto drain = [begin, end, step, chunks, &body, state] {
    std::size_t c;
    while ((c = state->cursor.fetch_add(1, std::memory_order_relaxed)) < chunks) {
      const std::size_t lo = begin + c * step;
      const std::size_t hi = std::min(end, lo + step);
      try {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        state->errors[c] = std::current_exception();
      }
      // Notify while still holding the lock: the caller may return — and
      // release its state reference — the instant remaining hits 0, so the
      // signal must complete before this thread releases the mutex.
      const std::lock_guard<dsched::mutex> lock(state->done_mutex);
      if (--state->remaining == 0) state->done_cv.notify_all();
    }
  };

  // One helper per worker (capped by the chunk count, minus the caller's
  // own share); the caller then drains too, which guarantees completion
  // even when every worker is busy or blocked in a nested parallel_for.
  const std::size_t helpers = std::min(chunks - 1, worker_count());
  for (std::size_t h = 0; h < helpers; ++h) submit(drain);
  drain();

  std::unique_lock<dsched::mutex> lock(state->done_mutex);
  state->done_cv.wait(lock, [&] { return state->remaining == 0; });
  for (const auto& err : state->errors) {
    if (err) std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t target_chunks = worker_count() * 4;
  parallel_for(begin, end, std::max<std::size_t>(n / target_chunks, 1), body);
}

void run_chunked(ThreadPool* pool, std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& body) {
  if (pool == nullptr || pool->worker_count() <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  pool->parallel_for(begin, end, body);
}

}  // namespace decloud

#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/ensure.hpp"

namespace decloud {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : state_) s = sm.next();
}

Rng Rng::from_bytes(std::span<const std::uint8_t> evidence) {
  // FNV-1a 64-bit fold of the evidence, then normal expansion.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : evidence) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return Rng(h);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  DECLOUD_EXPECTS(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded sampling.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  DECLOUD_EXPECTS(lo <= hi);
  return lo + (hi - lo) * next_double();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  DECLOUD_EXPECTS(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next_u64() : next_below(span));
}

double Rng::normal(double mean, double stddev) {
  // Box–Muller without caching the second deviate: one fewer piece of
  // hidden state keeps replay exact regardless of call interleavings.
  double u1 = next_double();
  const double u2 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;  // avoid log(0)
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double lambda) {
  DECLOUD_EXPECTS(lambda > 0.0);
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / lambda;
}

bool Rng::bernoulli(double p) {
  DECLOUD_EXPECTS(p >= 0.0 && p <= 1.0);
  return next_double() < p;
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  DECLOUD_EXPECTS(!weights.empty());
  double total = 0.0;
  for (const double w : weights) {
    DECLOUD_EXPECTS_MSG(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  DECLOUD_EXPECTS_MSG(total > 0.0, "at least one weight must be positive");
  double target = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: land on the last bucket
}

}  // namespace decloud

#include "common/byte_buffer.hpp"

#include <bit>

#include "common/ensure.hpp"

namespace decloud {

void ByteWriter::write_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::write_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::write_double(double v) { write_u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::write_bytes(std::span<const std::uint8_t> bytes) {
  DECLOUD_EXPECTS(bytes.size() <= UINT32_MAX);
  write_u32(static_cast<std::uint32_t>(bytes.size()));
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::write_string(std::string_view s) {
  write_bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

void ByteReader::require(std::size_t n) {
  DECLOUD_EXPECTS_MSG(remaining() >= n, "truncated message");
}

std::uint8_t ByteReader::read_u8() {
  require(1);
  return data_[pos_++];
}

std::uint32_t ByteReader::read_u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t ByteReader::read_u64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

double ByteReader::read_double() { return std::bit_cast<double>(read_u64()); }

std::vector<std::uint8_t> ByteReader::read_bytes() {
  const std::uint32_t n = read_u32();
  require(n);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::string ByteReader::read_string() {
  const std::uint32_t n = read_u32();
  require(n);
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return out;
}

}  // namespace decloud

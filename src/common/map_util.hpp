// Deterministic iteration over unordered associative containers.
//
// Hash-map iteration order is not stable across platforms or runs, so the
// deterministic modules (see tools/declint) may never range-for over one.
// The sanctioned pattern is "iterate a sorted key vector"; this helper is
// that pattern, centralized: it materializes the keys and sorts them with
// the caller's comparator, so every walk driven by the result visits
// entries in the same order everywhere.
#pragma once

#include <algorithm>
#include <vector>

namespace decloud {

/// All keys of `map`, sorted by `cmp`.  O(n log n); intended for cold
/// paths (state serialization, reporting), not per-bid work.
template <typename Map, typename Compare>
[[nodiscard]] std::vector<typename Map::key_type> sorted_keys(const Map& map, Compare cmp) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(map.size());
  for (auto it = map.begin(); it != map.end(); ++it) keys.push_back(it->first);
  std::sort(keys.begin(), keys.end(), cmp);
  return keys;
}

}  // namespace decloud

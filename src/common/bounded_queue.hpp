// A bounded multi-producer / single-consumer ingest queue with explicit
// admission control.
//
// The sharded engine (src/engine/) feeds each regional market through one
// of these: producers on any thread push bids, the epoch scheduler drains
// the whole queue at the next tick.  Admission is three-valued so
// producers see backpressure instead of unbounded growth:
//
//   kAccepted — depth below the soft watermark; the bid will ride the
//               next epoch with no congestion signal;
//   kQueued   — admitted, but depth is at/above the watermark: the queue
//               is congested and the producer should slow down;
//   kRejected — depth reached capacity; the bid was NOT admitted and the
//               producer must retry later (or route elsewhere).
//
// The consumer side (`drain`) is not synchronized against other consumers
// — exactly one thread may drain, per the MPSC contract.  Producers and
// the consumer may interleave freely.
//
// Shutdown: close() flips the queue into a rejecting state.  Admission is
// decided under the same lock close() takes, so every push is serialized
// either before the close (admitted, and guaranteed to appear in a later
// drain) or after it (kRejected/kClosed) — an admitted-then-lost bid is
// impossible.  drain() keeps working after close and returns the residue.
// The dsched model `queue_close` explores every interleaving of this
// contract; bounded_queue_test pins it as a unit test.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "common/ensure.hpp"
#include "dsched/sync.hpp"

namespace decloud {

/// Producer-visible admission outcome.
enum class Admission : std::uint8_t { kAccepted, kQueued, kRejected };

/// Why a push was rejected (meaningful only with Admission::kRejected).
enum class RejectReason : std::uint8_t {
  kNone,      ///< not rejected
  kCapacity,  ///< queue at capacity (backpressure)
  kClosed,    ///< queue closed for shutdown; the bid must route elsewhere
};

template <typename T>
class BoundedQueue {
 public:
  struct Result {
    Admission status = Admission::kAccepted;
    RejectReason reason = RejectReason::kNone;

    [[nodiscard]] bool admitted() const { return status != Admission::kRejected; }
  };

  /// `capacity` bounds the depth; an admitted push that leaves the depth
  /// above `watermark` returns the kQueued congestion signal instead of
  /// kAccepted.  A watermark >= capacity disables the signal (every admit
  /// is kAccepted).
  explicit BoundedQueue(std::size_t capacity, std::size_t watermark = SIZE_MAX)
      : capacity_(capacity), watermark_(watermark) {
    DECLOUD_EXPECTS(capacity > 0);
  }

  /// Thread-safe producer side.  FIFO order is the lock acquisition order.
  Result push(T value) {
    const std::lock_guard<dsched::mutex> lock(mutex_);
    if (closed_) {
      return {Admission::kRejected, RejectReason::kClosed};
    }
    if (items_.size() >= capacity_) {
      return {Admission::kRejected, RejectReason::kCapacity};
    }
    items_.push_back(std::move(value));
    return {items_.size() > watermark_ ? Admission::kQueued : Admission::kAccepted,
            RejectReason::kNone};
  }

  /// Single-consumer side: removes and returns everything queued, in FIFO
  /// order.
  [[nodiscard]] std::vector<T> drain() {
    const std::lock_guard<dsched::mutex> lock(mutex_);
    std::vector<T> out(std::make_move_iterator(items_.begin()),
                       std::make_move_iterator(items_.end()));
    items_.clear();
    return out;
  }

  /// Stops admission: every push serialized after this call returns
  /// kRejected/kClosed.  Items admitted before the close stay queued and
  /// remain drainable.  Idempotent.
  void close() {
    const std::lock_guard<dsched::mutex> lock(mutex_);
    closed_ = true;
  }

  [[nodiscard]] bool closed() const {
    const std::lock_guard<dsched::mutex> lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<dsched::mutex> lock(mutex_);
    return items_.size();
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t watermark() const { return watermark_; }

 private:
  const std::size_t capacity_;
  const std::size_t watermark_;
  mutable dsched::mutex mutex_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace decloud

// Deterministic fault schedules — the adversarial story of Section III.
//
// The two-phase bid exposure protocol exists because parties can
// misbehave: withhold temporary keys, publish bogus allocation
// suggestions, vote dishonestly, deny agreed matches.  A FaultPlan is a
// declarative schedule of such misbehaviour: a list of rules, each naming
// a fault kind, a firing probability, and inclusive windows over the
// coordinates where the fault may fire (round, shard, index, attempt).
//
// Determinism contract: a plan never carries hidden state.  Whether a
// fault fires at a given site is a pure function of (plan, seed, site) —
// see injector.hpp — so replaying the same plan and seed yields
// byte-identical outcomes regardless of thread count or query order.
//
// Plans have a textual form for CLI/CI use (`engine_driver --fault-plan`):
//
//   spec     := rule (';' rule)*
//   rule     := kind (':' field)*
//   field    := 'p=' FLOAT | 'rounds=' range | 'shards=' range
//             | 'index=' range | 'attempts=' range | 'payload=' UINT
//   range    := UINT | UINT '-' UINT          (inclusive)
//
// e.g. "withhold_reveal:p=0.5:rounds=0-9;dishonest_vote:index=1".
// Omitted fields default to "always / everywhere" (p=1, full windows).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace decloud::fault {

/// Every injectable misbehaviour, one per protocol/engine/sim hook point.
enum class FaultKind : std::uint8_t {
  kWithholdReveal = 0,   ///< participant never broadcasts its temporary keys
  kCorruptSealedBid,     ///< sealed bid arrives with a flipped ciphertext byte
  kDuplicateSealedBid,   ///< the same sealed bid is submitted twice
  kCorruptAllocation,    ///< producer publishes a corrupted allocation body
  kDishonestVote,        ///< verifier inverts its honest vote
  kDenyAgreement,        ///< client denies a proposed agreement
  kDropMessage,          ///< sim overlay eats a message
  kDelayMessage,         ///< sim overlay adds `payload` ms of extra latency
  kRejectIngest,         ///< engine shard queue refuses an ingest
  kCrashAtSite,          ///< process exits hard at a durable-market crash site
};

inline constexpr std::size_t kNumFaultKinds = 10;

/// Canonical spelling used by the plan grammar ("withhold_reveal", …).
[[nodiscard]] std::string_view to_string(FaultKind kind);
/// Inverse of to_string; nullopt for unknown names.
[[nodiscard]] std::optional<FaultKind> parse_kind(std::string_view name);

/// The coordinates of one potential fault.  Layers fill what they know and
/// leave the rest 0: the protocol uses (round=chain height, shard, index=
/// participant/verifier/bid index, attempt=re-mine attempt); the engine
/// uses (round=epoch, shard, index=ingest sequence, attempt=retry); the
/// sim overlay uses index=message sequence.
struct FaultSite {
  std::uint64_t round = 0;
  std::uint64_t shard = 0;
  std::uint64_t index = 0;
  std::uint64_t attempt = 0;
};

/// One scheduled misbehaviour.  All windows are inclusive; the defaults
/// match every site.
struct FaultRule {
  FaultKind kind = FaultKind::kWithholdReveal;
  double probability = 1.0;
  std::uint64_t round_lo = 0;
  std::uint64_t round_hi = UINT64_MAX;
  std::uint64_t shard_lo = 0;
  std::uint64_t shard_hi = UINT64_MAX;
  std::uint64_t index_lo = 0;
  std::uint64_t index_hi = UINT64_MAX;
  std::uint64_t attempt_lo = 0;
  std::uint64_t attempt_hi = UINT64_MAX;
  /// Kind-specific magnitude (extra delay in ms for kDelayMessage; unused
  /// otherwise).
  std::uint64_t payload = 0;

  [[nodiscard]] bool matches(FaultKind k, const FaultSite& site) const;
};

/// An ordered list of fault rules.  The first matching rule whose coin
/// lands wins (rule order is part of the schedule's identity).
struct FaultPlan {
  std::vector<FaultRule> rules;

  [[nodiscard]] bool empty() const { return rules.empty(); }

  /// Parses the textual grammar above.  Throws precondition_error on
  /// unknown kinds, probabilities outside [0,1], or inverted ranges.
  [[nodiscard]] static FaultPlan parse(std::string_view spec);

  /// Round-trippable textual form: every field explicit, fixed order,
  /// %.17g probabilities.  parse(canonical()) reproduces the plan.
  [[nodiscard]] std::string canonical() const;
};

}  // namespace decloud::fault

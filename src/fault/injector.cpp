#include "fault/injector.hpp"

#include "common/ensure.hpp"
#include "common/rng.hpp"

namespace decloud::fault {

namespace {

/// Uniform coin in [0, 1) from the full site coordinates.  Folding every
/// coordinate (plus the rule index) through SplitMix64 keeps decisions for
/// distinct sites — and distinct rules at the same site — independent.
[[nodiscard]] double site_coin(std::uint64_t seed, std::size_t rule_index, FaultKind kind,
                               const FaultSite& site) {
  SplitMix64 mix(seed);
  mix.next();  // decorrelate trivially related seeds (0 vs 1, …)
  SplitMix64 folded(mix.next() ^ (static_cast<std::uint64_t>(rule_index) << 32) ^
                    static_cast<std::uint64_t>(kind));
  SplitMix64 a(folded.next() ^ site.round);
  SplitMix64 b(a.next() ^ site.shard);
  SplitMix64 c(b.next() ^ site.index);
  SplitMix64 d(c.next() ^ site.attempt);
  return static_cast<double>(d.next() >> 11) * 0x1.0p-53;
}

}  // namespace

const FaultRule* FaultInjector::firing_rule(FaultKind kind, const FaultSite& site) const {
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    if (!rule.matches(kind, site)) continue;
    if (site_coin(seed_, i, kind, site) < rule.probability) return &rule;
  }
  return nullptr;
}

bool FaultInjector::fires(FaultKind kind, const FaultSite& site) const {
  DECLOUD_EXPECTS(static_cast<std::size_t>(kind) < kNumFaultKinds);
  return firing_rule(kind, site) != nullptr;
}

std::uint64_t FaultInjector::payload(FaultKind kind, const FaultSite& site) const {
  DECLOUD_EXPECTS(static_cast<std::size_t>(kind) < kNumFaultKinds);
  const FaultRule* rule = firing_rule(kind, site);
  return rule == nullptr ? 0 : rule->payload;
}

}  // namespace decloud::fault

#include "fault/fault.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/ensure.hpp"

namespace decloud::fault {

namespace {

constexpr std::string_view kKindNames[kNumFaultKinds] = {
    "withhold_reveal",    "corrupt_sealed_bid", "duplicate_sealed_bid",
    "corrupt_allocation", "dishonest_vote",     "deny_agreement",
    "drop_message",       "delay_message",      "reject_ingest",
    "crash_at_site",
};

[[nodiscard]] bool in_window(std::uint64_t v, std::uint64_t lo, std::uint64_t hi) {
  return lo <= v && v <= hi;
}

[[nodiscard]] std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

[[nodiscard]] std::uint64_t parse_u64(std::string_view tok) {
  DECLOUD_EXPECTS_MSG(!tok.empty(), "fault plan: empty number");
  std::uint64_t value = 0;
  for (const char c : tok) {
    DECLOUD_EXPECTS_MSG(c >= '0' && c <= '9', "fault plan: malformed unsigned integer");
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

/// Parses "N" or "LO-HI" into an inclusive window.
void parse_range(std::string_view tok, std::uint64_t& lo, std::uint64_t& hi) {
  const std::size_t dash = tok.find('-');
  if (dash == std::string_view::npos) {
    lo = hi = parse_u64(tok);
    return;
  }
  lo = parse_u64(tok.substr(0, dash));
  hi = parse_u64(tok.substr(dash + 1));
  DECLOUD_EXPECTS_MSG(lo <= hi, "fault plan: inverted range");
}

void append_range(std::string& out, const char* key, std::uint64_t lo, std::uint64_t hi) {
  char buf[64];
  if (lo == hi) {
    std::snprintf(buf, sizeof buf, ":%s=%llu", key, static_cast<unsigned long long>(lo));
  } else {
    std::snprintf(buf, sizeof buf, ":%s=%llu-%llu", key, static_cast<unsigned long long>(lo),
                  static_cast<unsigned long long>(hi));
  }
  out += buf;
}

}  // namespace

std::string_view to_string(FaultKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  DECLOUD_EXPECTS(i < kNumFaultKinds);
  return kKindNames[i];
}

std::optional<FaultKind> parse_kind(std::string_view name) {
  for (std::size_t i = 0; i < kNumFaultKinds; ++i) {
    if (kKindNames[i] == name) return static_cast<FaultKind>(i);
  }
  return std::nullopt;
}

bool FaultRule::matches(FaultKind k, const FaultSite& site) const {
  return k == kind && in_window(site.round, round_lo, round_hi) &&
         in_window(site.shard, shard_lo, shard_hi) &&
         in_window(site.index, index_lo, index_hi) &&
         in_window(site.attempt, attempt_lo, attempt_hi);
}

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t semi = spec.find(';', pos);
    const std::string_view entry =
        trim(spec.substr(pos, semi == std::string_view::npos ? semi : semi - pos));
    pos = semi == std::string_view::npos ? spec.size() + 1 : semi + 1;
    if (entry.empty()) continue;  // tolerate trailing / doubled separators

    FaultRule rule;
    std::size_t field_pos = 0;
    bool have_kind = false;
    while (field_pos <= entry.size()) {
      const std::size_t colon = entry.find(':', field_pos);
      const std::string_view field = trim(
          entry.substr(field_pos, colon == std::string_view::npos ? colon : colon - field_pos));
      field_pos = colon == std::string_view::npos ? entry.size() + 1 : colon + 1;
      if (!have_kind) {
        const auto kind = parse_kind(field);
        DECLOUD_EXPECTS_MSG(kind.has_value(), "fault plan: unknown fault kind");
        rule.kind = *kind;
        have_kind = true;
        continue;
      }
      const std::size_t eq = field.find('=');
      DECLOUD_EXPECTS_MSG(eq != std::string_view::npos, "fault plan: field needs key=value");
      const std::string_view key = field.substr(0, eq);
      const std::string_view value = field.substr(eq + 1);
      if (key == "p") {
        const std::string copy(value);
        char* end = nullptr;
        rule.probability = std::strtod(copy.c_str(), &end);
        DECLOUD_EXPECTS_MSG(end == copy.c_str() + copy.size() && !copy.empty(),
                            "fault plan: malformed probability");
        DECLOUD_EXPECTS_MSG(rule.probability >= 0.0 && rule.probability <= 1.0,
                            "fault plan: probability outside [0,1]");
      } else if (key == "rounds") {
        parse_range(value, rule.round_lo, rule.round_hi);
      } else if (key == "shards") {
        parse_range(value, rule.shard_lo, rule.shard_hi);
      } else if (key == "index") {
        parse_range(value, rule.index_lo, rule.index_hi);
      } else if (key == "attempts") {
        parse_range(value, rule.attempt_lo, rule.attempt_hi);
      } else if (key == "payload") {
        rule.payload = parse_u64(value);
      } else {
        DECLOUD_EXPECTS_MSG(false, "fault plan: unknown field key");
      }
    }
    DECLOUD_EXPECTS_MSG(have_kind, "fault plan: rule without a fault kind");
    plan.rules.push_back(rule);
  }
  return plan;
}

std::string FaultPlan::canonical() const {
  std::string out;
  char buf[64];
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const FaultRule& r = rules[i];
    if (i > 0) out += ';';
    out += to_string(r.kind);
    std::snprintf(buf, sizeof buf, ":p=%.17g", r.probability);
    out += buf;
    append_range(out, "rounds", r.round_lo, r.round_hi);
    append_range(out, "shards", r.shard_lo, r.shard_hi);
    append_range(out, "index", r.index_lo, r.index_hi);
    append_range(out, "attempts", r.attempt_lo, r.attempt_hi);
    std::snprintf(buf, sizeof buf, ":payload=%llu", static_cast<unsigned long long>(r.payload));
    out += buf;
  }
  return out;
}

}  // namespace decloud::fault

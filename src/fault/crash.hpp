// Deterministic process-kill sites for the durable-market chaos suite.
//
// A `crash_at_site` rule (fault.hpp grammar) schedules hard process exits
// at named points in the engine's durable path, so kill-and-recover tests
// can die at EXACTLY the same site on every run.  The coordinate mapping
// (DESIGN.md §3k):
//
//   attempt = crash site id (CrashSite below)
//   index   = the site's own monotone sequence — input_seq for ingest
//             sites, tick number for epoch sites, block height for
//             append sites, logical ticks for snapshot sites
//   shard   = shard index (0 for engine-global sites)
//   round   = 0 (unused)
//
// e.g. `crash_at_site:attempts=1:index=3` kills the process right after
// the 4th tick's WAL record reaches disk.  Crashes are driven by a
// SEPARATE injector (`MarketEngine::set_crash_injector`) from the
// behavioural `--fault-plan` one, so (a) the uninterrupted reference run
// of a recovery check simply omits the crash plan without perturbing any
// other fault coin, and (b) a recovered process resuming past the crash
// site does not immediately die again.
//
// The exit is std::_Exit — no atexit handlers, no flushing, no stack
// unwinding — which is precisely the torn state a real power cut leaves.
#pragma once

#include <cstdint>
#include <cstdlib>

#include "fault/injector.hpp"

namespace decloud::fault {

/// Exit status a scheduled crash dies with; recover_check asserts it to
/// distinguish an injected kill from a genuine failure.
inline constexpr int kCrashExitCode = 86;

/// Site ids (the `attempts` coordinate of a crash_at_site rule).
enum class CrashSite : std::uint64_t {
  kAfterBidAppend = 0,    ///< bid WAL record durable, bid not yet applied
  kAfterTickAppend = 1,   ///< tick WAL record durable, epoch not yet run
  kMidEpoch = 2,          ///< inside run_shard_epoch, before the round
  kAfterBlockAppend = 3,  ///< block WAL record durable, after chain append
  kMidSnapshot = 4,       ///< snapshot temp file written, rename pending
};

/// Kills the process iff `injector` schedules a crash at the site.  Null
/// or inactive injectors cost one pointer test.
inline void crash_if(const FaultInjector* injector, CrashSite site_id, std::uint64_t index,
                     std::uint64_t shard = 0) {
  if (injector == nullptr || !injector->active()) return;
  const FaultSite site{.round = 0,
                       .shard = shard,
                       .index = index,
                       .attempt = static_cast<std::uint64_t>(site_id)};
  if (injector->fires(FaultKind::kCrashAtSite, site)) std::_Exit(kCrashExitCode);
}

}  // namespace decloud::fault

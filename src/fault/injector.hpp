// Stateless fault decisions over a FaultPlan.
//
// `fires(kind, site)` answers "does the schedule make this party misbehave
// here?" as a PURE function of (plan, seed, kind, site): each candidate is
// decided by hashing the site coordinates through SplitMix64 and comparing
// the resulting uniform coin against the rule's probability.  No internal
// state means
//
//   * decisions are independent of query order, thread count, and how many
//     other sites were probed — the byte-determinism contract extends to
//     chaos runs;
//   * one const injector can be shared across every shard and layer with
//     no synchronization.
//
// A default-constructed injector carries an empty plan and never fires
// ("null injector"); hook points pay one pointer test plus one `active()`
// check, mirroring the null-sink discipline of src/obs.
#pragma once

#include <cstdint>
#include <utility>

#include "fault/fault.hpp"

namespace decloud::fault {

class FaultInjector {
 public:
  /// Null injector: empty plan, fires nothing.
  FaultInjector() = default;

  FaultInjector(FaultPlan plan, std::uint64_t seed)
      : plan_(std::move(plan)), seed_(seed) {}

  /// False for the null injector; hook points can early-out on this.
  [[nodiscard]] bool active() const { return !plan_.rules.empty(); }

  /// True iff some rule of the plan matches the site and its seeded coin
  /// lands.  Rules are tried in plan order; the first hit wins.
  [[nodiscard]] bool fires(FaultKind kind, const FaultSite& site) const;

  /// The payload of the first firing rule at the site (0 when none fires).
  [[nodiscard]] std::uint64_t payload(FaultKind kind, const FaultSite& site) const;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  /// First rule that matches AND whose coin lands; null when none.
  [[nodiscard]] const FaultRule* firing_rule(FaultKind kind, const FaultSite& site) const;

  FaultPlan plan_;
  std::uint64_t seed_ = 0;
};

}  // namespace decloud::fault

// LOESS (locally weighted linear regression) smoother.
//
// Figures 5a/5b of the paper plot Loess trend curves over the raw welfare
// scatter; this is the same smoother (tricube kernel, degree-1 local fits,
// span given as the fraction of points in each local neighbourhood).
#pragma once

#include <span>
#include <vector>

namespace decloud::stats {

/// One smoothed point.
struct LoessPoint {
  double x = 0.0;
  double y = 0.0;
};

/// LOESS smoother configuration.
struct LoessConfig {
  /// Fraction of the data used in each local regression, in (0, 1].
  double span = 0.5;
  /// Number of evaluation points placed uniformly across the x-range.
  /// When 0, the smoother evaluates at every input x instead.
  std::size_t grid_points = 0;
};

/// Computes the LOESS curve of y over x.  Points need not be sorted.
/// Degenerate neighbourhoods (all x equal) fall back to the weighted mean.
[[nodiscard]] std::vector<LoessPoint> loess(std::span<const double> x, std::span<const double> y,
                                            const LoessConfig& config = {});

}  // namespace decloud::stats

#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/ensure.hpp"

namespace decloud::stats {

void Accumulator::add(double sample) {
  if (n_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++n_;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (sample - mean_);
}

double Accumulator::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double percentile(std::span<const double> samples, double q) {
  DECLOUD_EXPECTS(q >= 0.0 && q <= 1.0);
  DECLOUD_EXPECTS(!samples.empty());
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean(std::span<const double> samples) {
  if (samples.empty()) return 0.0;
  double total = 0.0;
  for (const double s : samples) total += s;
  return total / static_cast<double>(samples.size());
}

}  // namespace decloud::stats

// Summary statistics for benchmark reporting.
#pragma once

#include <cstddef>
#include <span>

namespace decloud::stats {

/// Streaming mean/variance (Welford's algorithm) plus min/max.
class Accumulator {
 public:
  void add(double sample);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Sample variance (n−1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile with linear interpolation; `q` in [0, 1].  Copies and sorts.
[[nodiscard]] double percentile(std::span<const double> samples, double q);

/// Arithmetic mean; 0 for empty input.
[[nodiscard]] double mean(std::span<const double> samples);

}  // namespace decloud::stats

#include "stats/loess.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/ensure.hpp"

namespace decloud::stats {

namespace {

double tricube(double u) {
  const double a = 1.0 - std::abs(u) * std::abs(u) * std::abs(u);
  return (std::abs(u) >= 1.0) ? 0.0 : a * a * a;
}

/// Weighted least-squares line fit evaluated at x0.
double local_fit(std::span<const double> x, std::span<const double> y,
                 std::span<const std::size_t> order, std::size_t k, double x0) {
  // Find the k nearest neighbours of x0 among the sorted x values.
  const auto cmp = [&](std::size_t idx, double v) { return x[idx] < v; };
  auto lo = std::lower_bound(order.begin(), order.end(), x0, cmp) - order.begin();
  std::ptrdiff_t left = lo - 1;
  std::ptrdiff_t right = lo;
  std::vector<std::size_t> nbrs;
  nbrs.reserve(k);
  while (nbrs.size() < k) {
    const bool can_left = left >= 0;
    const bool can_right = right < static_cast<std::ptrdiff_t>(order.size());
    if (!can_left && !can_right) break;
    if (!can_right ||
        (can_left && x0 - x[order[static_cast<std::size_t>(left)]] <=
                         x[order[static_cast<std::size_t>(right)]] - x0)) {
      nbrs.push_back(order[static_cast<std::size_t>(left--)]);
    } else {
      nbrs.push_back(order[static_cast<std::size_t>(right++)]);
    }
  }

  double dmax = 0.0;
  for (const std::size_t i : nbrs) dmax = std::max(dmax, std::abs(x[i] - x0));
  if (dmax <= 0.0) dmax = 1.0;  // all neighbours at x0: uniform weights

  // Weighted linear regression y = a + b (x − x0); the intercept a is the
  // smoothed value at x0.
  double sw = 0, swx = 0, swy = 0, swxx = 0, swxy = 0;
  for (const std::size_t i : nbrs) {
    const double w = tricube((x[i] - x0) / dmax);
    const double dx = x[i] - x0;
    sw += w;
    swx += w * dx;
    swy += w * y[i];
    swxx += w * dx * dx;
    swxy += w * dx * y[i];
  }
  if (sw <= 0.0) return 0.0;
  const double det = sw * swxx - swx * swx;
  if (std::abs(det) < 1e-12) return swy / sw;  // degenerate: weighted mean
  return (swxx * swy - swx * swxy) / det;
}

}  // namespace

std::vector<LoessPoint> loess(std::span<const double> x, std::span<const double> y,
                              const LoessConfig& config) {
  DECLOUD_EXPECTS(x.size() == y.size());
  DECLOUD_EXPECTS(config.span > 0.0 && config.span <= 1.0);
  if (x.empty()) return {};

  std::vector<std::size_t> order(x.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) { return x[a] < x[b]; });

  const std::size_t k =
      std::max<std::size_t>(2, static_cast<std::size_t>(std::ceil(config.span * static_cast<double>(x.size()))));

  std::vector<double> eval_xs;
  if (config.grid_points > 0) {
    const double xmin = x[order.front()];
    const double xmax = x[order.back()];
    for (std::size_t i = 0; i < config.grid_points; ++i) {
      const double t = (config.grid_points == 1)
                           ? 0.5
                           : static_cast<double>(i) / static_cast<double>(config.grid_points - 1);
      eval_xs.push_back(xmin + t * (xmax - xmin));
    }
  } else {
    for (const std::size_t i : order) eval_xs.push_back(x[i]);
  }

  std::vector<LoessPoint> out;
  out.reserve(eval_xs.size());
  for (const double x0 : eval_xs) {
    out.push_back({x0, local_fit(x, y, order, std::min(k, x.size()), x0)});
  }
  return out;
}

}  // namespace decloud::stats

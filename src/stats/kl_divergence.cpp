#include "stats/kl_divergence.hpp"

#include <algorithm>
#include <cmath>

#include "common/ensure.hpp"
#include "stats/histogram.hpp"

namespace decloud::stats {

namespace {

std::vector<double> smooth_and_normalize(std::span<const double> dist, double epsilon) {
  std::vector<double> out(dist.begin(), dist.end());
  for (auto& v : out) v += epsilon;
  return normalize(out);
}

}  // namespace

double kl_divergence(std::span<const double> p, std::span<const double> q, double epsilon) {
  DECLOUD_EXPECTS(p.size() == q.size());
  DECLOUD_EXPECTS(!p.empty());
  const auto ps = smooth_and_normalize(p, epsilon);
  const auto qs = smooth_and_normalize(q, epsilon);
  double kld = 0.0;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    if (ps[i] > 0.0) kld += ps[i] * std::log(ps[i] / qs[i]);
  }
  return std::max(kld, 0.0);  // guard tiny negative rounding
}

double js_divergence(std::span<const double> p, std::span<const double> q) {
  DECLOUD_EXPECTS(p.size() == q.size());
  const auto ps = smooth_and_normalize(p, 1e-12);
  const auto qs = smooth_and_normalize(q, 1e-12);
  std::vector<double> m(ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) m[i] = 0.5 * (ps[i] + qs[i]);
  return 0.5 * kl_divergence(ps, m, 0.0) + 0.5 * kl_divergence(qs, m, 0.0);
}

double similarity(std::span<const double> p, std::span<const double> q) {
  return std::clamp(1.0 - kl_divergence(p, q), 0.0, 1.0);
}

}  // namespace decloud::stats

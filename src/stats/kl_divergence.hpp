// Kullback–Leibler divergence between discrete distributions.
//
// The similarity axis of Fig. 5d–5f is 1 − KLD(R^β, O^β) over resource
// distributions.  KLD is computed with additive smoothing so that offer
// bins with zero mass do not produce infinities (the paper's generator
// guarantees overlapping support; ours smooths instead of assuming it).
#pragma once

#include <span>
#include <vector>

namespace decloud::stats {

/// KL(p ‖ q) in nats with additive (Laplace) smoothing `epsilon` applied to
/// both distributions before renormalization.  Inputs must be equal-length,
/// non-negative; they are normalized internally.
[[nodiscard]] double kl_divergence(std::span<const double> p, std::span<const double> q,
                                   double epsilon = 1e-9);

/// Symmetric Jensen–Shannon divergence (bounded by ln 2); exposed for
/// comparison/ablation experiments.
[[nodiscard]] double js_divergence(std::span<const double> p, std::span<const double> q);

/// The paper's similarity metric: 1 − KLD(p, q), clamped to [0, 1].
[[nodiscard]] double similarity(std::span<const double> p, std::span<const double> q);

}  // namespace decloud::stats

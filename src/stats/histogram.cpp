#include "stats/histogram.hpp"

#include <algorithm>

#include "common/ensure.hpp"

namespace decloud::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0.0) {
  DECLOUD_EXPECTS(hi > lo);
  DECLOUD_EXPECTS(bins > 0);
}

std::size_t Histogram::bin_of(double sample) const {
  const double t = (sample - lo_) / (hi_ - lo_);
  const auto raw = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  return static_cast<std::size_t>(
      std::clamp<std::ptrdiff_t>(raw, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1));
}

void Histogram::add(double sample, double weight) {
  DECLOUD_EXPECTS(weight >= 0.0);
  counts_[bin_of(sample)] += weight;
  total_ += weight;
  sum_ += sample * weight;
}

void Histogram::merge(const Histogram& other) {
  DECLOUD_EXPECTS_MSG(lo_ == other.lo_ && hi_ == other.hi_,
                      "histogram merge requires identical bucket bounds");
  DECLOUD_EXPECTS_MSG(counts_.size() == other.counts_.size(),
                      "histogram merge requires identical bin counts");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  sum_ += other.sum_;
}

void Histogram::add_all(std::span<const double> samples) {
  for (const double s : samples) add(s);
}

std::vector<double> Histogram::to_distribution() const { return normalize(counts_); }

void Histogram::restore(std::span<const double> counts, double total, double sum) {
  DECLOUD_EXPECTS_MSG(counts.size() == counts_.size(),
                      "histogram restore requires matching bin count");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] = counts[i];
  total_ = total;
  sum_ = sum;
}

std::vector<double> normalize(std::span<const double> weights) {
  double total = 0.0;
  for (const double w : weights) total += w;
  std::vector<double> out(weights.size());
  if (total <= 0.0) {
    const double u = weights.empty() ? 0.0 : 1.0 / static_cast<double>(weights.size());
    std::fill(out.begin(), out.end(), u);
    return out;
  }
  for (std::size_t i = 0; i < weights.size(); ++i) out[i] = weights[i] / total;
  return out;
}

}  // namespace decloud::stats

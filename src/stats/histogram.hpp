// Fixed-bin histograms and discrete probability distributions.
//
// The flexibility study (Fig. 5d–5f) controls the divergence between the
// distributions of requested and offered resources; these helpers convert
// samples into normalized distributions the KL-divergence code consumes.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace decloud::stats {

/// A histogram with `bins` equal-width bins over [lo, hi).  Samples outside
/// the range are clamped into the boundary bins, so no mass is lost.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double sample, double weight = 1.0);
  void add_all(std::span<const double> samples);

  /// Accumulates another histogram into this one, bin by bin.  Both
  /// histograms must describe the SAME bucket layout — identical [lo, hi)
  /// and bin count — or the per-bin counts would silently land in buckets
  /// with different meanings; a mismatch throws precondition_error instead.
  /// This is the merge the obs metrics registry uses to fold per-shard
  /// histograms in fixed shard order.
  void merge(const Histogram& other);

  [[nodiscard]] std::size_t bin_of(double sample) const;
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] double count(std::size_t bin) const { return counts_[bin]; }
  [[nodiscard]] double total() const { return total_; }
  /// Σ sample·weight over everything added (before clamping); merged
  /// histograms accumulate it in merge order.
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }

  /// Normalizes to a probability distribution.  An empty histogram yields a
  /// uniform distribution (the least-informative choice).
  [[nodiscard]] std::vector<double> to_distribution() const;

  /// Overwrites the accumulated state (per-bin counts, total, sum) for
  /// snapshot/restore.  `counts.size()` must match bin_count().
  void restore(std::span<const double> counts, double total, double sum);

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
  double sum_ = 0.0;
};

/// Normalizes arbitrary non-negative weights into a distribution summing to
/// one.  All-zero input yields the uniform distribution.
[[nodiscard]] std::vector<double> normalize(std::span<const double> weights);

}  // namespace decloud::stats

#pragma once

// dsched scheduler — systematic exploration of thread interleavings
// (DESIGN.md §3i).  Only meaningful when the tree is built with
// -DDECLOUD_DSCHED=ON; in the default build this header provides the
// types but explore()/replay()/minimize() are not compiled.
//
// A model is a plain callable.  explore() runs it repeatedly, each run
// under a different schedule: the body becomes virtual thread 0, every
// dsched primitive operation is a yield point, and exactly one virtual
// thread runs between yield points.  Failures — a ModelFailure thrown by
// dsched::check, any DECLOUD_EXPECTS/ENSURES violation or other
// exception escaping a virtual thread, a deadlock (no virtual thread
// enabled while some are blocked — this is also how a lost wakeup
// presents), or a livelock (max_steps exceeded) — stop exploration and
// produce a replayable schedule certificate.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace decloud::dsched {

/// Thrown by dsched::check inside a model body; caught by the explorer
/// and reported as a schedule failure with a certificate.
class ModelFailure : public std::runtime_error {
 public:
  explicit ModelFailure(const std::string& message) : std::runtime_error(message) {}
};

/// Model-body assertion.  Use instead of gtest macros inside model
/// bodies: it throws, so the explorer can attribute the failure to the
/// exact schedule and keep the process alive to emit a certificate.
inline void check(bool condition, const std::string& message) {
  if (!condition) throw ModelFailure(message);
}

struct Options {
  enum class Mode {
    kExhaustive,  // bounded DFS over all interleavings (+ sleep sets)
    kPct,         // seeded random-priority sampling (PCT-style)
    kReplay,      // single run following replay_choices
  };

  Mode mode = Mode::kExhaustive;

  /// Root of all randomness in kPct mode; byte-determinism of the whole
  /// exploration follows from it (SplitMix64 throughout).
  std::uint64_t seed = 1;

  /// kExhaustive: exploration budget (complete=false when exceeded).
  /// kPct: number of sampled schedules.
  std::size_t max_schedules = 200000;

  /// Per-schedule yield-point budget; exceeding it is reported as a
  /// livelock failure.
  std::size_t max_steps = 20000;

  /// kPct: number of priority change points per schedule is depth - 1
  /// (PCT detects any bug of depth <= pct_depth with known probability).
  std::size_t pct_depth = 3;

  /// kExhaustive: sleep-set partial-order reduction.  Sound for the
  /// failure classes above; turn off to measure the unreduced space.
  bool sleep_sets = true;

  /// kReplay: the choice sequence, normally parsed from a certificate.
  std::vector<int> replay_choices;
};

struct RunResult {
  std::size_t schedules = 0;     // schedules fully executed
  std::size_t pruned = 0;        // subtrees cut by sleep sets
  std::size_t steps = 0;         // yield points in the last schedule
  std::size_t max_threads = 0;   // peak live virtual threads observed
  bool complete = false;         // kExhaustive: DFS finished within budget
  bool failed = false;
  bool diverged = false;         // kReplay: a recorded choice was not enabled
  std::string failure;           // human-readable failure description
  std::string certificate;       // replayable schedule of the failing run
  std::uint64_t trace_hash = 0;  // SplitMix64 fold of every explored choice
};

/// Serialized schedule: "dsched1;mode=<m>;seed=<n>;threads=<k>;choices=a,b,c".
std::string format_certificate(Options::Mode mode, std::uint64_t seed, std::size_t threads,
                               const std::vector<int>& choices);

/// Parses a certificate into replay options.  Throws std::invalid_argument
/// on malformed input.
Options parse_certificate(const std::string& certificate);

/// Runs `body` under systematically explored schedules.  Stops at the
/// first failing schedule.  `body` must be re-entrant: each run must
/// construct the objects it explores from scratch.
RunResult explore(const Options& options, const std::function<void()>& body);

/// Replays one schedule from a certificate.
RunResult replay(const std::string& certificate, const std::function<void()>& body);

/// Greedy delta-minimization: repeatedly tries to reduce the number of
/// context switches in the certificate, accepting a variant only if its
/// replay still fails.  Returns the smallest certificate found.
std::string minimize(const std::string& certificate, const std::function<void()>& body);

}  // namespace decloud::dsched

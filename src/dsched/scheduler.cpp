#include "dsched/scheduler.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/ensure.hpp"

namespace decloud::dsched {

namespace {

const char* mode_name(Options::Mode mode) {
  switch (mode) {
    case Options::Mode::kExhaustive:
      return "exhaustive";
    case Options::Mode::kPct:
      return "pct";
    case Options::Mode::kReplay:
      return "replay";
  }
  return "unknown";
}

}  // namespace

std::string format_certificate(Options::Mode mode, std::uint64_t seed, std::size_t threads,
                               const std::vector<int>& choices) {
  std::ostringstream out;
  out << "dsched1;mode=" << mode_name(mode) << ";seed=" << seed << ";threads=" << threads
      << ";choices=";
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (i != 0) out << ',';
    out << choices[i];
  }
  return out.str();
}

Options parse_certificate(const std::string& certificate) {
  Options options;
  options.mode = Options::Mode::kReplay;

  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(certificate);
  while (std::getline(in, field, ';')) fields.push_back(field);
  if (fields.empty() || fields[0] != "dsched1") {
    throw std::invalid_argument("dsched certificate must start with \"dsched1;\": " + certificate);
  }
  bool saw_choices = false;
  for (std::size_t i = 1; i < fields.size(); ++i) {
    const std::string& f = fields[i];
    const std::size_t eq = f.find('=');
    if (eq == std::string::npos) throw std::invalid_argument("malformed certificate field: " + f);
    const std::string key = f.substr(0, eq);
    const std::string value = f.substr(eq + 1);
    if (key == "seed") {
      options.seed = std::stoull(value);
    } else if (key == "choices") {
      saw_choices = true;
      std::istringstream cs(value);
      std::string token;
      while (std::getline(cs, token, ',')) {
        if (!token.empty()) options.replay_choices.push_back(std::stoi(token));
      }
    } else if (key != "mode" && key != "threads") {
      throw std::invalid_argument("unknown certificate field: " + key);
    }
  }
  if (!saw_choices) throw std::invalid_argument("certificate has no choices field");
  return options;
}

}  // namespace decloud::dsched

#if defined(DECLOUD_DSCHED) && DECLOUD_DSCHED

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "common/rng.hpp"
#include "dsched/sync.hpp"

namespace decloud::dsched {

namespace {

using detail::OpKind;

constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ULL;

/// Internal unwind signal used to tear down virtual threads after a
/// failure has been detected.  Deliberately NOT derived from
/// std::exception so model code catching std::exception cannot swallow
/// it (catch (...) can, which parallel_for's error collection does — the
/// aborted run's results are discarded, so that is harmless).
struct AbortSchedule {};

struct Op {
  OpKind kind = OpKind::kStart;
  const void* object = nullptr;
  const void* object2 = nullptr;  // kCvWait: the mutex released/reacquired
  int target = -1;                // kJoin: joined vthread id
};

struct VThread {
  int id = 0;
  std::function<void()> fn;
  std::thread os;
  Op pending;
  bool parked = false;      // at a yield point, waiting for a grant
  bool granted = false;
  bool blocked_cv = false;  // parked inside condition_variable::wait
  bool finished = false;
  bool try_lock_result = false;
  std::int64_t priority = 0;  // PCT random priority (higher runs first)
  const void* wait_mutex = nullptr;
  std::exception_ptr error;
};

/// One DFS choice point.  `sleep` is the sleep set on entry (vids whose
/// pending ops provably commute with everything explored since they
/// became ready — exploring them here would revisit a covered subtree).
struct Frame {
  std::vector<int> enabled;
  std::vector<int> sleep;
  std::vector<int> explored;
  int chosen = -1;
};

bool contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

class Scheduler;

thread_local Scheduler* tl_sched = nullptr;  // set while an OS thread acts as a vthread
thread_local int tl_vid = -1;

Scheduler* g_active = nullptr;  // one exploration per process at a time

class Scheduler {
 public:
  Scheduler(const Options& options, const std::function<void()>& body)
      : opts_(options), body_(body) {}

  RunResult run();

  // ----- hooks, called from sync.hpp on a virtual thread -----

  void hook_yield(Op op) {
    std::unique_lock<std::mutex> lk(m_);
    if (abort_) {
      // Teardown after a detected failure.  Condition waits must unwind
      // (a no-op return would make predicate loops spin forever); every
      // other op degrades to a no-op so destructors can run.
      if (op.kind == OpKind::kCvWait) throw AbortSchedule{};
      return;
    }
    VThread& self = *threads_[static_cast<std::size_t>(tl_vid)];
    if (op.object != nullptr) label(op.object);
    if (op.object2 != nullptr) label(op.object2);
    self.pending = op;
    self.parked = true;
    dispatch(lk);
    cv_.wait(lk, [&] { return self.granted; });
    self.granted = false;
    self.parked = false;
    if (abort_) throw AbortSchedule{};
  }

  bool hook_try_lock(const void* m) {
    {
      std::unique_lock<std::mutex> lk(m_);
      if (abort_) return true;  // pretend success so retry loops make progress
    }
    Op op;
    op.kind = OpKind::kMutexTryLock;
    op.object = m;
    hook_yield(op);
    std::unique_lock<std::mutex> lk(m_);
    return threads_[static_cast<std::size_t>(tl_vid)]->try_lock_result;
  }

  int hook_spawn(std::function<void()> fn) {
    Op op;
    op.kind = OpKind::kSpawn;
    hook_yield(op);
    std::unique_lock<std::mutex> lk(m_);
    if (abort_) return -2;
    return spawn_locked(std::move(fn));
  }

  void hook_join(int vid) {
    {
      std::unique_lock<std::mutex> lk(m_);
      DECLOUD_EXPECTS(vid >= 0 && static_cast<std::size_t>(vid) < threads_.size());
      if (abort_) {
        // Real join during teardown: the caller may free memory the
        // target's stack still references (thread_pool members), so the
        // target must actually be gone before we return.
        std::thread& os = threads_[static_cast<std::size_t>(vid)]->os;
        lk.unlock();
        if (os.joinable()) os.join();
        return;
      }
    }
    Op op;
    op.kind = OpKind::kJoin;
    op.target = vid;
    op.object = threads_[static_cast<std::size_t>(vid)].get();
    hook_yield(op);
  }

 private:
  // ----- one schedule -----

  void run_schedule() {
    owners_.clear();
    waiters_.clear();
    labels_.clear();
    trace_.clear();
    next_sleep_.clear();
    threads_.clear();
    prune_stop_ = false;
    run_done_ = false;
    abort_ = false;
    failed_ = false;
    diverged_ = false;
    failure_.clear();
    trace_hash_ = SplitMix64(trace_hash_ ^ kGolden).next();  // run separator
    {
      std::unique_lock<std::mutex> lk(m_);
      spawn_locked(body_);  // vthread 0 = the model body
      dispatch(lk);
      cv_.wait(lk, [&] { return run_done_; });
    }
    for (const auto& t : threads_) {
      if (t->os.joinable()) t->os.join();
    }
    if (!failed_) {
      for (const auto& t : threads_) {
        if (!t->error) continue;
        failed_ = true;
        failure_ = "vthread " + std::to_string(t->id) + ": " + describe_error(t->error);
        break;
      }
    }
  }

  int spawn_locked(std::function<void()> fn) {  // requires m_ held
    const int vid = static_cast<int>(threads_.size());
    auto t = std::make_unique<VThread>();
    t->id = vid;
    t->fn = std::move(fn);
    t->parked = true;
    t->pending = Op{};  // OpKind::kStart
    if (opts_.mode == Options::Mode::kPct) {
      t->priority = static_cast<std::int64_t>(run_rng_.next() >> 1);
    }
    threads_.push_back(std::move(t));
    threads_[static_cast<std::size_t>(vid)]->os = std::thread([this, vid] { trampoline(vid); });
    return vid;
  }

  void trampoline(int vid) {
    tl_sched = this;
    tl_vid = vid;
    VThread* self = nullptr;
    bool aborted = false;
    {
      std::unique_lock<std::mutex> lk(m_);
      self = threads_[static_cast<std::size_t>(vid)].get();
      cv_.wait(lk, [&] { return self->granted; });
      self->granted = false;
      self->parked = false;
      aborted = abort_;
    }
    std::exception_ptr error;
    if (!aborted) {
      try {
        self->fn();
      } catch (const AbortSchedule&) {  // clean teardown, not a model error
      } catch (...) {
        error = std::current_exception();
      }
    }
    {
      std::unique_lock<std::mutex> lk(m_);
      self->finished = true;
      self->parked = false;
      self->error = error;
      if (abort_) {
        bool all_finished = true;
        for (const auto& t : threads_) all_finished = all_finished && t->finished;
        if (all_finished) {
          run_done_ = true;
          cv_.notify_all();
        }
      } else {
        dispatch(lk);
      }
    }
    tl_vid = -1;
    tl_sched = nullptr;
  }

  // ----- the decision loop -----

  void dispatch(std::unique_lock<std::mutex>& lk) {
    if (abort_ || run_done_) return;
    std::vector<int> enabled;
    bool any_live = false;
    for (const auto& t : threads_) {
      if (t->finished) continue;
      any_live = true;
      if (t->blocked_cv || !t->parked || t->granted) continue;
      if (op_enabled(*t)) enabled.push_back(t->id);
    }
    if (!any_live) {
      run_done_ = true;
      cv_.notify_all();
      return;
    }
    if (enabled.empty()) {
      fail(describe_deadlock());
      return;
    }
    if (trace_.size() >= opts_.max_steps) {
      fail("livelock: schedule exceeded max_steps=" + std::to_string(opts_.max_steps));
      return;
    }
    int chosen = -1;
    switch (opts_.mode) {
      case Options::Mode::kExhaustive:
        chosen = pick_exhaustive(enabled);
        break;
      case Options::Mode::kPct:
        chosen = pick_pct(enabled);
        break;
      case Options::Mode::kReplay:
        chosen = pick_replay(enabled);
        break;
    }
    if (chosen < 0) return;  // pick already reported a failure
    trace_.push_back(chosen);
    trace_hash_ = SplitMix64(trace_hash_ ^ (static_cast<std::uint64_t>(chosen) + 1)).next();
    apply(chosen, lk);
  }

  [[nodiscard]] bool op_enabled(const VThread& t) const {
    switch (t.pending.kind) {
      case OpKind::kMutexLock:
        return owners_.find(t.pending.object) == owners_.end();
      case OpKind::kJoin:
        return threads_[static_cast<std::size_t>(t.pending.target)]->finished;
      default:
        return true;
    }
  }

  void apply(int chosen, std::unique_lock<std::mutex>& lk) {
    VThread& t = *threads_[static_cast<std::size_t>(chosen)];
    const Op op = t.pending;
    switch (op.kind) {
      case OpKind::kMutexLock: {
        owners_[op.object] = chosen;
        grant(t);
        break;
      }
      case OpKind::kMutexTryLock: {
        const bool free = owners_.find(op.object) == owners_.end();
        t.try_lock_result = free;
        if (free) owners_[op.object] = chosen;
        grant(t);
        break;
      }
      case OpKind::kMutexUnlock: {
        const auto it = owners_.find(op.object);
        if (it == owners_.end() || it->second != chosen) {
          fail("vthread " + std::to_string(chosen) + " unlocked mutex " + label(op.object) +
               " it does not hold (undefined behaviour under std::mutex)");
          return;
        }
        owners_.erase(it);
        grant(t);
        break;
      }
      case OpKind::kCvWait: {
        const auto it = owners_.find(op.object2);
        if (it == owners_.end() || it->second != chosen) {
          fail("vthread " + std::to_string(chosen) + " waited on " + label(op.object) +
               " without holding its mutex (undefined behaviour under std)");
          return;
        }
        owners_.erase(it);  // atomic unlock + park, as std specifies
        t.blocked_cv = true;
        t.wait_mutex = op.object2;
        waiters_[op.object].push_back(chosen);
        dispatch(lk);  // the wait consumed this step; schedule someone else
        break;
      }
      case OpKind::kCvNotifyOne:
      case OpKind::kCvNotifyAll: {
        auto& queue = waiters_[op.object];
        const std::size_t woken =
            op.kind == OpKind::kCvNotifyAll ? queue.size() : std::min<std::size_t>(1, queue.size());
        for (std::size_t i = 0; i < woken; ++i) {
          VThread& w = *threads_[static_cast<std::size_t>(queue[i])];
          w.blocked_cv = false;
          // The wakeup is modelled as a fresh blocking acquire of the
          // mutex the waiter released, so contention on reacquire is
          // part of the explored space.  FIFO wake order (deterministic;
          // std leaves it unspecified — see DESIGN.md §3i).
          Op relock;
          relock.kind = OpKind::kMutexLock;
          relock.object = w.wait_mutex;
          w.pending = relock;
        }
        queue.erase(queue.begin(), queue.begin() + static_cast<std::ptrdiff_t>(woken));
        grant(t);
        break;
      }
      default: {  // kStart, kSpawn, kJoin, and all atomic ops
        grant(t);
        break;
      }
    }
  }

  void grant(VThread& t) {
    t.granted = true;
    cv_.notify_all();
  }

  void fail(const std::string& message) {
    failed_ = true;
    failure_ = message;
    abort_ = true;
    for (const auto& t : threads_) {
      if (!t->finished) t->granted = true;
    }
    cv_.notify_all();
  }

  // ----- schedule policies -----

  int pick_exhaustive(const std::vector<int>& enabled) {
    const std::size_t depth = trace_.size();
    if (prune_stop_) return enabled.front();
    if (depth < frames_.size()) {
      Frame& f = frames_[depth];
      if (f.enabled != enabled) {
        fail("model is schedule-nondeterministic: the same choice prefix produced a different "
             "enabled set on replay (model bodies must have no randomness or wall-clock input)");
        return -1;
      }
      next_sleep_ = child_sleep(f, f.chosen);
      return f.chosen;
    }
    Frame f;
    f.enabled = enabled;
    f.sleep = next_sleep_;
    int choice = -1;
    for (int vid : enabled) {
      if (!opts_.sleep_sets || !contains(f.sleep, vid)) {
        choice = vid;
        break;
      }
    }
    if (choice < 0) {
      // Every enabled op is asleep: this subtree is covered by schedules
      // already explored.  Finish the run deterministically (no new
      // choice points) and stop branching below this depth.
      prune_stop_ = true;
      ++pruned_;
      return enabled.front();
    }
    f.chosen = choice;
    next_sleep_ = child_sleep(f, choice);
    frames_.push_back(std::move(f));
    return choice;
  }

  [[nodiscard]] std::vector<int> child_sleep(const Frame& f, int chosen) const {
    if (!opts_.sleep_sets) return {};
    std::vector<int> out;
    const Op& chosen_op = threads_[static_cast<std::size_t>(chosen)]->pending;
    const auto consider = [&](int vid) {
      if (vid == chosen || contains(out, vid)) return;
      if (independent(threads_[static_cast<std::size_t>(vid)]->pending, chosen_op)) {
        out.push_back(vid);
      }
    };
    for (int vid : f.sleep) consider(vid);
    for (int vid : f.explored) consider(vid);
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Dependency relation for sleep sets: two pending ops commute iff
  /// they are data ops on different objects, or both loads of the same
  /// atomic.  Control ops (spawn/join/start/cv) are conservatively
  /// dependent with everything.
  [[nodiscard]] static bool independent(const Op& a, const Op& b) {
    const auto data_op = [](OpKind k) {
      return k == OpKind::kAtomicLoad || k == OpKind::kAtomicStore || k == OpKind::kAtomicRmw ||
             k == OpKind::kMutexLock || k == OpKind::kMutexTryLock || k == OpKind::kMutexUnlock;
    };
    if (!data_op(a.kind) || !data_op(b.kind)) return false;
    if (a.object != b.object) return true;
    return a.kind == OpKind::kAtomicLoad && b.kind == OpKind::kAtomicLoad;
  }

  int pick_pct(const std::vector<int>& enabled) {
    int best = enabled.front();
    for (int vid : enabled) {
      if (threads_[static_cast<std::size_t>(vid)]->priority >
          threads_[static_cast<std::size_t>(best)]->priority) {
        best = vid;
      }
    }
    // Priority change point: after this step the running thread drops
    // below every other priority, forcing a preemption (PCT, Burckhardt
    // et al.: d-1 change points detect any bug of depth <= d).
    if (std::find(change_points_.begin(), change_points_.end(), trace_.size() + 1) !=
        change_points_.end()) {
      threads_[static_cast<std::size_t>(best)]->priority = low_counter_--;
    }
    return best;
  }

  int pick_replay(const std::vector<int>& enabled) {
    const std::size_t depth = trace_.size();
    if (depth < opts_.replay_choices.size()) {
      const int want = opts_.replay_choices[depth];
      if (!contains(enabled, want)) {
        diverged_ = true;
        fail("replay divergence at step " + std::to_string(depth) + ": vthread " +
             std::to_string(want) + " is not enabled under this model");
        return -1;
      }
      return want;
    }
    return enabled.front();  // deterministic completion past the recorded prefix
  }

  /// Advances the DFS to the next unexplored branch.  Returns false when
  /// the whole interleaving space has been covered.
  bool advance() {
    while (!frames_.empty()) {
      Frame& f = frames_.back();
      f.explored.push_back(f.chosen);
      int next = -1;
      for (int vid : f.enabled) {
        if (contains(f.explored, vid)) continue;
        if (opts_.sleep_sets && contains(f.sleep, vid)) continue;
        next = vid;
        break;
      }
      if (next >= 0) {
        f.chosen = next;
        return true;
      }
      frames_.pop_back();
    }
    return false;
  }

  // ----- diagnostics -----

  /// Stable per-run label for a sync object (first-touch order), so
  /// failure messages are deterministic — raw addresses are not.
  std::string label(const void* object) {  // requires m_ held
    const auto it = labels_.find(object);
    const std::size_t id = it == labels_.end() ? (labels_[object] = labels_.size()) : it->second;
    return "object#" + std::to_string(id);
  }

  [[nodiscard]] std::string describe_deadlock() {
    std::ostringstream out;
    out << "deadlock: no virtual thread is enabled";
    for (const auto& t : threads_) {
      if (t->finished) continue;
      out << "; vthread " << t->id;
      if (t->blocked_cv) {
        out << " waits on condition_variable " << label(t->pending.object)
            << " with no reachable notifier (lost wakeup or deadlock)";
      } else if (t->pending.kind == OpKind::kMutexLock) {
        out << " blocked acquiring mutex " << label(t->pending.object);
      } else if (t->pending.kind == OpKind::kJoin) {
        out << " joins vthread " << t->pending.target << " which never finishes";
      } else {
        out << " has a disabled pending op";
      }
    }
    return out.str();
  }

  [[nodiscard]] static std::string describe_error(const std::exception_ptr& error) {
    try {
      std::rethrow_exception(error);
    } catch (const std::exception& e) {
      return e.what();
    } catch (...) {
      return "unknown exception";
    }
  }

  // ----- state -----

  const Options opts_;
  const std::function<void()>& body_;

  std::mutex m_;  // declint:allow(raw-sync-primitive) — the scheduler's own machinery
  std::condition_variable cv_;
  std::vector<std::unique_ptr<VThread>> threads_;
  std::map<const void*, int> owners_;                 // mutex -> holding vthread
  std::map<const void*, std::vector<int>> waiters_;   // cv -> FIFO parked vthreads
  std::map<const void*, std::size_t> labels_;         // object -> first-touch id
  std::vector<int> trace_;
  std::vector<Frame> frames_;      // DFS choice stack, persists across runs
  std::vector<int> next_sleep_;    // sleep set to install on the next new frame
  std::vector<std::size_t> change_points_;  // PCT: 1-based step indices
  SplitMix64 run_rng_{0};
  std::int64_t low_counter_ = -1;
  std::size_t pruned_ = 0;
  std::size_t last_len_ = 64;  // previous schedule length, sizes PCT change points
  std::uint64_t trace_hash_ = 0;
  bool prune_stop_ = false;
  bool run_done_ = false;
  bool abort_ = false;
  bool failed_ = false;
  bool diverged_ = false;
  std::string failure_;
};

RunResult Scheduler::run() {
  RunResult result;
  g_active = this;
  switch (opts_.mode) {
    case Options::Mode::kExhaustive: {
      std::size_t runs = 0;
      for (;;) {
        run_schedule();
        ++runs;
        if (prune_stop_) {
          // counted via pruned_ when the prune was detected
        } else {
          ++result.schedules;
        }
        result.steps = trace_.size();
        result.max_threads = std::max(result.max_threads, threads_.size());
        if (failed_) {
          result.failed = true;
          result.failure = failure_;
          result.certificate =
              format_certificate(opts_.mode, opts_.seed, threads_.size(), trace_);
          break;
        }
        if (runs >= opts_.max_schedules) break;  // budget exhausted, complete stays false
        if (!advance()) {
          result.complete = true;
          break;
        }
      }
      break;
    }
    case Options::Mode::kPct: {
      for (std::size_t k = 0; k < opts_.max_schedules; ++k) {
        run_rng_ = SplitMix64(opts_.seed + kGolden * (k + 1));
        change_points_.clear();
        for (std::size_t i = 0; i + 1 < opts_.pct_depth; ++i) {
          change_points_.push_back(1 + run_rng_.next() % last_len_);
        }
        low_counter_ = -1;
        run_schedule();
        last_len_ = std::max<std::size_t>(trace_.size(), 2);
        ++result.schedules;
        result.steps = trace_.size();
        result.max_threads = std::max(result.max_threads, threads_.size());
        if (failed_) {
          result.failed = true;
          result.failure = failure_;
          result.certificate =
              format_certificate(opts_.mode, opts_.seed, threads_.size(), trace_);
          break;
        }
      }
      break;
    }
    case Options::Mode::kReplay: {
      run_schedule();
      result.schedules = 1;
      result.steps = trace_.size();
      result.max_threads = threads_.size();
      result.diverged = diverged_;
      if (failed_) {
        result.failed = true;
        result.failure = failure_;
        result.certificate = format_certificate(opts_.mode, opts_.seed, threads_.size(), trace_);
      }
      break;
    }
  }
  result.pruned = pruned_;
  result.trace_hash = trace_hash_;
  g_active = nullptr;
  return result;
}

}  // namespace

namespace detail {

bool in_model() noexcept { return tl_sched != nullptr; }

void yield(OpKind kind, const void* object) {
  Op op;
  op.kind = kind;
  op.object = object;
  tl_sched->hook_yield(op);
}

void mutex_lock(const void* m) { yield(OpKind::kMutexLock, m); }

bool mutex_try_lock(const void* m) { return tl_sched->hook_try_lock(m); }

void mutex_unlock(const void* m) { yield(OpKind::kMutexUnlock, m); }

void cv_wait(const void* cv, const void* m) {
  Op op;
  op.kind = OpKind::kCvWait;
  op.object = cv;
  op.object2 = m;
  tl_sched->hook_yield(op);
}

void cv_notify(const void* cv, bool all) {
  yield(all ? OpKind::kCvNotifyAll : OpKind::kCvNotifyOne, cv);
}

int spawn(std::function<void()> fn) { return tl_sched->hook_spawn(std::move(fn)); }

void join(int vthread) {
  if (vthread >= 0) tl_sched->hook_join(vthread);
}

}  // namespace detail

RunResult explore(const Options& options, const std::function<void()>& body) {
  DECLOUD_EXPECTS(static_cast<bool>(body));
  DECLOUD_EXPECTS(options.max_steps > 0);
  DECLOUD_EXPECTS(options.mode != Options::Mode::kPct || options.pct_depth >= 1);
  DECLOUD_EXPECTS(tl_sched == nullptr);  // no nested exploration inside a model body
  DECLOUD_EXPECTS(g_active == nullptr);
  Scheduler scheduler(options, body);
  return scheduler.run();
}

RunResult replay(const std::string& certificate, const std::function<void()>& body) {
  return explore(parse_certificate(certificate), body);
}

std::string minimize(const std::string& certificate, const std::function<void()>& body) {
  const Options base = parse_certificate(certificate);
  RunResult current = explore(base, body);
  if (!current.failed || current.diverged) return certificate;  // nothing to minimize against
  // Work from the full failing trace (replay pads past the recorded
  // prefix, so the actual trace may be longer than the input choices).
  std::vector<int> choices = parse_certificate(current.certificate).replay_choices;

  const auto replay_failed = [&](const std::vector<int>& candidate) {
    Options o = base;
    o.replay_choices = candidate;
    const RunResult r = explore(o, body);
    return r.failed && !r.diverged;
  };

  // Phase 1: shortest failing explicit prefix.  The boundary search
  // assumes rough monotonicity; the final check keeps the result honest.
  std::size_t lo = 0;
  std::size_t hi = choices.size();
  const auto prefix = [&](std::size_t n) {
    return std::vector<int>(choices.begin(), choices.begin() + static_cast<std::ptrdiff_t>(n));
  };
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (replay_failed(prefix(mid))) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (hi < choices.size() && replay_failed(prefix(hi))) choices = prefix(hi);

  // Phase 2: merge context switches by adjacent swaps while the failure
  // still reproduces.
  const auto switches = [](const std::vector<int>& v) {
    std::size_t n = 0;
    for (std::size_t i = 1; i < v.size(); ++i) n += v[i] != v[i - 1] ? 1 : 0;
    return n;
  };
  bool improved = true;
  int passes = 0;
  while (improved && passes++ < 8) {
    improved = false;
    for (std::size_t i = 1; i < choices.size(); ++i) {
      if (choices[i] == choices[i - 1]) continue;
      std::vector<int> candidate = choices;
      std::swap(candidate[i - 1], candidate[i]);
      if (switches(candidate) >= switches(choices)) continue;
      if (replay_failed(candidate)) {
        choices = std::move(candidate);
        improved = true;
      }
    }
  }

  Options final_options = base;
  final_options.replay_choices = choices;
  const RunResult r = explore(final_options, body);
  return r.failed && !r.diverged ? r.certificate : certificate;
}

}  // namespace decloud::dsched

#endif  // DECLOUD_DSCHED

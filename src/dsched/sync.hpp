#pragma once

// dsched — deterministic-schedule sync primitives (DESIGN.md §3i).
//
// Every piece of concurrency in the tree goes through these wrappers
// instead of the raw std primitives (enforced by declint's
// raw-sync-primitive rule).  Two build modes:
//
//   DECLOUD_DSCHED off (default): each wrapper is a pure type alias of
//     the corresponding std primitive — zero overhead, proven by the
//     static_asserts in tests/common/dsched_sync_test.cpp.
//
//   DECLOUD_DSCHED on: each operation (lock/unlock/load/store/wait/
//     notify/spawn/join) first asks the active schedule explorer for
//     permission, turning it into a yield point.  A cooperative
//     virtual-thread scheduler (scheduler.hpp) then drives exactly one
//     thread at a time through every yield point, either exhaustively
//     (DFS + sleep sets) or by seeded PCT sampling.  Threads that are
//     NOT part of a model run (e.g. ordinary gtest bodies in an
//     instrumented build) fall through to the real std primitive, so the
//     whole tier-1 suite still passes with DECLOUD_DSCHED=ON.
//
// Mixing model and non-model threads on the SAME object is unsupported:
// a model must construct the objects (queues, pools, engines) it
// explores inside its own body.
//
// This directory is the one sanctioned home for raw std primitives.

#if defined(DECLOUD_DSCHED) && DECLOUD_DSCHED

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

namespace decloud::dsched {

inline constexpr bool kEnabled = true;

namespace detail {

// Yield-point taxonomy.  The scheduler uses the (kind, object) pair as
// its dependency relation for sleep-set pruning: two operations commute
// iff they touch different objects, or are both atomic loads.
enum class OpKind : int {
  kStart = 0,     // first slice of a freshly spawned virtual thread
  kAtomicLoad,    // dsched::atomic<T>::load / implicit conversion
  kAtomicStore,   // dsched::atomic<T>::store / operator=
  kAtomicRmw,     // fetch_add / exchange / compare_exchange / ++ / +=
  kMutexLock,     // blocking acquire — enabled iff the mutex is free
  kMutexTryLock,  // non-blocking acquire — always enabled
  kMutexUnlock,   // release
  kCvWait,        // atomic unlock + park on the condition variable
  kCvNotifyOne,   // wake the oldest waiter (FIFO, deterministic)
  kCvNotifyAll,   // wake every waiter
  kSpawn,         // dsched::thread construction
  kJoin,          // dsched::thread::join — enabled iff target finished
};

// Implemented in scheduler.cpp.  All are no-ops / std passthroughs when
// the calling OS thread is not a scheduled virtual thread.
bool in_model() noexcept;
void yield(OpKind kind, const void* object);
void mutex_lock(const void* m);
bool mutex_try_lock(const void* m);
void mutex_unlock(const void* m);
void cv_wait(const void* cv, const void* m);
void cv_notify(const void* cv, bool all);
int spawn(std::function<void()> fn);
void join(int vthread);

}  // namespace detail

class condition_variable;

class mutex {
 public:
  mutex() = default;
  mutex(const mutex&) = delete;
  mutex& operator=(const mutex&) = delete;

  void lock() {
    if (detail::in_model()) {
      detail::mutex_lock(this);
    } else {
      real_.lock();
    }
  }

  bool try_lock() {
    if (detail::in_model()) return detail::mutex_try_lock(this);
    return real_.try_lock();
  }

  void unlock() {
    if (detail::in_model()) {
      detail::mutex_unlock(this);
    } else {
      real_.unlock();
    }
  }

 private:
  friend class condition_variable;
  std::mutex real_;
};

class condition_variable {
 public:
  condition_variable() = default;
  condition_variable(const condition_variable&) = delete;
  condition_variable& operator=(const condition_variable&) = delete;

  void notify_one() {
    if (detail::in_model()) {
      detail::cv_notify(this, /*all=*/false);
    } else {
      real_.notify_one();
    }
  }

  void notify_all() {
    if (detail::in_model()) {
      detail::cv_notify(this, /*all=*/true);
    } else {
      real_.notify_all();
    }
  }

  void wait(std::unique_lock<mutex>& lock) {
    if (detail::in_model()) {
      // One yield point covering unlock + park + (after a notify)
      // reacquire.  The scheduler models the reacquire as a fresh
      // kMutexLock op, so wakeup order and lock contention are both
      // explored.  No spurious wakeups are modelled — this is stronger
      // than std, which is fine for checking (a lost wakeup under the
      // no-spurious model is a lost wakeup under std too).
      detail::cv_wait(this, lock.mutex());
      return;
    }
    std::unique_lock<std::mutex> inner(lock.mutex()->real_, std::adopt_lock);
    real_.wait(inner);
    inner.release();
  }

  template <typename Predicate>
  void wait(std::unique_lock<mutex>& lock, Predicate predicate) {
    while (!predicate()) wait(lock);
  }

 private:
  std::condition_variable real_;
};

template <typename T>
class atomic {
 public:
  atomic() noexcept = default;
  constexpr atomic(T desired) noexcept : value_(desired) {}  // NOLINT(google-explicit-constructor)
  atomic(const atomic&) = delete;
  atomic& operator=(const atomic&) = delete;

  T load(std::memory_order order = std::memory_order_seq_cst) const {
    if (detail::in_model()) {
      detail::yield(detail::OpKind::kAtomicLoad, this);
      return value_.load(std::memory_order_relaxed);
    }
    return value_.load(order);
  }

  void store(T desired, std::memory_order order = std::memory_order_seq_cst) {
    if (detail::in_model()) {
      detail::yield(detail::OpKind::kAtomicStore, this);
      value_.store(desired, std::memory_order_relaxed);
      return;
    }
    value_.store(desired, order);
  }

  T exchange(T desired, std::memory_order order = std::memory_order_seq_cst) {
    if (detail::in_model()) {
      detail::yield(detail::OpKind::kAtomicRmw, this);
      return value_.exchange(desired, std::memory_order_relaxed);
    }
    return value_.exchange(desired, order);
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order order = std::memory_order_seq_cst) {
    if (detail::in_model()) {
      detail::yield(detail::OpKind::kAtomicRmw, this);
      return value_.compare_exchange_strong(expected, desired, std::memory_order_relaxed);
    }
    return value_.compare_exchange_strong(expected, desired, order);
  }

  T fetch_add(T arg, std::memory_order order = std::memory_order_seq_cst) {
    if (detail::in_model()) {
      detail::yield(detail::OpKind::kAtomicRmw, this);
      return value_.fetch_add(arg, std::memory_order_relaxed);
    }
    return value_.fetch_add(arg, order);
  }

  T fetch_sub(T arg, std::memory_order order = std::memory_order_seq_cst) {
    if (detail::in_model()) {
      detail::yield(detail::OpKind::kAtomicRmw, this);
      return value_.fetch_sub(arg, std::memory_order_relaxed);
    }
    return value_.fetch_sub(arg, order);
  }

  operator T() const { return load(); }  // NOLINT(google-explicit-constructor)
  T operator=(T desired) {
    store(desired);
    return desired;
  }
  T operator++() { return fetch_add(T{1}) + T{1}; }
  T operator++(int) { return fetch_add(T{1}); }
  T operator--() { return fetch_sub(T{1}) - T{1}; }
  T operator--(int) { return fetch_sub(T{1}); }
  T operator+=(T arg) { return fetch_add(arg) + arg; }
  T operator-=(T arg) { return fetch_sub(arg) - arg; }

 private:
  std::atomic<T> value_{};
};

class thread {
 public:
  thread() noexcept = default;

  template <typename Callable, typename = std::enable_if_t<
                                   !std::is_same_v<std::decay_t<Callable>, thread>>>
  explicit thread(Callable&& fn) {
    if (detail::in_model()) {
      vthread_ = detail::spawn(std::function<void()>(std::forward<Callable>(fn)));
    } else {
      real_ = std::thread(std::forward<Callable>(fn));
    }
  }

  thread(thread&& other) noexcept : real_(std::move(other.real_)), vthread_(other.vthread_) {
    other.vthread_ = -1;
  }

  thread& operator=(thread&& other) noexcept {
    real_ = std::move(other.real_);
    vthread_ = other.vthread_;
    other.vthread_ = -1;
    return *this;
  }

  thread(const thread&) = delete;
  thread& operator=(const thread&) = delete;

  [[nodiscard]] bool joinable() const { return vthread_ != -1 || real_.joinable(); }

  void join() {
    if (vthread_ != -1) {
      // -2 marks a spawn that was swallowed by schedule teardown; joining
      // it is a no-op (detail::join ignores negative ids).
      detail::join(vthread_);
      vthread_ = -1;
      return;
    }
    real_.join();
  }

  static unsigned hardware_concurrency() noexcept { return std::thread::hardware_concurrency(); }

 private:
  std::thread real_;
  int vthread_ = -1;  // >= 0 when this handle names a scheduled virtual thread
};

}  // namespace decloud::dsched

#else  // !DECLOUD_DSCHED — zero-overhead aliases of the std primitives.

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace decloud::dsched {

inline constexpr bool kEnabled = false;

using mutex = std::mutex;
using condition_variable = std::condition_variable;
template <typename T>
using atomic = std::atomic<T>;
using thread = std::thread;

}  // namespace decloud::dsched

#endif  // DECLOUD_DSCHED

#include "dsched/models.hpp"

#include <algorithm>
#include <array>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/bounded_queue.hpp"
#include "common/thread_pool.hpp"
#include "dsched/sync.hpp"
#include "engine/driver.hpp"
#include "stream/streaming_market.hpp"

namespace decloud::dsched {

namespace {

std::string join_ints(const std::vector<int>& values) {
  std::string out;
  for (int v : values) {
    if (!out.empty()) out += ',';
    out += std::to_string(v);
  }
  return out;
}

// ---------------------------------------------------------------------------
// queue_admission: two producers race a concurrent drain on a capacity-2
// BoundedQueue.  Under EVERY interleaving the admission results must
// reconcile exactly with what the drains return: admitted values all
// surface, rejected values never do, and admitted + rejected == pushed.
// ---------------------------------------------------------------------------

std::function<void()> queue_admission_body() {
  return [] {
    BoundedQueue<int> queue(/*capacity=*/2);
    std::array<std::vector<int>, 2> admitted;
    std::array<int, 2> rejected{0, 0};
    std::vector<int> drained;

    const auto producer = [&](int p) {
      for (int i = 0; i < 2; ++i) {
        const int value = (p + 1) * 10 + i;
        const auto result = queue.push(value);
        if (result.admitted()) {
          admitted[static_cast<std::size_t>(p)].push_back(value);
        } else {
          check(result.reason == RejectReason::kCapacity,
                "open-queue rejection must carry kCapacity");
          ++rejected[static_cast<std::size_t>(p)];
        }
      }
    };
    dsched::thread p0([&] { producer(0); });
    dsched::thread p1([&] { producer(1); });
    for (int value : queue.drain()) drained.push_back(value);  // racing drain
    p0.join();
    p1.join();
    for (int value : queue.drain()) drained.push_back(value);  // residue

    std::vector<int> expected = admitted[0];
    expected.insert(expected.end(), admitted[1].begin(), admitted[1].end());
    std::sort(expected.begin(), expected.end());
    std::sort(drained.begin(), drained.end());
    check(drained == expected, "admitted {" + join_ints(expected) + "} != drained {" +
                                   join_ints(drained) + "}: a bid was lost or invented");
    check(expected.size() + static_cast<std::size_t>(rejected[0] + rejected[1]) == 4,
          "admitted + rejected must equal pushes");
  };
}

// ---------------------------------------------------------------------------
// queue_close: a producer races close()+drain().  The shutdown contract
// (bounded_queue.hpp): a push serializes either before the close — then
// its value MUST appear in a drain — or after it — then it is rejected
// with kClosed.  Admitted-then-lost is the bug this model would catch.
// ---------------------------------------------------------------------------

std::function<void()> queue_close_body() {
  return [] {
    BoundedQueue<int> queue(/*capacity=*/4);
    std::vector<int> admitted;
    std::vector<int> drained;
    int rejected_closed = 0;
    bool wrong_reason = false;

    dsched::thread producer([&] {
      for (int value : {1, 2}) {
        const auto result = queue.push(value);
        if (result.admitted()) {
          admitted.push_back(value);
        } else if (result.reason == RejectReason::kClosed) {
          ++rejected_closed;
        } else {
          wrong_reason = true;  // capacity 4 is unreachable with 2 pushes
        }
      }
    });
    queue.close();
    for (int value : queue.drain()) drained.push_back(value);
    producer.join();
    for (int value : queue.drain()) drained.push_back(value);

    check(!wrong_reason, "push after close must be rejected with kClosed");
    check(queue.closed(), "closed() must observe the close");
    std::vector<int> expected = admitted;
    std::sort(expected.begin(), expected.end());
    std::sort(drained.begin(), drained.end());
    check(drained == expected, "admitted {" + join_ints(expected) + "} != drained {" +
                                   join_ints(drained) + "}: an admitted bid was lost on close");
    check(admitted.size() + static_cast<std::size_t>(rejected_closed) == 2,
          "every push is either admitted or rejected-closed");
  };
}

// ---------------------------------------------------------------------------
// pool_nested: caller-helping nested parallel_for on a single-worker pool
// — the PR 2 no-deadlock contract.  A schedule where the nested call
// waits on a worker that never frees up would surface as a deadlock.
// ---------------------------------------------------------------------------

std::function<void()> pool_nested_body() {
  return [] {
    ThreadPool pool(1);
    // Chunk 0 issues a genuinely nested 2-chunk parallel_for (the inner
    // call queues a helper on the already-busy single worker, so only
    // caller-helping can finish it); chunk 1 stays flat to keep the DFS
    // depth exhaustively explorable.
    std::array<int, 3> hits{};  // distinct slots: no synchronization needed
    pool.parallel_for(0, 2, 1, [&](std::size_t i) {
      if (i == 0) {
        pool.parallel_for(0, 2, 1, [&](std::size_t j) { ++hits[j]; });
      } else {
        ++hits[2];
      }
    });
    for (std::size_t s = 0; s < hits.size(); ++s) {
      check(hits[s] == 1, "index " + std::to_string(s) + " ran " + std::to_string(hits[s]) +
                              " times (must be exactly once)");
    }
  };
}

// ---------------------------------------------------------------------------
// pool_exception: both chunks throw; the deterministic-error contract
// says the LOWEST chunk's exception is rethrown whatever the schedule,
// and every chunk still runs exactly once.
// ---------------------------------------------------------------------------

std::function<void()> pool_exception_body() {
  return [] {
    ThreadPool pool(1);
    std::array<int, 2> runs{};
    std::string caught;
    try {
      pool.parallel_for(0, 2, 1, [&](std::size_t i) {
        ++runs[i];
        throw std::runtime_error("chunk" + std::to_string(i));
      });
    } catch (const std::runtime_error& e) {
      caught = e.what();
    }
    check(caught == "chunk0", "lowest-chunk exception must win deterministically; got \"" +
                                  caught + "\"");
    check(runs[0] == 1 && runs[1] == 1, "each chunk must run exactly once despite the throws");
  };
}

// ---------------------------------------------------------------------------
// pool_shutdown: construct/destroy races.  A lost wakeup between the
// destructor's stop-flag write and a worker parking in cv.wait would
// leave the join hanging — which the scheduler reports as a deadlock.
// ---------------------------------------------------------------------------

std::function<void()> pool_shutdown_body() {
  return [] {
    {
      ThreadPool idle(2);  // workers may park before OR after stop is set
    }
  };
}

// ---------------------------------------------------------------------------
// stream_2shard: the consensus-critical end-to-end path.  A 2-shard
// StreamingMarket with a 2-thread scheduler ingests a fixed 10-bid
// workload through 3 micro-epoch closes + drain; the EngineReport
// summary must be byte-identical under every sampled schedule (the
// determinism claim PAPER.md §V rests on).
// ---------------------------------------------------------------------------

stream::StreamConfig stream_model_config() {
  stream::StreamConfig config;
  config.engine.router.num_shards = 2;
  config.engine.router.x0 = 0.0;
  config.engine.router.x1 = 100.0;
  config.engine.router.y0 = 0.0;
  config.engine.router.y1 = 100.0;
  config.engine.market.consensus.difficulty_bits = 5;
  config.engine.market.num_verifiers = 1;
  config.engine.market.consensus.auction.threads = 1;
  config.triggers.bids = 4;
  config.threads = 2;  // real shard fan-out: 2 pool workers under the model
  config.drain_epochs = 4;
  return config;
}

std::function<void()> stream_2shard_body() {
  auto config = std::make_shared<const stream::StreamConfig>(stream_model_config());
  engine::TraceDriverConfig driver;
  driver.workload.num_requests = 6;
  driver.workload.num_offers = 4;
  driver.located_fraction = 1.0;
  driver.seed = 7;
  auto fixture = std::make_shared<const engine::TraceStream>(
      engine::make_trace_stream(driver, config->engine));
  auto expected = std::make_shared<std::string>();  // bytes from the first schedule

  return [config, fixture, expected] {
    stream::StreamingMarket market(*config);
    const auto& snapshot = fixture->snapshot;
    const std::size_t n_req = snapshot.requests.size();
    for (std::size_t idx : fixture->order) {
      if (idx < n_req) {
        market.submit(snapshot.requests[idx]);
      } else {
        market.submit(snapshot.offers[idx - n_req]);
      }
    }
    market.flush();
    market.drain();
    const std::string summary = market.report().summary_json();
    if (expected->empty()) {
      *expected = summary;
    }
    check(summary == *expected,
          "EngineReport bytes diverged across schedules: consensus would fork");
  };
}

Options exhaustive_options() {
  Options options;
  options.mode = Options::Mode::kExhaustive;
  options.max_schedules = 2000000;
  options.max_steps = 5000;
  return options;
}

Options pct_options() {
  Options options;
  options.mode = Options::Mode::kPct;
  options.seed = 42;
  options.max_schedules = 200;
  options.max_steps = 50000;
  return options;
}

std::vector<ModelSpec> build_models() {
  std::vector<ModelSpec> out;
  out.push_back({"queue_admission",
                 "2 producers + racing drain on a capacity-2 BoundedQueue: admission counters "
                 "reconcile with drained values under all interleavings",
                 exhaustive_options(), queue_admission_body});
  out.push_back({"queue_close",
                 "producer races close()+drain(): a push is admitted-and-drained or "
                 "rejected-kClosed, never lost",
                 exhaustive_options(), queue_close_body});
  out.push_back({"pool_nested",
                 "nested caller-helping parallel_for on a 1-worker pool never deadlocks; every "
                 "index runs exactly once",
                 exhaustive_options(), pool_nested_body});
  out.push_back({"pool_exception",
                 "both chunks throw: the lowest chunk's exception is rethrown under every "
                 "schedule",
                 exhaustive_options(), pool_exception_body});
  out.push_back({"pool_shutdown",
                 "ThreadPool construct/destroy races: no lost wakeup across shutdown",
                 exhaustive_options(), pool_shutdown_body});
  out.push_back({"stream_2shard",
                 "2-shard StreamingMarket, 2-thread fan-out, 10-bid stream: EngineReport "
                 "summary_json is byte-identical under every sampled schedule",
                 pct_options(), stream_2shard_body});
  return out;
}

}  // namespace

const std::vector<ModelSpec>& models() {
  static const std::vector<ModelSpec> kModels = build_models();
  return kModels;
}

const ModelSpec* find_model(const std::string& name) {
  for (const ModelSpec& m : models()) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

}  // namespace decloud::dsched

#pragma once

// Named dsched model bodies (DESIGN.md §3i), shared between the
// tests/dsched suites and tools/dsched_explore.  Each model is a
// self-contained concurrency scenario over the production code
// (BoundedQueue, ThreadPool, StreamingMarket) plus the invariant it
// checks; explore() drives it through every (or many sampled)
// interleavings.  Only built when the tree is configured with
// -DDECLOUD_DSCHED=ON.

#include <functional>
#include <string>
#include <vector>

#include "dsched/scheduler.hpp"

namespace decloud::dsched {

struct ModelSpec {
  std::string name;
  std::string description;
  /// Recommended exploration options (mode, budgets).  Callers may
  /// override mode/seed/schedules from the command line.
  Options options;
  /// Builds a fresh model body.  The returned callable is re-entrant
  /// across schedules of ONE exploration (explore() invokes it once per
  /// schedule) and may carry cross-schedule state, e.g. the expected
  /// EngineReport bytes captured on the first schedule.
  std::function<std::function<void()>()> make_body;
};

/// All registered models, in a fixed order.
const std::vector<ModelSpec>& models();

/// Looks a model up by name; nullptr when unknown.
const ModelSpec* find_model(const std::string& name);

}  // namespace decloud::dsched

// End-to-end protocol simulation driver.
//
// Builds a full-mesh overlay of miners and participants, injects a
// workload, runs rounds of the two-phase bid exposure protocol through the
// event queue, and reports per-round statistics (phase timings, message
// counts, consensus outcome, allocation economics).
#pragma once

#include <memory>
#include <vector>

#include "auction/allocation.hpp"
#include "sim/node.hpp"

namespace decloud::obs {
class MetricsSink;
}

namespace decloud::sim {

/// Configuration of a simulated DeCloud deployment.
struct SimulationConfig {
  std::size_t num_miners = 4;
  std::size_t num_participants = 8;
  LatencyConfig latency;
  MinerNode::Timing timing;
  ledger::ConsensusParams consensus;
  std::uint64_t seed = 1;
  /// Optional deterministic fault injector (not owned, may be null);
  /// attached to the overlay so a plan can drop/delay protocol messages.
  const fault::FaultInjector* fault = nullptr;
  /// Optional observability sink (not owned, may be null).  The simulation
  /// is single-threaded, so one sink serves the whole deployment: each
  /// round records a "sim.round" span plus consensus/economics counters
  /// and a simulated-latency histogram.
  obs::MetricsSink* sink = nullptr;
};

/// Statistics of one protocol round.
struct RoundStats {
  bool accepted = false;
  /// Simulated milliseconds from round start to chain append on the
  /// producer.
  SimTime round_ms = 0;
  std::size_t messages = 0;
  std::size_t accept_votes = 0;
  std::size_t reject_votes = 0;
  /// Decoded allocation of the round (valid when accepted).
  auction::RoundResult result;
  auction::MarketSnapshot snapshot;
};

/// Owns the queue, the overlay, and the node actors.
class Simulation {
 public:
  explicit Simulation(SimulationConfig config);

  /// Node handles for workload injection.  Participant i is node
  /// (num_miners + i) on the overlay.
  [[nodiscard]] ParticipantNode& participant(std::size_t i) { return *participants_[i]; }
  [[nodiscard]] MinerNode& miner(std::size_t i) { return *miners_[i]; }
  [[nodiscard]] std::size_t num_participants() const { return participants_.size(); }
  [[nodiscard]] EventQueue& queue() { return queue_; }
  [[nodiscard]] Network& network() { return network_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Runs one protocol round with miner `producer_index` producing: the
  /// participants submit queued bids, the producer mines over whatever
  /// reached its mempool by `collect_ms`, and the round runs to
  /// quiescence.
  RoundStats run_round(std::size_t producer_index, SimTime collect_ms = 200);

 private:
  SimulationConfig config_;
  Rng rng_;
  EventQueue queue_;
  Network network_;
  std::vector<std::unique_ptr<MinerNode>> miners_;
  std::vector<std::unique_ptr<ParticipantNode>> participants_;
};

}  // namespace decloud::sim

#include "sim/node.hpp"

#include <algorithm>

#include "common/ensure.hpp"

namespace decloud::sim {

void ParticipantNode::submit_queued(Rng& rng) {
  for (const auto& r : requests_) {
    network_.broadcast(id_, SubmitBidMsg{wallet_.submit_request(r, rng)});
  }
  for (const auto& o : offers_) {
    network_.broadcast(id_, SubmitBidMsg{wallet_.submit_offer(o, rng)});
  }
  requests_.clear();
  offers_.clear();
}

void ParticipantNode::on_message(NodeId /*from*/, const Message& message) {
  // Participants only react to preambles: validate PoW, then broadcast the
  // temporary keys of any of our bids the preamble includes.
  if (const auto* pm = std::get_if<PreambleMsg>(&message)) {
    if (!ledger::validate_preamble(pm->preamble, difficulty_bits_)) return;
    auto reveals = wallet_.on_preamble(pm->preamble);
    if (!reveals.empty()) {
      network_.broadcast(id_, KeyRevealMsg{std::move(reveals)});
    }
  }
}

void MinerNode::produce_block(Time wall_time) {
  DECLOUD_EXPECTS_MSG(!producing_, "round already in flight");
  producing_ = true;
  pending_preamble_.reset();
  collected_reveals_.clear();
  pending_body_.reset();
  votes_.clear();
  last_block_.reset();

  auto bids = std::move(mempool_);
  mempool_.clear();
  auto preamble = miner_.mine_preamble(std::move(bids), chain_.tip_hash(), chain_.height(),
                                       wall_time);
  DECLOUD_ENSURES_MSG(preamble.has_value(), "PoW exhausted at simulation difficulty");

  // Simulated mining delay: (nonce + 1) attempts at ms_per_hash each.
  const auto mine_ms =
      static_cast<SimTime>(static_cast<double>(preamble->pow.nonce + 1) * timing_.ms_per_hash);
  pending_preamble_ = std::move(*preamble);

  network_.queue().schedule_in(mine_ms, [this] {
    network_.broadcast(id_, PreambleMsg{*pending_preamble_});
    // Allow reveal_wait for the key disclosures, then compute the body.
    network_.queue().schedule_in(timing_.reveal_wait_ms, [this] {
      pending_body_ = miner_.compute_body(*pending_preamble_, collected_reveals_);
      // The producer trivially accepts its own block (and says so).
      const VoteMsg self{.height = pending_preamble_->header.height, .accept = true, .voter = id_};
      votes_.push_back(self);
      network_.broadcast(id_, BodyMsg{pending_preamble_->header.height, *pending_body_});
      network_.broadcast(id_, self);
      finalize_if_decided();
    });
  });
}

void MinerNode::on_message(NodeId /*from*/, const Message& message) {
  if (const auto* sb = std::get_if<SubmitBidMsg>(&message)) {
    // Admission control: reject bids with invalid signatures at the door.
    if (ledger::verify_sealed_bid(sb->bid)) mempool_.push_back(sb->bid);
    return;
  }
  if (const auto* pm = std::get_if<PreambleMsg>(&message)) {
    if (producing_) return;  // we built this round's preamble ourselves
    if (pm->preamble.header.height != chain_.height()) return;  // stale/future round
    if (!ledger::validate_preamble(pm->preamble, miner_.params().difficulty_bits)) return;
    // A fresh round begins for this verifier: drop the previous round's
    // in-flight state.
    pending_preamble_ = pm->preamble;
    pending_body_.reset();
    votes_.clear();
    last_block_.reset();
    return;
  }
  if (const auto* kr = std::get_if<KeyRevealMsg>(&message)) {
    collected_reveals_.insert(collected_reveals_.end(), kr->reveals.begin(), kr->reveals.end());
    return;
  }
  if (const auto* bm = std::get_if<BodyMsg>(&message)) {
    if (producing_ || !pending_preamble_) return;
    if (bm->height != pending_preamble_->header.height) return;
    pending_body_ = bm->body;
    const bool ok = miner_.verify_body(*pending_preamble_, bm->body);
    votes_.push_back({.height = bm->height, .accept = ok, .voter = id_});
    network_.broadcast(id_, VoteMsg{bm->height, ok, id_});
    finalize_if_decided();
    return;
  }
  if (const auto* vm = std::get_if<VoteMsg>(&message)) {
    if (!pending_preamble_ || vm->height != pending_preamble_->header.height) return;
    const bool seen = std::any_of(votes_.begin(), votes_.end(), [&](const VoteMsg& v) {
      return v.voter == vm->voter;
    });
    if (!seen) votes_.push_back(*vm);
    finalize_if_decided();
    return;
  }
}

void MinerNode::finalize_if_decided() {
  if (!pending_preamble_ || !pending_body_ || last_block_) return;
  // Finalize once the quorum of accept votes is in and nobody rejected.
  // The driver additionally checks cross-node chain agreement after the
  // queue drains, which is the authoritative tally.
  const bool any_reject = std::any_of(votes_.begin(), votes_.end(),
                                      [](const VoteMsg& v) { return !v.accept; });
  if (any_reject || votes_.size() < timing_.vote_quorum) return;
  ledger::Block block{.preamble = *pending_preamble_, .body = *pending_body_};
  if (chain_.append(block, miner_.params().difficulty_bits)) {
    last_block_ = std::move(block);
    producing_ = false;
  }
}

}  // namespace decloud::sim

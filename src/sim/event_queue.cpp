#include "sim/event_queue.hpp"

#include <algorithm>

namespace decloud::sim {

void EventQueue::schedule_at(SimTime when, Handler handler) {
  queue_.push({std::max(when, now_), next_seq_++, std::move(handler)});
}

std::size_t EventQueue::run(std::size_t max_events) {
  std::size_t fired = 0;
  while (!queue_.empty() && fired < max_events) {
    // Move out of the queue before invoking: the handler may schedule.
    Event e = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = e.when;
    e.handler();
    ++fired;
  }
  return fired;
}

std::size_t EventQueue::run_until(SimTime until) {
  std::size_t fired = 0;
  while (!queue_.empty() && queue_.top().when <= until) {
    Event e = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = e.when;
    e.handler();
    ++fired;
  }
  now_ = std::max(now_, until);
  return fired;
}

}  // namespace decloud::sim

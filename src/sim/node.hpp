// Protocol actors bound to network nodes: participants (clients/providers)
// and miners (one producer per round, the rest verifying).
#pragma once

#include <optional>
#include <vector>

#include "ledger/miner.hpp"
#include "ledger/participant.hpp"
#include "sim/network.hpp"

namespace decloud::sim {

/// A participant attached to the overlay.  Owns the wallet; queues bids to
/// submit at round start, reveals keys when a valid preamble arrives.
class ParticipantNode {
 public:
  ParticipantNode(NodeId id, Network& network, unsigned difficulty_bits, Rng& rng)
      : id_(id), network_(network), difficulty_bits_(difficulty_bits), wallet_(rng) {}

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] ledger::Participant& wallet() { return wallet_; }

  /// Queues a request to be sealed and submitted at the next round start.
  void enqueue_request(const auction::Request& r) { requests_.push_back(r); }
  /// Queues an offer likewise.
  void enqueue_offer(const auction::Offer& o) { offers_.push_back(o); }

  /// Seals all queued bids and broadcasts them (the submission phase).
  void submit_queued(Rng& rng);

  /// Network message entry point.
  void on_message(NodeId from, const Message& message);

 private:
  NodeId id_;
  Network& network_;
  unsigned difficulty_bits_;
  ledger::Participant wallet_;
  std::vector<auction::Request> requests_;
  std::vector<auction::Offer> offers_;
};

/// A miner attached to the overlay.  All miners collect sealed bids and
/// key reveals; the one designated producer for the round mines and emits
/// the preamble/body, the others verify and vote.
class MinerNode {
 public:
  struct Timing {
    /// Simulated cost of one PoW hash attempt (ms); total mining time is
    /// attempts × this.
    double ms_per_hash = 0.01;
    /// How long the producer waits after the preamble for key reveals
    /// before computing the allocation.
    SimTime reveal_wait_ms = 500;
    /// Accept votes (including one's own) required before a node appends
    /// the block.  The driver sets this to the miner count.
    std::size_t vote_quorum = 1;
  };

  MinerNode(NodeId id, Network& network, ledger::ConsensusParams params, Timing timing)
      : id_(id), network_(network), miner_(std::move(params)), timing_(timing) {}

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const ledger::Blockchain& chain() const { return chain_; }
  [[nodiscard]] std::size_t mempool_size() const { return mempool_.size(); }

  /// Producer entry point: assembles and mines a preamble over the local
  /// mempool, then broadcasts it after the simulated PoW delay.
  void produce_block(Time wall_time);

  /// Network message entry point (all roles).
  void on_message(NodeId from, const Message& message);

  /// Votes observed for the in-flight block (producer side).
  [[nodiscard]] const std::vector<VoteMsg>& votes() const { return votes_; }
  /// The block finalized by the most recent round on this node, if any.
  [[nodiscard]] const std::optional<ledger::Block>& last_block() const { return last_block_; }

 private:
  void finalize_if_decided();

  NodeId id_;
  Network& network_;
  ledger::Miner miner_;
  Timing timing_;

  ledger::Blockchain chain_;
  std::vector<ledger::SealedBid> mempool_;

  // In-flight round state.
  std::optional<ledger::BlockPreamble> pending_preamble_;
  std::vector<ledger::KeyReveal> collected_reveals_;
  std::optional<ledger::BlockBody> pending_body_;
  std::vector<VoteMsg> votes_;
  std::optional<ledger::Block> last_block_;
  bool producing_ = false;
};

}  // namespace decloud::sim

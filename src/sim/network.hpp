// P2P overlay model: typed protocol messages delivered over latency links.
#pragma once

#include <cstdint>
#include <functional>
#include <variant>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "fault/injector.hpp"
#include "ledger/block.hpp"
#include "sim/event_queue.hpp"

namespace decloud::sim {

/// Protocol messages of the two-phase bid exposure protocol (Fig. 2).
struct SubmitBidMsg {
  ledger::SealedBid bid;
};
struct PreambleMsg {
  ledger::BlockPreamble preamble;
};
struct KeyRevealMsg {
  std::vector<ledger::KeyReveal> reveals;
};
struct BodyMsg {
  std::uint64_t height = 0;
  ledger::BlockBody body;
};
struct VoteMsg {
  std::uint64_t height = 0;
  bool accept = false;
  NodeId voter;
};

using Message = std::variant<SubmitBidMsg, PreambleMsg, KeyRevealMsg, BodyMsg, VoteMsg>;

/// Latency model: per-pair base latency (ms) with uniform jitter, sampled
/// once per directed link at construction — stable but asymmetric, like
/// real overlays.  `loss` is a per-message independent drop probability
/// (failure injection for robustness tests; the default overlay is
/// reliable, TCP-like).
struct LatencyConfig {
  SimTime base_ms = 20;
  SimTime jitter_ms = 30;
  double loss = 0.0;
};

/// A full-mesh overlay of `num_nodes` nodes.  Delivery calls the handler
/// registered for the destination node.  No loss model (TCP-like overlay);
/// duplication/ordering follow directly from per-link latencies.
class Network {
 public:
  using Handler = std::function<void(NodeId from, const Message&)>;

  Network(std::size_t num_nodes, LatencyConfig latency, EventQueue& queue, Rng& rng);

  /// Messages silently dropped by the loss model so far (including
  /// injected fault drops).
  [[nodiscard]] std::size_t messages_dropped() const { return messages_dropped_; }
  /// The subset of messages_dropped() caused by an injected kDropMessage.
  [[nodiscard]] std::size_t messages_fault_dropped() const { return messages_fault_dropped_; }
  /// Messages delivered late due to an injected kDelayMessage fault.
  [[nodiscard]] std::size_t messages_fault_delayed() const { return messages_fault_delayed_; }

  /// Attaches a deterministic fault injector (not owned, may be null).
  /// kDropMessage eats a message; kDelayMessage adds the rule's payload
  /// (ms) to the link latency.  The fault site index is the message
  /// sequence number (messages_sent() at send time), so decisions are a
  /// pure function of traffic order.
  void set_fault_injector(const fault::FaultInjector* injector) { fault_ = injector; }

  /// Registers the message handler for a node (must be set before traffic).
  void attach(NodeId node, Handler handler);

  /// Sends a message over the (from → to) link.
  void send(NodeId from, NodeId to, Message message);

  /// Sends to every node except the sender (gossip broadcast, flattened).
  void broadcast(NodeId from, const Message& message);

  [[nodiscard]] std::size_t num_nodes() const { return handlers_.size(); }
  [[nodiscard]] SimTime link_latency(NodeId from, NodeId to) const;
  [[nodiscard]] std::size_t messages_sent() const { return messages_sent_; }
  [[nodiscard]] EventQueue& queue() { return queue_; }

 private:
  std::vector<Handler> handlers_;
  std::vector<SimTime> latency_;  // row-major [from][to]
  EventQueue& queue_;
  Rng& rng_;
  double loss_ = 0.0;
  std::size_t messages_sent_ = 0;
  std::size_t messages_dropped_ = 0;
  std::size_t messages_fault_dropped_ = 0;
  std::size_t messages_fault_delayed_ = 0;
  const fault::FaultInjector* fault_ = nullptr;
};

}  // namespace decloud::sim

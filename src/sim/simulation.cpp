#include "sim/simulation.hpp"

#include "common/ensure.hpp"
#include "ledger/codec.hpp"
#include "obs/sink.hpp"

namespace decloud::sim {

Simulation::Simulation(SimulationConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      network_(config_.num_miners + config_.num_participants, config_.latency, queue_, rng_) {
  DECLOUD_EXPECTS(config_.num_miners > 0);
  network_.set_fault_injector(config_.fault);

  MinerNode::Timing timing = config_.timing;
  timing.vote_quorum = config_.num_miners;

  for (std::size_t i = 0; i < config_.num_miners; ++i) {
    miners_.push_back(
        std::make_unique<MinerNode>(NodeId(i), network_, config_.consensus, timing));
    network_.attach(NodeId(i), [m = miners_.back().get()](NodeId from, const Message& msg) {
      m->on_message(from, msg);
    });
  }
  for (std::size_t i = 0; i < config_.num_participants; ++i) {
    const NodeId id(config_.num_miners + i);
    participants_.push_back(std::make_unique<ParticipantNode>(
        id, network_, config_.consensus.difficulty_bits, rng_));
    network_.attach(id, [p = participants_.back().get()](NodeId from, const Message& msg) {
      p->on_message(from, msg);
    });
  }
}

RoundStats Simulation::run_round(std::size_t producer_index, SimTime collect_ms) {
  DECLOUD_EXPECTS(producer_index < miners_.size());
  obs::SpanScope span(config_.sink, "sim.round");
  RoundStats stats;
  const std::size_t messages_before = network_.messages_sent();
  const SimTime start = queue_.now();

  // Submission phase: every participant seals and broadcasts its queued
  // bids now; the producer starts mining after the collection window.
  for (auto& p : participants_) p->submit_queued(rng_);
  queue_.schedule_in(collect_ms, [this, producer_index] {
    miners_[producer_index]->produce_block(static_cast<Time>(queue_.now()));
  });

  queue_.run();  // to quiescence: mining, reveals, body, votes, appends

  MinerNode& producer = *miners_[producer_index];
  for (const auto& v : producer.votes()) {
    (v.accept ? stats.accept_votes : stats.reject_votes) += 1;
  }
  stats.messages = network_.messages_sent() - messages_before;
  stats.round_ms = queue_.now() - start;

  // Authoritative outcome: every miner appended the same block.
  stats.accepted = producer.last_block().has_value();
  for (const auto& m : miners_) {
    stats.accepted = stats.accepted && m->chain().height() == producer.chain().height() &&
                     m->chain().tip_hash() == producer.chain().tip_hash();
  }
  if (stats.accepted) {
    const ledger::Block& block = *producer.last_block();
    const auto opened = ledger::Miner::open_block(block.preamble, block.body.revealed_keys);
    stats.snapshot = opened.snapshot;
    stats.result = ledger::decode_allocation(
        {block.body.allocation.data(), block.body.allocation.size()},
        opened.snapshot.requests.size(), opened.snapshot.offers.size());
  }
  span.add_work(stats.messages);
  if (config_.sink != nullptr) {
    obs::MetricsRegistry& m = config_.sink->metrics();
    m.counter("sim.rounds").add(1);
    m.counter(stats.accepted ? "sim.rounds_accepted" : "sim.rounds_rejected").add(1);
    m.counter("sim.messages").add(stats.messages);
    m.counter("sim.accept_votes").add(stats.accept_votes);
    m.counter("sim.reject_votes").add(stats.reject_votes);
    m.counter("sim.matches").add(stats.result.matches.size());
    m.gauge("sim.welfare").add(stats.result.welfare);
    // Simulated protocol latency, not wall time: round_ms comes off the
    // deterministic event queue.
    m.histogram("sim.round_ms", 0.0, 8000.0, 16).add(static_cast<double>(stats.round_ms));
  }
  return stats;
}

}  // namespace decloud::sim

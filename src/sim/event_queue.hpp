// Discrete-event simulation core.
//
// The two-phase protocol is asynchronous: preambles, key reveals and block
// bodies propagate over links with latency.  This queue orders callbacks by
// simulated time (FIFO within a timestamp) and drives them to quiescence.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace decloud::sim {

/// Simulated time in milliseconds.
using SimTime = std::int64_t;

/// A deterministic discrete-event queue.  Events scheduled for the same
/// time fire in scheduling order (a monotonic sequence number breaks ties),
/// so runs are exactly reproducible.
class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedules `handler` to run at absolute simulated time `when`
  /// (>= now(); earlier times are clamped to now()).
  void schedule_at(SimTime when, Handler handler);

  /// Schedules `handler` to run `delay` after the current time.
  void schedule_in(SimTime delay, Handler handler) { schedule_at(now_ + delay, std::move(handler)); }

  /// Runs events until the queue is empty or `max_events` fired.
  /// Returns the number of events processed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs events with time ≤ `until`.
  std::size_t run_until(SimTime until);

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace decloud::sim

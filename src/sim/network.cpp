#include "sim/network.hpp"

#include "common/ensure.hpp"

namespace decloud::sim {

Network::Network(std::size_t num_nodes, LatencyConfig latency, EventQueue& queue, Rng& rng)
    : handlers_(num_nodes),
      latency_(num_nodes * num_nodes, 0),
      queue_(queue),
      rng_(rng),
      loss_(latency.loss) {
  DECLOUD_EXPECTS(num_nodes > 0);
  DECLOUD_EXPECTS(latency.loss >= 0.0 && latency.loss < 1.0);
  for (std::size_t from = 0; from < num_nodes; ++from) {
    for (std::size_t to = 0; to < num_nodes; ++to) {
      if (from == to) continue;
      const SimTime jitter =
          latency.jitter_ms > 0 ? static_cast<SimTime>(rng.next_below(
                                      static_cast<std::uint64_t>(latency.jitter_ms)))
                                : 0;
      latency_[from * num_nodes + to] = latency.base_ms + jitter;
    }
  }
}

void Network::attach(NodeId node, Handler handler) {
  DECLOUD_EXPECTS(node.value() < handlers_.size());
  handlers_[node.value()] = std::move(handler);
}

SimTime Network::link_latency(NodeId from, NodeId to) const {
  DECLOUD_EXPECTS(from.value() < handlers_.size() && to.value() < handlers_.size());
  return latency_[from.value() * handlers_.size() + to.value()];
}

void Network::send(NodeId from, NodeId to, Message message) {
  DECLOUD_EXPECTS(from.value() < handlers_.size() && to.value() < handlers_.size());
  DECLOUD_EXPECTS_MSG(static_cast<bool>(handlers_[to.value()]), "destination has no handler");
  const fault::FaultSite site{0, 0, messages_sent_, 0};
  ++messages_sent_;
  if (fault_ != nullptr && fault_->fires(fault::FaultKind::kDropMessage, site)) {
    ++messages_dropped_;
    ++messages_fault_dropped_;
    return;  // injected partition: the message never existed
  }
  if (loss_ > 0.0 && rng_.bernoulli(loss_)) {
    ++messages_dropped_;
    return;  // the overlay ate it
  }
  SimTime delay = link_latency(from, to);
  if (fault_ != nullptr && fault_->fires(fault::FaultKind::kDelayMessage, site)) {
    delay += static_cast<SimTime>(fault_->payload(fault::FaultKind::kDelayMessage, site));
    ++messages_fault_delayed_;
  }
  queue_.schedule_in(delay, [this, from, to, msg = std::move(message)]() {
    handlers_[to.value()](from, msg);
  });
}

void Network::broadcast(NodeId from, const Message& message) {
  for (std::size_t to = 0; to < handlers_.size(); ++to) {
    if (to == from.value()) continue;
    send(from, NodeId(to), message);
  }
}

}  // namespace decloud::sim

// Resource types and resource vectors — the vocabulary of the bidding
// language (Section IV-B of the paper).
//
// A resource type k ∈ K can be anything: CPU cores, RAM, disk, but also
// generic edge properties such as network latency, reputation, or the
// presence of SGX.  Types are interned strings; a ResourceVector is a
// sparse, sorted list of (type, amount) pairs.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.hpp"

namespace decloud::auction {

/// Dense handle for a resource type.
using ResourceId = std::uint32_t;

/// Registry of resource types for one market.  The three *critical*
/// resources of the paper (CPU, memory, disk — the ones that gate co-located
/// containers) are pre-registered at fixed indices.
class ResourceSchema {
 public:
  ResourceSchema();

  /// Well-known critical resources (Section IV-C, K_CR definition).
  static constexpr ResourceId kCpu = 0;
  static constexpr ResourceId kMemory = 1;
  static constexpr ResourceId kDisk = 2;

  /// Interns (or looks up) a resource type by name.
  ResourceId intern(std::string_view name);

  /// Looks up an existing type; returns nullopt if unknown.
  [[nodiscard]] std::optional<ResourceId> find(std::string_view name) const;

  [[nodiscard]] const std::string& name(ResourceId id) const;
  [[nodiscard]] std::size_t size() const { return interner_.size(); }

  /// True for the built-in critical resource types.
  [[nodiscard]] static bool is_builtin_critical(ResourceId id) { return id <= kDisk; }

 private:
  Interner interner_;
};

/// One (type, amount) entry of a resource vector.
struct ResourceAmount {
  ResourceId type = 0;
  double amount = 0.0;

  friend bool operator==(const ResourceAmount&, const ResourceAmount&) = default;
};

/// A sparse resource vector ρ, sorted by type id.  Amounts are
/// non-negative; a zero amount is allowed (it still declares the type).
class ResourceVector {
 public:
  ResourceVector() = default;
  /// Builds from entries; sorts and rejects duplicate types.
  explicit ResourceVector(std::vector<ResourceAmount> entries);

  /// Sets (or overwrites) the amount for a type.
  void set(ResourceId type, double amount);

  /// Amount for a type, or 0 if the type is absent.
  [[nodiscard]] double get(ResourceId type) const;

  /// True if the vector declares the type (even with amount 0).
  [[nodiscard]] bool has(ResourceId type) const;

  [[nodiscard]] const std::vector<ResourceAmount>& entries() const { return entries_; }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Euclidean norm ‖ρ‖₂ over all declared amounts.
  [[nodiscard]] double norm2() const;

  /// The set of declared types, sorted.
  [[nodiscard]] std::vector<ResourceId> types() const;

  friend bool operator==(const ResourceVector&, const ResourceVector&) = default;

 private:
  std::vector<ResourceAmount> entries_;
};

/// Sorted intersection of the type sets of two vectors: K_(r,o) = K_r ∩ K_o.
[[nodiscard]] std::vector<ResourceId> common_types(const ResourceVector& a,
                                                   const ResourceVector& b);

/// Sorted union of two sorted type-id sets.
[[nodiscard]] std::vector<ResourceId> union_types(std::span<const ResourceId> a,
                                                  std::span<const ResourceId> b);

/// Sorted intersection of two sorted type-id sets.
[[nodiscard]] std::vector<ResourceId> intersect_types(std::span<const ResourceId> a,
                                                      std::span<const ResourceId> b);

}  // namespace decloud::auction

#include "auction/cluster.hpp"

#include <algorithm>

#include "common/ensure.hpp"

namespace decloud::auction {

bool is_subset(const std::vector<std::size_t>& a, const std::vector<std::size_t>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

std::vector<std::size_t> intersect_sorted(const std::vector<std::size_t>& a,
                                          const std::vector<std::size_t>& b) {
  std::vector<std::size_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

void insert_sorted_unique(std::vector<std::size_t>& v, std::size_t value) {
  const auto it = std::lower_bound(v.begin(), v.end(), value);
  if (it == v.end() || *it != value) v.insert(it, value);
}

void merge_sorted_unique(std::vector<std::size_t>& dst, const std::vector<std::size_t>& src) {
  std::vector<std::size_t> merged;
  merged.reserve(dst.size() + src.size());
  std::set_union(dst.begin(), dst.end(), src.begin(), src.end(), std::back_inserter(merged));
  dst = std::move(merged);
}

std::size_t ClusterSet::find_or_create(const std::vector<std::size_t>& offers, bool& created) {
  if (const auto it = by_offers_.find(offers); it != by_offers_.end()) {
    created = false;
    return it->second;
  }
  created = true;
  const std::size_t idx = clusters_.size();
  clusters_.push_back({.offers = offers, .requests = {}});
  by_offers_.emplace(offers, idx);
  return idx;
}

void ClusterSet::update(std::size_t request, const std::vector<std::size_t>& best_offers) {
  DECLOUD_EXPECTS_MSG(!best_offers.empty(), "best-offer set must be non-empty");
  DECLOUD_EXPECTS(std::is_sorted(best_offers.begin(), best_offers.end()));

  // 1. Ensure a cluster keyed exactly by best_r exists (Alg. 2 first branch).
  bool created = false;
  find_or_create(best_offers, created);

  // Snapshot of indices before this update grows the cluster list further;
  // the intersection pass below must not recurse into clusters it creates.
  const std::size_t pre_existing = clusters_.size();

  // 2. Subset/superset propagation.  Collect superset requests first so the
  //    propagation uses the state at entry, as the pseudocode implies.
  std::vector<std::size_t> superset_requests;
  for (std::size_t c = 0; c < pre_existing; ++c) {
    if (clusters_[c].offers.size() > best_offers.size() &&
        is_subset(best_offers, clusters_[c].offers)) {
      merge_sorted_unique(superset_requests, clusters_[c].requests);
    }
  }
  for (std::size_t c = 0; c < pre_existing; ++c) {
    if (is_subset(clusters_[c].offers, best_offers)) {  // includes best_r itself
      insert_sorted_unique(clusters_[c].requests, request);
      merge_sorted_unique(clusters_[c].requests, superset_requests);
    }
  }

  // 3. Intersection clusters: any pre-existing cluster sharing more than one
  //    offer with best_r spawns (or feeds) a cluster on the shared offers.
  for (std::size_t c = 0; c < pre_existing; ++c) {
    if (clusters_[c].offers == best_offers) continue;
    auto intersection = intersect_sorted(clusters_[c].offers, best_offers);
    if (intersection.size() <= 1) continue;
    bool fresh = false;
    const std::size_t x = find_or_create(intersection, fresh);
    if (fresh) {
      clusters_[x].requests = clusters_[c].requests;
      insert_sorted_unique(clusters_[x].requests, request);
    } else {
      insert_sorted_unique(clusters_[x].requests, request);
    }
  }
}

}  // namespace decloud::auction

// Allocation verification — the checks every miner runs before accepting a
// block body (Section III-B: "They also verify the accuracy of the
// allocation algorithm execution").
//
// Two layers:
//   * verify_invariants — structural/economic soundness of any RoundResult
//     against its snapshot: constraints (5), (7), (8), (10), (11),
//     individual rationality and strong budget balance;
//   * verify_replay — bit-exact re-execution of the mechanism from the
//     block evidence and comparison with the claimed result (possible
//     because the whole pipeline is deterministic).
#pragma once

#include <string>
#include <vector>

#include "auction/allocation.hpp"
#include "auction/config.hpp"

namespace decloud::auction {

/// Outcome of a verification pass.  `ok()` is true when no violation was
/// found; otherwise `violations` lists human-readable findings.
struct VerificationReport {
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// Checks the structural and economic invariants of a result.
/// `check_payments` disables the IR/BB checks for benchmark-mode results
/// (which carry no payments).
[[nodiscard]] VerificationReport verify_invariants(const MarketSnapshot& snapshot,
                                                   const RoundResult& result,
                                                   const AuctionConfig& config,
                                                   bool check_payments = true);

/// Re-runs the mechanism with (config, seed) and checks the claimed result
/// matches the replay exactly (same matches, same payments).
[[nodiscard]] VerificationReport verify_replay(const MarketSnapshot& snapshot,
                                               const RoundResult& claimed,
                                               const AuctionConfig& config, std::uint64_t seed);

}  // namespace decloud::auction

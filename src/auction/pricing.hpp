// Greedy tentative allocation within a cluster and determination of the
// break-even quantities v̂_z, ĉ_z', ĉ_{z'+1} (Section IV-C, Algorithm 1:
// "allocate r, o ∈ cluster greedily; determine v̂_z, ĉ_{z'+1}").
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "auction/allocation.hpp"
#include "auction/config.hpp"
#include "auction/economics.hpp"

namespace decloud::auction {

/// One greedily formed (not yet priced) match.
struct TentativeMatch {
  std::size_t request = 0;
  std::size_t offer = 0;
  /// Exact capacity taken from the offer, for undo during trade reduction.
  ResourceVector consumed;
};

/// A cluster with its tentative allocation and break-even prices — the unit
/// the mini-auction builder and trade reduction operate on.
struct PricedCluster {
  std::size_t cluster_index = 0;  ///< index into the round's cluster list
  ClusterEconomics econ;
  std::vector<TentativeMatch> tentative;

  /// v̂_z — normalized valuation of the *last* (cheapest) matched request.
  double vhat_z = 0.0;
  /// ĉ_z' — normalized cost of the most expensive offer actually used.
  double chat_zprime = 0.0;
  /// ĉ_{z'+1} — cost of the next offer after z' in ascending order, or
  /// kInfiniteCost when the cluster's offers are exhausted.
  double chat_znext = kInfiniteCost;
  /// Provider that submitted offer z'+1 (meaningful iff chat_znext finite).
  ProviderId znext_provider;
  /// Client that submitted request z.
  ClientId z_client;

  /// Σ match welfare over the tentative allocation.
  Money welfare = 0.0;

  /// True when the cluster produced at least one tentative trade and can
  /// participate in a mini-auction.
  [[nodiscard]] bool tradeable() const { return !tentative.empty(); }

  /// Price-compatibility range [ĉ_z', v̂_z] of the cluster.
  [[nodiscard]] double range_lo() const { return chat_zprime; }
  [[nodiscard]] double range_hi() const { return vhat_z; }
};

/// Price compatibility between clusters a and b (Section IV-C): the
/// marginal buyer of each side clears the marginal seller of the other —
/// v̂_{z,a} > ĉ_{z',b} and v̂_{z,b} > ĉ_{z',a} — i.e. the price ranges
/// strictly overlap.
[[nodiscard]] bool price_compatible(const PricedCluster& a, const PricedCluster& b);

/// Runs the greedy allocation for one cluster: requests in descending v̂
/// order each take the cheapest feasible offer with remaining capacity,
/// subject to ĉ_o < v̂_r, constraint (9) (v_r ≥ φ c_o), and global offer
/// capacity.  `request_taken` marks requests already tentatively matched in
/// previously priced clusters and is updated in place (constraint 5).
[[nodiscard]] PricedCluster price_cluster(std::size_t cluster_index, ClusterEconomics econ,
                                          const MarketSnapshot& snapshot,
                                          CapacityTracker& capacity,
                                          std::vector<char>& request_taken,
                                          const AuctionConfig& config);

}  // namespace decloud::auction

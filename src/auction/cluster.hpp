// Cluster formation — Algorithm 2 of the paper.
//
// A cluster groups a set of offers with the set of requests for which those
// offers are (near-)best matches under the quality-of-match heuristic.
// Requests and offers are identified by their indices into the block's
// MarketSnapshot.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

namespace decloud::auction {

/// One cluster CL: an offer set plus the requests attracted to it.
/// Both lists are kept sorted and deduplicated.
struct Cluster {
  std::vector<std::size_t> offers;    ///< sorted offer indices
  std::vector<std::size_t> requests;  ///< sorted request indices
};

/// Mutable collection of clusters keyed by offer set, implementing the
/// UPDATECLUSTERS procedure (Algorithm 2): subset/superset request
/// propagation and intersection-cluster creation.
class ClusterSet {
 public:
  /// Folds one request with its best-offer set into the cluster structure.
  /// `best_offers` must be sorted and non-empty.
  void update(std::size_t request, const std::vector<std::size_t>& best_offers);

  [[nodiscard]] const std::vector<Cluster>& clusters() const { return clusters_; }
  [[nodiscard]] std::size_t size() const { return clusters_.size(); }

 private:
  /// Returns the cluster index for an offer set, creating it when absent.
  std::size_t find_or_create(const std::vector<std::size_t>& offers, bool& created);

  std::vector<Cluster> clusters_;
  std::map<std::vector<std::size_t>, std::size_t> by_offers_;
};

/// True iff sorted range `a` is a subset of sorted range `b`.
[[nodiscard]] bool is_subset(const std::vector<std::size_t>& a, const std::vector<std::size_t>& b);

/// Sorted intersection of two sorted index vectors.
[[nodiscard]] std::vector<std::size_t> intersect_sorted(const std::vector<std::size_t>& a,
                                                        const std::vector<std::size_t>& b);

/// Inserts `value` into a sorted vector if absent.
void insert_sorted_unique(std::vector<std::size_t>& v, std::size_t value);

/// Merges sorted `src` into sorted `dst` (set union, in place).
void merge_sorted_unique(std::vector<std::size_t>& dst, const std::vector<std::size_t>& src);

}  // namespace decloud::auction

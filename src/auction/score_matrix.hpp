// Dense precompute for the quality-of-match heuristic (Eq. 18).
//
// quality_of_match walks two sparse sorted entry lists per (request, offer)
// pair — O(R·O) pointer-chasing that dominates the matching phase at large
// market sizes.  ScoreMatrix flattens every bidder's sparse resources into
// a dense, BlockScale-normalized row-major matrix over the block's resource
// ids, so scoring a pair becomes one contiguous fused loop:
//
//   q = Σ_k  σmask_r[k] · ρ'_o[k] / ((ρ'_o[k] − ρ'_r[k])² + 1)
//
// where σmask_r[k] is the request's significance for declared types and 0
// elsewhere.  A term is non-zero only when BOTH sides declare type k, and
// every excluded term evaluates to exactly +0.0 (either σmask or ρ'_o is
// zero), so the dense sum — taken in the same ascending-id order as the
// sparse intersection walk — is bit-identical to quality_of_match.  The
// ledger's collective verification replays allocations, so bit-identity is
// mandatory, not an optimization nicety (Section III).
#pragma once

#include <cstddef>
#include <vector>

#include "auction/bid.hpp"
#include "auction/qom.hpp"

namespace decloud::auction {

class ScoreMatrix {
 public:
  /// Flattens the snapshot under the given block scale.  `scale` must have
  /// been built from the same snapshot (it defines the normalization and
  /// the row width).
  ScoreMatrix(const MarketSnapshot& snapshot, const BlockScale& scale);

  /// q_(r,o) — bit-identical to quality_of_match(requests[r], offers[o], scale).
  [[nodiscard]] double score(std::size_t request, std::size_t offer) const;

  /// Row width: one column per resource id observed in the block.
  [[nodiscard]] std::size_t width() const { return width_; }

 private:
  std::size_t width_ = 0;
  std::vector<double> req_norm_;  // R×W: ρ'_r, 0 for undeclared types
  std::vector<double> req_sig_;   // R×W: σ_r masked by declaration
  std::vector<double> off_norm_;  // O×W: ρ'_o, 0 for undeclared types
};

}  // namespace decloud::auction

// Dense precompute for the quality-of-match heuristic (Eq. 18).
//
// quality_of_match walks two sparse sorted entry lists per (request, offer)
// pair — O(R·O) pointer-chasing that dominates the matching phase at large
// market sizes.  ScoreMatrix flattens every bidder's sparse resources into
// a dense, BlockScale-normalized row-major matrix over the block's resource
// ids, so scoring a pair becomes one contiguous fused loop:
//
//   q = Σ_k  σmask_r[k] · ρ'_o[k] / ((ρ'_o[k] − ρ'_r[k])² + 1)
//
// where σmask_r[k] is the request's significance for declared types and 0
// elsewhere.  A term is non-zero only when BOTH sides declare type k, and
// every excluded term evaluates to exactly +0.0 (either σmask or ρ'_o is
// zero), so the dense sum — taken in the same ascending-id order as the
// sparse intersection walk — is bit-identical to quality_of_match.  The
// ledger's collective verification replays allocations, so bit-identity is
// mandatory, not an optimization nicety (Section III).
//
// Throughput layout (this file's hot path, DESIGN.md §3g): alongside the
// row-major offer matrix the constructor also stores its k-major transpose
// (one contiguous column of length O per resource id).  score_row() then
// scores one request against EVERY offer by sweeping panels of offers with
// the resource id as the outer loop:
//
//   for each k with σmask_r[k] ≠ 0 (ascending):          // sparse over k
//     for each offer o in the panel:                     // dense over o
//       acc[o] += σmask_r[k] · col_k[o] / ((col_k[o] − ρ'_r[k])² + 1)
//
// Each acc[o] still accumulates its terms in ascending-k order — the same
// left fold as score() and the sparse walk, because the skipped σ = 0 rows
// contribute exactly +0.0 to a non-negative running sum — so the result is
// bit-identical while the inner loop is contiguous, branch-free, and free
// of cross-lane reductions (each lane owns one accumulator), i.e.
// autovectorizable without reassociating any floating-point sum.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "auction/bid.hpp"
#include "auction/qom.hpp"

namespace decloud::auction {

class ScoreMatrix {
 public:
  /// Flattens the snapshot under the given block scale.  `scale` must have
  /// been built from the same snapshot (it defines the normalization and
  /// the row width).
  ScoreMatrix(const MarketSnapshot& snapshot, const BlockScale& scale);

  /// q_(r,o) — bit-identical to quality_of_match(requests[r], offers[o], scale).
  [[nodiscard]] double score(std::size_t request, std::size_t offer) const;

  /// Scores `request` against every offer into `out` (size = offers())
  /// via the tiled k-major kernel above.  out[o] is bit-identical to
  /// score(request, o) for every o.
  void score_row(std::size_t request, std::span<double> out) const;

  /// q_(r,o) computed by walking only the request's declared types
  /// (ascending) against the offer's dense row — the pruned path's
  /// per-candidate scorer.  Bit-identical to score(request, offer): the
  /// skipped σ = 0 columns contribute exactly +0.0 to a non-negative
  /// left-fold, and the visited ones appear in the same ascending order.
  [[nodiscard]] double score_sparse(std::size_t request, std::size_t offer) const;

  /// Row width: one column per resource id observed in the block.
  [[nodiscard]] std::size_t width() const { return width_; }

  [[nodiscard]] std::size_t requests() const { return num_requests_; }
  [[nodiscard]] std::size_t offers() const { return num_offers_; }

  /// Dense per-bidder rows (length width()): ρ'_r, σmask_r, ρ'_o.  The
  /// candidate index reads these to build its bounds and masks.
  [[nodiscard]] const double* request_norm_row(std::size_t r) const {
    return req_norm_.data() + r * width_;
  }
  [[nodiscard]] const double* request_sig_row(std::size_t r) const {
    return req_sig_.data() + r * width_;
  }
  [[nodiscard]] const double* offer_norm_row(std::size_t o) const {
    return off_norm_.data() + o * width_;
  }

  /// The request's declared resource ids, ascending — the non-zero columns
  /// of request_sig_row (σ ∈ (0, 1] for every declared type).
  [[nodiscard]] std::span<const ResourceId> request_types(std::size_t r) const {
    return {req_types_.data() + req_types_offset_[r],
            req_types_offset_[r + 1] - req_types_offset_[r]};
  }

 private:
  std::size_t width_ = 0;
  std::size_t num_requests_ = 0;
  std::size_t num_offers_ = 0;
  std::vector<double> req_norm_;    // R×W: ρ'_r, 0 for undeclared types
  std::vector<double> req_sig_;     // R×W: σ_r masked by declaration
  std::vector<double> off_norm_;    // O×W: ρ'_o, 0 for undeclared types
  std::vector<double> off_norm_t_;  // W×O: the k-major transpose of off_norm_
  std::vector<ResourceId> req_types_;          // concatenated declared ids
  std::vector<std::size_t> req_types_offset_;  // R+1 offsets into req_types_
};

}  // namespace decloud::auction

#include "auction/feasibility.hpp"

#include "common/ensure.hpp"

namespace decloud::auction {

bool window_covers(const Offer& o, const Request& r) {
  return o.window_start <= r.window_start && o.window_end >= r.window_end;
}

bool resources_sufficient(const Offer& o, const Request& r, double flexibility) {
  DECLOUD_EXPECTS(flexibility > 0.0 && flexibility <= 1.0);
  for (const auto& need : r.resources.entries()) {
    const double have = o.resources.get(need.type);
    const double required = r.is_strict(need.type) ? need.amount : flexibility * need.amount;
    if (have < required) return false;
  }
  return true;
}

bool feasible(const Offer& o, const Request& r, const AuctionConfig& config) {
  return r.reputation >= o.min_reputation && window_covers(o, r) &&
         resources_sufficient(o, r, config.flexibility);
}

}  // namespace decloud::auction

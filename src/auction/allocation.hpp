// Allocation results, resource-fraction accounting, and capacity tracking.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "auction/bid.hpp"
#include "common/types.hpp"

namespace decloud::auction {

/// A finalized match x_(r,o) = 1 with its price.
struct Match {
  std::size_t request = 0;  ///< index into MarketSnapshot::requests
  std::size_t offer = 0;    ///< index into MarketSnapshot::offers
  /// φ_(r,o): fraction of the offer consumed (Eq. 6, clamped to [0, 1]).
  double fraction = 0.0;
  /// Client payment p_r = ν_r · d_r · p (Eq. 19 with the duration scale
  /// restored; see DESIGN.md §3).  Zero in benchmark mode.
  Money payment = 0.0;
  /// The mini-auction clearing price p that produced the payment.
  double unit_price = 0.0;
  /// Amounts actually granted from the offer's capacity.  Equals the
  /// request's demand except under flexible matching, where a co-located
  /// container may be granted as little as flexibility·ρ_(r,k); recording
  /// the grant makes constraint (7) verifiable without replaying the
  /// assignment order.
  ResourceVector granted;
};

/// Resource fraction φ_(r,o) per Eq. (6): time share times the mean
/// per-resource demand share over K_(r,o).  Component shares use the
/// *granted* amount min(ρ_rk, ρ_ok), which equals ρ_rk whenever the match
/// was feasible without flexibility.  Result clamped to [0, 1].
[[nodiscard]] double resource_fraction(const Request& r, const Offer& o);

/// Welfare of one match: v_r − φ_(r,o) · c_o (the (r,o) term of Eq. 3),
/// evaluated at TRUE valuations/costs, which in a DSIC run equal the bids.
[[nodiscard]] Money match_welfare(const Request& r, const Offer& o);

/// Outcome of one allocation round (one block β).
struct RoundResult {
  std::vector<Match> matches;

  /// Matches the greedy pass produced before trade reduction — the paper's
  /// denominator for the reduced-trades percentage (Fig. 5c).
  std::size_t tentative_trades = 0;
  /// Tentative matches lost to trade reduction / price filtering.
  std::size_t reduced_trades = 0;

  /// Clusters whose allocation was re-drawn by the verifiable lottery
  /// (supply/demand imbalance, Section IV-D).  Observable so tests can
  /// assert the lottery path actually ran.
  std::size_t lottery_clusters = 0;

  /// Σ over final matches of v_r − φ c_o (Eq. 3).
  Money welfare = 0.0;
  /// Σ p_r over clients and Σ π_o over providers.  Strong budget balance
  /// makes these equal by construction.
  Money total_payments = 0.0;
  Money total_revenue = 0.0;

  /// Per-participant settlement (index-aligned with the snapshot).
  std::vector<Money> payment_by_request;
  std::vector<Money> revenue_by_offer;

  /// Clearing prices of the processed mini-auctions, in processing order.
  std::vector<double> clearing_prices;

  /// Fraction of requests allocated — the paper's *satisfaction* metric
  /// (Fig. 5d/5e).
  [[nodiscard]] double satisfaction(std::size_t total_requests) const;

  /// reduced / tentative, in [0, 1]; 0 when nothing was tradeable.
  [[nodiscard]] double reduced_trade_ratio() const;
};

/// Canonical JSON rendering of a RoundResult: stable field order, every
/// double printed with %.17g so distinct bit patterns render distinctly.
/// Two results serialize to the same bytes iff they are field-for-field
/// bit-identical — the byte-diff oracle CI uses to compare the dense and
/// pruned scoring paths (and any other pair of replays).
[[nodiscard]] std::string round_result_json(const RoundResult& result);

/// Tracks remaining capacity of every offer across clusters and
/// mini-auctions so constraint (7) (Σ_r φ_(r,o,k) ≤ 1 per resource) holds
/// globally for the whole block.
class CapacityTracker {
 public:
  explicit CapacityTracker(const std::vector<Offer>& offers);

  /// True iff the offer still has room for the request: every strict
  /// resource fully available, every flexible one at ≥ flexibility·ρ_rk.
  [[nodiscard]] bool can_host(std::size_t offer, const Request& r, double flexibility) const;

  /// Consumes capacity; returns the exact amounts taken (min of demand and
  /// remaining per resource) so the caller can undo with release().
  ResourceVector consume(std::size_t offer, const Request& r);

  /// Returns previously consumed amounts to the offer.
  void release(std::size_t offer, const ResourceVector& consumed);

  [[nodiscard]] const ResourceVector& remaining(std::size_t offer) const {
    return remaining_[offer];
  }

 private:
  std::vector<ResourceVector> remaining_;
};

}  // namespace decloud::auction

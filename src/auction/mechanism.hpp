// The DeCloud double auction A — Algorithm 1 of the paper, end to end:
//
//   1. per-request best-offer ranking under the QoM heuristic (Eq. 18);
//   2. cluster formation (Algorithm 2);
//   3. per-cluster normalization and greedy tentative allocation with
//      break-even determination (Section IV-C);
//   4. mini-auction formation (Algorithm 3);
//   5. per-auction clearing price, trade reduction and verifiable
//      randomization (Algorithm 4, Eq. 19–20).
//
// The mechanism is deterministic given (snapshot, seed): the seed is the
// block evidence (e.g. the block hash), so every miner re-derives the exact
// same allocation when verifying a block (Section III-B).
//
// With config.truthful = false the same pipeline stops after step 3 and
// finalizes every tentative match — the paper's non-truthful greedy
// benchmark that upper-bounds welfare in Fig. 5a/5b.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "auction/allocation.hpp"
#include "auction/config.hpp"
#include "auction/qom.hpp"

namespace decloud::obs {
class MetricsSink;
}

namespace decloud::auction {

class CandidateIndexCache;
class ScoreMatrix;

/// Markets below this many requests always rank serially: spinning the
/// pool up costs more than the fan-out saves, and the result is identical
/// either way.
inline constexpr std::size_t kMinParallelRequests = 32;

/// Ranks the feasible offers for a request and returns the best-offer set
/// best_r: sorted offer indices whose QoM is within config.best_offer_ratio
/// of the top match, capped at config.max_best_offers.  Empty when nothing
/// is feasible or no offer shares a resource type.
[[nodiscard]] std::vector<std::size_t> best_offers(const Request& r,
                                                   const MarketSnapshot& snapshot,
                                                   const BlockScale& scale,
                                                   const AuctionConfig& config);

/// Same ranking over a precomputed dense ScoreMatrix.  Bit-identical to
/// the sparse overload.
[[nodiscard]] std::vector<std::size_t> best_offers(std::size_t request,
                                                   const MarketSnapshot& snapshot,
                                                   const ScoreMatrix& scores,
                                                   const AuctionConfig& config);

/// Same ranking over a precomputed score row (ScoreMatrix::score_row) —
/// the dense hot path of DeCloudAuction::run.  `row[o]` must equal
/// q_(request, o); bit-identical to the other overloads.
[[nodiscard]] std::vector<std::size_t> best_offers_from_row(std::size_t request,
                                                            const MarketSnapshot& snapshot,
                                                            std::span<const double> row,
                                                            const AuctionConfig& config);

/// The pre-top-k reference oracle: collects EVERY feasible positive-QoM
/// offer, fully sorts by (q desc, submitted asc, id asc) and takes the
/// thresholded prefix.  Kept only so tests can check the bounded top-k
/// selection (and the pruned index) against first principles.
[[nodiscard]] std::vector<std::size_t> best_offers_reference(const Request& r,
                                                             const MarketSnapshot& snapshot,
                                                             const BlockScale& scale,
                                                             const AuctionConfig& config);

/// The auction mechanism.  Stateless apart from configuration; safe to
/// share across threads for concurrent independent rounds.
class DeCloudAuction {
 public:
  explicit DeCloudAuction(AuctionConfig config = {}) : config_(config) {}

  /// Runs one allocation round over a block's requests and offers.
  /// `seed` is the verifiable-randomization evidence (block hash).
  /// Validates every bid; throws precondition_error on malformed input.
  /// `sink`, when non-null, receives stage spans (score, cluster,
  /// miniauction, trade_reduction) and round counters; a null sink makes
  /// every hook a single pointer test (DESIGN.md §3e).  The sink NEVER
  /// influences the result — instrumented and bare runs are byte-identical.
  /// `cache`, when non-null, lets the pruned scoring path carry its
  /// CandidateIndex across rounds instead of rebuilding (DESIGN.md §3h);
  /// like the sink it never changes the result — cached and fresh runs
  /// are byte-identical (tests/auction/incremental_index_test) — so a
  /// producer running with a cache agrees with verifiers building fresh.
  [[nodiscard]] RoundResult run(const MarketSnapshot& snapshot, std::uint64_t seed,
                                obs::MetricsSink* sink = nullptr,
                                CandidateIndexCache* cache = nullptr) const;

  [[nodiscard]] const AuctionConfig& config() const { return config_; }

 private:
  AuctionConfig config_;
};

}  // namespace decloud::auction

#include "auction/qom.hpp"

#include <algorithm>
#include <cmath>

namespace decloud::auction {

namespace {

void fold_max(std::vector<double>& maxes, const ResourceVector& v) {
  for (const auto& e : v.entries()) {
    if (e.type >= maxes.size()) maxes.resize(e.type + 1, 0.0);
    maxes[e.type] = std::max(maxes[e.type], e.amount);
  }
}

}  // namespace

BlockScale::BlockScale(const std::vector<Request>& requests, const std::vector<Offer>& offers) {
  for (const auto& r : requests) fold_max(max_, r.resources);
  for (const auto& o : offers) fold_max(max_, o.resources);
}

double BlockScale::max_of(ResourceId type) const {
  return type < max_.size() ? max_[type] : 0.0;
}

double BlockScale::normalized(ResourceId type, double amount) const {
  const double m = max_of(type);
  return m > 0.0 ? amount / m : 0.0;
}

double quality_of_match(const Request& r, const Offer& o, const BlockScale& scale) {
  double q = 0.0;
  // Walk the two sorted entry lists in lockstep to find K_r ∩ K_o.
  const auto& re = r.resources.entries();
  const auto& oe = o.resources.entries();
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < re.size() && j < oe.size()) {
    if (re[i].type < oe[j].type) {
      ++i;
    } else if (oe[j].type < re[i].type) {
      ++j;
    } else {
      const ResourceId k = re[i].type;
      const double rp = scale.normalized(k, re[i].amount);
      const double op = scale.normalized(k, oe[j].amount);
      const double d = op - rp;
      q += r.significance_of(k) * op / (d * d + 1.0);
      ++i;
      ++j;
    }
  }
  return q;
}

void augment_with_proximity(MarketSnapshot& snapshot, ResourceSchema& schema, Location origin,
                            double significance) {
  const ResourceId prox = schema.intern("proximity");
  const auto proximity = [origin](const Location& l) {
    const double dx = l.x - origin.x;
    const double dy = l.y - origin.y;
    return 1.0 / (1.0 + std::sqrt(dx * dx + dy * dy));
  };
  for (auto& r : snapshot.requests) {
    if (r.location) {
      r.resources.set(prox, proximity(*r.location));
      r.significance.set(prox, significance);
    }
  }
  for (auto& o : snapshot.offers) {
    if (o.location) o.resources.set(prox, proximity(*o.location));
  }
}

}  // namespace decloud::auction

#include "auction/resource.hpp"

#include <algorithm>
#include <cmath>

#include "common/ensure.hpp"

namespace decloud::auction {

ResourceSchema::ResourceSchema() {
  const ResourceId cpu = interner_.intern("cpu");
  const ResourceId mem = interner_.intern("memory");
  const ResourceId disk = interner_.intern("disk");
  DECLOUD_ENSURES(cpu == kCpu && mem == kMemory && disk == kDisk);
}

ResourceId ResourceSchema::intern(std::string_view name) { return interner_.intern(name); }

std::optional<ResourceId> ResourceSchema::find(std::string_view name) const {
  const auto idx = interner_.find(name);
  if (idx == Interner::npos) return std::nullopt;
  return idx;
}

const std::string& ResourceSchema::name(ResourceId id) const { return interner_.name(id); }

ResourceVector::ResourceVector(std::vector<ResourceAmount> entries) : entries_(std::move(entries)) {
  std::sort(entries_.begin(), entries_.end(),
            [](const ResourceAmount& a, const ResourceAmount& b) { return a.type < b.type; });
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    DECLOUD_EXPECTS_MSG(entries_[i].amount >= 0.0, "resource amounts must be non-negative");
    if (i > 0) DECLOUD_EXPECTS_MSG(entries_[i].type != entries_[i - 1].type, "duplicate resource type");
  }
}

void ResourceVector::set(ResourceId type, double amount) {
  DECLOUD_EXPECTS(amount >= 0.0);
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), type,
      [](const ResourceAmount& e, ResourceId t) { return e.type < t; });
  if (it != entries_.end() && it->type == type) {
    it->amount = amount;
  } else {
    entries_.insert(it, {type, amount});
  }
}

double ResourceVector::get(ResourceId type) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), type,
      [](const ResourceAmount& e, ResourceId t) { return e.type < t; });
  return (it != entries_.end() && it->type == type) ? it->amount : 0.0;
}

bool ResourceVector::has(ResourceId type) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), type,
      [](const ResourceAmount& e, ResourceId t) { return e.type < t; });
  return it != entries_.end() && it->type == type;
}

double ResourceVector::norm2() const {
  double sum = 0.0;
  for (const auto& e : entries_) sum += e.amount * e.amount;
  return std::sqrt(sum);
}

std::vector<ResourceId> ResourceVector::types() const {
  std::vector<ResourceId> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.type);
  return out;
}

std::vector<ResourceId> common_types(const ResourceVector& a, const ResourceVector& b) {
  const auto ta = a.types();
  const auto tb = b.types();
  return intersect_types(ta, tb);
}

std::vector<ResourceId> union_types(std::span<const ResourceId> a, std::span<const ResourceId> b) {
  std::vector<ResourceId> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

std::vector<ResourceId> intersect_types(std::span<const ResourceId> a,
                                        std::span<const ResourceId> b) {
  std::vector<ResourceId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

}  // namespace decloud::auction

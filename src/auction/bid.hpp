// The bidding language: requests (Eq. 1) and offers (Eq. 2).
#pragma once

#include <optional>
#include <vector>

#include "auction/resource.hpp"
#include "common/types.hpp"

namespace decloud::auction {

/// Geographic (or network) location ℓ.  Edge services care about proximity;
/// the core mechanism treats derived proximity/latency values as ordinary
/// resource types (see augment_with_proximity in qom.hpp), so the mechanism
/// itself never interprets coordinates.
struct Location {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Location&, const Location&) = default;
};

/// A client's request r = <t_r, [ρ_(r,k)], [σ_(r,k)], t_r^-, t_r^+, d_r, b_r, ℓ_r>
/// — one container the client wants executed (Eq. 1).
struct Request {
  RequestId id;
  ClientId client;
  /// Submission timestamp t_r; used for deterministic tie-breaking
  /// (earlier submissions win ties, Section IV-D).
  Time submitted = 0;
  /// Required resources ρ_(r,k).
  ResourceVector resources;
  /// Significance σ_(r,k) ∈ (0, 1] per resource; σ = 1 marks a strict
  /// requirement.  Types absent from this vector default to σ = 1.
  ResourceVector significance;
  /// Earliest start t_r^- and latest end t_r^+ of the service window.
  Time window_start = 0;
  Time window_end = 0;
  /// Duration d_r the container must run continuously; d_r ≤ t_r^+ − t_r^-.
  Seconds duration = 0;
  /// Reported bid b_r; in the DSIC auction equals the true valuation v_r.
  Money bid = 0.0;
  /// Preferred service location ℓ_r.
  std::optional<Location> location;
  /// The client's reputation score, stamped by the ledger from the
  /// on-chain reputation registry (Section III-B) — NOT self-reported.
  /// Offers may set a minimum (Offer::min_reputation).
  double reputation = 1.0;

  /// Significance for a type (1 when unspecified).
  [[nodiscard]] double significance_of(ResourceId type) const;

  /// True iff the resource is strictly required (σ = 1).
  [[nodiscard]] bool is_strict(ResourceId type) const { return significance_of(type) >= 1.0; }
};

/// A provider's offer o = <t_o, [ρ_(o,k)], t_o^-, t_o^+, b_o, ℓ_o> — one
/// computational device able to run multiple containers (Eq. 2).
struct Offer {
  OfferId id;
  ProviderId provider;
  /// Submission timestamp t_o.
  Time submitted = 0;
  /// Available resources ρ_(o,k).
  ResourceVector resources;
  /// Availability window [t_o^-, t_o^+].
  Time window_start = 0;
  Time window_end = 0;
  /// Reported bid b_o; in the DSIC auction equals the true cost c_o for the
  /// whole availability window.
  Money bid = 0.0;
  /// Device location ℓ_o.
  std::optional<Location> location;
  /// Admission threshold: requests from clients below this reputation are
  /// infeasible for this offer ("they may set a threshold for the
  /// reputation of the clients that they accept", Section III-B).
  double min_reputation = 0.0;

  /// Window length t_o^+ − t_o^-.
  [[nodiscard]] Seconds window_length() const { return window_end - window_start; }
};

/// Validates the structural invariants of a request (non-negative bid,
/// consistent window/duration, σ ∈ (0,1], at least one resource).  Throws
/// precondition_error describing the first violation.
void validate(const Request& r);

/// Validates the structural invariants of an offer.
void validate(const Offer& o);

/// All requests and offers accepted into one block β: the input of a single
/// allocation round (R^β, O^β).
struct MarketSnapshot {
  std::vector<Request> requests;
  std::vector<Offer> offers;
};

}  // namespace decloud::auction

#include "auction/audit.hpp"

#include <algorithm>
#include <cmath>

#include "auction/economics.hpp"

namespace decloud::auction::audit {

using decloud::audit::check;

void check_mini_auction(const MarketSnapshot& snapshot,
                        const std::vector<PricedCluster>& priced, const MiniAuction& auction,
                        const PriceQuote& quote, const std::vector<char>& cluster_done_before,
                        const std::vector<char>& tradeable_before, const RoundResult& result,
                        std::size_t first_match) {
  check(cluster_done_before.size() == priced.size() && tradeable_before.size() == priced.size(),
        "audit masks sized to the round's cluster list");
  check(first_match <= result.matches.size(), "match range well-formed");

  // --- Eq. 20: p = min over live clusters of min(v̂_z, ĉ_{z'+1}),
  // re-derived here without calling determine_price.
  double expected = kInfiniteCost;
  for (const std::size_t ci : auction.clusters) {
    check(ci < priced.size(), "auction references a known cluster");
    if (cluster_done_before[ci] || !tradeable_before[ci]) continue;
    expected = std::min(expected, std::min(priced[ci].vhat_z, priced[ci].chat_znext));
  }
  check(quote.valid == (expected < kInfiniteCost),
        "quote validity matches presence of a live tradeable cluster");
  if (!quote.valid) {
    check(first_match == result.matches.size(), "an invalid quote finalizes no matches");
    return;
  }
  const double p = quote.price;
  check(p == expected, "clearing price equals min(v̂_z, ĉ_{z'+1}) over live clusters (Eq. 20)");

  // The price-setting bid must actually exist in a live cluster.
  bool setter_found = false;
  for (const std::size_t ci : auction.clusters) {
    if (cluster_done_before[ci] || !tradeable_before[ci]) continue;
    const PricedCluster& pc = priced[ci];
    if (quote.setter_is_request) {
      setter_found = setter_found || (pc.vhat_z == p && pc.z_client == quote.client);
    } else {
      setter_found = setter_found || (pc.chat_znext == p && pc.znext_provider == quote.provider);
    }
  }
  check(setter_found, "price-setting bid exists in a live cluster of this auction");

  for (std::size_t i = first_match; i < result.matches.size(); ++i) {
    const Match& m = result.matches[i];
    check(m.unit_price == p, "finalized match carries this auction's clearing price");

    // --- Individual rationality in the cluster's normalized unit: the
    // price lies inside the traders' REPORTED bounds, ĉ_o ≤ p ≤ v̂_r.
    double vhat = 0.0;
    double chat = kInfiniteCost;
    for (const std::size_t ci : auction.clusters) {
      if (cluster_done_before[ci]) continue;
      vhat = std::max(vhat, priced[ci].econ.vhat_of(m.request));
      chat = std::min(chat, priced[ci].econ.chat_of(m.offer));
    }
    check(vhat >= p, "IR (buyer): v̂_r ≥ p for every allocated request");
    check(chat <= p, "IR (seller): ĉ_o ≤ p for every allocated offer");

    // --- IR in raw money: p_r = ν_r d_r p ≤ v_r follows from v̂_r ≥ p in
    // real arithmetic; allow one part in 10^12 for the fp round-trip.
    const Request& r = snapshot.requests[m.request];
    check(m.payment <= r.bid * (1.0 + 1e-12) + 1e-9,
          "IR (buyer, raw): payment never exceeds the reported valuation");

    // --- Trade reduction: the excluded price-setter never trades in the
    // auction that its bid priced (Section IV-C/IV-D; DSIC hinges on it).
    if (quote.setter_is_request) {
      check(r.client != quote.client, "price-setting client excluded from its own auction");
    } else {
      check(snapshot.offers[m.offer].provider != quote.provider,
            "price-setting provider excluded from its own auction");
    }
  }
}

void check_round(const MarketSnapshot& snapshot, const RoundResult& result) {
  check(result.payment_by_request.size() == snapshot.requests.size(),
        "payment vector aligned with the snapshot's requests");
  check(result.revenue_by_offer.size() == snapshot.offers.size(),
        "revenue vector aligned with the snapshot's offers");
  check(result.reduced_trades <= result.tentative_trades,
        "reduced trades bounded by tentative trades");

  std::vector<Money> payments(snapshot.requests.size(), 0.0);
  std::vector<Money> revenues(snapshot.offers.size(), 0.0);
  std::vector<char> matched(snapshot.requests.size(), 0);
  Money total = 0.0;
  for (const Match& m : result.matches) {
    check(m.request < snapshot.requests.size(), "match request index in range");
    check(m.offer < snapshot.offers.size(), "match offer index in range");
    check(!matched[m.request], "a request trades at most once per round (constraint 5)");
    matched[m.request] = 1;
    check(m.fraction >= 0.0 && m.fraction <= 1.0, "resource fraction φ in [0, 1] (Eq. 6)");
    check(m.payment >= 0.0 && std::isfinite(m.payment), "payment non-negative and finite");
    payments[m.request] += m.payment;
    revenues[m.offer] += m.payment;
    total += m.payment;
  }

  // --- Strong budget balance (Theorem, Section IV): what clients pay is
  // exactly what providers receive.  All three totals are folds of the
  // same payment terms in the same (match) order, so the comparison is
  // exact — no epsilon.
  check(result.total_payments == total, "total payments reconcile with the match list");
  check(result.total_revenue == result.total_payments,
        "strong budget balance: Σ payments == Σ revenues, bitwise");
  for (std::size_t i = 0; i < payments.size(); ++i) {
    check(result.payment_by_request[i] == payments[i],
          "per-request settlement reconciles with the match list");
  }
  for (std::size_t i = 0; i < revenues.size(); ++i) {
    check(result.revenue_by_offer[i] == revenues[i],
          "per-offer settlement reconciles with the match list");
  }
}

}  // namespace decloud::auction::audit

#include "auction/miniauction.hpp"

#include <algorithm>

#include "common/ensure.hpp"

namespace decloud::auction {

namespace {

/// Node of the cluster forest.
struct TreeNode {
  std::size_t cluster;  // index into priced
  std::size_t parent;   // index into nodes, or npos for roots
  std::vector<std::size_t> children;
  static constexpr std::size_t npos = SIZE_MAX;
};

}  // namespace

std::vector<std::size_t> select_roots(const std::vector<PricedCluster>& priced) {
  // Collect tradeable clusters as intervals [lo, hi] with positive weight.
  struct Interval {
    std::size_t cluster;
    double lo;
    double hi;
    double weight;
  };
  std::vector<Interval> ivals;
  for (std::size_t i = 0; i < priced.size(); ++i) {
    if (!priced[i].tradeable()) continue;
    DECLOUD_EXPECTS_MSG(priced[i].range_hi() > priced[i].range_lo(),
                        "tradeable cluster must have a well-formed price range");
    // ε keeps zero-welfare clusters selectable: maximality matters more
    // than their marginal weight.
    ivals.push_back({i, priced[i].range_lo(), priced[i].range_hi(),
                     std::max(priced[i].welfare, 0.0) + 1e-9});
  }
  if (ivals.empty()) return {};

  std::sort(ivals.begin(), ivals.end(), [](const Interval& a, const Interval& b) {
    if (a.hi != b.hi) return a.hi < b.hi;
    return a.cluster < b.cluster;
  });

  // Weighted interval scheduling.  Two intervals conflict when they
  // strictly overlap (which is exactly price compatibility), so p(i) is the
  // last j with hi_j ≤ lo_i.
  const std::size_t n = ivals.size();
  std::vector<std::size_t> prev(n, SIZE_MAX);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j-- > 0;) {
      if (ivals[j].hi <= ivals[i].lo) {
        prev[i] = j;
        break;
      }
    }
  }
  std::vector<double> best(n + 1, 0.0);
  for (std::size_t i = 1; i <= n; ++i) {
    const double take =
        ivals[i - 1].weight + (prev[i - 1] == SIZE_MAX ? 0.0 : best[prev[i - 1] + 1]);
    best[i] = std::max(best[i - 1], take);
  }

  std::vector<std::size_t> roots;
  for (std::size_t i = n; i > 0;) {
    const double take =
        ivals[i - 1].weight + (prev[i - 1] == SIZE_MAX ? 0.0 : best[prev[i - 1] + 1]);
    if (take >= best[i - 1]) {
      roots.push_back(ivals[i - 1].cluster);
      i = (prev[i - 1] == SIZE_MAX) ? 0 : prev[i - 1] + 1;
    } else {
      --i;
    }
  }
  std::sort(roots.begin(), roots.end());
  return roots;
}

std::vector<MiniAuction> create_mini_auctions(const std::vector<PricedCluster>& priced) {
  const std::vector<std::size_t> roots = select_roots(priced);
  if (roots.empty()) return {};

  std::vector<TreeNode> nodes;
  std::vector<std::size_t> root_nodes;
  std::vector<char> placed(priced.size(), 0);
  for (const std::size_t r : roots) {
    root_nodes.push_back(nodes.size());
    nodes.push_back({.cluster = r, .parent = TreeNode::npos, .children = {}});
    placed[r] = 1;
  }

  // Attach the remaining tradeable clusters, highest welfare first so the
  // most valuable clusters sit closest to the roots (shortest exposure to
  // upstream exclusions).
  std::vector<std::size_t> rest;
  for (std::size_t i = 0; i < priced.size(); ++i) {
    if (priced[i].tradeable() && !placed[i]) rest.push_back(i);
  }
  std::sort(rest.begin(), rest.end(), [&](std::size_t a, std::size_t b) {
    if (priced[a].welfare != priced[b].welfare) return priced[a].welfare > priced[b].welfare;
    return a < b;
  });

  for (const std::size_t c : rest) {
    // Deepest node whose entire path is price-compatible with c; the root
    // itself qualifies whenever the ranges overlap (guaranteed for at least
    // one root by the optimality of the DP selection).
    std::size_t attach = TreeNode::npos;
    for (const std::size_t root : root_nodes) {
      if (!price_compatible(priced[c], priced[nodes[root].cluster])) continue;
      // Iterative deepening along compatible children.
      std::size_t cur = root;
      for (;;) {
        std::size_t next = TreeNode::npos;
        for (const std::size_t child : nodes[cur].children) {
          if (price_compatible(priced[c], priced[nodes[child].cluster])) {
            next = child;
            break;
          }
        }
        if (next == TreeNode::npos) break;
        cur = next;
      }
      attach = cur;
      break;  // attach to the first compatible root's tree only
    }
    if (attach == TreeNode::npos) continue;  // cannot happen for DP-optimal roots
    nodes.push_back({.cluster = c, .parent = attach, .children = {}});
    nodes[attach].children.push_back(nodes.size() - 1);
    placed[c] = 1;
  }

  // Yield one mini-auction per leaf: the path leaf → root.
  std::vector<MiniAuction> auctions;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!nodes[i].children.empty()) continue;  // not a leaf
    MiniAuction a;
    for (std::size_t cur = i; cur != TreeNode::npos; cur = nodes[cur].parent) {
      a.clusters.push_back(nodes[cur].cluster);
      a.welfare += priced[nodes[cur].cluster].welfare;
    }
    auctions.push_back(std::move(a));
  }
  DECLOUD_ENSURES(!auctions.empty());
  return auctions;
}

}  // namespace decloud::auction

// Quality-of-match heuristic — Eq. (18) of the paper.
//
//   q_(r,o) = Σ_{k ∈ K_r ∩ K_o}  σ_(r,k) · ρ'_(o,k) / (|ρ'_(o,k) − ρ'_(r,k)|² + 1)
//
// where ρ' are per-block max-normalized amounts.  The gravity-like form
// rewards offers that are both *large* (numerator) and *close* to the
// request (denominator), with the client's significance weights σ scaling
// each resource's contribution.
#pragma once

#include <vector>

#include "auction/bid.hpp"

namespace decloud::auction {

/// Per-block normalization scale: for each resource type, the maximum
/// amount appearing in any request or offer of the block (Section IV-B:
/// "we take the maximum value of the resource from offers or requests of
/// the current block as a maximum of the scale and zero as a minimum").
class BlockScale {
 public:
  BlockScale(const std::vector<Request>& requests, const std::vector<Offer>& offers);

  /// Maximum observed amount for a type (0 when the type never appears).
  [[nodiscard]] double max_of(ResourceId type) const;

  /// Normalized amount ρ' = ρ / max (0 when max is 0).
  [[nodiscard]] double normalized(ResourceId type, double amount) const;

  /// One past the largest resource id observed in the block — the row
  /// width of a dense per-bidder layout (see ScoreMatrix).
  [[nodiscard]] std::size_t dimension() const { return max_.size(); }

  /// The raw per-type maxima, indexed by ResourceId.  CandidateIndexCache
  /// compares these bitwise across rounds: equal maxima (and equal raw
  /// resources) make the normalized rows of a carried offer bit-identical,
  /// which is what lets an index built in an earlier round answer queries
  /// for the current one exactly.
  [[nodiscard]] const std::vector<double>& maxima() const { return max_; }

 private:
  std::vector<double> max_;  // indexed by ResourceId
};

/// Computes q_(r,o) under a block scale.  Returns 0 when K_r ∩ K_o = ∅
/// (such pairs are never ranked, per Section IV-B).
[[nodiscard]] double quality_of_match(const Request& r, const Offer& o, const BlockScale& scale);

/// Derives a "proximity" resource from the locations of all bids and adds
/// it to each located request/offer, so that physical closeness competes in
/// the QoM like any other resource (Section IV-B treats location/latency as
/// a resource type).  Proximity of an offer to a request is evaluated at
/// match time via the resource values this helper installs:
/// proximity = 1 / (1 + distance-to-origin-location), scaled to [0, 1].
void augment_with_proximity(MarketSnapshot& snapshot, ResourceSchema& schema,
                            Location origin, double significance = 0.5);

}  // namespace decloud::auction

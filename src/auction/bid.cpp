#include "auction/bid.hpp"

#include "common/ensure.hpp"

namespace decloud::auction {

double Request::significance_of(ResourceId type) const {
  return significance.has(type) ? significance.get(type) : 1.0;
}

void validate(const Request& r) {
  DECLOUD_EXPECTS_MSG(r.bid >= 0.0, "request bid must be non-negative (constraint 12)");
  DECLOUD_EXPECTS_MSG(!r.resources.empty(), "request must declare at least one resource");
  DECLOUD_EXPECTS_MSG(r.window_end >= r.window_start, "request window must be non-empty");
  DECLOUD_EXPECTS_MSG(r.duration > 0, "request duration must be positive");
  DECLOUD_EXPECTS_MSG(r.duration <= r.window_end - r.window_start,
                      "duration cannot exceed the service window");
  DECLOUD_EXPECTS_MSG(r.reputation >= 0.0, "reputation cannot be negative");
  for (const auto& e : r.significance.entries()) {
    DECLOUD_EXPECTS_MSG(e.amount > 0.0 && e.amount <= 1.0, "significance must lie in (0, 1]");
    DECLOUD_EXPECTS_MSG(r.resources.has(e.type),
                        "significance declared for a resource the request does not use");
  }
}

void validate(const Offer& o) {
  DECLOUD_EXPECTS_MSG(o.bid >= 0.0, "offer bid must be non-negative (constraint 13)");
  DECLOUD_EXPECTS_MSG(!o.resources.empty(), "offer must declare at least one resource");
  DECLOUD_EXPECTS_MSG(o.window_end > o.window_start, "offer window must have positive length");
  DECLOUD_EXPECTS_MSG(o.min_reputation >= 0.0, "reputation threshold cannot be negative");
}

}  // namespace decloud::auction

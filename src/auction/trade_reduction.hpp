// Clearing-price determination for a mini-auction — the first half of
// Algorithm 4 (the application of the price, exclusion and verifiable
// randomization lives in mechanism.cpp where the global allocation state
// is available).
//
// Following Segal-Halevi et al.'s strongly-budget-balanced variant of
// McAfee (Eq. 20):  p = min(v̂_z, ĉ_{z'+1}) over all clusters of the
// auction.  The participant whose bid sets the price is excluded from
// trade — together with every other bid of the same client/provider in the
// same mini-auction — so the price never depends on an allocated bid.
#pragma once

#include <vector>

#include "auction/miniauction.hpp"
#include "auction/pricing.hpp"

namespace decloud::auction {

/// The clearing price and the identity of the price-setting participant.
struct PriceQuote {
  double price = kInfiniteCost;
  /// True when v̂_z of some cluster set the price (a *request* is the
  /// setter → the client's bids are excluded and one trade is lost);
  /// false when ĉ_{z'+1} set it (the setter offer was unallocated, so no
  /// allocated trade is lost — the lucky SBBA case).
  bool setter_is_request = false;
  /// Cluster (index into the round's PricedCluster vector) providing the
  /// price-setting bid.
  std::size_t setter_cluster = 0;
  /// The excluded client (when setter_is_request)…
  ClientId client;
  /// …or the excluded provider (when !setter_is_request).
  ProviderId provider;
  /// False when the auction contains no tradeable cluster.
  bool valid = false;
};

/// Computes p = min over the auction's clusters of min(v̂_z, ĉ_{z'+1}).
/// Ties prefer the offer side (excluding an unallocated offer costs no
/// welfare).  Clusters already fully processed in an earlier mini-auction
/// are passed in `cluster_done` and skipped.
[[nodiscard]] PriceQuote determine_price(const MiniAuction& auction,
                                         const std::vector<PricedCluster>& priced,
                                         const std::vector<char>& cluster_done);

}  // namespace decloud::auction

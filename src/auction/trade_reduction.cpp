#include "auction/trade_reduction.hpp"

#include "common/ensure.hpp"

namespace decloud::auction {

PriceQuote determine_price(const MiniAuction& auction, const std::vector<PricedCluster>& priced,
                           const std::vector<char>& cluster_done) {
  DECLOUD_EXPECTS_MSG(cluster_done.size() == priced.size(),
                      "done mask must be aligned with the round's cluster list");
  PriceQuote quote;
  for (const std::size_t ci : auction.clusters) {
    DECLOUD_EXPECTS_MSG(ci < priced.size(), "mini-auction references an unknown cluster");
    if (cluster_done[ci]) continue;
    const PricedCluster& pc = priced[ci];
    if (!pc.tradeable()) continue;
    quote.valid = true;

    // Offer side first: on exact ties we prefer excluding the unallocated
    // offer z'+1, which is free, over excluding the allocated request z.
    if (pc.chat_znext <= quote.price) {
      quote.price = pc.chat_znext;
      quote.setter_is_request = false;
      quote.setter_cluster = ci;
      quote.provider = pc.znext_provider;
    }
    if (pc.vhat_z < quote.price) {
      quote.price = pc.vhat_z;
      quote.setter_is_request = true;
      quote.setter_cluster = ci;
      quote.client = pc.z_client;
    }
  }
  return quote;
}

}  // namespace decloud::auction

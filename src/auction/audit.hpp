// Mechanism-invariant audits for the auction core (DECLOUD_AUDIT).
//
// Each function independently re-derives a paper property and throws
// audit::audit_error when the mechanism's actual output violates it:
//
//   * check_mini_auction — after every mini-auction (Algorithm 4):
//       - the clearing price equals min over the auction's live clusters
//         of min(v̂_z, ĉ_{z'+1})  (Eq. 20, SBBA price rule);
//       - individual rationality: every finalized match clears at a price
//         inside the traders' *reported* normalized bounds
//         (ĉ_o ≤ p ≤ v̂_r), and the raw payment never exceeds the
//         request's reported valuation (Theorem: IR, Section IV);
//       - the excluded price-setter (and every same-client/provider bid in
//         the auction) is never allocated (trade reduction, Theorem: DSIC);
//   * check_round — after the full round:
//       - strong budget balance: Σ client payments == Σ provider revenues
//         EXACTLY (bitwise — revenues are sums of the same payment terms
//         in the same order, so fp rounding cannot diverge);
//       - per-participant settlement vectors reconcile with the match
//         list; every request trades at most once (constraint 5);
//       - counter sanity (reduced ≤ tentative, fractions in [0, 1]).
//
// See common/audit.hpp for the enable story (`audit::kEnabled`).
#pragma once

#include <cstddef>
#include <vector>

#include "auction/allocation.hpp"
#include "auction/miniauction.hpp"
#include "auction/trade_reduction.hpp"
#include "common/audit.hpp"

namespace decloud::auction::audit {

using decloud::audit::audit_error;
using decloud::audit::kEnabled;

/// Audits one processed mini-auction.  `cluster_done_before` and
/// `tradeable_before` are the cluster-done mask and per-cluster
/// tradeable() flags as they were when the price was determined (the
/// mechanism clears `tentative` during processing, which would erase the
/// tradeable bit); `first_match` is the size of result.matches before this
/// auction ran — [first_match, result.matches.size()) are the matches it
/// finalized.
void check_mini_auction(const MarketSnapshot& snapshot,
                        const std::vector<PricedCluster>& priced, const MiniAuction& auction,
                        const PriceQuote& quote, const std::vector<char>& cluster_done_before,
                        const std::vector<char>& tradeable_before, const RoundResult& result,
                        std::size_t first_match);

/// Audits the completed round result against its snapshot.
void check_round(const MarketSnapshot& snapshot, const RoundResult& result);

}  // namespace decloud::auction::audit

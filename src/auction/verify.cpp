#include "auction/verify.hpp"

#include <cmath>
#include <sstream>
#include <map>

#include "auction/feasibility.hpp"
#include "auction/mechanism.hpp"
#include "common/ensure.hpp"

namespace decloud::auction {


namespace {

constexpr double kMoneyTolerance = 1e-6;

/// Minimal substitute for std::format (unavailable in GCC 12): streams all
/// arguments into a string.
template <typename... Args>
std::string cat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

}  // namespace

VerificationReport verify_invariants(const MarketSnapshot& snapshot, const RoundResult& result,
                                     const AuctionConfig& config, bool check_payments) {
  DECLOUD_EXPECTS_MSG(config.flexibility > 0.0 && config.flexibility <= 1.0,
                      "flexibility must lie in (0, 1]");
  VerificationReport report;
  auto fail = [&](std::string msg) { report.violations.push_back(std::move(msg)); };

  // Constraint (5): each request matched at most once.
  std::vector<std::size_t> match_count(snapshot.requests.size(), 0);
  for (const Match& m : result.matches) {
    if (m.request >= snapshot.requests.size() || m.offer >= snapshot.offers.size()) {
      fail("match references out-of-range participant");
      return report;
    }
    ++match_count[m.request];
  }
  for (std::size_t r = 0; r < match_count.size(); ++r) {
    if (match_count[r] > 1) {
      fail(cat("request ", r, " matched ", match_count[r], " times (constraint 5)"));
    }
  }

  // Constraints (7)/(8): per-offer aggregate capacity, honouring the
  // flexibility relaxation; (10)/(11): temporal coverage.
  std::map<std::size_t, ResourceVector> load;
  for (const Match& m : result.matches) {
    const Request& r = snapshot.requests[m.request];
    const Offer& o = snapshot.offers[m.offer];
    if (!window_covers(o, r)) {
      fail(cat("match (r=", m.request, ", o=", m.offer, ") violates temporal constraints (10)/(11)"));
    }
    if (!resources_sufficient(o, r, config.flexibility)) {
      fail(cat("match (r=", m.request, ", o=", m.offer, ") violates resource constraint (8)"));
    }
    auto& acc = load[m.offer];
    for (const auto& e : m.granted.entries()) {
      acc.set(e.type, acc.get(e.type) + e.amount);
      if (e.amount > r.resources.get(e.type) + kMoneyTolerance) {
        fail(cat("match (r=", m.request, ", o=", m.offer, ") granted more of resource ", e.type,
                 " than requested"));
      }
    }
    // Every requested resource must be granted to at least the flexible
    // floor (strict resources in full).
    for (const auto& need : r.resources.entries()) {
      const double floor_amount =
          r.is_strict(need.type) ? need.amount : config.flexibility * need.amount;
      if (m.granted.get(need.type) < floor_amount - kMoneyTolerance) {
        fail(cat("match (r=", m.request, ", o=", m.offer, ") under-grants resource ", need.type));
      }
    }
    if (m.fraction < 0.0 || m.fraction > 1.0 + 1e-9) {
      fail(cat("match (r=", m.request, ", o=", m.offer, ") has fraction ", m.fraction, " outside [0,1]"));
    }
  }
  for (const auto& [offer, acc] : load) {
    const Offer& o = snapshot.offers[offer];
    for (const auto& e : acc.entries()) {
      // Aggregate granted demand may not exceed capacity except for the
      // bounded overshoot flexibility allows on the *last* co-located
      // container; tolerate the flexibility slack.
      const double cap = o.resources.get(e.type);
      if (e.amount > cap + kMoneyTolerance) {
        fail(cat("offer ", offer, " oversubscribed on resource ", e.type, " (", e.amount, " > ", cap, ") (constraint 7)"));
      }
    }
  }

  if (check_payments) {
    // Individual rationality: winners pay at most their bid; losers pay 0.
    std::vector<char> matched(snapshot.requests.size(), 0);
    for (const Match& m : result.matches) {
      matched[m.request] = 1;
      const Request& r = snapshot.requests[m.request];
      if (m.payment > r.bid + kMoneyTolerance) {
        fail(cat("request ", m.request, " pays ", m.payment, " above its bid ", r.bid, " (IR)"));
      }
      if (m.payment < -kMoneyTolerance) {
        fail(cat("request ", m.request, " has negative payment ", m.payment));
      }
    }
    for (std::size_t r = 0; r < snapshot.requests.size(); ++r) {
      if (!matched[r] && std::abs(result.payment_by_request[r]) > kMoneyTolerance) {
        fail(cat("unallocated request ", r, " has nonzero payment (IR)"));
      }
    }

    // Strong budget balance: Σ payments == Σ revenues.
    double payments = 0.0;
    for (const double p : result.payment_by_request) payments += p;
    double revenues = 0.0;
    for (const double v : result.revenue_by_offer) revenues += v;
    if (std::abs(payments - revenues) > kMoneyTolerance) {
      fail(cat("budget imbalance: payments ", payments, " != revenues ", revenues, " (strong BB)"));
    }
    if (std::abs(payments - result.total_payments) > kMoneyTolerance ||
        std::abs(revenues - result.total_revenue) > kMoneyTolerance) {
      fail("settlement totals disagree with per-participant ledgers");
    }
  }

  return report;
}

VerificationReport verify_replay(const MarketSnapshot& snapshot, const RoundResult& claimed,
                                 const AuctionConfig& config, std::uint64_t seed) {
  DECLOUD_EXPECTS_MSG(config.flexibility > 0.0 && config.flexibility <= 1.0,
                      "flexibility must lie in (0, 1]");
  VerificationReport report;
  const RoundResult replay = DeCloudAuction(config).run(snapshot, seed);

  if (replay.matches.size() != claimed.matches.size()) {
    report.violations.push_back(cat("replay produced ", replay.matches.size(), " matches, block claims ", claimed.matches.size()));
    return report;
  }
  for (std::size_t i = 0; i < replay.matches.size(); ++i) {
    const Match& a = replay.matches[i];
    const Match& b = claimed.matches[i];
    if (a.request != b.request || a.offer != b.offer ||
        std::abs(a.payment - b.payment) > kMoneyTolerance) {
      report.violations.push_back(
          cat("match ", i, " differs from replay (claimed r=", b.request, ",o=", b.offer, ",pay=", b.payment, "; replay r=", a.request, ",o=", a.offer, ",pay=", a.payment, ")"));
    }
  }
  if (std::abs(replay.total_payments - claimed.total_payments) > kMoneyTolerance) {
    report.violations.push_back("total payments differ from replay");
  }
  return report;
}

}  // namespace decloud::auction

#include "auction/candidate_index.hpp"

#include <algorithm>
#include <cmath>

#include "auction/best_select.hpp"
#include "auction/feasibility.hpp"
#include "common/ensure.hpp"

namespace decloud::auction {

namespace {

/// Buckets per window axis: 8×8 = at most 64 cells, so the per-query cell
/// work (activation tests, bound sort) stays trivial next to the offer
/// scan it saves.
constexpr std::size_t kWindowBuckets = 8;

/// Members scored per block of the cell kernel.  256 doubles per column
/// panel keeps the accumulator and column slices L1-resident, while the
/// block-leading static ub gives the scan an early-exit test every 256
/// offers.
constexpr std::size_t kCellBlock = 256;

/// Relative inflation applied to the request-aware cell bounds.  The
/// closed-form peak is exact in the reals; the computed doubles can round
/// a few ulp either way, so the bound is widened by nine orders of
/// magnitude more than any accumulated rounding before it is compared
/// against computed q values.  (The static per-offer bound needs NO slack:
/// it dominates q fold-step by fold-step under monotone rounding.)
constexpr double kBoundSlack = 1.0 + 1e-9;

/// Quantile boundaries over `values` (sorted copy, up to kWindowBuckets
/// groups): boundaries[i] is the first value of group i+1.
std::vector<Time> bucket_boundaries(std::vector<Time> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  std::vector<Time> bounds;
  const std::size_t groups = std::min(kWindowBuckets, std::max<std::size_t>(values.size(), 1));
  for (std::size_t g = 1; g < groups; ++g) {
    bounds.push_back(values[g * values.size() / groups]);
  }
  return bounds;
}

std::size_t bucket_of(const std::vector<Time>& bounds, Time v) {
  return static_cast<std::size_t>(std::upper_bound(bounds.begin(), bounds.end(), v) -
                                  bounds.begin());
}

/// sup over op ∈ [0, M] of op / ((op − rp)² + 1): the Eq. 18 term's
/// request-aware peak, attained at op* = √(rp² + 1) (the positive root of
/// d² + 2·rp·d − 1 with d = op − rp) or at M when the cell's maximum sits
/// left of the peak.
double peak_term(double cell_max, double rp) {
  if (cell_max <= 0.0) return 0.0;
  const double op_star = std::sqrt(rp * rp + 1.0);  // = rp + d*
  const double op = std::min(cell_max, op_star);
  const double d = op - rp;
  return op / (d * d + 1.0);
}

}  // namespace

CandidateIndex::CandidateIndex(const MarketSnapshot& snapshot, const BlockScale& scale,
                               const ScoreMatrix& scores)
    : width_(scale.dimension()) {
  DECLOUD_EXPECTS_MSG(scores.offers() == snapshot.offers.size() && scores.width() == width_,
                      "ScoreMatrix/BlockScale must come from the same snapshot");
  const std::size_t no = snapshot.offers.size();
  ub_.resize(no);
  mask_.resize(no);
  for (std::size_t o = 0; o < no; ++o) {
    const double* row = scores.offer_norm_row(o);
    // Ascending-k left fold, exactly like the score folds it bounds:
    // each ub term ρ'_(o,k) dominates the corresponding q term, and IEEE
    // rounding is monotone, so the computed ub dominates every computed q.
    double ub = 0.0;
    std::uint64_t mask = 0;
    for (std::size_t k = 0; k < width_; ++k) {
      ub += row[k];
      if (row[k] > 0.0) mask |= std::uint64_t{1} << (k % 64);
    }
    ub_[o] = ub;
    mask_[o] = mask;
  }

  // Tie-group ranks (structural fact 4): offers identical in
  // (window_start, window_end, min_reputation, normalized row) are exact
  // ties for every request, ordered among themselves only by the
  // selector's own (submitted, id) tie-break.  min_reputation is part of
  // the key because feasible() gates on it: offers equal in window and
  // resources but with different reputation thresholds can give DIFFERENT
  // feasibility verdicts for the same request, so they are not
  // interchangeable.  Sort by (key, submitted, id), then rank within each
  // equal-key run.
  const auto same_group = [&](std::size_t a, std::size_t b) {
    const Offer& oa = snapshot.offers[a];
    const Offer& ob = snapshot.offers[b];
    if (oa.window_start != ob.window_start || oa.window_end != ob.window_end) return false;
    if (oa.min_reputation != ob.min_reputation) return false;
    const double* ra = scores.offer_norm_row(a);
    const double* rb = scores.offer_norm_row(b);
    for (std::size_t k = 0; k < width_; ++k) {
      if (ra[k] != rb[k]) return false;
    }
    return true;
  };
  std::vector<std::size_t> order(no);
  for (std::size_t o = 0; o < no; ++o) order[o] = o;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const Offer& oa = snapshot.offers[a];
    const Offer& ob = snapshot.offers[b];
    if (oa.window_start != ob.window_start) return oa.window_start < ob.window_start;
    if (oa.window_end != ob.window_end) return oa.window_end < ob.window_end;
    if (oa.min_reputation != ob.min_reputation) return oa.min_reputation < ob.min_reputation;
    const double* ra = scores.offer_norm_row(a);
    const double* rb = scores.offer_norm_row(b);
    for (std::size_t k = 0; k < width_; ++k) {
      if (ra[k] != rb[k]) return ra[k] < rb[k];
    }
    // Within a group: the selector's tie-break order, verbatim.
    if (oa.submitted != ob.submitted) return oa.submitted < ob.submitted;
    return oa.id < ob.id;
  });
  std::vector<std::size_t> group_rank(no, 0);
  for (std::size_t i = 1; i < no; ++i) {
    group_rank[order[i]] = same_group(order[i - 1], order[i]) ? group_rank[order[i - 1]] + 1 : 0;
  }
  // Mark every member of a group that spilled past kGroupCap: the
  // cross-round cache must rebuild (not carry) when one of these expires,
  // because the expiry could promote an overflow member into reach of
  // max_best_offers (see in_capped_group).
  capped_group_.assign(no, 0);
  for (std::size_t run_begin = 0, i = 1; i <= no; ++i) {
    if (i == no || group_rank[order[i]] == 0) {
      if (i - run_begin > kGroupCap) {
        for (std::size_t j = run_begin; j < i; ++j) capped_group_[order[j]] = 1;
      }
      run_begin = i;
    }
  }

  // Window grid: quantile buckets over the offers' start/end stamps.
  std::vector<Time> starts(no);
  std::vector<Time> ends(no);
  for (std::size_t o = 0; o < no; ++o) {
    starts[o] = snapshot.offers[o].window_start;
    ends[o] = snapshot.offers[o].window_end;
  }
  const std::vector<Time> ws_bounds = bucket_boundaries(starts);
  const std::vector<Time> we_bounds = bucket_boundaries(ends);
  const std::size_t n_we = we_bounds.size() + 1;
  cells_.resize((ws_bounds.size() + 1) * n_we);

  for (std::size_t o = 0; o < no; ++o) {
    if (group_rank[o] >= kGroupCap) {
      overflow_.push_back(o);  // ascending index: o is the loop variable
      continue;
    }
    const std::size_t ci = bucket_of(ws_bounds, starts[o]) * n_we + bucket_of(we_bounds, ends[o]);
    Cell& cell = cells_[ci];
    if (cell.offers.empty()) {
      cell.ws_min = starts[o];
      cell.we_max = ends[o];
      cell.dim_max.assign(width_, 0.0);
    } else {
      cell.ws_min = std::min(cell.ws_min, starts[o]);
      cell.we_max = std::max(cell.we_max, ends[o]);
    }
    cell.mask |= mask_[o];
    const double* row = scores.offer_norm_row(o);
    for (std::size_t k = 0; k < width_; ++k) {
      cell.dim_max[k] = std::max(cell.dim_max[k], row[k]);
    }
    cell.offers.push_back(o);
  }
  // Drop empty cells; order members by descending static bound (ties by
  // ascending index — a deterministic total order), then lay the members'
  // normalized rows out k-major so the query can score blocks with the
  // same contiguous kernel as ScoreMatrix::score_row.
  std::erase_if(cells_, [](const Cell& c) { return c.offers.empty(); });
  for (Cell& cell : cells_) {
    std::sort(cell.offers.begin(), cell.offers.end(), [&](std::size_t a, std::size_t b) {
      if (ub_[a] != ub_[b]) return ub_[a] > ub_[b];
      return a < b;
    });
    const std::size_t m = cell.offers.size();
    cell.col.assign(width_ * m, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      const double* row = scores.offer_norm_row(cell.offers[i]);
      for (std::size_t k = 0; k < width_; ++k) cell.col[k * m + i] = row[k];
    }
  }
}

std::vector<std::size_t> CandidateIndex::best_offers(std::size_t request,
                                                     const MarketSnapshot& snapshot,
                                                     const ScoreMatrix& scores,
                                                     const AuctionConfig& config,
                                                     Scratch& scratch) const {
  DECLOUD_EXPECTS(request < snapshot.requests.size());
  if (config.max_best_offers == 0) return {};
  BestOfferSelector selector(snapshot.offers, config.max_best_offers);
  scan_into(selector, request, snapshot, scores, config, scratch, {});
  return selector.finish(config.best_offer_ratio);
}

void CandidateIndex::scan_into(BestOfferSelector& selector, std::size_t request,
                               const MarketSnapshot& snapshot, const ScoreMatrix& scores,
                               const AuctionConfig& config, Scratch& scratch,
                               std::span<const std::size_t> remap) const {
  DECLOUD_EXPECTS(request < snapshot.requests.size());
  DECLOUD_EXPECTS_MSG(remap.empty() || remap.size() == ub_.size(),
                      "remap must cover every build-time slot");
  if (config.max_best_offers == 0) return;  // selector would be vacuously full
  const Request& r = snapshot.requests[request];
  const double* rp = scores.request_norm_row(request);
  const double* sig = scores.request_sig_row(request);

  std::uint64_t rmask = 0;
  for (const ResourceId k : scores.request_types(request)) {
    rmask |= std::uint64_t{1} << (k % 64);
  }

  // Activate the cells that can possibly hold a ranked feasible offer,
  // with their request-aware bounds, ordered (bound desc, cell asc) — a
  // deterministic total order that lets the scan stop at the first cell
  // whose bound falls strictly below the held k-th q.
  scratch.active.clear();
  for (std::size_t ci = 0; ci < cells_.size(); ++ci) {
    const Cell& cell = cells_[ci];
    if (cell.ws_min > r.window_start) continue;   // nobody covers t_r⁻
    if (cell.we_max < r.window_end) continue;     // nobody covers t_r⁺
    if ((cell.mask & rmask) == 0) continue;       // no shared type: q ≡ +0.0
    double bound = 0.0;
    for (const ResourceId k : scores.request_types(request)) {
      bound += sig[k] * peak_term(cell.dim_max[k], rp[k]);
    }
    bound *= kBoundSlack;
    if (bound <= 0.0) continue;                   // q ≡ +0.0 in this cell
    scratch.active.push_back({ci, bound});
  }
  std::sort(scratch.active.begin(), scratch.active.end(),
            [](const Scratch::Active& a, const Scratch::Active& b) {
              if (a.bound != b.bound) return a.bound > b.bound;
              return a.cell < b.cell;
            });

  scratch.acc.resize(kCellBlock);
  const std::span<const ResourceId> types = scores.request_types(request);
  for (const Scratch::Active& act : scratch.active) {
    // Strict '<' throughout the early exits: an exact tie with the k-th q
    // could still win on the (submitted, id) tie-break, so only strictly
    // lower bounds stop the scan.  Cells are sorted by descending bound,
    // so everything after this cell is bounded even lower.
    if (selector.full() && act.bound < selector.kth_q()) break;
    const Cell& cell = cells_[act.cell];
    const std::size_t m = cell.offers.size();
    for (std::size_t base = 0; base < m; base += kCellBlock) {
      // Members are sorted by descending static ub, so the block's first
      // member bounds the whole tail of the cell; the static bound
      // dominates computed q fold-step by fold-step (no slack needed).
      if (selector.full() && ub_[cell.offers[base]] < selector.kth_q()) break;
      const std::size_t n = std::min(kCellBlock, m - base);
      double* __restrict acc = scratch.acc.data();
      std::fill(acc, acc + n, 0.0);
      for (const ResourceId k : types) {
        // A column the cell never touches contributes exactly +0.0 to
        // every lane (ρ' = 0 for all members), so skipping it preserves
        // the ascending-k left fold bit for bit.
        if (cell.dim_max[k] <= 0.0) continue;
        const double sk = sig[k];
        const double rpk = rp[k];
        const double* __restrict col = cell.col.data() + k * m + base;
        for (std::size_t i = 0; i < n; ++i) {
          const double d = col[i] - rpk;
          acc[i] += sk * col[i] / (d * d + 1.0);
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        const double q = acc[i];
        if (q <= 0.0) continue;  // no common resource type: never ranked
        const std::size_t slot = cell.offers[base + i];
        // Translate the build-time slot into the current snapshot;
        // tombstoned slots drop out here, AFTER the vectorized panel (a
        // per-lane branch inside the kernel would cost more than the dead
        // lanes' wasted arithmetic).
        const std::size_t o = remap.empty() ? slot : remap[slot];
        if (o == kExpiredSlot) continue;
        if (!feasible(snapshot.offers[o], r, config)) continue;
        selector.consider(o, q);
      }
    }
  }
  // Tie-group members beyond kGroupCap can only matter under a cap larger
  // than the build-time guarantee; then they are scanned exhaustively —
  // exactness over speed for that (unusual) configuration.
  if (config.max_best_offers > kGroupCap) {
    for (const std::size_t slot : overflow_) {
      if ((mask_[slot] & rmask) == 0) continue;  // q would be exactly +0.0
      const std::size_t o = remap.empty() ? slot : remap[slot];
      if (o == kExpiredSlot) continue;
      if (!feasible(snapshot.offers[o], r, config)) continue;
      const double q = scores.score_sparse(request, o);
      if (q <= 0.0) continue;
      selector.consider(o, q);
    }
  }
}

namespace {

/// Bitwise equality in every field the index derives state from.  Fields
/// the index never reads (provider, bid, location) may differ freely: the
/// query reads them from the CURRENT snapshot anyway (feasibility,
/// selector tie-breaks, downstream economics all take current offers).
bool offer_unchanged(const Offer& base, const Offer& cur) {
  return base.submitted == cur.submitted && base.window_start == cur.window_start &&
         base.window_end == cur.window_end && base.min_reputation == cur.min_reputation &&
         base.resources == cur.resources;
}

}  // namespace

bool CandidateIndexCache::scale_matches(const BlockScale& scale) const {
  const std::vector<double>& cur = scale.maxima();
  if (cur.size() != scale_max_.size()) return false;
  for (std::size_t k = 0; k < cur.size(); ++k) {
    // Bitwise, not approximate: equal maxima (with equal raw resources)
    // reproduce a carried offer's normalized row bit for bit, which is
    // exactly what the cached cell columns assume.
    if (cur[k] != scale_max_[k]) return false;
  }
  return true;
}

void CandidateIndexCache::rebuild(const MarketSnapshot& snapshot, const BlockScale& scale,
                                  const ScoreMatrix& scores) {
  index_.emplace(snapshot, scale, scores);
  base_offers_ = snapshot.offers;
  scale_max_ = scale.maxima();
  slot_of_.clear();
  slot_of_.reserve(base_offers_.size());
  for (std::size_t s = 0; s < base_offers_.size(); ++s) {
    // Duplicate ids cannot happen in an orchestrated round (the mempool
    // dedups); if one does, the shadowed slot simply never carries and
    // the next prepare() rebuilds — safe either way.
    slot_of_[base_offers_[s].id.value()] = s;
  }
  base_to_cur_.resize(base_offers_.size());
  for (std::size_t s = 0; s < base_to_cur_.size(); ++s) base_to_cur_[s] = s;
  loose_.clear();
  loose_mask_.clear();
  ++rebuilds_;
}

CandidateIndexCache::PrepareStats CandidateIndexCache::prepare(const MarketSnapshot& snapshot,
                                                               const BlockScale& scale,
                                                               const ScoreMatrix& scores,
                                                               const AuctionConfig& config) {
  DECLOUD_EXPECTS_MSG(scores.offers() == snapshot.offers.size() &&
                          scores.width() == scale.dimension(),
                      "ScoreMatrix/BlockScale must come from the same snapshot");
  PrepareStats st;
  const std::size_t no = snapshot.offers.size();

  bool carry = index_.has_value() && scale_matches(scale);
  if (carry) {
    base_to_cur_.assign(base_offers_.size(), kExpiredSlot);
    loose_.clear();
    for (std::size_t o = 0; o < no; ++o) {
      const Offer& cur = snapshot.offers[o];
      const auto it = slot_of_.find(cur.id.value());
      if (it != slot_of_.end() && base_to_cur_[it->second] == kExpiredSlot &&
          offer_unchanged(base_offers_[it->second], cur)) {
        base_to_cur_[it->second] = o;
        ++st.carried;
      } else {
        loose_.push_back(o);
      }
    }
    st.inserted = loose_.size();
    for (std::size_t s = 0; s < base_to_cur_.size(); ++s) {
      if (base_to_cur_[s] != kExpiredSlot) continue;
      ++st.expired;
      // An expiry inside a capped tie group voids the overflow-relegation
      // guarantee (in_capped_group): rebuild instead of carrying.
      if (index_->in_capped_group(s)) carry = false;
    }
    const std::size_t divisor =
        config.residue.index_rebuild_divisor == 0 ? 1 : config.residue.index_rebuild_divisor;
    if (st.expired + st.inserted > config.residue.index_min_rebuild + no / divisor) {
      carry = false;  // the delta outgrew the index: carrying would scan
                      // a large loose list every query
    }
  }

  if (!carry) {
    rebuild(snapshot, scale, scores);
    st = PrepareStats{};
    st.rebuilt = true;
    return st;
  }

  // Loose-offer type masks (the scan's only prefilter for them), built
  // from the CURRENT score rows — loose offers have no build-time state.
  loose_mask_.resize(loose_.size());
  const std::size_t width = scores.width();
  for (std::size_t i = 0; i < loose_.size(); ++i) {
    const double* row = scores.offer_norm_row(loose_[i]);
    std::uint64_t mask = 0;
    for (std::size_t k = 0; k < width; ++k) {
      if (row[k] > 0.0) mask |= std::uint64_t{1} << (k % 64);
    }
    loose_mask_[i] = mask;
  }
  ++reuses_;
  return st;
}

std::vector<std::size_t> CandidateIndexCache::best_offers(std::size_t request,
                                                          const MarketSnapshot& snapshot,
                                                          const ScoreMatrix& scores,
                                                          const AuctionConfig& config,
                                                          CandidateIndex::Scratch& scratch) const {
  DECLOUD_EXPECTS_MSG(index_.has_value(), "prepare() must precede queries");
  DECLOUD_EXPECTS(request < snapshot.requests.size());
  if (config.max_best_offers == 0) return {};
  const Request& r = snapshot.requests[request];
  BestOfferSelector selector(snapshot.offers, config.max_best_offers);

  // Loose offers first: they are few (the rebuild threshold bounds them),
  // and seeding the selector tightens the index scan's early exits.  The
  // selector's outcome is independent of consideration order, so this is
  // purely a scheduling choice.
  std::uint64_t rmask = 0;
  for (const ResourceId k : scores.request_types(request)) {
    rmask |= std::uint64_t{1} << (k % 64);
  }
  for (std::size_t i = 0; i < loose_.size(); ++i) {
    if ((loose_mask_[i] & rmask) == 0) continue;  // q would be exactly +0.0
    const std::size_t o = loose_[i];
    if (!feasible(snapshot.offers[o], r, config)) continue;
    const double q = scores.score_sparse(request, o);
    if (q <= 0.0) continue;
    selector.consider(o, q);
  }

  index_->scan_into(selector, request, snapshot, scores, config, scratch, base_to_cur_);
  return selector.finish(config.best_offer_ratio);
}

}  // namespace decloud::auction

// Per-cluster economic normalization — Section IV-C of the paper.
//
// Offers and requests within a cluster differ in size and time span, so the
// McAfee-style ranking needs a common per-unit-resource, per-unit-time
// scale.  The cluster's *virtual maximum* M_CL (per-resource max over its
// offers) defines the unit; every bid is expressed as a fraction ν of that
// unit:
//
//   ν_o = ‖ρ_o‖₂ / ‖M_CL‖₂                        ĉ_o = c_o / (ν_o (t_o⁺ − t_o⁻))
//   ν_r = max(ν_CR, ‖ρ_r‖₂ / ‖M_CL‖₂)             v̂_r = v_r / (ν_r d_r)
//
// where ν_CR is the request's worst-case *critical* resource utilization
// (CPU/memory/disk plus any resource demanded by every request in the
// cluster): a container pinning 100 % of the CPU must pay 100 % of the
// clearing price no matter how small its other demands are.
#pragma once

#include <limits>
#include <unordered_map>
#include <vector>

#include "auction/bid.hpp"
#include "auction/cluster.hpp"
#include "common/types.hpp"

namespace decloud::auction {

/// An offer of a cluster with its normalized cost.
struct OfferEconomics {
  std::size_t offer = 0;  ///< index into MarketSnapshot::offers
  double nu = 0.0;        ///< ν_o — fraction of the virtual maximum
  double chat = 0.0;      ///< ĉ_o — normalized unit cost
};

/// A request of a cluster with its normalized valuation.
struct RequestEconomics {
  std::size_t request = 0;  ///< index into MarketSnapshot::requests
  double nu = 0.0;          ///< ν_r
  double vhat = 0.0;        ///< v̂_r — normalized unit valuation
};

/// Value used for ĉ_{z'+1} when no next offer exists ("we assume
/// ĉ_{z'+1} = ∞", Section IV-C).
inline constexpr double kInfiniteCost = std::numeric_limits<double>::infinity();

/// The priced view of one cluster: members sorted McAfee-style
/// (requests by v̂ descending, offers by ĉ ascending; ties broken by
/// earlier submission then lower id, per Section IV-D).
struct ClusterEconomics {
  std::vector<RequestEconomics> requests;
  std::vector<OfferEconomics> offers;
  /// ‖M_CL‖₂ of the virtual maximum (0 for a degenerate cluster).
  double virtual_max_norm = 0.0;
  /// Types in K_CL (sorted).
  std::vector<ResourceId> common_types;

  /// Looks up ν_r for a request index; quiet NaN when absent.
  [[nodiscard]] double nu_of_request(std::size_t request) const;

  /// v̂_r for a request index; 0.0 when the request is not in the cluster
  /// (an absent request can never clear any price).
  [[nodiscard]] double vhat_of(std::size_t request) const;

  /// ĉ_o for an offer index; kInfiniteCost when the offer is not in the
  /// cluster (an absent offer can never be cleared).
  [[nodiscard]] double chat_of(std::size_t offer) const;

  /// Rebuilds the O(1) snapshot-index → sorted-position maps behind the
  /// lookups above.  compute_economics calls this once per cluster; call
  /// it again after mutating `requests` or `offers` by hand.
  void rebuild_index();

 private:
  std::unordered_map<std::size_t, std::size_t> request_pos_;
  std::unordered_map<std::size_t, std::size_t> offer_pos_;
};

/// Computes the normalized economics of a cluster.  Offers that share no
/// common type with the cluster (ν_o = 0) are dropped — they cannot be
/// priced in this cluster's unit.
[[nodiscard]] ClusterEconomics compute_economics(const Cluster& cluster,
                                                 const MarketSnapshot& snapshot);

}  // namespace decloud::auction

#include "auction/mechanism.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>

#include "auction/audit.hpp"
#include "auction/best_select.hpp"
#include "auction/candidate_index.hpp"
#include "auction/cluster.hpp"
#include "auction/economics.hpp"
#include "auction/feasibility.hpp"
#include "auction/miniauction.hpp"
#include "auction/pricing.hpp"
#include "auction/score_matrix.hpp"
#include "auction/trade_reduction.hpp"
#include "common/ensure.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "obs/sink.hpp"

namespace decloud::auction {

namespace {

/// Shared core of the best_offers overloads; `score(o)` yields q_(r,o).
/// The sparse, dense and row score paths are bit-identical (see
/// score_matrix.hpp), so every overload ranks and thresholds identically.
/// Selection runs through the bounded top-k buffer: only the first
/// max_best_offers entries of the full (q, submitted, id) ranking can ever
/// be emitted, and BestOfferSelector holds exactly that prefix.
template <typename ScoreFn>
std::vector<std::size_t> best_offers_impl(const Request& r, const MarketSnapshot& snapshot,
                                          const AuctionConfig& config, const ScoreFn& score) {
  BestOfferSelector selector(snapshot.offers, config.max_best_offers);
  for (std::size_t o = 0; o < snapshot.offers.size(); ++o) {
    const Offer& offer = snapshot.offers[o];
    if (!feasible(offer, r, config)) continue;
    const double q = score(o);
    if (q <= 0.0) continue;  // no common resource type: never ranked
    selector.consider(o, q);
  }
  return selector.finish(config.best_offer_ratio);
}

}  // namespace

std::vector<std::size_t> best_offers(const Request& r, const MarketSnapshot& snapshot,
                                     const BlockScale& scale, const AuctionConfig& config) {
  return best_offers_impl(r, snapshot, config,
                          [&](std::size_t o) { return quality_of_match(r, snapshot.offers[o], scale); });
}

std::vector<std::size_t> best_offers(std::size_t request, const MarketSnapshot& snapshot,
                                     const ScoreMatrix& scores, const AuctionConfig& config) {
  return best_offers_impl(snapshot.requests[request], snapshot, config,
                          [&](std::size_t o) { return scores.score(request, o); });
}

std::vector<std::size_t> best_offers_from_row(std::size_t request, const MarketSnapshot& snapshot,
                                              std::span<const double> row,
                                              const AuctionConfig& config) {
  DECLOUD_EXPECTS(row.size() == snapshot.offers.size());
  return best_offers_impl(snapshot.requests[request], snapshot, config,
                          [&](std::size_t o) { return row[o]; });
}

std::vector<std::size_t> best_offers_reference(const Request& r, const MarketSnapshot& snapshot,
                                               const BlockScale& scale,
                                               const AuctionConfig& config) {
  struct Ranked {
    std::size_t offer;
    double q;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(snapshot.offers.size());
  for (std::size_t o = 0; o < snapshot.offers.size(); ++o) {
    const Offer& offer = snapshot.offers[o];
    if (!feasible(offer, r, config)) continue;
    const double q = quality_of_match(r, offer, scale);
    if (q <= 0.0) continue;  // no common resource type: never ranked
    ranked.push_back({o, q});
  }
  if (ranked.empty()) return {};

  std::sort(ranked.begin(), ranked.end(), [&](const Ranked& a, const Ranked& b) {
    if (a.q != b.q) return a.q > b.q;
    const Offer& oa = snapshot.offers[a.offer];
    const Offer& ob = snapshot.offers[b.offer];
    if (oa.submitted != ob.submitted) return oa.submitted < ob.submitted;  // earlier wins ties
    return oa.id < ob.id;
  });

  const double threshold = config.best_offer_ratio * ranked.front().q;
  std::vector<std::size_t> best;
  for (const auto& rk : ranked) {
    if (rk.q < threshold || best.size() >= config.max_best_offers) break;
    best.push_back(rk.offer);
  }
  std::sort(best.begin(), best.end());
  return best;
}

namespace {

/// Finalizes one match into the round result.
void finalize_match(RoundResult& result, const MarketSnapshot& snapshot, std::size_t request,
                    std::size_t offer, double nu_r, double price, ResourceVector granted) {
  const Request& r = snapshot.requests[request];
  const Offer& o = snapshot.offers[offer];
  Match m;
  m.request = request;
  m.offer = offer;
  m.granted = std::move(granted);
  m.fraction = resource_fraction(r, o);
  m.unit_price = price;
  m.payment = nu_r * static_cast<double>(r.duration) * price;
  result.welfare += match_welfare(r, o);
  result.total_payments += m.payment;
  result.total_revenue += m.payment;  // strong budget balance by construction
  result.payment_by_request[request] += m.payment;
  result.revenue_by_offer[offer] += m.payment;
  result.matches.push_back(m);
}

/// Round-level telemetry, recorded once per run at every exit point.  All
/// values are deterministic functions of the (deterministic) result, so an
/// instrumented run exports the same bytes regardless of thread count.
void record_round(obs::MetricsSink* sink, const MarketSnapshot& snapshot,
                  const RoundResult& result) {
  if (sink == nullptr) return;
  obs::MetricsRegistry& m = sink->metrics();
  m.counter("auction.rounds").add(1);
  m.counter("auction.requests").add(snapshot.requests.size());
  m.counter("auction.offers").add(snapshot.offers.size());
  m.counter("auction.matches").add(result.matches.size());
  m.counter("auction.tentative_trades").add(result.tentative_trades);
  m.counter("auction.reduced_trades").add(result.reduced_trades);
  m.counter("auction.lottery_clusters").add(result.lottery_clusters);
  m.gauge("auction.welfare").add(result.welfare);
  m.gauge("auction.payments").add(result.total_payments);
  stats::Histogram& prices = m.histogram("auction.clearing_price", 0.0, 4.0, 16);
  for (const double p : result.clearing_prices) prices.add(p);
}

}  // namespace

RoundResult DeCloudAuction::run(const MarketSnapshot& snapshot, std::uint64_t seed,
                                obs::MetricsSink* sink, CandidateIndexCache* cache) const {
  for (const auto& r : snapshot.requests) validate(r);
  for (const auto& o : snapshot.offers) validate(o);

  RoundResult result;
  result.payment_by_request.assign(snapshot.requests.size(), 0.0);
  result.revenue_by_offer.assign(snapshot.offers.size(), 0.0);
  if (snapshot.requests.empty() || snapshot.offers.empty()) {
    if constexpr (audit::kEnabled) audit::check_round(snapshot, result);
    record_round(sink, snapshot, result);
    return result;
  }

  // --- Step 1–2: rank best offers per request and form clusters (Alg. 2).
  // Scoring runs over the dense ScoreMatrix and fans out across requests —
  // each request's ranking is independent, and every worker writes only its
  // own slot of `best_sets`, so the fan-out is race-free and its output
  // does not depend on the worker count.  Cluster folding stays serial and
  // ordered: Algorithm 2 is fold-order-sensitive, and the ledger's
  // collective verification replays this allocation byte-for-byte.
  std::vector<std::size_t> request_order(snapshot.requests.size());
  std::vector<std::vector<std::size_t>> best_sets(snapshot.requests.size());
  {
    // Only the calling thread touches the sink: the fan-out workers write
    // their own best_sets slots and nothing else, so one span wrapping the
    // whole parallel section is race-free by construction.
    obs::SpanScope span(sink, "score");
    span.add_work(snapshot.requests.size() * snapshot.offers.size());

    const BlockScale scale(snapshot.requests, snapshot.offers);
    const ScoreMatrix scores(snapshot, scale);
    std::iota(request_order.begin(), request_order.end(), std::size_t{0});
    std::sort(request_order.begin(), request_order.end(), [&](std::size_t a, std::size_t b) {
      const Request& ra = snapshot.requests[a];
      const Request& rb = snapshot.requests[b];
      if (ra.submitted != rb.submitted) return ra.submitted < rb.submitted;
      return ra.id < rb.id;
    });

    const std::size_t workers =
        config_.threads == 0 ? ThreadPool::default_workers() : config_.threads;
    std::optional<ThreadPool> pool;
    if (workers > 1 && snapshot.requests.size() >= kMinParallelRequests) pool.emplace(workers);

    // Path selection (part of consensus via AuctionConfig::scoring): both
    // paths emit byte-identical best_sets, so kAuto may pick by size alone.
    const bool use_pruned =
        config_.scoring == ScoringPath::kPruned ||
        (config_.scoring == ScoringPath::kAuto && snapshot.offers.size() >= kMinPrunedOffers);
    if (use_pruned && cache != nullptr) {
      // Cross-round reuse: prepare() carries the previous round's index
      // when the offer book evolved slowly, rebuilding otherwise.  Either
      // way the queries are bit-identical to a fresh build, so verifiers
      // (which never see the cache) replay the same allocation.
      const CandidateIndexCache::PrepareStats st =
          cache->prepare(snapshot, scale, scores, config_);
      if (sink != nullptr) {
        obs::MetricsRegistry& m = sink->metrics();
        m.counter(st.rebuilt ? "auction.index_rebuilds" : "auction.index_reuses").add(1);
        m.counter("auction.index_carried").add(st.carried);
        m.counter("auction.index_expired").add(st.expired);
        m.counter("auction.index_inserted").add(st.inserted);
      }
      const CandidateIndexCache& idx = *cache;
      run_chunked(pool ? &*pool : nullptr, 0, snapshot.requests.size(), [&](std::size_t ri) {
        thread_local CandidateIndex::Scratch scratch;
        best_sets[ri] = idx.best_offers(ri, snapshot, scores, config_, scratch);
      });
    } else if (use_pruned) {
      const CandidateIndex index(snapshot, scale, scores);
      run_chunked(pool ? &*pool : nullptr, 0, snapshot.requests.size(), [&](std::size_t ri) {
        // One scratch per worker thread: the hot loop never allocates after
        // its first few requests, and workers share no mutable state.
        thread_local CandidateIndex::Scratch scratch;
        best_sets[ri] = index.best_offers(ri, snapshot, scores, config_, scratch);
      });
    } else {
      run_chunked(pool ? &*pool : nullptr, 0, snapshot.requests.size(), [&](std::size_t ri) {
        thread_local std::vector<double> row;
        row.resize(scores.offers());
        scores.score_row(ri, row);
        best_sets[ri] = best_offers_from_row(ri, snapshot, row, config_);
      });
    }
  }

  ClusterSet cluster_set;
  {
    obs::SpanScope span(sink, "cluster");
    for (const std::size_t ri : request_order) {
      if (!best_sets[ri].empty()) cluster_set.update(ri, best_sets[ri]);
    }
    span.add_work(cluster_set.size());
    if (sink != nullptr) sink->metrics().counter("auction.clusters").add(cluster_set.size());
  }

  // --- Step 3: normalization + greedy tentative allocation per cluster.
  CapacityTracker capacity(snapshot.offers);
  std::vector<char> request_taken(snapshot.requests.size(), 0);
  std::vector<PricedCluster> priced;
  std::vector<MiniAuction> auctions;
  {
    obs::SpanScope span(sink, "miniauction");
    priced.reserve(cluster_set.size());
    for (std::size_t ci = 0; ci < cluster_set.size(); ++ci) {
      priced.push_back(price_cluster(ci, compute_economics(cluster_set.clusters()[ci], snapshot),
                                     snapshot, capacity, request_taken, config_));
      result.tentative_trades += priced.back().tentative.size();
    }

    if (!config_.truthful) {
      // Non-truthful greedy benchmark: every tentative match trades; no
      // clearing price, no exclusions (welfare/satisfaction comparisons only).
      for (const auto& pc : priced) {
        for (const auto& m : pc.tentative) {
          const double nu = pc.econ.nu_of_request(m.request);
          finalize_match(result, snapshot, m.request, m.offer, std::isnan(nu) ? 0.0 : nu, 0.0,
                         m.consumed);
        }
      }
      if constexpr (audit::kEnabled) audit::check_round(snapshot, result);
      record_round(sink, snapshot, result);
      return result;
    }

    // --- Step 4: mini-auctions (Alg. 3), processed in descending welfare.
    // The ablation path clears every cluster alone instead of grouping.
    if (config_.group_mini_auctions) {
      auctions = create_mini_auctions(priced);
    } else {
      for (std::size_t ci = 0; ci < priced.size(); ++ci) {
        if (!priced[ci].tradeable()) continue;
        auctions.push_back({.clusters = {ci}, .welfare = priced[ci].welfare});
      }
    }
    std::sort(auctions.begin(), auctions.end(), [](const MiniAuction& a, const MiniAuction& b) {
      if (a.welfare != b.welfare) return a.welfare > b.welfare;
      return a.clusters < b.clusters;
    });
    span.add_work(auctions.size());
  }

  // --- Step 5: trade reduction + verifiable randomization (Alg. 4).
  obs::SpanScope trade_reduction_span(sink, "trade_reduction");
  trade_reduction_span.add_work(auctions.size());
  Rng rng(seed);
  std::vector<char> cluster_done(priced.size(), 0);
  std::vector<char> request_processed(snapshot.requests.size(), 0);
  std::vector<char> offer_processed(snapshot.offers.size(), 0);
  std::vector<char> request_matched(snapshot.requests.size(), 0);

  for (const MiniAuction& auction : auctions) {
    const PriceQuote quote = determine_price(auction, priced, cluster_done);

    // Snapshot the state the price was quoted against, so the audit can
    // re-derive Eq. 20 after processing has consumed the tentative lists.
    [[maybe_unused]] std::vector<char> audit_done_before;
    [[maybe_unused]] std::vector<char> audit_tradeable_before;
    [[maybe_unused]] const std::size_t audit_first_match = result.matches.size();
    if constexpr (audit::kEnabled) {
      audit_done_before = cluster_done;
      audit_tradeable_before.resize(priced.size());
      for (std::size_t ci = 0; ci < priced.size(); ++ci) {
        audit_tradeable_before[ci] = priced[ci].tradeable() ? 1 : 0;
      }
    }

    if (!quote.valid) {
      if constexpr (audit::kEnabled) {
        audit::check_mini_auction(snapshot, priced, auction, quote, audit_done_before,
                                  audit_tradeable_before, result, audit_first_match);
      }
      for (const std::size_t ci : auction.clusters) cluster_done[ci] = 1;
      continue;
    }
    const double p = quote.price;
    result.clearing_prices.push_back(p);

    const auto request_excluded = [&](std::size_t request) {
      return quote.setter_is_request && snapshot.requests[request].client == quote.client;
    };
    const auto offer_excluded = [&](std::size_t offer) {
      return !quote.setter_is_request && snapshot.offers[offer].provider == quote.provider;
    };

    for (const std::size_t ci : auction.clusters) {
      if (cluster_done[ci]) continue;
      PricedCluster& pc = priced[ci];

      // Filter the tentative matches: drop the price-setter's bids, bids
      // the price cannot clear, and participants consumed by an earlier
      // mini-auction.
      std::vector<TentativeMatch> survivors;
      for (auto& m : pc.tentative) {
        const bool drop = request_excluded(m.request) || offer_excluded(m.offer) ||
                          request_processed[m.request] || offer_processed[m.offer] ||
                          request_matched[m.request] ||
                          pc.econ.vhat_of(m.request) < p || pc.econ.chat_of(m.offer) > p;
        if (drop) {
          capacity.release(m.offer, m.consumed);
          ++result.reduced_trades;  // a trade lost to the reduction/filter
        } else {
          survivors.push_back(std::move(m));
        }
      }

      // Eligibility under the clearing price (for the randomization rule).
      const auto eligible_request = [&](const RequestEconomics& re) {
        return re.vhat >= p && !request_excluded(re.request) &&
               !request_processed[re.request] && !request_matched[re.request];
      };
      const auto eligible_offer = [&](const OfferEconomics& oe) {
        return oe.chat <= p && !offer_excluded(oe.offer) && !offer_processed[oe.offer];
      };

      // Detect a supply/demand imbalance (Section IV-D: both directions
      // are gameable, so the cluster's allocation must be re-drawn
      // pseudo-randomly from the block evidence):
      //   * demand surplus — an eligible-but-unallocated request that some
      //     eligible offer could still host ("we also apply random
      //     exclusion of requests in case of a supply shortage");
      //   * supply surplus — an eligible offer left empty while another
      //     eligible offer carries a request it could equally host ("the
      //     solution is to ... exclude redundant offers randomly").
      std::vector<char> in_survivors(snapshot.requests.size(), 0);
      for (const auto& m : survivors) in_survivors[m.request] = 1;
      // Both triggers use FULL-capacity feasibility, not remaining
      // capacity: the lottery releases the survivors before re-drawing, so
      // a contender blocked only by currently-consumed capacity is still a
      // contender — checking remaining capacity here would leave a
      // rank-by-bid allocation standing exactly when machines are full,
      // which is the gameable case.
      bool imbalance = false;
      for (const auto& re : pc.econ.requests) {
        if (!eligible_request(re) || in_survivors[re.request]) continue;
        const Request& r = snapshot.requests[re.request];
        for (const auto& oe : pc.econ.offers) {
          if (!eligible_offer(oe)) continue;
          const Offer& o = snapshot.offers[oe.offer];
          if (feasible(o, r, config_) && match_welfare(r, o) >= 0.0) {
            imbalance = true;
            break;
          }
        }
        if (imbalance) break;
      }
      if (!imbalance) {
        // Supply surplus: an eligible offer that could serve a request
        // currently assigned to a *different* offer means providers
        // compete for demand — a provider could capture that assignment by
        // shading its reported cost, so the assignment must be drawn by
        // lottery instead (Section IV-D).
        for (const auto& oe : pc.econ.offers) {
          if (!eligible_offer(oe)) continue;
          const Offer& o = snapshot.offers[oe.offer];
          for (const auto& m : survivors) {
            if (m.offer == oe.offer) continue;
            const Request& r = snapshot.requests[m.request];
            if (feasible(o, r, config_) && match_welfare(r, o) >= 0.0) {
              imbalance = true;
              break;
            }
          }
          if (imbalance) break;
        }
      }

      if (imbalance) {
        ++result.lottery_clusters;
        // Release the survivors and re-draw the whole cluster allocation:
        // requests in random order, offers in a random ranking, first-fit.
        // The randomness comes from the block evidence (verifiable), the
        // assignment never consults bids (truthfulness-preserving), and
        // first-fit keeps the packing — hence welfare — close to greedy.
        for (const auto& m : survivors) capacity.release(m.offer, m.consumed);
        survivors.clear();

        std::vector<std::size_t> candidates;
        for (const auto& re : pc.econ.requests) {
          if (eligible_request(re)) candidates.push_back(re.request);
        }
        rng.shuffle(candidates);
        std::vector<std::size_t> hosts;
        for (const auto& oe : pc.econ.offers) {
          if (eligible_offer(oe)) hosts.push_back(oe.offer);
        }
        rng.shuffle(hosts);
        for (const std::size_t req : candidates) {
          const Request& r = snapshot.requests[req];
          for (const std::size_t host : hosts) {
            const Offer& o = snapshot.offers[host];
            if (!feasible(o, r, config_) || !capacity.can_host(host, r, config_.flexibility) ||
                match_welfare(r, o) < 0.0) {
              continue;
            }
            TentativeMatch m;
            m.request = req;
            m.offer = host;
            m.consumed = capacity.consume(host, r);
            survivors.push_back(std::move(m));
            break;
          }
        }
      }

      // Finalize this cluster at price p (Eq. 19 payments).
      for (const auto& m : survivors) {
        const double nu = pc.econ.nu_of_request(m.request);
        DECLOUD_ENSURES_MSG(!std::isnan(nu), "matched request must have cluster economics");
        finalize_match(result, snapshot, m.request, m.offer, nu, p, m.consumed);
        request_matched[m.request] = 1;
      }
      pc.tentative.clear();
      cluster_done[ci] = 1;
    }

    // "remove r, o ∈ auction from ∀a ∈ auctions" — everyone who took part
    // in this mini-auction had their chance.
    for (const std::size_t ci : auction.clusters) {
      for (const auto& re : priced[ci].econ.requests) request_processed[re.request] = 1;
      for (const auto& oe : priced[ci].econ.offers) offer_processed[oe.offer] = 1;
    }

    if constexpr (audit::kEnabled) {
      audit::check_mini_auction(snapshot, priced, auction, quote, audit_done_before,
                                audit_tradeable_before, result, audit_first_match);
    }
  }

  // reduced_trades was accumulated at the filter stage: it counts trades
  // lost to the price-setter exclusion and the price filter (the paper's
  // Fig. 5c metric).  Welfare lost to the verifiable lottery shows up in
  // the welfare figures instead.
  if constexpr (audit::kEnabled) audit::check_round(snapshot, result);
  record_round(sink, snapshot, result);
  return result;
}

}  // namespace decloud::auction

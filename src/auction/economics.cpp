#include "auction/economics.hpp"

#include <algorithm>
#include <cmath>

#include "common/ensure.hpp"

namespace decloud::auction {

namespace {

/// Euclidean norm of a resource vector restricted to the given sorted types.
double restricted_norm(const ResourceVector& v, const std::vector<ResourceId>& types) {
  double sum = 0.0;
  for (const ResourceId k : types) {
    const double a = v.get(k);
    sum += a * a;
  }
  return std::sqrt(sum);
}

}  // namespace

double ClusterEconomics::nu_of_request(std::size_t request) const {
  const auto it = request_pos_.find(request);
  return it == request_pos_.end() ? std::numeric_limits<double>::quiet_NaN()
                                  : requests[it->second].nu;
}

double ClusterEconomics::vhat_of(std::size_t request) const {
  const auto it = request_pos_.find(request);
  return it == request_pos_.end() ? 0.0 : requests[it->second].vhat;
}

double ClusterEconomics::chat_of(std::size_t offer) const {
  const auto it = offer_pos_.find(offer);
  return it == offer_pos_.end() ? kInfiniteCost : offers[it->second].chat;
}

void ClusterEconomics::rebuild_index() {
  request_pos_.clear();
  offer_pos_.clear();
  request_pos_.reserve(requests.size());
  offer_pos_.reserve(offers.size());
  for (std::size_t i = 0; i < requests.size(); ++i) request_pos_[requests[i].request] = i;
  for (std::size_t i = 0; i < offers.size(); ++i) offer_pos_[offers[i].offer] = i;
}

ClusterEconomics compute_economics(const Cluster& cluster, const MarketSnapshot& snapshot) {
  ClusterEconomics econ;

  // K_CL = (∪_r K_r) ∩ (∪_o K_o)
  std::vector<ResourceId> req_types;
  for (const std::size_t r : cluster.requests) {
    const auto t = snapshot.requests[r].resources.types();
    req_types = union_types(req_types, t);
  }
  std::vector<ResourceId> off_types;
  for (const std::size_t o : cluster.offers) {
    const auto t = snapshot.offers[o].resources.types();
    off_types = union_types(off_types, t);
  }
  econ.common_types = intersect_types(req_types, off_types);
  if (econ.common_types.empty()) return econ;  // degenerate cluster

  // Virtual maximum M_CL: per-type max over the cluster's offers.
  ResourceVector virtual_max;
  for (const ResourceId k : econ.common_types) {
    double m = 0.0;
    for (const std::size_t o : cluster.offers) m = std::max(m, snapshot.offers[o].resources.get(k));
    virtual_max.set(k, m);
  }
  econ.virtual_max_norm = virtual_max.norm2();
  if (econ.virtual_max_norm <= 0.0) return econ;

  // Offers: ν_o and ĉ_o.
  for (const std::size_t o : cluster.offers) {
    const Offer& offer = snapshot.offers[o];
    const double nu = restricted_norm(offer.resources, econ.common_types) / econ.virtual_max_norm;
    if (nu <= 0.0) continue;  // cannot express this offer in the cluster unit
    const auto span = static_cast<double>(offer.window_length());
    DECLOUD_ENSURES_MSG(span > 0.0, "offer window length must be positive");
    econ.offers.push_back({.offer = o, .nu = nu, .chat = offer.bid / (nu * span)});
  }

  // Critical resources: built-ins plus types demanded by *every* request.
  std::vector<ResourceId> critical = {ResourceSchema::kCpu, ResourceSchema::kMemory,
                                      ResourceSchema::kDisk};
  std::vector<ResourceId> in_all;
  bool first = true;
  for (const std::size_t r : cluster.requests) {
    const auto t = snapshot.requests[r].resources.types();
    in_all = first ? t : intersect_types(in_all, t);
    first = false;
  }
  critical = union_types(critical, in_all);

  // Requests: ν_r and v̂_r.
  for (const std::size_t r : cluster.requests) {
    const Request& request = snapshot.requests[r];
    double nu_cr = 0.0;
    for (const ResourceId k : critical) {
      const double cap = virtual_max.get(k);
      if (cap > 0.0) nu_cr = std::max(nu_cr, request.resources.get(k) / cap);
    }
    const double nu_geom =
        restricted_norm(request.resources, econ.common_types) / econ.virtual_max_norm;
    // ν_r ∈ (0, 1]: clamp above at 1 (a request can nominally exceed the
    // virtual maximum under flexible matching) and guard below so v̂ stays
    // finite for degenerate all-zero requests.
    const double nu = std::clamp(std::max(nu_cr, nu_geom), 1e-9, 1.0);
    const auto d = static_cast<double>(request.duration);
    DECLOUD_ENSURES_MSG(d > 0.0, "request duration must be positive");
    econ.requests.push_back({.request = r, .nu = nu, .vhat = request.bid / (nu * d)});
  }

  // McAfee ordering.  Ties resolve toward earlier submission, then lower
  // id, making every downstream step deterministic (Section IV-D: earlier
  // submission must never hurt).
  std::sort(econ.requests.begin(), econ.requests.end(),
            [&](const RequestEconomics& a, const RequestEconomics& b) {
              if (a.vhat != b.vhat) return a.vhat > b.vhat;
              const Request& ra = snapshot.requests[a.request];
              const Request& rb = snapshot.requests[b.request];
              if (ra.submitted != rb.submitted) return ra.submitted < rb.submitted;
              return ra.id < rb.id;
            });
  std::sort(econ.offers.begin(), econ.offers.end(),
            [&](const OfferEconomics& a, const OfferEconomics& b) {
              if (a.chat != b.chat) return a.chat < b.chat;
              const Offer& oa = snapshot.offers[a.offer];
              const Offer& ob = snapshot.offers[b.offer];
              if (oa.submitted != ob.submitted) return oa.submitted < ob.submitted;
              return oa.id < ob.id;
            });
  econ.rebuild_index();
  return econ;
}

}  // namespace decloud::auction

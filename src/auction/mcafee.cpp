#include "auction/mcafee.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/ensure.hpp"

namespace decloud::auction {

namespace {

/// Both reference auctions price by arithmetic on the sorted bid arrays;
/// a NaN/∞ bid would silently poison every downstream comparison.
void validate_bids(const std::vector<UnitBid>& buyers, const std::vector<UnitBid>& sellers) {
  for (const UnitBid& b : buyers) {
    DECLOUD_EXPECTS_MSG(std::isfinite(b.value), "buyer bids must be finite");
  }
  for (const UnitBid& s : sellers) {
    DECLOUD_EXPECTS_MSG(std::isfinite(s.value), "seller bids must be finite");
  }
}

void sort_sides(std::vector<UnitBid>& buyers, std::vector<UnitBid>& sellers) {
  std::sort(buyers.begin(), buyers.end(), [](const UnitBid& a, const UnitBid& b) {
    if (a.value != b.value) return a.value > b.value;
    return a.participant < b.participant;
  });
  std::sort(sellers.begin(), sellers.end(), [](const UnitBid& a, const UnitBid& b) {
    if (a.value != b.value) return a.value < b.value;
    return a.participant < b.participant;
  });
}

/// Largest k with v_k ≥ c_k (1-based count); 0 when none.
std::size_t efficient_pairs(const std::vector<UnitBid>& buyers,
                            const std::vector<UnitBid>& sellers) {
  const std::size_t n = std::min(buyers.size(), sellers.size());
  std::size_t k = 0;
  while (k < n && buyers[k].value >= sellers[k].value) ++k;
  return k;
}

}  // namespace

UnitAuctionResult mcafee_auction(std::vector<UnitBid> buyers, std::vector<UnitBid> sellers) {
  validate_bids(buyers, sellers);
  UnitAuctionResult result;
  sort_sides(buyers, sellers);
  const std::size_t z = efficient_pairs(buyers, sellers);
  if (z == 0) return result;
  result.break_even = z - 1;

  // Candidate single price from the first excluded pair.
  const bool have_next = z < buyers.size() && z < sellers.size();
  if (have_next) {
    const Money p = (buyers[z].value + sellers[z].value) / 2.0;
    if (p >= sellers[z - 1].value && p <= buyers[z - 1].value) {
      // All z pairs trade at p — strongly budget balanced case (Fig. 3a).
      for (std::size_t i = 0; i < z; ++i) {
        result.trades.emplace_back(buyers[i].participant, sellers[i].participant);
      }
      result.buyer_price = result.seller_price = p;
      return result;
    }
  }

  // Trade reduction (Fig. 3b): pair z − 1 is excluded; buyers pay v_z,
  // sellers receive c_z (of the excluded pair), auctioneer keeps the gap.
  for (std::size_t i = 0; i + 1 < z; ++i) {
    result.trades.emplace_back(buyers[i].participant, sellers[i].participant);
  }
  result.reduced_trades = 1;
  result.buyer_price = buyers[z - 1].value;
  result.seller_price = sellers[z - 1].value;
  return result;
}

UnitAuctionResult sbba_auction(std::vector<UnitBid> buyers, std::vector<UnitBid> sellers) {
  validate_bids(buyers, sellers);
  UnitAuctionResult result;
  sort_sides(buyers, sellers);
  const std::size_t z = efficient_pairs(buyers, sellers);
  if (z == 0) return result;
  result.break_even = z - 1;

  const Money v_z = buyers[z - 1].value;
  const Money c_next =
      z < sellers.size() ? sellers[z].value : std::numeric_limits<Money>::infinity();
  const Money p = std::min(v_z, c_next);
  result.buyer_price = result.seller_price = p;

  if (p == c_next && c_next <= v_z) {
    // Price set by the unallocated seller z+1: all z pairs trade, nothing
    // is lost (Fig. 4b of the paper).
    for (std::size_t i = 0; i < z; ++i) {
      result.trades.emplace_back(buyers[i].participant, sellers[i].participant);
    }
    return result;
  }

  // Price set by buyer z: exclude that buyer; the first z − 1 buyers trade
  // with the cheapest z − 1 sellers (Fig. 4a).
  for (std::size_t i = 0; i + 1 < z; ++i) {
    result.trades.emplace_back(buyers[i].participant, sellers[i].participant);
  }
  result.reduced_trades = 1;
  return result;
}

}  // namespace decloud::auction

// Tunable parameters of the DeCloud mechanism.
#pragma once

#include <cstddef>

namespace decloud::auction {

/// Which scoring/ranking implementation DeCloudAuction::run uses for the
/// per-request best-offer stage.  Every path returns bit-identical best
/// sets (tests/auction/pruned_scoring_test), so the choice is pure
/// performance — but it is part of AuctionConfig (hence of consensus)
/// anyway, so a round's exact instruction trace is reproducible.
enum class ScoringPath {
  /// Pick per snapshot size: pruned when the offer book is large enough
  /// for the index to pay for itself, dense otherwise.  The cutover
  /// depends only on the snapshot (kMinPrunedOffers), never on the host.
  kAuto,
  /// Dense reference oracle: tiled ScoreMatrix row kernel over every
  /// (request, offer) pair + bounded top-k selection.
  kDense,
  /// CandidateIndex-pruned path: upper-bound-ordered shortlist scan with
  /// exact early termination (DESIGN.md §3g).
  kPruned,
};

/// How unmatched residue interacts with the matching structures across
/// rounds.  The residue itself (bids carried into the next round) is
/// governed by the orchestration layer's retry budget
/// (ledger::MarketConfig::max_resubmissions bounds a bid's carry age);
/// this policy tunes how the CandidateIndex follows the slowly-evolving
/// offer book those carries produce (candidate_index.hpp,
/// CandidateIndexCache).  Every knob is data-deterministic: the
/// rebuild-or-carry decision depends only on the snapshot sequence, never
/// on the host, so it is safe inside consensus configuration.
struct ResiduePolicy {
  /// Flat delta allowance: a cached index is rebuilt only when the number
  /// of offers that changed since it was built (expired + newly arrived)
  /// exceeds index_min_rebuild + offers / index_rebuild_divisor.  The flat
  /// term keeps tiny markets from rebuilding over a handful of changes.
  std::size_t index_min_rebuild = 256;
  /// Proportional term of the rebuild threshold (see above); 0 disables
  /// the proportional allowance (the divisor is clamped to >= 1).
  std::size_t index_rebuild_divisor = 4;
};

/// Configuration for one allocation round.  Defaults reproduce the paper's
/// evaluation setup; the ablation benches sweep these.
struct AuctionConfig {
  /// Quality-of-match admission ratio θ for the best-offer set: an offer
  /// joins best_r when q_(r,o) ≥ θ · q_(r,best).  Smaller θ yields larger,
  /// more-merged clusters.
  double best_offer_ratio = 0.9;

  /// Hard cap on |best_r| — keeps cluster offer-sets (and the subset
  /// lattice of Algorithm 2) small.
  std::size_t max_best_offers = 4;

  /// Market flexibility f ∈ (0, 1]: a non-strict resource (σ < 1) is
  /// satisfiable by an offer carrying at least f·ρ_(r,k).  f = 1 is the
  /// paper's inflexible scenario (client always gets 100 % of the request);
  /// Fig. 5d uses f = 0.8.
  double flexibility = 1.0;

  /// When true (DeCloud), trade reduction and verifiable randomization run,
  /// making the auction DSIC.  When false, the mechanism degrades into the
  /// paper's non-truthful greedy benchmark: every tentative match trades
  /// and no price-setter is excluded.
  bool truthful = true;

  /// Worker threads for the matching pipeline (ScoreMatrix scoring and
  /// per-request best-offer ranking fan out; everything downstream of
  /// cluster folding stays serial and ordered).  0 = one worker per
  /// hardware thread, 1 = fully serial path.  The RoundResult is
  /// byte-identical for every value — the ledger's collective verification
  /// replays allocations, so miners with different core counts must agree
  /// (see DESIGN.md, "Threading model & determinism").
  std::size_t threads = 0;

  /// Scoring implementation for the best-offer stage (see ScoringPath).
  /// All three settings produce byte-identical RoundResults; kAuto selects
  /// kPruned for snapshots with at least kMinPrunedOffers offers.
  ScoringPath scoring = ScoringPath::kAuto;

  /// Ablation switch for the paper's key welfare optimization: when true
  /// (default), price-compatible clusters share a clearing price inside
  /// mini-auctions (Algorithm 3), so one trade reduction covers many
  /// clusters.  When false, every cluster clears alone and pays its own
  /// reduction — quantifying how much the mini-auction grouping saves
  /// (bench/ablation_miniauction).
  bool group_mini_auctions = true;

  /// Cross-round index-reuse thresholds (see ResiduePolicy).  Only read on
  /// the pruned scoring path when a CandidateIndexCache is attached; it
  /// never changes results (cache hits are bit-identical to fresh builds),
  /// only when the index is reconstructed.
  ResiduePolicy residue;
};

}  // namespace decloud::auction

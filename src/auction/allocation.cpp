#include "auction/allocation.hpp"

#include <algorithm>
#include <cstdio>

#include "common/ensure.hpp"

namespace decloud::auction {

double resource_fraction(const Request& r, const Offer& o) {
  const auto span = static_cast<double>(o.window_length());
  if (span <= 0.0) return 0.0;
  const double time_share = std::min(1.0, static_cast<double>(r.duration) / span);

  double demand_share_sum = 0.0;
  std::size_t common = 0;
  const auto& re = r.resources.entries();
  const auto& oe = o.resources.entries();
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < re.size() && j < oe.size()) {
    if (re[i].type < oe[j].type) {
      ++i;
    } else if (oe[j].type < re[i].type) {
      ++j;
    } else {
      if (oe[j].amount > 0.0) {
        demand_share_sum += std::min(re[i].amount, oe[j].amount) / oe[j].amount;
        ++common;
      }
      ++i;
      ++j;
    }
  }
  if (common == 0) return 0.0;
  return std::clamp(time_share * demand_share_sum / static_cast<double>(common), 0.0, 1.0);
}

Money match_welfare(const Request& r, const Offer& o) {
  return r.bid - resource_fraction(r, o) * o.bid;
}

double RoundResult::satisfaction(std::size_t total_requests) const {
  if (total_requests == 0) return 0.0;
  return static_cast<double>(matches.size()) / static_cast<double>(total_requests);
}

double RoundResult::reduced_trade_ratio() const {
  if (tentative_trades == 0) return 0.0;
  return static_cast<double>(reduced_trades) / static_cast<double>(tentative_trades);
}

namespace {

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_size(std::string& out, std::size_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%zu", v);
  out += buf;
}

void append_doubles(std::string& out, const std::vector<double>& vs) {
  out += '[';
  for (std::size_t i = 0; i < vs.size(); ++i) {
    if (i > 0) out += ',';
    append_double(out, vs[i]);
  }
  out += ']';
}

}  // namespace

std::string round_result_json(const RoundResult& result) {
  std::string out;
  out.reserve(256 + result.matches.size() * 128);
  out += "{\"matches\":[";
  for (std::size_t i = 0; i < result.matches.size(); ++i) {
    const Match& m = result.matches[i];
    if (i > 0) out += ',';
    out += "{\"request\":";
    append_size(out, m.request);
    out += ",\"offer\":";
    append_size(out, m.offer);
    out += ",\"fraction\":";
    append_double(out, m.fraction);
    out += ",\"payment\":";
    append_double(out, m.payment);
    out += ",\"unit_price\":";
    append_double(out, m.unit_price);
    out += ",\"granted\":[";
    bool first = true;
    for (const auto& e : m.granted.entries()) {
      if (!first) out += ',';
      first = false;
      out += '[';
      append_size(out, static_cast<std::size_t>(e.type));
      out += ',';
      append_double(out, e.amount);
      out += ']';
    }
    out += "]}";
  }
  out += "],\"tentative_trades\":";
  append_size(out, result.tentative_trades);
  out += ",\"reduced_trades\":";
  append_size(out, result.reduced_trades);
  out += ",\"lottery_clusters\":";
  append_size(out, result.lottery_clusters);
  out += ",\"welfare\":";
  append_double(out, result.welfare);
  out += ",\"total_payments\":";
  append_double(out, result.total_payments);
  out += ",\"total_revenue\":";
  append_double(out, result.total_revenue);
  out += ",\"payment_by_request\":";
  append_doubles(out, result.payment_by_request);
  out += ",\"revenue_by_offer\":";
  append_doubles(out, result.revenue_by_offer);
  out += ",\"clearing_prices\":";
  append_doubles(out, result.clearing_prices);
  out += "}";
  return out;
}

CapacityTracker::CapacityTracker(const std::vector<Offer>& offers) {
  remaining_.reserve(offers.size());
  for (const auto& o : offers) remaining_.push_back(o.resources);
}

bool CapacityTracker::can_host(std::size_t offer, const Request& r, double flexibility) const {
  DECLOUD_EXPECTS(offer < remaining_.size());
  for (const auto& need : r.resources.entries()) {
    const double have = remaining_[offer].get(need.type);
    const double required = r.is_strict(need.type) ? need.amount : flexibility * need.amount;
    if (have < required) return false;
  }
  return true;
}

ResourceVector CapacityTracker::consume(std::size_t offer, const Request& r) {
  DECLOUD_EXPECTS(offer < remaining_.size());
  ResourceVector consumed;
  for (const auto& need : r.resources.entries()) {
    const double have = remaining_[offer].get(need.type);
    const double take = std::min(need.amount, have);
    if (take > 0.0) {
      consumed.set(need.type, take);
      remaining_[offer].set(need.type, have - take);
    }
  }
  return consumed;
}

void CapacityTracker::release(std::size_t offer, const ResourceVector& consumed) {
  DECLOUD_EXPECTS(offer < remaining_.size());
  for (const auto& e : consumed.entries()) {
    remaining_[offer].set(e.type, remaining_[offer].get(e.type) + e.amount);
  }
}

}  // namespace decloud::auction

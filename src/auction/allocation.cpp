#include "auction/allocation.hpp"

#include <algorithm>

#include "common/ensure.hpp"

namespace decloud::auction {

double resource_fraction(const Request& r, const Offer& o) {
  const auto span = static_cast<double>(o.window_length());
  if (span <= 0.0) return 0.0;
  const double time_share = std::min(1.0, static_cast<double>(r.duration) / span);

  double demand_share_sum = 0.0;
  std::size_t common = 0;
  const auto& re = r.resources.entries();
  const auto& oe = o.resources.entries();
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < re.size() && j < oe.size()) {
    if (re[i].type < oe[j].type) {
      ++i;
    } else if (oe[j].type < re[i].type) {
      ++j;
    } else {
      if (oe[j].amount > 0.0) {
        demand_share_sum += std::min(re[i].amount, oe[j].amount) / oe[j].amount;
        ++common;
      }
      ++i;
      ++j;
    }
  }
  if (common == 0) return 0.0;
  return std::clamp(time_share * demand_share_sum / static_cast<double>(common), 0.0, 1.0);
}

Money match_welfare(const Request& r, const Offer& o) {
  return r.bid - resource_fraction(r, o) * o.bid;
}

double RoundResult::satisfaction(std::size_t total_requests) const {
  if (total_requests == 0) return 0.0;
  return static_cast<double>(matches.size()) / static_cast<double>(total_requests);
}

double RoundResult::reduced_trade_ratio() const {
  if (tentative_trades == 0) return 0.0;
  return static_cast<double>(reduced_trades) / static_cast<double>(tentative_trades);
}

CapacityTracker::CapacityTracker(const std::vector<Offer>& offers) {
  remaining_.reserve(offers.size());
  for (const auto& o : offers) remaining_.push_back(o.resources);
}

bool CapacityTracker::can_host(std::size_t offer, const Request& r, double flexibility) const {
  DECLOUD_EXPECTS(offer < remaining_.size());
  for (const auto& need : r.resources.entries()) {
    const double have = remaining_[offer].get(need.type);
    const double required = r.is_strict(need.type) ? need.amount : flexibility * need.amount;
    if (have < required) return false;
  }
  return true;
}

ResourceVector CapacityTracker::consume(std::size_t offer, const Request& r) {
  DECLOUD_EXPECTS(offer < remaining_.size());
  ResourceVector consumed;
  for (const auto& need : r.resources.entries()) {
    const double have = remaining_[offer].get(need.type);
    const double take = std::min(need.amount, have);
    if (take > 0.0) {
      consumed.set(need.type, take);
      remaining_[offer].set(need.type, have - take);
    }
  }
  return consumed;
}

void CapacityTracker::release(std::size_t offer, const ResourceVector& consumed) {
  DECLOUD_EXPECTS(offer < remaining_.size());
  for (const auto& e : consumed.entries()) {
    remaining_[offer].set(e.type, remaining_[offer].get(e.type) + e.amount);
  }
}

}  // namespace decloud::auction

// Classic unit-good double auctions: McAfee (1992) and the strongly
// budget-balanced variant SBBA (Segal-Halevi et al., 2016).
//
// DeCloud's mechanism generalizes these to heterogeneous goods; we keep the
// originals as reference substrates — the unit tests replay Fig. 3 of the
// paper against them, and the ablation benches compare DeCloud's pricing
// against both on degenerate single-good markets.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace decloud::auction {

/// A unit-demand buyer or unit-supply seller in the classic setting.
struct UnitBid {
  std::size_t participant = 0;  ///< caller-side id (index into their lists)
  Money value = 0.0;            ///< buyer valuation v or seller cost c
};

/// Result of a classic double auction.
struct UnitAuctionResult {
  /// Trading pairs: (buyer participant, seller participant).
  std::vector<std::pair<std::size_t, std::size_t>> trades;
  /// Price every trading buyer pays.
  Money buyer_price = 0.0;
  /// Price every trading seller receives.  Equal to buyer_price in the
  /// strongly budget-balanced variants; may differ in McAfee's
  /// trade-reduction case (the auctioneer keeps the spread).
  Money seller_price = 0.0;
  /// Number of efficient trades sacrificed to preserve truthfulness.
  std::size_t reduced_trades = 0;
  /// Break-even index z (0-based count of efficient pairs); SIZE_MAX when
  /// no trade is possible.
  std::size_t break_even = SIZE_MAX;

  [[nodiscard]] Money budget_surplus() const {
    return (buyer_price - seller_price) * static_cast<Money>(trades.size());
  }
};

/// McAfee's dominant-strategy double auction (JET 1992).  Buyers are sorted
/// by descending valuation, sellers by ascending cost; z is the last pair
/// with v_z ≥ c_z.  If p = (v_{z+1} + c_{z+1})/2 ∈ [c_z, v_z], all z pairs
/// trade at p (strongly budget balanced); otherwise pair z is excluded,
/// buyers pay v_z and sellers receive c_z (the auctioneer keeps the
/// difference).
[[nodiscard]] UnitAuctionResult mcafee_auction(std::vector<UnitBid> buyers,
                                               std::vector<UnitBid> sellers);

/// SBBA (Segal-Halevi, Hassidim, Aumann 2016): the strongly budget balanced
/// variant used by DeCloud — p = min(v_z, c_{z+1}) with c_{z+1} = ∞ when no
/// extra seller exists; the price-setting participant is excluded, and if a
/// buyer set the price the longest side is trimmed by lottery (we expose
/// the deterministic first-k rule here; DeCloud proper randomizes from the
/// block evidence).
[[nodiscard]] UnitAuctionResult sbba_auction(std::vector<UnitBid> buyers,
                                             std::vector<UnitBid> sellers);

}  // namespace decloud::auction

#include "auction/pricing.hpp"

#include <algorithm>

#include "auction/feasibility.hpp"
#include "common/ensure.hpp"

namespace decloud::auction {

bool price_compatible(const PricedCluster& a, const PricedCluster& b) {
  return a.range_hi() > b.range_lo() && b.range_hi() > a.range_lo();
}

namespace {

/// A tentative match annotated with the economics needed for the
/// break-even bookkeeping.
struct RankedMatch {
  TentativeMatch match;
  double vhat = 0.0;
  std::size_t offer_rank = 0;  // rank of the offer in ascending-ĉ order
};

}  // namespace

PricedCluster price_cluster(std::size_t cluster_index, ClusterEconomics econ,
                            const MarketSnapshot& snapshot, CapacityTracker& capacity,
                            std::vector<char>& request_taken, const AuctionConfig& config) {
  PricedCluster pc;
  pc.cluster_index = cluster_index;
  pc.econ = std::move(econ);

  // --- Greedy pass: each request (descending v̂) takes the cheapest offer
  // that clears it and can host it.
  std::vector<RankedMatch> matches;
  for (const auto& re : pc.econ.requests) {
    if (request_taken[re.request]) continue;
    const Request& r = snapshot.requests[re.request];
    for (std::size_t rank = 0; rank < pc.econ.offers.size(); ++rank) {
      const auto& oe = pc.econ.offers[rank];
      if (oe.chat >= re.vhat) break;  // ascending ĉ: nothing further can clear
      const Offer& o = snapshot.offers[oe.offer];
      if (!feasible(o, r, config)) continue;
      if (!capacity.can_host(oe.offer, r, config.flexibility)) continue;
      if (match_welfare(r, o) < 0.0) continue;  // constraint (9)

      RankedMatch rm;
      rm.match.request = re.request;
      rm.match.offer = oe.offer;
      rm.match.consumed = capacity.consume(oe.offer, r);
      rm.vhat = re.vhat;
      rm.offer_rank = rank;
      matches.push_back(std::move(rm));
      request_taken[re.request] = 1;
      break;
    }
  }

  // --- Enforce the Fig.-4 assortative invariant v̂_z > ĉ_z'.  Feasibility
  // gaps can force a high-valuation request onto an expensive offer, which
  // would invert the cluster's price range; such matches cannot be priced
  // with a single clearing price, so we peel off the costliest ones until
  // every used offer is cheaper than every matched request's valuation.
  auto vhat_z_of = [&]() {
    double v = kInfiniteCost;
    for (const auto& m : matches) v = std::min(v, m.vhat);
    return v;
  };
  while (!matches.empty()) {
    const double vz = vhat_z_of();
    auto worst = std::max_element(matches.begin(), matches.end(),
                                  [](const RankedMatch& a, const RankedMatch& b) {
                                    return a.offer_rank < b.offer_rank;
                                  });
    const double worst_chat = pc.econ.offers[worst->offer_rank].chat;
    if (vz > worst_chat) break;
    capacity.release(worst->match.offer, worst->match.consumed);
    request_taken[worst->match.request] = 0;
    matches.erase(worst);
  }

  // --- Break-even bookkeeping.
  if (!matches.empty()) {
    std::size_t zprime_rank = 0;
    double vhat_z = kInfiniteCost;
    const RankedMatch* z_match = nullptr;
    for (const auto& m : matches) {
      zprime_rank = std::max(zprime_rank, m.offer_rank);
      if (m.vhat < vhat_z) {
        vhat_z = m.vhat;
        z_match = &m;
      }
    }
    pc.vhat_z = vhat_z;
    pc.z_client = snapshot.requests[z_match->match.request].client;
    pc.chat_zprime = pc.econ.offers[zprime_rank].chat;
    if (zprime_rank + 1 < pc.econ.offers.size()) {
      const auto& next = pc.econ.offers[zprime_rank + 1];
      pc.chat_znext = next.chat;
      pc.znext_provider = snapshot.offers[next.offer].provider;
    }
    for (auto& m : matches) {
      pc.welfare +=
          match_welfare(snapshot.requests[m.match.request], snapshot.offers[m.match.offer]);
      pc.tentative.push_back(std::move(m.match));
    }
    DECLOUD_ENSURES_MSG(pc.range_hi() > pc.range_lo(),
                        "cluster price range must be well-formed after peeling");
  }
  return pc;
}

}  // namespace decloud::auction

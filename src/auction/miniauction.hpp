// Mini-auction formation — Algorithm 3 of the paper.
//
// Trade reduction loses one participant per auction, so running one big
// auction per cluster wastes welfare.  Price-compatible clusters are
// grouped into *mini-auctions* that share a single clearing price: root
// clusters with minimal non-overlapping price ranges are picked by
// weighted-interval-scheduling dynamic programming, remaining clusters
// attach to compatible tree nodes, and every leaf→root path becomes a
// mini-auction.
#pragma once

#include <cstddef>
#include <vector>

#include "auction/pricing.hpp"
#include "common/types.hpp"

namespace decloud::auction {

/// A group of price-compatible clusters trading at one price.  Indices
/// refer to the round's PricedCluster vector; ordered leaf → root.
struct MiniAuction {
  std::vector<std::size_t> clusters;
  Money welfare = 0.0;
};

/// Selects the root clusters: the maximum-total-welfare subset of tradeable
/// clusters with pairwise NON-overlapping price ranges (the weighted
/// interval scheduling problem the paper solves "by dynamic programming in
/// polynomial time").  Returns indices into `priced`, sorted by range.
[[nodiscard]] std::vector<std::size_t> select_roots(const std::vector<PricedCluster>& priced);

/// Builds the forest and yields one mini-auction per leaf path.  Clusters
/// that never produced a tentative trade are ignored.  Every tradeable
/// cluster lands in at least one mini-auction.
[[nodiscard]] std::vector<MiniAuction> create_mini_auctions(
    const std::vector<PricedCluster>& priced);

}  // namespace decloud::auction

// Bounded top-k selection for the best-offer stage.
//
// best_offers historically collected every feasible (offer, q) pair and
// fully sorted it — O(F log F) per request with an F-sized allocation —
// only to keep at most config.max_best_offers entries.  BestOfferSelector
// keeps exactly that prefix in a fixed-capacity insertion-sorted buffer:
// O(F · k) with k ≤ max_best_offers (default 4), no allocation after the
// first use, and the *identical* strict total order
//
//     q descending  →  submitted ascending  →  offer id ascending
//
// so the selected set and its internal ranking are bit-for-bit the ones
// the full sort produced (offer ids are unique, so the order is total and
// the outcome is independent of insertion order).  The pruned path
// (candidate_index.hpp) additionally reads kth_q()/full() to drive its
// exact early-termination test.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "auction/bid.hpp"

namespace decloud::auction {

class BestOfferSelector {
 public:
  /// `offers` is the snapshot's offer list (for the tie-break fields);
  /// `capacity` is config.max_best_offers.
  BestOfferSelector(const std::vector<Offer>& offers, std::size_t capacity)
      : offers_(&offers), capacity_(capacity) {
    held_.reserve(capacity);
  }

  /// Re-arms the selector for another request without releasing storage.
  void reset() { held_.clear(); }

  [[nodiscard]] bool full() const { return held_.size() == capacity_; }
  [[nodiscard]] bool empty() const { return held_.empty(); }

  /// q of the current k-th (worst held) candidate; only meaningful when
  /// full() — the pruned scan's termination bound.
  [[nodiscard]] double kth_q() const { return held_.back().q; }

  /// q of the current best candidate (the admission threshold base).
  [[nodiscard]] double top_q() const { return held_.front().q; }

  /// Considers offer index `o` with score `q` (> 0).  Keeps the buffer
  /// sorted by ranks_before; drops the displaced worst entry when full.
  void consider(std::size_t o, double q) {
    if (capacity_ == 0) return;
    const Entry e{o, q};
    if (full() && !ranks_before(e, held_.back())) return;
    // Insertion point: first held entry that e outranks.  Track it as an
    // index, not an iterator — pop_back invalidates end-adjacent
    // iterators, and the insertion slot can be exactly the popped one.
    std::size_t pos = 0;
    while (pos < held_.size() && !ranks_before(e, held_[pos])) ++pos;
    if (full()) held_.pop_back();
    held_.insert(held_.begin() + pos, e);
  }

  /// Applies the admission threshold (q ≥ ratio · top_q, a prefix of the
  /// held ranking) and returns the chosen offer indices in ascending
  /// order — exactly what the full-sort implementation emitted.
  [[nodiscard]] std::vector<std::size_t> finish(double best_offer_ratio) const {
    std::vector<std::size_t> best;
    if (held_.empty()) return best;
    const double threshold = best_offer_ratio * top_q();
    best.reserve(held_.size());
    for (const Entry& e : held_) {
      if (e.q < threshold) break;  // held_ is sorted: the rest are below too
      best.push_back(e.offer);
    }
    std::sort(best.begin(), best.end());
    return best;
  }

 private:
  struct Entry {
    std::size_t offer;
    double q;
  };

  /// The full-sort comparator, verbatim: higher q first, then earlier
  /// submission, then lower offer id.
  [[nodiscard]] bool ranks_before(const Entry& a, const Entry& b) const {
    if (a.q != b.q) return a.q > b.q;
    const Offer& oa = (*offers_)[a.offer];
    const Offer& ob = (*offers_)[b.offer];
    if (oa.submitted != ob.submitted) return oa.submitted < ob.submitted;
    return oa.id < ob.id;
  }

  const std::vector<Offer>* offers_;
  std::size_t capacity_;
  std::vector<Entry> held_;
};

}  // namespace decloud::auction

// Candidate-pruning index over the bidding-language feature space — the
// million-bid matching core (DESIGN.md §3g).
//
// The dense best-offer stage scores every (request, offer) pair: O(R·O)
// per round.  CandidateIndex cuts the per-request work to a shortlist by
// exploiting three structural facts of the bidding language:
//
//   1. TIME WINDOW — an offer is feasible only when its availability
//      window contains the request's service window (constraints 10/11),
//      so offers are partitioned into a grid of cells bucketed by
//      (window_start, window_end) quantiles; any cell whose minimum start
//      exceeds t_r⁻ or whose maximum end falls short of t_r⁺ is skipped
//      without touching its offers.
//   2. DOMINANT RESOURCE TYPES — q_(r,o) > 0 requires a type that BOTH
//      sides declare with positive normalized amount, so every offer (and
//      every cell, as the union) carries a 64-bit type mask; a cell or
//      candidate whose mask misses the request's mask is skipped exactly
//      (collisions only ever cause a harmless extra scan, never a skip).
//   3. QoM UPPER BOUND — every Eq. 18 term obeys
//          σ_(r,k) · ρ'_(o,k) / (|ρ'_(o,k) − ρ'_(r,k)|² + 1)  ≤  ρ'_(o,k)
//      (σ ≤ 1, denominator ≥ 1), so ub_o = Σ_k ρ'_(o,k) bounds q_(r,o)
//      for EVERY request.  Cells keep their offers sorted by descending
//      ub; the query visits active cells in descending request-aware
//      bound order and, inside a cell, scores fixed-size member blocks
//      with the same k-major vectorized kernel as ScoreMatrix::score_row
//      (each cell stores its own member-column transpose).  Once the
//      bounded top-k selection is full, a cell whose bound — or a block
//      whose leading static ub — is strictly below the current k-th q
//      ends the scan / the cell: nothing it holds can enter the best
//      set.  The static bound holds for the *computed* doubles too: ub
//      and q are ascending-k left folds of term-wise dominating
//      sequences, and IEEE-754 rounding is monotone.
//
//   4. TIE-GROUP DEDUP — offers identical in (window, min_reputation,
//      normalized resource row) are exact ties: equal q against EVERY
//      request (q is a function of the normalized rows only), identical
//      feasibility verdicts (feasible() reads only window, the reputation
//      threshold and amounts, and equal normalized rows imply equal
//      amounts under the shared BlockScale), so they rank among
//      themselves purely by (submitted, id) — the selector's own
//      tie-break.  Catalog-shaped markets (the EC2 workload has four
//      instance profiles and one availability window) collapse to a
//      handful of such groups, and only the first max_best_offers members
//      of a group can ever appear in a best set: any later member would
//      need its predecessors selected too, overflowing the cap.  The
//      index therefore keeps only the first kGroupCap members of each
//      group in the scan cells; the remainder go to an overflow list that
//      is consulted only under a config with max_best_offers > kGroupCap.
//
// Location rides on (2)/(3) for free: augment_with_proximity turns
// physical closeness into an ordinary resource, so an offer's grid cell
// is encoded in its proximity column — its mask bit and its ub share —
// and far-away offers simply carry low bounds.
//
// On top of the static per-offer bound the query computes one
// request-aware bound per cell from the cell's per-type maxima
// (max over op ≤ M of op/((op−rp)²+1), attained at op* = √(rp²+1); the
// closed form is evaluated per declared type and inflated by a 1e-9
// relative slack that dwarfs any floating-point rounding), which retires
// whole cells long before their static-ub cursors drain.
//
// EXACTNESS: the query returns byte-identical best-offer sets to the
// dense path for every request — all pruning rules only ever discard
// offers that are infeasible, score exactly +0.0, or provably cannot
// displace the current top-k (see pruned_scoring_test and the §3g proof
// sketch).  The scan order and every comparison depend only on snapshot
// data, so results are also independent of thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "auction/bid.hpp"
#include "auction/config.hpp"
#include "auction/score_matrix.hpp"

namespace decloud::auction {

class BestOfferSelector;

/// Snapshots with at least this many offers take the pruned path under
/// ScoringPath::kAuto; below it the index cannot beat the dense sweep.
inline constexpr std::size_t kMinPrunedOffers = 64;

/// Remap value marking a build-time slot whose offer has left the market
/// (TTL expiry, allocation, withdrawal) — see CandidateIndex::scan_into.
inline constexpr std::size_t kExpiredSlot = SIZE_MAX;

class CandidateIndex {
 public:
  /// Tie-group members beyond this rank are kept out of the scan cells
  /// (structural fact 4 above): exact for any config with
  /// max_best_offers ≤ kGroupCap; larger caps fall back to scanning the
  /// overflow list too.
  static constexpr std::size_t kGroupCap = 16;

  /// Builds the index for one snapshot.  `scale` and `scores` must have
  /// been built from the same snapshot.
  CandidateIndex(const MarketSnapshot& snapshot, const BlockScale& scale,
                 const ScoreMatrix& scores);

  /// Per-query mutable state, reusable across requests (and owned per
  /// worker thread in the fan-out) so the hot loop never allocates.
  struct Scratch {
    struct Active {
      std::size_t cell = 0;
      double bound = 0.0;  ///< request-aware cell bound (slack-inflated)
    };
    std::vector<Active> active;  // activated cells, (bound desc, cell asc)
    std::vector<double> acc;     // block accumulator panel
  };

  /// The pruned best-offer query: bit-identical to the dense
  /// best_offers(request, snapshot, scores, config) for every input.
  [[nodiscard]] std::vector<std::size_t> best_offers(std::size_t request,
                                                     const MarketSnapshot& snapshot,
                                                     const ScoreMatrix& scores,
                                                     const AuctionConfig& config,
                                                     Scratch& scratch) const;

  /// The scan core shared by best_offers and the cross-round cache: feeds
  /// every live candidate into `selector` WITHOUT applying the admission
  /// threshold (the caller finishes, so it can merge other candidate
  /// sources — the cache's loose list — first).
  ///
  /// `remap` translates build-time slots into indices of the CURRENT
  /// snapshot: empty = identity (the query snapshot IS the build
  /// snapshot); otherwise remap[slot] is the offer's current index or
  /// kExpiredSlot for offers that left the market.  Exactness under a
  /// non-trivial remap is the cache's carry contract
  /// (CandidateIndexCache::prepare): carried offers are bitwise unchanged
  /// under an unchanged BlockScale, so the cells' cached normalized
  /// columns still equal the current rows, stale cell aggregates remain
  /// conservative upper bounds over the live members (extra scans, never
  /// false skips — the dead members only ever RAISE ws/we/mask/dim_max/ub),
  /// and no member of a capped tie group has expired (so the overflow
  /// relegation argument in structural fact 4 still holds).
  void scan_into(BestOfferSelector& selector, std::size_t request,
                 const MarketSnapshot& snapshot, const ScoreMatrix& scores,
                 const AuctionConfig& config, Scratch& scratch,
                 std::span<const std::size_t> remap) const;

  /// Static QoM upper bound of one offer (tests/bench introspection).
  [[nodiscard]] double upper_bound(std::size_t offer) const { return ub_[offer]; }

  [[nodiscard]] std::size_t cell_count() const { return cells_.size(); }

  /// True when the offer's tie group spilled members past kGroupCap into
  /// the overflow list.  The cap's exactness argument needs every scanned
  /// group member alive (an expiry could promote an overflow member into
  /// reach of max_best_offers), so CandidateIndexCache rebuilds instead of
  /// carrying whenever a member of such a group expires.
  [[nodiscard]] bool in_capped_group(std::size_t offer) const {
    return capped_group_[offer] != 0;
  }

 private:
  struct Cell {
    std::vector<std::size_t> offers;  // sorted by (ub desc, index asc)
    Time ws_min = 0;                  // min window_start over members
    Time we_max = 0;                  // max window_end over members
    std::uint64_t mask = 0;           // union of member type masks
    std::vector<double> dim_max;      // per resource id: max ρ'_o in cell
    /// k-major member-column transpose (width × |offers|, member order
    /// matching `offers`): the cell-local analogue of ScoreMatrix's
    /// off_norm_t_, so blocks of members score through the same
    /// vectorizable kernel as score_row.
    std::vector<double> col;
  };

  std::size_t width_ = 0;
  std::vector<double> ub_;            // per offer: Σ_k ρ'_(o,k), ascending-k fold
  std::vector<std::uint64_t> mask_;   // per offer: bit (k mod 64) per ρ'_(o,k) > 0
  std::vector<char> capped_group_;    // per offer: 1 iff its tie group overflowed
  std::vector<Cell> cells_;
  /// Tie-group members of rank ≥ kGroupCap, ascending offer index —
  /// scanned only when config.max_best_offers exceeds kGroupCap.
  std::vector<std::size_t> overflow_;
};

/// Cross-round reuse of a CandidateIndex over an evolving offer book —
/// the incremental insert/expire layer the streaming market (src/stream)
/// and the batch resubmission loop share.
///
/// Successive rounds of an orchestrated market overlap heavily: unmatched
/// offers are carried forward verbatim, and only the round's arrivals and
/// departures differ.  Rebuilding the index from scratch every round is
/// therefore mostly wasted work.  The cache instead keeps the index built
/// over some BASE snapshot and, each round, aligns it with the current one
/// in prepare():
///
///   * delta expire — base offers absent from the current snapshot become
///     tombstones (remap slot → kExpiredSlot); the scan skips them at
///     consider time.  Stale cell aggregates are conservative (a dead
///     member can only widen a bound), so pruning stays exact.
///   * delta insert — current offers that are not carried base offers go
///     to a LOOSE list scanned exhaustively (mask prefilter only) before
///     the index scan.  The loose list is small by construction: when the
///     total delta exceeds AuctionConfig::residue's threshold the cache
///     rebuilds instead.
///
/// A carry is only attempted when it is provably exact: the BlockScale
/// maxima must be bitwise identical to the build-time ones and a carried
/// offer must be bitwise unchanged in every field the index derives state
/// from (submitted, window, min_reputation, raw resources — equal raw
/// resources under an equal scale reproduce the normalized row bit for
/// bit).  Any violation, an expiry inside a capped tie group, or an
/// oversized delta forces a full rebuild.  Every decision is a function of
/// the snapshot sequence alone, so miners replaying the same blocks make
/// the same decisions — and since cache hits are bit-identical to fresh
/// builds ANYWAY (tests/auction/incremental_index_test), a producer using
/// the cache always agrees with verifiers building fresh.
///
/// Thread contract: prepare() is exclusive; best_offers() is const and
/// safe to call concurrently after prepare() returns (the per-request
/// fan-out of DeCloudAuction::run does exactly that).
class CandidateIndexCache {
 public:
  /// What prepare() did, for observability and tests.
  struct PrepareStats {
    bool rebuilt = false;      ///< fresh build (first round or carry refused)
    std::size_t carried = 0;   ///< base offers still live this round
    std::size_t expired = 0;   ///< base slots tombstoned this round
    std::size_t inserted = 0;  ///< current offers scanned via the loose list
  };

  /// Aligns the cache with the current snapshot: carries the base index
  /// when the contract above allows it, rebuilds otherwise.  Must be
  /// called before best_offers() each round; `scale`/`scores` must come
  /// from `snapshot`.
  PrepareStats prepare(const MarketSnapshot& snapshot, const BlockScale& scale,
                       const ScoreMatrix& scores, const AuctionConfig& config);

  /// The pruned query against the prepared state: bit-identical to a
  /// fresh CandidateIndex over the current snapshot (loose offers are
  /// considered first, then the remapped index scan; the selector's
  /// outcome is independent of consideration order).
  [[nodiscard]] std::vector<std::size_t> best_offers(std::size_t request,
                                                     const MarketSnapshot& snapshot,
                                                     const ScoreMatrix& scores,
                                                     const AuctionConfig& config,
                                                     CandidateIndex::Scratch& scratch) const;

  [[nodiscard]] bool has_index() const { return index_.has_value(); }
  /// Lifetime counters (rebuild = fresh build including the first).
  [[nodiscard]] std::size_t rebuilds() const { return rebuilds_; }
  [[nodiscard]] std::size_t reuses() const { return reuses_; }

 private:
  [[nodiscard]] bool scale_matches(const BlockScale& scale) const;
  void rebuild(const MarketSnapshot& snapshot, const BlockScale& scale,
               const ScoreMatrix& scores);

  std::optional<CandidateIndex> index_;
  std::vector<Offer> base_offers_;  // build-time copies, slot-indexed
  std::vector<double> scale_max_;   // BlockScale maxima at build time
  // Offer id → base slot.  Membership/lookup only — NEVER iterated, so
  // hash order cannot leak into results.
  std::unordered_map<std::uint64_t, std::size_t> slot_of_;
  std::vector<std::size_t> base_to_cur_;   // slot → current index / kExpiredSlot
  std::vector<std::size_t> loose_;         // current indices outside the base
  std::vector<std::uint64_t> loose_mask_;  // their type masks (prefilter)
  std::size_t rebuilds_ = 0;
  std::size_t reuses_ = 0;
};

}  // namespace decloud::auction

#include "auction/score_matrix.hpp"

#include <algorithm>

#include "common/ensure.hpp"

namespace decloud::auction {

namespace {

void fill_row(std::vector<double>& matrix, std::size_t row, std::size_t width,
              const ResourceVector& v, const BlockScale& scale) {
  double* out = matrix.data() + row * width;
  for (const auto& e : v.entries()) {
    if (e.type < width) out[e.type] = scale.normalized(e.type, e.amount);
  }
}

/// Offers scored per tile of the k-major kernel.  4096 doubles = 32 KiB —
/// one column panel plus the accumulator panel stay L1/L2-resident across
/// the |K_r| column sweeps.
constexpr std::size_t kOfferPanel = 4096;

}  // namespace

ScoreMatrix::ScoreMatrix(const MarketSnapshot& snapshot, const BlockScale& scale)
    : width_(scale.dimension()),
      num_requests_(snapshot.requests.size()),
      num_offers_(snapshot.offers.size()) {
  const std::size_t nr = num_requests_;
  const std::size_t no = num_offers_;
  req_norm_.assign(nr * width_, 0.0);
  req_sig_.assign(nr * width_, 0.0);
  off_norm_.assign(no * width_, 0.0);
  off_norm_t_.assign(width_ * no, 0.0);
  req_types_offset_.reserve(nr + 1);
  req_types_offset_.push_back(0);
  for (std::size_t r = 0; r < nr; ++r) {
    const Request& request = snapshot.requests[r];
    fill_row(req_norm_, r, width_, request.resources, scale);
    double* sig = req_sig_.data() + r * width_;
    for (const auto& e : request.resources.entries()) {
      if (e.type < width_) {
        sig[e.type] = request.significance_of(e.type);
        req_types_.push_back(e.type);  // entries() is sorted ascending
      }
    }
    req_types_offset_.push_back(req_types_.size());
  }
  for (std::size_t o = 0; o < no; ++o) {
    fill_row(off_norm_, o, width_, snapshot.offers[o].resources, scale);
    const double* row = off_norm_.data() + o * width_;
    for (std::size_t k = 0; k < width_; ++k) off_norm_t_[k * no + o] = row[k];
  }
}

double ScoreMatrix::score(std::size_t request, std::size_t offer) const {
  const double* rp = req_norm_.data() + request * width_;
  const double* sig = req_sig_.data() + request * width_;
  const double* op = off_norm_.data() + offer * width_;
  double q = 0.0;
  for (std::size_t k = 0; k < width_; ++k) {
    const double d = op[k] - rp[k];
    q += sig[k] * op[k] / (d * d + 1.0);
  }
  return q;
}

double ScoreMatrix::score_sparse(std::size_t request, std::size_t offer) const {
  const double* rp = req_norm_.data() + request * width_;
  const double* sig = req_sig_.data() + request * width_;
  const double* op = off_norm_.data() + offer * width_;
  double q = 0.0;
  // Ascending declared ids only: every skipped column has σmask = 0, so it
  // would have added exactly +0.0 to the (non-negative) running sum — the
  // fold below is bit-identical to score()'s full sweep.
  for (const ResourceId k : request_types(request)) {
    const double d = op[k] - rp[k];
    q += sig[k] * op[k] / (d * d + 1.0);
  }
  return q;
}

void ScoreMatrix::score_row(std::size_t request, std::span<double> out) const {
  DECLOUD_EXPECTS(out.size() == num_offers_);
  const double* rp = req_norm_.data() + request * width_;
  const double* sig = req_sig_.data() + request * width_;
  const std::span<const ResourceId> types = request_types(request);
  const std::size_t no = num_offers_;
  for (std::size_t base = 0; base < no; base += kOfferPanel) {
    const std::size_t n = std::min(kOfferPanel, no - base);
    double* __restrict acc = out.data() + base;
    std::fill(acc, acc + n, 0.0);
    for (const ResourceId k : types) {
      const double sk = sig[k];
      const double rpk = rp[k];
      const double* __restrict col = off_norm_t_.data() + k * no + base;
      // Contiguous, branch-free, no cross-lane reduction: each acc[i] is an
      // independent ascending-k left fold, so vectorizing over i preserves
      // bit-identity with score()/quality_of_match.
      for (std::size_t i = 0; i < n; ++i) {
        const double d = col[i] - rpk;
        acc[i] += sk * col[i] / (d * d + 1.0);
      }
    }
  }
}

}  // namespace decloud::auction

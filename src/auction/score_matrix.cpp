#include "auction/score_matrix.hpp"

namespace decloud::auction {

namespace {

void fill_row(std::vector<double>& matrix, std::size_t row, std::size_t width,
              const ResourceVector& v, const BlockScale& scale) {
  double* out = matrix.data() + row * width;
  for (const auto& e : v.entries()) {
    if (e.type < width) out[e.type] = scale.normalized(e.type, e.amount);
  }
}

}  // namespace

ScoreMatrix::ScoreMatrix(const MarketSnapshot& snapshot, const BlockScale& scale)
    : width_(scale.dimension()) {
  const std::size_t nr = snapshot.requests.size();
  const std::size_t no = snapshot.offers.size();
  req_norm_.assign(nr * width_, 0.0);
  req_sig_.assign(nr * width_, 0.0);
  off_norm_.assign(no * width_, 0.0);
  for (std::size_t r = 0; r < nr; ++r) {
    const Request& request = snapshot.requests[r];
    fill_row(req_norm_, r, width_, request.resources, scale);
    double* sig = req_sig_.data() + r * width_;
    for (const auto& e : request.resources.entries()) {
      if (e.type < width_) sig[e.type] = request.significance_of(e.type);
    }
  }
  for (std::size_t o = 0; o < no; ++o) {
    fill_row(off_norm_, o, width_, snapshot.offers[o].resources, scale);
  }
}

double ScoreMatrix::score(std::size_t request, std::size_t offer) const {
  const double* rp = req_norm_.data() + request * width_;
  const double* sig = req_sig_.data() + request * width_;
  const double* op = off_norm_.data() + offer * width_;
  double q = 0.0;
  for (std::size_t k = 0; k < width_; ++k) {
    const double d = op[k] - rp[k];
    q += sig[k] * op[k] / (d * d + 1.0);
  }
  return q;
}

}  // namespace decloud::auction

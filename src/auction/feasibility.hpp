// Feasibility filtering — constraints (8), (10), (11) plus the flexibility
// relaxation of the Fig. 5d–5f experiments.
#pragma once

#include "auction/bid.hpp"
#include "auction/config.hpp"

namespace decloud::auction {

/// True iff the offer's availability window covers the request's service
/// window: t_o^- ≤ t_r^- and t_o^+ ≥ t_r^+ (constraints 10 and 11).
[[nodiscard]] bool window_covers(const Offer& o, const Request& r);

/// True iff the offer carries enough of every requested resource
/// (constraint 8).  Strict resources (σ = 1) need the full amount;
/// non-strict ones need at least flexibility·ρ_(r,k).
[[nodiscard]] bool resources_sufficient(const Offer& o, const Request& r, double flexibility);

/// Full feasibility check: window + resources.
[[nodiscard]] bool feasible(const Offer& o, const Request& r, const AuctionConfig& config);

}  // namespace decloud::auction

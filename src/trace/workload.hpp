// Workload assembly: full market snapshots for the evaluation experiments.
//
// Reproduces the paper's setup (Section V): requests from the
// Google-trace-style generator, offers from the EC2 M5 catalog, and the
// valuation model "the valuation of each request is calculated as a cost of
// its best match offer multiplied by a random uniform coefficient in the
// range of [0.5, 2]".
#pragma once

#include <cstddef>

#include "auction/config.hpp"
#include "auction/mechanism.hpp"
#include "trace/ec2_catalog.hpp"
#include "trace/google_trace.hpp"

namespace decloud::trace {

/// How "the cost of the best match offer" is interpreted when pricing a
/// request (the paper does not pin this down; EXPERIMENTS.md discusses the
/// choice).
enum class ValuationBase {
  /// c_{o*} for the offer's whole availability window.
  kFullOfferCost,
  /// c_{o*} scaled by d_r / (t_o⁺ − t_o⁻): what renting the whole device
  /// for the request's duration would cost.  Default — keeps valuations on
  /// the same per-time scale as the normalized costs ĉ.
  kDurationProrated,
  /// φ_(r,o*) · c_{o*}: the exact fraction the request consumes.
  kFractionProrated,
};

/// Valuation model parameters.
struct ValuationConfig {
  double coeff_lo = 0.5;
  double coeff_hi = 2.0;
  ValuationBase base = ValuationBase::kDurationProrated;
};

/// Prices every zero-bid request in the snapshot: v_r = φ_(r,o*) · c_{o*} ·
/// U[lo, hi], where o* is the best-QoM feasible offer.  Requests with no
/// feasible offer get the coefficient applied to the cheapest offer's
/// pro-rated cost so they still carry a meaningful valuation.
void assign_valuations(auction::MarketSnapshot& snapshot, const auction::AuctionConfig& config,
                       const ValuationConfig& valuation, Rng& rng);

/// Full workload builder for the Fig. 5a–5c experiments.
struct WorkloadConfig {
  std::size_t num_requests = 100;
  std::size_t num_offers = 50;
  /// Each client submits on average this many requests (>= 1); clients are
  /// assigned round-robin so multi-request clients exist, which exercises
  /// the "exclude all bids of the price-setting participant" rule.
  double requests_per_client = 2.0;
  double offers_per_provider = 2.0;
  GoogleTraceConfig trace;
  Ec2OfferFactory::Config ec2;
  ValuationConfig valuation;
};

/// Builds a snapshot of `num_requests` requests and `num_offers` offers
/// with valuations assigned.  Deterministic in `rng`.
[[nodiscard]] auction::MarketSnapshot make_workload(const WorkloadConfig& config,
                                                    const auction::AuctionConfig& auction_config,
                                                    Rng& rng);

}  // namespace decloud::trace

// Amazon EC2 M5 instance catalog — the provider side of the paper's
// evaluation (Section V: "For physical capabilities of providers
// (processing cores, memory, disk etc.) along with pricing data, we use
// data from Amazon EC2 M5 instance types.  We set providers' resources in a
// range between 2-16 CPU cores and 8-64 GB RAM").
//
// Prices are the 2018 us-east-1 Linux on-demand rates the paper would have
// seen.  Disk is modelled as gp2 EBS attached storage sized proportionally
// to the instance.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

#include "auction/bid.hpp"
#include "common/rng.hpp"

namespace decloud::trace {

/// One catalog row.
struct InstanceType {
  std::string_view name;
  double vcpus = 0;
  double memory_gb = 0;
  double disk_gb = 0;
  /// USD per hour, 2018 us-east-1 Linux on-demand.
  double price_per_hour = 0.0;
};

/// The M5 family within the paper's 2–16 vCPU / 8–64 GB envelope.
[[nodiscard]] std::span<const InstanceType> m5_family();

/// Samples an instance type uniformly (or by explicit weights) and builds
/// an Offer priced at price_per_hour × window length, with cost jitter
/// `cost_spread` (multiplicative uniform in [1−s, 1+s]) so providers are
/// not perfectly identical.
/// Offer-factory parameters (top-level so brace-init defaults work as a
/// default argument).
struct Ec2OfferConfig {
  Time window_start = 0;
  /// Availability window length; default 24 h.
  Seconds window_length = 24 * 3600;
  /// Multiplicative cost jitter half-width.
  double cost_spread = 0.1;
  /// Per-type sampling weights (empty = uniform over the family).
  std::vector<double> type_weights;
};

class Ec2OfferFactory {
 public:
  using Config = Ec2OfferConfig;

  explicit Ec2OfferFactory(Config config = {}) : config_(std::move(config)) {}

  /// Builds one offer.  `id`/`provider`/`submitted` are caller-assigned.
  [[nodiscard]] auction::Offer make_offer(OfferId id, ProviderId provider,
                                          Time submitted, Rng& rng) const;

  /// Builds an offer of a specific catalog row (no sampling).
  [[nodiscard]] auction::Offer make_offer_of_type(OfferId id, ProviderId provider,
                                                  Time submitted,
                                                  const InstanceType& type, Rng& rng) const;

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
};

}  // namespace decloud::trace

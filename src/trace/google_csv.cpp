#include "trace/google_csv.hpp"

#include <cmath>
#include <sstream>

namespace decloud::trace {

namespace {

/// Splits a CSV line; no quoting support (the trace schema has none).
std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream ss(line);
  while (std::getline(ss, field, ',')) out.push_back(field);
  return out;
}

bool parse_double(const std::string& s, double& out) {
  try {
    std::size_t pos = 0;
    out = std::stod(s, &pos);
    // Allow trailing spaces only.
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\r')) ++pos;
    return pos == s.size() && std::isfinite(out);
  } catch (const std::exception&) {
    return false;
  }
}

double cap(double v, double limit) { return limit > 0.0 ? std::min(v, limit) : v; }

}  // namespace

CsvLoadResult load_google_csv(std::istream& in, const CsvOptions& options) {
  CsvLoadResult result;
  std::string line;
  std::size_t line_no = 0;
  std::uint64_t next_id = options.first_request_id;

  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line.front() == '#') continue;

    const auto fields = split_fields(line);
    if (fields.size() != 6) {
      result.errors.push_back("line " + std::to_string(line_no) + ": expected 6 fields, got " +
                              std::to_string(fields.size()));
      continue;
    }
    double submit = 0;
    double client = 0;
    double cpu = 0;
    double mem = 0;
    double disk = 0;
    double duration = 0;
    if (!parse_double(fields[0], submit) || !parse_double(fields[1], client) ||
        !parse_double(fields[2], cpu) || !parse_double(fields[3], mem) ||
        !parse_double(fields[4], disk) || !parse_double(fields[5], duration)) {
      result.errors.push_back("line " + std::to_string(line_no) + ": non-numeric field");
      continue;
    }
    if (cpu <= 0.0 || mem < 0.0 || disk < 0.0 || duration <= 0.0 || client < 0.0 ||
        submit < 0.0) {
      result.errors.push_back("line " + std::to_string(line_no) + ": out-of-domain value");
      continue;
    }

    auction::Request r;
    r.id = RequestId(next_id++);
    r.client = ClientId(static_cast<std::uint64_t>(client));
    r.submitted = static_cast<Time>(submit);
    r.resources.set(auction::ResourceSchema::kCpu, cap(cpu, options.max_cpu));
    if (mem > 0.0) r.resources.set(auction::ResourceSchema::kMemory, cap(mem, options.max_memory_gb));
    if (disk > 0.0) r.resources.set(auction::ResourceSchema::kDisk, cap(disk, options.max_disk_gb));
    r.duration = std::max<Seconds>(1, static_cast<Seconds>(duration));
    r.window_start = r.submitted;
    r.window_end = r.window_start + static_cast<Time>(std::ceil(
                                        static_cast<double>(r.duration) * options.window_slack));
    r.bid = 0.0;  // priced by the valuation model
    result.requests.push_back(std::move(r));
  }
  return result;
}

CsvLoadResult load_google_csv(const std::string& text, const CsvOptions& options) {
  std::istringstream in(text);
  return load_google_csv(in, options);
}

}  // namespace decloud::trace

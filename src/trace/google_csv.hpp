// Loader for real Google cluster-usage trace extracts.
//
// The synthetic generator (google_trace.hpp) reproduces the trace's shape;
// users who have the actual 2011 trace (or any per-task CSV) can feed it
// directly.  The expected schema is one task per line:
//
//     submit_time_s,client_id,cpu_cores,memory_gb,disk_gb,duration_s
//
// which is what a standard extraction of `task_events` joined with task
// durations produces (the trace's normalized resource units scaled to the
// paper's core/GB units).  Lines starting with '#' and blank lines are
// skipped; malformed lines are reported, not silently dropped.
#pragma once

#include <istream>
#include <string>
#include <vector>

#include "auction/bid.hpp"

namespace decloud::trace {

/// Result of a CSV load: parsed requests plus per-line diagnostics.
struct CsvLoadResult {
  std::vector<auction::Request> requests;
  /// "line N: <reason>" for every rejected line.
  std::vector<std::string> errors;

  [[nodiscard]] bool clean() const { return errors.empty(); }
};

/// Parsing options.
struct CsvOptions {
  /// Requests get ids starting here (callers merging several files keep
  /// them unique).
  std::uint64_t first_request_id = 0;
  /// Window slack: t⁺ = t⁻ + slack·duration.
  double window_slack = 1.5;
  /// Hard caps applied to the parsed resources (0 disables the cap).
  double max_cpu = 0.0;
  double max_memory_gb = 0.0;
  double max_disk_gb = 0.0;
};

/// Parses task rows from a stream.  Bids are left 0 for the valuation
/// model, exactly like the synthetic generator.
[[nodiscard]] CsvLoadResult load_google_csv(std::istream& in, const CsvOptions& options = {});

/// Convenience overload over a string (tests, embedded fixtures).
[[nodiscard]] CsvLoadResult load_google_csv(const std::string& text,
                                            const CsvOptions& options = {});

}  // namespace decloud::trace

#include "trace/kl_shaper.hpp"

#include <algorithm>
#include <cmath>

#include "common/ensure.hpp"
#include "stats/kl_divergence.hpp"

namespace decloud::trace {

ShapedMarket make_shaped_market(const KlShaperConfig& config,
                                const auction::AuctionConfig& auction_config, double lambda,
                                Rng& rng) {
  DECLOUD_EXPECTS(lambda >= 0.0 && lambda <= 1.0);
  const auto family = m5_family();
  DECLOUD_EXPECTS(config.offer_distribution.size() == family.size());
  DECLOUD_EXPECTS(config.shifted_class < family.size());

  // Request-side class distribution: base pushed toward the shifted class.
  std::vector<double> request_dist(family.size());
  for (std::size_t k = 0; k < family.size(); ++k) {
    const double shifted = (k == config.shifted_class) ? 1.0 : 0.0;
    request_dist[k] = (1.0 - lambda) * config.offer_distribution[k] + lambda * shifted;
  }

  ShapedMarket out;
  const Ec2OfferFactory factory(config.ec2);
  const auto num_clients = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(static_cast<double>(config.num_requests) /
                                               config.requests_per_client)));
  const auto num_providers = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(static_cast<double>(config.num_offers) /
                                               config.offers_per_provider)));

  // Sample offers from the base distribution, counting realized classes.
  std::vector<double> offer_counts(family.size(), 0.0);
  for (std::size_t i = 0; i < config.num_offers; ++i) {
    const std::size_t k = rng.weighted_index(config.offer_distribution);
    offer_counts[k] += 1.0;
    out.snapshot.offers.push_back(factory.make_offer_of_type(
        OfferId(i), ProviderId(i % num_providers), static_cast<Time>(i), family[k], rng));
  }

  // Sample requests sized to their class (load factor < 1 so several fit).
  const GoogleTraceGenerator duration_gen(config.trace);
  std::vector<double> request_counts(family.size(), 0.0);
  for (std::size_t i = 0; i < config.num_requests; ++i) {
    const std::size_t k = rng.weighted_index(request_dist);
    request_counts[k] += 1.0;
    const InstanceType& t = family[k];

    auction::Request r;
    r.id = RequestId(i);
    r.client = ClientId(i % num_clients);
    r.submitted = static_cast<Time>(i);
    const double load = rng.uniform(0.5, 1.0);  // fraction of the class the task pins
    r.resources.set(auction::ResourceSchema::kCpu, t.vcpus * load);
    r.resources.set(auction::ResourceSchema::kMemory, t.memory_gb * load);
    r.resources.set(auction::ResourceSchema::kDisk, t.disk_gb * load * 0.5);
    const double sig = std::clamp(config.request_significance, 1e-6, 1.0);
    r.significance.set(auction::ResourceSchema::kCpu, sig);
    r.significance.set(auction::ResourceSchema::kMemory, sig);
    r.significance.set(auction::ResourceSchema::kDisk, sig);

    const double dur =
        rng.lognormal(config.trace.duration_log_mean, config.trace.duration_log_sigma);
    r.duration = std::max<Seconds>(config.trace.min_duration, static_cast<Seconds>(dur));
    r.window_start = 0;
    r.window_end =
        static_cast<Time>(std::ceil(static_cast<double>(r.duration) * config.trace.window_slack));
    out.snapshot.requests.push_back(std::move(r));
  }

  assign_valuations(out.snapshot, auction_config, config.valuation, rng);

  out.kl_divergence = stats::kl_divergence(request_counts, offer_counts);
  out.similarity = std::clamp(1.0 - out.kl_divergence, 0.0, 1.0);
  return out;
}

}  // namespace decloud::trace

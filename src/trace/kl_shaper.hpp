// Divergence-controlled workload shaper — the generator behind the
// flexibility experiments (Fig. 5d–5f).
//
// The paper: "we generated sets of offers and requests distributions with
// various degrees of Kullback-Leibler divergence, e.g., when clients want
// mostly 8 core CPUs, the majority of offered CPUs have only 2 cores", with
// the similarity axis computed as 1 − KLD(R^β, O^β) over resources.
//
// We realize this by sampling both sides from categorical distributions
// over the EC2 M5 size classes: offers from a base distribution, requests
// from a mixture (1 − λ)·base + λ·shifted, where `shifted` concentrates
// demand on the opposite end of the size spectrum.  λ = 0 gives identical
// distributions (similarity 1); growing λ walks the market toward maximal
// mismatch.
#pragma once

#include <cstddef>
#include <vector>

#include "auction/config.hpp"
#include "trace/workload.hpp"

namespace decloud::trace {

/// One shaped market with its measured divergence.
struct ShapedMarket {
  auction::MarketSnapshot snapshot;
  /// KLD(request distribution ‖ offer distribution) over CPU size classes,
  /// measured on the actually sampled population.
  double kl_divergence = 0.0;
  /// The paper's similarity axis: 1 − KLD, clamped to [0, 1].
  double similarity = 0.0;
};

struct KlShaperConfig {
  std::size_t num_requests = 200;
  std::size_t num_offers = 100;
  double requests_per_client = 2.0;
  double offers_per_provider = 2.0;
  /// Base (offer-side) distribution over the M5 size classes
  /// (large … 4xlarge).  Defaults to mild small-instance skew, like public
  /// clouds.
  std::vector<double> offer_distribution = {0.4, 0.3, 0.2, 0.1};
  /// Demand concentration target: requests pile onto this size class as
  /// divergence grows.
  std::size_t shifted_class = 3;
  ValuationConfig valuation;
  Ec2OfferFactory::Config ec2;
  /// Request duration parameters (reuses the Google-style duration model).
  GoogleTraceConfig trace;
  /// Significance σ assigned to the generated requests' resources.  Values
  /// below 1 make them *flexible* — eligible for the AuctionConfig
  /// flexibility relaxation; σ = 1 pins them strict regardless of the
  /// market flexibility (the client always gets 100 % of the request).
  double request_significance = 0.8;
};

/// Builds a market whose request/offer size distributions diverge by
/// mixing parameter `lambda` ∈ [0, 1].  Requests are sized to *fit* their
/// target class exactly (CPU/RAM of the class, fractional load factor), so
/// mismatch manifests as demand for classes the offer side rarely carries.
[[nodiscard]] ShapedMarket make_shaped_market(const KlShaperConfig& config,
                                              const auction::AuctionConfig& auction_config,
                                              double lambda, Rng& rng);

}  // namespace decloud::trace

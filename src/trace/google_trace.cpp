#include "trace/google_trace.hpp"

#include <algorithm>
#include <cmath>

namespace decloud::trace {

auction::Request GoogleTraceGenerator::make_request(RequestId id, ClientId client, Time submitted,
                                                    Rng& rng) const {
  auction::Request r;
  r.id = id;
  r.client = client;
  r.submitted = submitted;

  double cpu = 0.0;
  double mem = 0.0;
  if (rng.bernoulli(config_.large_task_fraction)) {
    // Large tasks: near machine-sized, the far tail of the trace.
    cpu = rng.uniform(0.5 * config_.max_cpu, config_.max_cpu);
    mem = rng.uniform(0.5 * config_.max_memory_gb, config_.max_memory_gb);
  } else {
    cpu = rng.lognormal(config_.cpu_log_mean, config_.cpu_log_sigma);
    const double mem_per_cpu =
        rng.lognormal(config_.mem_per_cpu_log_mean, config_.mem_per_cpu_log_sigma);
    mem = cpu * mem_per_cpu;  // shared factor induces the CPU↔RAM correlation
  }
  double disk = rng.lognormal(config_.disk_log_mean, config_.disk_log_sigma);

  cpu = std::clamp(cpu, 0.1, config_.max_cpu);
  mem = std::clamp(mem, 0.25, config_.max_memory_gb);
  disk = std::clamp(disk, 1.0, config_.max_disk_gb);

  r.resources.set(auction::ResourceSchema::kCpu, cpu);
  r.resources.set(auction::ResourceSchema::kMemory, mem);
  r.resources.set(auction::ResourceSchema::kDisk, disk);

  const double dur = rng.lognormal(config_.duration_log_mean, config_.duration_log_sigma);
  r.duration = std::max<Seconds>(config_.min_duration, static_cast<Seconds>(dur));
  r.window_start = 0;
  r.window_end =
      static_cast<Time>(std::ceil(static_cast<double>(r.duration) * config_.window_slack));
  r.bid = 0.0;  // priced by the valuation model
  return r;
}

}  // namespace decloud::trace

// Synthetic Google-cluster-style request generator.
//
// The paper drives the client side with the Google cluster-usage trace
// (CPU, RAM and disk columns).  The original 2011 trace is not
// redistributable inside this repository, so this module synthesizes
// requests whose marginals match the published shape of that trace
// (Reiss et al., "Google cluster-usage traces: format + schema", and the
// companion analysis papers):
//
//   * resource requests are heavy-tailed — most tasks are tiny, a few are
//     near machine-sized: modelled as a lognormal body with a small uniform
//     "large task" mixture;
//   * CPU and memory are positively correlated (ρ ≈ 0.5 in the trace):
//     modelled with a shared lognormal factor;
//   * task durations are heavy-tailed with a median of minutes and a long
//     hour-scale tail: lognormal in log-seconds.
//
// Amounts are expressed in the paper's provider units (cores / GB) so they
// compose directly with the EC2 M5 catalog (2–16 cores, 8–64 GB).
// See DESIGN.md §5 for the substitution rationale.
#pragma once

#include "auction/bid.hpp"
#include "common/rng.hpp"

namespace decloud::trace {

/// Generator configuration.  Defaults give the trace-like shape scaled to
/// the M5 envelope.
struct GoogleTraceConfig {
  /// Lognormal parameters of the shared "task size" factor (in cores).
  double cpu_log_mean = 0.3;   // median ≈ 1.35 cores
  double cpu_log_sigma = 0.8;  // heavy tail
  /// Memory per core (GB), lognormal around ~3.5 GB/core with spread.
  double mem_per_cpu_log_mean = 1.25;
  double mem_per_cpu_log_sigma = 0.4;
  /// Disk demand (GB), lognormal, weakly coupled to task size.
  double disk_log_mean = 2.5;  // median ≈ 12 GB
  double disk_log_sigma = 1.0;
  /// Fraction of "large" tasks drawn uniformly near machine size.
  double large_task_fraction = 0.05;
  /// Duration d_r (seconds): lognormal, median ≈ 30 min, hour-scale tail.
  double duration_log_mean = 7.5;
  double duration_log_sigma = 0.9;
  /// Hard caps matching the largest provider (m5.4xlarge).
  double max_cpu = 16.0;
  double max_memory_gb = 64.0;
  double max_disk_gb = 512.0;
  /// Minimum duration and window slack.
  Seconds min_duration = 60;
  /// Service window = duration × window_slack (window start at 0).
  double window_slack = 1.5;
};

/// Draws synthetic requests with trace-like marginals.  Bids are set to 0;
/// the valuation model (ValuationModel in workload.hpp) prices them against
/// the offer pool as the paper prescribes.
class GoogleTraceGenerator {
 public:
  explicit GoogleTraceGenerator(GoogleTraceConfig config = {}) : config_(config) {}

  /// Generates one request (resources, duration, window).  `id`, `client`
  /// and `submitted` are caller-assigned.
  [[nodiscard]] auction::Request make_request(RequestId id, ClientId client, Time submitted,
                                              Rng& rng) const;

  [[nodiscard]] const GoogleTraceConfig& config() const { return config_; }

 private:
  GoogleTraceConfig config_;
};

}  // namespace decloud::trace

#include "trace/ec2_catalog.hpp"

#include <array>

#include "common/ensure.hpp"

namespace decloud::trace {

namespace {

// 2018 us-east-1 Linux on-demand pricing; disk sized as typical gp2 roots
// plus data volumes scaled with the instance.
constexpr std::array<InstanceType, 4> kM5Family = {{
    {.name = "m5.large", .vcpus = 2, .memory_gb = 8, .disk_gb = 64, .price_per_hour = 0.096},
    {.name = "m5.xlarge", .vcpus = 4, .memory_gb = 16, .disk_gb = 128, .price_per_hour = 0.192},
    {.name = "m5.2xlarge", .vcpus = 8, .memory_gb = 32, .disk_gb = 256, .price_per_hour = 0.384},
    {.name = "m5.4xlarge", .vcpus = 16, .memory_gb = 64, .disk_gb = 512, .price_per_hour = 0.768},
}};

}  // namespace

std::span<const InstanceType> m5_family() { return kM5Family; }

auction::Offer Ec2OfferFactory::make_offer(OfferId id, ProviderId provider, Time submitted,
                                           Rng& rng) const {
  std::size_t index = 0;
  if (config_.type_weights.empty()) {
    index = static_cast<std::size_t>(rng.next_below(kM5Family.size()));
  } else {
    DECLOUD_EXPECTS_MSG(config_.type_weights.size() == kM5Family.size(),
                        "type_weights must match the catalog size");
    index = rng.weighted_index(config_.type_weights);
  }
  return make_offer_of_type(id, provider, submitted, kM5Family[index], rng);
}

auction::Offer Ec2OfferFactory::make_offer_of_type(OfferId id, ProviderId provider,
                                                   Time submitted, const InstanceType& type,
                                                   Rng& rng) const {
  DECLOUD_EXPECTS(config_.window_length > 0);
  auction::Offer o;
  o.id = id;
  o.provider = provider;
  o.submitted = submitted;
  o.window_start = config_.window_start;
  o.window_end = config_.window_start + config_.window_length;
  o.resources.set(auction::ResourceSchema::kCpu, type.vcpus);
  o.resources.set(auction::ResourceSchema::kMemory, type.memory_gb);
  o.resources.set(auction::ResourceSchema::kDisk, type.disk_gb);

  const double hours = static_cast<double>(config_.window_length) / 3600.0;
  const double jitter =
      config_.cost_spread > 0.0 ? rng.uniform(1.0 - config_.cost_spread, 1.0 + config_.cost_spread)
                                : 1.0;
  o.bid = type.price_per_hour * hours * jitter;
  return o;
}

}  // namespace decloud::trace

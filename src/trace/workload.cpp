#include "trace/workload.hpp"

#include <algorithm>
#include <cmath>

#include "auction/allocation.hpp"
#include "auction/feasibility.hpp"
#include "auction/qom.hpp"
#include "auction/score_matrix.hpp"
#include "common/ensure.hpp"

namespace decloud::trace {

void assign_valuations(auction::MarketSnapshot& snapshot, const auction::AuctionConfig& config,
                       const ValuationConfig& valuation, Rng& rng) {
  DECLOUD_EXPECTS(valuation.coeff_lo > 0.0 && valuation.coeff_hi >= valuation.coeff_lo);
  const auction::BlockScale scale(snapshot.requests, snapshot.offers);

  const auto base_cost_of = [&](const auction::Request& r, const auction::Offer& o) {
    switch (valuation.base) {
      case ValuationBase::kFullOfferCost:
        return o.bid;
      case ValuationBase::kDurationProrated: {
        const auto span = static_cast<double>(o.window_length());
        return span > 0.0 ? o.bid * static_cast<double>(r.duration) / span : 0.0;
      }
      case ValuationBase::kFractionProrated:
        return auction::resource_fraction(r, o) * o.bid;
    }
    return 0.0;
  };

  // One dense row per request instead of R·O sparse entry-list walks: the
  // row values are bit-identical to quality_of_match (score_matrix.hpp), so
  // the priced workload — and every golden trace built from it — is
  // unchanged while 100k-request workloads become generable in seconds.
  const auction::ScoreMatrix scores(snapshot, scale);
  std::vector<double> row(snapshot.offers.size());
  for (std::size_t ri = 0; ri < snapshot.requests.size(); ++ri) {
    auto& r = snapshot.requests[ri];
    if (r.bid != 0.0) continue;  // caller already priced it

    scores.score_row(ri, row);
    const auto best = auction::best_offers_from_row(ri, snapshot, row, config);
    double base_cost = 0.0;
    if (!best.empty()) {
      // best_offers sorts by offer index; re-rank by QoM to find o*.
      double best_q = -1.0;
      std::size_t best_o = best.front();
      for (const std::size_t o : best) {
        const double q = row[o];
        if (q > best_q) {
          best_q = q;
          best_o = o;
        }
      }
      base_cost = base_cost_of(r, snapshot.offers[best_o]);
    } else {
      // No feasible offer: fall back to the cheapest applicable offer.
      double cheapest = 0.0;
      bool first = true;
      for (const auto& o : snapshot.offers) {
        const double c = base_cost_of(r, o);
        if (c <= 0.0) continue;
        if (first || c < cheapest) {
          cheapest = c;
          first = false;
        }
      }
      base_cost = cheapest;
    }
    if (base_cost <= 0.0) base_cost = 1e-3;  // degenerate block: token value
    r.bid = base_cost * rng.uniform(valuation.coeff_lo, valuation.coeff_hi);
  }
}

auction::MarketSnapshot make_workload(const WorkloadConfig& config,
                                      const auction::AuctionConfig& auction_config, Rng& rng) {
  DECLOUD_EXPECTS(config.requests_per_client >= 1.0);
  DECLOUD_EXPECTS(config.offers_per_provider >= 1.0);

  auction::MarketSnapshot snapshot;
  const GoogleTraceGenerator gen(config.trace);
  const Ec2OfferFactory factory(config.ec2);

  const auto num_clients = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(static_cast<double>(config.num_requests) /
                                               config.requests_per_client)));
  const auto num_providers = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(static_cast<double>(config.num_offers) /
                                               config.offers_per_provider)));

  snapshot.requests.reserve(config.num_requests);
  for (std::size_t i = 0; i < config.num_requests; ++i) {
    snapshot.requests.push_back(gen.make_request(RequestId(i), ClientId(i % num_clients),
                                                 static_cast<Time>(i), rng));
  }
  snapshot.offers.reserve(config.num_offers);
  for (std::size_t i = 0; i < config.num_offers; ++i) {
    snapshot.offers.push_back(factory.make_offer(OfferId(i), ProviderId(i % num_providers),
                                                 static_cast<Time>(i), rng));
  }

  assign_valuations(snapshot, auction_config, config.valuation, rng);
  return snapshot;
}

}  // namespace decloud::trace

#include "ledger/protocol.hpp"

#include <cmath>
#include <cstdio>
#include <utility>

#include "common/audit.hpp"
#include "common/ensure.hpp"
#include "journal/journal.hpp"
#include "ledger/codec.hpp"
#include "obs/sink.hpp"

namespace decloud::ledger {

namespace {

void append_json_sizet(std::string& out, const char* key, std::size_t value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%s\":%zu,", key, value);
  out += buf;
}

}  // namespace

ClientId ledger_address(const crypto::PublicKey& sender) {
  // Same fold as Miner::allocation_seed: the first 8 fingerprint bytes,
  // big-endian.  "The fingerprint is the ledger address" (sealed_bid.hpp).
  const crypto::Digest fp = sender.fingerprint();
  std::uint64_t address = 0;
  for (int i = 0; i < 8; ++i) address = (address << 8) | fp[static_cast<std::size_t>(i)];
  return ClientId(address);
}

std::string outcome_json(const RoundOutcome& o) {
  std::string out;
  out.reserve(256 + o.result.matches.size() * 64);
  char buf[128];
  out += "{\"accepted\":";
  out += o.block_accepted ? "true" : "false";
  out += ",\"votes\":[";
  for (std::size_t i = 0; i < o.verifier_votes.size(); ++i) {
    out += i == 0 ? "" : ",";
    out += o.verifier_votes[i] ? "1" : "0";
  }
  out += "],";
  append_json_sizet(out, "requests", o.snapshot.requests.size());
  append_json_sizet(out, "offers", o.snapshot.offers.size());
  out += "\"matches\":[";
  for (std::size_t i = 0; i < o.result.matches.size(); ++i) {
    const auction::Match& m = o.result.matches[i];
    std::snprintf(buf, sizeof buf, "%s{\"request\":%zu,\"offer\":%zu,\"payment\":%.17g}",
                  i == 0 ? "" : ",", m.request, m.offer, m.payment);
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "],\"welfare\":%.17g,\"payments\":%.17g,\"agreements\":%zu,",
                o.result.welfare, o.result.total_payments, o.agreements.size());
  out += buf;
  out += "\"fault\":{";
  append_json_sizet(out, "bids_invalid_dropped", o.fault.bids_invalid_dropped);
  append_json_sizet(out, "reveals_withheld", o.fault.reveals_withheld);
  append_json_sizet(out, "bids_unopened", o.fault.bids_unopened);
  append_json_sizet(out, "dishonest_votes", o.fault.dishonest_votes);
  append_json_sizet(out, "remine_attempts", o.fault.remine_attempts);
  out += "\"allocation_corrupted\":";
  out += o.fault.allocation_corrupted ? "true" : "false";
  out += ",\"producer_penalized\":";
  out += o.fault.producer_penalized ? "true" : "false";
  out += ",\"penalized\":[";
  for (std::size_t i = 0; i < o.fault.penalized.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%s%llu", i == 0 ? "" : ",",
                  static_cast<unsigned long long>(o.fault.penalized[i].value()));
    out += buf;
  }
  out += "]}}";
  return out;
}

Mempool::Admission Mempool::submit(SealedBid bid) {
  if (!digests_.insert(bid.digest()).second) return Admission::kDuplicate;
  pool_.push_back(std::move(bid));
  return Admission::kAccepted;
}

std::vector<SealedBid> Mempool::drain(std::size_t max_bids) {
  if (max_bids >= pool_.size()) {
    digests_.clear();
    return std::exchange(pool_, {});
  }
  std::vector<SealedBid> out(pool_.begin(), pool_.begin() + static_cast<std::ptrdiff_t>(max_bids));
  pool_.erase(pool_.begin(), pool_.begin() + static_cast<std::ptrdiff_t>(max_bids));
  for (const SealedBid& bid : out) digests_.erase(bid.digest());
  return out;
}

std::size_t LedgerProtocol::required_accepts(double quorum, std::size_t verifiers) {
  DECLOUD_EXPECTS_MSG(quorum > 0.0 && quorum <= 1.0, "quorum must be in (0, 1]");
  if (verifiers == 0) return 0;  // producer-only deployments self-accept
  // The epsilon keeps exact fractions exact: quorum 2/3 of 3 verifiers
  // needs 2 votes, not ceil(2.0000000000000004) = 3.
  const double target = quorum * static_cast<double>(verifiers);
  const auto required = static_cast<std::size_t>(std::ceil(target - 1e-9));
  return required > verifiers ? verifiers : required;
}

RoundOutcome LedgerProtocol::run_round(std::span<Participant* const> participants,
                                       const std::vector<Miner>& verifiers, Time now) {
  for (const Participant* p : participants) {
    DECLOUD_EXPECTS_MSG(p != nullptr, "run_round: null participant");
  }
  const std::size_t required = required_accepts(params_.quorum, verifiers.size());

  RoundOutcome outcome;
  const std::uint64_t round = chain_.height();

  auto bids = mempool_.drain();
  if (sink_ != nullptr) sink_->metrics().counter("ledger.bids_sealed").add(bids.size());

  // Graceful degradation for tampered submissions: a bad signature would
  // invalidate the whole preamble (validate_preamble checks every bid), so
  // drop such bids here — only their sender loses the round.
  {
    std::vector<SealedBid> valid;
    valid.reserve(bids.size());
    for (auto& bid : bids) {
      if (verify_sealed_bid(bid)) {
        valid.push_back(std::move(bid));
      } else {
        ++outcome.fault.bids_invalid_dropped;
      }
    }
    bids = std::move(valid);
    if (sink_ != nullptr && outcome.fault.bids_invalid_dropped > 0) {
      sink_->metrics()
          .counter("fault.bids_invalid_dropped")
          .add(outcome.fault.bids_invalid_dropped);
    }
  }

  // Key reveals accumulate ACROSS re-mine attempts: a wallet retires each
  // key after its first reveal (participant.hpp), so attempt 2 must reuse
  // what attempt 1 disclosed.  `revealed` only dedupes; it is never
  // iterated.
  std::vector<KeyReveal> reveals;
  std::unordered_set<crypto::Digest, crypto::DigestHash> revealed;
  // Ledger addresses already charged a withholding penalty this round
  // (membership only): one debit per sender per round, not per attempt.
  std::unordered_set<std::uint64_t> charged;

  const std::size_t attempts_allowed = params_.max_remine_attempts + 1;
  for (std::size_t attempt = 0; attempt < attempts_allowed; ++attempt) {
    outcome.verifier_votes.clear();

    // Phase 1: assemble + PoW over the sealed bids.  The "pow" span is
    // opened by mine_preamble itself (it knows the attempt count).  The
    // bids are passed by copy: a rejected attempt re-mines from them.
    auto preamble = producer_.mine_preamble(bids, chain_.tip_hash(), chain_.height(), now, sink_);
    DECLOUD_ENSURES_MSG(preamble.has_value(), "PoW search exhausted (raise max_pow_attempts)");

    // Participants validate the preamble and reveal keys for their bids.
    // A withhold fault silences one participant: its keys stay secret,
    // its bids stay sealed, and only those bids drop out of the round.
    {
      obs::SpanScope span(sink_, "key_reveal");
      std::size_t fresh = 0;
      if (validate_preamble(*preamble, params_.difficulty_bits)) {
        for (std::size_t i = 0; i < participants.size(); ++i) {
          if (fault_ != nullptr &&
              fault_->fires(fault::FaultKind::kWithholdReveal,
                            {round, shard_, i, attempt})) {
            ++outcome.fault.reveals_withheld;
            if (journal_ != nullptr) {
              journal_->append(journal_ring_,
                               {journal::EventKind::kFaultFired, 0, round,
                                static_cast<std::uint64_t>(fault::FaultKind::kWithholdReveal),
                                i, attempt});
            }
            continue;
          }
          for (auto& kr : participants[i]->on_preamble(*preamble)) {
            if (revealed.insert(kr.bid_digest).second) {
              reveals.push_back(std::move(kr));
              ++fresh;
            }
          }
        }
      }
      span.add_work(fresh);
      if (sink_ != nullptr) sink_->metrics().counter("ledger.keys_revealed").add(fresh);
    }

    // Phase 2: allocation computation and block body.
    BlockBody body;
    {
      obs::SpanScope span(sink_, "allocation");
      body = producer_.compute_body(*preamble, reveals, sink_);
    }
    if (fault_ != nullptr &&
        fault_->fires(fault::FaultKind::kCorruptAllocation, {round, shard_, 0, attempt})) {
      if (body.allocation.empty()) {
        body.allocation.push_back(0xAB);
      } else {
        body.allocation.front() ^= 0xFF;
      }
      outcome.fault.allocation_corrupted = true;
      if (sink_ != nullptr) sink_->metrics().counter("fault.allocations_corrupted").add(1);
      if (journal_ != nullptr) {
        journal_->append(journal_ring_,
                         {journal::EventKind::kFaultFired, 0, round,
                          static_cast<std::uint64_t>(fault::FaultKind::kCorruptAllocation), 0,
                          attempt});
      }
    }

    // Collective verification: every verifier re-runs the auction; the
    // block stands iff the accepting votes reach the quorum.
    std::size_t accepts = 0;
    {
      obs::SpanScope span(sink_, "verify");
      span.add_work(verifiers.size());
      for (std::size_t v = 0; v < verifiers.size(); ++v) {
        bool ok = verifiers[v].verify_body(*preamble, body);
        if (fault_ != nullptr &&
            fault_->fires(fault::FaultKind::kDishonestVote, {round, shard_, v, attempt})) {
          ok = !ok;
          ++outcome.fault.dishonest_votes;
          if (sink_ != nullptr) sink_->metrics().counter("fault.dishonest_votes").add(1);
          if (journal_ != nullptr) {
            journal_->append(journal_ring_,
                             {journal::EventKind::kFaultFired, 0, round,
                              static_cast<std::uint64_t>(fault::FaultKind::kDishonestVote), v,
                              attempt});
          }
        }
        outcome.verifier_votes.push_back(ok);
        if (ok) ++accepts;
      }
    }
    const bool quorum_reached = accepts >= required;

    const OpenedBlock opened = Miner::open_block(*preamble, body.revealed_keys);

    // Withholding penalty: every distinct sender of a bid that never
    // opened is debited BEFORE any allocation registers — exclusion from
    // this round is not enough, or withholding would be free (Section
    // III-B's reputational stick, extended to key withholding).
    for (const std::size_t u : opened.unopened) {
      const ClientId address = ledger_address(preamble->sealed_bids[u].sender);
      if (charged.insert(address.value()).second) {
        contract_.penalize_withhold(address);
        outcome.fault.penalized.push_back(address);
        if (sink_ != nullptr) sink_->metrics().counter("fault.withhold_penalties").add(1);
        if (journal_ != nullptr) {
          journal_->append(journal_ring_,
                           {journal::EventKind::kReputationPenalty, 0, round, address.value(),
                            static_cast<std::uint64_t>(journal::PenaltyKind::kWithhold),
                            attempt});
        }
      }
    }
    outcome.fault.bids_unopened = opened.unopened.size();

    outcome.snapshot = opened.snapshot;
    outcome.result = auction::RoundResult{};
    bool decodable = true;
    try {
      outcome.result = decode_allocation({body.allocation.data(), body.allocation.size()},
                                         opened.snapshot.requests.size(),
                                         opened.snapshot.offers.size());
    } catch (const precondition_error&) {
      // A corrupted body may not even decode; never register garbage,
      // even if a dishonest quorum voted it through.
      decodable = false;
      outcome.result = auction::RoundResult{};
    }

    if (quorum_reached && decodable) {
      {
        obs::SpanScope span(sink_, "append");
        outcome.block = Block{.preamble = std::move(*preamble), .body = std::move(body)};
        outcome.block_accepted = chain_.append(outcome.block, params_.difficulty_bits);
        if (outcome.block_accepted) {
          outcome.agreements =
              contract_.register_allocation(chain_.height() - 1, outcome.snapshot, outcome.result);
        }
        span.add_work(outcome.agreements.size());
      }
      if constexpr (decloud::audit::kEnabled) {
        // Satellite invariant: a penalized (withholding) participant can
        // never appear in the accepted block's matches — its bids never
        // opened, so no match row can trace back to its address.
        for (const auction::Match& m : outcome.result.matches) {
          const std::size_t req_src = opened.request_source[m.request];
          const std::size_t off_src = opened.offer_source[m.offer];
          decloud::audit::check(
              !charged.contains(
                  ledger_address(outcome.block.preamble.sealed_bids[req_src].sender).value()),
              "penalized participant absent from accepted matches (request side)");
          decloud::audit::check(
              !charged.contains(
                  ledger_address(outcome.block.preamble.sealed_bids[off_src].sender).value()),
              "penalized participant absent from accepted matches (offer side)");
        }
      }
      if (sink_ != nullptr) {
        sink_->metrics()
            .counter(outcome.block_accepted ? "ledger.blocks_accepted" : "ledger.blocks_rejected")
            .add(1);
        sink_->metrics().counter("ledger.agreements").add(outcome.agreements.size());
      }
      if (journal_ != nullptr) {
        if (outcome.block_accepted) {
          journal_->append(journal_ring_,
                           {journal::EventKind::kBlockMined, 0, round, chain_.height() - 1,
                            outcome.result.matches.size(), outcome.agreements.size(),
                            outcome.result.welfare});
        } else {
          journal_->append(journal_ring_, {journal::EventKind::kBlockRejected, 0, round,
                                           attempt, accepts, required});
        }
      }
      return outcome;
    }

    // Rejected: the producer burned PoW on a block the quorum refused —
    // that is the penalty event, charged once per failed attempt.
    ++producer_penalties_;
    outcome.fault.producer_penalized = true;
    if (sink_ != nullptr) sink_->metrics().counter("ledger.blocks_rejected").add(1);
    if (journal_ != nullptr) {
      journal_->append(journal_ring_, {journal::EventKind::kBlockRejected, 0, round, attempt,
                                       accepts, required});
      journal_->append(journal_ring_,
                       {journal::EventKind::kReputationPenalty, 0, round, 0,
                        static_cast<std::uint64_t>(journal::PenaltyKind::kProducer), attempt});
    }

    if (attempt + 1 < attempts_allowed) {
      ++outcome.fault.remine_attempts;
      if (sink_ != nullptr) sink_->metrics().counter("fault.blocks_remined").add(1);
      if (journal_ != nullptr) {
        journal_->append(journal_ring_, {journal::EventKind::kBlockRemined, 0, round,
                                         attempt + 1, opened.unopened.size(), 0});
      }
      // Bounded recovery: re-mine with the faulty inputs excluded.  The
      // unopened bids are the inputs the producer could not honor; their
      // keys may never come, so they sit the retry out (and resubmit via
      // the market layer in a later round).
      if (!opened.unopened.empty()) {
        std::vector<SealedBid> kept;
        kept.reserve(bids.size() - opened.unopened.size());
        std::size_t next_unopened = 0;
        for (std::size_t i = 0; i < bids.size(); ++i) {
          if (next_unopened < opened.unopened.size() && opened.unopened[next_unopened] == i) {
            ++next_unopened;
            continue;
          }
          kept.push_back(std::move(bids[i]));
        }
        bids = std::move(kept);
      }
    }
  }
  return outcome;
}

void LedgerProtocol::encode_state(ByteWriter& w) const {
  DECLOUD_EXPECTS_MSG(mempool_.size() == 0,
                      "protocol snapshot requires an empty mempool (quiescent point)");
  w.write_u64(chain_.height());
  const crypto::Digest tip = chain_.tip_hash();
  for (const std::uint8_t b : tip) w.write_u8(b);
  w.write_u64(producer_penalties_);
  contract_.encode_state(w);
}

void LedgerProtocol::restore_state(ByteReader& r) {
  const std::uint64_t height = r.read_u64();
  crypto::Digest tip{};
  for (std::uint8_t& b : tip) b = r.read_u8();
  chain_.restore_checkpoint(height, tip);
  producer_penalties_ = static_cast<std::size_t>(r.read_u64());
  contract_.restore_state(r);
}

}  // namespace decloud::ledger

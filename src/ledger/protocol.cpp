#include "ledger/protocol.hpp"

#include <utility>

#include "common/ensure.hpp"
#include "ledger/codec.hpp"
#include "obs/sink.hpp"

namespace decloud::ledger {

std::vector<SealedBid> Mempool::drain(std::size_t max_bids) {
  if (max_bids >= pool_.size()) return std::exchange(pool_, {});
  std::vector<SealedBid> out(pool_.begin(), pool_.begin() + static_cast<std::ptrdiff_t>(max_bids));
  pool_.erase(pool_.begin(), pool_.begin() + static_cast<std::ptrdiff_t>(max_bids));
  return out;
}

RoundOutcome LedgerProtocol::run_round(std::vector<Participant*> participants,
                                       const std::vector<Miner>& verifiers, Time now) {
  RoundOutcome outcome;

  // Phase 1: assemble + PoW over the sealed bids.  The "pow" span is
  // opened by mine_preamble itself (it knows the attempt count).
  auto bids = mempool_.drain();
  if (sink_ != nullptr) sink_->metrics().counter("ledger.bids_sealed").add(bids.size());
  auto preamble =
      producer_.mine_preamble(std::move(bids), chain_.tip_hash(), chain_.height(), now, sink_);
  DECLOUD_ENSURES_MSG(preamble.has_value(), "PoW search exhausted (raise max_pow_attempts)");

  // Participants validate the preamble and reveal keys for their bids.
  std::vector<KeyReveal> reveals;
  {
    obs::SpanScope span(sink_, "key_reveal");
    if (validate_preamble(*preamble, params_.difficulty_bits)) {
      for (Participant* p : participants) {
        DECLOUD_EXPECTS(p != nullptr);
        auto r = p->on_preamble(*preamble);
        reveals.insert(reveals.end(), r.begin(), r.end());
      }
    }
    span.add_work(reveals.size());
    if (sink_ != nullptr) sink_->metrics().counter("ledger.keys_revealed").add(reveals.size());
  }

  // Phase 2: allocation computation and block body.
  BlockBody body;
  {
    obs::SpanScope span(sink_, "allocation");
    body = producer_.compute_body(*preamble, reveals, sink_);
  }

  // Collective verification: every verifier re-runs the auction.
  bool all_accept = true;
  {
    obs::SpanScope span(sink_, "verify");
    span.add_work(verifiers.size());
    for (const Miner& v : verifiers) {
      const bool ok = v.verify_body(*preamble, body);
      outcome.verifier_votes.push_back(ok);
      all_accept = all_accept && ok;
    }
  }

  const OpenedBlock opened = Miner::open_block(*preamble, body.revealed_keys);
  outcome.snapshot = opened.snapshot;
  outcome.result = decode_allocation({body.allocation.data(), body.allocation.size()},
                                     opened.snapshot.requests.size(),
                                     opened.snapshot.offers.size());

  if (!all_accept) {
    if (sink_ != nullptr) sink_->metrics().counter("ledger.blocks_rejected").add(1);
    return outcome;  // block rejected; nothing recorded
  }

  {
    obs::SpanScope span(sink_, "append");
    outcome.block = Block{.preamble = std::move(*preamble), .body = std::move(body)};
    outcome.block_accepted = chain_.append(outcome.block, params_.difficulty_bits);
    if (outcome.block_accepted) {
      outcome.agreements =
          contract_.register_allocation(chain_.height() - 1, outcome.snapshot, outcome.result);
    }
    span.add_work(outcome.agreements.size());
  }
  if (sink_ != nullptr) {
    sink_->metrics()
        .counter(outcome.block_accepted ? "ledger.blocks_accepted" : "ledger.blocks_rejected")
        .add(1);
    sink_->metrics().counter("ledger.agreements").add(outcome.agreements.size());
  }
  return outcome;
}

}  // namespace decloud::ledger

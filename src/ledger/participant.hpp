// Participant-side wallet logic: sealing bids, tracking temporary keys,
// revealing them when the preamble arrives (Section III-A).
#pragma once

#include <unordered_map>
#include <vector>

#include "auction/bid.hpp"
#include "common/rng.hpp"
#include "ledger/block.hpp"
#include "ledger/sealed_bid.hpp"

namespace decloud::ledger {

/// A client or provider wallet.  Holds the long-term signing key and the
/// per-bid temporary encryption keys awaiting disclosure.
class Participant {
 public:
  /// Creates a wallet with a fresh keypair drawn from `rng`.
  explicit Participant(Rng& rng) : keys_(crypto::generate_keypair(rng)) {}
  explicit Participant(crypto::KeyPair keys) : keys_(std::move(keys)) {}

  [[nodiscard]] const crypto::PublicKey& public_key() const { return keys_.pub; }

  /// Seals a request under a fresh temporary key and remembers the key.
  [[nodiscard]] SealedBid submit_request(const auction::Request& r, Rng& rng);

  /// Seals an offer under a fresh temporary key and remembers the key.
  [[nodiscard]] SealedBid submit_offer(const auction::Offer& o, Rng& rng);

  /// Reacts to a (already PoW-validated) preamble: returns the key reveals
  /// for every pending bid of ours it contains.  Revealed keys are retired
  /// from the pending set.
  [[nodiscard]] std::vector<KeyReveal> on_preamble(const BlockPreamble& preamble);

  /// Number of bids still awaiting inclusion.
  [[nodiscard]] std::size_t pending_bids() const { return pending_.size(); }

 private:
  SealedBid seal(BidKind kind, std::vector<std::uint8_t> plaintext, Rng& rng);

  crypto::KeyPair keys_;
  std::unordered_map<crypto::Digest, crypto::SymmetricKey, crypto::DigestHash> pending_;
};

}  // namespace decloud::ledger

// Miner logic — both roles of Section III: the block producer (assemble,
// mine PoW, decrypt after key reveal, compute the allocation) and the
// verifier (validate the preamble, re-run the deterministic auction and
// compare against the suggested allocation).
#pragma once

#include <optional>
#include <vector>

#include "auction/config.hpp"
#include "auction/mechanism.hpp"
#include "ledger/block.hpp"

namespace decloud::auction {
class CandidateIndexCache;
}

namespace decloud::ledger {

/// Shared consensus parameters every miner must agree on.
struct ConsensusParams {
  /// Leading zero bits required of the block hash.  Simulation-scale.
  unsigned difficulty_bits = 12;
  /// The auction configuration is part of consensus: a divergent config
  /// yields divergent allocations and the block is rejected.
  auction::AuctionConfig auction;
  /// Upper bound on PoW attempts before the miner gives up (simulation
  /// safety valve; never hit at sane difficulties).
  std::uint64_t max_pow_attempts = UINT64_MAX;
  /// Fraction of verifier votes required to accept a block, in (0, 1].
  /// 1.0 keeps the historical unanimity rule; 2.0/3.0 tolerates a
  /// dishonest minority (LedgerProtocol::required_accepts rounds up).
  double quorum = 1.0;
  /// Re-mine attempts a producer gets after a rejected block, each with
  /// the faulty inputs (unopened bids) excluded.  0 = reject outright.
  std::size_t max_remine_attempts = 0;
};

/// The bids of a block decrypted into an auction snapshot, remembering
/// which sealed bid produced which row (for audits).
struct OpenedBlock {
  auction::MarketSnapshot snapshot;
  /// sealed-bid index (into preamble.sealed_bids) per snapshot request.
  std::vector<std::size_t> request_source;
  /// sealed-bid index per snapshot offer.
  std::vector<std::size_t> offer_source;
  /// Sealed bids for which no valid key was revealed (their owners stay
  /// out of this round and must resubmit).
  std::vector<std::size_t> unopened;
};

class Miner {
 public:
  explicit Miner(ConsensusParams params) : params_(std::move(params)) {}

  [[nodiscard]] const ConsensusParams& params() const { return params_; }

  /// Phase 1: assembles a preamble over the given sealed bids on top of the
  /// current tip and solves PoW.  Returns nullopt only if max_pow_attempts
  /// is exhausted.  A non-null `sink` records a "pow" span whose work
  /// counter is the number of PoW attempts; the sink never affects mining.
  [[nodiscard]] std::optional<BlockPreamble> mine_preamble(std::vector<SealedBid> bids,
                                                           const crypto::Digest& prev_hash,
                                                           std::uint64_t height, Time timestamp,
                                                           obs::MetricsSink* sink = nullptr) const;

  /// Phase 2 (producer): decrypts the bids with the revealed keys and runs
  /// the auction seeded by the block hash, producing the body.  `sink` is
  /// forwarded to the mechanism (stage spans + round counters).
  [[nodiscard]] BlockBody compute_body(const BlockPreamble& preamble,
                                       const std::vector<KeyReveal>& reveals,
                                       obs::MetricsSink* sink = nullptr) const;

  /// Phase 2 (verifier): re-derives the allocation from the preamble and
  /// revealed keys and accepts the body iff it matches byte-for-byte
  /// ("miners verify the accuracy of the allocation algorithm execution").
  [[nodiscard]] bool verify_body(const BlockPreamble& preamble, const BlockBody& body) const;

  /// Decrypts a preamble's bids with a key set (shared by producer and
  /// verifier paths).  Bids with missing/wrong keys or malformed plaintext
  /// are skipped and reported in `unopened`.
  [[nodiscard]] static OpenedBlock open_block(const BlockPreamble& preamble,
                                              const std::vector<KeyReveal>& reveals);

  /// The verifiable-randomization seed derived from the block hash.
  [[nodiscard]] static std::uint64_t allocation_seed(const BlockPreamble& preamble);

  /// Attaches a cross-round CandidateIndexCache (not owned, may be null)
  /// used ONLY by compute_body's producer run.  verify_body never touches
  /// it: verification must reproduce the allocation from scratch, so the
  /// cache-vs-fresh bit-identity contract (candidate_index.hpp) is
  /// exercised by consensus itself on every accepted block.
  void set_index_cache(auction::CandidateIndexCache* cache) { index_cache_ = cache; }

 private:
  ConsensusParams params_;
  auction::CandidateIndexCache* index_cache_ = nullptr;
};

}  // namespace decloud::ledger

#include "ledger/contract.hpp"

#include <algorithm>
#include <vector>

#include "auction/resource.hpp"
#include "common/map_util.hpp"

namespace decloud::ledger {

void ReputationRegistry::record_accept(ClientId client) {
  auto& e = entries_.try_emplace(client, Entry{config_.initial}).first->second;
  e.denial_streak = 0;
  e.score = std::min(config_.max_score, e.score + config_.recovery);
}

void ReputationRegistry::record_deny(ClientId client) {
  auto& e = entries_.try_emplace(client, Entry{config_.initial}).first->second;
  ++e.denial_streak;
  // Successive rejections bite harder: the factor applies once per streak
  // step, so two denials in a row cost factor², three cost factor³, …
  for (std::size_t i = 0; i < e.denial_streak; ++i) e.score *= config_.denial_factor;
  if (e.score < 0.0) e.score = 0.0;
}

void ReputationRegistry::record_withhold(ClientId client) {
  auto& e = entries_.try_emplace(client, Entry{config_.initial}).first->second;
  e.score *= config_.withhold_factor;
  if (e.score < 0.0) e.score = 0.0;
}

double ReputationRegistry::score(ClientId client) const {
  const auto it = entries_.find(client);
  return it == entries_.end() ? config_.initial : it->second.score;
}

std::size_t ReputationRegistry::consecutive_denials(ClientId client) const {
  const auto it = entries_.find(client);
  return it == entries_.end() ? 0 : it->second.denial_streak;
}

void stamp_reputation(auction::MarketSnapshot& snapshot, const ReputationRegistry& registry) {
  for (auto& r : snapshot.requests) r.reputation = registry.score(r.client);
}

std::vector<ContractId> AgreementContract::register_allocation(
    std::uint64_t block_height, const auction::MarketSnapshot& snapshot,
    const auction::RoundResult& result, std::optional<auction::ResourceId> tee_resource) {
  std::vector<ContractId> ids;
  ids.reserve(result.matches.size());
  for (std::size_t i = 0; i < result.matches.size(); ++i) {
    const auction::Match& m = result.matches[i];
    const auction::Request& r = snapshot.requests[m.request];
    Agreement a;
    a.id = ContractId(next_id_++);
    a.block_height = block_height;
    a.match_index = i;
    a.client = r.client;
    a.provider = snapshot.offers[m.offer].provider;
    a.payment = m.payment;
    a.requires_tee =
        tee_resource.has_value() && r.resources.get(*tee_resource) > 0.0;
    agreements_.emplace(a.id, a);
    ids.push_back(a.id);
  }
  return ids;
}

Agreement* AgreementContract::lookup(ContractId id) {
  const auto it = agreements_.find(id);
  return it == agreements_.end() ? nullptr : &it->second;
}

bool AgreementContract::accept(ContractId id, ClientId caller) {
  Agreement* a = lookup(id);
  if (a == nullptr || a->client != caller || a->state != AgreementState::kProposed) return false;
  a->state = AgreementState::kActive;
  reputation_.record_accept(caller);
  return true;
}

bool AgreementContract::deny(ContractId id, ClientId caller) {
  Agreement* a = lookup(id);
  if (a == nullptr || a->client != caller || a->state != AgreementState::kProposed) return false;
  a->state = AgreementState::kDenied;
  reputation_.record_deny(caller);
  pending_resubmissions_.push_back(a->provider);
  return true;
}

bool AgreementContract::complete(ContractId id, ProviderId caller) {
  Agreement* a = lookup(id);
  if (a == nullptr || a->provider != caller || a->state != AgreementState::kActive) return false;
  a->state = AgreementState::kCompleted;
  return true;
}

std::optional<Agreement> AgreementContract::find(ContractId id) const {
  const auto it = agreements_.find(id);
  if (it == agreements_.end()) return std::nullopt;
  return it->second;
}

void ReputationRegistry::encode_state(ByteWriter& w) const {
  const std::vector<ClientId> keys =
      sorted_keys(entries_, [](ClientId a, ClientId b) { return a.value() < b.value(); });
  w.write_u64(keys.size());
  for (const ClientId client : keys) {
    const Entry& e = entries_.at(client);
    w.write_u64(client.value());
    w.write_double(e.score);
    w.write_u64(e.denial_streak);
  }
}

void ReputationRegistry::restore_state(ByteReader& r) {
  entries_.clear();
  const std::uint64_t count = r.read_u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const ClientId client(r.read_u64());
    Entry e{.score = r.read_double(),
            .denial_streak = static_cast<std::size_t>(r.read_u64())};
    entries_.emplace(client, e);
  }
}

void AgreementContract::encode_state(ByteWriter& w) const {
  const std::vector<ContractId> ids =
      sorted_keys(agreements_, [](ContractId a, ContractId b) { return a.value() < b.value(); });
  w.write_u64(ids.size());
  for (const ContractId id : ids) {
    const Agreement& a = agreements_.at(id);
    w.write_u64(a.id.value());
    w.write_u64(a.block_height);
    w.write_u64(a.match_index);
    w.write_u64(a.client.value());
    w.write_u64(a.provider.value());
    w.write_double(a.payment);
    w.write_u8(a.requires_tee ? 1 : 0);
    w.write_u8(static_cast<std::uint8_t>(a.state));
  }
  w.write_u64(pending_resubmissions_.size());
  for (const ProviderId p : pending_resubmissions_) w.write_u64(p.value());
  w.write_u64(next_id_);
  reputation_.encode_state(w);
}

void AgreementContract::restore_state(ByteReader& r) {
  agreements_.clear();
  pending_resubmissions_.clear();
  const std::uint64_t num_agreements = r.read_u64();
  for (std::uint64_t i = 0; i < num_agreements; ++i) {
    Agreement a;
    a.id = ContractId(r.read_u64());
    a.block_height = r.read_u64();
    a.match_index = static_cast<std::size_t>(r.read_u64());
    a.client = ClientId(r.read_u64());
    a.provider = ProviderId(r.read_u64());
    a.payment = r.read_double();
    a.requires_tee = r.read_u8() != 0;
    a.state = static_cast<AgreementState>(r.read_u8());
    agreements_.emplace(a.id, a);
  }
  const std::uint64_t num_pending = r.read_u64();
  for (std::uint64_t i = 0; i < num_pending; ++i) {
    pending_resubmissions_.emplace_back(r.read_u64());
  }
  next_id_ = r.read_u64();
  reputation_.restore_state(r);
}

}  // namespace decloud::ledger

#include "ledger/contract.hpp"

#include <algorithm>

#include "auction/resource.hpp"

namespace decloud::ledger {

void ReputationRegistry::record_accept(ClientId client) {
  auto& e = entries_.try_emplace(client, Entry{config_.initial}).first->second;
  e.denial_streak = 0;
  e.score = std::min(config_.max_score, e.score + config_.recovery);
}

void ReputationRegistry::record_deny(ClientId client) {
  auto& e = entries_.try_emplace(client, Entry{config_.initial}).first->second;
  ++e.denial_streak;
  // Successive rejections bite harder: the factor applies once per streak
  // step, so two denials in a row cost factor², three cost factor³, …
  for (std::size_t i = 0; i < e.denial_streak; ++i) e.score *= config_.denial_factor;
  if (e.score < 0.0) e.score = 0.0;
}

void ReputationRegistry::record_withhold(ClientId client) {
  auto& e = entries_.try_emplace(client, Entry{config_.initial}).first->second;
  e.score *= config_.withhold_factor;
  if (e.score < 0.0) e.score = 0.0;
}

double ReputationRegistry::score(ClientId client) const {
  const auto it = entries_.find(client);
  return it == entries_.end() ? config_.initial : it->second.score;
}

std::size_t ReputationRegistry::consecutive_denials(ClientId client) const {
  const auto it = entries_.find(client);
  return it == entries_.end() ? 0 : it->second.denial_streak;
}

void stamp_reputation(auction::MarketSnapshot& snapshot, const ReputationRegistry& registry) {
  for (auto& r : snapshot.requests) r.reputation = registry.score(r.client);
}

std::vector<ContractId> AgreementContract::register_allocation(
    std::uint64_t block_height, const auction::MarketSnapshot& snapshot,
    const auction::RoundResult& result, std::optional<auction::ResourceId> tee_resource) {
  std::vector<ContractId> ids;
  ids.reserve(result.matches.size());
  for (std::size_t i = 0; i < result.matches.size(); ++i) {
    const auction::Match& m = result.matches[i];
    const auction::Request& r = snapshot.requests[m.request];
    Agreement a;
    a.id = ContractId(next_id_++);
    a.block_height = block_height;
    a.match_index = i;
    a.client = r.client;
    a.provider = snapshot.offers[m.offer].provider;
    a.payment = m.payment;
    a.requires_tee =
        tee_resource.has_value() && r.resources.get(*tee_resource) > 0.0;
    agreements_.emplace(a.id, a);
    ids.push_back(a.id);
  }
  return ids;
}

Agreement* AgreementContract::lookup(ContractId id) {
  const auto it = agreements_.find(id);
  return it == agreements_.end() ? nullptr : &it->second;
}

bool AgreementContract::accept(ContractId id, ClientId caller) {
  Agreement* a = lookup(id);
  if (a == nullptr || a->client != caller || a->state != AgreementState::kProposed) return false;
  a->state = AgreementState::kActive;
  reputation_.record_accept(caller);
  return true;
}

bool AgreementContract::deny(ContractId id, ClientId caller) {
  Agreement* a = lookup(id);
  if (a == nullptr || a->client != caller || a->state != AgreementState::kProposed) return false;
  a->state = AgreementState::kDenied;
  reputation_.record_deny(caller);
  pending_resubmissions_.push_back(a->provider);
  return true;
}

bool AgreementContract::complete(ContractId id, ProviderId caller) {
  Agreement* a = lookup(id);
  if (a == nullptr || a->provider != caller || a->state != AgreementState::kActive) return false;
  a->state = AgreementState::kCompleted;
  return true;
}

std::optional<Agreement> AgreementContract::find(ContractId id) const {
  const auto it = agreements_.find(id);
  if (it == agreements_.end()) return std::nullopt;
  return it->second;
}

}  // namespace decloud::ledger

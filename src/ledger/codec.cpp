#include "ledger/codec.hpp"

#include "common/byte_buffer.hpp"
#include "common/ensure.hpp"

namespace decloud::ledger {

namespace {

constexpr std::uint8_t kRequestTag = 0x01;
constexpr std::uint8_t kOfferTag = 0x02;
constexpr std::uint8_t kAllocationTag = 0x03;

void write_resources(ByteWriter& w, const auction::ResourceVector& v) {
  w.write_u32(static_cast<std::uint32_t>(v.entries().size()));
  for (const auto& e : v.entries()) {
    w.write_u32(e.type);
    w.write_double(e.amount);
  }
}

auction::ResourceVector read_resources(ByteReader& r) {
  const std::uint32_t n = r.read_u32();
  DECLOUD_EXPECTS_MSG(n <= 1 << 20, "implausible resource vector size");
  std::vector<auction::ResourceAmount> entries;
  entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auction::ResourceId type = r.read_u32();
    const double amount = r.read_double();
    entries.push_back({type, amount});
  }
  return auction::ResourceVector(std::move(entries));
}

void write_location(ByteWriter& w, const std::optional<auction::Location>& loc) {
  w.write_u8(loc ? 1 : 0);
  if (loc) {
    w.write_double(loc->x);
    w.write_double(loc->y);
  }
}

std::optional<auction::Location> read_location(ByteReader& r) {
  if (r.read_u8() == 0) return std::nullopt;
  auction::Location loc;
  loc.x = r.read_double();
  loc.y = r.read_double();
  return loc;
}

}  // namespace

std::vector<std::uint8_t> encode_request(const auction::Request& r) {
  ByteWriter w;
  w.write_u8(kRequestTag);
  w.write_u64(r.id.value());
  w.write_u64(r.client.value());
  w.write_i64(r.submitted);
  write_resources(w, r.resources);
  write_resources(w, r.significance);
  w.write_i64(r.window_start);
  w.write_i64(r.window_end);
  w.write_i64(r.duration);
  w.write_double(r.bid);
  write_location(w, r.location);
  w.write_double(r.reputation);
  return std::move(w).take();
}

auction::Request decode_request(std::span<const std::uint8_t> bytes) {
  ByteReader reader(bytes);
  DECLOUD_EXPECTS_MSG(reader.read_u8() == kRequestTag, "not a request payload");
  auction::Request r;
  r.id = RequestId(reader.read_u64());
  r.client = ClientId(reader.read_u64());
  r.submitted = reader.read_i64();
  r.resources = read_resources(reader);
  r.significance = read_resources(reader);
  r.window_start = reader.read_i64();
  r.window_end = reader.read_i64();
  r.duration = reader.read_i64();
  r.bid = reader.read_double();
  r.location = read_location(reader);
  r.reputation = reader.read_double();
  DECLOUD_EXPECTS_MSG(reader.exhausted(), "trailing bytes after request");
  return r;
}

std::vector<std::uint8_t> encode_offer(const auction::Offer& o) {
  ByteWriter w;
  w.write_u8(kOfferTag);
  w.write_u64(o.id.value());
  w.write_u64(o.provider.value());
  w.write_i64(o.submitted);
  write_resources(w, o.resources);
  w.write_i64(o.window_start);
  w.write_i64(o.window_end);
  w.write_double(o.bid);
  write_location(w, o.location);
  w.write_double(o.min_reputation);
  return std::move(w).take();
}

auction::Offer decode_offer(std::span<const std::uint8_t> bytes) {
  ByteReader reader(bytes);
  DECLOUD_EXPECTS_MSG(reader.read_u8() == kOfferTag, "not an offer payload");
  auction::Offer o;
  o.id = OfferId(reader.read_u64());
  o.provider = ProviderId(reader.read_u64());
  o.submitted = reader.read_i64();
  o.resources = read_resources(reader);
  o.window_start = reader.read_i64();
  o.window_end = reader.read_i64();
  o.bid = reader.read_double();
  o.location = read_location(reader);
  o.min_reputation = reader.read_double();
  DECLOUD_EXPECTS_MSG(reader.exhausted(), "trailing bytes after offer");
  return o;
}

std::vector<std::uint8_t> encode_allocation(const auction::RoundResult& result) {
  ByteWriter w;
  w.write_u8(kAllocationTag);
  w.write_u32(static_cast<std::uint32_t>(result.matches.size()));
  for (const auto& m : result.matches) {
    w.write_u64(m.request);
    w.write_u64(m.offer);
    w.write_double(m.fraction);
    w.write_double(m.payment);
    w.write_double(m.unit_price);
    write_resources(w, m.granted);
  }
  w.write_u64(result.tentative_trades);
  w.write_u64(result.reduced_trades);
  w.write_double(result.welfare);
  w.write_u32(static_cast<std::uint32_t>(result.clearing_prices.size()));
  for (const double p : result.clearing_prices) w.write_double(p);
  return std::move(w).take();
}

auction::RoundResult decode_allocation(std::span<const std::uint8_t> bytes,
                                       std::size_t num_requests, std::size_t num_offers) {
  ByteReader reader(bytes);
  DECLOUD_EXPECTS_MSG(reader.read_u8() == kAllocationTag, "not an allocation payload");
  auction::RoundResult result;
  result.payment_by_request.assign(num_requests, 0.0);
  result.revenue_by_offer.assign(num_offers, 0.0);
  const std::uint32_t n = reader.read_u32();
  DECLOUD_EXPECTS_MSG(n <= num_requests, "more matches than requests");
  for (std::uint32_t i = 0; i < n; ++i) {
    auction::Match m;
    m.request = reader.read_u64();
    m.offer = reader.read_u64();
    m.fraction = reader.read_double();
    m.payment = reader.read_double();
    m.unit_price = reader.read_double();
    m.granted = read_resources(reader);
    DECLOUD_EXPECTS_MSG(m.request < num_requests && m.offer < num_offers,
                        "match references out-of-range participant");
    result.payment_by_request[m.request] += m.payment;
    result.revenue_by_offer[m.offer] += m.payment;
    result.total_payments += m.payment;
    result.total_revenue += m.payment;
    result.matches.push_back(m);
  }
  result.tentative_trades = reader.read_u64();
  result.reduced_trades = reader.read_u64();
  result.welfare = reader.read_double();
  const std::uint32_t np = reader.read_u32();
  DECLOUD_EXPECTS_MSG(np <= 1 << 20, "implausible clearing price count");
  for (std::uint32_t i = 0; i < np; ++i) result.clearing_prices.push_back(reader.read_double());
  DECLOUD_EXPECTS_MSG(reader.exhausted(), "trailing bytes after allocation");
  return result;
}

}  // namespace decloud::ledger

#include "ledger/block.hpp"

#include "common/byte_buffer.hpp"

namespace decloud::ledger {

std::vector<std::uint8_t> BlockHeader::bytes() const {
  ByteWriter w;
  w.write_u64(height);
  w.write_bytes({prev_hash.data(), prev_hash.size()});
  w.write_i64(timestamp);
  w.write_bytes({bids_root.data(), bids_root.size()});
  return std::move(w).take();
}

crypto::Digest bids_merkle_root(const std::vector<SealedBid>& bids) {
  std::vector<crypto::Digest> leaves;
  leaves.reserve(bids.size());
  for (const auto& b : bids) leaves.push_back(b.digest());
  return crypto::MerkleTree(std::move(leaves)).root();
}

bool validate_preamble(const BlockPreamble& preamble, unsigned difficulty_bits) {
  const auto header_bytes = preamble.header.bytes();
  if (!crypto::verify_pow({header_bytes.data(), header_bytes.size()}, difficulty_bits,
                          preamble.pow)) {
    return false;
  }
  if (bids_merkle_root(preamble.sealed_bids) != preamble.header.bids_root) return false;
  for (const auto& bid : preamble.sealed_bids) {
    if (!verify_sealed_bid(bid)) return false;
  }
  return true;
}

crypto::Digest Blockchain::tip_hash() const {
  if (blocks_.empty()) return base_hash_;
  return blocks_.back().preamble.hash();
}

void Blockchain::restore_checkpoint(std::uint64_t height, const crypto::Digest& tip_hash) {
  blocks_.clear();
  base_height_ = height;
  base_hash_ = tip_hash;
}

bool Blockchain::append(Block block, unsigned difficulty_bits) {
  if (block.preamble.header.height != height()) return false;
  if (block.preamble.header.prev_hash != tip_hash()) return false;
  if (!validate_preamble(block.preamble, difficulty_bits)) return false;
  blocks_.push_back(std::move(block));
  return true;
}

}  // namespace decloud::ledger

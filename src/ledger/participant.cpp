#include "ledger/participant.hpp"

#include "ledger/codec.hpp"

namespace decloud::ledger {

SealedBid Participant::seal(BidKind kind, std::vector<std::uint8_t> plaintext, Rng& rng) {
  crypto::SymmetricKey key{};
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_below(256));
  crypto::Nonce nonce{};
  for (auto& b : nonce) b = static_cast<std::uint8_t>(rng.next_below(256));

  SealedBid bid = seal_bid(kind, {plaintext.data(), plaintext.size()}, key, nonce, keys_);
  pending_.emplace(bid.digest(), key);
  return bid;
}

SealedBid Participant::submit_request(const auction::Request& r, Rng& rng) {
  return seal(BidKind::kRequest, encode_request(r), rng);
}

SealedBid Participant::submit_offer(const auction::Offer& o, Rng& rng) {
  return seal(BidKind::kOffer, encode_offer(o), rng);
}

std::vector<KeyReveal> Participant::on_preamble(const BlockPreamble& preamble) {
  std::vector<KeyReveal> reveals;
  for (const auto& bid : preamble.sealed_bids) {
    const crypto::Digest d = bid.digest();
    if (const auto it = pending_.find(d); it != pending_.end()) {
      reveals.push_back({.bid_digest = d, .key = it->second});
      pending_.erase(it);
    }
  }
  return reveals;
}

}  // namespace decloud::ledger

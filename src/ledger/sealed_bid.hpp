// Sealed bids — Section III-A of the paper.
//
// "Participants encrypt [bids] entirely with temporary keys prior to
// submission."  A sealed bid is the ChaCha20 ciphertext of the canonical
// bid bytes under a fresh temporary key, signed by the participant's
// long-term key so the miner can attribute it and detect tampering.  The
// temporary key is broadcast only after the participant has seen its bid
// inside a valid preamble.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/chacha20.hpp"
#include "crypto/sha256.hpp"
#include "crypto/signature.hpp"

namespace decloud::ledger {

/// The kind of plaintext a sealed bid carries.
enum class BidKind : std::uint8_t { kRequest = 1, kOffer = 2 };

/// A sealed (encrypted, signed) bid as it travels to the miners.
struct SealedBid {
  BidKind kind = BidKind::kRequest;
  /// ChaCha20 ciphertext of the canonical bid bytes.
  std::vector<std::uint8_t> ciphertext;
  /// Public nonce used for the encryption.
  crypto::Nonce nonce{};
  /// The submitter's long-term public key (its fingerprint is the ledger
  /// address).
  crypto::PublicKey sender;
  /// Signature over (kind ‖ nonce ‖ ciphertext) with the long-term key.
  crypto::Signature signature;

  /// Digest identifying this sealed bid (the Merkle leaf for the preamble).
  [[nodiscard]] crypto::Digest digest() const;

  /// Canonical signed payload bytes.
  [[nodiscard]] std::vector<std::uint8_t> signed_payload() const;
};

/// A temporary key disclosure: "participants broadcast their temporary
/// keys to the network" once the preamble is valid.
struct KeyReveal {
  crypto::Digest bid_digest{};  ///< which sealed bid this key opens
  crypto::SymmetricKey key{};
};

/// Seals plaintext bid bytes: encrypts with `key`/`nonce` and signs with
/// the participant's long-term key.
[[nodiscard]] SealedBid seal_bid(BidKind kind, std::span<const std::uint8_t> plaintext,
                                 const crypto::SymmetricKey& key, const crypto::Nonce& nonce,
                                 const crypto::KeyPair& signer);

/// Verifies the signature of a sealed bid.
[[nodiscard]] bool verify_sealed_bid(const SealedBid& bid);

/// Opens a sealed bid with a revealed key.  Returns nullopt if the key does
/// not decrypt to a payload of the declared kind (wrong key / tampering —
/// decode errors are contained, not propagated).
[[nodiscard]] std::optional<std::vector<std::uint8_t>> open_bid(const SealedBid& bid,
                                                                const crypto::SymmetricKey& key);

}  // namespace decloud::ledger

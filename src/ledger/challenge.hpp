// TrueBit-style challenge game — the verifier's-dilemma mitigation the
// paper points to in Section VI.
//
// Re-running every allocation on every miner does not scale and gives
// miners no direct incentive to verify ("the verifier's dilemma").
// TrueBit's answer, which the paper plans to incorporate, replaces
// collective verification with *sampled challengers*: a pseudo-random
// subset of miners (drawn from the block hash, so the producer cannot
// grind the selection) re-runs the allocation; a challenger that proves a
// mismatch collects a reward funded by slashing the producer's deposit,
// while false challenges forfeit the challenger's own deposit.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "ledger/miner.hpp"

namespace decloud::ledger {

/// Economic parameters of the game.
struct ChallengeConfig {
  /// Challengers sampled per block (capped at the verifier pool size).
  std::size_t num_challengers = 2;
  /// Deposit the producer stakes per block; slashed on proven fraud.
  Money producer_deposit = 10.0;
  /// Deposit each challenger stakes; forfeited on a false challenge.
  Money challenger_deposit = 1.0;
  /// Share of the slashed producer deposit awarded to the successful
  /// challenger (the remainder is burned, removing collusion incentives).
  double challenger_reward_share = 0.5;
};

/// Outcome of the game for one block.
struct ChallengeOutcome {
  /// Indices (into the verifier pool) of the sampled challengers.
  std::vector<std::size_t> challengers;
  /// True when some challenger proved the body wrong.
  bool fraud_proven = false;
  /// Index of the first successful challenger (valid iff fraud_proven).
  std::size_t winner = 0;
  /// Producer balance delta (negative on slash).
  Money producer_delta = 0.0;
  /// Per-challenger balance deltas, aligned with `challengers`.
  std::vector<Money> challenger_deltas;
  /// Whether the block should be accepted onto the chain.
  [[nodiscard]] bool block_accepted() const { return !fraud_proven; }
};

/// Runs the challenge game: samples challengers from the block evidence,
/// has each re-verify the body, and settles deposits.  `verifier_pool`
/// are the non-producer miners willing to stake.
[[nodiscard]] ChallengeOutcome run_challenge_game(const BlockPreamble& preamble,
                                                  const BlockBody& body,
                                                  const std::vector<Miner>& verifier_pool,
                                                  const ChallengeConfig& config);

/// Samples `k` distinct pool indices pseudo-randomly from the block hash
/// (exposed for tests; deterministic and producer-grind-resistant).
[[nodiscard]] std::vector<std::size_t> sample_challengers(const BlockPreamble& preamble,
                                                          std::size_t pool_size, std::size_t k);

}  // namespace decloud::ledger

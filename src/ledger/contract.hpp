// Smart-contract agreements and the reputation system — Section III-B.
//
// After a block's allocation is accepted by the miners, clients enter
// agreements by calling the contract's `accept` method (or `deny` to
// refuse the suggested match, which notifies the provider to resubmit and
// costs the client reputation: "There is a reputational penalty for
// successive rejections of matches").
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "auction/allocation.hpp"
#include "common/byte_buffer.hpp"
#include "common/types.hpp"

namespace decloud::ledger {

/// Lifecycle of one client↔provider agreement.
enum class AgreementState : std::uint8_t {
  kProposed,   ///< allocation suggested, awaiting the client's decision
  kActive,     ///< client accepted; container is to be executed
  kDenied,     ///< client denied; provider must resubmit its offer
  kCompleted,  ///< execution finished and payment settled
};

/// One agreement instance managed by the contract.
struct Agreement {
  ContractId id;
  std::uint64_t block_height = 0;  ///< block the allocation came from
  std::size_t match_index = 0;     ///< match row within that allocation
  ClientId client;
  ProviderId provider;
  Money payment = 0.0;
  /// The client demanded TEE-protected execution (Section II-D); recorded
  /// so the provider's runtime can be audited against it.
  bool requires_tee = false;
  AgreementState state = AgreementState::kProposed;
};

/// Tracks client reputation.  Scores start at `initial`; each denial
/// multiplies the score by `denial_factor` *per consecutive denial streak
/// length* (successive rejections hurt progressively), and an accepted
/// agreement resets the streak and recovers `recovery` additively up to
/// the cap.
/// Reputation parameters (top-level so brace-init defaults work as a
/// default argument).
struct ReputationConfig {
  double initial = 1.0;
  double denial_factor = 0.8;
  double recovery = 0.05;
  double max_score = 1.0;
  /// Multiplicative penalty for withholding a key reveal (the bid was
  /// included in a preamble but its keys never came — wasted miner work).
  /// Harsher than one denial: withholding sabotages the whole round.
  double withhold_factor = 0.5;
};

class ReputationRegistry {
 public:
  using Config = ReputationConfig;

  explicit ReputationRegistry(Config config = {}) : config_(config) {}

  void record_accept(ClientId client);
  void record_deny(ClientId client);
  /// Withholding penalty: one multiplicative `withhold_factor` hit, no
  /// streak escalation (each round charges at most once per sender).
  void record_withhold(ClientId client);

  [[nodiscard]] double score(ClientId client) const;
  [[nodiscard]] std::size_t consecutive_denials(ClientId client) const;

  /// Snapshot/restore of the score table (entries in sorted ClientId
  /// order, so the bytes are deterministic despite the unordered map).
  /// Config is NOT serialized — the restoring side reconstructs it from
  /// the run configuration and the fingerprint check catches drift.
  void encode_state(ByteWriter& w) const;
  void restore_state(ByteReader& r);

 private:
  struct Entry {
    double score;
    std::size_t denial_streak = 0;
  };

  Config config_;
  std::unordered_map<ClientId, Entry> entries_;
};

/// Stamps every request in the snapshot with its client's current
/// reputation score (Section III-B).  The miner computing a block's
/// allocation applies this against the on-chain registry, so reputations
/// are consensus state rather than self-reported fields; offers may then
/// gate admission via Offer::min_reputation.
void stamp_reputation(auction::MarketSnapshot& snapshot, const ReputationRegistry& registry);

/// The DeCloud agreement contract.  One instance per deployment; holds the
/// agreements of all settled blocks.  Methods mirror the smart-contract
/// interface of the paper (`accept`, `deny`), including the on-chain checks
/// "that the allocation was generated, it is contained in the block that
/// the client references, and the client's ID is associated with the
/// particular provider".
class AgreementContract {
 public:
  explicit AgreementContract(ReputationRegistry::Config reputation = {})
      : reputation_(reputation) {}

  /// Registers the allocation of a freshly accepted block, creating one
  /// Proposed agreement per match.  Returns the new contract ids, aligned
  /// with the matches.  `tee_resource` names the market's "sgx"/TEE
  /// resource type (if any): requests demanding it get requires_tee set on
  /// their agreement.
  std::vector<ContractId> register_allocation(
      std::uint64_t block_height, const auction::MarketSnapshot& snapshot,
      const auction::RoundResult& result,
      std::optional<auction::ResourceId> tee_resource = std::nullopt);

  /// The `accept` method.  Verifies the caller is the client of the
  /// referenced agreement and the agreement is still Proposed; activates
  /// it and records the acceptance in the reputation system.  Returns
  /// false (no state change) when any check fails.
  bool accept(ContractId id, ClientId caller);

  /// The `deny` method.  Same checks as accept; marks the agreement Denied,
  /// applies the reputational penalty, and flags the provider's offer for
  /// resubmission.
  bool deny(ContractId id, ClientId caller);

  /// Marks an Active agreement Completed (called at the end of execution).
  bool complete(ContractId id, ProviderId caller);

  /// Debits `address` for withholding a key reveal (LedgerProtocol calls
  /// this with the sealed bid's ledger address — the plaintext identity of
  /// an unopened bid is unknowable by construction).
  void penalize_withhold(ClientId address) { reputation_.record_withhold(address); }

  [[nodiscard]] std::optional<Agreement> find(ContractId id) const;
  [[nodiscard]] const ReputationRegistry& reputation() const { return reputation_; }
  /// Providers whose matches were denied and must resubmit offers.
  [[nodiscard]] const std::vector<ProviderId>& pending_resubmissions() const {
    return pending_resubmissions_;
  }

  /// Snapshot/restore of the full contract state: agreements (sorted by
  /// ContractId), pending resubmissions, the id counter, and the
  /// reputation registry.
  void encode_state(ByteWriter& w) const;
  void restore_state(ByteReader& r);

 private:
  Agreement* lookup(ContractId id);

  std::unordered_map<ContractId, Agreement> agreements_;
  std::vector<ProviderId> pending_resubmissions_;
  ReputationRegistry reputation_;
  std::uint64_t next_id_ = 1;
};

}  // namespace decloud::ledger

// Blocks and the blockchain — Section II-A / III of the paper.
//
// A DeCloud block is split in two parts matching the two protocol phases:
//
//   * the *preamble* — previous-block reference, PoW solution and the
//     sealed (still encrypted) bids.  Broadcast as soon as PoW is solved;
//   * the *body* — the set of revealed temporary keys plus the miner's
//     allocation suggestion.  Broadcast after key disclosure; other miners
//     verify it by replaying the (deterministic) auction.
#pragma once

#include <cstdint>
#include <vector>

#include "auction/allocation.hpp"
#include "common/types.hpp"
#include "crypto/merkle.hpp"
#include "crypto/pow.hpp"
#include "ledger/sealed_bid.hpp"

namespace decloud::ledger {

/// Fixed part of the block committing to its content.
struct BlockHeader {
  std::uint64_t height = 0;
  crypto::Digest prev_hash{};
  Time timestamp = 0;
  /// Merkle root over the sealed-bid digests — lets anyone audit that the
  /// miner neither dropped nor injected bids after PoW.
  crypto::Digest bids_root{};

  /// Canonical bytes of the header (the PoW pre-image).
  [[nodiscard]] std::vector<std::uint8_t> bytes() const;
};

/// Phase-1 output: header + PoW + sealed bids.
struct BlockPreamble {
  BlockHeader header;
  crypto::PowSolution pow;
  std::vector<SealedBid> sealed_bids;

  /// The block hash — the PoW digest of the header.  Doubles as the
  /// verifiable-randomization evidence for the allocation.
  [[nodiscard]] const crypto::Digest& hash() const { return pow.digest; }
};

/// Phase-2 output: revealed keys + allocation suggestion.
struct BlockBody {
  std::vector<KeyReveal> revealed_keys;
  /// Canonical encoding of the miner's allocation suggestion
  /// (ledger::encode_allocation).
  std::vector<std::uint8_t> allocation;
};

/// A complete block.
struct Block {
  BlockPreamble preamble;
  BlockBody body;
};

/// Computes the Merkle root over sealed-bid digests (all-zero for none).
[[nodiscard]] crypto::Digest bids_merkle_root(const std::vector<SealedBid>& bids);

/// Validates a preamble: PoW meets `difficulty_bits` over the header bytes,
/// the Merkle root matches the carried bids, and every sealed bid's
/// signature verifies.
[[nodiscard]] bool validate_preamble(const BlockPreamble& preamble, unsigned difficulty_bits);

/// An append-only chain of blocks with genesis handling.
///
/// Supports *checkpoint truncation* for snapshot/restore: a chain restored
/// from a (height, tip hash) checkpoint behaves exactly like the original
/// for everything the protocol reads going forward — height(), tip_hash(),
/// linkage checks on append() — without carrying the old block bodies
/// (nothing in EngineReport / journal / metrics reads them after the round
/// that produced them).
class Blockchain {
 public:
  /// Hash of the latest block (all-zero before any block exists).
  [[nodiscard]] crypto::Digest tip_hash() const;
  [[nodiscard]] std::uint64_t height() const { return base_height_ + blocks_.size(); }
  /// Blocks appended since the checkpoint (all of them when base is 0).
  [[nodiscard]] const std::vector<Block>& blocks() const { return blocks_; }
  [[nodiscard]] std::uint64_t base_height() const { return base_height_; }

  /// Appends a block after checking linkage (prev_hash/height) and PoW.
  /// Returns false (and leaves the chain untouched) on any mismatch.
  bool append(Block block, unsigned difficulty_bits);

  /// Resets to a checkpoint: the chain reports `height` and `tip_hash`
  /// with no block bodies retained.  Only valid on an empty chain or
  /// during restore; discards any held blocks.
  void restore_checkpoint(std::uint64_t height, const crypto::Digest& tip_hash);

 private:
  std::vector<Block> blocks_;
  std::uint64_t base_height_ = 0;
  crypto::Digest base_hash_{};
};

}  // namespace decloud::ledger

// In-process orchestration of the two-phase bid exposure protocol
// (Fig. 2 of the paper), without a network between the parties.  The
// latency-modelled variant lives in src/sim; this class is the reference
// sequence of protocol steps both share:
//
//   1. participants seal bids and submit them to the mempool;
//   2. miner A assembles a preamble over the pooled bids and solves PoW;
//   3. participants validate the preamble and broadcast temporary keys for
//      their included bids;
//   4. miner A decrypts, runs the auction seeded by the block hash, and
//      publishes the body (keys + allocation suggestion);
//   5. the other miners re-run the auction and accept or reject the block;
//   6. on acceptance the block is appended and agreements are registered
//      with the smart contract; clients then accept/deny their matches.
#pragma once

#include <vector>

#include "ledger/contract.hpp"
#include "ledger/miner.hpp"
#include "ledger/participant.hpp"

namespace decloud::ledger {

/// The outcome of one protocol round.
struct RoundOutcome {
  bool block_accepted = false;
  /// Votes of the verifier miners (true = accept), aligned with the
  /// verifier list given to run_round.
  std::vector<bool> verifier_votes;
  /// The mined block (valid only when block_accepted).
  Block block;
  /// The decrypted market snapshot of the round.
  auction::MarketSnapshot snapshot;
  /// The decoded allocation.
  auction::RoundResult result;
  /// Contract ids created for the matches.
  std::vector<ContractId> agreements;
};

/// A mempool of sealed bids awaiting inclusion.
class Mempool {
 public:
  void submit(SealedBid bid) { pool_.push_back(std::move(bid)); }
  [[nodiscard]] std::size_t size() const { return pool_.size(); }
  /// Drains up to `max_bids` bids in submission order.
  [[nodiscard]] std::vector<SealedBid> drain(std::size_t max_bids = SIZE_MAX);

 private:
  std::vector<SealedBid> pool_;
};

/// Reference protocol driver: one producer miner, any number of verifier
/// miners, a shared blockchain and agreement contract.
class LedgerProtocol {
 public:
  explicit LedgerProtocol(ConsensusParams params,
                          ReputationRegistry::Config reputation = {})
      : params_(std::move(params)), producer_(params_), contract_(reputation) {}

  [[nodiscard]] Mempool& mempool() { return mempool_; }
  [[nodiscard]] const Blockchain& chain() const { return chain_; }
  [[nodiscard]] AgreementContract& contract() { return contract_; }
  [[nodiscard]] const ConsensusParams& params() const { return params_; }

  /// Runs one full round: drains the mempool, mines, collects key reveals
  /// from `participants`, computes the allocation, has every verifier in
  /// `verifiers` vote, and appends the block iff all votes pass.
  /// Registration with the agreement contract happens on acceptance.
  RoundOutcome run_round(std::vector<Participant*> participants,
                         const std::vector<Miner>& verifiers, Time now);

  /// Attaches an observability sink (not owned, may be null).  Each round
  /// then records phase spans (pow, key_reveal, allocation, verify,
  /// append) and protocol counters; the outcome is unaffected.
  void set_sink(obs::MetricsSink* sink) { sink_ = sink; }
  [[nodiscard]] obs::MetricsSink* sink() const { return sink_; }

 private:
  ConsensusParams params_;
  Miner producer_;
  Mempool mempool_;
  Blockchain chain_;
  AgreementContract contract_;
  obs::MetricsSink* sink_ = nullptr;
};

}  // namespace decloud::ledger

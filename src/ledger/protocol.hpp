// In-process orchestration of the two-phase bid exposure protocol
// (Fig. 2 of the paper), without a network between the parties.  The
// latency-modelled variant lives in src/sim; this class is the reference
// sequence of protocol steps both share:
//
//   1. participants seal bids and submit them to the mempool;
//   2. miner A assembles a preamble over the pooled bids and solves PoW;
//   3. participants validate the preamble and broadcast temporary keys for
//      their included bids;
//   4. miner A decrypts, runs the auction seeded by the block hash, and
//      publishes the body (keys + allocation suggestion);
//   5. the other miners re-run the auction and accept or reject the block;
//   6. on acceptance the block is appended and agreements are registered
//      with the smart contract; clients then accept/deny their matches.
//
// The round degrades gracefully instead of assuming honesty: sealed bids
// with bad signatures are dropped before mining, withheld key reveals
// exclude only the affected bids (and cost their sender reputation),
// acceptance needs a configurable vote quorum rather than unanimity, and a
// rejected block triggers a penalized, bounded re-mine with the faulty
// inputs excluded.  A fault::FaultInjector drives the misbehaviour
// deterministically; without one the round is the pure happy path.
#pragma once

#include <initializer_list>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "fault/injector.hpp"
#include "ledger/contract.hpp"
#include "ledger/miner.hpp"
#include "ledger/participant.hpp"

namespace decloud::journal {
class Journal;
}

namespace decloud::ledger {

/// Fault and recovery bookkeeping of one round (all zero on the happy
/// path).  Everything here feeds outcome_json(), so chaos runs can be
/// byte-compared like clean ones.
struct RoundFaultReport {
  /// Sealed bids dropped before mining because their signature failed.
  std::size_t bids_invalid_dropped = 0;
  /// Participants that withheld their key reveal (injected byzantine).
  std::size_t reveals_withheld = 0;
  /// Sealed bids excluded from the final attempt for missing/bad keys.
  std::size_t bids_unopened = 0;
  /// Verifier votes inverted by the fault injector.
  std::size_t dishonest_votes = 0;
  /// Re-mine attempts performed after a rejected block.
  std::size_t remine_attempts = 0;
  /// The producer published a corrupted allocation body (injected).
  bool allocation_corrupted = false;
  /// The producer was penalized for a rejected block this round.
  bool producer_penalized = false;
  /// Ledger addresses debited for withholding, in charge order.
  std::vector<ClientId> penalized;
};

/// The outcome of one protocol round.
struct RoundOutcome {
  bool block_accepted = false;
  /// Votes of the verifier miners (true = accept), aligned with the
  /// verifier list given to run_round; from the LAST attempt of the round.
  std::vector<bool> verifier_votes;
  /// The mined block (valid only when block_accepted).
  Block block;
  /// The decrypted market snapshot of the round.
  auction::MarketSnapshot snapshot;
  /// The decoded allocation.
  auction::RoundResult result;
  /// Contract ids created for the matches.
  std::vector<ContractId> agreements;
  /// What went wrong and how the round recovered.
  RoundFaultReport fault;
};

/// Canonical serialization of a round outcome: every vote, match, payment
/// (%.17g) and fault counter.  Two rounds with byte-equal JSON went the
/// same way — the string the chaos determinism tests compare.
[[nodiscard]] std::string outcome_json(const RoundOutcome& outcome);

/// The on-ledger address of a long-term key: the first 8 bytes of its
/// fingerprint folded into a ClientId.  Lets the contract penalize the
/// sender of a bid that never opened (its plaintext identity is unknown by
/// construction — the ciphertext never decrypted).
[[nodiscard]] ClientId ledger_address(const crypto::PublicKey& sender);

/// A mempool of sealed bids awaiting inclusion.  Duplicate sealed-bid ids
/// (by digest) are refused at submission — a double-submitted bid would
/// otherwise be double-included in the preamble.
class Mempool {
 public:
  enum class Admission : std::uint8_t { kAccepted, kDuplicate };

  /// Admits `bid` unless an identical one (same digest) is already
  /// pooled.  Draining forgets the digests: a bid may resubmit in a later
  /// round, it just cannot appear twice in one preamble.
  Admission submit(SealedBid bid);
  [[nodiscard]] std::size_t size() const { return pool_.size(); }
  /// Drains up to `max_bids` bids in submission order.
  [[nodiscard]] std::vector<SealedBid> drain(std::size_t max_bids = SIZE_MAX);

 private:
  std::vector<SealedBid> pool_;
  // Digests of the pooled bids.  Membership checks only — never iterated
  // (iteration order of an unordered container is not deterministic).
  std::unordered_set<crypto::Digest, crypto::DigestHash> digests_;
};

/// Reference protocol driver: one producer miner, any number of verifier
/// miners, a shared blockchain and agreement contract.
class LedgerProtocol {
 public:
  explicit LedgerProtocol(ConsensusParams params,
                          ReputationRegistry::Config reputation = {})
      : params_(std::move(params)), producer_(params_), contract_(reputation) {}

  [[nodiscard]] Mempool& mempool() { return mempool_; }
  [[nodiscard]] const Blockchain& chain() const { return chain_; }
  [[nodiscard]] AgreementContract& contract() { return contract_; }
  [[nodiscard]] const ConsensusParams& params() const { return params_; }

  /// Runs one full round: drains the mempool, drops invalid-signature
  /// bids, mines, collects key reveals from `participants` (non-revealing
  /// senders are penalized and their bids excluded), computes the
  /// allocation, has every verifier in `verifiers` vote, and appends the
  /// block iff at least ⌈quorum · verifiers⌉ votes accept.  On rejection
  /// the producer is penalized and the round re-mines up to
  /// ConsensusParams::max_remine_attempts times with the faulty inputs
  /// excluded.  Registration with the agreement contract happens on
  /// acceptance.  Every entry of `participants` must be non-null.
  RoundOutcome run_round(std::span<Participant* const> participants,
                         const std::vector<Miner>& verifiers, Time now);
  /// Brace-list convenience: run_round({&alice, &bob}, …).
  RoundOutcome run_round(std::initializer_list<Participant*> participants,
                         const std::vector<Miner>& verifiers, Time now) {
    return run_round(std::span<Participant* const>(participants.begin(), participants.size()),
                     verifiers, now);
  }

  /// Accepting votes required for `verifiers` voters under `quorum`
  /// (⌈quorum · verifiers⌉, computed with an epsilon so exact thirds do
  /// not round up).  Zero verifiers need zero votes (producer-only mode).
  [[nodiscard]] static std::size_t required_accepts(double quorum, std::size_t verifiers);

  /// Blocks this protocol's producer had rejected (each one a penalty —
  /// wasted PoW plus the mark against the miner).
  [[nodiscard]] std::size_t producer_penalties() const { return producer_penalties_; }

  /// Attaches a deterministic fault injector (not owned, may be null).
  /// `shard` namespaces the fault sites so every shard of an engine sees
  /// an independent slice of the same plan.
  void set_fault_injector(const fault::FaultInjector* injector, std::uint64_t shard = 0) {
    fault_ = injector;
    shard_ = shard;
  }

  /// Attaches a cross-round CandidateIndexCache (not owned, may be null)
  /// to the PRODUCER miner only.  Verifiers always rebuild from scratch,
  /// so every accepted block proves the cached index answered exactly
  /// like a fresh one (Miner::set_index_cache).
  void set_index_cache(auction::CandidateIndexCache* cache) {
    producer_.set_index_cache(cache);
  }

  /// Attaches an observability sink (not owned, may be null).  Each round
  /// then records phase spans (pow, key_reveal, allocation, verify,
  /// append) and protocol counters; the outcome is unaffected.
  void set_sink(obs::MetricsSink* sink) { sink_ = sink; }
  [[nodiscard]] obs::MetricsSink* sink() const { return sink_; }

  /// Attaches the flight recorder (not owned, may be null).  Rounds then
  /// journal block mined/rejected/re-mined, fault firings, and reputation
  /// penalties into `ring`, stamped with the chain height; the outcome is
  /// unaffected.
  void set_journal(journal::Journal* journal, std::size_t ring) {
    journal_ = journal;
    journal_ring_ = ring;
  }

  /// Snapshot/restore of the protocol's durable state: chain checkpoint
  /// (height + tip hash — block bodies are not retained, see
  /// Blockchain::restore_checkpoint), contract state, and the producer
  /// penalty count.  Only valid at a quiescent point: the mempool must be
  /// empty (rounds drain it), which encode asserts.
  void encode_state(ByteWriter& w) const;
  void restore_state(ByteReader& r);

 private:
  ConsensusParams params_;
  Miner producer_;
  Mempool mempool_;
  Blockchain chain_;
  AgreementContract contract_;
  obs::MetricsSink* sink_ = nullptr;
  const fault::FaultInjector* fault_ = nullptr;
  std::uint64_t shard_ = 0;
  std::size_t producer_penalties_ = 0;
  journal::Journal* journal_ = nullptr;
  std::size_t journal_ring_ = 0;
};

}  // namespace decloud::ledger

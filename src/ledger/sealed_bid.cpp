#include "ledger/sealed_bid.hpp"

#include "common/byte_buffer.hpp"

namespace decloud::ledger {

std::vector<std::uint8_t> SealedBid::signed_payload() const {
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(kind));
  w.write_bytes({nonce.data(), nonce.size()});
  w.write_bytes({ciphertext.data(), ciphertext.size()});
  w.write_u64(sender.y);
  return std::move(w).take();
}

crypto::Digest SealedBid::digest() const {
  const auto payload = signed_payload();
  return crypto::Sha256::hash({payload.data(), payload.size()});
}

SealedBid seal_bid(BidKind kind, std::span<const std::uint8_t> plaintext,
                   const crypto::SymmetricKey& key, const crypto::Nonce& nonce,
                   const crypto::KeyPair& signer) {
  SealedBid bid;
  bid.kind = kind;
  bid.nonce = nonce;
  bid.ciphertext = crypto::chacha20_xor(key, nonce, plaintext);
  bid.sender = signer.pub;
  const auto payload = bid.signed_payload();
  bid.signature = crypto::sign(signer.priv, {payload.data(), payload.size()});
  return bid;
}

bool verify_sealed_bid(const SealedBid& bid) {
  const auto payload = bid.signed_payload();
  return crypto::verify(bid.sender, {payload.data(), payload.size()}, bid.signature);
}

std::optional<std::vector<std::uint8_t>> open_bid(const SealedBid& bid,
                                                  const crypto::SymmetricKey& key) {
  auto plaintext = crypto::chacha20_xor(key, bid.nonce, bid.ciphertext);
  if (plaintext.empty()) return std::nullopt;
  // The first plaintext byte is the codec tag; it must agree with the
  // declared kind, which catches a wrong key with high probability before
  // the full decode runs.
  const std::uint8_t tag = plaintext.front();
  if (tag != static_cast<std::uint8_t>(bid.kind)) return std::nullopt;
  return plaintext;
}

}  // namespace decloud::ledger

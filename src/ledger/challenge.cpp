#include "ledger/challenge.hpp"

#include <algorithm>
#include <numeric>

#include "common/ensure.hpp"
#include "common/rng.hpp"

namespace decloud::ledger {

std::vector<std::size_t> sample_challengers(const BlockPreamble& preamble, std::size_t pool_size,
                                            std::size_t k) {
  std::vector<std::size_t> pool(pool_size);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  // Domain-separate from the allocation seed so the lottery and the
  // challenger sample are independent draws of the same evidence.
  Rng rng(Miner::allocation_seed(preamble) ^ 0x7275654269744c4cULL);
  rng.shuffle(pool);
  pool.resize(std::min(k, pool.size()));
  std::sort(pool.begin(), pool.end());
  return pool;
}

ChallengeOutcome run_challenge_game(const BlockPreamble& preamble, const BlockBody& body,
                                    const std::vector<Miner>& verifier_pool,
                                    const ChallengeConfig& config) {
  DECLOUD_EXPECTS(config.challenger_reward_share >= 0.0 &&
                  config.challenger_reward_share <= 1.0);
  ChallengeOutcome outcome;
  outcome.challengers =
      sample_challengers(preamble, verifier_pool.size(), config.num_challengers);
  outcome.challenger_deltas.assign(outcome.challengers.size(), 0.0);

  for (std::size_t i = 0; i < outcome.challengers.size(); ++i) {
    const Miner& challenger = verifier_pool[outcome.challengers[i]];
    const bool body_ok = challenger.verify_body(preamble, body);
    if (!body_ok && !outcome.fraud_proven) {
      // First proven mismatch wins the reward; the proof is the replay
      // itself, checkable by everyone (determinism).
      outcome.fraud_proven = true;
      outcome.winner = i;
      outcome.producer_delta = -config.producer_deposit;
      outcome.challenger_deltas[i] =
          config.challenger_reward_share * config.producer_deposit;
    } else if (!body_ok) {
      // Later challengers confirming the fraud neither gain nor lose.
    }
    // A challenger that finds the body CORRECT simply keeps its deposit —
    // in full TrueBit it would lose it only for submitting a *false*
    // challenge, which an honest verifier never does.
  }
  return outcome;
}

}  // namespace decloud::ledger

// Multi-round market orchestration with resubmission.
//
// Bids that fail to match in one block are not lost: "Participants, whose
// bids were refused, can resubmit their bids" (Section III-B), and offers
// whose agreements are denied are flagged for resubmission by the smart
// contract.  The paper's "online appearance to users" (Section VI) emerges
// from this loop: rounds correspond to block generation, and a bid's
// latency is the number of rounds it waits until allocation.
//
// MarketOrchestrator drives the in-process protocol for many rounds,
// automatically resubmitting unmatched bids (up to a configurable retry
// budget) and recording per-bid allocation latency — the statistic a
// deployment would monitor.
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "auction/candidate_index.hpp"
#include "ledger/protocol.hpp"

namespace decloud::journal {
class Journal;
}

namespace decloud::ledger {

/// Orchestration parameters.
struct MarketConfig {
  /// Rounds a bid stays in the resubmission loop before being abandoned.
  /// 0 means a bid gets exactly ONE round: it is submitted once and, if
  /// unmatched, abandoned immediately (no resubmission).
  std::size_t max_resubmissions = 3;
  /// Verifier miners participating each round.
  std::size_t num_verifiers = 2;
  /// When true the producer miner carries its CandidateIndex across rounds
  /// (auction::CandidateIndexCache) instead of rebuilding each block — the
  /// streaming path's hot-loop saver, safe because cache hits are
  /// bit-identical to fresh builds and verifiers always build fresh.
  /// Thresholds live in consensus.auction.residue.
  bool reuse_candidate_index = true;
  ConsensusParams consensus;
  ReputationConfig reputation;
};

/// Lifetime statistics of the orchestrated market.
struct MarketStats {
  std::size_t rounds = 0;
  std::size_t requests_submitted = 0;
  std::size_t requests_allocated = 0;
  std::size_t requests_abandoned = 0;
  std::size_t offers_submitted = 0;
  /// Offers whose retry budget ran out before they matched (requests have
  /// requests_abandoned; offers age out of the resubmission loop too).
  std::size_t offers_abandoned = 0;
  /// Bids (requests + offers) carried forward into a later round: every
  /// re-queue from an unmatched round, a rejected block, or a denial
  /// refund counts once.  This is the residue the streaming micro-epochs
  /// keep alive between closes (DESIGN.md §3h); its age is bounded by
  /// max_resubmissions.
  std::size_t bids_carried = 0;
  /// Sealed bids the mempool refused as duplicates (double-submission,
  /// whether injected by a fault plan or a buggy client).
  std::size_t bids_duplicate_rejected = 0;
  /// Proposed agreements the client side denied (deny_agreement).  A
  /// denial un-counts the request's allocation — the match never executed
  /// — so requests_allocated and the latency histogram only ever describe
  /// allocations that stood.
  std::size_t agreements_denied = 0;
  Money total_welfare = 0.0;
  Money total_settled = 0.0;
  /// allocation_latency[k] = requests allocated in their (k+1)-th round.
  /// Invariant: Σ allocation_latency == requests_allocated (denials remove
  /// their entry again).
  std::vector<std::size_t> allocation_latency;

  /// requests_allocated / requests_submitted; defined as 0 (not NaN) for
  /// an empty market so dashboards can always render the rate.
  [[nodiscard]] double allocation_rate() const {
    return requests_submitted == 0
               ? 0.0
               : static_cast<double>(requests_allocated) /
                     static_cast<double>(requests_submitted);
  }
};

/// Drives LedgerProtocol across rounds with automatic resubmission.
class MarketOrchestrator {
 public:
  explicit MarketOrchestrator(MarketConfig config);

  /// Enqueues a request for the next round.  Ids must be unique across the
  /// orchestrator's lifetime (they key the latency bookkeeping).
  void submit(const auction::Request& request);
  /// Enqueues an offer for the next round.
  void submit(const auction::Offer& offer);

  /// Runs one block round over everything currently queued; unmatched bids
  /// re-queue automatically until their retry budget runs out.  Returns
  /// the protocol-level outcome.
  RoundOutcome run_round(Time now);

  /// Runs rounds until nothing is queued or `max_rounds` elapsed.
  void drain(std::size_t max_rounds, Time start_time = 0, Seconds round_interval = 600);

  /// Client-side denial of a Proposed agreement from the most recent
  /// accepted round (Section III-B: "deny ... notifies the provider to
  /// resubmit").  Applies the contract's reputational penalty, un-counts
  /// the request's allocation (requests_allocated and its latency-histogram
  /// entry revert; agreements_denied increments), and refunds the
  /// provider's offer its retry attempt — a denial is not the offer's
  /// fault, so its resubmission budget is untouched.  The denied request
  /// itself does NOT re-enter the queue (the client walked away).
  /// Call between rounds; returns false when the contract refuses (wrong
  /// state / unknown id) or the agreement is not from the latest round.
  bool deny_agreement(ContractId id);

  /// Attaches a deterministic fault injector (not owned, may be null);
  /// forwarded to the protocol.  `shard` namespaces the fault sites so an
  /// engine's shards see independent slices of one plan.  Orchestrator-
  /// level faults: sealed-bid corruption, duplicate submission, and
  /// client-side agreement denial.
  void set_fault_injector(const fault::FaultInjector* injector, std::uint64_t shard = 0) {
    fault_ = injector;
    shard_ = shard;
    protocol_.set_fault_injector(injector, shard);
  }

  /// Attaches an observability sink (not owned, may be null); forwarded to
  /// the protocol so every layer of a round reports into the same sink.
  void set_sink(obs::MetricsSink* sink) {
    sink_ = sink;
    protocol_.set_sink(sink);
  }
  [[nodiscard]] obs::MetricsSink* sink() const { return sink_; }

  /// Attaches the flight recorder (not owned, may be null); forwarded to
  /// the protocol.  `ring` is this market's journal ring — an engine
  /// passes shard + 1 (ring 0 is the engine's control ring).  Events are
  /// stamped with the chain height, the market's own logical epoch.
  void set_journal(journal::Journal* journal, std::size_t ring);

  [[nodiscard]] const MarketStats& stats() const { return stats_; }
  [[nodiscard]] const LedgerProtocol& protocol() const { return protocol_; }
  [[nodiscard]] std::size_t queued_bids() const {
    return pending_requests_.size() + pending_offers_.size();
  }

  /// Snapshot/restore of everything a resumed market needs to continue
  /// the exact run: RNG stream position, pending bid queues (in order,
  /// with attempt counts), the latest round's match records (sorted by
  /// ContractId), lifetime stats, and the protocol's durable state.  The
  /// wallet is NOT serialized — its keypair derives deterministically
  /// from the orchestrator's fixed seed, so the constructor recreates it
  /// and restore_state only rewinds the RNG to the snapshotted position.
  /// Participant-side stale temporary keys (withheld reveals) are
  /// deliberately dropped: they can never be revealed again, so they are
  /// inert for every observable output (DESIGN.md §3k).
  void encode_state(ByteWriter& w) const;
  void restore_state(ByteReader& r);

 private:
  struct PendingRequest {
    auction::Request request;
    std::size_t attempts = 0;
  };
  struct PendingOffer {
    auction::Offer offer;
    std::size_t attempts = 0;
  };
  /// Bookkeeping for one match of the latest accepted round, keyed by its
  /// agreement — what deny_agreement needs to revert the stats and refund
  /// the offer.
  struct MatchRecord {
    ClientId client;
    std::uint64_t request_id = 0;
    std::size_t request_attempt = 0;
    auction::Offer offer;          ///< copy, in case it aged out of the queue
    std::size_t offer_attempts = 0;  ///< the offer's attempts when it matched
  };

  MarketConfig config_;
  LedgerProtocol protocol_;
  /// Cross-round index reuse for the producer (see MarketConfig); owned
  /// here so its lifetime covers every round the protocol runs.
  auction::CandidateIndexCache index_cache_;
  Rng rng_{0x6d61726b6574ULL};
  Participant wallet_;  // one custodial wallet signs for the whole market
  std::deque<PendingRequest> pending_requests_;
  std::deque<PendingOffer> pending_offers_;
  std::unordered_map<ContractId, MatchRecord> last_round_matches_;
  MarketStats stats_;
  obs::MetricsSink* sink_ = nullptr;
  const fault::FaultInjector* fault_ = nullptr;
  std::uint64_t shard_ = 0;
  journal::Journal* journal_ = nullptr;
  std::size_t journal_ring_ = 0;
};

}  // namespace decloud::ledger

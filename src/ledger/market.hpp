// Multi-round market orchestration with resubmission.
//
// Bids that fail to match in one block are not lost: "Participants, whose
// bids were refused, can resubmit their bids" (Section III-B), and offers
// whose agreements are denied are flagged for resubmission by the smart
// contract.  The paper's "online appearance to users" (Section VI) emerges
// from this loop: rounds correspond to block generation, and a bid's
// latency is the number of rounds it waits until allocation.
//
// MarketOrchestrator drives the in-process protocol for many rounds,
// automatically resubmitting unmatched bids (up to a configurable retry
// budget) and recording per-bid allocation latency — the statistic a
// deployment would monitor.
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "ledger/protocol.hpp"

namespace decloud::ledger {

/// Orchestration parameters.
struct MarketConfig {
  /// Rounds a bid stays in the resubmission loop before being abandoned.
  std::size_t max_resubmissions = 3;
  /// Verifier miners participating each round.
  std::size_t num_verifiers = 2;
  ConsensusParams consensus;
  ReputationConfig reputation;
};

/// Lifetime statistics of the orchestrated market.
struct MarketStats {
  std::size_t rounds = 0;
  std::size_t requests_submitted = 0;
  std::size_t requests_allocated = 0;
  std::size_t requests_abandoned = 0;
  std::size_t offers_submitted = 0;
  Money total_welfare = 0.0;
  Money total_settled = 0.0;
  /// allocation_latency[k] = requests allocated in their (k+1)-th round.
  std::vector<std::size_t> allocation_latency;

  [[nodiscard]] double allocation_rate() const {
    return requests_submitted == 0
               ? 0.0
               : static_cast<double>(requests_allocated) /
                     static_cast<double>(requests_submitted);
  }
};

/// Drives LedgerProtocol across rounds with automatic resubmission.
class MarketOrchestrator {
 public:
  explicit MarketOrchestrator(MarketConfig config);

  /// Enqueues a request for the next round.  Ids must be unique across the
  /// orchestrator's lifetime (they key the latency bookkeeping).
  void submit(const auction::Request& request);
  /// Enqueues an offer for the next round.
  void submit(const auction::Offer& offer);

  /// Runs one block round over everything currently queued; unmatched bids
  /// re-queue automatically until their retry budget runs out.  Returns
  /// the protocol-level outcome.
  RoundOutcome run_round(Time now);

  /// Runs rounds until nothing is queued or `max_rounds` elapsed.
  void drain(std::size_t max_rounds, Time start_time = 0, Seconds round_interval = 600);

  [[nodiscard]] const MarketStats& stats() const { return stats_; }
  [[nodiscard]] const LedgerProtocol& protocol() const { return protocol_; }
  [[nodiscard]] std::size_t queued_bids() const {
    return pending_requests_.size() + pending_offers_.size();
  }

 private:
  struct PendingRequest {
    auction::Request request;
    std::size_t attempts = 0;
  };
  struct PendingOffer {
    auction::Offer offer;
    std::size_t attempts = 0;
  };

  MarketConfig config_;
  LedgerProtocol protocol_;
  Rng rng_{0x6d61726b6574ULL};
  Participant wallet_;  // one custodial wallet signs for the whole market
  std::deque<PendingRequest> pending_requests_;
  std::deque<PendingOffer> pending_offers_;
  MarketStats stats_;
};

}  // namespace decloud::ledger

#include "ledger/miner.hpp"

#include <unordered_map>

#include "common/ensure.hpp"
#include "ledger/codec.hpp"
#include "obs/sink.hpp"

namespace decloud::ledger {

std::optional<BlockPreamble> Miner::mine_preamble(std::vector<SealedBid> bids,
                                                  const crypto::Digest& prev_hash,
                                                  std::uint64_t height, Time timestamp,
                                                  obs::MetricsSink* sink) const {
  obs::SpanScope span(sink, "pow");
  BlockPreamble preamble;
  preamble.header.height = height;
  preamble.header.prev_hash = prev_hash;
  preamble.header.timestamp = timestamp;
  preamble.header.bids_root = bids_merkle_root(bids);
  preamble.sealed_bids = std::move(bids);

  const auto header_bytes = preamble.header.bytes();
  const auto solution = crypto::solve_pow({header_bytes.data(), header_bytes.size()},
                                          params_.difficulty_bits, /*start_nonce=*/0,
                                          params_.max_pow_attempts);
  if (!solution) return std::nullopt;
  preamble.pow = *solution;
  span.add_work(solution->nonce + 1);  // attempts, not the winning nonce
  if (sink != nullptr) sink->metrics().counter("ledger.pow_attempts").add(solution->nonce + 1);
  return preamble;
}

OpenedBlock Miner::open_block(const BlockPreamble& preamble,
                              const std::vector<KeyReveal>& reveals) {
  std::unordered_map<crypto::Digest, crypto::SymmetricKey, crypto::DigestHash> keys;
  for (const auto& kr : reveals) keys.emplace(kr.bid_digest, kr.key);

  OpenedBlock opened;
  for (std::size_t i = 0; i < preamble.sealed_bids.size(); ++i) {
    const SealedBid& bid = preamble.sealed_bids[i];
    const auto it = keys.find(bid.digest());
    if (it == keys.end()) {
      opened.unopened.push_back(i);
      continue;
    }
    const auto plaintext = open_bid(bid, it->second);
    if (!plaintext) {
      opened.unopened.push_back(i);
      continue;
    }
    // A malformed plaintext (wrong key that happened to hit the right tag,
    // or a corrupt submission) is contained here: the bid is skipped.
    try {
      if (bid.kind == BidKind::kRequest) {
        opened.snapshot.requests.push_back(decode_request(*plaintext));
        opened.request_source.push_back(i);
      } else {
        opened.snapshot.offers.push_back(decode_offer(*plaintext));
        opened.offer_source.push_back(i);
      }
    } catch (const precondition_error&) {
      opened.unopened.push_back(i);
    }
  }
  return opened;
}

std::uint64_t Miner::allocation_seed(const BlockPreamble& preamble) {
  // Fold the block hash into the RNG seed; the hash is PoW-constrained and
  // fixed before keys are revealed, so no one can grind the randomization.
  const crypto::Digest& h = preamble.hash();
  std::uint64_t seed = 0;
  for (int i = 0; i < 8; ++i) seed = (seed << 8) | h[static_cast<std::size_t>(i)];
  return seed;
}

BlockBody Miner::compute_body(const BlockPreamble& preamble,
                              const std::vector<KeyReveal>& reveals,
                              obs::MetricsSink* sink) const {
  const OpenedBlock opened = open_block(preamble, reveals);
  if (sink != nullptr) {
    sink->metrics().counter("ledger.bids_opened")
        .add(opened.request_source.size() + opened.offer_source.size());
    sink->metrics().counter("ledger.bids_unopened").add(opened.unopened.size());
  }
  const auction::DeCloudAuction mechanism(params_.auction);
  const auction::RoundResult result =
      mechanism.run(opened.snapshot, allocation_seed(preamble), sink, index_cache_);

  BlockBody body;
  body.revealed_keys = reveals;
  body.allocation = encode_allocation(result);
  return body;
}

bool Miner::verify_body(const BlockPreamble& preamble, const BlockBody& body) const {
  if (!validate_preamble(preamble, params_.difficulty_bits)) return false;
  const OpenedBlock opened = open_block(preamble, body.revealed_keys);
  const auction::DeCloudAuction mechanism(params_.auction);
  const auction::RoundResult replay = mechanism.run(opened.snapshot, allocation_seed(preamble));
  // Byte-exact comparison: the mechanism is deterministic, so any honest
  // producer yields exactly these bytes.
  return encode_allocation(replay) == body.allocation;
}

}  // namespace decloud::ledger

#include "ledger/market.hpp"

#include <algorithm>
#include <array>

#include "common/ensure.hpp"
#include "common/map_util.hpp"
#include "journal/journal.hpp"
#include "ledger/codec.hpp"
#include "obs/sink.hpp"

namespace decloud::ledger {

MarketOrchestrator::MarketOrchestrator(MarketConfig config)
    : config_(std::move(config)),
      protocol_(config_.consensus, config_.reputation),
      wallet_(rng_) {
  if (config_.reuse_candidate_index) protocol_.set_index_cache(&index_cache_);
}

void MarketOrchestrator::set_journal(journal::Journal* journal, std::size_t ring) {
  journal_ = journal;
  journal_ring_ = ring;
  protocol_.set_journal(journal, ring);
}

void MarketOrchestrator::submit(const auction::Request& request) {
  auction::validate(request);
  pending_requests_.push_back({request, 0});
  ++stats_.requests_submitted;
}

void MarketOrchestrator::submit(const auction::Offer& offer) {
  auction::validate(offer);
  pending_offers_.push_back({offer, 0});
  ++stats_.offers_submitted;
}

RoundOutcome MarketOrchestrator::run_round(Time now) {
  DECLOUD_EXPECTS_MSG(now >= 0, "simulated time is non-negative seconds since epoch");
  // Seal and submit everything queued; remember which attempt each bid is
  // on so we can histogram allocation latency afterwards.
  std::unordered_map<std::uint64_t, std::size_t> request_attempt;
  std::vector<PendingRequest> in_flight_requests(pending_requests_.begin(),
                                                 pending_requests_.end());
  std::vector<PendingOffer> in_flight_offers(pending_offers_.begin(), pending_offers_.end());
  pending_requests_.clear();
  pending_offers_.clear();

  // Seal-time fault hooks: a kCorruptSealedBid fault tampers with the
  // ciphertext after signing (the protocol drops the bid at its signature
  // check); a kDuplicateSealedBid fault submits the bid twice (the mempool
  // refuses the second copy).  Sites are (round, shard, bid index).
  const std::uint64_t fault_round = protocol_.chain().height();
  std::uint64_t bid_index = 0;
  const auto submit_sealed = [&](SealedBid sealed) {
    const fault::FaultSite site{fault_round, shard_, bid_index++, 0};
    if (fault_ != nullptr && fault_->fires(fault::FaultKind::kCorruptSealedBid, site)) {
      if (sealed.ciphertext.empty()) {
        sealed.ciphertext.push_back(0xFF);
      } else {
        sealed.ciphertext.front() ^= 0xFF;
      }
      if (sink_ != nullptr) sink_->metrics().counter("fault.bids_corrupted").add(1);
      if (journal_ != nullptr) {
        journal_->append(journal_ring_,
                         {journal::EventKind::kFaultFired, 0, fault_round,
                          static_cast<std::uint64_t>(fault::FaultKind::kCorruptSealedBid),
                          site.index, 0});
      }
    }
    const bool duplicate =
        fault_ != nullptr && fault_->fires(fault::FaultKind::kDuplicateSealedBid, site);
    if (duplicate && journal_ != nullptr) {
      journal_->append(journal_ring_,
                       {journal::EventKind::kFaultFired, 0, fault_round,
                        static_cast<std::uint64_t>(fault::FaultKind::kDuplicateSealedBid),
                        site.index, 0});
    }
    if (protocol_.mempool().submit(sealed) == Mempool::Admission::kDuplicate) {
      ++stats_.bids_duplicate_rejected;
    }
    if (duplicate && protocol_.mempool().submit(sealed) == Mempool::Admission::kDuplicate) {
      ++stats_.bids_duplicate_rejected;
      if (sink_ != nullptr) sink_->metrics().counter("fault.duplicates_rejected").add(1);
    }
  };
  for (const auto& pr : in_flight_requests) {
    request_attempt[pr.request.id.value()] = pr.attempts;
    submit_sealed(wallet_.submit_request(pr.request, rng_));
  }
  for (const auto& po : in_flight_offers) {
    submit_sealed(wallet_.submit_offer(po.offer, rng_));
  }

  const std::vector<Miner> verifiers(config_.num_verifiers, Miner(config_.consensus));
  RoundOutcome outcome = protocol_.run_round({&wallet_}, verifiers, now);
  ++stats_.rounds;
  if (sink_ != nullptr) sink_->metrics().counter("market.rounds").add(1);
  if (!outcome.block_accepted) {
    // A rejected block consumes nobody's bids: re-queue everything as-is.
    // The carry is free of retry-budget charge — the round never happened
    // for these bids — but it still counts as residue.
    stats_.bids_carried += in_flight_requests.size() + in_flight_offers.size();
    for (auto& pr : in_flight_requests) pending_requests_.push_back(pr);
    for (auto& po : in_flight_offers) pending_offers_.push_back(po);
    if (sink_ != nullptr) {
      sink_->metrics().counter("market.resubmissions")
          .add(in_flight_requests.size() + in_flight_offers.size());
    }
    if (journal_ != nullptr &&
        in_flight_requests.size() + in_flight_offers.size() > 0) {
      journal_->append(journal_ring_,
                       {journal::EventKind::kResidueCarried, 0, fault_round,
                        in_flight_requests.size() + in_flight_offers.size(),
                        static_cast<std::uint64_t>(journal::CarryCause::kBlockRejected), 0});
    }
    return outcome;
  }

  stats_.total_welfare += outcome.result.welfare;
  stats_.total_settled += outcome.result.total_payments;

  if (journal_ != nullptr) {
    // One kTradeStruck per accepted match, in allocation order: the
    // payment is the Eq. 19 charge, unit_price the Eq. 20 mini-auction
    // clearing price the telemetry histograms for dispersion.
    for (const auction::Match& m : outcome.result.matches) {
      journal_->append(journal_ring_, {journal::EventKind::kTradeStruck, 0, fault_round,
                                       m.request, m.offer, 0, m.payment, m.unit_price});
    }
    if (outcome.result.reduced_trades > 0) {
      journal_->append(journal_ring_,
                       {journal::EventKind::kTradeReduced, 0, fault_round,
                        outcome.result.reduced_trades, outcome.result.tentative_trades, 0});
    }
  }

  // Remember the accepted matches so deny_agreement can revert them; only
  // the latest round's agreements are deniable through the orchestrator.
  last_round_matches_.clear();
  {
    std::unordered_map<std::uint64_t, std::size_t> offer_attempt;
    for (const auto& po : in_flight_offers) offer_attempt[po.offer.id.value()] = po.attempts;
    for (std::size_t m = 0; m < outcome.result.matches.size(); ++m) {
      if (m >= outcome.agreements.size()) break;  // defensive: align by index
      const auto& match = outcome.result.matches[m];
      const auction::Request& req = outcome.snapshot.requests[match.request];
      const auction::Offer& off = outcome.snapshot.offers[match.offer];
      MatchRecord record;
      record.client = req.client;
      record.request_id = req.id.value();
      const auto req_attempt_it = request_attempt.find(req.id.value());
      record.request_attempt =
          req_attempt_it == request_attempt.end() ? 0 : req_attempt_it->second;
      record.offer = off;
      const auto attempt_it = offer_attempt.find(off.id.value());
      record.offer_attempts = attempt_it == offer_attempt.end() ? 0 : attempt_it->second;
      last_round_matches_.emplace(outcome.agreements[m], record);
    }
  }

  // Which request ids got matched?
  std::vector<char> matched(outcome.snapshot.requests.size(), 0);
  for (const auto& m : outcome.result.matches) matched[m.request] = 1;

  std::unordered_map<std::uint64_t, char> matched_ids;
  for (std::size_t i = 0; i < outcome.snapshot.requests.size(); ++i) {
    if (matched[i]) matched_ids[outcome.snapshot.requests[i].id.value()] = 1;
  }

  std::size_t resubmitted = 0;
  std::size_t allocated_this_round = 0;
  std::size_t requests_abandoned_this_round = 0;
  std::size_t offers_abandoned_this_round = 0;
  for (auto& pr : in_flight_requests) {
    const auto id = pr.request.id.value();
    if (matched_ids.contains(id)) {
      ++allocated_this_round;
      ++stats_.requests_allocated;
      const std::size_t attempt = request_attempt[id];
      if (stats_.allocation_latency.size() <= attempt) {
        stats_.allocation_latency.resize(attempt + 1, 0);
      }
      ++stats_.allocation_latency[attempt];
    } else if (++pr.attempts <= config_.max_resubmissions) {
      pending_requests_.push_back(pr);  // resubmit next round
      ++resubmitted;
      ++stats_.bids_carried;
    } else {
      ++stats_.requests_abandoned;
      ++requests_abandoned_this_round;
    }
  }
  // Offers re-enter while their windows stay useful; the retry budget
  // bounds that too.
  for (auto& po : in_flight_offers) {
    if (++po.attempts <= config_.max_resubmissions) {
      pending_offers_.push_back(po);
      ++resubmitted;
      ++stats_.bids_carried;
    } else {
      ++stats_.offers_abandoned;
      ++offers_abandoned_this_round;
    }
  }
  if (sink_ != nullptr) {
    obs::MetricsRegistry& m = sink_->metrics();
    m.counter("market.resubmissions").add(resubmitted);
    m.counter("market.requests_allocated").add(allocated_this_round);
    m.histogram("market.round_welfare", 0.0, 64.0, 16).add(outcome.result.welfare);
  }
  if (journal_ != nullptr) {
    if (resubmitted > 0) {
      journal_->append(journal_ring_,
                       {journal::EventKind::kResidueCarried, 0, fault_round, resubmitted,
                        static_cast<std::uint64_t>(journal::CarryCause::kUnmatched), 0});
    }
    if (requests_abandoned_this_round + offers_abandoned_this_round > 0) {
      journal_->append(journal_ring_, {journal::EventKind::kResidueAbandoned, 0, fault_round,
                                       requests_abandoned_this_round,
                                       offers_abandoned_this_round, 0});
    }
  }

  // Client-side misbehaviour: a kDenyAgreement fault makes the client of
  // match `m` refuse its proposed agreement (Section III-B's deny path,
  // with the reputational penalty and stat reversal deny_agreement does).
  if (fault_ != nullptr && fault_->active()) {
    for (std::size_t m = 0; m < outcome.agreements.size(); ++m) {
      if (fault_->fires(fault::FaultKind::kDenyAgreement, {fault_round, shard_, m, 0})) {
        if (deny_agreement(outcome.agreements[m]) && sink_ != nullptr) {
          sink_->metrics().counter("fault.agreements_denied").add(1);
        }
      }
    }
  }
  return outcome;
}

bool MarketOrchestrator::deny_agreement(ContractId id) {
  const auto it = last_round_matches_.find(id);
  if (it == last_round_matches_.end()) return false;  // not from the latest round
  const MatchRecord& record = it->second;
  if (!protocol_.contract().deny(id, record.client)) return false;

  if (journal_ != nullptr) {
    const std::uint64_t height = protocol_.chain().height();
    // The denied agreement came from the latest appended block.
    journal_->append(journal_ring_, {journal::EventKind::kTradeDenied, 0, height - 1,
                                     id.value(), record.request_id, 0});
    journal_->append(journal_ring_,
                     {journal::EventKind::kReputationPenalty, 0, height - 1,
                      record.client.value(),
                      static_cast<std::uint64_t>(journal::PenaltyKind::kDeny), 0});
  }

  // Revert the request's allocation accounting: the match never executed.
  DECLOUD_EXPECTS(stats_.requests_allocated > 0);
  DECLOUD_EXPECTS(record.request_attempt < stats_.allocation_latency.size() &&
                  stats_.allocation_latency[record.request_attempt] > 0);
  --stats_.requests_allocated;
  --stats_.allocation_latency[record.request_attempt];
  ++stats_.agreements_denied;

  // Refund the offer's retry attempt: run_round charged it one on
  // resubmission, but the denial was the client's doing.  If the offer
  // already aged out of the queue, re-enter it at its pre-match budget.
  const auto offer_id = record.offer.id.value();
  bool still_pending = false;
  for (auto& po : pending_offers_) {
    if (po.offer.id.value() == offer_id) {
      if (po.attempts > record.offer_attempts) po.attempts = record.offer_attempts;
      still_pending = true;
      break;
    }
  }
  if (!still_pending) {
    pending_offers_.push_back({record.offer, record.offer_attempts});
    ++stats_.bids_carried;  // the refund re-enters it into the residue
    if (journal_ != nullptr) {
      journal_->append(journal_ring_,
                       {journal::EventKind::kResidueCarried, 0, protocol_.chain().height() - 1,
                        1, static_cast<std::uint64_t>(journal::CarryCause::kDenialRefund), 0});
    }
  }

  last_round_matches_.erase(it);
  return true;
}

void MarketOrchestrator::drain(std::size_t max_rounds, Time start_time, Seconds round_interval) {
  Time now = start_time;
  for (std::size_t round = 0; round < max_rounds && queued_bids() > 0; ++round) {
    (void)run_round(now);
    now += round_interval;
  }
}

void MarketOrchestrator::encode_state(ByteWriter& w) const {
  for (const std::uint64_t word : rng_.state()) w.write_u64(word);

  w.write_u64(pending_requests_.size());
  for (const PendingRequest& p : pending_requests_) {
    w.write_bytes(encode_request(p.request));
    w.write_u64(p.attempts);
  }
  w.write_u64(pending_offers_.size());
  for (const PendingOffer& p : pending_offers_) {
    w.write_bytes(encode_offer(p.offer));
    w.write_u64(p.attempts);
  }

  const std::vector<ContractId> match_ids = sorted_keys(
      last_round_matches_, [](ContractId a, ContractId b) { return a.value() < b.value(); });
  w.write_u64(match_ids.size());
  for (const ContractId id : match_ids) {
    const MatchRecord& m = last_round_matches_.at(id);
    w.write_u64(id.value());
    w.write_u64(m.client.value());
    w.write_u64(m.request_id);
    w.write_u64(m.request_attempt);
    w.write_bytes(encode_offer(m.offer));
    w.write_u64(m.offer_attempts);
  }

  w.write_u64(stats_.rounds);
  w.write_u64(stats_.requests_submitted);
  w.write_u64(stats_.requests_allocated);
  w.write_u64(stats_.requests_abandoned);
  w.write_u64(stats_.offers_submitted);
  w.write_u64(stats_.offers_abandoned);
  w.write_u64(stats_.bids_carried);
  w.write_u64(stats_.bids_duplicate_rejected);
  w.write_u64(stats_.agreements_denied);
  w.write_double(stats_.total_welfare);
  w.write_double(stats_.total_settled);
  w.write_u64(stats_.allocation_latency.size());
  for (const std::size_t n : stats_.allocation_latency) w.write_u64(n);

  protocol_.encode_state(w);
}

void MarketOrchestrator::restore_state(ByteReader& r) {
  std::array<std::uint64_t, 4> rng_state{};
  for (std::uint64_t& word : rng_state) word = r.read_u64();
  rng_.set_state(rng_state);

  pending_requests_.clear();
  const std::uint64_t num_requests = r.read_u64();
  for (std::uint64_t i = 0; i < num_requests; ++i) {
    PendingRequest p;
    p.request = decode_request(r.read_bytes());
    p.attempts = static_cast<std::size_t>(r.read_u64());
    pending_requests_.push_back(std::move(p));
  }
  pending_offers_.clear();
  const std::uint64_t num_offers = r.read_u64();
  for (std::uint64_t i = 0; i < num_offers; ++i) {
    PendingOffer p;
    p.offer = decode_offer(r.read_bytes());
    p.attempts = static_cast<std::size_t>(r.read_u64());
    pending_offers_.push_back(std::move(p));
  }

  last_round_matches_.clear();
  const std::uint64_t num_matches = r.read_u64();
  for (std::uint64_t i = 0; i < num_matches; ++i) {
    const ContractId id(r.read_u64());
    MatchRecord m;
    m.client = ClientId(r.read_u64());
    m.request_id = r.read_u64();
    m.request_attempt = static_cast<std::size_t>(r.read_u64());
    m.offer = decode_offer(r.read_bytes());
    m.offer_attempts = static_cast<std::size_t>(r.read_u64());
    last_round_matches_.emplace(id, std::move(m));
  }

  stats_ = MarketStats{};
  stats_.rounds = static_cast<std::size_t>(r.read_u64());
  stats_.requests_submitted = static_cast<std::size_t>(r.read_u64());
  stats_.requests_allocated = static_cast<std::size_t>(r.read_u64());
  stats_.requests_abandoned = static_cast<std::size_t>(r.read_u64());
  stats_.offers_submitted = static_cast<std::size_t>(r.read_u64());
  stats_.offers_abandoned = static_cast<std::size_t>(r.read_u64());
  stats_.bids_carried = static_cast<std::size_t>(r.read_u64());
  stats_.bids_duplicate_rejected = static_cast<std::size_t>(r.read_u64());
  stats_.agreements_denied = static_cast<std::size_t>(r.read_u64());
  stats_.total_welfare = r.read_double();
  stats_.total_settled = r.read_double();
  const std::uint64_t latency_bins = r.read_u64();
  stats_.allocation_latency.resize(static_cast<std::size_t>(latency_bins));
  for (std::size_t& n : stats_.allocation_latency) n = static_cast<std::size_t>(r.read_u64());

  protocol_.restore_state(r);
}

}  // namespace decloud::ledger

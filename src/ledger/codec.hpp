// Canonical wire encoding of bids and allocations.
//
// Everything that is hashed, signed, or re-verified by other miners must
// serialize identically everywhere; this is the single source of truth for
// those byte layouts (see common/byte_buffer.hpp for the primitive rules).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "auction/allocation.hpp"
#include "auction/bid.hpp"

namespace decloud::ledger {

/// Serializes a request into canonical bytes.
[[nodiscard]] std::vector<std::uint8_t> encode_request(const auction::Request& r);

/// Parses a request; throws precondition_error on malformed bytes.
[[nodiscard]] auction::Request decode_request(std::span<const std::uint8_t> bytes);

/// Serializes an offer into canonical bytes.
[[nodiscard]] std::vector<std::uint8_t> encode_offer(const auction::Offer& o);

/// Parses an offer; throws precondition_error on malformed bytes.
[[nodiscard]] auction::Offer decode_offer(std::span<const std::uint8_t> bytes);

/// Serializes an allocation suggestion (the matches plus settlement
/// totals) for inclusion in a block body.
[[nodiscard]] std::vector<std::uint8_t> encode_allocation(const auction::RoundResult& result);

/// Parses an allocation suggestion.  Per-participant ledgers are
/// reconstructed from the matches.
[[nodiscard]] auction::RoundResult decode_allocation(std::span<const std::uint8_t> bytes,
                                                     std::size_t num_requests,
                                                     std::size_t num_offers);

}  // namespace decloud::ledger

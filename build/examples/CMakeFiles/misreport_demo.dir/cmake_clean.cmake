file(REMOVE_RECURSE
  "CMakeFiles/misreport_demo.dir/misreport_demo.cpp.o"
  "CMakeFiles/misreport_demo.dir/misreport_demo.cpp.o.d"
  "misreport_demo"
  "misreport_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misreport_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for misreport_demo.
# This may be replaced when dependencies are built.

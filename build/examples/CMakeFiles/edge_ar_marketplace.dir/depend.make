# Empty dependencies file for edge_ar_marketplace.
# This may be replaced when dependencies are built.

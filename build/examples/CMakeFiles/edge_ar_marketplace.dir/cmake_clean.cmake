file(REMOVE_RECURSE
  "CMakeFiles/edge_ar_marketplace.dir/edge_ar_marketplace.cpp.o"
  "CMakeFiles/edge_ar_marketplace.dir/edge_ar_marketplace.cpp.o.d"
  "edge_ar_marketplace"
  "edge_ar_marketplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_ar_marketplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

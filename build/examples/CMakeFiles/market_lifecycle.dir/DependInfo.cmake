
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/market_lifecycle.cpp" "examples/CMakeFiles/market_lifecycle.dir/market_lifecycle.cpp.o" "gcc" "examples/CMakeFiles/market_lifecycle.dir/market_lifecycle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/decloud_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ledger/CMakeFiles/decloud_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/decloud_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/auction/CMakeFiles/decloud_auction.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/decloud_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/decloud_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/decloud_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for market_lifecycle.
# This may be replaced when dependencies are built.

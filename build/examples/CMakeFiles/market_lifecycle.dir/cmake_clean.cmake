file(REMOVE_RECURSE
  "CMakeFiles/market_lifecycle.dir/market_lifecycle.cpp.o"
  "CMakeFiles/market_lifecycle.dir/market_lifecycle.cpp.o.d"
  "market_lifecycle"
  "market_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ledger_round.
# This may be replaced when dependencies are built.

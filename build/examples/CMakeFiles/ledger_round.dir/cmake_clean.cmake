file(REMOVE_RECURSE
  "CMakeFiles/ledger_round.dir/ledger_round.cpp.o"
  "CMakeFiles/ledger_round.dir/ledger_round.cpp.o.d"
  "ledger_round"
  "ledger_round.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ledger_round.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for federated_cloud.
# This may be replaced when dependencies are built.

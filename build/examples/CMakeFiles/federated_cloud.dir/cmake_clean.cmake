file(REMOVE_RECURSE
  "CMakeFiles/federated_cloud.dir/federated_cloud.cpp.o"
  "CMakeFiles/federated_cloud.dir/federated_cloud.cpp.o.d"
  "federated_cloud"
  "federated_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

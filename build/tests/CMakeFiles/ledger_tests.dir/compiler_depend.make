# Empty compiler generated dependencies file for ledger_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ledger_tests.dir/ledger/block_test.cpp.o"
  "CMakeFiles/ledger_tests.dir/ledger/block_test.cpp.o.d"
  "CMakeFiles/ledger_tests.dir/ledger/challenge_test.cpp.o"
  "CMakeFiles/ledger_tests.dir/ledger/challenge_test.cpp.o.d"
  "CMakeFiles/ledger_tests.dir/ledger/codec_test.cpp.o"
  "CMakeFiles/ledger_tests.dir/ledger/codec_test.cpp.o.d"
  "CMakeFiles/ledger_tests.dir/ledger/contract_test.cpp.o"
  "CMakeFiles/ledger_tests.dir/ledger/contract_test.cpp.o.d"
  "CMakeFiles/ledger_tests.dir/ledger/market_test.cpp.o"
  "CMakeFiles/ledger_tests.dir/ledger/market_test.cpp.o.d"
  "CMakeFiles/ledger_tests.dir/ledger/miner_test.cpp.o"
  "CMakeFiles/ledger_tests.dir/ledger/miner_test.cpp.o.d"
  "CMakeFiles/ledger_tests.dir/ledger/participant_test.cpp.o"
  "CMakeFiles/ledger_tests.dir/ledger/participant_test.cpp.o.d"
  "CMakeFiles/ledger_tests.dir/ledger/protocol_test.cpp.o"
  "CMakeFiles/ledger_tests.dir/ledger/protocol_test.cpp.o.d"
  "CMakeFiles/ledger_tests.dir/ledger/sealed_bid_test.cpp.o"
  "CMakeFiles/ledger_tests.dir/ledger/sealed_bid_test.cpp.o.d"
  "ledger_tests"
  "ledger_tests.pdb"
  "ledger_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ledger_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

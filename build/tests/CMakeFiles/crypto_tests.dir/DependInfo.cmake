
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crypto/chacha20_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/chacha20_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/chacha20_test.cpp.o.d"
  "/root/repo/tests/crypto/hmac_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/hmac_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/hmac_test.cpp.o.d"
  "/root/repo/tests/crypto/merkle_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/merkle_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/merkle_test.cpp.o.d"
  "/root/repo/tests/crypto/pow_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/pow_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/pow_test.cpp.o.d"
  "/root/repo/tests/crypto/sha256_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/sha256_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/sha256_test.cpp.o.d"
  "/root/repo/tests/crypto/signature_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/signature_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/signature_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/decloud_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ledger/CMakeFiles/decloud_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/decloud_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/auction/CMakeFiles/decloud_auction.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/decloud_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/decloud_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/decloud_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

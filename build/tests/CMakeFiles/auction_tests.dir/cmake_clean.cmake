file(REMOVE_RECURSE
  "CMakeFiles/auction_tests.dir/auction/ablation_test.cpp.o"
  "CMakeFiles/auction_tests.dir/auction/ablation_test.cpp.o.d"
  "CMakeFiles/auction_tests.dir/auction/allocation_test.cpp.o"
  "CMakeFiles/auction_tests.dir/auction/allocation_test.cpp.o.d"
  "CMakeFiles/auction_tests.dir/auction/bid_test.cpp.o"
  "CMakeFiles/auction_tests.dir/auction/bid_test.cpp.o.d"
  "CMakeFiles/auction_tests.dir/auction/cluster_test.cpp.o"
  "CMakeFiles/auction_tests.dir/auction/cluster_test.cpp.o.d"
  "CMakeFiles/auction_tests.dir/auction/economics_test.cpp.o"
  "CMakeFiles/auction_tests.dir/auction/economics_test.cpp.o.d"
  "CMakeFiles/auction_tests.dir/auction/feasibility_test.cpp.o"
  "CMakeFiles/auction_tests.dir/auction/feasibility_test.cpp.o.d"
  "CMakeFiles/auction_tests.dir/auction/mcafee_test.cpp.o"
  "CMakeFiles/auction_tests.dir/auction/mcafee_test.cpp.o.d"
  "CMakeFiles/auction_tests.dir/auction/mechanism_test.cpp.o"
  "CMakeFiles/auction_tests.dir/auction/mechanism_test.cpp.o.d"
  "CMakeFiles/auction_tests.dir/auction/miniauction_test.cpp.o"
  "CMakeFiles/auction_tests.dir/auction/miniauction_test.cpp.o.d"
  "CMakeFiles/auction_tests.dir/auction/pricing_test.cpp.o"
  "CMakeFiles/auction_tests.dir/auction/pricing_test.cpp.o.d"
  "CMakeFiles/auction_tests.dir/auction/qom_test.cpp.o"
  "CMakeFiles/auction_tests.dir/auction/qom_test.cpp.o.d"
  "CMakeFiles/auction_tests.dir/auction/resource_test.cpp.o"
  "CMakeFiles/auction_tests.dir/auction/resource_test.cpp.o.d"
  "CMakeFiles/auction_tests.dir/auction/trade_reduction_test.cpp.o"
  "CMakeFiles/auction_tests.dir/auction/trade_reduction_test.cpp.o.d"
  "CMakeFiles/auction_tests.dir/auction/verify_test.cpp.o"
  "CMakeFiles/auction_tests.dir/auction/verify_test.cpp.o.d"
  "auction_tests"
  "auction_tests.pdb"
  "auction_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auction_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/auction/ablation_test.cpp" "tests/CMakeFiles/auction_tests.dir/auction/ablation_test.cpp.o" "gcc" "tests/CMakeFiles/auction_tests.dir/auction/ablation_test.cpp.o.d"
  "/root/repo/tests/auction/allocation_test.cpp" "tests/CMakeFiles/auction_tests.dir/auction/allocation_test.cpp.o" "gcc" "tests/CMakeFiles/auction_tests.dir/auction/allocation_test.cpp.o.d"
  "/root/repo/tests/auction/bid_test.cpp" "tests/CMakeFiles/auction_tests.dir/auction/bid_test.cpp.o" "gcc" "tests/CMakeFiles/auction_tests.dir/auction/bid_test.cpp.o.d"
  "/root/repo/tests/auction/cluster_test.cpp" "tests/CMakeFiles/auction_tests.dir/auction/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/auction_tests.dir/auction/cluster_test.cpp.o.d"
  "/root/repo/tests/auction/economics_test.cpp" "tests/CMakeFiles/auction_tests.dir/auction/economics_test.cpp.o" "gcc" "tests/CMakeFiles/auction_tests.dir/auction/economics_test.cpp.o.d"
  "/root/repo/tests/auction/feasibility_test.cpp" "tests/CMakeFiles/auction_tests.dir/auction/feasibility_test.cpp.o" "gcc" "tests/CMakeFiles/auction_tests.dir/auction/feasibility_test.cpp.o.d"
  "/root/repo/tests/auction/mcafee_test.cpp" "tests/CMakeFiles/auction_tests.dir/auction/mcafee_test.cpp.o" "gcc" "tests/CMakeFiles/auction_tests.dir/auction/mcafee_test.cpp.o.d"
  "/root/repo/tests/auction/mechanism_test.cpp" "tests/CMakeFiles/auction_tests.dir/auction/mechanism_test.cpp.o" "gcc" "tests/CMakeFiles/auction_tests.dir/auction/mechanism_test.cpp.o.d"
  "/root/repo/tests/auction/miniauction_test.cpp" "tests/CMakeFiles/auction_tests.dir/auction/miniauction_test.cpp.o" "gcc" "tests/CMakeFiles/auction_tests.dir/auction/miniauction_test.cpp.o.d"
  "/root/repo/tests/auction/pricing_test.cpp" "tests/CMakeFiles/auction_tests.dir/auction/pricing_test.cpp.o" "gcc" "tests/CMakeFiles/auction_tests.dir/auction/pricing_test.cpp.o.d"
  "/root/repo/tests/auction/qom_test.cpp" "tests/CMakeFiles/auction_tests.dir/auction/qom_test.cpp.o" "gcc" "tests/CMakeFiles/auction_tests.dir/auction/qom_test.cpp.o.d"
  "/root/repo/tests/auction/resource_test.cpp" "tests/CMakeFiles/auction_tests.dir/auction/resource_test.cpp.o" "gcc" "tests/CMakeFiles/auction_tests.dir/auction/resource_test.cpp.o.d"
  "/root/repo/tests/auction/trade_reduction_test.cpp" "tests/CMakeFiles/auction_tests.dir/auction/trade_reduction_test.cpp.o" "gcc" "tests/CMakeFiles/auction_tests.dir/auction/trade_reduction_test.cpp.o.d"
  "/root/repo/tests/auction/verify_test.cpp" "tests/CMakeFiles/auction_tests.dir/auction/verify_test.cpp.o" "gcc" "tests/CMakeFiles/auction_tests.dir/auction/verify_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/decloud_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ledger/CMakeFiles/decloud_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/decloud_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/auction/CMakeFiles/decloud_auction.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/decloud_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/decloud_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/decloud_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/micro_auction.dir/micro_auction.cpp.o"
  "CMakeFiles/micro_auction.dir/micro_auction.cpp.o.d"
  "micro_auction"
  "micro_auction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_auction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

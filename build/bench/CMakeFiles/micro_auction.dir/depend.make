# Empty dependencies file for micro_auction.
# This may be replaced when dependencies are built.

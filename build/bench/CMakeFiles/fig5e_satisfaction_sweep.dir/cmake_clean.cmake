file(REMOVE_RECURSE
  "CMakeFiles/fig5e_satisfaction_sweep.dir/fig5e_satisfaction_sweep.cpp.o"
  "CMakeFiles/fig5e_satisfaction_sweep.dir/fig5e_satisfaction_sweep.cpp.o.d"
  "fig5e_satisfaction_sweep"
  "fig5e_satisfaction_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5e_satisfaction_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

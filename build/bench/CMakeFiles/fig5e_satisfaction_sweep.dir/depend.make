# Empty dependencies file for fig5e_satisfaction_sweep.
# This may be replaced when dependencies are built.

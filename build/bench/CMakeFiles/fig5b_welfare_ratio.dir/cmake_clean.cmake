file(REMOVE_RECURSE
  "CMakeFiles/fig5b_welfare_ratio.dir/fig5b_welfare_ratio.cpp.o"
  "CMakeFiles/fig5b_welfare_ratio.dir/fig5b_welfare_ratio.cpp.o.d"
  "fig5b_welfare_ratio"
  "fig5b_welfare_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_welfare_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig5b_welfare_ratio.
# This may be replaced when dependencies are built.

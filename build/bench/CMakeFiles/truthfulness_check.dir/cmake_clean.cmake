file(REMOVE_RECURSE
  "CMakeFiles/truthfulness_check.dir/truthfulness_check.cpp.o"
  "CMakeFiles/truthfulness_check.dir/truthfulness_check.cpp.o.d"
  "truthfulness_check"
  "truthfulness_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/truthfulness_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

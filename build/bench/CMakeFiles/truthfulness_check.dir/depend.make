# Empty dependencies file for truthfulness_check.
# This may be replaced when dependencies are built.

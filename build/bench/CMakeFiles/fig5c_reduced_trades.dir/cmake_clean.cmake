file(REMOVE_RECURSE
  "CMakeFiles/fig5c_reduced_trades.dir/fig5c_reduced_trades.cpp.o"
  "CMakeFiles/fig5c_reduced_trades.dir/fig5c_reduced_trades.cpp.o.d"
  "fig5c_reduced_trades"
  "fig5c_reduced_trades.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5c_reduced_trades.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig5c_reduced_trades.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_miniauction.dir/ablation_miniauction.cpp.o"
  "CMakeFiles/ablation_miniauction.dir/ablation_miniauction.cpp.o.d"
  "ablation_miniauction"
  "ablation_miniauction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_miniauction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

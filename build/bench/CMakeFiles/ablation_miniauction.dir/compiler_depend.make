# Empty compiler generated dependencies file for ablation_miniauction.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for micro_ledger.
# This may be replaced when dependencies are built.

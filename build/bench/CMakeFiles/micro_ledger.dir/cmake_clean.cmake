file(REMOVE_RECURSE
  "CMakeFiles/micro_ledger.dir/micro_ledger.cpp.o"
  "CMakeFiles/micro_ledger.dir/micro_ledger.cpp.o.d"
  "micro_ledger"
  "micro_ledger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ledger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig5f_welfare_flex.
# This may be replaced when dependencies are built.

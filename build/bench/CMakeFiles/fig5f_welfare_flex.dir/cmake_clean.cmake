file(REMOVE_RECURSE
  "CMakeFiles/fig5f_welfare_flex.dir/fig5f_welfare_flex.cpp.o"
  "CMakeFiles/fig5f_welfare_flex.dir/fig5f_welfare_flex.cpp.o.d"
  "fig5f_welfare_flex"
  "fig5f_welfare_flex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5f_welfare_flex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

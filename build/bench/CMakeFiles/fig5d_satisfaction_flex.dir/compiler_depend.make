# Empty compiler generated dependencies file for fig5d_satisfaction_flex.
# This may be replaced when dependencies are built.

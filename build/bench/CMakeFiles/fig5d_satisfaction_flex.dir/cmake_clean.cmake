file(REMOVE_RECURSE
  "CMakeFiles/fig5d_satisfaction_flex.dir/fig5d_satisfaction_flex.cpp.o"
  "CMakeFiles/fig5d_satisfaction_flex.dir/fig5d_satisfaction_flex.cpp.o.d"
  "fig5d_satisfaction_flex"
  "fig5d_satisfaction_flex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5d_satisfaction_flex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

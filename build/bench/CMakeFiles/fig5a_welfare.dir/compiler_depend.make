# Empty compiler generated dependencies file for fig5a_welfare.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig5a_welfare.dir/fig5a_welfare.cpp.o"
  "CMakeFiles/fig5a_welfare.dir/fig5a_welfare.cpp.o.d"
  "fig5a_welfare"
  "fig5a_welfare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_welfare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

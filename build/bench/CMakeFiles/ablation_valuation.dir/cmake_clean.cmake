file(REMOVE_RECURSE
  "CMakeFiles/ablation_valuation.dir/ablation_valuation.cpp.o"
  "CMakeFiles/ablation_valuation.dir/ablation_valuation.cpp.o.d"
  "ablation_valuation"
  "ablation_valuation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_valuation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_valuation.
# This may be replaced when dependencies are built.

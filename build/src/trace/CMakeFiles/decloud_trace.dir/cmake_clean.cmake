file(REMOVE_RECURSE
  "CMakeFiles/decloud_trace.dir/ec2_catalog.cpp.o"
  "CMakeFiles/decloud_trace.dir/ec2_catalog.cpp.o.d"
  "CMakeFiles/decloud_trace.dir/google_csv.cpp.o"
  "CMakeFiles/decloud_trace.dir/google_csv.cpp.o.d"
  "CMakeFiles/decloud_trace.dir/google_trace.cpp.o"
  "CMakeFiles/decloud_trace.dir/google_trace.cpp.o.d"
  "CMakeFiles/decloud_trace.dir/kl_shaper.cpp.o"
  "CMakeFiles/decloud_trace.dir/kl_shaper.cpp.o.d"
  "CMakeFiles/decloud_trace.dir/workload.cpp.o"
  "CMakeFiles/decloud_trace.dir/workload.cpp.o.d"
  "libdecloud_trace.a"
  "libdecloud_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decloud_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

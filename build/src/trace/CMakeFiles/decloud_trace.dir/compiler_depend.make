# Empty compiler generated dependencies file for decloud_trace.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libdecloud_trace.a"
)

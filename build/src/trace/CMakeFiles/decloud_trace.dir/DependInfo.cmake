
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/ec2_catalog.cpp" "src/trace/CMakeFiles/decloud_trace.dir/ec2_catalog.cpp.o" "gcc" "src/trace/CMakeFiles/decloud_trace.dir/ec2_catalog.cpp.o.d"
  "/root/repo/src/trace/google_csv.cpp" "src/trace/CMakeFiles/decloud_trace.dir/google_csv.cpp.o" "gcc" "src/trace/CMakeFiles/decloud_trace.dir/google_csv.cpp.o.d"
  "/root/repo/src/trace/google_trace.cpp" "src/trace/CMakeFiles/decloud_trace.dir/google_trace.cpp.o" "gcc" "src/trace/CMakeFiles/decloud_trace.dir/google_trace.cpp.o.d"
  "/root/repo/src/trace/kl_shaper.cpp" "src/trace/CMakeFiles/decloud_trace.dir/kl_shaper.cpp.o" "gcc" "src/trace/CMakeFiles/decloud_trace.dir/kl_shaper.cpp.o.d"
  "/root/repo/src/trace/workload.cpp" "src/trace/CMakeFiles/decloud_trace.dir/workload.cpp.o" "gcc" "src/trace/CMakeFiles/decloud_trace.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/auction/CMakeFiles/decloud_auction.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/decloud_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/decloud_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libdecloud_common.a"
)

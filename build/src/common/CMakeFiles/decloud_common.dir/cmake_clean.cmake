file(REMOVE_RECURSE
  "CMakeFiles/decloud_common.dir/byte_buffer.cpp.o"
  "CMakeFiles/decloud_common.dir/byte_buffer.cpp.o.d"
  "CMakeFiles/decloud_common.dir/hex.cpp.o"
  "CMakeFiles/decloud_common.dir/hex.cpp.o.d"
  "CMakeFiles/decloud_common.dir/interner.cpp.o"
  "CMakeFiles/decloud_common.dir/interner.cpp.o.d"
  "CMakeFiles/decloud_common.dir/rng.cpp.o"
  "CMakeFiles/decloud_common.dir/rng.cpp.o.d"
  "libdecloud_common.a"
  "libdecloud_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decloud_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

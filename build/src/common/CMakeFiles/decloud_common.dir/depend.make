# Empty dependencies file for decloud_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/decloud_ledger.dir/block.cpp.o"
  "CMakeFiles/decloud_ledger.dir/block.cpp.o.d"
  "CMakeFiles/decloud_ledger.dir/challenge.cpp.o"
  "CMakeFiles/decloud_ledger.dir/challenge.cpp.o.d"
  "CMakeFiles/decloud_ledger.dir/codec.cpp.o"
  "CMakeFiles/decloud_ledger.dir/codec.cpp.o.d"
  "CMakeFiles/decloud_ledger.dir/contract.cpp.o"
  "CMakeFiles/decloud_ledger.dir/contract.cpp.o.d"
  "CMakeFiles/decloud_ledger.dir/market.cpp.o"
  "CMakeFiles/decloud_ledger.dir/market.cpp.o.d"
  "CMakeFiles/decloud_ledger.dir/miner.cpp.o"
  "CMakeFiles/decloud_ledger.dir/miner.cpp.o.d"
  "CMakeFiles/decloud_ledger.dir/participant.cpp.o"
  "CMakeFiles/decloud_ledger.dir/participant.cpp.o.d"
  "CMakeFiles/decloud_ledger.dir/protocol.cpp.o"
  "CMakeFiles/decloud_ledger.dir/protocol.cpp.o.d"
  "CMakeFiles/decloud_ledger.dir/sealed_bid.cpp.o"
  "CMakeFiles/decloud_ledger.dir/sealed_bid.cpp.o.d"
  "libdecloud_ledger.a"
  "libdecloud_ledger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decloud_ledger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

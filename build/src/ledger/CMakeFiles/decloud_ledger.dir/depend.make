# Empty dependencies file for decloud_ledger.
# This may be replaced when dependencies are built.

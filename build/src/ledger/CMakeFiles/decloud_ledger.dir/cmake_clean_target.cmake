file(REMOVE_RECURSE
  "libdecloud_ledger.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ledger/block.cpp" "src/ledger/CMakeFiles/decloud_ledger.dir/block.cpp.o" "gcc" "src/ledger/CMakeFiles/decloud_ledger.dir/block.cpp.o.d"
  "/root/repo/src/ledger/challenge.cpp" "src/ledger/CMakeFiles/decloud_ledger.dir/challenge.cpp.o" "gcc" "src/ledger/CMakeFiles/decloud_ledger.dir/challenge.cpp.o.d"
  "/root/repo/src/ledger/codec.cpp" "src/ledger/CMakeFiles/decloud_ledger.dir/codec.cpp.o" "gcc" "src/ledger/CMakeFiles/decloud_ledger.dir/codec.cpp.o.d"
  "/root/repo/src/ledger/contract.cpp" "src/ledger/CMakeFiles/decloud_ledger.dir/contract.cpp.o" "gcc" "src/ledger/CMakeFiles/decloud_ledger.dir/contract.cpp.o.d"
  "/root/repo/src/ledger/market.cpp" "src/ledger/CMakeFiles/decloud_ledger.dir/market.cpp.o" "gcc" "src/ledger/CMakeFiles/decloud_ledger.dir/market.cpp.o.d"
  "/root/repo/src/ledger/miner.cpp" "src/ledger/CMakeFiles/decloud_ledger.dir/miner.cpp.o" "gcc" "src/ledger/CMakeFiles/decloud_ledger.dir/miner.cpp.o.d"
  "/root/repo/src/ledger/participant.cpp" "src/ledger/CMakeFiles/decloud_ledger.dir/participant.cpp.o" "gcc" "src/ledger/CMakeFiles/decloud_ledger.dir/participant.cpp.o.d"
  "/root/repo/src/ledger/protocol.cpp" "src/ledger/CMakeFiles/decloud_ledger.dir/protocol.cpp.o" "gcc" "src/ledger/CMakeFiles/decloud_ledger.dir/protocol.cpp.o.d"
  "/root/repo/src/ledger/sealed_bid.cpp" "src/ledger/CMakeFiles/decloud_ledger.dir/sealed_bid.cpp.o" "gcc" "src/ledger/CMakeFiles/decloud_ledger.dir/sealed_bid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/auction/CMakeFiles/decloud_auction.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/decloud_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/decloud_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/decloud_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/decloud_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/decloud_crypto.dir/hmac.cpp.o"
  "CMakeFiles/decloud_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/decloud_crypto.dir/merkle.cpp.o"
  "CMakeFiles/decloud_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/decloud_crypto.dir/pow.cpp.o"
  "CMakeFiles/decloud_crypto.dir/pow.cpp.o.d"
  "CMakeFiles/decloud_crypto.dir/sha256.cpp.o"
  "CMakeFiles/decloud_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/decloud_crypto.dir/signature.cpp.o"
  "CMakeFiles/decloud_crypto.dir/signature.cpp.o.d"
  "libdecloud_crypto.a"
  "libdecloud_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decloud_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdecloud_crypto.a"
)

# Empty dependencies file for decloud_crypto.
# This may be replaced when dependencies are built.

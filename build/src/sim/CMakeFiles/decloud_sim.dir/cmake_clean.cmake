file(REMOVE_RECURSE
  "CMakeFiles/decloud_sim.dir/event_queue.cpp.o"
  "CMakeFiles/decloud_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/decloud_sim.dir/network.cpp.o"
  "CMakeFiles/decloud_sim.dir/network.cpp.o.d"
  "CMakeFiles/decloud_sim.dir/node.cpp.o"
  "CMakeFiles/decloud_sim.dir/node.cpp.o.d"
  "CMakeFiles/decloud_sim.dir/simulation.cpp.o"
  "CMakeFiles/decloud_sim.dir/simulation.cpp.o.d"
  "libdecloud_sim.a"
  "libdecloud_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decloud_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for decloud_sim.
# This may be replaced when dependencies are built.

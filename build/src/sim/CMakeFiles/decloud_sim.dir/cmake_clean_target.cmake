file(REMOVE_RECURSE
  "libdecloud_sim.a"
)

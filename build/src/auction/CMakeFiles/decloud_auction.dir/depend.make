# Empty dependencies file for decloud_auction.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/auction/allocation.cpp" "src/auction/CMakeFiles/decloud_auction.dir/allocation.cpp.o" "gcc" "src/auction/CMakeFiles/decloud_auction.dir/allocation.cpp.o.d"
  "/root/repo/src/auction/bid.cpp" "src/auction/CMakeFiles/decloud_auction.dir/bid.cpp.o" "gcc" "src/auction/CMakeFiles/decloud_auction.dir/bid.cpp.o.d"
  "/root/repo/src/auction/cluster.cpp" "src/auction/CMakeFiles/decloud_auction.dir/cluster.cpp.o" "gcc" "src/auction/CMakeFiles/decloud_auction.dir/cluster.cpp.o.d"
  "/root/repo/src/auction/economics.cpp" "src/auction/CMakeFiles/decloud_auction.dir/economics.cpp.o" "gcc" "src/auction/CMakeFiles/decloud_auction.dir/economics.cpp.o.d"
  "/root/repo/src/auction/feasibility.cpp" "src/auction/CMakeFiles/decloud_auction.dir/feasibility.cpp.o" "gcc" "src/auction/CMakeFiles/decloud_auction.dir/feasibility.cpp.o.d"
  "/root/repo/src/auction/mcafee.cpp" "src/auction/CMakeFiles/decloud_auction.dir/mcafee.cpp.o" "gcc" "src/auction/CMakeFiles/decloud_auction.dir/mcafee.cpp.o.d"
  "/root/repo/src/auction/mechanism.cpp" "src/auction/CMakeFiles/decloud_auction.dir/mechanism.cpp.o" "gcc" "src/auction/CMakeFiles/decloud_auction.dir/mechanism.cpp.o.d"
  "/root/repo/src/auction/miniauction.cpp" "src/auction/CMakeFiles/decloud_auction.dir/miniauction.cpp.o" "gcc" "src/auction/CMakeFiles/decloud_auction.dir/miniauction.cpp.o.d"
  "/root/repo/src/auction/pricing.cpp" "src/auction/CMakeFiles/decloud_auction.dir/pricing.cpp.o" "gcc" "src/auction/CMakeFiles/decloud_auction.dir/pricing.cpp.o.d"
  "/root/repo/src/auction/qom.cpp" "src/auction/CMakeFiles/decloud_auction.dir/qom.cpp.o" "gcc" "src/auction/CMakeFiles/decloud_auction.dir/qom.cpp.o.d"
  "/root/repo/src/auction/resource.cpp" "src/auction/CMakeFiles/decloud_auction.dir/resource.cpp.o" "gcc" "src/auction/CMakeFiles/decloud_auction.dir/resource.cpp.o.d"
  "/root/repo/src/auction/trade_reduction.cpp" "src/auction/CMakeFiles/decloud_auction.dir/trade_reduction.cpp.o" "gcc" "src/auction/CMakeFiles/decloud_auction.dir/trade_reduction.cpp.o.d"
  "/root/repo/src/auction/verify.cpp" "src/auction/CMakeFiles/decloud_auction.dir/verify.cpp.o" "gcc" "src/auction/CMakeFiles/decloud_auction.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/decloud_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

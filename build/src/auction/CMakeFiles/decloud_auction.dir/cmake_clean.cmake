file(REMOVE_RECURSE
  "CMakeFiles/decloud_auction.dir/allocation.cpp.o"
  "CMakeFiles/decloud_auction.dir/allocation.cpp.o.d"
  "CMakeFiles/decloud_auction.dir/bid.cpp.o"
  "CMakeFiles/decloud_auction.dir/bid.cpp.o.d"
  "CMakeFiles/decloud_auction.dir/cluster.cpp.o"
  "CMakeFiles/decloud_auction.dir/cluster.cpp.o.d"
  "CMakeFiles/decloud_auction.dir/economics.cpp.o"
  "CMakeFiles/decloud_auction.dir/economics.cpp.o.d"
  "CMakeFiles/decloud_auction.dir/feasibility.cpp.o"
  "CMakeFiles/decloud_auction.dir/feasibility.cpp.o.d"
  "CMakeFiles/decloud_auction.dir/mcafee.cpp.o"
  "CMakeFiles/decloud_auction.dir/mcafee.cpp.o.d"
  "CMakeFiles/decloud_auction.dir/mechanism.cpp.o"
  "CMakeFiles/decloud_auction.dir/mechanism.cpp.o.d"
  "CMakeFiles/decloud_auction.dir/miniauction.cpp.o"
  "CMakeFiles/decloud_auction.dir/miniauction.cpp.o.d"
  "CMakeFiles/decloud_auction.dir/pricing.cpp.o"
  "CMakeFiles/decloud_auction.dir/pricing.cpp.o.d"
  "CMakeFiles/decloud_auction.dir/qom.cpp.o"
  "CMakeFiles/decloud_auction.dir/qom.cpp.o.d"
  "CMakeFiles/decloud_auction.dir/resource.cpp.o"
  "CMakeFiles/decloud_auction.dir/resource.cpp.o.d"
  "CMakeFiles/decloud_auction.dir/trade_reduction.cpp.o"
  "CMakeFiles/decloud_auction.dir/trade_reduction.cpp.o.d"
  "CMakeFiles/decloud_auction.dir/verify.cpp.o"
  "CMakeFiles/decloud_auction.dir/verify.cpp.o.d"
  "libdecloud_auction.a"
  "libdecloud_auction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decloud_auction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdecloud_auction.a"
)

file(REMOVE_RECURSE
  "libdecloud_stats.a"
)

# Empty dependencies file for decloud_stats.
# This may be replaced when dependencies are built.

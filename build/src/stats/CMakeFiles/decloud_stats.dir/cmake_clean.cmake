file(REMOVE_RECURSE
  "CMakeFiles/decloud_stats.dir/histogram.cpp.o"
  "CMakeFiles/decloud_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/decloud_stats.dir/kl_divergence.cpp.o"
  "CMakeFiles/decloud_stats.dir/kl_divergence.cpp.o.d"
  "CMakeFiles/decloud_stats.dir/loess.cpp.o"
  "CMakeFiles/decloud_stats.dir/loess.cpp.o.d"
  "CMakeFiles/decloud_stats.dir/summary.cpp.o"
  "CMakeFiles/decloud_stats.dir/summary.cpp.o.d"
  "libdecloud_stats.a"
  "libdecloud_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decloud_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Truthfulness demo: what happens when a client lies about its valuation?
//
// Replays Section IV-D's case analysis on a concrete market: the utility
// (true value − payment, averaged over randomization evidence) of an
// honest bid versus a sweep of misreport factors.
#include <cstdio>

#include "auction/mechanism.hpp"

using namespace decloud;

namespace {

auction::MarketSnapshot base_market() {
  auction::MarketSnapshot market;
  for (std::uint64_t i = 1; i <= 6; ++i) {
    auction::Request r;
    r.id = RequestId(i);
    r.client = ClientId(i);
    r.submitted = static_cast<Time>(i);
    r.resources.set(auction::ResourceSchema::kCpu, 1.0 + 0.2 * static_cast<double>(i));
    r.resources.set(auction::ResourceSchema::kMemory, 4.0);
    r.resources.set(auction::ResourceSchema::kDisk, 20.0);
    r.window_start = 0;
    r.window_end = 7200;
    r.duration = 3600;
    r.bid = 0.2 + 0.1 * static_cast<double>(i);  // true valuations 0.3 … 0.8
    market.requests.push_back(r);
  }
  // Scarce supply: only two machines with room for ~2 containers each, so
  // the six clients genuinely compete and the marginal ones can lose.
  for (std::uint64_t i = 1; i <= 2; ++i) {
    auction::Offer o;
    o.id = OfferId(i);
    o.provider = ProviderId(i);
    o.submitted = static_cast<Time>(i);
    o.resources.set(auction::ResourceSchema::kCpu, 3.0);
    o.resources.set(auction::ResourceSchema::kMemory, 9.0);
    o.resources.set(auction::ResourceSchema::kDisk, 50.0);
    o.window_start = 0;
    o.window_end = 86400;
    o.bid = 0.3 + 0.15 * static_cast<double>(i);  // true costs
    market.offers.push_back(o);
  }
  return market;
}

/// Mean utility of client 4 over several evidence seeds, evaluated at its
/// TRUE valuation regardless of what it reported.
double utility_of_client4(const auction::MarketSnapshot& reported, Money true_value) {
  const auction::DeCloudAuction mechanism;
  double total = 0.0;
  constexpr std::uint64_t kSeeds[] = {3, 17, 29, 41, 53};
  for (const auto seed : kSeeds) {
    const auto result = mechanism.run(reported, seed);
    for (const auto& m : result.matches) {
      if (reported.requests[m.request].client == ClientId(4)) {
        total += true_value - m.payment;
      }
    }
  }
  return total / static_cast<double>(std::size(kSeeds));
}

}  // namespace

int main() {
  const auction::MarketSnapshot truth = base_market();
  const Money true_value = truth.requests[3].bid;  // client 4's private valuation

  std::printf("Misreport demo — client 4, true valuation %.2f\n\n", true_value);
  std::printf("report-factor  reported-bid  mean-utility\n");

  double truthful_utility = 0.0;
  for (const double factor : {0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0}) {
    auction::MarketSnapshot reported = truth;
    reported.requests[3].bid = true_value * factor;
    const double u = utility_of_client4(reported, true_value);
    if (factor == 1.0) truthful_utility = u;
    std::printf("%13.2f  %12.3f  %12.5f%s\n", factor, true_value * factor, u,
                factor == 1.0 ? "   <- truthful" : "");
  }

  std::printf("\nDominant-strategy incentive compatibility means no row should "
              "meaningfully beat the truthful %.5f:\n", truthful_utility);
  std::printf("underbidding risks losing a profitable match (utility drops to 0);\n");
  std::printf("overbidding risks winning at a price above the true value (utility < 0).\n");
  return 0;
}

// Full decentralized round over the simulated P2P overlay: sealed bids,
// proof-of-work preamble, temporary-key disclosure, allocation suggestion,
// collective verification and smart-contract agreements — the complete
// two-phase bid exposure protocol of Fig. 2.
#include <cstdio>

#include "common/hex.hpp"
#include "ledger/protocol.hpp"
#include "sim/simulation.hpp"
#include "trace/workload.hpp"

using namespace decloud;

int main() {
  sim::SimulationConfig sc;
  sc.num_miners = 4;
  sc.num_participants = 8;
  sc.consensus.difficulty_bits = 12;  // ≈4k hash attempts per block
  sc.latency.base_ms = 20;
  sc.latency.jitter_ms = 60;
  sc.seed = 7;
  sim::Simulation simulation(sc);

  std::printf("DeCloud ledger round — %zu miners, %zu participants, difficulty %u bits\n\n",
              sc.num_miners, sc.num_participants, sc.consensus.difficulty_bits);

  for (std::size_t round = 0; round < 3; ++round) {
    // Queue a fresh trace-driven workload on the participants.
    trace::WorkloadConfig wc;
    wc.num_requests = 16;
    wc.num_offers = 8;
    Rng rng(1000 + round);
    const auto snap = trace::make_workload(wc, sc.consensus.auction, rng);
    for (std::size_t i = 0; i < snap.requests.size(); ++i) {
      simulation.participant(i % simulation.num_participants()).enqueue_request(snap.requests[i]);
    }
    for (std::size_t i = 0; i < snap.offers.size(); ++i) {
      simulation.participant(i % simulation.num_participants()).enqueue_offer(snap.offers[i]);
    }

    const std::size_t producer = round % sc.num_miners;
    const sim::RoundStats stats = simulation.run_round(producer);

    std::printf("round %zu (producer: miner %zu)\n", round, producer);
    std::printf("  consensus     : %s (%zu accept / %zu reject votes)\n",
                stats.accepted ? "block accepted" : "block REJECTED", stats.accept_votes,
                stats.reject_votes);
    std::printf("  latency       : %lld ms simulated, %zu overlay messages\n",
                static_cast<long long>(stats.round_ms), stats.messages);
    if (stats.accepted) {
      const auto& block = *simulation.miner(producer).last_block();
      std::printf("  block hash    : %s…\n",
                  to_hex({block.preamble.hash().data(), 8}).c_str());
      std::printf("  sealed bids   : %zu (merkle-committed in the preamble)\n",
                  block.preamble.sealed_bids.size());
      std::printf("  allocation    : %zu matches, welfare %.4f, %zu trades reduced\n",
                  stats.result.matches.size(), stats.result.welfare,
                  stats.result.reduced_trades);
      std::printf("  settlement    : %.4f paid == %.4f received\n",
                  stats.result.total_payments, stats.result.total_revenue);
    }
    std::printf("\n");
  }

  std::printf("chain height on every miner:");
  for (std::size_t m = 0; m < sc.num_miners; ++m) {
    std::printf(" %llu", static_cast<unsigned long long>(simulation.miner(m).chain().height()));
  }
  std::printf("\n");
  return 0;
}

// Market lifecycle: multi-round operation with resubmission, reputation
// and the TrueBit-style challenge game — the "online appearance to users"
// of Section VI emerging from block rounds.
#include <cstdio>

#include "common/rng.hpp"
#include "ledger/challenge.hpp"
#include "ledger/market.hpp"
#include "trace/workload.hpp"

using namespace decloud;

int main() {
  ledger::MarketConfig mc;
  mc.consensus.difficulty_bits = 10;
  mc.max_resubmissions = 3;
  mc.num_verifiers = 2;
  ledger::MarketOrchestrator market(mc);

  // A day of edge demand arriving in two waves.
  Rng rng(2024);
  trace::WorkloadConfig wc;
  wc.num_requests = 30;
  wc.num_offers = 12;
  const auto wave1 = trace::make_workload(wc, mc.consensus.auction, rng);
  for (const auto& r : wave1.requests) market.submit(r);
  for (const auto& o : wave1.offers) market.submit(o);

  std::printf("Market lifecycle — wave 1: %zu requests, %zu offers queued\n",
              wave1.requests.size(), wave1.offers.size());
  (void)market.run_round(0);
  std::printf("after round 1: %zu allocated, %zu bids re-queued\n",
              market.stats().requests_allocated, market.queued_bids());

  // Second wave brings more supply; the resubmitted leftovers clear.
  wc.num_requests = 10;
  wc.num_offers = 20;
  const auto wave2 = trace::make_workload(wc, mc.consensus.auction, rng);
  for (const auto& r : wave2.requests) market.submit(r);
  for (const auto& o : wave2.offers) market.submit(o);
  market.drain(/*max_rounds=*/6, /*start_time=*/600);

  const auto& st = market.stats();
  std::printf("\nafter %zu rounds:\n", st.rounds);
  std::printf("  allocated        : %zu/%zu (%.0f%%), abandoned %zu\n", st.requests_allocated,
              st.requests_submitted, 100.0 * st.allocation_rate(), st.requests_abandoned);
  std::printf("  welfare          : %.4f, settled %.4f\n", st.total_welfare, st.total_settled);
  std::printf("  latency histogram:");
  for (std::size_t k = 0; k < st.allocation_latency.size(); ++k) {
    std::printf("  round+%zu: %zu", k, st.allocation_latency[k]);
  }
  std::printf("\n  chain height     : %llu\n",
              static_cast<unsigned long long>(market.protocol().chain().height()));

  // Bonus: audit the last block with the TrueBit-style challenge game
  // instead of full collective verification.
  if (market.protocol().chain().height() > 0) {
    const auto& block = market.protocol().chain().blocks().back();
    const std::vector<ledger::Miner> pool(5, ledger::Miner(mc.consensus));
    const auto outcome =
        ledger::run_challenge_game(block.preamble, block.body, pool, ledger::ChallengeConfig{});
    std::printf("\nchallenge game on the tip block: %zu challengers sampled, %s\n",
                outcome.challengers.size(),
                outcome.fraud_proven ? "FRAUD PROVEN (producer slashed)"
                                     : "no fraud found (block stands)");
  }
  return 0;
}

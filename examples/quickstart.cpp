// Quickstart: build a small market by hand, run the DeCloud double
// auction, and inspect matches, payments and welfare.
//
//   $ ./examples/quickstart
//
// Three clients want containers hosted; two edge providers offer machines.
// The mechanism clusters compatible bids, clears a truthful price, and
// settles with strong budget balance.
#include <cstdio>

#include "auction/mechanism.hpp"
#include "auction/verify.hpp"

using namespace decloud;

namespace {

auction::Request make_request(std::uint64_t id, std::uint64_t client, double cpu, double mem_gb,
                              double disk_gb, Seconds duration, Money valuation) {
  auction::Request r;
  r.id = RequestId(id);
  r.client = ClientId(client);
  r.submitted = static_cast<Time>(id);
  r.resources.set(auction::ResourceSchema::kCpu, cpu);
  r.resources.set(auction::ResourceSchema::kMemory, mem_gb);
  r.resources.set(auction::ResourceSchema::kDisk, disk_gb);
  r.window_start = 0;
  r.window_end = 2 * duration;  // flexible placement inside a 2× window
  r.duration = duration;
  r.bid = valuation;  // DSIC: bidding the true valuation is optimal
  return r;
}

auction::Offer make_offer(std::uint64_t id, std::uint64_t provider, double cpu, double mem_gb,
                          double disk_gb, Seconds available, Money cost) {
  auction::Offer o;
  o.id = OfferId(id);
  o.provider = ProviderId(provider);
  o.submitted = static_cast<Time>(id);
  o.resources.set(auction::ResourceSchema::kCpu, cpu);
  o.resources.set(auction::ResourceSchema::kMemory, mem_gb);
  o.resources.set(auction::ResourceSchema::kDisk, disk_gb);
  o.window_start = 0;
  o.window_end = available;
  o.bid = cost;  // DSIC: reporting the true cost is optimal
  return o;
}

}  // namespace

int main() {
  auction::MarketSnapshot market;

  // Demand: three containers of different shapes and valuations.
  market.requests.push_back(make_request(1, /*client=*/1, 2, 8, 20, 3600, 0.40));
  market.requests.push_back(make_request(2, /*client=*/2, 1, 4, 10, 1800, 0.25));
  market.requests.push_back(make_request(3, /*client=*/3, 4, 16, 50, 7200, 0.90));

  // Supply: two machines for 24 h, plus a pricier spare whose cost can
  // serve as the truthful clearing price (the SBBA z'+1 trick).
  market.offers.push_back(make_offer(1, /*provider=*/1, 8, 32, 200, 86400, 0.60));
  market.offers.push_back(make_offer(2, /*provider=*/2, 4, 16, 100, 86400, 0.35));
  market.offers.push_back(make_offer(3, /*provider=*/3, 8, 32, 200, 86400, 0.95));

  const auction::DeCloudAuction mechanism;  // default AuctionConfig
  // The seed is the verifiable-randomization evidence; on the ledger it is
  // the block hash.
  const auction::RoundResult result = mechanism.run(market, /*seed=*/42);

  std::printf("DeCloud quickstart — %zu requests, %zu offers\n", market.requests.size(),
              market.offers.size());
  std::printf("matches: %zu (tentative %zu, reduced %zu)\n\n", result.matches.size(),
              result.tentative_trades, result.reduced_trades);

  for (const auction::Match& m : result.matches) {
    const auto& r = market.requests[m.request];
    const auto& o = market.offers[m.offer];
    std::printf("  client %llu -> provider %llu : fraction %.3f, pays %.4f (bid %.4f)\n",
                static_cast<unsigned long long>(r.client.value()),
                static_cast<unsigned long long>(o.provider.value()), m.fraction, m.payment,
                r.bid);
  }

  std::printf("\nwelfare             : %.4f\n", result.welfare);
  std::printf("total payments      : %.4f\n", result.total_payments);
  std::printf("total revenues      : %.4f  (strong budget balance)\n", result.total_revenue);

  // Every block is re-verified by the other miners; do the same here.
  const auto report = auction::verify_invariants(market, result, mechanism.config());
  std::printf("invariants          : %s\n", report.ok() ? "all hold" : report.violations[0].c_str());
  const auto replay = auction::verify_replay(market, result, mechanism.config(), 42);
  std::printf("deterministic replay: %s\n", replay.ok() ? "exact" : "MISMATCH");
  return 0;
}

// Sharded continuous market: many regional DeCloud markets behind one
// engine.  Bids stream in with locations, the ShardRouter places each in
// its regional market, bounded ingest queues push back when a region is
// flooded, and the EpochScheduler clears every busy shard each tick —
// the deployment shape ROADMAP's "planet-scale" direction calls for.
#include <cstdio>

#include "engine/driver.hpp"
#include "engine/engine.hpp"
#include "engine/epoch_scheduler.hpp"

using namespace decloud;

namespace {

const char* admission_name(Admission a) {
  switch (a) {
    case Admission::kAccepted:
      return "accepted";
    case Admission::kQueued:
      return "queued (congested)";
    case Admission::kRejected:
      return "REJECTED";
  }
  return "?";
}

}  // namespace

int main() {
  // Four regional markets over a 100x100 coordinate box; location-less
  // bids hash onto a shard.  Tiny per-shard queues make admission control
  // visible in the output.
  engine::EngineConfig config;
  config.router.num_shards = 4;
  config.router.x1 = 100.0;
  config.router.y1 = 100.0;
  config.router.spillover = engine::SpilloverPolicy::kHashId;
  config.queue_capacity = 48;
  config.queue_watermark = 32;
  config.market.consensus.difficulty_bits = 10;
  config.market.num_verifiers = 1;
  config.market.consensus.auction.threads = 1;  // parallelism lives across shards

  engine::MarketEngine engine(config);
  engine::EpochScheduler scheduler(engine, /*threads=*/0);  // 0 = hardware

  std::printf("Sharded market: %zu shards, queue capacity %zu (watermark %zu), %zu threads\n\n",
              engine.num_shards(), config.queue_capacity, config.queue_watermark,
              scheduler.threads());

  // Stream a trace workload through: 10%% of bids arrive location-less.
  engine::TraceDriverConfig driver;
  driver.workload.num_requests = 160;
  driver.workload.num_offers = 80;
  driver.located_fraction = 0.9;
  driver.bids_per_epoch = 60;
  driver.seed = 42;
  const engine::DriveOutcome outcome = drive_trace(engine, scheduler, driver);

  // One hand-made VIP bid to show the admission result a producer sees.
  auction::Request vip;
  vip.id = RequestId(1'000'000);
  vip.client = ClientId(999);
  vip.resources.set(auction::ResourceSchema::kCpu, 2.0);
  vip.window_end = 1'000'000;
  vip.duration = 3600;
  vip.bid = 10.0;
  vip.location = auction::Location{12.0, 88.0};
  const engine::EngineAdmission admission = engine.submit(vip);
  std::printf("VIP request at (12, 88): %s by shard %zu\n\n",
              admission_name(admission.status), admission.shard);
  scheduler.run(/*max_epochs=*/8, /*start_time=*/static_cast<Time>(driver.epoch_interval) * 16);

  const engine::EngineReport report = scheduler.report();
  std::printf("engine: %zu epochs, %zu bids spilled, %zu rejected by backpressure\n",
              report.epochs, report.bids_spilled, report.bids_rejected_backpressure);
  std::printf("totals: %zu/%zu requests allocated (%.0f%%), welfare %.3f\n\n",
              report.total.requests_allocated, report.total.requests_submitted,
              100.0 * report.total.allocation_rate(), report.total.total_welfare);
  std::printf("%-6s %-8s %-8s %-10s %-10s %-8s\n", "shard", "epochs", "reqs", "allocated",
              "welfare", "spilled");
  for (const engine::ShardReport& shard : report.shards) {
    std::printf("%-6zu %-8zu %-8zu %-10zu %-10.3f %-8zu\n", shard.shard, shard.epochs,
                shard.stats.requests_submitted, shard.stats.requests_allocated,
                shard.welfare(), shard.bids_spilled);
  }
  return 0;
}

// Federated cloud load balancing: several mid-size cloud providers run a
// *private* DeCloud deployment to trade spare capacity among themselves
// (Section II-A: "some mid-scale or even large cloud providers can have
// private blockchains, trading in DeCloud to balance the load and optimize
// machine running costs").
//
// Overloaded regions submit requests; underloaded regions offer machines.
// The trace-driven workload uses the Google-style generator and the EC2 M5
// catalog, exactly like the paper's evaluation.
#include <cstdio>
#include <map>

#include "auction/mechanism.hpp"
#include "trace/workload.hpp"

using namespace decloud;

int main() {
  // Four federation members; members 0/1 are overloaded (demand), 2/3 have
  // spare machines (supply).
  const char* members[] = {"eu-north", "eu-central", "us-east", "ap-south"};

  trace::WorkloadConfig wc;
  wc.num_requests = 60;
  wc.num_offers = 30;
  wc.requests_per_client = 30.0;  // two demanding members
  wc.offers_per_provider = 15.0;  // two supplying members
  wc.ec2.cost_spread = 0.25;      // regions price machines differently

  auction::AuctionConfig cfg;
  Rng rng(31337);
  const auto market = trace::make_workload(wc, cfg, rng);

  const auto result = auction::DeCloudAuction(cfg).run(market, /*seed=*/99);

  std::printf("Federated cloud exchange — %zu requests from overloaded regions, "
              "%zu offers of spare machines\n\n",
              market.requests.size(), market.offers.size());

  // Aggregate flows between members.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::pair<std::size_t, Money>> flows;
  for (const auction::Match& m : result.matches) {
    const auto from = market.requests[m.request].client.value();
    const auto to = market.offers[m.offer].provider.value();
    auto& f = flows[{from, to}];
    f.first += 1;
    f.second += m.payment;
  }
  for (const auto& [edge, stat] : flows) {
    std::printf("  %-11s -> %-9s : %3zu containers, %.4f settled\n",
                members[edge.first % 4], members[2 + edge.second % 2], stat.first, stat.second);
  }

  std::printf("\ncontainers placed   : %zu/%zu\n", result.matches.size(),
              market.requests.size());
  std::printf("welfare             : %.4f\n", result.welfare);
  std::printf("settlement          : %.4f paid == %.4f received\n", result.total_payments,
              result.total_revenue);
  std::printf("trades lost to DSIC : %zu of %zu tentative\n", result.reduced_trades,
              result.tentative_trades);
  return 0;
}

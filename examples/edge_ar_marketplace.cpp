// Edge AR marketplace: latency-sensitive augmented-reality backends bid
// for nearby edge capacity.
//
// This scenario exercises the extensible bidding language (Section IV-B):
// network latency and physical proximity are ordinary resource types, and
// clients weight them with significance values — an AR client cares more
// about being close than about disk space.
#include <cstdio>

#include "auction/mechanism.hpp"
#include "auction/qom.hpp"
#include "common/rng.hpp"

#include <cmath>

using namespace decloud;

int main() {
  auction::ResourceSchema schema;
  const auction::ResourceId sgx = schema.intern("sgx");

  auction::MarketSnapshot market;
  Rng rng(7);

  // Edge providers scattered around a city centre (coordinates in km).
  struct Site {
    double x, y, cpu, mem;
    Money cost;
    bool has_tee;
  };
  const Site sites[] = {
      {0.5, 0.3, 8, 32, 0.40, true},    // downtown cabinet, TEE-capable
      {1.2, -0.8, 16, 64, 0.55, false}, // mall server room
      {4.0, 3.5, 16, 64, 0.30, false},  // suburban DC, cheap but far
      {0.1, -0.2, 4, 16, 0.50, true},   // 5G tower co-location
  };
  std::uint64_t oid = 1;
  for (const Site& s : sites) {
    auction::Offer o;
    o.id = OfferId(oid);
    o.provider = ProviderId(oid);
    o.submitted = static_cast<Time>(oid++);
    o.resources.set(auction::ResourceSchema::kCpu, s.cpu);
    o.resources.set(auction::ResourceSchema::kMemory, s.mem);
    o.resources.set(auction::ResourceSchema::kDisk, 100);
    if (s.has_tee) o.resources.set(sgx, 1.0);
    o.window_start = 0;
    o.window_end = 4 * 3600;
    o.bid = s.cost;
    o.location = auction::Location{s.x, s.y};
    market.offers.push_back(o);
  }

  // AR sessions: small compute, strict latency preference via proximity,
  // one privacy-sensitive client demanding a TEE (Section II-D).
  for (std::uint64_t i = 1; i <= 6; ++i) {
    auction::Request r;
    r.id = RequestId(i);
    r.client = ClientId(i);
    r.submitted = static_cast<Time>(i);
    r.resources.set(auction::ResourceSchema::kCpu, rng.uniform(1.0, 3.0));
    r.resources.set(auction::ResourceSchema::kMemory, rng.uniform(2.0, 8.0));
    r.resources.set(auction::ResourceSchema::kDisk, 5.0);
    // Disk barely matters for an AR relay; say so with a low significance.
    r.significance.set(auction::ResourceSchema::kDisk, 0.1);
    if (i == 3) r.resources.set(sgx, 1.0);  // strict TEE demand (σ defaults to 1)
    r.window_start = 0;
    r.window_end = 2 * 3600;
    r.duration = 3600;
    r.bid = rng.uniform(0.1, 0.4);
    r.location = auction::Location{rng.uniform(-0.5, 1.5), rng.uniform(-1.0, 1.0)};
    market.requests.push_back(r);
  }

  // Fold locations into a "proximity" resource so closeness competes in
  // the quality-of-match like CPU or RAM does.
  auction::augment_with_proximity(market, schema, auction::Location{0.0, 0.0},
                                  /*significance=*/0.9);

  auction::AuctionConfig cfg;
  cfg.best_offer_ratio = 0.5;  // city-scale markets: keep a few candidate sites
  const auto result = auction::DeCloudAuction(cfg).run(market, 2026);

  std::printf("Edge AR marketplace — %zu sessions, %zu sites\n\n", market.requests.size(),
              market.offers.size());
  for (const auction::Match& m : result.matches) {
    const auto& r = market.requests[m.request];
    const auto& o = market.offers[m.offer];
    const double dx = r.location->x - o.location->x;
    const double dy = r.location->y - o.location->y;
    std::printf(
        "  session %llu -> site %llu  (%.1f km apart%s), pays %.4f of bid %.4f\n",
        static_cast<unsigned long long>(r.id.value()),
        static_cast<unsigned long long>(o.id.value()), std::sqrt(dx * dx + dy * dy),
        r.resources.has(sgx) ? ", TEE" : "", m.payment, r.bid);
  }
  std::printf("\nallocated %zu/%zu sessions, welfare %.4f\n", result.matches.size(),
              market.requests.size(), result.welfare);

  // The TEE-demanding session, if matched, must sit on TEE hardware.
  for (const auction::Match& m : result.matches) {
    if (market.requests[m.request].resources.has(sgx)) {
      std::printf("TEE session hosted on TEE-capable site: %s\n",
                  market.offers[m.offer].resources.has(sgx) ? "yes" : "NO (bug!)");
    }
  }
  return 0;
}

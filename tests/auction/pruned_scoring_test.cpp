// The scoring-path contract (DESIGN.md §3g): the sparse quality_of_match
// walk, the dense ScoreMatrix kernels (score / score_sparse / score_row)
// and the CandidateIndex-pruned shortlist query are BIT-identical — same
// doubles, same best-offer sets, same RoundResult bytes.  Miners replay
// allocations on arbitrary hardware with either path, so any divergence is
// a consensus break, not a tolerance question.  Every comparison below is
// exact; there are no epsilons anywhere in this file.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "auction/allocation.hpp"
#include "auction/best_select.hpp"
#include "auction/candidate_index.hpp"
#include "auction/mechanism.hpp"
#include "auction/score_matrix.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "test_helpers.hpp"
#include "trace/workload.hpp"

namespace decloud::auction {
namespace {

using test::OfferBuilder;
using test::RequestBuilder;

/// Hand-rolled random market exercising the index's edge cases on purpose:
///   * resource ids with gaps (3, 4, 6, ... never appear → zero-max
///     BlockScale dimensions inside the dense row);
///   * a type declared with amount 0 on every request (declared but
///     normalizing to 0 — its Eq. 18 term is exactly +0.0);
///   * `disjoint` = half the offers draw from a type pool sharing nothing
///     with the requests, so many pairs score exactly 0 and whole cells
///     die on the type-mask test.
MarketSnapshot random_snapshot(std::uint64_t seed, std::size_t num_requests,
                               std::size_t num_offers, bool disjoint) {
  Rng rng(seed);
  const std::vector<ResourceId> req_pool = {0, 1, 2, 5, 7, 10};
  const std::vector<ResourceId> off_pool = {12, 13, 15};  // disjoint from req_pool

  MarketSnapshot s;
  s.requests.reserve(num_requests);
  for (std::size_t i = 0; i < num_requests; ++i) {
    RequestBuilder b(i);
    b.submitted(static_cast<Time>(rng.uniform_int(0, 50)));
    // Rebuild resources from the pool (the builder pre-set cpu/mem/disk;
    // overwrite them and add the pool extras).
    for (const ResourceId k : req_pool) {
      if (rng.bernoulli(0.6)) {
        b.resource(k, rng.uniform(0.1, 8.0));
        b.significance(k, rng.uniform(0.05, 1.0));
      }
    }
    b.resource(ResourceId{14}, 0.0);  // declared, block max 0 → ρ' = 0
    const Time ws = static_cast<Time>(rng.uniform_int(0, 2000));
    const Time len = static_cast<Time>(rng.uniform_int(100, 4000));
    b.window(ws, ws + len);
    b.duration(static_cast<Seconds>(rng.uniform_int(50, len)));
    b.bid(rng.uniform(0.1, 5.0));
    Request r = b.build();
    if (rng.bernoulli(0.5)) r.reputation = rng.uniform(0.0, 1.0);
    s.requests.push_back(r);
  }

  s.offers.reserve(num_offers);
  for (std::size_t i = 0; i < num_offers; ++i) {
    OfferBuilder b(i);
    b.submitted(static_cast<Time>(rng.uniform_int(0, 20)));
    const bool off_side = disjoint && i % 2 == 0;
    for (const ResourceId k : off_side ? off_pool : req_pool) {
      if (rng.bernoulli(0.7)) b.resource(k, rng.uniform(0.5, 16.0));
    }
    const Time ws = static_cast<Time>(rng.uniform_int(0, 1500));
    const Time len = static_cast<Time>(rng.uniform_int(500, 8000));
    b.window(ws, ws + len);
    b.bid(rng.uniform(0.1, 5.0));
    Offer o = b.build();
    if (rng.bernoulli(0.3)) o.min_reputation = rng.uniform(0.0, 1.0);
    s.offers.push_back(o);
  }
  return s;
}

/// Every scorer and every selection path, compared pairwise and exactly.
void expect_paths_identical(const MarketSnapshot& s, const std::string& label) {
  const AuctionConfig cfg;
  const BlockScale scale(s.requests, s.offers);
  const ScoreMatrix scores(s, scale);
  const CandidateIndex index(s, scale, scores);
  CandidateIndex::Scratch scratch;
  std::vector<double> row(s.offers.size());

  for (std::size_t r = 0; r < s.requests.size(); ++r) {
    scores.score_row(r, row);
    for (std::size_t o = 0; o < s.offers.size(); ++o) {
      const double sparse = quality_of_match(s.requests[r], s.offers[o], scale);
      const double dense = scores.score(r, o);
      ASSERT_EQ(sparse, dense) << label << " r=" << r << " o=" << o;
      ASSERT_EQ(dense, scores.score_sparse(r, o)) << label << " r=" << r << " o=" << o;
      ASSERT_EQ(dense, row[o]) << label << " score_row r=" << r << " o=" << o;
      // The static bound must dominate the computed q (the pruning
      // soundness condition, including its floating-point rounding).
      ASSERT_LE(dense, index.upper_bound(o)) << label << " ub r=" << r << " o=" << o;
    }

    const auto reference = best_offers_reference(s.requests[r], s, scale, cfg);
    const auto sparse_sel = best_offers(s.requests[r], s, scale, cfg);
    const auto dense_sel = best_offers(r, s, scores, cfg);
    const auto row_sel = best_offers_from_row(r, s, row, cfg);
    const auto pruned_sel = index.best_offers(r, s, scores, cfg, scratch);
    ASSERT_EQ(reference, sparse_sel) << label << " sparse r=" << r;
    ASSERT_EQ(reference, dense_sel) << label << " dense r=" << r;
    ASSERT_EQ(reference, row_sel) << label << " row r=" << r;
    ASSERT_EQ(reference, pruned_sel) << label << " pruned r=" << r;
  }
}

TEST(PrunedScoringTest, RandomizedOverlappingTypes) {
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    expect_paths_identical(random_snapshot(seed, 48, 96, /*disjoint=*/false),
                           "overlap seed=" + std::to_string(seed));
  }
}

TEST(PrunedScoringTest, RandomizedDisjointTypes) {
  for (const std::uint64_t seed : {55u, 66u, 77u}) {
    expect_paths_identical(random_snapshot(seed, 32, 80, /*disjoint=*/true),
                           "disjoint seed=" + std::to_string(seed));
  }
}

TEST(PrunedScoringTest, WorkloadSnapshots) {
  for (const std::uint64_t seed : {1u, 9u}) {
    trace::WorkloadConfig wc;
    wc.num_requests = 96;
    wc.num_offers = 80;
    Rng rng(seed);
    expect_paths_identical(trace::make_workload(wc, AuctionConfig{}, rng),
                           "workload seed=" + std::to_string(seed));
  }
}

TEST(PrunedScoringTest, RoundResultBytesMatchDense) {
  // The whole-mechanism contract, as CI enforces it: dense and pruned runs
  // serialize to the SAME canonical JSON bytes, at 1, 2 and hardware
  // threads.  round_result_json prints %.17g, so byte equality here is bit
  // equality of every double in the allocation.
  trace::WorkloadConfig wc;
  wc.num_requests = 200;
  wc.num_offers = 100;
  Rng rng(3);
  const auto snapshot = trace::make_workload(wc, AuctionConfig{}, rng);

  AuctionConfig dense_cfg;
  dense_cfg.threads = 1;
  dense_cfg.scoring = ScoringPath::kDense;
  const std::string want = round_result_json(DeCloudAuction(dense_cfg).run(snapshot, 42));
  ASSERT_FALSE(want.empty());

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    ThreadPool::default_workers()}) {
    AuctionConfig pruned_cfg;
    pruned_cfg.threads = threads;
    pruned_cfg.scoring = ScoringPath::kPruned;
    EXPECT_EQ(want, round_result_json(DeCloudAuction(pruned_cfg).run(snapshot, 42)))
        << "threads=" << threads;

    AuctionConfig auto_cfg;
    auto_cfg.threads = threads;
    auto_cfg.scoring = ScoringPath::kAuto;  // ≥ kMinPrunedOffers → pruned
    EXPECT_EQ(want, round_result_json(DeCloudAuction(auto_cfg).run(snapshot, 42)))
        << "auto threads=" << threads;
  }
}

TEST(PrunedScoringTest, TieGroupDedupIsExact) {
  // Catalog-shaped market: many offers byte-identical in (window,
  // resources) — exact q ties against every request, ranked only by
  // (submitted, id).  The index keeps just kGroupCap members of each group
  // in its scan cells (structural fact 4 in candidate_index.hpp); the
  // query must still match the dense reference exactly, both under the
  // default cap and under a cap LARGER than kGroupCap (which forces the
  // overflow fallback).
  Rng rng(123);
  MarketSnapshot s;
  for (std::size_t i = 0; i < 24; ++i) {
    RequestBuilder b(i);
    b.resource(ResourceId{0}, rng.uniform(0.5, 4.0));
    b.significance(ResourceId{0}, rng.uniform(0.2, 1.0));
    b.resource(ResourceId{1}, rng.uniform(1.0, 16.0));
    b.significance(ResourceId{1}, rng.uniform(0.2, 1.0));
    const Time ws = static_cast<Time>(rng.uniform_int(0, 500));
    b.window(ws, ws + 2000);
    b.duration(1000);
    s.requests.push_back(b.build());
  }
  // Three profiles × one shared window, ~30 offers each: group sizes far
  // beyond kGroupCap (16) and beyond any cap used below.
  const double profile[3][2] = {{2.0, 8.0}, {4.0, 16.0}, {8.0, 32.0}};
  for (std::size_t i = 0; i < 90; ++i) {
    OfferBuilder b(i);
    b.submitted(static_cast<Time>(rng.uniform_int(0, 40)));
    b.resource(ResourceId{0}, profile[i % 3][0]);
    b.resource(ResourceId{1}, profile[i % 3][1]);
    b.window(0, 86400);
    b.bid(rng.uniform(0.1, 5.0));  // bid varies WITHIN a group: not keyed
    s.offers.push_back(b.build());
  }

  const BlockScale scale(s.requests, s.offers);
  const ScoreMatrix scores(s, scale);
  const CandidateIndex index(s, scale, scores);
  CandidateIndex::Scratch scratch;
  for (const std::size_t cap : {std::size_t{1}, std::size_t{4},
                                CandidateIndex::kGroupCap,
                                CandidateIndex::kGroupCap + 9}) {
    AuctionConfig cfg;
    cfg.max_best_offers = cap;
    for (std::size_t r = 0; r < s.requests.size(); ++r) {
      ASSERT_EQ(best_offers_reference(s.requests[r], s, scale, cfg),
                index.best_offers(r, s, scores, cfg, scratch))
          << "cap=" << cap << " r=" << r;
    }
  }
}

TEST(PrunedScoringTest, TieGroupKeyIncludesMinReputation) {
  // Regression: offers identical in (window, resources) but with DIFFERENT
  // min_reputation gates give different feasibility verdicts, so they must
  // NOT share a tie group.  With a key that ignores the gate, a catalog of
  // > kGroupCap such offers puts the later members in the overflow list —
  // never scanned under the default cap — and a low-reputation request
  // silently loses its only feasible offers, diverging from the dense path.
  MarketSnapshot s;
  for (std::size_t i = 0; i < 8; ++i) {
    Request r = RequestBuilder(i).build();
    r.reputation = (i % 2 == 0) ? 0.5 : 1.0;  // half rejected by the gate
    s.requests.push_back(r);
  }
  // One catalog profile, one window, 2 × 20 offers (each reputation
  // subgroup larger than kGroupCap).  The 20 gated offers come FIRST in
  // (submitted, id) order, so a reputation-blind key would fill every
  // kGroupCap scan slot with offers a reputation-0.5 request can never use.
  for (std::size_t i = 0; i < 40; ++i) {
    Offer o = OfferBuilder(i).build();  // submitted = id by default
    o.min_reputation = i < 20 ? 0.8 : 0.0;
    s.offers.push_back(o);
  }

  const BlockScale scale(s.requests, s.offers);
  const ScoreMatrix scores(s, scale);
  const CandidateIndex index(s, scale, scores);
  CandidateIndex::Scratch scratch;
  for (const std::size_t cap : {std::size_t{1}, std::size_t{4},
                                CandidateIndex::kGroupCap + 2}) {
    AuctionConfig cfg;
    cfg.max_best_offers = cap;
    for (std::size_t r = 0; r < s.requests.size(); ++r) {
      ASSERT_EQ(best_offers_reference(s.requests[r], s, scale, cfg),
                index.best_offers(r, s, scores, cfg, scratch))
          << "cap=" << cap << " r=" << r;
    }
  }
  // Sanity on the scenario itself: under the default cap a gated request's
  // best set is the four earliest UNGATED offers — non-empty, and none of
  // the high-threshold catalog entries.
  const AuctionConfig cfg;
  EXPECT_EQ((std::vector<std::size_t>{20, 21, 22, 23}),
            index.best_offers(0, s, scores, cfg, scratch));
}

// --- Bounded top-k tie-break regression (the (q, submitted, id) order the
// full sort used must survive the selection rewrite verbatim).

TEST(BestOfferTieBreak, EqualQualityFallsBackToSubmittedThenId) {
  MarketSnapshot s;
  s.requests.push_back(RequestBuilder(0).window(0, 3600).duration(1800).build());
  // Six byte-identical offers (equal q against the request) differing only
  // in (submitted, id).  Cap 4 → the four earliest by (submitted, id) win:
  // submitted 1 (id 4), then submitted 2 in id order (ids 1, 2, 5); the
  // submitted-7 and submitted-9 offers are displaced.
  const Time submitted[] = {9, 2, 2, 7, 1, 2};
  for (std::size_t i = 0; i < 6; ++i) {
    s.offers.push_back(OfferBuilder(i).submitted(submitted[i]).window(0, 86400).build());
  }
  const AuctionConfig cfg;  // max_best_offers = 4
  const BlockScale scale(s.requests, s.offers);

  const auto got = best_offers(s.requests[0], s, scale, cfg);
  EXPECT_EQ((std::vector<std::size_t>{1, 2, 4, 5}), got);
  EXPECT_EQ(best_offers_reference(s.requests[0], s, scale, cfg), got);
}

TEST(BestOfferTieBreak, SelectorIsInsertionOrderIndependent) {
  // The selection is a function of the SET of (offer, q) pairs, not of the
  // order they are considered in — the pruned path feeds candidates in
  // ub-merge order, the dense path in index order, and both must agree.
  std::vector<Offer> offers;
  const Time submitted[] = {4, 4, 1, 3, 3, 2};
  for (std::size_t i = 0; i < 6; ++i) {
    offers.push_back(OfferBuilder(i).submitted(submitted[i]).build());
  }
  const double q[] = {0.5, 0.8, 0.5, 0.8, 0.5, 0.5};

  const auto select = [&](const std::vector<std::size_t>& order) {
    BestOfferSelector sel(offers, 4);
    for (const std::size_t o : order) sel.consider(o, q[o]);
    return sel.finish(0.0);  // ratio 0: cap is the only cut
  };
  // Ranking: q=0.8 → ids 3 (submitted 3), 1 (submitted 4); then q=0.5 →
  // id 2 (submitted 1), id 5 (submitted 2), id 4, id 0.  Cap 4 keeps
  // {3, 1, 2, 5} → sorted {1, 2, 3, 5}.
  const std::vector<std::size_t> want = {1, 2, 3, 5};
  EXPECT_EQ(want, select({0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(want, select({5, 4, 3, 2, 1, 0}));
  EXPECT_EQ(want, select({3, 1, 5, 0, 2, 4}));
  EXPECT_EQ(want, select({2, 0, 4, 5, 1, 3}));
}

TEST(BestOfferTieBreak, ThresholdPrefixMatchesFullSortSemantics) {
  // best_offer_ratio must cut a PREFIX of the held ranking — an offer below
  // ratio·top never rides in on the tie-break.
  std::vector<Offer> offers;
  for (std::size_t i = 0; i < 4; ++i) offers.push_back(OfferBuilder(i).build());
  BestOfferSelector sel(offers, 4);
  sel.consider(0, 1.0);
  sel.consider(1, 0.95);
  sel.consider(2, 0.89);  // below 0.9 · 1.0
  sel.consider(3, 0.91);
  EXPECT_EQ((std::vector<std::size_t>{0, 1, 3}), sel.finish(0.9));
}

}  // namespace
}  // namespace decloud::auction

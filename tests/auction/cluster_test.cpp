#include "auction/cluster.hpp"

#include <gtest/gtest.h>

#include "common/ensure.hpp"

namespace decloud::auction {
namespace {

TEST(SortedHelpers, IsSubset) {
  EXPECT_TRUE(is_subset({1, 3}, {1, 2, 3}));
  EXPECT_TRUE(is_subset({}, {1}));
  EXPECT_TRUE(is_subset({1, 2, 3}, {1, 2, 3}));
  EXPECT_FALSE(is_subset({1, 4}, {1, 2, 3}));
  EXPECT_FALSE(is_subset({1, 2, 3}, {1, 2}));
}

TEST(SortedHelpers, IntersectSorted) {
  EXPECT_EQ(intersect_sorted({1, 2, 3, 5}, {2, 3, 4}), (std::vector<std::size_t>{2, 3}));
  EXPECT_TRUE(intersect_sorted({1}, {2}).empty());
}

TEST(SortedHelpers, InsertSortedUnique) {
  std::vector<std::size_t> v = {1, 3};
  insert_sorted_unique(v, 2);
  EXPECT_EQ(v, (std::vector<std::size_t>{1, 2, 3}));
  insert_sorted_unique(v, 2);  // no duplicate
  EXPECT_EQ(v, (std::vector<std::size_t>{1, 2, 3}));
  insert_sorted_unique(v, 0);
  insert_sorted_unique(v, 9);
  EXPECT_EQ(v, (std::vector<std::size_t>{0, 1, 2, 3, 9}));
}

TEST(SortedHelpers, MergeSortedUnique) {
  std::vector<std::size_t> dst = {1, 3, 5};
  merge_sorted_unique(dst, {2, 3, 6});
  EXPECT_EQ(dst, (std::vector<std::size_t>{1, 2, 3, 5, 6}));
}

TEST(ClusterSet, CreatesClusterForNewBestSet) {
  ClusterSet cs;
  cs.update(/*request=*/0, {1, 2});
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_EQ(cs.clusters()[0].offers, (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(cs.clusters()[0].requests, (std::vector<std::size_t>{0}));
}

TEST(ClusterSet, SameBestSetAccumulatesRequests) {
  ClusterSet cs;
  cs.update(0, {1, 2});
  cs.update(5, {1, 2});
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_EQ(cs.clusters()[0].requests, (std::vector<std::size_t>{0, 5}));
}

TEST(ClusterSet, RequestJoinsSubsetClusters) {
  // Existing cluster {1} is a subset of the new best set {1,2}: the new
  // request can be served by offer 1 as well, so it joins that cluster too.
  ClusterSet cs;
  cs.update(0, {1});
  cs.update(7, {1, 2});
  ASSERT_EQ(cs.size(), 2u);
  const auto& small = cs.clusters()[0];
  EXPECT_EQ(small.offers, (std::vector<std::size_t>{1}));
  EXPECT_EQ(small.requests, (std::vector<std::size_t>{0, 7}));
}

TEST(ClusterSet, SupersetRequestsPropagateIntoSubsets) {
  // Cluster {1,2,3} exists with request 0; new request 9 arrives with best
  // set {1,2} ⊂ {1,2,3}.  Request 0 (served by any of 1,2,3) joins the
  // finer cluster alongside 9.
  ClusterSet cs;
  cs.update(0, {1, 2, 3});
  cs.update(9, {1, 2});
  const auto& clusters = cs.clusters();
  bool found = false;
  for (const auto& c : clusters) {
    if (c.offers == std::vector<std::size_t>{1, 2}) {
      EXPECT_EQ(c.requests, (std::vector<std::size_t>{0, 9}));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ClusterSet, PartialOverlapSpawnsIntersectionCluster) {
  // {1,2,3} then best set {2,3,4}: shared offers {2,3} (> 1) spawn an
  // intersection cluster holding both requests.
  ClusterSet cs;
  cs.update(0, {1, 2, 3});
  cs.update(4, {2, 3, 4});
  bool found = false;
  for (const auto& c : cs.clusters()) {
    if (c.offers == std::vector<std::size_t>{2, 3}) {
      EXPECT_EQ(c.requests, (std::vector<std::size_t>{0, 4}));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ClusterSet, SingleSharedOfferDoesNotSpawnIntersection) {
  ClusterSet cs;
  cs.update(0, {1, 2});
  cs.update(1, {2, 3});
  for (const auto& c : cs.clusters()) {
    EXPECT_NE(c.offers, std::vector<std::size_t>{2});  // |∩| = 1: no new cluster
  }
  EXPECT_EQ(cs.size(), 2u);
}

TEST(ClusterSet, ExistingIntersectionClusterIsExtended) {
  ClusterSet cs;
  cs.update(0, {2, 3});        // pre-existing cluster on exactly the intersection
  cs.update(1, {1, 2, 3});     // subset propagation adds 1 to {2,3}
  cs.update(5, {2, 3, 4});     // intersection with {1,2,3} is {2,3} → extend it
  for (const auto& c : cs.clusters()) {
    if (c.offers == std::vector<std::size_t>{2, 3}) {
      EXPECT_EQ(c.requests, (std::vector<std::size_t>{0, 1, 5}));
    }
  }
}

TEST(ClusterSet, EmptyBestSetRejected) {
  ClusterSet cs;
  EXPECT_THROW(cs.update(0, {}), precondition_error);
}

TEST(ClusterSet, UnsortedBestSetRejected) {
  ClusterSet cs;
  EXPECT_THROW(cs.update(0, {2, 1}), precondition_error);
}

TEST(ClusterSet, ManyRequestsStaySane) {
  ClusterSet cs;
  for (std::size_t r = 0; r < 100; ++r) {
    cs.update(r, {r % 5, 5 + r % 3});
  }
  // Bounded distinct offer-sets → bounded clusters (15 pairs + intersections).
  EXPECT_LE(cs.size(), 40u);
  for (const auto& c : cs.clusters()) {
    EXPECT_TRUE(std::is_sorted(c.requests.begin(), c.requests.end()));
    EXPECT_TRUE(std::is_sorted(c.offers.begin(), c.offers.end()));
  }
}

}  // namespace
}  // namespace decloud::auction

// Replays the worked examples behind Fig. 3 of the paper (McAfee pricing)
// and Fig. 4 (SBBA pricing) on the classic unit-good mechanisms.
#include "auction/mcafee.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace decloud::auction {
namespace {

std::vector<UnitBid> bids(std::initializer_list<double> values) {
  std::vector<UnitBid> out;
  std::size_t i = 0;
  for (const double v : values) out.push_back({i++, v});
  return out;
}

TEST(McAfee, NoTradeWhenValuationsBelowCosts) {
  const auto result = mcafee_auction(bids({1.0, 2.0}), bids({5.0, 6.0}));
  EXPECT_TRUE(result.trades.empty());
  EXPECT_EQ(result.break_even, SIZE_MAX);
}

TEST(McAfee, SinglePriceCaseAllPairsTrade) {
  // Fig. 3a: p = (v_{z+1}+c_{z+1})/2 falls inside [c_z, v_z] → all z pairs
  // trade at p, budget balanced.
  const auto buyers = bids({10.0, 8.0, 5.0});   // sorted desc
  const auto sellers = bids({2.0, 4.0, 6.0});   // sorted asc
  // z = 2 pairs (10≥2, 8≥4, 5<6 fails at pair 3? 5 ≥ 6 false → z = 2).
  // p = (v_3 + c_3)/2 = (5+6)/2 = 5.5 ∈ [c_2, v_2] = [4, 8] → trade at 5.5.
  const auto result = mcafee_auction(buyers, sellers);
  ASSERT_EQ(result.trades.size(), 2u);
  EXPECT_DOUBLE_EQ(result.buyer_price, 5.5);
  EXPECT_DOUBLE_EQ(result.seller_price, 5.5);
  EXPECT_EQ(result.reduced_trades, 0u);
  EXPECT_DOUBLE_EQ(result.budget_surplus(), 0.0);
}

TEST(McAfee, TradeReductionCaseExcludesMarginalPair) {
  // Fig. 3b: p outside [c_z, v_z] → pair z excluded, buyers pay v_z,
  // sellers get c_z, auctioneer keeps the spread.
  const auto buyers = bids({10.0, 9.0, 8.9});
  const auto sellers = bids({1.0, 1.1, 8.8});
  // z = 3 pairs (8.9 ≥ 8.8).  p = no pair z+1 → reduction path.
  const auto result = mcafee_auction(buyers, sellers);
  ASSERT_EQ(result.trades.size(), 2u);
  EXPECT_EQ(result.reduced_trades, 1u);
  EXPECT_DOUBLE_EQ(result.buyer_price, 8.9);  // v_z
  EXPECT_DOUBLE_EQ(result.seller_price, 8.8); // c_z
  EXPECT_GT(result.budget_surplus(), 0.0);    // not strongly BB
}

TEST(McAfee, SinglePairAlwaysReduced) {
  // One efficient pair and no z+1: the pair is excluded (no truthful price
  // can be found from losers).
  const auto result = mcafee_auction(bids({5.0}), bids({1.0}));
  EXPECT_TRUE(result.trades.empty());
  EXPECT_EQ(result.reduced_trades, 1u);
}

TEST(McAfee, TradesPairHighestBuyersWithCheapestSellers) {
  const auto buyers = bids({3.0, 10.0, 8.0});   // unsorted on purpose
  const auto sellers = bids({6.0, 1.0, 2.0});
  const auto result = mcafee_auction(buyers, sellers);
  ASSERT_EQ(result.trades.size(), 2u);
  // Highest buyer (index 1, v=10) with cheapest seller (index 1, c=1).
  EXPECT_EQ(result.trades[0].first, 1u);
  EXPECT_EQ(result.trades[0].second, 1u);
  EXPECT_EQ(result.trades[1].first, 2u);   // v=8
  EXPECT_EQ(result.trades[1].second, 2u);  // c=2
}

TEST(Sbba, LuckySellerSetsPriceNothingLost) {
  // Fig. 4b analogue: c_{z+1} = 4 ≤ v_z = 5 → p = 4, all z pairs trade.
  const auto buyers = bids({10.0, 5.0});
  const auto sellers = bids({1.0, 2.0, 4.0});
  const auto result = sbba_auction(buyers, sellers);
  ASSERT_EQ(result.trades.size(), 2u);
  EXPECT_DOUBLE_EQ(result.buyer_price, 4.0);
  EXPECT_DOUBLE_EQ(result.seller_price, 4.0);
  EXPECT_EQ(result.reduced_trades, 0u);
  EXPECT_DOUBLE_EQ(result.budget_surplus(), 0.0);  // strongly BB
}

TEST(Sbba, BuyerSetsPriceAndIsExcluded) {
  // Fig. 4a analogue: no seller z+1 → p = v_z, buyer z excluded.
  const auto buyers = bids({10.0, 5.0});
  const auto sellers = bids({1.0, 2.0});
  const auto result = sbba_auction(buyers, sellers);
  ASSERT_EQ(result.trades.size(), 1u);
  EXPECT_EQ(result.trades[0].first, 0u);  // only the top buyer trades
  EXPECT_DOUBLE_EQ(result.buyer_price, 5.0);
  EXPECT_EQ(result.reduced_trades, 1u);
  EXPECT_DOUBLE_EQ(result.budget_surplus(), 0.0);  // always strongly BB
}

TEST(Sbba, PriceIsIndividuallyRational) {
  const auto buyers = bids({9.0, 7.0, 6.0, 2.0});
  const auto sellers = bids({1.0, 3.0, 5.0, 8.0});
  const auto result = sbba_auction(buyers, sellers);
  // Every trading buyer values ≥ p, every trading seller costs ≤ p.
  for (const auto& [b, s] : result.trades) {
    EXPECT_GE(buyers[b].value, result.buyer_price);
    EXPECT_LE(sellers[s].value, result.seller_price);
  }
}

TEST(Sbba, NoTradePossible) {
  const auto result = sbba_auction(bids({1.0}), bids({2.0}));
  EXPECT_TRUE(result.trades.empty());
  EXPECT_EQ(result.break_even, SIZE_MAX);
}

TEST(Sbba, AtMostOneTradeLostVsEfficient) {
  // The SBBA guarantee: welfare loss is at most the single marginal trade.
  const auto buyers = bids({9.0, 8.0, 7.0, 6.0, 5.0});
  const auto sellers = bids({1.0, 2.0, 3.0, 4.0, 4.5});
  const auto result = sbba_auction(buyers, sellers);
  EXPECT_GE(result.trades.size(), 4u);  // 5 efficient pairs, lose ≤ 1
  EXPECT_LE(result.reduced_trades, 1u);
}

}  // namespace
}  // namespace decloud::auction

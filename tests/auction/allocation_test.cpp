#include "auction/allocation.hpp"

#include <gtest/gtest.h>

#include "common/ensure.hpp"
#include "test_helpers.hpp"

namespace decloud::auction {
namespace {

using test::OfferBuilder;
using test::RequestBuilder;

TEST(ResourceFraction, HandComputedEq6) {
  // φ = (d_r / span) · mean_k(ρ_rk / ρ_ok)
  //   = (3600 / 7200) · mean(1/4, 4/16, 25/100) = 0.5 · 0.25 = 0.125
  const Request r = RequestBuilder(0).cpu(1).memory(4).disk(25).duration(3600).build();
  const Offer o = OfferBuilder(0).cpu(4).memory(16).disk(100).window(0, 7200).build();
  EXPECT_NEAR(resource_fraction(r, o), 0.125, 1e-12);
}

TEST(ResourceFraction, GrantedAmountCappedAtCapacity) {
  // Flexible request nominally above capacity: the granted share per
  // resource is min(ρ_r, ρ_o)/ρ_o = 1, not > 1.
  Request r = RequestBuilder(0).cpu(8).duration(3600)
                  .significance(ResourceSchema::kCpu, 0.5).build();
  r.resources = ResourceVector{};
  r.resources.set(ResourceSchema::kCpu, 8.0);
  Offer o = OfferBuilder(0).window(0, 3600).build();
  o.resources = ResourceVector{};
  o.resources.set(ResourceSchema::kCpu, 4.0);
  EXPECT_NEAR(resource_fraction(r, o), 1.0, 1e-12);
}

TEST(ResourceFraction, ZeroWhenNoCommonTypes) {
  ResourceSchema schema;
  const ResourceId gpu = schema.intern("gpu");
  Request r = RequestBuilder(0).build();
  r.resources = ResourceVector{};
  r.resources.set(gpu, 1.0);
  const Offer o = OfferBuilder(0).build();
  EXPECT_DOUBLE_EQ(resource_fraction(r, o), 0.0);
}

TEST(ResourceFraction, TimeShareClamped) {
  // Duration exceeding the offer window clamps the time share at 1.
  Request r = RequestBuilder(0).window(0, 7200).duration(7200).cpu(4).memory(16).disk(100).build();
  const Offer o = OfferBuilder(0).window(0, 3600).build();
  EXPECT_LE(resource_fraction(r, o), 1.0);
}

TEST(MatchWelfare, ValuationMinusFractionCost) {
  const Request r = RequestBuilder(0).cpu(1).memory(4).disk(25).duration(3600).bid(2.0).build();
  const Offer o = OfferBuilder(0).cpu(4).memory(16).disk(100).window(0, 7200).bid(4.0).build();
  // φ = 0.125 (above) → welfare = 2.0 − 0.125·4 = 1.5.
  EXPECT_NEAR(match_welfare(r, o), 1.5, 1e-12);
}

TEST(RoundResult, SatisfactionAndReducedRatio) {
  RoundResult r;
  r.matches.resize(3);
  EXPECT_DOUBLE_EQ(r.satisfaction(10), 0.3);
  EXPECT_DOUBLE_EQ(r.satisfaction(0), 0.0);
  r.tentative_trades = 4;
  r.reduced_trades = 1;
  EXPECT_DOUBLE_EQ(r.reduced_trade_ratio(), 0.25);
  r.tentative_trades = 0;
  EXPECT_DOUBLE_EQ(r.reduced_trade_ratio(), 0.0);
}

TEST(CapacityTracker, StartsAtOfferCapacity) {
  const std::vector<Offer> offers = {OfferBuilder(0).cpu(4).build()};
  CapacityTracker cap(offers);
  EXPECT_DOUBLE_EQ(cap.remaining(0).get(ResourceSchema::kCpu), 4.0);
}

TEST(CapacityTracker, ConsumeReducesAndReleasesRestores) {
  const std::vector<Offer> offers = {OfferBuilder(0).cpu(4).memory(16).disk(100).build()};
  CapacityTracker cap(offers);
  const Request r = RequestBuilder(0).cpu(1).memory(4).disk(10).build();

  const ResourceVector consumed = cap.consume(0, r);
  EXPECT_DOUBLE_EQ(cap.remaining(0).get(ResourceSchema::kCpu), 3.0);
  EXPECT_DOUBLE_EQ(cap.remaining(0).get(ResourceSchema::kMemory), 12.0);
  EXPECT_DOUBLE_EQ(consumed.get(ResourceSchema::kCpu), 1.0);

  cap.release(0, consumed);
  EXPECT_DOUBLE_EQ(cap.remaining(0).get(ResourceSchema::kCpu), 4.0);
  EXPECT_DOUBLE_EQ(cap.remaining(0).get(ResourceSchema::kMemory), 16.0);
  EXPECT_DOUBLE_EQ(cap.remaining(0).get(ResourceSchema::kDisk), 100.0);
}

TEST(CapacityTracker, ConsumeCapsAtRemaining) {
  const std::vector<Offer> offers = {OfferBuilder(0).cpu(4).build()};
  CapacityTracker cap(offers);
  Request big = RequestBuilder(0).build();
  big.resources = ResourceVector{};
  big.resources.set(ResourceSchema::kCpu, 10.0);
  const ResourceVector consumed = cap.consume(0, big);
  EXPECT_DOUBLE_EQ(consumed.get(ResourceSchema::kCpu), 4.0);  // capped
  EXPECT_DOUBLE_EQ(cap.remaining(0).get(ResourceSchema::kCpu), 0.0);
}

TEST(CapacityTracker, CanHostRespectsStrictAndFlexible) {
  const std::vector<Offer> offers = {OfferBuilder(0).cpu(4).memory(16).disk(100).build()};
  CapacityTracker cap(offers);
  const Request strict = RequestBuilder(0).cpu(5).build();
  EXPECT_FALSE(cap.can_host(0, strict, 1.0));
  const Request flexible =
      RequestBuilder(1).cpu(5).significance(ResourceSchema::kCpu, 0.5).build();
  EXPECT_TRUE(cap.can_host(0, flexible, 0.8));  // needs 4 ≤ 4
  EXPECT_FALSE(cap.can_host(0, flexible, 1.0));
}

TEST(CapacityTracker, SequentialPackingUntilFull) {
  const std::vector<Offer> offers = {OfferBuilder(0).cpu(4).memory(16).disk(100).build()};
  CapacityTracker cap(offers);
  const Request r = RequestBuilder(0).cpu(2).memory(4).disk(10).build();
  EXPECT_TRUE(cap.can_host(0, r, 1.0));
  (void)cap.consume(0, r);
  EXPECT_TRUE(cap.can_host(0, r, 1.0));
  (void)cap.consume(0, r);
  EXPECT_FALSE(cap.can_host(0, r, 1.0));  // CPU exhausted (4 = 2+2)
}

TEST(CapacityTracker, OutOfRangeOfferThrows) {
  const std::vector<Offer> offers = {OfferBuilder(0).build()};
  CapacityTracker cap(offers);
  const Request r = RequestBuilder(0).build();
  EXPECT_THROW(cap.can_host(5, r, 1.0), precondition_error);
  EXPECT_THROW(cap.consume(5, r), precondition_error);
  EXPECT_THROW(cap.release(5, ResourceVector{}), precondition_error);
}

}  // namespace
}  // namespace decloud::auction

#include "auction/resource.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/ensure.hpp"

namespace decloud::auction {
namespace {

TEST(ResourceSchema, BuiltinCriticalResources) {
  ResourceSchema schema;
  EXPECT_EQ(schema.find("cpu"), ResourceSchema::kCpu);
  EXPECT_EQ(schema.find("memory"), ResourceSchema::kMemory);
  EXPECT_EQ(schema.find("disk"), ResourceSchema::kDisk);
  EXPECT_TRUE(ResourceSchema::is_builtin_critical(ResourceSchema::kCpu));
  EXPECT_TRUE(ResourceSchema::is_builtin_critical(ResourceSchema::kDisk));
}

TEST(ResourceSchema, CustomTypesExtendTheSpace) {
  ResourceSchema schema;
  const ResourceId latency = schema.intern("latency");
  const ResourceId sgx = schema.intern("sgx");
  EXPECT_GT(latency, ResourceSchema::kDisk);
  EXPECT_NE(latency, sgx);
  EXPECT_FALSE(ResourceSchema::is_builtin_critical(latency));
  EXPECT_EQ(schema.name(sgx), "sgx");
  EXPECT_EQ(schema.find("unknown"), std::nullopt);
}

TEST(ResourceVector, SetGetHas) {
  ResourceVector v;
  EXPECT_TRUE(v.empty());
  v.set(2, 5.0);
  v.set(0, 1.0);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_TRUE(v.has(0));
  EXPECT_TRUE(v.has(2));
  EXPECT_FALSE(v.has(1));
  EXPECT_DOUBLE_EQ(v.get(2), 5.0);
  EXPECT_DOUBLE_EQ(v.get(1), 0.0);  // absent reads as 0
}

TEST(ResourceVector, SetOverwritesExisting) {
  ResourceVector v;
  v.set(3, 1.0);
  v.set(3, 9.0);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v.get(3), 9.0);
}

TEST(ResourceVector, EntriesStaySortedByType) {
  ResourceVector v;
  v.set(5, 1.0);
  v.set(1, 2.0);
  v.set(3, 3.0);
  const auto& e = v.entries();
  ASSERT_EQ(e.size(), 3u);
  EXPECT_EQ(e[0].type, 1u);
  EXPECT_EQ(e[1].type, 3u);
  EXPECT_EQ(e[2].type, 5u);
}

TEST(ResourceVector, ConstructorSortsAndValidates) {
  ResourceVector v({{5, 1.0}, {1, 2.0}});
  EXPECT_EQ(v.entries()[0].type, 1u);
  EXPECT_THROW(ResourceVector({{1, 1.0}, {1, 2.0}}), precondition_error);  // duplicate
  EXPECT_THROW(ResourceVector({{1, -1.0}}), precondition_error);           // negative
}

TEST(ResourceVector, NegativeAmountRejected) {
  ResourceVector v;
  EXPECT_THROW(v.set(0, -0.5), precondition_error);
}

TEST(ResourceVector, ZeroAmountStillDeclaresType) {
  ResourceVector v;
  v.set(4, 0.0);
  EXPECT_TRUE(v.has(4));
  EXPECT_DOUBLE_EQ(v.get(4), 0.0);
}

TEST(ResourceVector, Norm2) {
  ResourceVector v;
  v.set(0, 3.0);
  v.set(1, 4.0);
  EXPECT_DOUBLE_EQ(v.norm2(), 5.0);
  EXPECT_DOUBLE_EQ(ResourceVector{}.norm2(), 0.0);
}

TEST(ResourceVector, TypesListsSortedIds) {
  ResourceVector v;
  v.set(7, 1.0);
  v.set(2, 1.0);
  EXPECT_EQ(v.types(), (std::vector<ResourceId>{2, 7}));
}

TEST(ResourceVector, Equality) {
  ResourceVector a;
  a.set(0, 1.0);
  ResourceVector b;
  b.set(0, 1.0);
  EXPECT_EQ(a, b);
  b.set(1, 2.0);
  EXPECT_NE(a, b);
}

TEST(TypeSets, CommonTypes) {
  ResourceVector a;
  a.set(0, 1.0);
  a.set(1, 1.0);
  a.set(5, 1.0);
  ResourceVector b;
  b.set(1, 2.0);
  b.set(5, 2.0);
  b.set(9, 2.0);
  EXPECT_EQ(common_types(a, b), (std::vector<ResourceId>{1, 5}));
}

TEST(TypeSets, UnionAndIntersect) {
  const std::vector<ResourceId> a = {0, 2, 4};
  const std::vector<ResourceId> b = {1, 2, 3, 4};
  EXPECT_EQ(union_types(a, b), (std::vector<ResourceId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(intersect_types(a, b), (std::vector<ResourceId>{2, 4}));
  EXPECT_TRUE(intersect_types(a, std::vector<ResourceId>{}).empty());
}

}  // namespace
}  // namespace decloud::auction

#include "auction/mechanism.hpp"

#include <gtest/gtest.h>

#include "auction/verify.hpp"
#include "common/rng.hpp"
#include "common/ensure.hpp"
#include "test_helpers.hpp"

namespace decloud::auction {
namespace {

using test::OfferBuilder;
using test::RequestBuilder;

TEST(BestOffers, RanksFeasibleOffersByQom) {
  MarketSnapshot s;
  const Request r = RequestBuilder(0).cpu(2).memory(8).disk(20).build();
  s.requests.push_back(r);
  s.offers.push_back(OfferBuilder(0).cpu(2).memory(8).disk(20).build());    // exact fit
  s.offers.push_back(OfferBuilder(1).cpu(16).memory(64).disk(512).build()); // huge
  s.offers.push_back(OfferBuilder(2).cpu(1).memory(1).disk(1).build());     // infeasible
  const BlockScale scale(s.requests, s.offers);
  AuctionConfig cfg;
  cfg.best_offer_ratio = 0.0;  // admit all feasible
  const auto best = best_offers(r, s, scale, cfg);
  EXPECT_EQ(best, (std::vector<std::size_t>{0, 1}));  // 2 dropped as infeasible
}

TEST(BestOffers, RatioPrunesDistantOffers) {
  MarketSnapshot s;
  const Request r = RequestBuilder(0).cpu(2).memory(8).disk(20).build();
  s.requests.push_back(r);
  s.offers.push_back(OfferBuilder(0).cpu(2).memory(8).disk(20).build());
  s.offers.push_back(OfferBuilder(1).cpu(16).memory(64).disk(512).build());
  const BlockScale scale(s.requests, s.offers);
  AuctionConfig strict;
  strict.best_offer_ratio = 0.99;
  const auto best = best_offers(r, s, scale, strict);
  EXPECT_EQ(best.size(), 1u);  // only the near-perfect match survives
}

TEST(BestOffers, CapRespected) {
  MarketSnapshot s;
  const Request r = RequestBuilder(0).build();
  s.requests.push_back(r);
  for (std::uint64_t i = 0; i < 10; ++i) s.offers.push_back(OfferBuilder(i).build());
  const BlockScale scale(s.requests, s.offers);
  AuctionConfig cfg;
  cfg.best_offer_ratio = 0.0;
  cfg.max_best_offers = 3;
  EXPECT_EQ(best_offers(r, s, scale, cfg).size(), 3u);
}

TEST(BestOffers, EmptyWhenNothingFeasible) {
  MarketSnapshot s;
  const Request r = RequestBuilder(0).cpu(100).build();
  s.requests.push_back(r);
  s.offers.push_back(OfferBuilder(0).build());
  const BlockScale scale(s.requests, s.offers);
  EXPECT_TRUE(best_offers(r, s, scale, AuctionConfig{}).empty());
}

TEST(Mechanism, EmptyMarketYieldsEmptyResult) {
  const DeCloudAuction auction;
  const RoundResult r1 = auction.run(MarketSnapshot{}, 1);
  EXPECT_TRUE(r1.matches.empty());

  MarketSnapshot only_requests;
  only_requests.requests.push_back(RequestBuilder(0).build());
  EXPECT_TRUE(auction.run(only_requests, 1).matches.empty());

  MarketSnapshot only_offers;
  only_offers.offers.push_back(OfferBuilder(0).build());
  EXPECT_TRUE(auction.run(only_offers, 1).matches.empty());
}

TEST(Mechanism, MalformedBidRejected) {
  MarketSnapshot s;
  s.requests.push_back(RequestBuilder(0).bid(-1.0).build());
  s.offers.push_back(OfferBuilder(0).build());
  EXPECT_THROW(DeCloudAuction{}.run(s, 1), precondition_error);
}

TEST(Mechanism, SinglePairIsReducedAway) {
  // One buyer, one seller, no z'+1: the price is v̂_z, the buyer's client
  // is excluded → no trade survives (the unavoidable DSIC cost).
  MarketSnapshot s;
  s.requests.push_back(RequestBuilder(0).bid(5.0).build());
  s.offers.push_back(OfferBuilder(0).bid(0.1).build());
  const RoundResult r = DeCloudAuction{}.run(s, 1);
  EXPECT_TRUE(r.matches.empty());
  EXPECT_EQ(r.tentative_trades, 1u);
  EXPECT_EQ(r.reduced_trades, 1u);
}

TEST(Mechanism, SparePriceSettingOfferUnlocksTheTrade) {
  // A second, more expensive offer provides ĉ_{z'+1}: the price comes from
  // an unallocated bid and the single trade survives (SBBA luck case).
  MarketSnapshot s;
  s.requests.push_back(RequestBuilder(0).bid(5.0).build());
  s.offers.push_back(OfferBuilder(0).bid(0.1).build());
  s.offers.push_back(OfferBuilder(1).provider(9).bid(0.2).build());
  const RoundResult r = DeCloudAuction{}.run(s, 1);
  ASSERT_EQ(r.matches.size(), 1u);
  EXPECT_EQ(r.matches[0].offer, 0u);
  EXPECT_GT(r.matches[0].payment, 0.0);
  EXPECT_LE(r.matches[0].payment, 5.0 + 1e-9);  // IR
  EXPECT_EQ(r.reduced_trades, 0u);
}

TEST(Mechanism, PriceSetterClientFullyExcluded) {
  // The client whose request sets the price loses ALL its bids in the
  // mini-auction, not only the price-setting one.
  MarketSnapshot s;
  // Client 7 owns the two cheapest-valued requests; one of them is z.
  s.requests.push_back(RequestBuilder(0).client(1).cpu(1).memory(4).disk(10).bid(10.0).build());
  s.requests.push_back(RequestBuilder(1).client(7).cpu(1).memory(4).disk(10).bid(2.0).build());
  s.requests.push_back(RequestBuilder(2).client(7).cpu(1).memory(4).disk(10).bid(2.1).build());
  s.offers.push_back(OfferBuilder(0).cpu(4).memory(16).disk(100).bid(0.01).build());
  const RoundResult r = DeCloudAuction{}.run(s, 1);
  for (const Match& m : r.matches) {
    EXPECT_NE(s.requests[m.request].client, ClientId(7));
  }
}

TEST(Mechanism, BenchmarkModeKeepsAllTentativeTrades) {
  MarketSnapshot s;
  s.requests.push_back(RequestBuilder(0).bid(5.0).build());
  s.offers.push_back(OfferBuilder(0).bid(0.1).build());
  AuctionConfig bench;
  bench.truthful = false;
  const RoundResult r = DeCloudAuction(bench).run(s, 1);
  ASSERT_EQ(r.matches.size(), 1u);
  EXPECT_EQ(r.reduced_trades, 0u);
  EXPECT_DOUBLE_EQ(r.matches[0].payment, 0.0);  // benchmark carries no payments
}

TEST(Mechanism, BenchmarkWelfareUpperBoundsTruthful) {
  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    MarketSnapshot s;
    for (std::uint64_t i = 0; i < 20; ++i) {
      s.requests.push_back(RequestBuilder(i)
                               .client(i / 2)
                               .cpu(rng.uniform(0.5, 4.0))
                               .memory(rng.uniform(1.0, 16.0))
                               .disk(rng.uniform(5.0, 100.0))
                               .bid(rng.uniform(0.1, 3.0))
                               .build());
    }
    for (std::uint64_t i = 0; i < 10; ++i) {
      s.offers.push_back(OfferBuilder(i)
                             .provider(i / 2)
                             .cpu(4)
                             .memory(16)
                             .disk(100)
                             .bid(rng.uniform(0.5, 2.0))
                             .build());
    }
    AuctionConfig truthful;
    AuctionConfig bench;
    bench.truthful = false;
    const RoundResult rt = DeCloudAuction(truthful).run(s, 17);
    const RoundResult rb = DeCloudAuction(bench).run(s, 17);
    // The lottery re-pack can occasionally beat greedy by a little; the
    // benchmark is an upper bound only up to that slack.
    EXPECT_LE(rt.welfare, rb.welfare * 1.15 + 1e-9) << "trial " << trial;
  }
}

TEST(Mechanism, DeterministicForSameSeed) {
  MarketSnapshot s;
  Rng rng(5);
  for (std::uint64_t i = 0; i < 30; ++i) {
    s.requests.push_back(
        RequestBuilder(i).client(i / 3).cpu(rng.uniform(0.5, 3.0)).bid(rng.uniform(0.1, 2.0)).build());
  }
  for (std::uint64_t i = 0; i < 10; ++i) {
    s.offers.push_back(OfferBuilder(i).bid(rng.uniform(0.2, 1.0)).build());
  }
  const RoundResult a = DeCloudAuction{}.run(s, 99);
  const RoundResult b = DeCloudAuction{}.run(s, 99);
  ASSERT_EQ(a.matches.size(), b.matches.size());
  for (std::size_t i = 0; i < a.matches.size(); ++i) {
    EXPECT_EQ(a.matches[i].request, b.matches[i].request);
    EXPECT_EQ(a.matches[i].offer, b.matches[i].offer);
    EXPECT_DOUBLE_EQ(a.matches[i].payment, b.matches[i].payment);
  }
  EXPECT_DOUBLE_EQ(a.welfare, b.welfare);
}

TEST(Mechanism, AllClearingPricesPositive) {
  MarketSnapshot s;
  Rng rng(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    s.requests.push_back(RequestBuilder(i).client(i).bid(rng.uniform(0.5, 4.0)).build());
  }
  for (std::uint64_t i = 0; i < 10; ++i) {
    s.offers.push_back(OfferBuilder(i).provider(i).bid(rng.uniform(0.2, 1.5)).build());
  }
  const RoundResult r = DeCloudAuction{}.run(s, 4);
  for (const double p : r.clearing_prices) EXPECT_GT(p, 0.0);
}

TEST(Mechanism, StrongBudgetBalanceHolds) {
  MarketSnapshot s;
  Rng rng(21);
  for (std::uint64_t i = 0; i < 40; ++i) {
    s.requests.push_back(RequestBuilder(i)
                             .client(i / 4)
                             .cpu(rng.uniform(0.5, 2.0))
                             .bid(rng.uniform(0.2, 3.0))
                             .build());
  }
  for (std::uint64_t i = 0; i < 16; ++i) {
    s.offers.push_back(OfferBuilder(i).provider(i / 2).bid(rng.uniform(0.2, 1.2)).build());
  }
  const RoundResult r = DeCloudAuction{}.run(s, 6);
  EXPECT_NEAR(r.total_payments, r.total_revenue, 1e-9);
  Money sum_payments = 0.0;
  for (const Money p : r.payment_by_request) sum_payments += p;
  Money sum_revenue = 0.0;
  for (const Money v : r.revenue_by_offer) sum_revenue += v;
  EXPECT_NEAR(sum_payments, sum_revenue, 1e-9);
  EXPECT_NEAR(sum_payments, r.total_payments, 1e-9);
}

}  // namespace
}  // namespace decloud::auction

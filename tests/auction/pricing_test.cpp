#include "auction/pricing.hpp"

#include <gtest/gtest.h>

#include "auction/economics.hpp"
#include "test_helpers.hpp"

namespace decloud::auction {
namespace {

using test::OfferBuilder;
using test::RequestBuilder;

/// Runs price_cluster over a snapshot where one cluster holds everything.
PricedCluster price_all(const MarketSnapshot& s, const AuctionConfig& cfg = {}) {
  Cluster cluster;
  for (std::size_t o = 0; o < s.offers.size(); ++o) cluster.offers.push_back(o);
  for (std::size_t r = 0; r < s.requests.size(); ++r) cluster.requests.push_back(r);
  CapacityTracker cap(s.offers);
  std::vector<char> taken(s.requests.size(), 0);
  return price_cluster(0, compute_economics(cluster, s), s, cap, taken, cfg);
}

TEST(PriceCluster, SinglePairMatches) {
  MarketSnapshot s;
  s.requests.push_back(RequestBuilder(0).bid(5.0));
  s.offers.push_back(OfferBuilder(0).bid(0.1));
  const PricedCluster pc = price_all(s);
  ASSERT_TRUE(pc.tradeable());
  ASSERT_EQ(pc.tentative.size(), 1u);
  EXPECT_EQ(pc.tentative[0].request, 0u);
  EXPECT_EQ(pc.tentative[0].offer, 0u);
  EXPECT_GT(pc.welfare, 0.0);
  EXPECT_EQ(pc.chat_znext, kInfiniteCost);  // no z'+1 offer
}

TEST(PriceCluster, UnaffordableRequestStaysUnmatched) {
  MarketSnapshot s;
  s.requests.push_back(RequestBuilder(0).bid(0.0001));
  s.offers.push_back(OfferBuilder(0).bid(100.0));
  const PricedCluster pc = price_all(s);
  EXPECT_FALSE(pc.tradeable());
}

TEST(PriceCluster, CheapestOfferTakenFirst) {
  MarketSnapshot s;
  s.requests.push_back(RequestBuilder(0).bid(50.0));
  s.offers.push_back(OfferBuilder(0).bid(3.0));
  s.offers.push_back(OfferBuilder(1).bid(1.0));  // cheapest
  const PricedCluster pc = price_all(s);
  ASSERT_EQ(pc.tentative.size(), 1u);
  EXPECT_EQ(pc.tentative[0].offer, 1u);
}

TEST(PriceCluster, ZNextIsFirstUnusedOfferAfterZPrime) {
  MarketSnapshot s;
  s.requests.push_back(RequestBuilder(0).bid(50.0));
  s.offers.push_back(OfferBuilder(0).bid(1.0));
  s.offers.push_back(OfferBuilder(1).provider(11).bid(2.0));
  const PricedCluster pc = price_all(s);
  ASSERT_EQ(pc.tentative.size(), 1u);
  // Offer 0 used (z'); offer 1 is z'+1 with ĉ = 2/(ν·span).
  EXPECT_LT(pc.chat_znext, kInfiniteCost);
  EXPECT_EQ(pc.znext_provider, ProviderId(11));
  EXPECT_LT(pc.chat_zprime, pc.chat_znext);
}

TEST(PriceCluster, MultipleRequestsShareOneOffer) {
  // "devices are capable of running multiple containers".
  MarketSnapshot s;
  s.requests.push_back(RequestBuilder(0).cpu(1).memory(4).disk(10).bid(5.0));
  s.requests.push_back(RequestBuilder(1).cpu(1).memory(4).disk(10).bid(4.0));
  s.offers.push_back(OfferBuilder(0).cpu(4).memory(16).disk(100).bid(0.1));
  const PricedCluster pc = price_all(s);
  EXPECT_EQ(pc.tentative.size(), 2u);
  EXPECT_EQ(pc.tentative[0].offer, 0u);
  EXPECT_EQ(pc.tentative[1].offer, 0u);
}

TEST(PriceCluster, CapacityExhaustionSpillsToNextOffer) {
  MarketSnapshot s;
  s.requests.push_back(RequestBuilder(0).cpu(3).memory(12).disk(80).bid(5.0));
  s.requests.push_back(RequestBuilder(1).cpu(3).memory(12).disk(80).bid(4.0));
  s.offers.push_back(OfferBuilder(0).cpu(4).memory(16).disk(100).bid(0.1));
  s.offers.push_back(OfferBuilder(1).cpu(4).memory(16).disk(100).bid(0.2));
  const PricedCluster pc = price_all(s);
  ASSERT_EQ(pc.tentative.size(), 2u);
  EXPECT_NE(pc.tentative[0].offer, pc.tentative[1].offer);
}

TEST(PriceCluster, VhatZIsLastMatchedRequest) {
  MarketSnapshot s;
  s.requests.push_back(RequestBuilder(0).cpu(1).memory(4).disk(10).bid(9.0));
  s.requests.push_back(RequestBuilder(1).cpu(1).memory(4).disk(10).bid(6.0));
  s.requests.push_back(RequestBuilder(2).client(7).cpu(1).memory(4).disk(10).bid(3.0));
  s.offers.push_back(OfferBuilder(0).cpu(4).memory(16).disk(100).bid(0.01));
  const PricedCluster pc = price_all(s);
  ASSERT_EQ(pc.tentative.size(), 3u);
  // z is the request with the lowest v̂ among the matched: request 2.
  EXPECT_EQ(pc.z_client, ClientId(7));
}

TEST(PriceCluster, RangeInvariantHoldsUnderNonAssortativeFeasibility) {
  // Request 0 (high value) can ONLY fit the expensive big offer; request 1
  // (low value) fits the cheap small one.  The naive greedy would produce
  // ĉ_z' > v̂_z (inverted range); the peel step must restore the invariant.
  MarketSnapshot s;
  s.requests.push_back(RequestBuilder(0).cpu(8).memory(32).disk(200).duration(3600).bid(4.0));
  s.requests.push_back(RequestBuilder(1).cpu(1).memory(2).disk(5).duration(3600).bid(0.2));
  s.offers.push_back(OfferBuilder(0).cpu(2).memory(8).disk(50).bid(0.05));     // small, cheap
  s.offers.push_back(OfferBuilder(1).cpu(16).memory(64).disk(512).bid(20.0));  // big, pricey
  const PricedCluster pc = price_all(s);
  if (pc.tradeable()) {
    EXPECT_GT(pc.range_hi(), pc.range_lo());
  }
}

TEST(PriceCluster, AlreadyTakenRequestsSkipped) {
  MarketSnapshot s;
  s.requests.push_back(RequestBuilder(0).bid(5.0));
  s.offers.push_back(OfferBuilder(0).bid(0.1));
  Cluster cluster{.offers = {0}, .requests = {0}};
  CapacityTracker cap(s.offers);
  std::vector<char> taken = {1};  // someone already matched it
  const PricedCluster pc =
      price_cluster(0, compute_economics(cluster, s), s, cap, taken, AuctionConfig{});
  EXPECT_FALSE(pc.tradeable());
}

TEST(PriceCluster, WelfareIsSumOfMatchWelfares) {
  MarketSnapshot s;
  s.requests.push_back(RequestBuilder(0).cpu(1).memory(4).disk(10).bid(3.0));
  s.requests.push_back(RequestBuilder(1).cpu(1).memory(4).disk(10).bid(2.0));
  s.offers.push_back(OfferBuilder(0).cpu(4).memory(16).disk(100).bid(0.5));
  const PricedCluster pc = price_all(s);
  Money expected = 0.0;
  for (const auto& m : pc.tentative) {
    expected += match_welfare(s.requests[m.request], s.offers[m.offer]);
  }
  EXPECT_NEAR(pc.welfare, expected, 1e-12);
}

TEST(PriceCompatible, OverlapRule) {
  PricedCluster a;
  a.chat_zprime = 1.0;
  a.vhat_z = 3.0;
  PricedCluster b;
  b.chat_zprime = 2.0;
  b.vhat_z = 4.0;
  EXPECT_TRUE(price_compatible(a, b));  // [1,3] and [2,4] overlap
  PricedCluster c;
  c.chat_zprime = 3.0;  // touches a's hi: v̂_{z,a} > ĉ_{z',c} fails (3 > 3 false)
  c.vhat_z = 5.0;
  EXPECT_FALSE(price_compatible(a, c));
  PricedCluster d;
  d.chat_zprime = 10.0;
  d.vhat_z = 12.0;
  EXPECT_FALSE(price_compatible(a, d));
}

}  // namespace
}  // namespace decloud::auction

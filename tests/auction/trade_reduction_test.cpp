#include "auction/trade_reduction.hpp"

#include <gtest/gtest.h>

namespace decloud::auction {
namespace {

PricedCluster tradeable_cluster(std::size_t index, double vhat_z, double chat_znext,
                                std::uint64_t client, std::uint64_t provider) {
  PricedCluster pc;
  pc.cluster_index = index;
  pc.vhat_z = vhat_z;
  pc.chat_zprime = vhat_z / 2.0;
  pc.chat_znext = chat_znext;
  pc.z_client = ClientId(client);
  pc.znext_provider = ProviderId(provider);
  pc.tentative.resize(1);
  return pc;
}

TEST(DeterminePrice, InvalidWhenNothingTradeable) {
  std::vector<PricedCluster> priced(2);  // no tentative matches
  const MiniAuction auction{.clusters = {0, 1}, .welfare = 0.0};
  const std::vector<char> done(2, 0);
  EXPECT_FALSE(determine_price(auction, priced, done).valid);
}

TEST(DeterminePrice, RequestSideSetsPriceWhenNoNextOffer) {
  // ĉ_{z'+1} = ∞ → p = v̂_z, setter is the request (client excluded).
  std::vector<PricedCluster> priced = {tradeable_cluster(0, 5.0, kInfiniteCost, 42, 0)};
  const MiniAuction auction{.clusters = {0}, .welfare = 1.0};
  const std::vector<char> done(1, 0);
  const PriceQuote q = determine_price(auction, priced, done);
  ASSERT_TRUE(q.valid);
  EXPECT_DOUBLE_EQ(q.price, 5.0);
  EXPECT_TRUE(q.setter_is_request);
  EXPECT_EQ(q.client, ClientId(42));
}

TEST(DeterminePrice, OfferSideSetsPriceWhenCheaper) {
  // ĉ_{z'+1} = 3 < v̂_z = 5 → p = 3, provider excluded (the lucky SBBA case).
  std::vector<PricedCluster> priced = {tradeable_cluster(0, 5.0, 3.0, 42, 77)};
  const MiniAuction auction{.clusters = {0}, .welfare = 1.0};
  const std::vector<char> done(1, 0);
  const PriceQuote q = determine_price(auction, priced, done);
  ASSERT_TRUE(q.valid);
  EXPECT_DOUBLE_EQ(q.price, 3.0);
  EXPECT_FALSE(q.setter_is_request);
  EXPECT_EQ(q.provider, ProviderId(77));
}

TEST(DeterminePrice, TiePrefersOfferSide) {
  // Excluding the unallocated offer z'+1 is free; on a tie it must win.
  std::vector<PricedCluster> priced = {tradeable_cluster(0, 4.0, 4.0, 42, 77)};
  const MiniAuction auction{.clusters = {0}, .welfare = 1.0};
  const std::vector<char> done(1, 0);
  const PriceQuote q = determine_price(auction, priced, done);
  ASSERT_TRUE(q.valid);
  EXPECT_DOUBLE_EQ(q.price, 4.0);
  EXPECT_FALSE(q.setter_is_request);
}

TEST(DeterminePrice, MinimumAcrossClusters) {
  std::vector<PricedCluster> priced = {
      tradeable_cluster(0, 5.0, 7.0, 1, 10),
      tradeable_cluster(1, 2.0, kInfiniteCost, 2, 20),  // v̂_z = 2 is the min
      tradeable_cluster(2, 6.0, 3.0, 3, 30),
  };
  const MiniAuction auction{.clusters = {0, 1, 2}, .welfare = 1.0};
  const std::vector<char> done(3, 0);
  const PriceQuote q = determine_price(auction, priced, done);
  ASSERT_TRUE(q.valid);
  EXPECT_DOUBLE_EQ(q.price, 2.0);
  EXPECT_TRUE(q.setter_is_request);
  EXPECT_EQ(q.setter_cluster, 1u);
  EXPECT_EQ(q.client, ClientId(2));
}

TEST(DeterminePrice, DoneClustersSkipped) {
  std::vector<PricedCluster> priced = {
      tradeable_cluster(0, 1.0, kInfiniteCost, 1, 0),  // would set p = 1 but is done
      tradeable_cluster(1, 5.0, kInfiniteCost, 2, 0),
  };
  const MiniAuction auction{.clusters = {0, 1}, .welfare = 1.0};
  std::vector<char> done = {1, 0};
  const PriceQuote q = determine_price(auction, priced, done);
  ASSERT_TRUE(q.valid);
  EXPECT_DOUBLE_EQ(q.price, 5.0);
  EXPECT_EQ(q.client, ClientId(2));
}

}  // namespace
}  // namespace decloud::auction

#include "auction/audit.hpp"

#include <gtest/gtest.h>

#include "auction/mechanism.hpp"
#include "common/rng.hpp"
#include "test_helpers.hpp"

namespace decloud::auction {
namespace {

using test::OfferBuilder;
using test::RequestBuilder;

// The audit functions are always compiled (audit::kEnabled only gates the
// call sites inside the mechanism), so these tests run in every build
// configuration.

// --- check_round -----------------------------------------------------------

MarketSnapshot trading_market() {
  // The SBBA luck case: a spare, more expensive offer provides ĉ_{z'+1},
  // so the single trade survives and the round carries a real payment.
  MarketSnapshot s;
  s.requests.push_back(RequestBuilder(0).bid(5.0).build());
  s.offers.push_back(OfferBuilder(0).bid(0.1).build());
  s.offers.push_back(OfferBuilder(1).provider(9).bid(0.2).build());
  return s;
}

TEST(AuditRound, PassesOnRealMechanismOutput) {
  const MarketSnapshot s = trading_market();
  const RoundResult r = DeCloudAuction{}.run(s, 1);
  ASSERT_FALSE(r.matches.empty());
  EXPECT_NO_THROW(audit::check_round(s, r));
}

TEST(AuditRound, PassesOnLargeRandomMarket) {
  Rng rng(17);
  MarketSnapshot s;
  for (std::uint64_t i = 0; i < 30; ++i) {
    s.requests.push_back(RequestBuilder(i)
                             .client(i / 3)
                             .cpu(rng.uniform(0.5, 4.0))
                             .memory(rng.uniform(1.0, 16.0))
                             .disk(rng.uniform(5.0, 100.0))
                             .bid(rng.uniform(0.1, 3.0))
                             .build());
  }
  for (std::uint64_t i = 0; i < 15; ++i) {
    s.offers.push_back(OfferBuilder(i).provider(i / 2).bid(rng.uniform(0.01, 0.5)).build());
  }
  const RoundResult r = DeCloudAuction{}.run(s, 99);
  EXPECT_NO_THROW(audit::check_round(s, r));
}

TEST(AuditRound, CatchesBudgetImbalance) {
  const MarketSnapshot s = trading_market();
  RoundResult r = DeCloudAuction{}.run(s, 1);
  r.total_revenue += 0.25;  // providers claim more than clients paid
  EXPECT_THROW(audit::check_round(s, r), audit::audit_error);
}

TEST(AuditRound, CatchesTotalPaymentsDrift) {
  const MarketSnapshot s = trading_market();
  RoundResult r = DeCloudAuction{}.run(s, 1);
  r.total_payments += 1e-9;  // even one ulp-scale drift must be caught
  EXPECT_THROW(audit::check_round(s, r), audit::audit_error);
}

TEST(AuditRound, CatchesSettlementTampering) {
  const MarketSnapshot s = trading_market();
  RoundResult r = DeCloudAuction{}.run(s, 1);
  ASSERT_FALSE(r.payment_by_request.empty());
  r.payment_by_request[0] += 0.5;
  EXPECT_THROW(audit::check_round(s, r), audit::audit_error);
}

TEST(AuditRound, CatchesDoubleAllocation) {
  const MarketSnapshot s = trading_market();
  RoundResult r = DeCloudAuction{}.run(s, 1);
  ASSERT_FALSE(r.matches.empty());
  r.matches.push_back(r.matches[0]);  // same request trades twice
  EXPECT_THROW(audit::check_round(s, r), audit::audit_error);
}

TEST(AuditRound, CatchesFractionOutOfRange) {
  const MarketSnapshot s = trading_market();
  RoundResult r = DeCloudAuction{}.run(s, 1);
  ASSERT_FALSE(r.matches.empty());
  r.matches[0].fraction = 1.5;
  EXPECT_THROW(audit::check_round(s, r), audit::audit_error);
}

TEST(AuditRound, CatchesCounterInversion) {
  const MarketSnapshot s = trading_market();
  RoundResult r = DeCloudAuction{}.run(s, 1);
  r.reduced_trades = r.tentative_trades + 1;
  EXPECT_THROW(audit::check_round(s, r), audit::audit_error);
}

TEST(AuditRound, CatchesMisalignedSettlementVectors) {
  const MarketSnapshot s = trading_market();
  RoundResult r = DeCloudAuction{}.run(s, 1);
  r.payment_by_request.pop_back();
  EXPECT_THROW(audit::check_round(s, r), audit::audit_error);
}

TEST(AuditRound, AuditErrorIsAnInvariantError) {
  // Miners wrap whole-round verification in one invariant_error handler;
  // audit failures must flow through it.
  const MarketSnapshot s = trading_market();
  RoundResult r = DeCloudAuction{}.run(s, 1);
  r.total_revenue += 1.0;
  EXPECT_THROW(audit::check_round(s, r), invariant_error);
}

// --- check_mini_auction ----------------------------------------------------

/// A tradeable cluster with economics for request 0 (v̂ = 5) and offer 0
/// (ĉ = 1), mirroring the fixture idiom of trade_reduction_test.
PricedCluster audit_cluster(double vhat_z, double chat_znext, std::uint64_t client,
                            std::uint64_t znext_provider) {
  PricedCluster pc;
  pc.cluster_index = 0;
  pc.vhat_z = vhat_z;
  pc.chat_zprime = 1.0;
  pc.chat_znext = chat_znext;
  pc.z_client = ClientId(client);
  pc.znext_provider = ProviderId(znext_provider);
  pc.tentative.resize(1);
  pc.econ.requests.push_back({.request = 0, .nu = 1.0, .vhat = 5.0});
  pc.econ.offers.push_back({.offer = 0, .nu = 1.0, .chat = 1.0});
  pc.econ.rebuild_index();
  return pc;
}

MarketSnapshot one_pair_snapshot() {
  MarketSnapshot s;
  s.requests.push_back(RequestBuilder(0).bid(5.0).build());
  s.offers.push_back(OfferBuilder(0).bid(0.1).build());
  return s;
}

TEST(AuditMiniAuction, AcceptsInvalidQuoteWithNoTrades) {
  const MarketSnapshot s = one_pair_snapshot();
  const std::vector<PricedCluster> priced(1);  // nothing tradeable
  const MiniAuction auction{.clusters = {0}, .welfare = 0.0};
  const PriceQuote quote;  // valid == false
  const RoundResult result;
  EXPECT_NO_THROW(audit::check_mini_auction(s, priced, auction, quote, {0}, {0}, result, 0));
}

TEST(AuditMiniAuction, RejectsTradesUnderInvalidQuote) {
  const MarketSnapshot s = one_pair_snapshot();
  const std::vector<PricedCluster> priced(1);
  const MiniAuction auction{.clusters = {0}, .welfare = 0.0};
  const PriceQuote quote;  // invalid — yet a match claims to be finalized
  RoundResult result;
  result.matches.push_back({.request = 0, .offer = 0, .fraction = 1.0, .payment = 1.0});
  EXPECT_THROW(audit::check_mini_auction(s, priced, auction, quote, {0}, {0}, result, 0),
               audit::audit_error);
}

TEST(AuditMiniAuction, AcceptsEq20Price) {
  const MarketSnapshot s = one_pair_snapshot();
  const std::vector<PricedCluster> priced = {audit_cluster(5.0, kInfiniteCost, 42, 0)};
  const MiniAuction auction{.clusters = {0}, .welfare = 1.0};
  PriceQuote quote;
  quote.valid = true;
  quote.price = 5.0;  // min(v̂_z = 5, ĉ_{z'+1} = ∞)
  quote.setter_is_request = true;
  quote.client = ClientId(42);
  const RoundResult result;  // the setter's trade was reduced away
  EXPECT_NO_THROW(audit::check_mini_auction(s, priced, auction, quote, {0}, {1}, result, 0));
}

TEST(AuditMiniAuction, RejectsWrongClearingPrice) {
  const MarketSnapshot s = one_pair_snapshot();
  const std::vector<PricedCluster> priced = {audit_cluster(5.0, kInfiniteCost, 42, 0)};
  const MiniAuction auction{.clusters = {0}, .welfare = 1.0};
  PriceQuote quote;
  quote.valid = true;
  quote.price = 4.0;  // Eq. 20 demands 5.0
  quote.setter_is_request = true;
  quote.client = ClientId(42);
  const RoundResult result;
  EXPECT_THROW(audit::check_mini_auction(s, priced, auction, quote, {0}, {1}, result, 0),
               audit::audit_error);
}

TEST(AuditMiniAuction, RejectsPhantomPriceSetter) {
  const MarketSnapshot s = one_pair_snapshot();
  const std::vector<PricedCluster> priced = {audit_cluster(5.0, kInfiniteCost, 42, 0)};
  const MiniAuction auction{.clusters = {0}, .welfare = 1.0};
  PriceQuote quote;
  quote.valid = true;
  quote.price = 5.0;
  quote.setter_is_request = true;
  quote.client = ClientId(99);  // no live cluster has this price-setting client
  const RoundResult result;
  EXPECT_THROW(audit::check_mini_auction(s, priced, auction, quote, {0}, {1}, result, 0),
               audit::audit_error);
}

/// Offer-side setter at price `p`: ĉ_{z'+1} = p from provider 7, the lucky
/// SBBA case where a finalized match is expected.
PriceQuote offer_side_quote(double p, std::uint64_t provider = 7) {
  PriceQuote quote;
  quote.valid = true;
  quote.price = p;
  quote.setter_is_request = false;
  quote.provider = ProviderId(provider);
  return quote;
}

TEST(AuditMiniAuction, AcceptsIRCompliantMatch) {
  const MarketSnapshot s = one_pair_snapshot();
  const std::vector<PricedCluster> priced = {audit_cluster(5.0, 2.0, 42, 7)};
  const MiniAuction auction{.clusters = {0}, .welfare = 1.0};
  RoundResult result;
  result.matches.push_back(
      {.request = 0, .offer = 0, .fraction = 0.5, .payment = 4.0, .unit_price = 2.0});
  EXPECT_NO_THROW(
      audit::check_mini_auction(s, priced, auction, offer_side_quote(2.0), {0}, {1}, result, 0));
}

TEST(AuditMiniAuction, RejectsForeignUnitPrice) {
  const MarketSnapshot s = one_pair_snapshot();
  const std::vector<PricedCluster> priced = {audit_cluster(5.0, 2.0, 42, 7)};
  const MiniAuction auction{.clusters = {0}, .welfare = 1.0};
  RoundResult result;
  result.matches.push_back(
      {.request = 0, .offer = 0, .fraction = 0.5, .payment = 4.0, .unit_price = 3.0});
  EXPECT_THROW(
      audit::check_mini_auction(s, priced, auction, offer_side_quote(2.0), {0}, {1}, result, 0),
      audit::audit_error);
}

TEST(AuditMiniAuction, RejectsPriceAboveBuyerBound) {
  // Clearing at 6 violates v̂_r = 5 ≥ p even though Eq. 20 is satisfied by
  // the (corrupt) cluster quantities — IR is checked independently.
  const MarketSnapshot s = one_pair_snapshot();
  const std::vector<PricedCluster> priced = {audit_cluster(7.0, 6.0, 42, 7)};
  const MiniAuction auction{.clusters = {0}, .welfare = 1.0};
  RoundResult result;
  result.matches.push_back(
      {.request = 0, .offer = 0, .fraction = 0.5, .payment = 4.0, .unit_price = 6.0});
  EXPECT_THROW(
      audit::check_mini_auction(s, priced, auction, offer_side_quote(6.0), {0}, {1}, result, 0),
      audit::audit_error);
}

TEST(AuditMiniAuction, RejectsPaymentAboveReportedValuation) {
  const MarketSnapshot s = one_pair_snapshot();  // request bids 5.0 raw
  const std::vector<PricedCluster> priced = {audit_cluster(5.0, 2.0, 42, 7)};
  const MiniAuction auction{.clusters = {0}, .welfare = 1.0};
  RoundResult result;
  result.matches.push_back(
      {.request = 0, .offer = 0, .fraction = 0.5, .payment = 6.0, .unit_price = 2.0});
  EXPECT_THROW(
      audit::check_mini_auction(s, priced, auction, offer_side_quote(2.0), {0}, {1}, result, 0),
      audit::audit_error);
}

TEST(AuditMiniAuction, RejectsExcludedProviderTrading) {
  // Offer 0's provider (id 0) set the price — trade reduction must have
  // excluded it, so its finalized match is a violation.
  const MarketSnapshot s = one_pair_snapshot();
  const std::vector<PricedCluster> priced = {audit_cluster(5.0, 2.0, 42, 0)};
  const MiniAuction auction{.clusters = {0}, .welfare = 1.0};
  RoundResult result;
  result.matches.push_back(
      {.request = 0, .offer = 0, .fraction = 0.5, .payment = 4.0, .unit_price = 2.0});
  EXPECT_THROW(
      audit::check_mini_auction(s, priced, auction, offer_side_quote(2.0, 0), {0}, {1}, result, 0),
      audit::audit_error);
}

}  // namespace
}  // namespace decloud::auction

#include "auction/score_matrix.hpp"

#include <gtest/gtest.h>

#include "auction/mechanism.hpp"
#include "auction/qom.hpp"
#include "test_helpers.hpp"
#include "trace/workload.hpp"

namespace decloud::auction {
namespace {

using test::OfferBuilder;
using test::RequestBuilder;

/// The dense score must be BIT-identical to the sparse walk — collective
/// verification replays allocations, so "close enough" is not enough.
void expect_all_pairs_identical(const MarketSnapshot& s) {
  const BlockScale scale(s.requests, s.offers);
  const ScoreMatrix m(s, scale);
  for (std::size_t r = 0; r < s.requests.size(); ++r) {
    for (std::size_t o = 0; o < s.offers.size(); ++o) {
      const double sparse = quality_of_match(s.requests[r], s.offers[o], scale);
      const double dense = m.score(r, o);
      EXPECT_EQ(sparse, dense) << "pair (r=" << r << ", o=" << o << ")";
    }
  }
}

TEST(ScoreMatrixTest, MatchesSparseOnRandomizedWorkloads) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 7u, 42u}) {
    trace::WorkloadConfig wc;
    wc.num_requests = 40;
    wc.num_offers = 25;
    Rng rng(seed);
    const auto s = trace::make_workload(wc, AuctionConfig{}, rng);
    expect_all_pairs_identical(s);
  }
}

TEST(ScoreMatrixTest, DisjointTypesScoreZero) {
  ResourceSchema schema;
  const ResourceId gpu = schema.intern("gpu");
  MarketSnapshot s;
  Request r = RequestBuilder(1);
  r.resources = ResourceVector({{ResourceSchema::kCpu, 2.0}});
  s.requests.push_back(r);
  Offer o = OfferBuilder(1);
  o.resources = ResourceVector({{gpu, 4.0}});
  s.offers.push_back(o);

  const BlockScale scale(s.requests, s.offers);
  const ScoreMatrix m(s, scale);
  EXPECT_EQ(m.score(0, 0), 0.0);
  EXPECT_EQ(m.score(0, 0), quality_of_match(s.requests[0], s.offers[0], scale));
}

TEST(ScoreMatrixTest, ZeroAmountDeclaredTypeMatchesSparse) {
  // A zero amount still declares the type (so it is in K_r ∩ K_o); the
  // dense path must agree with the sparse walk on such entries.
  MarketSnapshot s;
  Request r = RequestBuilder(1);
  r.resources = ResourceVector({{ResourceSchema::kCpu, 0.0}, {ResourceSchema::kMemory, 4.0}});
  s.requests.push_back(r);
  Offer o = OfferBuilder(1);
  o.resources = ResourceVector({{ResourceSchema::kCpu, 8.0}, {ResourceSchema::kMemory, 16.0}});
  s.offers.push_back(o);

  const BlockScale scale(s.requests, s.offers);
  const ScoreMatrix m(s, scale);
  EXPECT_GT(m.score(0, 0), 0.0);
  EXPECT_EQ(m.score(0, 0), quality_of_match(s.requests[0], s.offers[0], scale));
}

TEST(ScoreMatrixTest, SignificanceWeightsCarryOver) {
  MarketSnapshot s;
  Request r = RequestBuilder(1);
  r.significance.set(ResourceSchema::kMemory, 0.25);
  s.requests.push_back(r);
  s.offers.push_back(OfferBuilder(1).build());
  s.offers.push_back(OfferBuilder(2).cpu(16.0).memory(64.0).disk(500.0).build());

  expect_all_pairs_identical(s);
}

TEST(ScoreMatrixTest, SparseIdGapsAreHandled) {
  // Intern a high-id type only some bidders declare: dense rows must pad
  // the gap with zeros, not misalign.
  ResourceSchema schema;
  for (int i = 0; i < 10; ++i) schema.intern("filler" + std::to_string(i));
  const ResourceId sgx = schema.intern("sgx");
  MarketSnapshot s;
  s.requests.push_back(RequestBuilder(1).resource(sgx, 1.0).build());
  s.requests.push_back(RequestBuilder(2).build());
  s.offers.push_back(OfferBuilder(1).resource(sgx, 1.0).build());
  s.offers.push_back(OfferBuilder(2).build());

  expect_all_pairs_identical(s);
}

TEST(ScoreMatrixTest, WidthCoversLargestObservedId) {
  MarketSnapshot s;
  s.requests.push_back(RequestBuilder(1).build());
  s.offers.push_back(OfferBuilder(1).build());
  const BlockScale scale(s.requests, s.offers);
  const ScoreMatrix m(s, scale);
  EXPECT_EQ(m.width(), scale.dimension());
  EXPECT_EQ(m.width(), std::size_t{ResourceSchema::kDisk} + 1);
}

TEST(ScoreMatrixTest, BestOffersOverloadsAgree) {
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    trace::WorkloadConfig wc;
    wc.num_requests = 30;
    wc.num_offers = 20;
    Rng rng(seed);
    const auto s = trace::make_workload(wc, AuctionConfig{}, rng);
    const BlockScale scale(s.requests, s.offers);
    const ScoreMatrix m(s, scale);
    const AuctionConfig cfg;
    for (std::size_t r = 0; r < s.requests.size(); ++r) {
      EXPECT_EQ(best_offers(s.requests[r], s, scale, cfg), best_offers(r, s, m, cfg))
          << "request " << r;
    }
  }
}

}  // namespace
}  // namespace decloud::auction

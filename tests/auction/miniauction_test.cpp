#include "auction/miniauction.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace decloud::auction {
namespace {

/// Builds a synthetic tradeable cluster with the given price range and
/// welfare (the mini-auction builder only reads these fields).
PricedCluster cluster_with(std::size_t index, double lo, double hi, Money welfare) {
  PricedCluster pc;
  pc.cluster_index = index;
  pc.chat_zprime = lo;
  pc.vhat_z = hi;
  pc.welfare = welfare;
  pc.tentative.resize(1);  // tradeable
  return pc;
}

TEST(SelectRoots, EmptyAndNonTradeable) {
  EXPECT_TRUE(select_roots({}).empty());
  std::vector<PricedCluster> clusters(2);  // no tentative matches
  EXPECT_TRUE(select_roots(clusters).empty());
}

TEST(SelectRoots, SingleClusterIsRoot) {
  const std::vector<PricedCluster> clusters = {cluster_with(0, 1.0, 2.0, 5.0)};
  EXPECT_EQ(select_roots(clusters), (std::vector<std::size_t>{0}));
}

TEST(SelectRoots, DisjointClustersAllRoots) {
  const std::vector<PricedCluster> clusters = {
      cluster_with(0, 1.0, 2.0, 5.0),
      cluster_with(1, 3.0, 4.0, 1.0),
      cluster_with(2, 5.0, 6.0, 2.0),
  };
  EXPECT_EQ(select_roots(clusters), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(SelectRoots, OverlappingClustersPickMaxWeight) {
  // [1,3] w=1 overlaps [2,4] w=10: only the heavier survives as root.
  const std::vector<PricedCluster> clusters = {
      cluster_with(0, 1.0, 3.0, 1.0),
      cluster_with(1, 2.0, 4.0, 10.0),
  };
  EXPECT_EQ(select_roots(clusters), (std::vector<std::size_t>{1}));
}

TEST(SelectRoots, ClassicWeightedIntervalInstance) {
  // Choosing the two outer intervals (weight 6) beats the middle (5).
  const std::vector<PricedCluster> clusters = {
      cluster_with(0, 0.0, 2.0, 3.0),
      cluster_with(1, 1.0, 5.0, 5.0),
      cluster_with(2, 3.0, 6.0, 3.0),
  };
  EXPECT_EQ(select_roots(clusters), (std::vector<std::size_t>{0, 2}));
}

TEST(SelectRoots, TouchingIntervalsCompatibleAsRoots) {
  // [1,2] and [2,3] touch but do not strictly overlap: both can be roots.
  const std::vector<PricedCluster> clusters = {
      cluster_with(0, 1.0, 2.0, 1.0),
      cluster_with(1, 2.0, 3.0, 1.0),
  };
  EXPECT_EQ(select_roots(clusters).size(), 2u);
}

TEST(CreateMiniAuctions, SingleRootYieldsSingleAuction) {
  const std::vector<PricedCluster> clusters = {cluster_with(0, 1.0, 2.0, 5.0)};
  const auto auctions = create_mini_auctions(clusters);
  ASSERT_EQ(auctions.size(), 1u);
  EXPECT_EQ(auctions[0].clusters, (std::vector<std::size_t>{0}));
  EXPECT_DOUBLE_EQ(auctions[0].welfare, 5.0);
}

TEST(CreateMiniAuctions, CompatibleClusterJoinsRootAuction) {
  const std::vector<PricedCluster> clusters = {
      cluster_with(0, 1.0, 4.0, 10.0),  // root
      cluster_with(1, 2.0, 3.0, 1.0),   // overlaps → attaches under root
  };
  const auto auctions = create_mini_auctions(clusters);
  ASSERT_EQ(auctions.size(), 1u);
  // Leaf-to-root path contains both clusters.
  EXPECT_EQ(auctions[0].clusters.size(), 2u);
  EXPECT_EQ(auctions[0].clusters.back(), 0u);  // root last (leaf → root order)
  EXPECT_DOUBLE_EQ(auctions[0].welfare, 11.0);
}

TEST(CreateMiniAuctions, EveryTradeableClusterAppearsSomewhere) {
  const std::vector<PricedCluster> clusters = {
      cluster_with(0, 0.0, 2.0, 3.0),  cluster_with(1, 1.0, 5.0, 5.0),
      cluster_with(2, 3.0, 6.0, 3.0),  cluster_with(3, 0.5, 1.5, 1.0),
      cluster_with(4, 4.0, 5.5, 0.5),
  };
  const auto auctions = create_mini_auctions(clusters);
  std::vector<char> seen(clusters.size(), 0);
  for (const auto& a : auctions) {
    for (const std::size_t c : a.clusters) seen[c] = 1;
  }
  for (std::size_t c = 0; c < clusters.size(); ++c) EXPECT_TRUE(seen[c]) << "cluster " << c;
}

TEST(CreateMiniAuctions, PathsArePairwisePriceCompatibleWithParents) {
  const std::vector<PricedCluster> clusters = {
      cluster_with(0, 0.0, 10.0, 10.0),  // wide root
      cluster_with(1, 1.0, 4.0, 3.0),
      cluster_with(2, 2.0, 3.0, 2.0),
      cluster_with(3, 6.0, 9.0, 3.0),
  };
  const auto auctions = create_mini_auctions(clusters);
  for (const auto& a : auctions) {
    // Consecutive path entries (child, parent) must be compatible.
    for (std::size_t i = 0; i + 1 < a.clusters.size(); ++i) {
      EXPECT_TRUE(price_compatible(clusters[a.clusters[i]], clusters[a.clusters[i + 1]]))
          << "auction path entry " << i;
    }
  }
}

TEST(CreateMiniAuctions, MultipleLeavesYieldMultipleAuctions) {
  // Two mutually incompatible children under one wide root → two leaves →
  // two mini-auctions sharing the root.
  const std::vector<PricedCluster> clusters = {
      cluster_with(0, 0.0, 10.0, 10.0),
      cluster_with(1, 1.0, 2.0, 3.0),
      cluster_with(2, 8.0, 9.0, 3.0),
  };
  const auto auctions = create_mini_auctions(clusters);
  EXPECT_EQ(auctions.size(), 2u);
  for (const auto& a : auctions) {
    EXPECT_EQ(a.clusters.back(), 0u);
    EXPECT_EQ(a.clusters.size(), 2u);
  }
}

}  // namespace
}  // namespace decloud::auction

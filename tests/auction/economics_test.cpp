#include "auction/economics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_helpers.hpp"

namespace decloud::auction {
namespace {

using test::OfferBuilder;
using test::RequestBuilder;

MarketSnapshot one_pair_snapshot() {
  MarketSnapshot s;
  s.requests.push_back(RequestBuilder(0).cpu(2).memory(8).disk(50).duration(3600).bid(2.0));
  s.offers.push_back(OfferBuilder(0).cpu(4).memory(16).disk(100).window(0, 7200).bid(1.0));
  return s;
}

TEST(Economics, CommonTypesAndVirtualMax) {
  const MarketSnapshot s = one_pair_snapshot();
  const Cluster cluster{.offers = {0}, .requests = {0}};
  const ClusterEconomics econ = compute_economics(cluster, s);
  EXPECT_EQ(econ.common_types,
            (std::vector<ResourceId>{ResourceSchema::kCpu, ResourceSchema::kMemory,
                                     ResourceSchema::kDisk}));
  // Single offer: M_CL is the offer itself → ‖M‖ = ‖(4,16,100)‖.
  EXPECT_NEAR(econ.virtual_max_norm, std::sqrt(4.0 * 4 + 16.0 * 16 + 100.0 * 100), 1e-12);
}

TEST(Economics, OfferNormalization) {
  const MarketSnapshot s = one_pair_snapshot();
  const Cluster cluster{.offers = {0}, .requests = {0}};
  const ClusterEconomics econ = compute_economics(cluster, s);
  ASSERT_EQ(econ.offers.size(), 1u);
  // Sole offer spans the virtual max exactly: ν_o = 1.
  EXPECT_NEAR(econ.offers[0].nu, 1.0, 1e-12);
  // ĉ = c / (ν · span) = 1.0 / 7200.
  EXPECT_NEAR(econ.offers[0].chat, 1.0 / 7200.0, 1e-15);
}

TEST(Economics, RequestCriticalResourceDominates) {
  // Request pins 100 % of the offer's CPU but little else: ν_r must be the
  // critical CPU share (1.0), not the small geometric share.
  MarketSnapshot s;
  s.requests.push_back(RequestBuilder(0).cpu(4).memory(1).disk(1).duration(100).bid(5.0));
  s.offers.push_back(OfferBuilder(0).cpu(4).memory(16).disk(100).window(0, 200).bid(1.0));
  const Cluster cluster{.offers = {0}, .requests = {0}};
  const ClusterEconomics econ = compute_economics(cluster, s);
  ASSERT_EQ(econ.requests.size(), 1u);
  EXPECT_NEAR(econ.requests[0].nu, 1.0, 1e-12);
  // v̂ = v / (ν d) = 5 / (1 · 100).
  EXPECT_NEAR(econ.requests[0].vhat, 0.05, 1e-12);
}

TEST(Economics, SmallRequestGetsGeometricShare) {
  MarketSnapshot s;
  s.requests.push_back(RequestBuilder(0).cpu(1).memory(4).disk(25).duration(3600).bid(1.0));
  s.offers.push_back(OfferBuilder(0).cpu(4).memory(16).disk(100).window(0, 7200).bid(1.0));
  const Cluster cluster{.offers = {0}, .requests = {0}};
  const ClusterEconomics econ = compute_economics(cluster, s);
  ASSERT_EQ(econ.requests.size(), 1u);
  // Geometric share = ‖(1,4,25)‖/‖(4,16,100)‖ = 0.25; critical share = 0.25
  // as well (all three at ¼ of capacity).
  EXPECT_NEAR(econ.requests[0].nu, 0.25, 1e-9);
}

TEST(Economics, NuClampedAtOne) {
  // A flexible request nominally bigger than the virtual maximum must not
  // produce ν > 1 (it would break the IR proof's scaling).
  MarketSnapshot s;
  Request big = RequestBuilder(0).cpu(8).duration(100).bid(1.0)
                    .significance(ResourceSchema::kCpu, 0.5).build();
  s.requests.push_back(big);
  s.offers.push_back(OfferBuilder(0).cpu(4).window(0, 200).bid(1.0));
  const Cluster cluster{.offers = {0}, .requests = {0}};
  const ClusterEconomics econ = compute_economics(cluster, s);
  ASSERT_EQ(econ.requests.size(), 1u);
  EXPECT_LE(econ.requests[0].nu, 1.0);
}

TEST(Economics, RequestsSortedByVhatDescending) {
  MarketSnapshot s;
  s.requests.push_back(RequestBuilder(0).bid(1.0));
  s.requests.push_back(RequestBuilder(1).bid(5.0));
  s.requests.push_back(RequestBuilder(2).bid(3.0));
  s.offers.push_back(OfferBuilder(0));
  const Cluster cluster{.offers = {0}, .requests = {0, 1, 2}};
  const ClusterEconomics econ = compute_economics(cluster, s);
  ASSERT_EQ(econ.requests.size(), 3u);
  EXPECT_GE(econ.requests[0].vhat, econ.requests[1].vhat);
  EXPECT_GE(econ.requests[1].vhat, econ.requests[2].vhat);
  EXPECT_EQ(econ.requests[0].request, 1u);
}

TEST(Economics, OffersSortedByChatAscending) {
  MarketSnapshot s;
  s.requests.push_back(RequestBuilder(0));
  s.offers.push_back(OfferBuilder(0).bid(3.0));
  s.offers.push_back(OfferBuilder(1).bid(1.0));
  s.offers.push_back(OfferBuilder(2).bid(2.0));
  const Cluster cluster{.offers = {0, 1, 2}, .requests = {0}};
  const ClusterEconomics econ = compute_economics(cluster, s);
  ASSERT_EQ(econ.offers.size(), 3u);
  EXPECT_LE(econ.offers[0].chat, econ.offers[1].chat);
  EXPECT_LE(econ.offers[1].chat, econ.offers[2].chat);
  EXPECT_EQ(econ.offers[0].offer, 1u);
}

TEST(Economics, TiesBrokenByEarlierSubmission) {
  // Identical bids: the earlier-submitted request ranks first, so delaying
  // a submission can never help (Section IV-D).
  MarketSnapshot s;
  s.requests.push_back(RequestBuilder(0).submitted(100).bid(2.0));
  s.requests.push_back(RequestBuilder(1).submitted(50).bid(2.0));
  s.offers.push_back(OfferBuilder(0));
  const Cluster cluster{.offers = {0}, .requests = {0, 1}};
  const ClusterEconomics econ = compute_economics(cluster, s);
  EXPECT_EQ(econ.requests[0].request, 1u);  // submitted at 50 < 100
}

TEST(Economics, DegenerateClusterWithNoCommonTypes) {
  ResourceSchema schema;
  const ResourceId gpu = schema.intern("gpu");
  MarketSnapshot s;
  Request r = RequestBuilder(0).build();
  r.resources = ResourceVector{};
  r.resources.set(gpu, 1.0);
  s.requests.push_back(r);
  s.offers.push_back(OfferBuilder(0));
  const Cluster cluster{.offers = {0}, .requests = {0}};
  const ClusterEconomics econ = compute_economics(cluster, s);
  EXPECT_TRUE(econ.common_types.empty());
  EXPECT_TRUE(econ.offers.empty());
  EXPECT_TRUE(econ.requests.empty());
}

TEST(Economics, NuOfRequestLookup) {
  const MarketSnapshot s = one_pair_snapshot();
  const Cluster cluster{.offers = {0}, .requests = {0}};
  const ClusterEconomics econ = compute_economics(cluster, s);
  EXPECT_FALSE(std::isnan(econ.nu_of_request(0)));
  EXPECT_TRUE(std::isnan(econ.nu_of_request(42)));
}

}  // namespace
}  // namespace decloud::auction

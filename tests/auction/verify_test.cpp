#include "auction/verify.hpp"

#include <gtest/gtest.h>

#include "auction/mechanism.hpp"
#include "common/rng.hpp"
#include "test_helpers.hpp"

namespace decloud::auction {
namespace {

using test::OfferBuilder;
using test::RequestBuilder;

/// A market with guaranteed surviving trades (spare price-setting offer).
MarketSnapshot tradeable_market() {
  MarketSnapshot s;
  s.requests.push_back(RequestBuilder(0).bid(5.0).build());
  s.requests.push_back(RequestBuilder(1).client(1).bid(4.0).build());
  s.offers.push_back(OfferBuilder(0).bid(0.1).build());
  s.offers.push_back(OfferBuilder(1).provider(1).bid(0.2).build());
  s.offers.push_back(OfferBuilder(2).provider(2).bid(0.3).build());
  return s;
}

TEST(VerifyInvariants, HonestResultPasses) {
  const MarketSnapshot s = tradeable_market();
  const RoundResult r = DeCloudAuction{}.run(s, 11);
  ASSERT_FALSE(r.matches.empty());
  EXPECT_TRUE(verify_invariants(s, r, AuctionConfig{}).ok());
}

TEST(VerifyInvariants, DetectsDoubleAllocation) {
  const MarketSnapshot s = tradeable_market();
  RoundResult r = DeCloudAuction{}.run(s, 11);
  ASSERT_FALSE(r.matches.empty());
  r.matches.push_back(r.matches.front());  // duplicate match for a request
  const auto report = verify_invariants(s, r, AuctionConfig{});
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].find("constraint 5"), std::string::npos);
}

TEST(VerifyInvariants, DetectsOutOfRangeMatch) {
  const MarketSnapshot s = tradeable_market();
  RoundResult r = DeCloudAuction{}.run(s, 11);
  Match bogus;
  bogus.request = 999;
  bogus.offer = 0;
  r.matches.push_back(bogus);
  EXPECT_FALSE(verify_invariants(s, r, AuctionConfig{}).ok());
}

TEST(VerifyInvariants, DetectsTemporalViolation) {
  MarketSnapshot s = tradeable_market();
  RoundResult r = DeCloudAuction{}.run(s, 11);
  ASSERT_FALSE(r.matches.empty());
  // Shrink the matched offer's window after the fact.
  s.offers[r.matches[0].offer].window_end = s.requests[r.matches[0].request].window_end - 1;
  const auto report = verify_invariants(s, r, AuctionConfig{});
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].find("temporal"), std::string::npos);
}

TEST(VerifyInvariants, DetectsOverpayment) {
  const MarketSnapshot s = tradeable_market();
  RoundResult r = DeCloudAuction{}.run(s, 11);
  ASSERT_FALSE(r.matches.empty());
  r.matches[0].payment = s.requests[r.matches[0].request].bid + 1.0;  // pay above bid
  const auto report = verify_invariants(s, r, AuctionConfig{});
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].find("IR"), std::string::npos);
}

TEST(VerifyInvariants, DetectsBudgetImbalance) {
  const MarketSnapshot s = tradeable_market();
  RoundResult r = DeCloudAuction{}.run(s, 11);
  ASSERT_FALSE(r.matches.empty());
  r.revenue_by_offer[r.matches[0].offer] += 0.5;  // provider paid out of thin air
  const auto report = verify_invariants(s, r, AuctionConfig{});
  ASSERT_FALSE(report.ok());
}

TEST(VerifyInvariants, DetectsPaymentToLoser) {
  MarketSnapshot s = tradeable_market();
  // A request that can afford nothing: guaranteed loser.
  s.requests.push_back(RequestBuilder(2).client(9).bid(1e-9).build());
  RoundResult r = DeCloudAuction{}.run(s, 11);
  std::vector<char> matched(s.requests.size(), 0);
  for (const auto& m : r.matches) matched[m.request] = 1;
  ASSERT_FALSE(matched[2]);  // it must lose
  r.payment_by_request[2] = 0.7;  // charge the loser anyway
  EXPECT_FALSE(verify_invariants(s, r, AuctionConfig{}).ok());
}

TEST(VerifyInvariants, BenchmarkModeSkipsPaymentChecks) {
  const MarketSnapshot s = tradeable_market();
  AuctionConfig bench;
  bench.truthful = false;
  const RoundResult r = DeCloudAuction(bench).run(s, 11);
  EXPECT_TRUE(verify_invariants(s, r, bench, /*check_payments=*/false).ok());
}

TEST(VerifyReplay, HonestResultMatchesReplay) {
  const MarketSnapshot s = tradeable_market();
  const RoundResult r = DeCloudAuction{}.run(s, 23);
  EXPECT_TRUE(verify_replay(s, r, AuctionConfig{}, 23).ok());
}

TEST(VerifyReplay, DetectsDroppedMatch) {
  const MarketSnapshot s = tradeable_market();
  RoundResult r = DeCloudAuction{}.run(s, 23);
  ASSERT_FALSE(r.matches.empty());
  r.matches.pop_back();
  EXPECT_FALSE(verify_replay(s, r, AuctionConfig{}, 23).ok());
}

TEST(VerifyReplay, DetectsAlteredPayment) {
  const MarketSnapshot s = tradeable_market();
  RoundResult r = DeCloudAuction{}.run(s, 23);
  ASSERT_FALSE(r.matches.empty());
  r.matches[0].payment *= 0.5;  // miner undercharging an accomplice
  EXPECT_FALSE(verify_replay(s, r, AuctionConfig{}, 23).ok());
}

TEST(VerifyReplay, DetectsWrongSeed) {
  // A miner claiming different randomization evidence must be caught
  // whenever the allocation actually differs; at minimum the replay with
  // the true seed must still match the true result.
  const MarketSnapshot s = tradeable_market();
  const RoundResult r = DeCloudAuction{}.run(s, 23);
  const RoundResult other = DeCloudAuction{}.run(s, 24);
  if (other.matches.size() != r.matches.size()) {
    EXPECT_FALSE(verify_replay(s, other, AuctionConfig{}, 23).ok());
  }
  EXPECT_TRUE(verify_replay(s, r, AuctionConfig{}, 23).ok());
}

TEST(VerifyReplay, DetectsDivergentConfig) {
  // Consensus requires the same auction config; a different flexibility
  // changes feasibility and must fail replay when allocations differ.
  MarketSnapshot s;
  s.requests.push_back(RequestBuilder(0)
                           .cpu(5.0)
                           .significance(ResourceSchema::kCpu, 0.5)
                           .bid(5.0)
                           .build());
  s.requests.push_back(RequestBuilder(1).client(1).cpu(1.0).bid(3.0).build());
  s.offers.push_back(OfferBuilder(0).cpu(4).bid(0.1).build());
  s.offers.push_back(OfferBuilder(1).provider(1).cpu(4).bid(0.2).build());
  AuctionConfig flexible;
  flexible.flexibility = 0.8;
  const RoundResult r = DeCloudAuction(flexible).run(s, 9);
  AuctionConfig inflexible;  // default f = 1
  const RoundResult r2 = DeCloudAuction(inflexible).run(s, 9);
  if (r.matches.size() != r2.matches.size()) {
    EXPECT_FALSE(verify_replay(s, r, inflexible, 9).ok());
  }
}

}  // namespace
}  // namespace decloud::auction

#include "auction/bid.hpp"

#include <gtest/gtest.h>

#include "common/ensure.hpp"
#include "test_helpers.hpp"

namespace decloud::auction {
namespace {

using test::OfferBuilder;
using test::RequestBuilder;

TEST(RequestValidation, DefaultBuilderIsValid) {
  EXPECT_NO_THROW(validate(RequestBuilder(1).build()));
}

TEST(RequestValidation, NegativeBidRejected) {
  EXPECT_THROW(validate(RequestBuilder(1).bid(-0.01).build()), precondition_error);
}

TEST(RequestValidation, ZeroBidAllowed) {
  // Constraint (12) allows zero valuations.
  EXPECT_NO_THROW(validate(RequestBuilder(1).bid(0.0).build()));
}

TEST(RequestValidation, EmptyResourcesRejected) {
  Request r = RequestBuilder(1).build();
  r.resources = ResourceVector{};
  EXPECT_THROW(validate(r), precondition_error);
}

TEST(RequestValidation, InvertedWindowRejected) {
  EXPECT_THROW(validate(RequestBuilder(1).window(100, 50).duration(10).build()),
               precondition_error);
}

TEST(RequestValidation, NonPositiveDurationRejected) {
  EXPECT_THROW(validate(RequestBuilder(1).duration(0).build()), precondition_error);
  EXPECT_THROW(validate(RequestBuilder(1).duration(-5).build()), precondition_error);
}

TEST(RequestValidation, DurationBeyondWindowRejected) {
  EXPECT_THROW(validate(RequestBuilder(1).window(0, 100).duration(101).build()),
               precondition_error);
}

TEST(RequestValidation, DurationEqualToWindowAllowed) {
  // d_r = t_r^+ − t_r^-: "the container must be run from t_r^- to t_r^+".
  EXPECT_NO_THROW(validate(RequestBuilder(1).window(0, 100).duration(100).build()));
}

TEST(RequestValidation, SignificanceRange) {
  EXPECT_NO_THROW(
      validate(RequestBuilder(1).significance(ResourceSchema::kCpu, 1.0).build()));
  EXPECT_NO_THROW(
      validate(RequestBuilder(1).significance(ResourceSchema::kCpu, 0.5).build()));
  EXPECT_THROW(validate(RequestBuilder(1).significance(ResourceSchema::kCpu, 1.5).build()),
               precondition_error);
  Request zero_sig = RequestBuilder(1).build();
  zero_sig.significance.set(ResourceSchema::kCpu, 0.0);
  EXPECT_THROW(validate(zero_sig), precondition_error);
}

TEST(RequestValidation, SignificanceForUndeclaredResourceRejected) {
  ResourceSchema schema;
  const ResourceId sgx = schema.intern("sgx");
  EXPECT_THROW(validate(RequestBuilder(1).significance(sgx, 0.5).build()), precondition_error);
}

TEST(Request, SignificanceDefaultsToStrict) {
  const Request r = RequestBuilder(1).significance(ResourceSchema::kCpu, 0.4).build();
  EXPECT_DOUBLE_EQ(r.significance_of(ResourceSchema::kCpu), 0.4);
  EXPECT_DOUBLE_EQ(r.significance_of(ResourceSchema::kMemory), 1.0);  // default σ = 1
  EXPECT_FALSE(r.is_strict(ResourceSchema::kCpu));
  EXPECT_TRUE(r.is_strict(ResourceSchema::kMemory));
}

TEST(OfferValidation, DefaultBuilderIsValid) {
  EXPECT_NO_THROW(validate(OfferBuilder(1).build()));
}

TEST(OfferValidation, NegativeBidRejected) {
  EXPECT_THROW(validate(OfferBuilder(1).bid(-1.0).build()), precondition_error);
}

TEST(OfferValidation, EmptyResourcesRejected) {
  Offer o = OfferBuilder(1).build();
  o.resources = ResourceVector{};
  EXPECT_THROW(validate(o), precondition_error);
}

TEST(OfferValidation, EmptyWindowRejected) {
  EXPECT_THROW(validate(OfferBuilder(1).window(100, 100).build()), precondition_error);
  EXPECT_THROW(validate(OfferBuilder(1).window(100, 50).build()), precondition_error);
}

TEST(Offer, WindowLength) {
  EXPECT_EQ(OfferBuilder(1).window(100, 400).build().window_length(), 300);
}

TEST(Location, Equality) {
  EXPECT_EQ((Location{1.0, 2.0}), (Location{1.0, 2.0}));
  EXPECT_NE((Location{1.0, 2.0}), (Location{2.0, 1.0}));
}

}  // namespace
}  // namespace decloud::auction

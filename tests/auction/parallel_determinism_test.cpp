// The parallel matching pipeline must be invisible in the outcome: for any
// thread count, DeCloudAuction::run returns a byte-identical RoundResult.
// The ledger's collective verification (Section III) replays allocations on
// miners with arbitrary core counts, so this is a consensus requirement,
// not a nicety.
#include <gtest/gtest.h>

#include "auction/mechanism.hpp"
#include "common/thread_pool.hpp"
#include "test_helpers.hpp"
#include "trace/workload.hpp"

namespace decloud::auction {
namespace {

using test::OfferBuilder;
using test::RequestBuilder;

/// Field-by-field exact equality — no tolerances anywhere.
void expect_identical(const RoundResult& a, const RoundResult& b, const std::string& label) {
  ASSERT_EQ(a.matches.size(), b.matches.size()) << label;
  for (std::size_t i = 0; i < a.matches.size(); ++i) {
    const Match& ma = a.matches[i];
    const Match& mb = b.matches[i];
    EXPECT_EQ(ma.request, mb.request) << label << " match " << i;
    EXPECT_EQ(ma.offer, mb.offer) << label << " match " << i;
    EXPECT_EQ(ma.fraction, mb.fraction) << label << " match " << i;
    EXPECT_EQ(ma.payment, mb.payment) << label << " match " << i;
    EXPECT_EQ(ma.unit_price, mb.unit_price) << label << " match " << i;
    EXPECT_EQ(ma.granted, mb.granted) << label << " match " << i;
  }
  EXPECT_EQ(a.tentative_trades, b.tentative_trades) << label;
  EXPECT_EQ(a.reduced_trades, b.reduced_trades) << label;
  EXPECT_EQ(a.lottery_clusters, b.lottery_clusters) << label;
  EXPECT_EQ(a.welfare, b.welfare) << label;
  EXPECT_EQ(a.total_payments, b.total_payments) << label;
  EXPECT_EQ(a.total_revenue, b.total_revenue) << label;
  EXPECT_EQ(a.payment_by_request, b.payment_by_request) << label;
  EXPECT_EQ(a.revenue_by_offer, b.revenue_by_offer) << label;
  EXPECT_EQ(a.clearing_prices, b.clearing_prices) << label;
}

MarketSnapshot random_market(std::size_t requests, std::size_t offers, std::uint64_t seed) {
  trace::WorkloadConfig wc;
  wc.num_requests = requests;
  wc.num_offers = offers;
  Rng rng(seed);
  return trace::make_workload(wc, AuctionConfig{}, rng);
}

void expect_thread_invariant(const MarketSnapshot& snapshot, const std::string& label,
                             bool truthful = true,
                             ScoringPath scoring = ScoringPath::kAuto) {
  for (const std::uint64_t seed : {1u, 99u, 123456u}) {
    AuctionConfig serial;
    serial.threads = 1;
    serial.truthful = truthful;
    serial.scoring = scoring;
    const RoundResult base = DeCloudAuction(serial).run(snapshot, seed);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8},
                                      ThreadPool::default_workers()}) {
      AuctionConfig cfg = serial;
      cfg.threads = threads;
      const RoundResult got = DeCloudAuction(cfg).run(snapshot, seed);
      expect_identical(base, got,
                       label + " seed=" + std::to_string(seed) +
                           " threads=" + std::to_string(threads));
    }
  }
}

TEST(ParallelDeterminismTest, SmallMarket) {
  expect_thread_invariant(random_market(16, 8, 1), "small");
}

TEST(ParallelDeterminismTest, MidMarket) {
  expect_thread_invariant(random_market(64, 32, 2), "mid");
}

TEST(ParallelDeterminismTest, LargeMarket) {
  expect_thread_invariant(random_market(200, 100, 3), "large");
}

TEST(ParallelDeterminismTest, ImbalancedMarketExercisesLottery) {
  // Heavy demand surplus: many near-identical requests chasing few offers
  // forces the verifiable lottery (Section IV-D) to re-draw allocations.
  const auto snapshot = random_market(96, 8, 4);
  AuctionConfig serial;
  serial.threads = 1;
  const RoundResult probe = DeCloudAuction(serial).run(snapshot, 7);
  ASSERT_GT(probe.lottery_clusters, 0u)
      << "market does not trigger the lottery path; the test lost its teeth";
  expect_thread_invariant(snapshot, "imbalanced");
}

TEST(ParallelDeterminismTest, NonTruthfulBenchmarkPath) {
  expect_thread_invariant(random_market(64, 32, 5), "benchmark", /*truthful=*/false);
}

TEST(ParallelDeterminismTest, PrunedPathThreadInvariant) {
  // The index-pruned scoring path must be as thread-invariant as the dense
  // one: its scan order and early-termination tests depend only on
  // snapshot data, never on worker scheduling (DESIGN.md §3g).
  expect_thread_invariant(random_market(200, 100, 3), "pruned", /*truthful=*/true,
                          ScoringPath::kPruned);
  expect_thread_invariant(random_market(96, 8, 4), "pruned-imbalanced", /*truthful=*/true,
                          ScoringPath::kPruned);
}

TEST(ParallelDeterminismTest, ForcedPathsAgree) {
  // kDense and kPruned are interchangeable consensus-wise: byte-identical
  // RoundResults on the same snapshot and seed.
  const auto snapshot = random_market(120, 90, 9);
  for (const std::uint64_t seed : {5u, 77u}) {
    AuctionConfig dense;
    dense.threads = 1;
    dense.scoring = ScoringPath::kDense;
    AuctionConfig pruned;
    pruned.threads = 1;
    pruned.scoring = ScoringPath::kPruned;
    expect_identical(DeCloudAuction(dense).run(snapshot, seed),
                     DeCloudAuction(pruned).run(snapshot, seed),
                     "paths seed=" + std::to_string(seed));
  }
}

TEST(ParallelDeterminismTest, DefaultThreadsMatchesSerial) {
  // threads = 0 resolves to hardware_concurrency — whatever that is on the
  // runner, the outcome must equal the serial path.
  const auto snapshot = random_market(80, 40, 6);
  AuctionConfig serial;
  serial.threads = 1;
  AuctionConfig dflt;
  dflt.threads = 0;
  const RoundResult a = DeCloudAuction(serial).run(snapshot, 11);
  const RoundResult b = DeCloudAuction(dflt).run(snapshot, 11);
  expect_identical(a, b, "default-threads");
}

}  // namespace
}  // namespace decloud::auction
